/**
 * @file
 * Ablation of the scheduler's design choices (beyond the paper's
 * Figure 11): spatial window size, the aux-affinity topological order's
 * effect via the hybrid scheme, and the data-parallel cluster count —
 * all on bootstrapping with the CROPHE-36 configuration.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/logging.h"
#include "graph/workloads.h"
#include "sched/hybrid_rotation.h"
#include "sched/scheduler.h"

using namespace crophe;

int
main(int argc, char **argv)
{
    cli::FlagParser flags("Scheduler design-choice ablations.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads);
    if (!flags.parse(argc, argv))
        return 1;
    setVerbose(false);
    auto params = graph::paramsSharp();
    auto cfg = hw::withSramMB(hw::configCrophe36(), 90.0);

    bench::printHeader("Ablation: spatial group size (maxGroupOps)");
    graph::WorkloadOptions wopt;
    wopt.rotMode = graph::RotMode::Hybrid;
    wopt.rHyb = 4;
    auto w = graph::buildBootstrapping(params, wopt);
    for (u32 k : {1u, 2u, 4u, 6u, 8u, 10u}) {
        sched::SchedOptions opt;
        opt.maxGroupOps = k;
        auto r = sched::scheduleWorkload(w, cfg, opt);
        std::printf("  maxGroupOps=%2u  %10.3e cycles  dram %9.3e words\n",
                    k, r.stats.cycles,
                    static_cast<double>(r.stats.dramWords));
    }

    bench::printHeader("Ablation: rotation scheme (fixed, no search)");
    for (auto [mode, r_hyb] :
         {std::pair<graph::RotMode, u32>{graph::RotMode::MinKs, 0},
          {graph::RotMode::Hoisting, 0},
          {graph::RotMode::Hybrid, 2},
          {graph::RotMode::Hybrid, 4},
          {graph::RotMode::Hybrid, 8}}) {
        graph::WorkloadOptions o;
        o.rotMode = mode;
        o.rHyb = r_hyb;
        auto wl = graph::buildBootstrapping(params, o);
        sched::SchedOptions opt;
        auto res = sched::scheduleWorkload(wl, cfg, opt);
        std::printf("  %-9s r=%u  %10.3e cycles  aux dram %9.3e words\n",
                    graph::rotModeName(mode), r_hyb, res.stats.cycles,
                    static_cast<double>(res.stats.auxDramWords));
    }

    bench::printHeader("Ablation: CROPHE-p cluster count");
    for (u32 c : {1u, 2u, 4u}) {
        sched::SchedOptions opt;
        opt.clusters = c;
        auto r = sched::scheduleWorkload(w, cfg, opt);
        std::printf("  clusters=%u  %10.3e cycles  aux dram %9.3e words\n",
                    c, r.stats.cycles,
                    static_cast<double>(r.stats.auxDramWords));
    }
    return 0;
}
