/**
 * @file
 * Tracked serving benchmark (DESIGN.md §11): goodput and tail latency
 * versus offered load for two workload mix profiles on CROPHE-36.
 *
 * For each mix the bench probes the per-template warm service times,
 * derives the accelerator's steady-state capacity (requests/s at batch
 * size 1), then sweeps offered load at 0.25/0.5/1.0/2.0x capacity with
 * a two-tenant Poisson trace. A single in-memory plan cache is shared
 * across all sweep points, so only the first point per mix pays
 * schedule compiles. Everything downstream of the (wall-clock) compile
 * probe runs in virtual time, so the reported numbers are deterministic
 * for a fixed seed and --threads does not change them.
 *
 * Flags:
 *   --json <path>   write BENCH_serve.json-style output
 *   --smoke         short traces for CI
 *   --seed N        traffic seed (default 42)
 *   --threads N     size the process-wide pool (wall-clock only)
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "fault/fault_plan.h"
#include "plan/plan_cache.h"
#include "serve/dispatcher.h"
#include "serve/report.h"
#include "serve/traffic.h"

using namespace crophe;

namespace {

struct Point
{
    std::string mix;
    std::string scenario = "healthy";  ///< "healthy" or "chip-fail"
    double loadFactor = 0.0;
    double offeredRps = 0.0;
    double admittedRps = 0.0;
    double goodputRps = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double slaMs = 0.0;
    double utilization = 0.0;
    double meanBatch = 0.0;
    u64 rejected = 0;
};

std::vector<serve::TenantSpec>
tenants(const serve::MixProfile &mix, double totalRate, double slaSeconds)
{
    std::vector<serve::TenantSpec> specs;
    for (u32 i = 0; i < 2; ++i) {
        serve::TenantSpec t;
        t.name = "t" + std::to_string(i);
        t.rate = totalRate / 2.0;
        t.slaSeconds = slaSeconds;
        t.mix = mix.weights;
        specs.push_back(std::move(t));
    }
    return specs;
}

void
sweepMix(const std::string &mixName, const baselines::DesignSpec &design,
         plan::PlanCache &cache, double duration, u32 seed,
         std::vector<Point> &out)
{
    auto mix = serve::mixByName(mixName);
    auto catalog = serve::buildCatalog(design.params, mix.templates);

    // Probe warm service times (fills the shared plan cache as a side
    // effect, so every sweep point below runs cache-warm).
    serve::ServeOptions probeOpt;
    probeOpt.planCache = &cache;
    serve::Dispatcher probe(design.cfg, catalog,
                            tenants(mix, 1.0, 1.0), probeOpt);
    double weightSum = 0.0, meanWarm = 0.0;
    for (u32 i = 0; i < catalog.templates.size(); ++i) {
        meanWarm += mix.weights[i] * probe.service(i).warmSeconds;
        weightSum += mix.weights[i];
    }
    meanWarm /= weightSum;
    const double capacity = 1.0 / meanWarm;
    const double sla = 10.0 * meanWarm;

    bench::printHeader("mix " + mixName + " on " + design.cfg.name);
    std::printf("  mean warm service %.3f ms -> capacity %.1f req/s, "
                "SLA %.1f ms\n",
                meanWarm * 1e3, capacity, sla * 1e3);
    std::printf("  %-6s %10s %10s %10s %9s %9s %6s %6s\n", "load",
                "offered", "admitted", "goodput", "p50ms", "p99ms",
                "util", "batch");

    for (double factor : {0.25, 0.5, 1.0, 2.0}) {
        auto specs = tenants(mix, factor * capacity, sla);
        serve::TrafficSpec ts;
        ts.durationSeconds = duration;
        ts.seed = seed;
        ts.tenants = specs;
        auto arrivals = serve::generateTraffic(ts, catalog);

        serve::ServeOptions opt;
        opt.policy = serve::Policy::Edf;
        opt.maxBatch = 8;
        opt.admission.shedFactor = 8.0;
        opt.planCache = &cache;
        serve::Dispatcher d(design.cfg, catalog, specs, opt);
        auto rep = serve::buildReport(d.run(arrivals, duration), specs);

        Point p;
        p.mix = mixName;
        p.loadFactor = factor;
        p.offeredRps = static_cast<double>(rep.total.offered) / duration;
        p.admittedRps = static_cast<double>(rep.total.admitted) / duration;
        p.goodputRps = rep.total.goodput;
        p.p50Ms = rep.total.p50Ms;
        p.p99Ms = rep.total.p99Ms;
        p.slaMs = sla * 1e3;
        p.utilization = rep.utilization;
        p.meanBatch = rep.meanBatchSize;
        p.rejected = rep.total.rejectedThrottled + rep.total.rejectedOverload;
        out.push_back(p);

        std::printf("  %5.2fx %10.1f %10.1f %10.1f %9.3f %9.3f %5.1f%% "
                    "%6.2f\n",
                    factor, p.offeredRps, p.admittedRps, p.goodputRps,
                    p.p50Ms, p.p99Ms, 100.0 * p.utilization, p.meanBatch);
    }
}

/**
 * Degraded-capacity row (DESIGN.md §14): the matvec mix at 1.0x
 * capacity on a 2-chip pod, healthy versus losing one chip mid-window.
 * The chip loss kills the in-flight batches, halves the admission
 * capacity and forces a survivor repartition, so goodput drops and p99
 * stretches — deterministically, for a fixed seed.
 */
void
degradedCapacitySweep(const baselines::DesignSpec &design,
                      plan::PlanCache &cache, double duration, u32 seed,
                      std::vector<Point> &out)
{
    auto mix = serve::mixByName("matvec");
    auto catalog = serve::buildCatalog(design.params, mix.templates);

    // Warm capacity probe on the healthy 2-chip pod.
    serve::ServeOptions probeOpt;
    probeOpt.planCache = &cache;
    probeOpt.pod.chips = 2;
    serve::Dispatcher probe(design.cfg, catalog, tenants(mix, 1.0, 1.0),
                            probeOpt);
    double weightSum = 0.0, meanWarm = 0.0;
    for (u32 i = 0; i < catalog.templates.size(); ++i) {
        meanWarm += mix.weights[i] * probe.service(i).warmSeconds;
        weightSum += mix.weights[i];
    }
    meanWarm /= weightSum;
    const double capacity = 1.0 / meanWarm;
    const double sla = 10.0 * meanWarm;

    bench::printHeader("degraded capacity: mix matvec on a 2-chip " +
                       design.cfg.name + " pod");
    char failAt[64];
    std::snprintf(failAt, sizeof failAt, "%g", duration / 2.0);
    std::printf("  1.00x load (%.1f req/s); chip-fail scenario loses one "
                "chip at t=%ss\n",
                capacity, failAt);
    std::printf("  %-9s %10s %10s %10s %9s %9s %6s\n", "scenario",
                "offered", "admitted", "goodput", "p50ms", "p99ms",
                "util");

    for (const char *scenario : {"healthy", "chip-fail"}) {
        auto specs = tenants(mix, capacity, sla);
        serve::TrafficSpec ts;
        ts.durationSeconds = duration;
        ts.seed = seed;
        ts.tenants = specs;
        auto arrivals = serve::generateTraffic(ts, catalog);

        serve::ServeOptions opt;
        opt.policy = serve::Policy::Edf;
        opt.maxBatch = 8;
        opt.admission.shedFactor = 8.0;
        opt.planCache = &cache;
        opt.pod.chips = 2;
        if (std::string(scenario) == "chip-fail")
            opt.faultPlan = fault::FaultPlan::parse(
                "chip-fail@" + std::string(failAt) + "=1", opt.pod.chips);
        serve::Dispatcher d(design.cfg, catalog, specs, opt);
        auto rep = serve::buildReport(d.run(arrivals, duration), specs);

        Point p;
        p.mix = "matvec-pod";
        p.scenario = scenario;
        p.loadFactor = 1.0;
        p.offeredRps = static_cast<double>(rep.total.offered) / duration;
        p.admittedRps = static_cast<double>(rep.total.admitted) / duration;
        p.goodputRps = rep.total.goodput;
        p.p50Ms = rep.total.p50Ms;
        p.p99Ms = rep.total.p99Ms;
        p.slaMs = sla * 1e3;
        p.utilization = rep.utilization;
        p.meanBatch = rep.meanBatchSize;
        p.rejected = rep.total.rejectedThrottled +
                     rep.total.rejectedOverload + rep.total.rejectedBreaker;
        out.push_back(p);

        std::printf("  %-9s %10.1f %10.1f %10.1f %9.3f %9.3f %5.1f%%\n",
                    scenario, p.offeredRps, p.admittedRps, p.goodputRps,
                    p.p50Ms, p.p99Ms, 100.0 * p.utilization);
    }
}

void
writeJson(const std::string &path, const std::vector<Point> &points,
          bool smoke, u32 seed)
{
    std::ofstream os(path);
    if (!os)
        throw RecoverableError("cannot write " + path);
    os << "{\n  \"bench\": \"bench_serve\",\n";
    os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    os << "  \"seed\": " << seed << ",\n  \"results\": [\n";
    char buf[512];
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"mix\": \"%s\", \"scenario\": \"%s\", "
            "\"load_factor\": %.2f, "
            "\"offered_rps\": %.1f, \"admitted_rps\": %.1f, "
            "\"goodput_rps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"sla_ms\": %.3f, \"utilization\": %.3f, "
            "\"mean_batch\": %.2f, \"rejected\": %llu}%s\n",
            p.mix.c_str(), p.scenario.c_str(), p.loadFactor, p.offeredRps,
            p.admittedRps,
            p.goodputRps, p.p50Ms, p.p99Ms, p.slaMs, p.utilization,
            p.meanBatch, static_cast<unsigned long long>(p.rejected),
            i + 1 < points.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    std::printf("\nwrote %zu sweep points to %s\n", points.size(),
                path.c_str());
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json;
    cli::FlagParser flags(
        "Serving bench: goodput and tail latency vs offered load.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kSeed);
    flags.addBool("--smoke", &smoke, "short traces for CI");
    flags.addString("--json", &json, "write BENCH_serve.json-style output");
    if (!flags.parse(argc, argv))
        return 1;
    const u32 seed = common.seed;

    try {
        const double duration = smoke ? 2.0 : 10.0;
        auto design = baselines::designByName("CROPHE-36");
        plan::PlanCache cache;  // shared across mixes and sweep points
        std::vector<Point> points;
        sweepMix("bootstrap", design, cache, duration, seed, points);
        sweepMix("matvec", design, cache, duration, seed, points);
        degradedCapacitySweep(design, cache, duration, seed, points);
        if (!json.empty())
            writeJson(json, points, smoke, seed);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
