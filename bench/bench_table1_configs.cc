/**
 * @file
 * Reproduces Table I (hardware configurations of the CROPHE variants and
 * baselines) and Table III (parameter sets) from the implemented models.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/params.h"
#include "hw/area_model.h"
#include "hw/config.h"

using namespace crophe;

int
main()
{
    bench::printHeader("Table I: hardware configurations");
    std::printf("  %-12s %5s %6s %6s %6s %9s %9s %10s %9s\n", "design",
                "word", "GHz", "lanes", "PEs", "SRAM(MB)", "DRAM GB/s",
                "area mm^2", "power W");
    for (const char *name :
         {"bts", "ark", "crophe64", "cl+", "sharp", "crophe36"}) {
        hw::HwConfig c = hw::configByName(name);
        hw::AreaPower ap = hw::chipAreaPower(c);
        std::printf("  %-12s %5u %6.1f %6u %6u %9.0f %9.0f %10.1f %9.1f\n",
                    c.name.c_str(), c.wordBits, c.freqGhz, c.lanes, c.numPes,
                    c.sramMB, c.dramGBs, ap.totalAreaMm2, ap.totalPowerW);
    }

    bench::printHeader("Table III: CKKS parameter sets");
    std::printf("  %-12s %6s %4s %6s %5s %6s\n", "set", "logN", "L",
                "Lboot", "dnum", "alpha");
    for (const char *name : {"bts", "ark", "sharp", "craterlake"}) {
        graph::FheParams p = graph::paramsByName(name);
        std::printf("  %-12s %6u %4u %6u %5u %6u\n", p.name.c_str(), p.logN,
                    p.L, p.Lboot, p.dnum, p.alpha);
    }
    return 0;
}
