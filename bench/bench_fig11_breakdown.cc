/**
 * @file
 * Reproduces Figure 11: the contribution of each CROPHE technique on the
 * bootstrapping workload at a small SRAM capacity, together with the SRAM
 * and DRAM access traffic — MAD on CROPHE hardware, the basic
 * cross-operator dataflow ("Base"), +NTT decomposition, +hybrid rotation,
 * and both combined; against the corresponding baseline accelerator.
 *
 * With --stats-out FILE the per-technique totals (fig11.*), the
 * scheduler's search telemetry (sched.search.*, sched.enum.*) and the
 * simulated sim.* totals of the winning configuration are dumped as JSON,
 * so the figure can be regenerated straight from telemetry. With
 * --trace-out FILE the winning configuration's cycle-level simulation is
 * recorded as Perfetto-loadable Chrome trace JSON. With --plan-cache DIR
 * (or $CROPHE_PLAN_CACHE) schedule searches go through the
 * content-addressed plan cache (DESIGN.md §8).
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/logging.h"
#include "common/shutdown.h"
#include "graph/workloads.h"
#include "plan/plan_cache.h"
#include "sched/hybrid_rotation.h"
#include "sched/mad.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

using namespace crophe;

namespace {

/** Record one technique's Figure 11 bars into the stats registry. */
void
recordBars(telemetry::StatsRegistry *reg, const std::string &group,
           const char *label, const sched::SchedStats &stats)
{
    if (reg == nullptr)
        return;
    std::string prefix = "fig11." + group + "." + label;
    reg->scalar(prefix + ".cycles", "end-to-end cycles").set(stats.cycles);
    reg->counter(prefix + ".sramWords", "global-buffer words")
        .set(stats.sramWords);
    reg->counter(prefix + ".dramWords", "off-chip words")
        .set(stats.dramWords);
}

void
breakdown(const char *baseline_name, const char *crophe_name,
          double sram_mb, telemetry::SimTelemetry *telem,
          telemetry::SearchTelemetry *search, plan::PlanCache *cache)
{
    auto baseline = baselines::withSram(
        baselines::designByName(baseline_name), sram_mb);
    auto crophe = baselines::withSram(baselines::designByName(crophe_name),
                                      sram_mb);
    const auto &params = crophe.params;

    std::printf("%s vs CROPHE hw (%s params, %.0f MB SRAM):\n",
                baseline_name, params.name.c_str(), sram_mb);

    auto report = [&](const char *label,
                      const sched::WorkloadResult &r, double base) {
        std::printf("  %-10s %10.3e cycles (%5.2fx)  sram %9.3e  "
                    "dram %9.3e words\n",
                    label, r.stats.cycles, base / r.stats.cycles,
                    static_cast<double>(r.stats.sramWords),
                    static_cast<double>(r.stats.dramWords));
        recordBars(telem != nullptr ? telem->registry : nullptr,
                   baseline_name, label, r.stats);
    };

    // Baseline accelerator with MAD.
    baselines::RunOptions brun;
    brun.planCache = cache;
    brun.search = search;
    auto base = baselines::runDesign(baseline, "bootstrap", brun);
    report("baseline", base, base.stats.cycles);

    // MAD on the CROPHE homogeneous hardware (Min-KS rotations, per VII-D).
    {
        graph::WorkloadOptions wopt;
        wopt.rotMode = graph::RotMode::MinKs;
        auto w = graph::buildBootstrapping(params, wopt);
        auto r = sched::scheduleWorkloadMad(w, crophe.cfg);
        r.design = "MAD";
        report("MAD", r, base.stats.cycles);
    }

    sched::SchedOptions opt;  // cross-operator dataflow on
    opt.search = search;
    opt.planCache = cache;
    sched::RotationChoice best_choice;
    auto run_mode = [&](const char *label, bool nttdec, bool hybrot) {
        opt.nttDecomp = nttdec;
        auto choice = sched::chooseRotationScheme("bootstrap", params,
                                                  crophe.cfg, opt, hybrot);
        choice.result.design = label;
        report(label, choice.result, base.stats.cycles);
        return choice;
    };
    run_mode("Base", false, false);
    run_mode("+NTTDec", true, false);
    run_mode("+HybRot", false, true);
    best_choice = run_mode("Both", true, true);

    // Regenerate the winning configuration's breakdown from the
    // cycle-level simulator, feeding the trace/stats telemetry.
    if (telem != nullptr) {
        graph::WorkloadOptions wopt;
        wopt.rotMode = best_choice.mode;
        wopt.rHyb = best_choice.rHyb;
        auto w = graph::buildBootstrapping(params, wopt);
        opt.nttDecomp = true;
        telem->statsPrefix = "sim." + std::string(baseline_name);
        auto sim = sim::simulateWorkload(w, crophe.cfg, opt, telem);
        std::printf("  simulated winner (%s): %.3e cycles\n",
                    best_choice.result.design.c_str(), sim.stats.cycles);
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    cli::FlagParser flags(
        "Figure 11: technique breakdown on bootstrapping.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kStatsOut |
                                   cli::CommonFlags::kTraceOut |
                                   cli::CommonFlags::kPlanCache);
    if (!flags.parse(argc, argv))
        return 1;
    const std::string &trace_out = common.traceOut;
    const std::string &stats_out = common.statsOut;
    const std::string &plan_dir = common.planCacheDir;
    installShutdownHandler();

    std::unique_ptr<plan::PlanCache> cache;
    if (!plan_dir.empty())
        cache = std::make_unique<plan::PlanCache>(plan_dir);

    telemetry::TraceRecorder recorder;
    telemetry::StatsRegistry registry;
    telemetry::SearchTelemetry search;
    telemetry::SimTelemetry telem;
    if (!trace_out.empty())
        telem.trace = &recorder;
    if (!stats_out.empty())
        telem.registry = &registry;
    bool telemetry_on = telem.trace != nullptr || telem.registry != nullptr;

    // On SIGINT/SIGTERM whatever telemetry exists so far is still flushed
    // as valid JSON, marked truncated.
    auto flush_outputs = [&](bool truncated) {
        if (!stats_out.empty()) {
            search.registerStats(registry);
            if (cache != nullptr)
                cache->registerStats(registry);
            if (truncated)
                registry.scalar("run.truncated",
                                "run was interrupted by SIGINT/SIGTERM")
                    .set(1.0);
            std::ofstream os(stats_out);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", stats_out.c_str());
                return false;
            }
            registry.dumpJson(os);
            os << "\n";
            if (!truncated)
                std::printf("\nwrote %zu stats to %s\n", registry.size(),
                            stats_out.c_str());
        }
        if (!trace_out.empty()) {
            if (truncated)
                recorder.instant("run truncated", 0.0);
            std::ofstream os(trace_out);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
                return false;
            }
            recorder.writeJson(os);
            if (!truncated)
                std::printf("wrote %zu trace events to %s\n",
                            recorder.events().size(), trace_out.c_str());
        }
        return true;
    };
    auto bail_out = [&]() {
        std::fprintf(stderr, "\ninterrupted: flushing partial telemetry\n");
        flush_outputs(/*truncated=*/true);
        return kShutdownExitCode;
    };

    setVerbose(false);
    bench::printHeader("Figure 11: technique breakdown, bootstrapping");
    breakdown("ARK+MAD", "CROPHE-64", 64.0,
              telemetry_on ? &telem : nullptr,
              telemetry_on ? &search : nullptr, cache.get());
    if (shutdownRequested())
        return bail_out();
    std::printf("\n");
    breakdown("SHARP+MAD", "CROPHE-36", 45.0,
              telemetry_on ? &telem : nullptr,
              telemetry_on ? &search : nullptr, cache.get());
    if (shutdownRequested())
        return bail_out();

    if (!flush_outputs(/*truncated=*/false))
        return 1;
    return 0;
}
