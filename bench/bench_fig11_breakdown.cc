/**
 * @file
 * Reproduces Figure 11: the contribution of each CROPHE technique on the
 * bootstrapping workload at a small SRAM capacity, together with the SRAM
 * and DRAM access traffic — MAD on CROPHE hardware, the basic
 * cross-operator dataflow ("Base"), +NTT decomposition, +hybrid rotation,
 * and both combined; against the corresponding baseline accelerator.
 */

#include <cstdio>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "graph/workloads.h"
#include "sched/hybrid_rotation.h"
#include "sched/mad.h"
#include "sched/scheduler.h"

using namespace crophe;

namespace {

void
breakdown(const char *baseline_name, const char *crophe_name,
          double sram_mb)
{
    auto baseline = baselines::withSram(
        baselines::designByName(baseline_name), sram_mb);
    auto crophe = baselines::withSram(baselines::designByName(crophe_name),
                                      sram_mb);
    const auto &params = crophe.params;

    std::printf("%s vs CROPHE hw (%s params, %.0f MB SRAM):\n",
                baseline_name, params.name.c_str(), sram_mb);

    auto report = [&](const char *label,
                      const sched::WorkloadResult &r, double base) {
        std::printf("  %-10s %10.3e cycles (%5.2fx)  sram %9.3e  "
                    "dram %9.3e words\n",
                    label, r.stats.cycles, base / r.stats.cycles,
                    static_cast<double>(r.stats.sramWords),
                    static_cast<double>(r.stats.dramWords));
    };

    // Baseline accelerator with MAD.
    auto base = baselines::runDesign(baseline, "bootstrap");
    report("baseline", base, base.stats.cycles);

    // MAD on the CROPHE homogeneous hardware (Min-KS rotations, per VII-D).
    {
        graph::WorkloadOptions wopt;
        wopt.rotMode = graph::RotMode::MinKs;
        auto w = graph::buildBootstrapping(params, wopt);
        auto r = sched::scheduleWorkloadMad(w, crophe.cfg);
        r.design = "MAD";
        report("MAD", r, base.stats.cycles);
    }

    sched::SchedOptions opt;  // cross-operator dataflow on
    auto run_mode = [&](const char *label, bool nttdec, bool hybrot) {
        opt.nttDecomp = nttdec;
        auto choice = sched::chooseRotationScheme("bootstrap", params,
                                                  crophe.cfg, opt, hybrot);
        choice.result.design = label;
        report(label, choice.result, base.stats.cycles);
    };
    run_mode("Base", false, false);
    run_mode("+NTTDec", true, false);
    run_mode("+HybRot", false, true);
    run_mode("Both", true, true);
}

}  // namespace

int
main()
{
    setVerbose(false);
    bench::printHeader("Figure 11: technique breakdown, bootstrapping");
    breakdown("ARK+MAD", "CROPHE-64", 64.0);
    std::printf("\n");
    breakdown("SHARP+MAD", "CROPHE-36", 45.0);
    return 0;
}
