/**
 * @file
 * Reproduces Table IV: PE / NoC / SRAM-bandwidth / DRAM-bandwidth
 * utilization when executing ResNet-20 on each design.
 */

#include <cstdio>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/logging.h"

using namespace crophe;

int
main()
{
    setVerbose(false);
    bench::printHeader("Table IV: resource utilization, ResNet-20");
    std::printf("  %-16s %8s %8s %10s %10s\n", "design", "PEs", "NoC b/w",
                "SRAM b/w", "DRAM b/w");
    const char *names[] = {"ARK+MAD",   "CROPHE-64", "CROPHE-p-64",
                           "SHARP+MAD", "CROPHE-36", "CROPHE-p-36"};
    for (const char *name : names) {
        auto d = baselines::designByName(name);
        auto r = baselines::runDesign(d, "resnet20");
        // Baselines assume idealized NoC (Section VII-B).
        if (d.mad) {
            std::printf("  %-16s %7.2f%% %8s %9.2f%% %9.2f%%\n", name,
                        100 * r.stats.peUtil, "-", 100 * r.stats.sramBwUtil,
                        100 * r.stats.dramBwUtil);
        } else {
            std::printf("  %-16s %7.2f%% %7.2f%% %9.2f%% %9.2f%%\n", name,
                        100 * r.stats.peUtil, 100 * r.stats.nocUtil,
                        100 * r.stats.sramBwUtil, 100 * r.stats.dramBwUtil);
        }
    }
    return 0;
}
