/**
 * @file
 * google-benchmark microkernels for the functional NTT layer: merged
 * radix-2 negacyclic NTT and the four-step decomposed transform across
 * ring sizes, plus the modular-arithmetic primitives.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "common/rng.h"
#include "fhe/modarith.h"
#include "fhe/ntt.h"
#include "fhe/ntt_fourstep.h"
#include "fhe/primes.h"

using namespace crophe;
using namespace crophe::fhe;

namespace {

std::vector<u64>
randomPoly(u64 n, u64 q, u64 seed)
{
    Rng rng(seed);
    std::vector<u64> a(n);
    for (auto &x : a)
        x = rng.nextBounded(q);
    return a;
}

void
BM_NttForward(benchmark::State &state)
{
    const u64 n = 1ull << state.range(0);
    auto primes = generateNttPrimes(50, n, 1);
    Modulus mod(primes[0]);
    NttTables ntt(n, mod);
    auto a = randomPoly(n, mod.value(), 1);
    for (auto _ : state) {
        ntt.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttForward)->DenseRange(10, 14);

void
BM_NttRoundTrip(benchmark::State &state)
{
    const u64 n = 1ull << state.range(0);
    auto primes = generateNttPrimes(50, n, 1);
    Modulus mod(primes[0]);
    NttTables ntt(n, mod);
    auto a = randomPoly(n, mod.value(), 2);
    for (auto _ : state) {
        ntt.forward(a);
        ntt.inverse(a);
        benchmark::DoNotOptimize(a.data());
    }
}
BENCHMARK(BM_NttRoundTrip)->DenseRange(10, 14);

void
BM_FourStepForward(benchmark::State &state)
{
    const u64 n1 = 1ull << (state.range(0) / 2);
    const u64 n2 = 1ull << (state.range(0) - state.range(0) / 2);
    auto primes = generateNttPrimes(50, n1 * n2, 1);
    Modulus mod(primes[0]);
    FourStepNtt fs(n1, n2, mod);
    auto a = randomPoly(n1 * n2, mod.value(), 3);
    for (auto _ : state) {
        auto out = fs.forward(a);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FourStepForward)->DenseRange(10, 12);

void
BM_BarrettMul(benchmark::State &state)
{
    auto primes = generateNttPrimes(55, 1 << 10, 1);
    Modulus mod(primes[0]);
    Rng rng(4);
    u64 a = rng.nextBounded(mod.value());
    u64 b = rng.nextBounded(mod.value());
    for (auto _ : state) {
        a = mod.mul(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_BarrettMul);

void
BM_ShoupMul(benchmark::State &state)
{
    auto primes = generateNttPrimes(55, 1 << 10, 1);
    Modulus mod(primes[0]);
    Rng rng(5);
    ShoupMul s(rng.nextBounded(mod.value()), mod);
    u64 a = rng.nextBounded(mod.value());
    for (auto _ : state) {
        a = s.mul(a, mod.value());
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ShoupMul);

}  // namespace

int
main(int argc, char **argv)
{
    // google-benchmark consumes its own --benchmark_* flags first; the
    // remainder goes through the shared CommonFlags surface so
    // --threads / --kernel work like in every other harness.
    benchmark::Initialize(&argc, argv);
    cli::FlagParser flags("NTT microkernels (google-benchmark).");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kKernel);
    if (!flags.parse(argc, argv))
        return 1;
    try {
        common.apply();
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
