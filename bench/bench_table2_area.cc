/**
 * @file
 * Reproduces Table II: area and power breakdown of CROPHE-36 at 7 nm,
 * with the paper's published numbers alongside for comparison.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "hw/area_model.h"

using namespace crophe;

int
main()
{
    hw::HwConfig cfg = hw::configCrophe36();
    hw::PeBreakdown pe = hw::peAreaPower(cfg);

    bench::printHeader("Table II (top): one CROPHE-36 PE");
    std::printf("  %-32s %12s %12s %12s\n", "component", "area um^2",
                "paper um^2", "power mW");
    std::printf("  %-32s %12.2f %12.2f %12.2f\n", "256 modular multipliers",
                pe.multipliersUm2, 337650.31, pe.multipliersMw);
    std::printf("  %-32s %12.2f %12.2f %12.2f\n",
                "256 modular adders/subtractors", pe.addersUm2, 27784.55,
                pe.addersMw);
    std::printf("  %-32s %12.2f %12.2f %12.2f\n", "64 kB register files",
                pe.regFileUm2, 67242.02, pe.regFileMw);
    std::printf("  %-32s %12.2f %12.2f %12.2f\n", "inter-lane network",
                pe.interLaneUm2, 15806.76, pe.interLaneMw);
    std::printf("  %-32s %12.2f %12.2f %12.2f\n", "PE total", pe.totalUm2,
                448483.64, pe.totalMw);

    bench::printHeader("Table II (bottom): CROPHE-36 chip");
    hw::AreaPower chip = hw::chipAreaPower(cfg);
    std::printf("  %-32s %12s %12s\n", "component", "area mm^2", "power W");
    for (const auto &row : chip.rows)
        std::printf("  %-32s %12.2f %12.2f\n", row.component.c_str(),
                    row.areaMm2, row.powerW);
    std::printf("  %-32s %12.2f %12.2f   (paper: 251.13 / 181.11)\n",
                "Total", chip.totalAreaMm2, chip.totalPowerW);
    return 0;
}
