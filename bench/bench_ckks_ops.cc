/**
 * @file
 * google-benchmark kernels for the functional CKKS layer: encode,
 * encrypt, HAdd, PMult, HMult (+relinearization), rescale and HRot on a
 * compact but complete context.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "common/rng.h"
#include "fhe/bsgs.h"
#include "fhe/ckks.h"

using namespace crophe;
using namespace crophe::fhe;

namespace {

struct Bench
{
    FheContext ctx;
    KeyGenerator keygen;
    PublicKey pk;
    KswKey rlk;
    KswKey rk1;
    Evaluator eval;
    Ciphertext ct0;
    Ciphertext ct1;
    Plaintext pt;

    static FheContextParams
    params()
    {
        FheContextParams p;
        p.n = 1 << 12;
        p.levels = 4;
        p.alpha = 2;
        return p;
    }

    Bench()
        : ctx(params()), keygen(ctx, 42), pk(keygen.makePublicKey()),
          rlk(keygen.makeRelinKey()), rk1(keygen.makeRotationKey(1)),
          eval(ctx, 7)
    {
        Rng rng(8);
        std::vector<double> v(ctx.n() / 2);
        for (auto &x : v)
            x = rng.nextDouble() - 0.5;
        pt = eval.encoder().encodeReal(v, ctx.maxLevel());
        ct0 = eval.encrypt(pt, pk);
        ct1 = eval.encrypt(pt, pk);
    }
};

Bench &
fixture()
{
    static Bench b;
    return b;
}

void
BM_Encode(benchmark::State &state)
{
    auto &b = fixture();
    std::vector<double> v(b.ctx.n() / 2, 0.25);
    for (auto _ : state) {
        auto p = b.eval.encoder().encodeReal(v, 2);
        benchmark::DoNotOptimize(p.scale);
    }
}
BENCHMARK(BM_Encode);

void
BM_Encrypt(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.encrypt(b.pt, b.pk);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_Encrypt);

void
BM_HAdd(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.add(b.ct0, b.ct1);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_HAdd);

void
BM_PMult(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.mulPlain(b.ct0, b.pt);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_PMult);

void
BM_HMultRelin(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.mul(b.ct0, b.ct1, b.rlk);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_HMultRelin);

void
BM_Rescale(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.rescale(b.ct0);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_Rescale);

void
BM_HRot(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.rotate(b.ct0, 1, b.rk1);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_HRot);

}  // namespace

int
main(int argc, char **argv)
{
    // google-benchmark consumes its own --benchmark_* flags first; the
    // remainder goes through the shared CommonFlags surface so
    // --threads / --kernel work like in every other harness.
    benchmark::Initialize(&argc, argv);
    cli::FlagParser flags("CKKS operation kernels (google-benchmark).");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kKernel);
    if (!flags.parse(argc, argv))
        return 1;
    try {
        common.apply();
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
