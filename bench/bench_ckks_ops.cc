/**
 * @file
 * google-benchmark kernels for the functional CKKS layer: encode,
 * encrypt, HAdd, PMult, HMult (+relinearization), rescale and HRot on a
 * compact but complete context — plus the four key-switch dataflows and
 * the BSGS PtMatVecMult under each rotation strategy, each row reporting
 * its measured NTT limb-transform count (DESIGN.md §15).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "common/rng.h"
#include "fhe/bsgs.h"
#include "fhe/ckks.h"
#include "fhe/ntt.h"

using namespace crophe;
using namespace crophe::fhe;

namespace {

struct Bench
{
    FheContext ctx;
    KeyGenerator keygen;
    PublicKey pk;
    KswKey rlk;
    KswKey rk1;
    Evaluator eval;
    Ciphertext ct0;
    Ciphertext ct1;
    Plaintext pt;

    static FheContextParams
    params()
    {
        FheContextParams p;
        p.n = 1 << 12;
        p.levels = 4;
        p.alpha = 2;
        return p;
    }

    Bench()
        : ctx(params()), keygen(ctx, 42), pk(keygen.makePublicKey()),
          rlk(keygen.makeRelinKey()), rk1(keygen.makeRotationKey(1)),
          eval(ctx, 7)
    {
        Rng rng(8);
        std::vector<double> v(ctx.n() / 2);
        for (auto &x : v)
            x = rng.nextDouble() - 0.5;
        pt = eval.encoder().encodeReal(v, ctx.maxLevel());
        ct0 = eval.encrypt(pt, pk);
        ct1 = eval.encrypt(pt, pk);
    }
};

Bench &
fixture()
{
    static Bench b;
    return b;
}

void
BM_Encode(benchmark::State &state)
{
    auto &b = fixture();
    std::vector<double> v(b.ctx.n() / 2, 0.25);
    for (auto _ : state) {
        auto p = b.eval.encoder().encodeReal(v, 2);
        benchmark::DoNotOptimize(p.scale);
    }
}
BENCHMARK(BM_Encode);

void
BM_Encrypt(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.encrypt(b.pt, b.pk);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_Encrypt);

void
BM_HAdd(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.add(b.ct0, b.ct1);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_HAdd);

void
BM_PMult(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.mulPlain(b.ct0, b.pt);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_PMult);

void
BM_HMultRelin(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.mul(b.ct0, b.ct1, b.rlk);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_HMultRelin);

void
BM_Rescale(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.rescale(b.ct0);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_Rescale);

void
BM_HRot(benchmark::State &state)
{
    auto &b = fixture();
    for (auto _ : state) {
        auto c = b.eval.rotate(b.ct0, 1, b.rk1);
        benchmark::DoNotOptimize(c.scale);
    }
}
BENCHMARK(BM_HRot);

/** HRot under each key-switch dataflow; ntt_limbs = measured transforms
 *  per iteration, so the CiFlow reorderings' NTT savings are visible in
 *  the table, not just in the op-count model. */
void
BM_HRotDataflow(benchmark::State &state, KeySwitchDataflow df)
{
    auto &b = fixture();
    b.eval.setKeySwitchDataflow(df);
    u64 limbs0 = nttLimbTransforms();
    for (auto _ : state) {
        auto c = b.eval.rotate(b.ct0, 1, b.rk1);
        benchmark::DoNotOptimize(c.scale);
    }
    u64 limbs = nttLimbTransforms() - limbs0;
    b.eval.setKeySwitchDataflow(KeySwitchDataflow::Fused);
    state.counters["ntt_limbs"] = benchmark::Counter(
        static_cast<double>(limbs) /
        static_cast<double>(std::max<i64>(1, state.iterations())));
}
BENCHMARK_CAPTURE(BM_HRotDataflow, fused, KeySwitchDataflow::Fused);
BENCHMARK_CAPTURE(BM_HRotDataflow, ostat, KeySwitchDataflow::OutputStationary);
BENCHMARK_CAPTURE(BM_HRotDataflow, reordup, KeySwitchDataflow::ReorderedModUp);

/** BSGS PtMatVecMult (Algorithm 1) at matching (n1, n2) under each
 *  rotation strategy. TripleHoisted must show fewer ntt_limbs and less
 *  time than Hybrid: its giant steps defer (n2-1) ModDowns into one. */
void
BM_BsgsMatVec(benchmark::State &state, RotStrategy strategy, u32 r_hyb)
{
    auto &b = fixture();
    const u32 n1 = 8, n2 = 8;
    const u64 s = n1 * n2;
    Rng rng(17);
    std::vector<std::vector<double>> m(s, std::vector<double>(s));
    for (auto &row : m)
        for (auto &x : row)
            x = rng.nextDouble() - 0.5;
    auto diagonals = matrixDiagonals(m, b.ctx.n() / 2);
    BsgsKeys keys;
    for (i64 r : requiredRotations(n1, n2, strategy, r_hyb))
        keys.rot.emplace(r, b.keygen.makeRotationKey(r));
    u64 limbs0 = nttLimbTransforms();
    for (auto _ : state) {
        auto c = ptMatVecMult(b.eval, b.ct0, diagonals, n1, n2, strategy,
                              r_hyb, keys);
        benchmark::DoNotOptimize(c.scale);
    }
    u64 limbs = nttLimbTransforms() - limbs0;
    state.counters["ntt_limbs"] = benchmark::Counter(
        static_cast<double>(limbs) /
        static_cast<double>(std::max<i64>(1, state.iterations())));
}
BENCHMARK_CAPTURE(BM_BsgsMatVec, minks, RotStrategy::MinKs, 1);
BENCHMARK_CAPTURE(BM_BsgsMatVec, hoisting, RotStrategy::Hoisting, 1);
BENCHMARK_CAPTURE(BM_BsgsMatVec, hybrid_r4, RotStrategy::Hybrid, 4);
BENCHMARK_CAPTURE(BM_BsgsMatVec, triple, RotStrategy::TripleHoisted, 1);

}  // namespace

int
main(int argc, char **argv)
{
    // google-benchmark consumes its own --benchmark_* flags first; the
    // remainder goes through the shared CommonFlags surface so
    // --threads / --kernel work like in every other harness.
    benchmark::Initialize(&argc, argv);
    cli::FlagParser flags("CKKS operation kernels (google-benchmark).");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kKernel);
    if (!flags.parse(argc, argv))
        return 1;
    try {
        common.apply();
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
