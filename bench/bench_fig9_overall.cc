/**
 * @file
 * Reproduces Figure 9: overall performance comparison across the four
 * workloads and all design points (baseline+MAD, CROPHE-hw+MAD, CROPHE,
 * CROPHE-p) for the 64-bit and 36-bit groups.
 *
 * Pass "--simulate" to drive the cycle-level simulator instead of the
 * analytical cost model (slower; same shapes). With --plan-cache DIR
 * (or $CROPHE_PLAN_CACHE) schedule searches are served from / persisted
 * to a content-addressed plan cache: a warm rerun prints byte-identical
 * tables while skipping the search work (DESIGN.md §8). With
 * --stats-out FILE the telemetry registry — sched.search.*, sched.enum.*
 * and plan.cache.* — is dumped as JSON, which is how the CI cold/warm
 * job asserts that the second run actually hit the cache.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/shutdown.h"
#include "plan/plan_cache.h"
#include "sched/hybrid_rotation.h"
#include "telemetry/telemetry.h"

using namespace crophe;

int
main(int argc, char **argv)
{
    bool simulate = false;
    std::string rot_schemes = "all";
    std::string ks_dataflows = "all";
    cli::FlagParser flags("Figure 9: overall performance comparison.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kStatsOut |
                                   cli::CommonFlags::kPlanCache);
    flags.addBool("--simulate", &simulate,
                  "cycle-level simulation instead of the cost model");
    flags.addString("--rot-schemes", &rot_schemes,
                    "rotation schemes to search "
                    "(minks|hoisting|hybrid|triple|all, comma-separated)");
    flags.addString("--ks-dataflows", &ks_dataflows,
                    "key-switch dataflows to search "
                    "(fused|ostat|reordup|all, comma-separated)");
    if (!flags.parse(argc, argv))
        return 1;
    const std::string &plan_dir = common.planCacheDir;
    const std::string &stats_out = common.statsOut;
    setVerbose(false);
    installShutdownHandler();

    std::unique_ptr<plan::PlanCache> cache;
    if (!plan_dir.empty())
        cache = std::make_unique<plan::PlanCache>(plan_dir);
    telemetry::SearchTelemetry search;
    baselines::RunOptions run;
    run.simulate = simulate;
    run.planCache = cache.get();
    if (!stats_out.empty())
        run.search = &search;
    try {
        run.rotSchemeMask = sched::parseRotSchemes(rot_schemes);
        run.ksDataflowMask = sched::parseKsDataflows(ks_dataflows);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        flags.printUsage(argv[0], std::cerr);
        return 1;
    }

    // On SIGINT/SIGTERM the telemetry collected so far is still flushed
    // as valid JSON, with run.truncated marking the early exit.
    auto flush_stats = [&](bool truncated) {
        if (stats_out.empty())
            return true;
        telemetry::StatsRegistry registry;
        search.registerStats(registry, "sched");
        if (cache != nullptr)
            cache->registerStats(registry);
        if (truncated)
            registry.scalar("run.truncated",
                            "run was interrupted by SIGINT/SIGTERM")
                .set(1.0);
        std::ofstream os(stats_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", stats_out.c_str());
            return false;
        }
        registry.dumpJson(os);
        os << "\n";
        return true;
    };

    const char *workloads[] = {"bootstrap", "helr", "resnet20",
                               "resnet110"};
    for (auto group : {baselines::designs64(), baselines::designs36()}) {
        bench::printHeader(group[0].cfg.wordBits == 64
                               ? "Figure 9 (64-bit group)"
                               : "Figure 9 (36-bit group)");
        // Fan the workload x design matrix out across the pool; rows are
        // printed afterwards in the original order, so stdout is
        // byte-identical to the serial harness.
        const u64 kW = std::size(workloads), kD = group.size();
        std::vector<std::unique_ptr<sched::WorkloadResult>> results(kW * kD);
        parallelFor(0, kW * kD, [&](u64 i) {
            if (shutdownRequested())
                return;  // leave the cell empty; flushed as truncated below
            results[i] = std::make_unique<sched::WorkloadResult>(
                baselines::runDesign(group[i % kD], workloads[i / kD],
                                     run));
        });
        if (shutdownRequested()) {
            std::fprintf(stderr,
                         "\ninterrupted: flushing partial telemetry\n");
            flush_stats(/*truncated=*/true);
            return kShutdownExitCode;
        }
        for (u64 wi = 0; wi < kW; ++wi) {
            std::printf("%s:\n", workloads[wi]);
            double base = results[wi * kD]->stats.cycles;
            for (u64 di = 0; di < kD; ++di)
                bench::printResultRow(*results[wi * kD + di], base);
        }
    }

    // The table above must stay byte-identical across cold and warm cache
    // runs, so the telemetry goes to a file, never to stdout.
    if (!flush_stats(/*truncated=*/false))
        return 1;
    return 0;
}
