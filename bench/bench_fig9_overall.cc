/**
 * @file
 * Reproduces Figure 9: overall performance comparison across the four
 * workloads and all design points (baseline+MAD, CROPHE-hw+MAD, CROPHE,
 * CROPHE-p) for the 64-bit and 36-bit groups.
 *
 * Pass "--simulate" to drive the cycle-level simulator instead of the
 * analytical cost model (slower; same shapes).
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/parallel.h"

using namespace crophe;

int
main(int argc, char **argv)
{
    bench::applyThreadsFlag(argc, argv);
    bool simulate = argc > 1 && std::strcmp(argv[1], "--simulate") == 0;
    setVerbose(false);

    const char *workloads[] = {"bootstrap", "helr", "resnet20",
                               "resnet110"};
    for (auto group : {baselines::designs64(), baselines::designs36()}) {
        bench::printHeader(group[0].cfg.wordBits == 64
                               ? "Figure 9 (64-bit group)"
                               : "Figure 9 (36-bit group)");
        // Fan the workload x design matrix out across the pool; rows are
        // printed afterwards in the original order, so stdout is
        // byte-identical to the serial harness.
        const u64 kW = std::size(workloads), kD = group.size();
        std::vector<std::unique_ptr<sched::WorkloadResult>> results(kW * kD);
        parallelFor(0, kW * kD, [&](u64 i) {
            results[i] = std::make_unique<sched::WorkloadResult>(
                baselines::runDesign(group[i % kD], workloads[i / kD],
                                     simulate));
        });
        for (u64 wi = 0; wi < kW; ++wi) {
            std::printf("%s:\n", workloads[wi]);
            double base = results[wi * kD]->stats.cycles;
            for (u64 di = 0; di < kD; ++di)
                bench::printResultRow(*results[wi * kD + di], base);
        }
    }
    return 0;
}
