/**
 * @file
 * Reproduces Figure 9: overall performance comparison across the four
 * workloads and all design points (baseline+MAD, CROPHE-hw+MAD, CROPHE,
 * CROPHE-p) for the 64-bit and 36-bit groups.
 *
 * Pass "--simulate" to drive the cycle-level simulator instead of the
 * analytical cost model (slower; same shapes).
 */

#include <cstdio>
#include <cstring>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/logging.h"

using namespace crophe;

int
main(int argc, char **argv)
{
    bool simulate = argc > 1 && std::strcmp(argv[1], "--simulate") == 0;
    setVerbose(false);

    const char *workloads[] = {"bootstrap", "helr", "resnet20",
                               "resnet110"};
    for (auto group : {baselines::designs64(), baselines::designs36()}) {
        bench::printHeader(group[0].cfg.wordBits == 64
                               ? "Figure 9 (64-bit group)"
                               : "Figure 9 (36-bit group)");
        for (const char *w : workloads) {
            std::printf("%s:\n", w);
            double base = 0.0;
            for (const auto &d : group) {
                auto r = baselines::runDesign(d, w, simulate);
                if (base == 0.0)
                    base = r.stats.cycles;
                bench::printResultRow(r, base);
            }
        }
    }
    return 0;
}
