#ifndef CROPHE_BENCH_BENCH_UTIL_H_
#define CROPHE_BENCH_BENCH_UTIL_H_

/** Shared table-printing helpers for the reproduction harnesses. */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "sched/cost_model.h"

namespace crophe::bench {

/**
 * Consume an optional "--threads N" flag anywhere in argv: size the
 * process-wide pool and splice the two tokens out so the bench's own
 * flag parsing never sees them. Results are bit-identical for any N
 * (DESIGN.md §7); the flag only changes wall-clock.
 */
inline void
applyThreadsFlag(int &argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") != 0)
            continue;
        ThreadPool::setGlobalThreads(static_cast<u32>(
            std::strtoul(argv[i + 1], nullptr, 10)));
        for (int k = i + 2; k < argc; ++k)
            argv[k - 2] = argv[k];
        argc -= 2;
        return;
    }
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n===== %s =====\n", title.c_str());
}

inline void
printResultRow(const sched::WorkloadResult &r, double baseline_cycles)
{
    std::printf("  %-16s  %10.3e cycles  %8.3f ms  speedup %5.2fx  "
                "dram %9.3e words (aux %9.3e)\n",
                r.design.c_str(), r.stats.cycles, r.seconds * 1e3,
                baseline_cycles / r.stats.cycles,
                static_cast<double>(r.stats.dramWords),
                static_cast<double>(r.stats.auxDramWords));
}

}  // namespace crophe::bench

#endif  // CROPHE_BENCH_BENCH_UTIL_H_
