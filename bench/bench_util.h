#ifndef CROPHE_BENCH_BENCH_UTIL_H_
#define CROPHE_BENCH_BENCH_UTIL_H_

/** Shared table-printing helpers for the reproduction harnesses. */

#include <cstdio>
#include <string>

#include "sched/cost_model.h"

namespace crophe::bench {

inline void
printHeader(const std::string &title)
{
    std::printf("\n===== %s =====\n", title.c_str());
}

inline void
printResultRow(const sched::WorkloadResult &r, double baseline_cycles)
{
    std::printf("  %-16s  %10.3e cycles  %8.3f ms  speedup %5.2fx  "
                "dram %9.3e words (aux %9.3e)",
                r.design.c_str(), r.stats.cycles, r.seconds * 1e3,
                baseline_cycles / r.stats.cycles,
                static_cast<double>(r.stats.dramWords),
                static_cast<double>(r.stats.auxDramWords));
    // Variant column only for designs that ran the rotation-scheme search
    // (MAD rows have no choice to report).
    if (!r.rotScheme.empty())
        std::printf("  [rot=%s ks=%s]", r.rotScheme.c_str(),
                    r.ksDataflow.c_str());
    std::printf("\n");
}

}  // namespace crophe::bench

#endif  // CROPHE_BENCH_BENCH_UTIL_H_
