/**
 * @file
 * Reproduces Figure 10: CROPHE's speedup over the best baseline as the
 * global SRAM capacity shrinks — CROPHE-64 vs ARK (512→64 MB) and
 * CROPHE-36 vs SHARP (180→45 MB), on all four workloads.
 *
 * With --plan-cache DIR (or $CROPHE_PLAN_CACHE) schedule searches are
 * served from / persisted to the content-addressed plan cache
 * (DESIGN.md §8); reruns print byte-identical tables either way.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/shutdown.h"
#include "plan/plan_cache.h"

using namespace crophe;

namespace {

void
sweep(const char *baseline, const char *crophe, const char *crophe_p,
      std::initializer_list<double> sizes,
      const baselines::RunOptions &run)
{
    const char *workloads[] = {"bootstrap", "helr", "resnet20",
                               "resnet110"};
    const char *designs[] = {baseline, crophe, crophe_p};
    // One job per (workload, size, design) cell, fanned out across the
    // pool; the table is printed afterwards in the original order.
    const u64 kW = std::size(workloads), kS = sizes.size(), kD = 3;
    std::vector<std::unique_ptr<sched::WorkloadResult>> results(kW * kS *
                                                                kD);
    parallelFor(0, results.size(), [&](u64 i) {
        if (shutdownRequested())
            return;  // drained below
        const char *w = workloads[i / (kS * kD)];
        double mb = sizes.begin()[(i / kD) % kS];
        const char *d = designs[i % kD];
        results[i] = std::make_unique<sched::WorkloadResult>(
            baselines::runDesign(
                baselines::withSram(baselines::designByName(d), mb), w,
                run));
    });
    if (shutdownRequested())
        return;  // caller exits with the shutdown code
    for (u64 wi = 0; wi < kW; ++wi) {
        std::printf("%s:\n", workloads[wi]);
        for (u64 si = 0; si < kS; ++si) {
            u64 at = (wi * kS + si) * kD;
            const auto &base = *results[at];
            const auto &c = *results[at + 1];
            const auto &cp = *results[at + 2];
            std::printf("  %6.0f MB: %-10s %9.3e | CROPHE %9.3e "
                        "(%4.2fx) | CROPHE-p %9.3e (%4.2fx)\n",
                        sizes.begin()[si], baseline, base.stats.cycles,
                        c.stats.cycles,
                        base.stats.cycles / c.stats.cycles,
                        cp.stats.cycles,
                        base.stats.cycles / cp.stats.cycles);
        }
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    cli::FlagParser flags("Figure 10: speedup under shrinking SRAM.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kPlanCache);
    if (!flags.parse(argc, argv))
        return 1;
    const std::string &plan_dir = common.planCacheDir;
    setVerbose(false);
    installShutdownHandler();

    std::unique_ptr<plan::PlanCache> cache;
    if (!plan_dir.empty())
        cache = std::make_unique<plan::PlanCache>(plan_dir);
    baselines::RunOptions run;
    run.planCache = cache.get();

    bench::printHeader("Figure 10(a,b): CROPHE-64 vs ARK, shrinking SRAM");
    sweep("ARK+MAD", "CROPHE-64", "CROPHE-p-64", {512.0, 256.0, 128.0,
                                                  64.0}, run);
    if (shutdownRequested()) {
        std::fprintf(stderr, "\ninterrupted\n");
        return kShutdownExitCode;
    }
    bench::printHeader("Figure 10(c,d): CROPHE-36 vs SHARP, shrinking SRAM");
    sweep("SHARP+MAD", "CROPHE-36", "CROPHE-p-36", {180.0, 90.0, 45.0}, run);
    if (shutdownRequested()) {
        std::fprintf(stderr, "\ninterrupted\n");
        return kShutdownExitCode;
    }
    return 0;
}
