/**
 * @file
 * Reproduces Figure 10: CROPHE's speedup over the best baseline as the
 * global SRAM capacity shrinks — CROPHE-64 vs ARK (512→64 MB) and
 * CROPHE-36 vs SHARP (180→45 MB), on all four workloads.
 */

#include <cstdio>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/logging.h"

using namespace crophe;

namespace {

void
sweep(const char *baseline, const char *crophe, const char *crophe_p,
      std::initializer_list<double> sizes)
{
    const char *workloads[] = {"bootstrap", "helr", "resnet20",
                               "resnet110"};
    for (const char *w : workloads) {
        std::printf("%s:\n", w);
        for (double mb : sizes) {
            auto base = baselines::runDesign(
                baselines::withSram(baselines::designByName(baseline), mb),
                w);
            auto c = baselines::runDesign(
                baselines::withSram(baselines::designByName(crophe), mb),
                w);
            auto cp = baselines::runDesign(
                baselines::withSram(baselines::designByName(crophe_p), mb),
                w);
            std::printf("  %6.0f MB: %-10s %9.3e | CROPHE %9.3e "
                        "(%4.2fx) | CROPHE-p %9.3e (%4.2fx)\n",
                        mb, baseline, base.stats.cycles, c.stats.cycles,
                        base.stats.cycles / c.stats.cycles,
                        cp.stats.cycles,
                        base.stats.cycles / cp.stats.cycles);
        }
    }
}

}  // namespace

int
main()
{
    setVerbose(false);
    bench::printHeader("Figure 10(a,b): CROPHE-64 vs ARK, shrinking SRAM");
    sweep("ARK+MAD", "CROPHE-64", "CROPHE-p-64", {512.0, 256.0, 128.0,
                                                  64.0});
    bench::printHeader("Figure 10(c,d): CROPHE-36 vs SHARP, shrinking SRAM");
    sweep("SHARP+MAD", "CROPHE-36", "CROPHE-p-36", {180.0, 90.0, 45.0});
    return 0;
}
