/**
 * @file
 * Tracked pod strong-scaling benchmark (DESIGN.md §12): end-to-end time
 * for ResNet-110 and batched bootstrapping on 1/2/4/8-chip pods of the
 * CROPHE-36 design.
 *
 * Every point — including the 1-chip reference — runs through the pod
 * scheduler, so the comparison isolates sharding + interconnect cost
 * from any single-chip/pod modeling difference. One in-memory plan
 * cache is shared across all pod sizes; the pod digest salts its keys,
 * so the sharing doubles as a live check that plans never cross-serve
 * between pod shapes. Results are byte-identical at any --threads
 * value (DESIGN.md §7).
 *
 * Flags:
 *   --json <path>   write BENCH_pod.json-style output
 *   --smoke         ResNet-20 + small bootstrap batch for CI
 *   --batch N       bootstrapping batch size (default 8)
 *   --threads N     size the process-wide pool (wall-clock only)
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "graph/workloads.h"
#include "plan/plan_cache.h"
#include "pod/pod.h"

using namespace crophe;

namespace {

struct Point
{
    std::string workload;
    u32 chips = 0;
    double coldMs = 0.0;
    double warmMs = 0.0;
    double speedup = 0.0;      ///< cold vs the 1-chip pod point
    double warmSpeedup = 0.0;  ///< steady-state vs the 1-chip pod point
    u64 interchipWords = 0;
    u64 transfers = 0;
};

void
sweepWorkload(const graph::Workload &w, const hw::HwConfig &chip,
              plan::PlanCache &cache, std::vector<Point> &out)
{
    bench::printHeader("pod strong scaling: " + w.name + " on " +
                       chip.name);
    std::printf("  %5s %12s %12s %8s %8s %14s %9s\n", "chips", "cold ms",
                "warm ms", "speedup", "w.spdup", "interchip wd",
                "transfers");

    sched::SchedOptions so;
    so.planCache = &cache;
    double base = 0.0, warmBase = 0.0;
    for (u32 chips : {1u, 2u, 4u, 8u}) {
        pod::PodConfig pc;
        pc.chips = chips;
        auto pr = pod::schedulePodWorkload(w, chip, pc, so);
        if (chips == 1) {
            base = pr.seconds;
            warmBase = pr.warmSeconds;
        }

        Point p;
        p.workload = w.name;
        p.chips = chips;
        p.coldMs = pr.seconds * 1e3;
        p.warmMs = pr.warmSeconds * 1e3;
        p.speedup = base / pr.seconds;
        p.warmSpeedup = warmBase / pr.warmSeconds;
        p.interchipWords = pr.interchipWords;
        p.transfers = pr.transfers;
        out.push_back(p);

        std::printf("  %5u %12.3f %12.3f %7.2fx %7.2fx %14llu %9llu\n",
                    chips, p.coldMs, p.warmMs, p.speedup, p.warmSpeedup,
                    static_cast<unsigned long long>(p.interchipWords),
                    static_cast<unsigned long long>(p.transfers));
    }
}

void
writeJson(const std::string &path, const std::vector<Point> &points,
          bool smoke, u32 batch)
{
    std::ofstream os(path);
    if (!os)
        throw RecoverableError("cannot write " + path);
    os << "{\n  \"bench\": \"bench_pod\",\n";
    os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    os << "  \"bootstrap_batch\": " << batch << ",\n  \"results\": [\n";
    char buf[512];
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"workload\": \"%s\", \"chips\": %u, "
            "\"cold_ms\": %.3f, \"warm_ms\": %.3f, \"speedup\": %.3f, "
            "\"warm_speedup\": %.3f, \"interchip_words\": %llu, "
            "\"transfers\": %llu}%s\n",
            p.workload.c_str(), p.chips, p.coldMs, p.warmMs, p.speedup,
            p.warmSpeedup,
            static_cast<unsigned long long>(p.interchipWords),
            static_cast<unsigned long long>(p.transfers),
            i + 1 < points.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
    std::printf("\nwrote %zu scaling points to %s\n", points.size(),
                path.c_str());
}

int
run(int argc, char **argv)
{
    bool smoke = false;
    u32 batch = 8;
    std::string json;

    cli::FlagParser flags(
        "Pod strong scaling: ResNet-110 and batched bootstrapping on "
        "1/2/4/8 chips.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads);
    flags.addBool("--smoke", &smoke, "ResNet-20 + small batch for CI");
    flags.addUint("--batch", &batch, "bootstrapping batch size");
    flags.addString("--json", &json, "write BENCH_pod.json-style output");
    if (!flags.parse(argc, argv))
        return 1;
    try {
        cli::requirePositive("--batch", batch);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        flags.printUsage(argv[0], std::cerr);
        return 1;
    }

    auto design = baselines::designByName("CROPHE-36");
    graph::WorkloadOptions wopt;
    plan::PlanCache cache;  // shared across workloads and pod sizes
    std::vector<Point> points;

    if (smoke)
        batch = std::min(batch, 2u);
    auto resnet = graph::buildWorkload(smoke ? "resnet20" : "resnet110",
                                       design.params, wopt);
    sweepWorkload(resnet, design.cfg, cache, points);

    auto boot = graph::buildBootstrapping(design.params, wopt);
    boot.name = "bootstrap-x" + std::to_string(batch);
    for (auto &seg : boot.segments)
        seg.repetitions *= batch;
    sweepWorkload(boot, design.cfg, cache, points);

    if (!json.empty())
        writeJson(json, points, smoke, batch);
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
