/**
 * @file
 * Tracked microbenchmarks for the kernel layer (DESIGN.md §10): forward
 * and inverse NTT, BConv, and the end-to-end key-switch, each measured
 * per backend against the retained seed transform (referenceFwdNtt, the
 * eager per-butterfly scalar path) as the "before" baseline.
 *
 * Flags:
 *   --kernel scalar|avx2|avx512   restrict to one backend (plus baseline)
 *   --json <path>                 write BENCH_kernels.json-style output
 *   --smoke                       fast mode for CI (few iterations)
 *   --threads N                   size the process-wide pool
 *
 * Every measurement runs the same bit-identical code paths the library
 * uses; the differential tests in tests/fhe/test_kernels.cc are the
 * correctness side of this file.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "fhe/bconv.h"
#include "fhe/ckks.h"
#include "fhe/kernels/kernels.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"

using namespace crophe;
using namespace crophe::fhe;

namespace {

bool g_smoke = false;

/** Median-of-batches wall time per op, in nanoseconds. */
double
timeOp(const std::function<void()> &op)
{
    using clock = std::chrono::steady_clock;
    op();  // warm caches, resolve dispatch, fill the arena

    const double min_batch_ns = g_smoke ? 1e5 : 1e7;
    const int batches = g_smoke ? 3 : 7;

    // Scale the iteration count so one batch is long enough to time.
    u64 iters = 1;
    for (;;) {
        auto t0 = clock::now();
        for (u64 i = 0; i < iters; ++i)
            op();
        double ns = std::chrono::duration<double, std::nano>(clock::now() - t0)
                        .count();
        if (ns >= min_batch_ns || iters >= (1ull << 20))
            break;
        iters *= 2;
    }

    double best = 1e300;
    for (int b = 0; b < batches; ++b) {
        auto t0 = clock::now();
        for (u64 i = 0; i < iters; ++i)
            op();
        double ns = std::chrono::duration<double, std::nano>(clock::now() - t0)
                        .count();
        best = std::min(best, ns / static_cast<double>(iters));
    }
    return best;
}

struct Result
{
    std::string bench;    ///< fwd_ntt | inv_ntt | bconv | key_switch
    std::string backend;  ///< reference | scalar | avx2 | avx512
    u64 n;
    u64 limbs;  ///< 0 when not applicable
    double ns_per_op;
    double speedup;  ///< vs the "reference" row of the same (bench, n, limbs)
};

std::vector<Result> g_results;

void
record(const std::string &bench, const std::string &backend, u64 n, u64 limbs,
       double ns)
{
    double base = 0;
    for (const Result &r : g_results)
        if (r.bench == bench && r.n == n && r.limbs == limbs &&
            r.backend == "reference")
            base = r.ns_per_op;
    double speedup = base > 0 ? base / ns : 1.0;
    g_results.push_back({bench, backend, n, limbs, ns, speedup});
    std::printf("  %-10s  %-9s  n=%-6llu limbs=%-2llu  %12.1f ns/op"
                "  speedup %5.2fx\n",
                bench.c_str(), backend.c_str(),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(limbs), ns, speedup);
}

std::vector<kernels::Backend>
selectedBackends(const std::string &only)
{
    std::vector<kernels::Backend> all = {kernels::Backend::Scalar,
                                         kernels::Backend::Avx2,
                                         kernels::Backend::Avx512};
    std::vector<kernels::Backend> out;
    for (kernels::Backend b : all) {
        if (!kernels::available(b))
            continue;
        if (!only.empty() && only != kernels::backendName(b))
            continue;
        out.push_back(b);
    }
    return out;
}

void
benchNtt(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== NTT kernels =====\n");
    Rng rng(123);
    for (u64 n : {u64(1) << 14, u64(1) << 15, u64(1) << 16}) {
        u64 q = generateNttPrimes(59, n, 1)[0];
        Modulus mod(q);
        NttTables tables(n, mod);
        kernels::NttView fwd = tables.forwardView();
        kernels::NttView inv = tables.inverseView();

        std::vector<u64> base(n);
        for (auto &x : base)
            x = rng.nextBounded(q);
        std::vector<u64> buf = base;

        record("fwd_ntt", "reference", n, 1,
               timeOp([&] { kernels::referenceFwdNtt(buf.data(), fwd); }));
        record("inv_ntt", "reference", n, 1,
               timeOp([&] { kernels::referenceInvNtt(buf.data(), inv); }));

        for (kernels::Backend b : backends) {
            kernels::setBackend(b);
            const kernels::KernelTable &kt = kernels::table();
            buf = base;
            record("fwd_ntt", kt.name, n, 1,
                   timeOp([&] { kt.fwdNtt(buf.data(), fwd); }));
            record("inv_ntt", kt.name, n, 1,
                   timeOp([&] { kt.invNtt(buf.data(), inv); }));
        }
    }
}

void
benchBconv(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== BConv (RNS base conversion) =====\n");
    for (u32 levels : {4u, 8u}) {
        FheContextParams p;
        p.n = 1 << 14;
        p.levels = levels;
        p.alpha = 2;
        FheContext ctx(p);
        Rng rng(321);
        RnsPoly in(ctx, ctx.qBasis(levels), Rep::Coeff);
        in.uniformRandom(rng);
        BaseConverter conv(ctx, ctx.qBasis(levels), ctx.pBasis());
        u64 limbs = in.limbCount();

        // The seed had no separate BConv kernel; scalar is the baseline.
        kernels::setBackend(kernels::Backend::Scalar);
        record("bconv", "reference", ctx.n(), limbs, timeOp([&] {
                   RnsPoly out = conv.convert(in);
                   (void)out;
               }));
        for (kernels::Backend b : backends) {
            kernels::setBackend(b);
            record("bconv", kernels::table().name, ctx.n(), limbs, timeOp([&] {
                       RnsPoly out = conv.convert(in);
                       (void)out;
                   }));
        }
    }
}

void
benchKeySwitch(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== Key switch (rotate, end to end) =====\n");
    FheContextParams p;
    p.n = 1 << 14;
    p.levels = 4;
    p.alpha = 2;
    FheContext ctx(p);
    KeyGenerator keygen(ctx, 42);
    PublicKey pk = keygen.makePublicKey();
    KswKey rk1 = keygen.makeRotationKey(1);
    Evaluator eval(ctx, 7);
    Rng rng(8);
    std::vector<double> v(ctx.n() / 2);
    for (auto &x : v)
        x = rng.nextDouble() - 0.5;
    Plaintext pt = eval.encoder().encodeReal(v, ctx.maxLevel());
    Ciphertext ct = eval.encrypt(pt, pk);
    u64 limbs = ct.a.limbCount();

    kernels::setBackend(kernels::Backend::Scalar);
    record("key_switch", "reference", ctx.n(), limbs, timeOp([&] {
               Ciphertext out = eval.rotate(ct, 1, rk1);
               (void)out;
           }));
    for (kernels::Backend b : backends) {
        kernels::setBackend(b);
        record("key_switch", kernels::table().name, ctx.n(), limbs,
               timeOp([&] {
                   Ciphertext out = eval.rotate(ct, 1, rk1);
                   (void)out;
               }));
    }
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_kernels\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
    std::fprintf(f, "  \"threads\": %u,\n", ThreadPool::globalThreads());
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < g_results.size(); ++i) {
        const Result &r = g_results[i];
        std::fprintf(f,
                     "    {\"bench\": \"%s\", \"backend\": \"%s\", "
                     "\"n\": %llu, \"limbs\": %llu, "
                     "\"ns_per_op\": %.1f, \"speedup_vs_reference\": %.3f}%s\n",
                     r.bench.c_str(), r.backend.c_str(),
                     static_cast<unsigned long long>(r.n),
                     static_cast<unsigned long long>(r.limbs), r.ns_per_op,
                     r.speedup, i + 1 < g_results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::applyThreadsFlag(argc, argv);

    std::string json_path;
    std::string only_backend;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            g_smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
            only_backend = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--kernel scalar|avx2|avx512] "
                         "[--json path] [--smoke] [--threads N]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<kernels::Backend> backends = selectedBackends(only_backend);
    if (backends.empty()) {
        std::fprintf(stderr, "no available backend matches '%s'\n",
                     only_backend.c_str());
        return 2;
    }

    std::printf("bench_kernels: backends:");
    for (kernels::Backend b : backends)
        std::printf(" %s", kernels::backendName(b));
    std::printf("%s\n", g_smoke ? " (smoke)" : "");

    benchNtt(backends);
    benchBconv(backends);
    benchKeySwitch(backends);

    if (!json_path.empty())
        writeJson(json_path);
    return 0;
}
