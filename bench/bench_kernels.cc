/**
 * @file
 * Tracked microbenchmarks for the kernel layer (DESIGN.md §10, §13):
 * forward and inverse NTT (single and batched), BConv, the fused
 * ModUp/ModDown pipelines, and the end-to-end key-switch, each measured
 * per backend against a "reference" baseline row. For the transforms the
 * reference is the retained seed kernel (referenceFwdNtt, the eager
 * per-butterfly scalar path); for the fused pipelines and the key switch
 * it is the unfused scalar flow, so the speedup column reports the
 * combined win of SIMD + fusion over the seed semantics.
 *
 * Flags:
 *   --kernel scalar|avx2|avx512|auto  restrict to one backend (+ baseline)
 *   --json <path>                     write BENCH_kernels.json-style output
 *   --smoke                           fast mode for CI (few iterations)
 *   --digest                          print FNV-1a output hashes, no timing
 *   --stats-out <path>                dump fhe.arena.* / autotune stats JSON
 *   --threads N                       size the process-wide pool
 *
 * --digest exists for the warm-vs-cold autotune CI check: its output is a
 * pure function of the kernel results (which are bit-identical whatever
 * tile the autotuner picks), so two runs — one that tunes, one that loads
 * the persisted table — must produce byte-identical stdout.
 *
 * Every measurement runs the same bit-identical code paths the library
 * uses; the differential tests in tests/fhe/test_kernels.cc are the
 * correctness side of this file.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/common_flags.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fhe/automorphism.h"
#include "fhe/bconv.h"
#include "fhe/bsgs.h"
#include "fhe/ckks.h"
#include "fhe/kernels/autotune.h"
#include "fhe/kernels/kernels.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"
#include "telemetry/arena_stats.h"
#include "telemetry/stats_registry.h"

using namespace crophe;
using namespace crophe::fhe;

namespace {

bool g_smoke = false;
bool g_digest = false;

/** Median-of-batches wall time per op, in nanoseconds. */
double
timeOp(const std::function<void()> &op)
{
    using clock = std::chrono::steady_clock;
    op();  // warm caches, resolve dispatch, fill the arena

    const double min_batch_ns = g_smoke ? 1e5 : 1e7;
    const int batches = g_smoke ? 3 : 7;

    // Scale the iteration count so one batch is long enough to time.
    u64 iters = 1;
    for (;;) {
        auto t0 = clock::now();
        for (u64 i = 0; i < iters; ++i)
            op();
        double ns = std::chrono::duration<double, std::nano>(clock::now() - t0)
                        .count();
        if (ns >= min_batch_ns || iters >= (1ull << 20))
            break;
        iters *= 2;
    }

    double best = 1e300;
    for (int b = 0; b < batches; ++b) {
        auto t0 = clock::now();
        for (u64 i = 0; i < iters; ++i)
            op();
        double ns = std::chrono::duration<double, std::nano>(clock::now() - t0)
                        .count();
        best = std::min(best, ns / static_cast<double>(iters));
    }
    return best;
}

struct Result
{
    std::string bench;    ///< fwd_ntt | inv_ntt | bconv | mod_up | ...
    std::string backend;  ///< reference | scalar | avx2 | avx512
    u64 n;
    u64 limbs;  ///< batch size / limb count; 0 when not applicable
    double ns_per_op;
    double speedup;  ///< vs the "reference" row of the same (bench, n, limbs)
};

std::vector<Result> g_results;

void
record(const std::string &bench, const std::string &backend, u64 n, u64 limbs,
       double ns)
{
    double base = 0;
    for (const Result &r : g_results)
        if (r.bench == bench && r.n == n && r.limbs == limbs &&
            r.backend == "reference")
            base = r.ns_per_op;
    double speedup = base > 0 ? base / ns : 1.0;
    g_results.push_back({bench, backend, n, limbs, ns, speedup});
    std::printf("  %-14s  %-9s  n=%-6llu limbs=%-2llu  %12.1f ns/op"
                "  speedup %5.2fx\n",
                bench.c_str(), backend.c_str(),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(limbs), ns, speedup);
}

std::vector<kernels::Backend>
selectedBackends(const std::string &only)
{
    std::vector<kernels::Backend> all = {kernels::Backend::Scalar,
                                         kernels::Backend::Avx2,
                                         kernels::Backend::Avx512};
    // An explicit --kernel restricts the sweep to that backend; "auto"
    // resolves to the widest available one. Unknown spellings throw.
    if (!only.empty()) {
        kernels::Backend want = kernels::parseBackend(only);
        if (!kernels::available(want))
            throw RecoverableError(std::string("backend '") +
                                   kernels::backendName(want) +
                                   "' is not available on this CPU");
        return {want};
    }
    std::vector<kernels::Backend> out;
    for (kernels::Backend b : all)
        if (kernels::available(b))
            out.push_back(b);
    return out;
}

void
benchNtt(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== NTT kernels =====\n");
    Rng rng(123);
    for (u64 n : {u64(1) << 14, u64(1) << 15, u64(1) << 16}) {
        u64 q = generateNttPrimes(59, n, 1)[0];
        Modulus mod(q);
        NttTables tables(n, mod);
        kernels::NttView fwd = tables.forwardView();
        kernels::NttView inv = tables.inverseView();

        std::vector<u64> base(n);
        for (auto &x : base)
            x = rng.nextBounded(q);
        std::vector<u64> buf = base;

        record("fwd_ntt", "reference", n, 1,
               timeOp([&] { kernels::referenceFwdNtt(buf.data(), fwd); }));
        record("inv_ntt", "reference", n, 1,
               timeOp([&] { kernels::referenceInvNtt(buf.data(), inv); }));

        for (kernels::Backend b : backends) {
            kernels::setBackend(b);
            const kernels::KernelTable &kt = kernels::table();
            buf = base;
            record("fwd_ntt", kt.name, n, 1,
                   timeOp([&] { kt.fwdNtt(buf.data(), fwd); }));
            record("inv_ntt", kt.name, n, 1,
                   timeOp([&] { kt.invNtt(buf.data(), inv); }));
        }
    }
}

void
benchNttBatch(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== Batched NTT (8 limbs, autotuned tile) =====\n");
    const u64 n = u64(1) << 14;
    const u64 batch = 8;
    u64 q = generateNttPrimes(59, n, 1)[0];
    Modulus mod(q);
    NttTables tables(n, mod);

    Rng rng(124);
    std::vector<std::vector<u64>> data(batch, std::vector<u64>(n));
    std::vector<u64 *> polys(batch);
    for (u64 i = 0; i < batch; ++i) {
        for (auto &x : data[i])
            x = rng.nextBounded(q);
        polys[i] = data[i].data();
    }

    kernels::NttView fwd = tables.forwardView();
    kernels::NttView inv = tables.inverseView();
    record("fwd_ntt_batch", "reference", n, batch, timeOp([&] {
               for (u64 i = 0; i < batch; ++i)
                   kernels::referenceFwdNtt(polys[i], fwd);
           }));
    record("inv_ntt_batch", "reference", n, batch, timeOp([&] {
               for (u64 i = 0; i < batch; ++i)
                   kernels::referenceInvNtt(polys[i], inv);
           }));
    for (kernels::Backend b : backends) {
        kernels::setBackend(b);
        const char *name = kernels::table().name;
        record("fwd_ntt_batch", name, n, batch,
               timeOp([&] { tables.forwardBatched(polys.data(), batch); }));
        record("inv_ntt_batch", name, n, batch,
               timeOp([&] { tables.inverseBatched(polys.data(), batch); }));
    }
}

void
benchBconv(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== BConv (RNS base conversion) =====\n");
    for (u32 levels : {4u, 8u}) {
        FheContextParams p;
        p.n = 1 << 14;
        p.levels = levels;
        p.alpha = 2;
        FheContext ctx(p);
        Rng rng(321);
        RnsPoly in(ctx, ctx.qBasis(levels), Rep::Coeff);
        in.uniformRandom(rng);
        BaseConverter conv(ctx, ctx.qBasis(levels), ctx.pBasis());
        u64 limbs = in.limbCount();

        // The seed had no separate BConv kernel; scalar is the baseline.
        kernels::setBackend(kernels::Backend::Scalar);
        record("bconv", "reference", ctx.n(), limbs, timeOp([&] {
                   RnsPoly out = conv.convert(in);
                   (void)out;
               }));
        for (kernels::Backend b : backends) {
            kernels::setBackend(b);
            record("bconv", kernels::table().name, ctx.n(), limbs, timeOp([&] {
                       RnsPoly out = conv.convert(in);
                       (void)out;
                   }));
        }
    }
}

/** The shared key-switch fixture: context, keys, a fresh ciphertext. */
struct KsFixture
{
    FheContext ctx;
    KeyGenerator keygen;
    PublicKey pk;
    KswKey rk1;
    Evaluator eval;
    Ciphertext ct;

    explicit KsFixture(u64 n, u32 levels = 4)
        : ctx([&] {
              FheContextParams p;
              p.n = n;
              p.levels = levels;
              p.alpha = 2;
              return p;
          }()),
          keygen(ctx, 42),
          pk(keygen.makePublicKey()),
          rk1(keygen.makeRotationKey(1)),
          eval(ctx, 7)
    {
        Rng rng(8);
        std::vector<double> v(ctx.n() / 2);
        for (auto &x : v)
            x = rng.nextDouble() - 0.5;
        Plaintext pt = eval.encoder().encodeReal(v, ctx.maxLevel());
        ct = eval.encrypt(pt, pk);
    }

    /** Evaluator::rotate with the unfused reference key switch. */
    Ciphertext
    rotateUnfused() const
    {
        u64 g = galoisElementForRotation(1, ctx.n());
        RnsPoly b_rot = applyAutomorphism(ct.b, g);
        RnsPoly a_rot = applyAutomorphism(ct.a, g);
        auto [ks_b, ks_a] = eval.keySwitchUnfused(a_rot, ct.level, rk1);
        Ciphertext out;
        out.level = ct.level;
        out.scale = ct.scale;
        out.b = std::move(b_rot);
        out.b.addInplace(ks_b);
        out.a = std::move(ks_a);
        return out;
    }
};

void
benchModUpDown(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== Fused ModUp / ModDown pipelines =====\n");
    KsFixture fx(u64(1) << 14);
    const FheContext &ctx = fx.ctx;
    const u32 level = fx.ct.level;
    RnsPoly d = fx.ct.a;
    RnsPoly d_coeff = d;
    d_coeff.toCoeff();
    u64 limbs = d.limbCount();

    // ModUp of digit 0, unfused (Coeff in, whole-basis NTT out) vs fused
    // (Eval in, only converted limbs transformed).
    kernels::setBackend(kernels::Backend::Scalar);
    record("mod_up", "reference", ctx.n(), limbs, timeOp([&] {
               RnsPoly up = modUpDigit(ctx, d_coeff, 0, level);
               up.toEval();
           }));
    for (kernels::Backend b : backends) {
        kernels::setBackend(b);
        record("mod_up", kernels::table().name, ctx.n(), limbs, timeOp([&] {
                   RnsPoly up = fusedModUpEval(ctx, d, d_coeff, 0, level);
                   (void)up;
               }));
    }

    // ModDown of an accumulator pair, unfused (full toCoeff / toEval
    // round trips) vs the Eval-domain pair-batched pipeline.
    auto qp = ctx.qpBasis(level);
    RnsPoly acc_b(ctx, qp, Rep::Eval);
    RnsPoly acc_a(ctx, qp, Rep::Eval);
    Rng rng(9);
    acc_b.uniformRandom(rng);
    acc_a.uniformRandom(rng);

    kernels::setBackend(kernels::Backend::Scalar);
    record("mod_down", "reference", ctx.n(), limbs, timeOp([&] {
               RnsPoly cb = acc_b;
               RnsPoly ca = acc_a;
               cb.toCoeff();
               ca.toCoeff();
               RnsPoly ob = modDown(ctx, cb, level);
               RnsPoly oa = modDown(ctx, ca, level);
               ob.toEval();
               oa.toEval();
           }));
    for (kernels::Backend b : backends) {
        kernels::setBackend(b);
        record("mod_down", kernels::table().name, ctx.n(), limbs, timeOp([&] {
                   auto out = modDownEvalPair(ctx, acc_b, acc_a, level);
                   (void)out;
               }));
    }
}

void
benchKeySwitch(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== Key switch (rotate, end to end) =====\n");
    KsFixture fx(u64(1) << 14);
    u64 limbs = fx.ct.a.limbCount();

    // The reference row is the seed semantics end to end: scalar kernels
    // and the unfused Decomp→ModUp→KSKInP→ModDown flow, so backend rows
    // report the combined SIMD + fusion + batching speedup.
    kernels::setBackend(kernels::Backend::Scalar);
    record("key_switch", "reference", fx.ctx.n(), limbs, timeOp([&] {
               Ciphertext out = fx.rotateUnfused();
               (void)out;
           }));
    for (kernels::Backend b : backends) {
        kernels::setBackend(b);
        record("key_switch", kernels::table().name, fx.ctx.n(), limbs,
               timeOp([&] {
                   Ciphertext out = fx.eval.rotate(fx.ct, 1, fx.rk1);
                   (void)out;
               }));
    }

    // CiFlow-reordered dataflows of the same rotate (bit-identical
    // outputs); the reference stays the unfused seed flow, so the three
    // key_switch* tables share a comparable speedup base.
    const struct
    {
        KeySwitchDataflow df;
        const char *bench;
    } kDataflows[] = {
        {KeySwitchDataflow::OutputStationary, "key_switch_ostat"},
        {KeySwitchDataflow::ReorderedModUp, "key_switch_reordup"},
    };
    for (const auto &v : kDataflows) {
        kernels::setBackend(kernels::Backend::Scalar);
        record(v.bench, "reference", fx.ctx.n(), limbs, timeOp([&] {
                   Ciphertext out = fx.rotateUnfused();
                   (void)out;
               }));
        fx.eval.setKeySwitchDataflow(v.df);
        for (kernels::Backend b : backends) {
            kernels::setBackend(b);
            record(v.bench, kernels::table().name, fx.ctx.n(), limbs,
                   timeOp([&] {
                       Ciphertext out = fx.eval.rotate(fx.ct, 1, fx.rk1);
                       (void)out;
                   }));
        }
        fx.eval.setKeySwitchDataflow(KeySwitchDataflow::Fused);
    }
}

void
benchBsgsMatVec(const std::vector<kernels::Backend> &backends)
{
    std::printf("\n===== BSGS PtMatVecMult (rotation strategies) =====\n");
    // The sweep axis here is the rotation strategy, not the backend: all
    // rows run on the widest selected backend, and the reference row is
    // the Min-KS chain (the ARK-style baseline strategy).
    const u64 n = u64(1) << 13;
    KsFixture fx(n);
    const u32 n1 = 8, n2 = 8;
    const u64 s = n1 * n2;
    Rng rng(17);
    std::vector<std::vector<double>> m(s, std::vector<double>(s));
    for (auto &row : m)
        for (auto &x : row)
            x = rng.nextDouble() - 0.5;
    auto diagonals = matrixDiagonals(m, fx.ctx.n() / 2);

    const struct
    {
        RotStrategy strategy;
        u32 rHyb;
        const char *row;
    } kStrategies[] = {
        {RotStrategy::MinKs, 1, "reference"},
        {RotStrategy::Hoisting, 1, "hoisting"},
        {RotStrategy::Hybrid, 4, "hybrid_r4"},
        {RotStrategy::TripleHoisted, 1, "triple"},
    };
    kernels::setBackend(backends.back());
    for (const auto &v : kStrategies) {
        BsgsKeys keys;
        for (i64 r : requiredRotations(n1, n2, v.strategy, v.rHyb))
            keys.rot.emplace(r, fx.keygen.makeRotationKey(r));
        record("bsgs_matvec", v.row, fx.ctx.n(), n1, timeOp([&] {
                   Ciphertext out =
                       ptMatVecMult(fx.eval, fx.ct, diagonals, n1, n2,
                                    v.strategy, v.rHyb, keys);
                   (void)out;
               }));
    }
}

/** FNV-1a over a span of words (matches the test suite's helper). */
u64
fnv1a(u64 h, const u64 *p, u64 n)
{
    for (u64 i = 0; i < n; ++i) {
        u64 x = p[i];
        for (int b = 0; b < 8; ++b) {
            h ^= (x >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

u64
hashPoly(const RnsPoly &p)
{
    u64 h = 1469598103934665603ull;
    for (u32 i = 0; i < p.limbCount(); ++i)
        h = fnv1a(h, p.limb(i).data(), p.n());
    return h;
}

/**
 * Deterministic digest mode: run each pipeline once per backend and
 * print output hashes. No timings, no tile dependence — byte-identical
 * stdout whether the autotuner measured or loaded its table.
 */
void
runDigest(const std::vector<kernels::Backend> &backends)
{
    const u64 n = u64(1) << 12;
    KsFixture fx(n);
    const FheContext &ctx = fx.ctx;
    RnsPoly d = fx.ct.a;
    RnsPoly d_coeff = d;
    d_coeff.toCoeff();

    for (kernels::Backend b : backends) {
        kernels::setBackend(b);
        const char *name = kernels::backendName(b);

        // Batched transforms of 6 limb rows of one poly basis.
        RnsPoly poly(ctx, ctx.qpBasis(ctx.maxLevel()), Rep::Coeff);
        Rng rng(11);
        poly.uniformRandom(rng);
        u64 q0 = poly.mod(0).value();
        NttTables tables(n, Modulus(q0));
        std::vector<std::vector<u64>> rows(6);
        std::vector<u64 *> ptrs(6);
        Rng rng2(12);
        for (u32 i = 0; i < 6; ++i) {
            rows[i].resize(n);
            for (auto &x : rows[i])
                x = rng2.nextBounded(q0);
            ptrs[i] = rows[i].data();
        }
        tables.forwardBatched(ptrs.data(), 6);
        u64 h = 1469598103934665603ull;
        for (u32 i = 0; i < 6; ++i)
            h = fnv1a(h, ptrs[i], n);
        std::printf("digest ntt_batch %s %016llx\n", name,
                    static_cast<unsigned long long>(h));
        tables.inverseBatched(ptrs.data(), 6);
        h = 1469598103934665603ull;
        for (u32 i = 0; i < 6; ++i)
            h = fnv1a(h, ptrs[i], n);
        std::printf("digest ntt_batch_rt %s %016llx\n", name,
                    static_cast<unsigned long long>(h));

        // Fused pipelines and the end-to-end key switch.
        RnsPoly up = fusedModUpEval(ctx, d, d_coeff, 0, fx.ct.level);
        std::printf("digest mod_up_fused %s %016llx\n", name,
                    static_cast<unsigned long long>(hashPoly(up)));
        Ciphertext rot = fx.eval.rotate(fx.ct, 1, fx.rk1);
        std::printf("digest key_switch %s %016llx%016llx\n", name,
                    static_cast<unsigned long long>(hashPoly(rot.b)),
                    static_cast<unsigned long long>(hashPoly(rot.a)));
        Ciphertext rotu = fx.rotateUnfused();
        std::printf("digest key_switch_unfused %s %016llx%016llx\n", name,
                    static_cast<unsigned long long>(hashPoly(rotu.b)),
                    static_cast<unsigned long long>(hashPoly(rotu.a)));

        // CiFlow dataflows: bit-identical to the fused rows above, so the
        // printed hashes must repeat them exactly.
        for (KeySwitchDataflow df : {KeySwitchDataflow::OutputStationary,
                                     KeySwitchDataflow::ReorderedModUp}) {
            fx.eval.setKeySwitchDataflow(df);
            Ciphertext r2 = fx.eval.rotate(fx.ct, 1, fx.rk1);
            std::printf("digest key_switch_%s %s %016llx%016llx\n",
                        keySwitchDataflowName(df), name,
                        static_cast<unsigned long long>(hashPoly(r2.b)),
                        static_cast<unsigned long long>(hashPoly(r2.a)));
        }
        fx.eval.setKeySwitchDataflow(KeySwitchDataflow::Fused);

        // Triple-hoisted BSGS matvec: not bit-identical to the other
        // strategies (hoisting lift ambiguity), but deterministic, so its
        // own hash still pins warm-vs-cold and thread-count invariance.
        {
            const u32 n1 = 4, n2 = 4;
            const u64 s = n1 * n2;
            Rng mrng(17);
            std::vector<std::vector<double>> m(s, std::vector<double>(s));
            for (auto &row : m)
                for (auto &x : row)
                    x = mrng.nextDouble() - 0.5;
            auto diagonals = matrixDiagonals(m, fx.ctx.n() / 2);
            BsgsKeys keys;
            for (i64 r : requiredRotations(n1, n2,
                                           RotStrategy::TripleHoisted, 1))
                keys.rot.emplace(r, fx.keygen.makeRotationKey(r));
            Ciphertext mv =
                ptMatVecMult(fx.eval, fx.ct, diagonals, n1, n2,
                             RotStrategy::TripleHoisted, 1, keys);
            std::printf("digest bsgs_triple %s %016llx%016llx\n", name,
                        static_cast<unsigned long long>(hashPoly(mv.b)),
                        static_cast<unsigned long long>(hashPoly(mv.a)));
        }
    }
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_kernels\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
    std::fprintf(f, "  \"threads\": %u,\n", ThreadPool::globalThreads());
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < g_results.size(); ++i) {
        const Result &r = g_results[i];
        std::fprintf(f,
                     "    {\"bench\": \"%s\", \"backend\": \"%s\", "
                     "\"n\": %llu, \"limbs\": %llu, "
                     "\"ns_per_op\": %.1f, \"speedup_vs_reference\": %.3f}%s\n",
                     r.bench.c_str(), r.backend.c_str(),
                     static_cast<unsigned long long>(r.n),
                     static_cast<unsigned long long>(r.limbs), r.ns_per_op,
                     r.speedup, i + 1 < g_results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

void
writeStats(const std::string &path)
{
    telemetry::StatsRegistry registry;
    telemetry::registerArenaStats(&registry);
    const kernels::AutotuneStats &at = kernels::autotuner().stats();
    registry.counter("fhe.autotune.tuned", "autotune keys measured")
        .set(at.tuned);
    registry.counter("fhe.autotune.memoHits", "autotune memoized answers")
        .set(at.memoHits);
    registry.counter("fhe.autotune.diskLoaded", "autotune entries from disk")
        .set(at.diskLoaded);
    registry.counter("fhe.autotune.diskRejects", "autotune tables rejected")
        .set(at.diskRejects);
    registry.counter("fhe.autotune.diskWrites", "autotune tables written")
        .set(at.diskWrites);
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return;
    }
    registry.dumpJson(os);
}

int
run(int argc, char **argv)
{
    cli::FlagParser parser(
        "Tracked kernel-layer microbenchmarks (NTT, BConv, fused "
        "ModUp/ModDown, key switch).");
    cli::CommonFlags common;
    common.registerInto(parser, cli::CommonFlags::kThreads |
                                    cli::CommonFlags::kKernel |
                                    cli::CommonFlags::kStatsOut);
    std::string json_path;
    parser.addString("--json", &json_path,
                     "write BENCH_kernels.json-style results here");
    parser.addBool("--smoke", &g_smoke, "fast mode for CI (few iterations)");
    parser.addBool("--digest", &g_digest,
                   "print deterministic output hashes instead of timings");
    if (!parser.parse(argc, argv))
        return 1;
    // --kernel selects the sweep here (see selectedBackends); the
    // process-wide backend is set per measurement, so skip apply().
    std::vector<kernels::Backend> backends =
        selectedBackends(common.kernelName);

    if (g_digest) {
        runDigest(backends);
    } else {
        std::printf("bench_kernels: backends:");
        for (kernels::Backend b : backends)
            std::printf(" %s", kernels::backendName(b));
        std::printf("%s\n", g_smoke ? " (smoke)" : "");

        benchNtt(backends);
        benchNttBatch(backends);
        benchBconv(backends);
        benchModUpDown(backends);
        benchKeySwitch(backends);
        benchBsgsMatVec(backends);

        if (!json_path.empty())
            writeJson(json_path);
    }
    if (!common.statsOut.empty())
        writeStats(common.statsOut);
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
