#ifndef CROPHE_SERVE_RECOVERY_H_
#define CROPHE_SERVE_RECOVERY_H_

/**
 * @file
 * Request-level resilience primitives for the online dispatcher
 * (DESIGN.md §14): retry budgets with capped exponential backoff and a
 * per-tenant circuit breaker. Everything runs in virtual time and is
 * deterministic — the breaker's transitions are a pure function of the
 * (time, tenant, success/failure) event sequence the dispatcher feeds
 * it, which itself evolves in deterministic virtual-time order.
 *
 * Breaker state machine. Closed counts consecutive failures; at
 * `breakerThreshold` it trips to Open (new requests of the tenant are
 * rejected without consuming a token). After `breakerResetSeconds` the
 * next admission attempt half-opens the breaker: exactly one trial
 * request is admitted while any further attempts keep being rejected. A
 * trial success closes the breaker (failure counter cleared); a trial
 * failure re-opens it for another full reset interval.
 */

#include <vector>

#include "common/types.h"

namespace crophe::serve {

/** Failure-recovery knobs (all virtual-time; defaults are benign). */
struct RecoveryOptions
{
    /** Failed attempts a request may retry; past this it expires. */
    u32 maxRetries = 2;
    /** Backoff before the first retry; doubles per further retry. */
    double retryBackoffSeconds = 0.010;
    /** Backoff ceiling (caps the exponential). */
    double retryBackoffCapSeconds = 1.0;
    /** Consecutive failures that trip a tenant's breaker; 0 disables
     *  the breaker entirely. */
    u32 breakerThreshold = 0;
    /** Open-state dwell before the breaker half-opens. */
    double breakerResetSeconds = 1.0;
    /** Duplicate tail batches onto an idle second chip group. */
    bool hedge = false;
    /** Virtual downtime charged when a chip loss forces the survivors
     *  to repartition and recompile their plans. */
    double repartitionSeconds = 0.050;
};

/** Backoff before retry attempt @p attempt (1-based): base doubled per
 *  prior attempt, capped at retryBackoffCapSeconds. */
double retryBackoff(const RecoveryOptions &opt, u32 attempt);

/** Per-tenant circuit breaker. See file doc for the state machine. */
class CircuitBreaker
{
  public:
    enum class State : u8
    {
        Closed,
        Open,
        HalfOpen,
    };

    CircuitBreaker(const RecoveryOptions &opt, std::size_t tenants);

    /** True when the breaker is disabled (threshold 0): every call is a
     *  no-op and tryAdmit always passes. */
    bool disabled() const { return opt_.breakerThreshold == 0; }

    /**
     * May tenant @p tenant admit a new request at virtual time @p now?
     * Open transitions to HalfOpen once the reset timer elapsed and
     * admits that one trial; further HalfOpen attempts are rejected
     * until the trial resolves.
     */
    bool tryAdmit(u32 tenant, double now);

    /** One of the tenant's dispatched attempts failed at @p now. */
    void onFailure(u32 tenant, double now);

    /** One of the tenant's dispatched attempts completed. */
    void onSuccess(u32 tenant);

    State state(u32 tenant) const { return tenants_[tenant].state; }
    u64 trips() const { return trips_; }
    u64 halfOpens() const { return halfOpens_; }

  private:
    struct Tenant
    {
        State state = State::Closed;
        u32 consecutiveFailures = 0;
        double reopenAt = 0.0;      ///< Open -> HalfOpen time
        bool trialOutstanding = false;
    };

    RecoveryOptions opt_;
    std::vector<Tenant> tenants_;
    u64 trips_ = 0;
    u64 halfOpens_ = 0;
};

/** Run-level recovery counters (surfaced as `serve.recovery.*`). */
struct RecoveryStats
{
    u64 lostBatches = 0;    ///< batches killed mid-flight by chip loss
    u64 lostRequests = 0;   ///< requests those batches carried
    u64 replays = 0;        ///< requests re-queued after a failure
    u64 expired = 0;        ///< admitted requests that ran out of retries/SLA
    u64 batchFailures = 0;  ///< transient batch-fail draws that fired
    u64 hedgedBatches = 0;  ///< duplicate dispatches issued
    u64 hedgeWins = 0;      ///< hedged duplicates that finished first
    u64 breakerTrips = 0;
    u64 breakerHalfOpens = 0;
    u64 breakerRejected = 0;  ///< requests rejected by an open breaker
    u64 repartitions = 0;     ///< online survivor repartitions
    double downtimeSeconds = 0.0;  ///< virtual repartition downtime

    /** Any recovery activity at all? Healthy runs report nothing, which
     *  keeps their stdout/stats byte-identical to pre-recovery builds. */
    bool any() const
    {
        return lostBatches != 0 || lostRequests != 0 || replays != 0 ||
               expired != 0 || batchFailures != 0 || hedgedBatches != 0 ||
               hedgeWins != 0 || breakerTrips != 0 ||
               breakerHalfOpens != 0 || breakerRejected != 0 ||
               repartitions != 0 || downtimeSeconds != 0.0;
    }
};

}  // namespace crophe::serve

#endif  // CROPHE_SERVE_RECOVERY_H_
