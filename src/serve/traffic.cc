#include "serve/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace crophe::serve {

namespace {

void
validate(const TrafficSpec &spec, const Catalog &catalog)
{
    if (spec.tenants.empty())
        throw RecoverableError("traffic spec has no tenants");
    if (!(spec.durationSeconds > 0.0))
        throw RecoverableError("traffic duration must be positive");
    for (const auto &t : spec.tenants) {
        if (!(t.rate > 0.0))
            throw RecoverableError("tenant '" + t.name +
                                   "' has non-positive arrival rate");
        if (t.mix.size() != catalog.templates.size())
            throw RecoverableError(
                "tenant '" + t.name + "' mix has " +
                std::to_string(t.mix.size()) + " weights for " +
                std::to_string(catalog.templates.size()) + " templates");
        double sum = 0.0;
        for (double w : t.mix) {
            if (w < 0.0)
                throw RecoverableError("tenant '" + t.name +
                                       "' has a negative mix weight");
            sum += w;
        }
        if (!(sum > 0.0))
            throw RecoverableError("tenant '" + t.name +
                                   "' mix weights are all zero");
    }
}

/** Draw a template index from the tenant's cumulative mix. */
u32
drawTemplate(const std::vector<double> &mix, double u)
{
    double total = 0.0;
    for (double w : mix)
        total += w;
    double x = u * total;
    double acc = 0.0;
    for (u32 i = 0; i < mix.size(); ++i) {
        acc += mix[i];
        if (x < acc)
            return i;
    }
    // u ~ 1 rounding: last non-zero weight.
    for (u32 i = static_cast<u32>(mix.size()); i-- > 0;)
        if (mix[i] > 0.0)
            return i;
    return 0;
}

}  // namespace

std::vector<Request>
generateTraffic(const TrafficSpec &spec, const Catalog &catalog)
{
    validate(spec, catalog);

    struct Draft
    {
        Request req;
        u64 seq;  ///< per-tenant sequence number (merge tie-break)
    };
    std::vector<Draft> drafts;

    for (u32 ti = 0; ti < spec.tenants.size(); ++ti) {
        const TenantSpec &t = spec.tenants[ti];
        // Independent per-tenant stream: whitened (seed, index) mix so
        // adjacent seeds/tenants do not correlate.
        Rng rng(spec.seed ^
                (0x9e3779b97f4a7c15ULL * (static_cast<u64>(ti) + 1)));
        double now = 0.0;
        u64 seq = 0;
        while (true) {
            if (t.process == ArrivalProcess::Poisson)
                now += -std::log1p(-rng.nextDouble()) / t.rate;
            else
                // Exact k/rate spacing: accumulating 1/rate drifts and
                // can round an arrival back inside the window.
                now = static_cast<double>(seq + 1) / t.rate;
            if (now >= spec.durationSeconds)
                break;
            Draft d;
            d.req.tenant = ti;
            d.req.templateIdx = drawTemplate(t.mix, rng.nextDouble());
            d.req.arrival = now;
            d.req.deadline = now + t.slaSeconds;
            d.seq = seq++;
            drafts.push_back(d);
        }
    }

    std::sort(drafts.begin(), drafts.end(),
              [](const Draft &a, const Draft &b) {
                  if (a.req.arrival != b.req.arrival)
                      return a.req.arrival < b.req.arrival;
                  if (a.req.tenant != b.req.tenant)
                      return a.req.tenant < b.req.tenant;
                  return a.seq < b.seq;
              });

    std::vector<Request> out;
    out.reserve(drafts.size());
    for (u64 i = 0; i < drafts.size(); ++i) {
        drafts[i].req.id = i;
        out.push_back(drafts[i].req);
    }
    return out;
}

}  // namespace crophe::serve
