#include "serve/dispatcher.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace crophe::serve {

Dispatcher::Dispatcher(const hw::HwConfig &cfg, const Catalog &catalog,
                       const std::vector<TenantSpec> &tenants,
                       ServeOptions opt)
    : cfg_(cfg), catalog_(catalog), tenants_(tenants), opt_(std::move(opt))
{
    if (tenants_.empty())
        throw RecoverableError("dispatcher needs at least one tenant");
    hw::validateConfig(cfg_);
    pod::validatePod(opt_.pod);
    if (opt_.maxBatch == 0)
        opt_.maxBatch = 1;
    services_.resize(catalog_.templates.size());
    planCharge_.assign(catalog_.templates.size(), 0.0);
}

const ServiceTimes &
Dispatcher::service(u32 templateIdx)
{
    if (services_[templateIdx].has_value())
        return *services_[templateIdx];
    const RequestTemplate &t = catalog_.templates[templateIdx];
    ServiceTimes st;
    if (opt_.serviceModel) {
        st = opt_.serviceModel(t);
    } else {
        sched::SchedOptions so;
        so.planCache = opt_.planCache;
        so.deadlineSeconds = opt_.searchDeadlineSeconds;
        const double hz = cfg_.freqGhz * 1e9;
        bool missed = opt_.planCache == nullptr;
        if (opt_.pod.aliveChips() > 1) {
            // Pod dispatch: the template's segments shard across the
            // chips and repetitions pipeline through them. cold = one
            // request through the pipeline (fill included); warm = the
            // steady-state throughput bound for back-to-back requests.
            const u64 missesBefore =
                opt_.planCache ? opt_.planCache->stats().misses : 0;
            auto pr = pod::schedulePodWorkload(t.workload, cfg_,
                                               opt_.pod, so);
            if (opt_.planCache &&
                opt_.planCache->stats().misses > missesBefore)
                missed = true;
            st.coldSeconds = pr.seconds;
            st.warmSeconds = pr.warmSeconds;
            st.planCacheHit = !missed;
            st.planSeconds =
                missed
                    ? opt_.planSecondsPerOp * static_cast<double>(t.ops)
                    : 0.0;
            services_[templateIdx] = st;
            planCharge_[templateIdx] = st.planSeconds;
            ++planCompiles_;
            if (st.planCacheHit)
                ++planCacheHits_;
            return *services_[templateIdx];
        }
        for (const auto &seg : t.workload.segments) {
            const u64 missesBefore =
                opt_.planCache ? opt_.planCache->stats().misses : 0;
            auto sched = sched::scheduleGraph(seg.graph, cfg_, so);
            if (opt_.planCache &&
                opt_.planCache->stats().misses > missesBefore)
                missed = true;
            auto sim = sim::simulateSchedule(sched, cfg_);
            const double cold = sim.cycles / hz;
            // Steady-state repetitions keep resident aux on chip; scale
            // the simulated time by the scheduler's warm/cold ratio.
            const double ratio =
                sched.stats.cycles > 0.0
                    ? std::min(1.0,
                               sched.warmStats.cycles / sched.stats.cycles)
                    : 1.0;
            const double warm = cold * ratio;
            st.coldSeconds +=
                cold + static_cast<double>(seg.repetitions - 1) * warm;
            st.warmSeconds += static_cast<double>(seg.repetitions) * warm;
        }
        st.planCacheHit = !missed;
        st.planSeconds =
            missed ? opt_.planSecondsPerOp * static_cast<double>(t.ops)
                   : 0.0;
    }
    services_[templateIdx] = st;
    planCharge_[templateIdx] = st.planSeconds;
    ++planCompiles_;
    if (st.planCacheHit)
        ++planCacheHits_;
    return *services_[templateIdx];
}

ServeResult
Dispatcher::run(const std::vector<Request> &arrivals,
                double durationSeconds)
{
    ServeResult res;
    res.durationSeconds = durationSeconds;
    const u64 compiles0 = planCompiles_;
    const u64 hits0 = planCacheHits_;

    std::vector<double> weights;
    weights.reserve(tenants_.size());
    for (const auto &t : tenants_)
        weights.push_back(t.weight);
    RequestQueue queue(opt_.policy, weights);
    AdmissionController admission(opt_.admission, tenants_);

    telemetry::TraceRecorder *tr = opt_.trace;
    u32 accelTrack = 0;
    std::vector<u32> tenantTracks;
    if (tr != nullptr) {
        tr->beginProcess("serve");
        accelTrack = tr->track("accelerator");
        for (const auto &t : tenants_)
            tenantTracks.push_back(tr->track("tenant:" + t.name));
    }

    // Request lifetime spans (arrival -> finish) overlap whenever
    // requests queue, and Perfetto rejects partially overlapping slices
    // on one track — buffer them and emit onto first-fit lanes at the
    // end of the run.
    struct RequestSpan
    {
        u32 tenant;
        u64 id;
        double ts;
        double dur;
        std::string name;
        double slaMet;
    };
    std::vector<RequestSpan> spans;

    double now = 0.0;       // virtual clock (monotone)
    double accelFree = 0.0; // when the accelerator next goes idle
    u64 lastBatchKey = 0;
    bool haveLastKey = false;
    std::size_t next = 0;

    auto admit = [&](const Request &r) {
        now = std::max(now, r.arrival);
        const double residual = std::max(0.0, accelFree - now);
        const double wait = residual + queue.backlogSeconds();
        RequestOutcome out;
        out.id = r.id;
        out.tenant = r.tenant;
        out.templateIdx = r.templateIdx;
        out.arrival = r.arrival;
        try {
            admission.admitOrThrow(r, now, wait, queue.depth());
        } catch (const AdmissionRejected &e) {
            out.disposition = e.reason == RejectReason::Throttled
                                  ? Disposition::RejectedThrottled
                                  : Disposition::RejectedOverload;
            res.outcomes.push_back(out);
            if (tr != nullptr)
                tr->instant("reject:" + tenants_[r.tenant].name + ":" +
                                rejectReasonName(e.reason),
                            r.arrival * 1e6);
            return;
        }
        // The estimate prices queueing (WFQ tags, backlog shedding) at
        // the steady-state rate; compilation happens here on first use.
        const ServiceTimes &st = service(r.templateIdx);
        queue.push(r, catalog_.templates[r.templateIdx].graphHash,
                   st.warmSeconds, now);
        if (tr != nullptr)
            tr->counter("queue.depth", now * 1e6,
                        static_cast<double>(queue.depth()));
    };

    while (next < arrivals.size() || !queue.empty()) {
        if (opt_.cancelled && opt_.cancelled()) {
            res.truncated = true;
            break;
        }
        if (queue.empty()) {
            admit(arrivals[next++]);
            continue;
        }
        // The accelerator dispatches at t; everything arriving by then
        // competes for the batch.
        const double t = std::max(accelFree, now);
        while (next < arrivals.size() && arrivals[next].arrival <= t)
            admit(arrivals[next++]);
        if (queue.empty())
            continue;  // all candidates were rejected

        auto batch = queue.popBatch(opt_.maxBatch);
        const u32 tidx = batch.front().templateIdx;
        const RequestTemplate &tmpl = catalog_.templates[tidx];
        const ServiceTimes &st = service(tidx);
        const double plan = planCharge_[tidx];
        planCharge_[tidx] = 0.0;
        // Back-to-back batches of the same template keep aux resident.
        const bool auxResident = haveLastKey && lastBatchKey == tmpl.graphHash;
        const double first = auxResident ? st.warmSeconds : st.coldSeconds;
        const double compute =
            first + static_cast<double>(batch.size() - 1) * st.warmSeconds;
        const double start = t;
        const double finish = start + plan + compute;
        accelFree = finish;
        now = std::max(now, start);
        lastBatchKey = tmpl.graphHash;
        haveLastKey = true;

        ++res.batches;
        res.batchedRequests += batch.size();
        res.busySeconds += compute;
        res.horizonSeconds = std::max(res.horizonSeconds, finish);

        for (const Request &r : batch) {
            RequestOutcome out;
            out.id = r.id;
            out.tenant = r.tenant;
            out.templateIdx = r.templateIdx;
            out.disposition = Disposition::Completed;
            out.arrival = r.arrival;
            out.start = start;
            out.finish = finish;
            out.slaMet = finish <= r.deadline;
            out.planCacheHit = st.planCacheHit;
            out.batchSize = static_cast<u32>(batch.size());
            res.outcomes.push_back(out);
            if (tr != nullptr)
                spans.push_back({r.tenant, r.id, r.arrival * 1e6,
                                 (finish - r.arrival) * 1e6, tmpl.name,
                                 out.slaMet ? 1.0 : 0.0});
        }
        if (tr != nullptr) {
            tr->complete(accelTrack, tmpl.name, start * 1e6,
                         (finish - start) * 1e6,
                         {{"batch", static_cast<double>(batch.size())},
                          {"plan_ms", plan * 1e3},
                          {"cache_hit", st.planCacheHit ? 1.0 : 0.0}});
            tr->counter("queue.depth", finish * 1e6,
                        static_cast<double>(queue.depth()));
        }
    }

    if (tr != nullptr && !spans.empty()) {
        std::sort(spans.begin(), spans.end(),
                  [](const RequestSpan &a, const RequestSpan &b) {
                      if (a.ts != b.ts)
                          return a.ts < b.ts;
                      return a.id < b.id;
                  });
        // First-fit lanes per tenant: lane 0 is the pre-created
        // "tenant:<name>" track, overflow lanes get " #k" suffixes.
        std::vector<std::vector<double>> laneEnd(tenants_.size());
        std::vector<std::vector<u32>> laneTrack(tenants_.size());
        for (u32 ti = 0; ti < tenants_.size(); ++ti) {
            laneEnd[ti].push_back(0.0);
            laneTrack[ti].push_back(tenantTracks[ti]);
        }
        for (const RequestSpan &s : spans) {
            auto &ends = laneEnd[s.tenant];
            auto &tracks = laneTrack[s.tenant];
            std::size_t lane = 0;
            while (lane < ends.size() && ends[lane] > s.ts)
                ++lane;
            if (lane == ends.size()) {
                ends.push_back(0.0);
                tracks.push_back(
                    tr->track("tenant:" + tenants_[s.tenant].name + " #" +
                              std::to_string(lane + 1)));
            }
            ends[lane] = s.ts + s.dur;
            tr->complete(tracks[lane], s.name, s.ts, s.dur,
                         {{"id", static_cast<double>(s.id)},
                          {"sla_met", s.slaMet}});
        }
    }

    res.horizonSeconds = std::max(res.horizonSeconds, durationSeconds);
    std::sort(res.outcomes.begin(), res.outcomes.end(),
              [](const RequestOutcome &a, const RequestOutcome &b) {
                  return a.id < b.id;
              });
    res.planCompiles = planCompiles_ - compiles0;
    res.planCacheHits = planCacheHits_ - hits0;
    return res;
}

}  // namespace crophe::serve
