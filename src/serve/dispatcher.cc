#include "serve/dispatcher.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <string>

#include "common/error.h"
#include "common/logging.h"
#include "fault/fault_injector.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace crophe::serve {

Dispatcher::Dispatcher(const hw::HwConfig &cfg, const Catalog &catalog,
                       const std::vector<TenantSpec> &tenants,
                       ServeOptions opt)
    : cfg_(cfg), catalog_(catalog), tenants_(tenants), opt_(std::move(opt))
{
    if (tenants_.empty())
        throw RecoverableError("dispatcher needs at least one tenant");
    hw::validateConfig(cfg_);
    pod::validatePod(opt_.pod);
    if (opt_.maxBatch == 0)
        opt_.maxBatch = 1;
    if (opt_.faultPlan.timedDeadChips() + opt_.pod.deadChips >=
        opt_.pod.chips)
        throw RecoverableError(
            "fault plan kills every chip of the pod: " +
            std::to_string(opt_.faultPlan.timedDeadChips()) +
            " scheduled chip failures plus " +
            std::to_string(opt_.pod.deadChips) + " dead chips leave none of " +
            std::to_string(opt_.pod.chips) + " alive");
    if (!(opt_.recovery.retryBackoffSeconds >= 0.0) ||
        !(opt_.recovery.retryBackoffCapSeconds >= 0.0) ||
        !(opt_.recovery.breakerResetSeconds >= 0.0) ||
        !(opt_.recovery.repartitionSeconds >= 0.0))
        throw RecoverableError(
            "recovery options need non-negative virtual times");
    livePod_ = opt_.pod;
}

pod::PodConfig
Dispatcher::podForGroup(const Group &g) const
{
    if (g.chips == livePod_.aliveChips())
        return livePod_;  // the whole surviving pod, dead set included
    // A hedge half is priced as its own ring of g.chips healthy chips;
    // its podDigest differs from the full pod's, so the two shapes
    // never share plan-cache entries.
    pod::PodConfig p = livePod_;
    p.chips = g.chips;
    p.deadChips = 0;
    return p;
}

Dispatcher::ShapeCache &
Dispatcher::cacheFor(u32 groupChips)
{
    ShapeCache &cache = shapeCaches_[groupChips];
    if (cache.services.size() != catalog_.templates.size()) {
        cache.services.resize(catalog_.templates.size());
        cache.planCharge.assign(catalog_.templates.size(), 0.0);
    }
    return cache;
}

const ServiceTimes &
Dispatcher::serviceFor(const pod::PodConfig &groupPod, ShapeCache &cache,
                       u32 templateIdx)
{
    if (cache.services[templateIdx].has_value())
        return *cache.services[templateIdx];
    const RequestTemplate &t = catalog_.templates[templateIdx];
    ServiceTimes st;
    if (opt_.serviceModel) {
        st = opt_.serviceModel(t);
    } else {
        sched::SchedOptions so;
        so.planCache = opt_.planCache;
        so.deadlineSeconds = opt_.searchDeadlineSeconds;
        const double hz = cfg_.freqGhz * 1e9;
        bool missed = opt_.planCache == nullptr;
        if (groupPod.aliveChips() > 1) {
            // Pod dispatch: the template's segments shard across the
            // chips and repetitions pipeline through them. cold = one
            // request through the pipeline (fill included); warm = the
            // steady-state throughput bound for back-to-back requests.
            const u64 missesBefore =
                opt_.planCache ? opt_.planCache->stats().misses : 0;
            auto pr = pod::schedulePodWorkload(t.workload, cfg_,
                                               groupPod, so);
            if (opt_.planCache &&
                opt_.planCache->stats().misses > missesBefore)
                missed = true;
            st.coldSeconds = pr.seconds;
            st.warmSeconds = pr.warmSeconds;
        } else {
            for (const auto &seg : t.workload.segments) {
                const u64 missesBefore =
                    opt_.planCache ? opt_.planCache->stats().misses : 0;
                auto sched = sched::scheduleGraph(seg.graph, cfg_, so);
                if (opt_.planCache &&
                    opt_.planCache->stats().misses > missesBefore)
                    missed = true;
                auto sim = sim::simulateSchedule(sched, cfg_);
                const double cold = sim.cycles / hz;
                // Steady-state repetitions keep resident aux on chip;
                // scale the simulated time by the scheduler's warm/cold
                // cycle ratio.
                const double ratio =
                    sched.stats.cycles > 0.0
                        ? std::min(1.0, sched.warmStats.cycles /
                                            sched.stats.cycles)
                        : 1.0;
                const double warm = cold * ratio;
                st.coldSeconds +=
                    cold + static_cast<double>(seg.repetitions - 1) * warm;
                st.warmSeconds +=
                    static_cast<double>(seg.repetitions) * warm;
            }
        }
        st.planCacheHit = !missed;
        st.planSeconds =
            missed ? opt_.planSecondsPerOp * static_cast<double>(t.ops)
                   : 0.0;
    }
    cache.services[templateIdx] = st;
    cache.planCharge[templateIdx] = st.planSeconds;
    ++planCompiles_;
    if (st.planCacheHit)
        ++planCacheHits_;
    return *cache.services[templateIdx];
}

const ServiceTimes &
Dispatcher::service(u32 templateIdx)
{
    return serviceFor(livePod_, cacheFor(livePod_.aliveChips()),
                      templateIdx);
}

ServeResult
Dispatcher::run(const std::vector<Request> &arrivals,
                double durationSeconds)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    ServeResult res;
    res.durationSeconds = durationSeconds;
    const u64 compiles0 = planCompiles_;
    const u64 hits0 = planCacheHits_;

    // Timed faults mutate the pod shape mid-run; start each such run
    // from the configured shape with no stale prices. Healthy runs keep
    // the service-model persistence contract across run() calls.
    livePod_ = opt_.pod;
    if (opt_.faultPlan.hasTimedFaults())
        shapeCaches_.clear();
    const fault::FaultInjector injector(opt_.faultPlan);
    const auto &chipFailEvents = opt_.faultPlan.chipFails;
    const auto &linkDegradeEvents = opt_.faultPlan.linkDegrades;
    std::size_t fi = 0, li = 0;

    std::vector<double> weights;
    weights.reserve(tenants_.size());
    for (const auto &t : tenants_)
        weights.push_back(t.weight);
    RequestQueue queue(opt_.policy, weights);
    AdmissionController admission(opt_.admission, tenants_);
    CircuitBreaker breaker(opt_.recovery, tenants_.size());

    telemetry::TraceRecorder *tr = opt_.trace;
    std::vector<u32> groupTracks;
    std::vector<u32> tenantTracks;
    if (tr != nullptr) {
        tr->beginProcess("serve");
        groupTracks.push_back(tr->track("accelerator"));
        for (const auto &t : tenants_)
            tenantTracks.push_back(tr->track("tenant:" + t.name));
    }
    auto groupTrack = [&](std::size_t i) -> u32 {
        while (groupTracks.size() <= i)
            groupTracks.push_back(tr->track(
                "accelerator #" + std::to_string(groupTracks.size() + 1)));
        return groupTracks[i];
    };

    // Request lifetime spans (arrival -> finish) overlap whenever
    // requests queue, and Perfetto rejects partially overlapping slices
    // on one track — buffer them and emit onto first-fit lanes at the
    // end of the run.
    struct RequestSpan
    {
        u32 tenant;
        u64 id;
        double ts;
        double dur;
        std::string name;
        double slaMet;
    };
    std::vector<RequestSpan> spans;

    double now = 0.0;  // virtual clock (monotone)
    std::size_t next = 0;
    u64 dispatchSeq = 0;  // indexes the batch-fail oracle

    // One group of every alive chip, or two halves when hedging. The
    // larger half leads, so groups[0] is always the pricing reference.
    auto buildGroups = [&](double freeAt) {
        std::vector<Group> gs;
        const u32 alive = livePod_.aliveChips();
        if (opt_.recovery.hedge && alive >= 2) {
            const u32 lead = (alive + 1) / 2;
            gs.push_back({lead, freeAt});
            gs.push_back({alive - lead, freeAt});
        } else {
            gs.push_back({alive, freeAt});
        }
        return gs;
    };
    std::vector<Group> groups = buildGroups(0.0);

    // Failed requests wait out their backoff here, then re-enter the
    // queue; ordered by (ready, id) so replay order is total.
    struct PendingReplay
    {
        double ready;
        Request req;
    };
    auto replayAfter = [](const PendingReplay &a, const PendingReplay &b) {
        if (a.ready != b.ready)
            return a.ready > b.ready;
        return a.req.id > b.req.id;
    };
    std::priority_queue<PendingReplay, std::vector<PendingReplay>,
                        decltype(replayAfter)>
        replays(replayAfter);

    // Breaker transitions must happen at the *failure/completion* time,
    // not at the dispatch that decided the batch's fate — buffer them
    // and drain in (time, seq) order before every admission decision.
    struct BreakerEvent
    {
        double time;
        u64 seq;
        u32 tenant;
        bool failure;
    };
    auto breakerAfter = [](const BreakerEvent &a, const BreakerEvent &b) {
        if (a.time != b.time)
            return a.time > b.time;
        return a.seq > b.seq;
    };
    std::priority_queue<BreakerEvent, std::vector<BreakerEvent>,
                        decltype(breakerAfter)>
        breakerEvents(breakerAfter);
    u64 breakerSeq = 0;
    auto pushBreakerEvent = [&](double time, u32 tenant, bool failure) {
        if (breaker.disabled())
            return;
        breakerEvents.push({time, breakerSeq++, tenant, failure});
    };
    auto drainBreaker = [&](double t) {
        while (!breakerEvents.empty() && breakerEvents.top().time <= t) {
            const BreakerEvent ev = breakerEvents.top();
            breakerEvents.pop();
            const u64 trips0 = breaker.trips();
            if (ev.failure)
                breaker.onFailure(ev.tenant, ev.time);
            else
                breaker.onSuccess(ev.tenant);
            if (tr != nullptr && breaker.trips() > trips0)
                tr->instant("breaker-open:" + tenants_[ev.tenant].name,
                            ev.time * 1e6);
        }
    };

    auto minFreeAt = [&]() {
        double m = kInf;
        for (const Group &g : groups)
            m = std::min(m, g.freeAt);
        return m;
    };

    auto admit = [&](const Request &r) {
        now = std::max(now, r.arrival);
        RequestOutcome out;
        out.id = r.id;
        out.tenant = r.tenant;
        out.templateIdx = r.templateIdx;
        out.arrival = r.arrival;
        if (!breaker.disabled()) {
            drainBreaker(now);
            if (!breaker.tryAdmit(r.tenant, now)) {
                out.disposition = Disposition::RejectedBreaker;
                res.outcomes.push_back(out);
                ++res.recovery.breakerRejected;
                if (tr != nullptr)
                    tr->instant("reject:" + tenants_[r.tenant].name +
                                    ":breaker",
                                r.arrival * 1e6);
                return;
            }
        }
        const double residual = std::max(0.0, minFreeAt() - now);
        const double wait = residual + queue.backlogSeconds();
        try {
            admission.admitOrThrow(r, now, wait, queue.depth());
        } catch (const AdmissionRejected &e) {
            out.disposition = e.reason == RejectReason::Throttled
                                  ? Disposition::RejectedThrottled
                                  : Disposition::RejectedOverload;
            res.outcomes.push_back(out);
            if (tr != nullptr)
                tr->instant("reject:" + tenants_[r.tenant].name + ":" +
                                rejectReasonName(e.reason),
                            r.arrival * 1e6);
            return;
        }
        // The estimate prices queueing (WFQ tags, backlog shedding) at
        // the steady-state rate of the lead group; compilation happens
        // here on first use.
        const ServiceTimes &st =
            serviceFor(podForGroup(groups[0]), cacheFor(groups[0].chips),
                       r.templateIdx);
        queue.push(r, catalog_.templates[r.templateIdx].graphHash,
                   st.warmSeconds, now);
        if (tr != nullptr)
            tr->counter("queue.depth", now * 1e6,
                        static_cast<double>(queue.depth()));
    };

    auto recordExpired = [&](const Request &r, double t) {
        RequestOutcome out;
        out.id = r.id;
        out.tenant = r.tenant;
        out.templateIdx = r.templateIdx;
        out.disposition = Disposition::Expired;
        out.arrival = r.arrival;
        out.finish = t;
        out.attempts = r.attempts;
        res.outcomes.push_back(out);
        ++res.recovery.expired;
        if (tr != nullptr)
            tr->instant("expire:" + tenants_[r.tenant].name, t * 1e6);
    };

    auto scheduleRetry = [&](const Request &r, double failTime) {
        Request rr = r;
        rr.attempts += 1;
        if (rr.attempts > opt_.recovery.maxRetries) {
            recordExpired(rr, failTime);
            return;
        }
        replays.push(
            {failTime + retryBackoff(opt_.recovery, rr.attempts), rr});
    };

    auto processReplay = [&]() {
        const PendingReplay p = replays.top();
        replays.pop();
        now = std::max(now, p.ready);
        const ServiceTimes &st =
            serviceFor(podForGroup(groups[0]), cacheFor(groups[0].chips),
                       p.req.templateIdx);
        // Deadline propagation: a retry whose best case (a warm pass
        // starting immediately) already misses the SLA expires here
        // instead of loading the queue with unservable work.
        if (now + st.warmSeconds > p.req.deadline) {
            recordExpired(p.req, now);
            return;
        }
        queue.push(p.req, catalog_.templates[p.req.templateIdx].graphHash,
                   st.warmSeconds, now);
        ++res.recovery.replays;
        if (tr != nullptr) {
            tr->instant("replay:" + tenants_[p.req.tenant].name,
                        now * 1e6);
            tr->counter("queue.depth", now * 1e6,
                        static_cast<double>(queue.depth()));
        }
    };

    auto nextFaultTime = [&]() {
        double t = kInf;
        if (fi < chipFailEvents.size())
            t = chipFailEvents[fi].seconds;
        if (li < linkDegradeEvents.size())
            t = std::min(t, linkDegradeEvents[li].seconds);
        return t;
    };

    auto applyNextFault = [&]() {
        const bool chipFirst =
            fi < chipFailEvents.size() &&
            (li >= linkDegradeEvents.size() ||
             chipFailEvents[fi].seconds <= linkDegradeEvents[li].seconds);
        if (chipFirst) {
            const fault::ChipFailEvent ev = chipFailEvents[fi++];
            now = std::max(now, ev.seconds);
            livePod_.deadChips += ev.chips;
            CROPHE_ASSERT(livePod_.deadChips < livePod_.chips,
                          "timed chip failures validated at construction");
            // Repartition: every group's resident state (and any batch
            // in flight — accounted at its dispatch) is gone; the
            // survivors come back after the modeled downtime with cold
            // aux and re-priced plans under the new pod digest.
            shapeCaches_.clear();
            groups =
                buildGroups(ev.seconds + opt_.recovery.repartitionSeconds);
            admission.setCapacityFraction(
                static_cast<double>(livePod_.aliveChips()) /
                    static_cast<double>(livePod_.chips),
                ev.seconds);
            ++res.recovery.repartitions;
            res.recovery.downtimeSeconds += opt_.recovery.repartitionSeconds;
            if (tr != nullptr) {
                tr->instant("chip-fail:" + std::to_string(ev.chips),
                            ev.seconds * 1e6);
                tr->instant("repartition:" +
                                std::to_string(livePod_.aliveChips()) +
                                "-alive",
                            ev.seconds * 1e6);
            }
        } else {
            const fault::LinkDegradeEvent ev = linkDegradeEvents[li++];
            now = std::max(now, ev.seconds);
            livePod_.linkFraction = ev.fraction;
            // Transfers reprice under the degraded links; resident aux
            // survives (nothing on-chip was lost), so groups keep their
            // batch keys and immediate availability.
            shapeCaches_.clear();
            if (tr != nullptr)
                tr->instant("link-degrade", ev.seconds * 1e6);
        }
    };

    // Is the batch ending at @p finish killed by a chip loss first?
    // Chip-fail times are static, so a batch's fate is known at its
    // dispatch: any pending event strictly before finish kills it.
    auto chipFailBefore = [&](double finish) {
        if (fi < chipFailEvents.size() &&
            chipFailEvents[fi].seconds < finish)
            return chipFailEvents[fi].seconds;
        return kInf;
    };

    // One dispatched copy of a batch and how it ended.
    struct CopyFate
    {
        bool success = false;
        double end = 0.0;      ///< finish, or the kill time
        double finish = 0.0;   ///< scheduled finish
        bool killed = false;
        bool cacheHit = false;
    };

    auto dispatchCopy = [&](std::size_t gi, double start,
                            const std::vector<Request> &batch,
                            u32 tidx) -> CopyFate {
        Group &g = groups[gi];
        const RequestTemplate &tmpl = catalog_.templates[tidx];
        ShapeCache &cache = cacheFor(g.chips);
        const ServiceTimes &st = serviceFor(podForGroup(g), cache, tidx);
        const double plan = cache.planCharge[tidx];
        cache.planCharge[tidx] = 0.0;
        // Back-to-back batches of the same template keep aux resident.
        const bool auxResident =
            g.haveLastKey && g.lastBatchKey == tmpl.graphHash;
        const double first = auxResident ? st.warmSeconds : st.coldSeconds;
        const double compute =
            first +
            static_cast<double>(batch.size() - 1) * st.warmSeconds;
        const double finish = start + plan + compute;
        g.freeAt = finish;
        g.lastBatchKey = tmpl.graphHash;
        g.haveLastKey = true;

        CopyFate fate;
        fate.finish = finish;
        fate.cacheHit = st.planCacheHit;
        const double killT = chipFailBefore(finish);
        const bool failed = injector.batchFailed(dispatchSeq++);
        if (killT < finish) {
            fate.killed = true;
            fate.end = killT;
            ++res.recovery.lostBatches;
            res.recovery.lostRequests += batch.size();
            if (tr != nullptr)
                tr->instant("batch-lost", killT * 1e6);
        } else if (failed) {
            fate.end = finish;
            ++res.recovery.batchFailures;
        } else {
            fate.success = true;
            fate.end = finish;
        }
        // Occupancy until the copy ends (plan time is not compute).
        res.busySeconds +=
            fate.killed
                ? std::min(compute, std::max(0.0, fate.end - start - plan))
                : compute;
        res.horizonSeconds = std::max(res.horizonSeconds, fate.end);

        if (tr != nullptr) {
            std::vector<std::pair<std::string, double>> args = {
                {"batch", static_cast<double>(batch.size())},
                {"plan_ms", plan * 1e3},
                {"cache_hit", st.planCacheHit ? 1.0 : 0.0}};
            if (fate.killed)
                args.push_back({"killed", 1.0});
            else if (failed)
                args.push_back({"failed", 1.0});
            tr->complete(groupTrack(gi), tmpl.name, start * 1e6,
                         (fate.end - start) * 1e6, args);
        }
        return fate;
    };

    auto dispatch = [&](std::size_t gi, double t) {
        auto batch = queue.popBatch(opt_.maxBatch);
        const u32 tidx = batch.front().templateIdx;
        const RequestTemplate &tmpl = catalog_.templates[tidx];
        now = std::max(now, t);

        ++res.batches;
        res.batchedRequests += batch.size();
        const CopyFate primary = dispatchCopy(gi, t, batch, tidx);

        // Hedge a tail batch (one carrying a replay) onto the other
        // group when it is idle: the earliest successful copy wins.
        std::optional<CopyFate> hedge;
        if (opt_.recovery.hedge && groups.size() >= 2) {
            const std::size_t hi = gi == 0 ? 1 : 0;
            const bool tail =
                std::any_of(batch.begin(), batch.end(),
                            [](const Request &r) { return r.attempts > 0; });
            if (tail && groups[hi].freeAt <= t) {
                hedge = dispatchCopy(hi, t, batch, tidx);
                ++res.recovery.hedgedBatches;
                if (tr != nullptr)
                    tr->instant("hedge:" + tmpl.name, t * 1e6);
            }
        }

        // Resolve: the earliest success completes the requests (ties
        // favor the primary); with no success anywhere the requests
        // fail once the last copy has died.
        const bool hedgeWins =
            hedge.has_value() && hedge->success &&
            (!primary.success || hedge->end < primary.end);
        const CopyFate *winner = nullptr;
        if (primary.success)
            winner = &primary;
        if (hedgeWins)
            winner = &*hedge;
        if (winner != nullptr) {
            if (hedgeWins)
                ++res.recovery.hedgeWins;
            const double finish = winner->end;
            for (const Request &r : batch) {
                RequestOutcome out;
                out.id = r.id;
                out.tenant = r.tenant;
                out.templateIdx = r.templateIdx;
                out.disposition = Disposition::Completed;
                out.arrival = r.arrival;
                out.start = t;
                out.finish = finish;
                out.slaMet = finish <= r.deadline;
                out.planCacheHit = winner->cacheHit;
                out.batchSize = static_cast<u32>(batch.size());
                out.attempts = r.attempts;
                out.hedged = hedge.has_value();
                res.outcomes.push_back(out);
                pushBreakerEvent(finish, r.tenant, /*failure=*/false);
                if (tr != nullptr)
                    spans.push_back({r.tenant, r.id, r.arrival * 1e6,
                                     (finish - r.arrival) * 1e6, tmpl.name,
                                     out.slaMet ? 1.0 : 0.0});
            }
        } else {
            const double failTime =
                hedge.has_value() ? std::max(primary.end, hedge->end)
                                  : primary.end;
            for (const Request &r : batch) {
                scheduleRetry(r, failTime);
                pushBreakerEvent(failTime, r.tenant, /*failure=*/true);
            }
        }
        if (tr != nullptr)
            tr->counter("queue.depth", primary.finish * 1e6,
                        static_cast<double>(queue.depth()));
    };

    while (next < arrivals.size() || !queue.empty() || !replays.empty()) {
        if (opt_.cancelled && opt_.cancelled()) {
            res.truncated = true;
            break;
        }
        const double tArr =
            next < arrivals.size() ? arrivals[next].arrival : kInf;
        const double tRep = replays.empty() ? kInf : replays.top().ready;
        const double tFault = nextFaultTime();

        if (!queue.empty()) {
            // The earliest-free group dispatches; everything happening
            // by then (faults, replay wake-ups, arrivals) goes first so
            // it competes for — or invalidates — the batch.
            std::size_t gi = 0;
            for (std::size_t i = 1; i < groups.size(); ++i)
                if (groups[i].freeAt < groups[gi].freeAt)
                    gi = i;
            const double tDisp = std::max(now, groups[gi].freeAt);
            if (tFault <= tDisp) {
                applyNextFault();
            } else if (tRep <= tDisp) {
                processReplay();
            } else if (tArr <= tDisp) {
                admit(arrivals[next++]);
            } else {
                dispatch(gi, tDisp);
            }
            continue;
        }

        // Queue empty: advance to the next event (faults outrank replay
        // wake-ups outrank arrivals at equal times).
        if (tFault <= tRep && tFault <= tArr) {
            applyNextFault();
        } else if (tRep <= tArr) {
            processReplay();
        } else if (tArr < kInf) {
            admit(arrivals[next++]);
        } else {
            break;  // only unfired future faults remain
        }
    }
    drainBreaker(kInf);
    res.recovery.breakerTrips = breaker.trips();
    res.recovery.breakerHalfOpens = breaker.halfOpens();

    if (tr != nullptr && !spans.empty()) {
        std::sort(spans.begin(), spans.end(),
                  [](const RequestSpan &a, const RequestSpan &b) {
                      if (a.ts != b.ts)
                          return a.ts < b.ts;
                      return a.id < b.id;
                  });
        // First-fit lanes per tenant: lane 0 is the pre-created
        // "tenant:<name>" track, overflow lanes get " #k" suffixes.
        std::vector<std::vector<double>> laneEnd(tenants_.size());
        std::vector<std::vector<u32>> laneTrack(tenants_.size());
        for (u32 ti = 0; ti < tenants_.size(); ++ti) {
            laneEnd[ti].push_back(0.0);
            laneTrack[ti].push_back(tenantTracks[ti]);
        }
        for (const RequestSpan &s : spans) {
            auto &ends = laneEnd[s.tenant];
            auto &tracks = laneTrack[s.tenant];
            std::size_t lane = 0;
            while (lane < ends.size() && ends[lane] > s.ts)
                ++lane;
            if (lane == ends.size()) {
                ends.push_back(0.0);
                tracks.push_back(
                    tr->track("tenant:" + tenants_[s.tenant].name + " #" +
                              std::to_string(lane + 1)));
            }
            ends[lane] = s.ts + s.dur;
            tr->complete(tracks[lane], s.name, s.ts, s.dur,
                         {{"id", static_cast<double>(s.id)},
                          {"sla_met", s.slaMet}});
        }
    }

    res.horizonSeconds = std::max(res.horizonSeconds, durationSeconds);
    std::sort(res.outcomes.begin(), res.outcomes.end(),
              [](const RequestOutcome &a, const RequestOutcome &b) {
                  return a.id < b.id;
              });
    res.planCompiles = planCompiles_ - compiles0;
    res.planCacheHits = planCacheHits_ - hits0;
    // Conservation (DESIGN.md §14): every offered request reached
    // exactly one terminal state — nothing was silently dropped.
    CROPHE_ASSERT(res.truncated ||
                      res.outcomes.size() == arrivals.size(),
                  "request conservation violated: ", arrivals.size(),
                  " offered vs ", res.outcomes.size(), " terminal");
    return res;
}

}  // namespace crophe::serve
