#ifndef CROPHE_SERVE_REQUEST_H_
#define CROPHE_SERVE_REQUEST_H_

/**
 * @file
 * The unit of work in the serving layer: one tenant asking for one
 * execution of a catalog template (a workload such as a bootstrap or a
 * ResNet inference) at a virtual arrival time, with an SLA deadline.
 *
 * All times in the serving layer are *virtual seconds* on the simulated
 * accelerator's clock — never wall clock — so every run is deterministic
 * for a fixed seed regardless of host speed or thread count
 * (DESIGN.md §11).
 */

#include "common/types.h"

namespace crophe::serve {

/** One tenant request for one execution of a catalog template. */
struct Request
{
    u64 id = 0;          ///< global arrival-order id (0-based)
    u32 tenant = 0;      ///< index into the tenant list
    u32 templateIdx = 0; ///< index into the catalog
    double arrival = 0.0;  ///< virtual seconds
    double deadline = 0.0; ///< arrival + the tenant's SLA
    /** Serving-layer retry counter (DESIGN.md §14): 0 on arrival,
     *  incremented each time a failed batch replays the request. */
    u32 attempts = 0;
};

/** Why admission control turned a request away. */
enum class RejectReason : u8
{
    Throttled,  ///< tenant token bucket empty (per-tenant rate contract)
    Overload,   ///< system shedding load (backlog or queue-depth bound)
};

const char *rejectReasonName(RejectReason reason);

/** Terminal state of a request. Every admitted request reaches exactly
 *  one of Completed / Expired; rejected requests never enter the queue.
 *  The dispatcher's conservation invariant (DESIGN.md §14):
 *  offered == completed + rejected + expired. */
enum class Disposition : u8
{
    Completed,
    RejectedThrottled,
    RejectedOverload,
    /** Tenant's circuit breaker was open (consecutive failures). */
    RejectedBreaker,
    /** Admitted, then failed and could not retry within the SLA (retry
     *  budget exhausted or no feasible start before the deadline). */
    Expired,
};

/** Everything the reporter needs about one finished request. */
struct RequestOutcome
{
    u64 id = 0;
    u32 tenant = 0;
    u32 templateIdx = 0;
    Disposition disposition = Disposition::Completed;
    double arrival = 0.0;
    double start = 0.0;   ///< batch dispatch time (Completed only)
    double finish = 0.0;  ///< completion / expiry time
    bool slaMet = false;
    bool planCacheHit = false;  ///< template's schedule came from the cache
    u32 batchSize = 0;          ///< size of the batch that served it
    u32 attempts = 0;           ///< failed attempts before this outcome
    bool hedged = false;        ///< served by a hedged duplicate dispatch
};

}  // namespace crophe::serve

#endif  // CROPHE_SERVE_REQUEST_H_
