#ifndef CROPHE_SERVE_DISPATCHER_H_
#define CROPHE_SERVE_DISPATCHER_H_

/**
 * @file
 * The online dispatcher: a virtual-time discrete-event loop that admits
 * a seeded arrival trace, batches compatible requests (same catalog
 * template content hash — and by construction the same hw::configDigest,
 * since one dispatcher serves one config), schedules each template once
 * through the plan cache, and models accelerator occupancy from the
 * cycle-level simulator's latencies (DESIGN.md §11).
 *
 * Service model. The first time a template is dispatched, its segments
 * are scheduled (through the plan cache when configured, with the
 * anytime deadlineSeconds fallback on misses) and run through
 * sim::simulateSchedule once. That yields per-template
 *   cold = Σ_seg sim_seconds + (reps-1) × warm_seg
 *   warm = Σ_seg reps × warm_seg
 * where warm_seg scales the simulated time by the scheduler's
 * warm/cold cycle ratio (aux constants resident on chip). A batch of k
 * requests occupies the accelerator for first + (k-1) × warm seconds,
 * where first is warm when the previous batch ran the same template
 * (aux still resident) and cold otherwise.
 *
 * Planning latency. Real search wall-clock cannot appear in a
 * deterministic virtual timeline, so plan-cache misses charge a
 * *virtual* planning latency of planSecondsPerOp × template ops, once
 * per template, before its first batch computes. Cache hits charge
 * nothing — this is how a warm plan cache buys lower tail latency in a
 * reproducible way. With planSecondsPerOp = 0 a warm-cache run is
 * byte-identical to a cold one modulo the plan.cache.* counters.
 *
 * Determinism contract: arrivals, admission, queueing, batching and
 * occupancy all evolve in virtual time from deterministic inputs, so a
 * fixed seed gives byte-identical results at any --threads value; the
 * thread pool only accelerates the schedule searches inside
 * scheduleGraph (themselves bit-deterministic, DESIGN.md §7).
 */

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "fault/fault_plan.h"
#include "hw/config.h"
#include "plan/plan_cache.h"
#include "pod/pod.h"
#include "serve/admission.h"
#include "serve/catalog.h"
#include "serve/queue.h"
#include "serve/recovery.h"
#include "serve/request.h"
#include "serve/traffic.h"
#include "telemetry/trace_recorder.h"

namespace crophe::serve {

/** Per-template service model (simulated once, reused every batch). */
struct ServiceTimes
{
    double coldSeconds = 0.0;  ///< first execution, aux fetched cold
    double warmSeconds = 0.0;  ///< steady-state repeat, aux resident
    double planSeconds = 0.0;  ///< virtual planning charge (miss only)
    bool planCacheHit = false;
};

/** Dispatcher knobs. */
struct ServeOptions
{
    Policy policy = Policy::Edf;
    u64 maxBatch = 8;
    AdmissionOptions admission;
    /**
     * Virtual planning latency per graph op charged when a template's
     * schedule misses the plan cache (see file doc). 0 = free planning.
     */
    double planSecondsPerOp = 0.0;
    /**
     * Anytime-search budget for cache-miss schedule searches
     * (SchedOptions::deadlineSeconds). Nonzero values make the *search
     * result* wall-clock dependent, so determinism tests keep this 0.
     */
    double searchDeadlineSeconds = 0.0;
    plan::PlanCache *planCache = nullptr;
    /**
     * Pod the batches dispatch to (DESIGN.md §12). chips == 1 (the
     * default) is the single-accelerator path, byte-identical to
     * pre-pod builds; chips > 1 shards each template across the pod and
     * prices batches at the pipeline's cold/steady-state times. The pod
     * digest salts the plan-cache keys, so pod and single-chip plans
     * never cross-serve.
     */
    pod::PodConfig pod;
    /**
     * Fault scenario for the run (DESIGN.md §14). Only the *timed*
     * faults matter here: chip-fail events kill in-flight batches and
     * repartition the survivors, link-degrade events reprice pod
     * transfers, and batchFailRate draws transient batch failures
     * through the seeded FaultInjector oracle (indexed by dispatch
     * sequence, so runs stay byte-identical at any thread count). An
     * empty plan leaves the dispatcher byte-identical to pre-recovery
     * builds.
     */
    fault::FaultPlan faultPlan;
    /** Retry / breaker / hedging / repartition knobs (DESIGN.md §14). */
    RecoveryOptions recovery;
    /** Optional Chrome-trace recorder (virtual microseconds). */
    telemetry::TraceRecorder *trace = nullptr;
    /** Polled each event-loop step; true stops the run (SIGINT). */
    std::function<bool()> cancelled;
    /**
     * Test hook: replaces schedule + simulate with a synthetic service
     * model, so queueing/admission behavior is hand-computable.
     */
    std::function<ServiceTimes(const RequestTemplate &)> serviceModel;
};

/** One run's outcome stream plus accelerator-level aggregates. */
struct ServeResult
{
    std::vector<RequestOutcome> outcomes;  ///< sorted by request id
    double durationSeconds = 0.0;  ///< traffic window
    double horizonSeconds = 0.0;   ///< last completion (≥ duration)
    double busySeconds = 0.0;      ///< accelerator compute occupancy
    u64 batches = 0;
    u64 batchedRequests = 0;  ///< Σ batch sizes over dispatched batches
    u64 planCompiles = 0;     ///< templates compiled during this run
    u64 planCacheHits = 0;    ///< of those, served from the plan cache
    bool truncated = false;   ///< cancelled() fired mid-run
    RecoveryStats recovery;   ///< failure-recovery activity (§14)
};

/** Virtual-time serving loop over one hardware config. See file doc. */
class Dispatcher
{
  public:
    /** @p tenants must match the specs the traffic was generated with. */
    Dispatcher(const hw::HwConfig &cfg, const Catalog &catalog,
               const std::vector<TenantSpec> &tenants, ServeOptions opt);

    /**
     * Serve @p arrivals (sorted by id, as generateTraffic returns).
     * Service models persist across run() calls on one Dispatcher;
     * admission buckets, the queue and the clock reset each run.
     */
    ServeResult run(const std::vector<Request> &arrivals,
                    double durationSeconds);

    /** Lazily compile + simulate template @p idx on the current pod
     *  shape (exposed for benches). */
    const ServiceTimes &service(u32 templateIdx);

  private:
    /** One chip group batches dispatch to. Healthy runs have a single
     *  group of every alive chip; hedging splits the pod in two. */
    struct Group
    {
        u32 chips = 1;
        double freeAt = 0.0;  ///< earliest next dispatch time
        u64 lastBatchKey = 0;
        bool haveLastKey = false;
    };

    /** Per-shape service cache: template prices depend on how many
     *  chips the dispatching group spans. Cleared on every timed fault
     *  (the pod shape or link speed changed under the plans). */
    struct ShapeCache
    {
        std::vector<std::optional<ServiceTimes>> services;
        /** Pending one-time planning charge per template (consumed by
         *  the first batch after compilation). */
        std::vector<double> planCharge;
    };

    const ServiceTimes &serviceFor(const pod::PodConfig &groupPod,
                                   ShapeCache &cache, u32 templateIdx);
    pod::PodConfig podForGroup(const Group &g) const;
    ShapeCache &cacheFor(u32 groupChips);

    hw::HwConfig cfg_;
    const Catalog &catalog_;
    std::vector<TenantSpec> tenants_;
    ServeOptions opt_;
    /** Pod shape as of "now": deadChips/linkFraction evolve with the
     *  timed faults during run(). */
    pod::PodConfig livePod_;
    std::map<u32, ShapeCache> shapeCaches_;  ///< keyed by group chips
    u64 planCompiles_ = 0;
    u64 planCacheHits_ = 0;
};

}  // namespace crophe::serve

#endif  // CROPHE_SERVE_DISPATCHER_H_
