#include "serve/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "telemetry/stats_registry.h"

namespace crophe::serve {

double
percentile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    // Nearest-rank: smallest value with at least q of the mass below it.
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(xs.size())));
    if (rank == 0)
        rank = 1;
    if (rank > xs.size())
        rank = xs.size();
    return xs[rank - 1];
}

double
jainIndex(const std::vector<double> &xs)
{
    double sum = 0.0, sumSq = 0.0;
    for (double x : xs) {
        sum += x;
        sumSq += x * x;
    }
    if (sumSq <= 0.0)
        return 1.0;
    return sum * sum / (static_cast<double>(xs.size()) * sumSq);
}

namespace {

void
finishLatencies(TenantReport &r, std::vector<double> &latenciesMs,
                double duration)
{
    // One sort serves all three percentiles (the vector is scratch, so
    // sorting in place is free); indexing the sorted data reproduces
    // percentile()'s nearest-rank answers exactly.
    std::sort(latenciesMs.begin(), latenciesMs.end());
    auto nearestRank = [&](double q) {
        auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(latenciesMs.size())));
        if (rank == 0)
            rank = 1;
        if (rank > latenciesMs.size())
            rank = latenciesMs.size();
        return latenciesMs[rank - 1];
    };
    if (!latenciesMs.empty()) {
        r.p50Ms = nearestRank(0.50);
        r.p95Ms = nearestRank(0.95);
        r.p99Ms = nearestRank(0.99);
    }
    double sum = 0.0, mx = 0.0;
    for (double x : latenciesMs) {
        sum += x;
        mx = std::max(mx, x);
    }
    r.meanMs = latenciesMs.empty()
                   ? 0.0
                   : sum / static_cast<double>(latenciesMs.size());
    r.maxMs = mx;
    r.goodput =
        duration > 0.0 ? static_cast<double>(r.slaMet) / duration : 0.0;
}

}  // namespace

ServeReport
buildReport(const ServeResult &result,
            const std::vector<TenantSpec> &tenants)
{
    ServeReport rep;
    rep.durationSeconds = result.durationSeconds;
    rep.horizonSeconds = result.horizonSeconds;
    rep.utilization = result.horizonSeconds > 0.0
                          ? result.busySeconds / result.horizonSeconds
                          : 0.0;
    rep.batches = result.batches;
    rep.meanBatchSize =
        result.batches > 0 ? static_cast<double>(result.batchedRequests) /
                                 static_cast<double>(result.batches)
                           : 0.0;
    rep.planCompiles = result.planCompiles;
    rep.planCacheHits = result.planCacheHits;
    rep.truncated = result.truncated;
    rep.recovery = result.recovery;

    rep.tenants.resize(tenants.size());
    std::vector<std::vector<double>> latMs(tenants.size());
    std::vector<double> totalLatMs;
    for (u32 i = 0; i < tenants.size(); ++i)
        rep.tenants[i].name = tenants[i].name;
    rep.total.name = "total";

    for (const auto &o : result.outcomes) {
        TenantReport &t = rep.tenants[o.tenant];
        ++t.offered;
        ++rep.total.offered;
        switch (o.disposition) {
        case Disposition::RejectedThrottled:
            ++t.rejectedThrottled;
            ++rep.total.rejectedThrottled;
            break;
        case Disposition::RejectedOverload:
            ++t.rejectedOverload;
            ++rep.total.rejectedOverload;
            break;
        case Disposition::RejectedBreaker:
            ++t.rejectedBreaker;
            ++rep.total.rejectedBreaker;
            break;
        case Disposition::Expired:
            ++t.admitted;
            ++rep.total.admitted;
            ++t.expired;
            ++rep.total.expired;
            break;
        case Disposition::Completed: {
            ++t.admitted;
            ++rep.total.admitted;
            ++t.completed;
            ++rep.total.completed;
            if (o.slaMet) {
                ++t.slaMet;
                ++rep.total.slaMet;
            } else {
                ++t.slaMissed;
                ++rep.total.slaMissed;
            }
            const double ms = (o.finish - o.arrival) * 1e3;
            latMs[o.tenant].push_back(ms);
            totalLatMs.push_back(ms);
            break;
        }
        }
    }

    std::vector<double> goodputs;
    for (u32 i = 0; i < tenants.size(); ++i) {
        finishLatencies(rep.tenants[i], latMs[i], rep.durationSeconds);
        goodputs.push_back(rep.tenants[i].goodput);
    }
    finishLatencies(rep.total, totalLatMs, rep.durationSeconds);
    rep.jainIndex = jainIndex(goodputs);
    return rep;
}

namespace {

void
registerTenant(const TenantReport &t, telemetry::StatsRegistry &reg,
               const std::string &prefix, bool recoveryActive)
{
    reg.counter(prefix + ".offered", "requests generated").set(t.offered);
    reg.counter(prefix + ".admitted", "requests past admission")
        .set(t.admitted);
    reg.counter(prefix + ".rejected.throttled",
                "token-bucket rejections")
        .set(t.rejectedThrottled);
    reg.counter(prefix + ".rejected.overload", "load-shed rejections")
        .set(t.rejectedOverload);
    if (recoveryActive) {
        reg.counter(prefix + ".rejected.breaker",
                    "circuit-breaker rejections")
            .set(t.rejectedBreaker);
        reg.counter(prefix + ".expired",
                    "admitted requests that ran out of retries/SLA")
            .set(t.expired);
    }
    reg.counter(prefix + ".completed", "requests served to completion")
        .set(t.completed);
    reg.counter(prefix + ".sla.met", "completions within the SLA")
        .set(t.slaMet);
    reg.counter(prefix + ".sla.missed", "completions past the SLA")
        .set(t.slaMissed);
    reg.scalar(prefix + ".latency.p50Ms", "median latency").set(t.p50Ms);
    reg.scalar(prefix + ".latency.p95Ms", "95th-percentile latency")
        .set(t.p95Ms);
    reg.scalar(prefix + ".latency.p99Ms", "99th-percentile latency")
        .set(t.p99Ms);
    reg.scalar(prefix + ".latency.meanMs", "mean latency").set(t.meanMs);
    reg.scalar(prefix + ".latency.maxMs", "max latency").set(t.maxMs);
    reg.scalar(prefix + ".goodput", "SLA-met completions per second")
        .set(t.goodput);
}

}  // namespace

void
registerReport(const ServeReport &report, telemetry::StatsRegistry &reg,
               const std::string &prefix)
{
    // Recovery keys register only when recovery happened, so healthy
    // runs publish byte-identical stats to pre-recovery builds.
    const bool recoveryActive = report.recovery.any();
    registerTenant(report.total, reg, prefix + ".requests", recoveryActive);
    for (const auto &t : report.tenants)
        registerTenant(t, reg, prefix + ".tenant." + t.name,
                       recoveryActive);
    reg.scalar(prefix + ".durationSeconds", "traffic window")
        .set(report.durationSeconds);
    reg.scalar(prefix + ".horizonSeconds", "last completion time")
        .set(report.horizonSeconds);
    reg.scalar(prefix + ".accel.utilization",
               "accelerator busy fraction of the horizon")
        .set(report.utilization);
    reg.scalar(prefix + ".fairness.jain",
               "Jain index over per-tenant goodput")
        .set(report.jainIndex);
    reg.counter(prefix + ".batch.count", "batches dispatched")
        .set(report.batches);
    reg.scalar(prefix + ".batch.meanSize", "mean requests per batch")
        .set(report.meanBatchSize);
    reg.counter(prefix + ".plan.compiles",
                "templates compiled (scheduled + simulated)")
        .set(report.planCompiles);
    reg.counter(prefix + ".plan.cacheHits",
                "template compiles served by the plan cache")
        .set(report.planCacheHits);
    if (recoveryActive) {
        const RecoveryStats &rc = report.recovery;
        reg.counter(prefix + ".recovery.lostBatches",
                    "batches killed mid-flight by chip loss")
            .set(rc.lostBatches);
        reg.counter(prefix + ".recovery.lostRequests",
                    "requests those batches carried")
            .set(rc.lostRequests);
        reg.counter(prefix + ".recovery.replays",
                    "requests re-queued after a failure")
            .set(rc.replays);
        reg.counter(prefix + ".recovery.expired",
                    "admitted requests that ran out of retries/SLA")
            .set(rc.expired);
        reg.counter(prefix + ".recovery.batchFailures",
                    "transient batch failures drawn")
            .set(rc.batchFailures);
        reg.counter(prefix + ".recovery.hedgedBatches",
                    "duplicate dispatches issued")
            .set(rc.hedgedBatches);
        reg.counter(prefix + ".recovery.hedgeWins",
                    "hedged duplicates that finished first")
            .set(rc.hedgeWins);
        reg.counter(prefix + ".recovery.breaker.trips",
                    "circuit-breaker Closed/HalfOpen -> Open transitions")
            .set(rc.breakerTrips);
        reg.counter(prefix + ".recovery.breaker.halfOpens",
                    "circuit-breaker Open -> HalfOpen transitions")
            .set(rc.breakerHalfOpens);
        reg.counter(prefix + ".recovery.breaker.rejected",
                    "requests rejected by an open breaker")
            .set(rc.breakerRejected);
        reg.counter(prefix + ".recovery.repartitions",
                    "online survivor repartitions")
            .set(rc.repartitions);
        reg.scalar(prefix + ".recovery.downtimeSeconds",
                   "virtual repartition downtime")
            .set(rc.downtimeSeconds);
    }
    if (report.truncated)
        reg.scalar(prefix + ".truncated", "run was cancelled mid-loop")
            .set(1.0);
}

void
printReport(const ServeReport &report, std::ostream &os)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-8s %8s %8s %6s %6s %6s %9s %9s %9s %9s\n", "tenant",
                  "offered", "admit", "thr", "ovl", "sla", "p50 ms",
                  "p95 ms", "p99 ms", "goodput");
    os << buf;
    auto row = [&](const TenantReport &t) {
        std::snprintf(buf, sizeof(buf),
                      "%-8s %8llu %8llu %6llu %6llu %6llu %9.3f %9.3f "
                      "%9.3f %9.1f\n",
                      t.name.c_str(),
                      static_cast<unsigned long long>(t.offered),
                      static_cast<unsigned long long>(t.admitted),
                      static_cast<unsigned long long>(t.rejectedThrottled),
                      static_cast<unsigned long long>(t.rejectedOverload),
                      static_cast<unsigned long long>(t.slaMet), t.p50Ms,
                      t.p95Ms, t.p99Ms, t.goodput);
        os << buf;
    };
    for (const auto &t : report.tenants)
        row(t);
    row(report.total);
    std::snprintf(buf, sizeof(buf),
                  "fairness (Jain over goodput): %.4f   utilization: "
                  "%.1f%%   batches: %llu (mean size %.2f)\n",
                  report.jainIndex, 100.0 * report.utilization,
                  static_cast<unsigned long long>(report.batches),
                  report.meanBatchSize);
    os << buf;
    // Printed only when recovery happened: healthy runs keep their
    // stdout byte-identical to pre-recovery builds.
    if (report.recovery.any()) {
        const RecoveryStats &rc = report.recovery;
        std::snprintf(
            buf, sizeof(buf),
            "recovery: lost %llu batches / %llu requests, replayed "
            "%llu, expired %llu, batch failures %llu\n",
            static_cast<unsigned long long>(rc.lostBatches),
            static_cast<unsigned long long>(rc.lostRequests),
            static_cast<unsigned long long>(rc.replays),
            static_cast<unsigned long long>(rc.expired),
            static_cast<unsigned long long>(rc.batchFailures));
        os << buf;
        std::snprintf(
            buf, sizeof(buf),
            "          hedged %llu (won %llu), breaker trips %llu / "
            "half-opens %llu / rejected %llu, repartitions %llu "
            "(downtime %.3f s)\n",
            static_cast<unsigned long long>(rc.hedgedBatches),
            static_cast<unsigned long long>(rc.hedgeWins),
            static_cast<unsigned long long>(rc.breakerTrips),
            static_cast<unsigned long long>(rc.breakerHalfOpens),
            static_cast<unsigned long long>(rc.breakerRejected),
            static_cast<unsigned long long>(rc.repartitions),
            rc.downtimeSeconds);
        os << buf;
    }
}

}  // namespace crophe::serve
