#ifndef CROPHE_SERVE_CATALOG_H_
#define CROPHE_SERVE_CATALOG_H_

/**
 * @file
 * The request catalog: the fixed set of workload templates tenants can
 * ask for, each pre-built as an operator graph (or a segmented workload)
 * so that every request for the same template shares one schedule search
 * and one batching key.
 *
 * Template names accepted by buildCatalog():
 *   bootstrap / helr / resnet20 / resnet110 — the Section VI benchmark
 *       workloads from graph::buildWorkload;
 *   hmult / hrot / matvec — cheap single-graph primitives (used by the
 *       "micro" mix so tests and CI smoke runs stay fast).
 *
 * The batching key of a template is its content hash: the structural
 * hashes of all its segments (same idea as the scheduler's redundant-
 * subgraph merging). Two requests are batchable iff their templates hash
 * equal AND they target the same hardware (hw::configDigest) — the
 * dispatcher only ever runs one config, so the catalog hash alone keys
 * batches at dispatch time.
 */

#include <string>
#include <vector>

#include "graph/workloads.h"

namespace crophe::serve {

/** One requestable workload, pre-built and content-hashed. */
struct RequestTemplate
{
    std::string name;
    graph::Workload workload;  ///< primitives wrap as one-segment workloads
    u64 graphHash = 0;         ///< content hash over segments (batching key)
    u64 ops = 0;               ///< Σ unique-segment ops (plan-latency model)
};

/** The fixed template set one serving run offers. */
struct Catalog
{
    graph::FheParams params;
    std::vector<RequestTemplate> templates;

    /** Index of template @p name; throws RecoverableError when unknown. */
    u32 indexOf(const std::string &name) const;
};

/**
 * Build the catalog for @p names (see file doc for the accepted set).
 * Throws RecoverableError on an unknown name or an empty list.
 */
Catalog buildCatalog(const graph::FheParams &p,
                     const std::vector<std::string> &names,
                     const graph::WorkloadOptions &wopt = {});

/** A named traffic mix: templates plus relative request weights. */
struct MixProfile
{
    std::string name;
    std::vector<std::string> templates;
    std::vector<double> weights;  ///< same length; need not sum to 1
};

/**
 * Built-in mixes: "bootstrap" (bootstrap-heavy), "matvec"
 * (inference/matvec-heavy), "blend" (all three benchmarks), "micro"
 * (primitive graphs only, for tests/CI). Throws RecoverableError on an
 * unknown name.
 */
MixProfile mixByName(const std::string &name);

}  // namespace crophe::serve

#endif  // CROPHE_SERVE_CATALOG_H_
