#ifndef CROPHE_SERVE_QUEUE_H_
#define CROPHE_SERVE_QUEUE_H_

/**
 * @file
 * The SLA-aware dispatch queue. Three orderings:
 *
 *   fifo — arrival order;
 *   edf  — earliest deadline first;
 *   wfq  — start-time fair queueing: each request is tagged with
 *          finish = max(now, tenant's last finish tag) + service/weight,
 *          and the smallest tag dispatches first, giving each tenant a
 *          weight-proportional share under contention.
 *
 * popBatch() takes the head by policy, then greedily fills the batch
 * with queued requests sharing the head's batching key (the catalog
 * template content hash — same graph, same schedule), in policy order.
 * All ties break on insertion sequence, so the order is total and the
 * queue is deterministic.
 */

#include <string>
#include <vector>

#include "serve/request.h"

namespace crophe::serve {

/** Queue ordering policy. */
enum class Policy : u8
{
    Fifo,
    Edf,
    Wfq,
};

/** Lookup by name (fifo/edf/wfq); throws RecoverableError. */
Policy policyByName(const std::string &name);
const char *policyName(Policy policy);

/** Deterministic priority queue with same-template batch extraction. */
class RequestQueue
{
  public:
    RequestQueue(Policy policy, std::vector<double> tenantWeights);

    /**
     * Enqueue @p req with batching key @p batchKey and estimated service
     * time @p serviceEstimate at virtual time @p now (WFQ virtual
     * clock).
     */
    void push(const Request &req, u64 batchKey, double serviceEstimate,
              double now);

    bool empty() const { return items_.empty(); }
    std::size_t depth() const { return items_.size(); }
    /** Σ service estimates of everything queued. */
    double backlogSeconds() const { return backlog_; }

    /**
     * Pop the policy head plus up to @p maxBatch - 1 queued requests
     * with the same batching key, in policy order. Empty when the queue
     * is empty.
     */
    std::vector<Request> popBatch(u64 maxBatch);

  private:
    struct Item
    {
        Request req;
        u64 batchKey;
        double prio;
        double est;
        u64 seq;

        bool operator<(const Item &o) const
        {
            if (prio != o.prio)
                return prio < o.prio;
            return seq < o.seq;
        }
    };

    Policy policy_;
    std::vector<double> weights_;
    /** WFQ per-tenant last finish tag. */
    std::vector<double> finishTag_;
    std::vector<Item> items_;  ///< sorted by (prio, seq)
    u64 seq_ = 0;
    double backlog_ = 0.0;
};

}  // namespace crophe::serve

#endif  // CROPHE_SERVE_QUEUE_H_
