#include "serve/recovery.h"

#include <algorithm>

#include "common/logging.h"

namespace crophe::serve {

double
retryBackoff(const RecoveryOptions &opt, u32 attempt)
{
    CROPHE_ASSERT(attempt >= 1, "retry attempts are 1-based");
    double backoff = opt.retryBackoffSeconds;
    // Doubling with an explicit loop bound: attempt is capped by
    // maxRetries long before the exponential could overflow.
    for (u32 i = 1; i < attempt && backoff < opt.retryBackoffCapSeconds;
         ++i)
        backoff *= 2.0;
    return std::min(backoff, opt.retryBackoffCapSeconds);
}

CircuitBreaker::CircuitBreaker(const RecoveryOptions &opt,
                               std::size_t tenants)
    : opt_(opt), tenants_(tenants)
{
}

bool
CircuitBreaker::tryAdmit(u32 tenant, double now)
{
    if (disabled())
        return true;
    Tenant &t = tenants_[tenant];
    switch (t.state) {
    case State::Closed:
        return true;
    case State::Open:
        if (now < t.reopenAt)
            return false;
        t.state = State::HalfOpen;
        t.trialOutstanding = true;
        ++halfOpens_;
        return true;  // the one trial request
    case State::HalfOpen:
        if (t.trialOutstanding)
            return false;
        t.trialOutstanding = true;
        return true;
    }
    return true;
}

void
CircuitBreaker::onFailure(u32 tenant, double now)
{
    if (disabled())
        return;
    Tenant &t = tenants_[tenant];
    switch (t.state) {
    case State::Closed:
        if (++t.consecutiveFailures >= opt_.breakerThreshold) {
            t.state = State::Open;
            t.reopenAt = now + opt_.breakerResetSeconds;
            t.trialOutstanding = false;
            ++trips_;
        }
        break;
    case State::HalfOpen:
        // The trial (or a straggler from before the trip) failed:
        // re-open for another full reset interval.
        t.state = State::Open;
        t.reopenAt = now + opt_.breakerResetSeconds;
        t.trialOutstanding = false;
        ++trips_;
        break;
    case State::Open:
        // Stragglers failing while open extend nothing; the reset timer
        // anchors at the trip.
        break;
    }
}

void
CircuitBreaker::onSuccess(u32 tenant)
{
    if (disabled())
        return;
    Tenant &t = tenants_[tenant];
    switch (t.state) {
    case State::Closed:
        t.consecutiveFailures = 0;
        break;
    case State::HalfOpen:
        t.state = State::Closed;
        t.consecutiveFailures = 0;
        t.trialOutstanding = false;
        break;
    case State::Open:
        // A straggler completing does not close an open breaker; only
        // the half-open trial can.
        break;
    }
}

}  // namespace crophe::serve
