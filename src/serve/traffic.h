#ifndef CROPHE_SERVE_TRAFFIC_H_
#define CROPHE_SERVE_TRAFFIC_H_

/**
 * @file
 * Deterministic seeded traffic generation (DESIGN.md §11).
 *
 * Each tenant gets an independent xoshiro stream derived from the run
 * seed and its index, so adding or re-ordering tenants never perturbs
 * another tenant's arrivals. Open-loop arrivals are Poisson
 * (exponential inter-arrival times) or fixed-rate; each arrival draws a
 * catalog template from the tenant's mix. The merged trace is sorted by
 * (arrival, tenant, per-tenant sequence) — a total order, so the
 * request ids and everything downstream are reproducible bit-for-bit.
 */

#include <string>
#include <vector>

#include "serve/catalog.h"
#include "serve/request.h"

namespace crophe::serve {

/** Arrival process of one tenant's open-loop stream. */
enum class ArrivalProcess : u8
{
    Poisson,  ///< exponential inter-arrival times at the given rate
    Fixed,    ///< deterministic 1/rate spacing (first arrival at 1/rate)
};

/** One tenant's traffic contract and SLA. */
struct TenantSpec
{
    std::string name;
    ArrivalProcess process = ArrivalProcess::Poisson;
    double rate = 1.0;         ///< mean requests per virtual second
    double slaSeconds = 0.05;  ///< per-request latency objective
    double weight = 1.0;       ///< weighted-fair-queueing share
    /** Admission token bucket: sustained tokens/second and burst size.
     *  bucketRate 0 disables per-tenant throttling. */
    double bucketRate = 0.0;
    double bucketBurst = 1.0;
    /** Relative weight per catalog template (size = catalog size). */
    std::vector<double> mix;
};

/** A full seeded traffic description. */
struct TrafficSpec
{
    double durationSeconds = 1.0;  ///< arrivals generated in [0, duration)
    u64 seed = 1;
    std::vector<TenantSpec> tenants;
};

/**
 * Generate the merged, id-assigned arrival trace. Throws
 * RecoverableError on an invalid spec (no tenants, non-positive rate or
 * duration, mix size mismatch, all-zero mix).
 */
std::vector<Request> generateTraffic(const TrafficSpec &spec,
                                     const Catalog &catalog);

}  // namespace crophe::serve

#endif  // CROPHE_SERVE_TRAFFIC_H_
