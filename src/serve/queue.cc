#include "serve/queue.h"

#include <algorithm>

#include "common/error.h"

namespace crophe::serve {

Policy
policyByName(const std::string &name)
{
    if (name == "fifo")
        return Policy::Fifo;
    if (name == "edf")
        return Policy::Edf;
    if (name == "wfq")
        return Policy::Wfq;
    throw RecoverableError("unknown queue policy '" + name +
                           "' (expected fifo, edf, or wfq)");
}

const char *
policyName(Policy policy)
{
    switch (policy) {
    case Policy::Fifo:
        return "fifo";
    case Policy::Edf:
        return "edf";
    case Policy::Wfq:
        return "wfq";
    }
    return "?";
}

RequestQueue::RequestQueue(Policy policy, std::vector<double> tenantWeights)
    : policy_(policy), weights_(std::move(tenantWeights))
{
    for (double &w : weights_)
        if (!(w > 0.0))
            w = 1.0;
    finishTag_.assign(weights_.size(), 0.0);
}

void
RequestQueue::push(const Request &req, u64 batchKey, double serviceEstimate,
                   double now)
{
    Item it;
    it.req = req;
    it.batchKey = batchKey;
    it.est = serviceEstimate;
    it.seq = seq_++;
    switch (policy_) {
    case Policy::Fifo:
        it.prio = req.arrival;
        break;
    case Policy::Edf:
        it.prio = req.deadline;
        break;
    case Policy::Wfq: {
        // Start-time fair queueing with the real clock as virtual time.
        double start = std::max(now, finishTag_[req.tenant]);
        double finish = start + serviceEstimate / weights_[req.tenant];
        finishTag_[req.tenant] = finish;
        it.prio = finish;
        break;
    }
    }
    items_.insert(std::upper_bound(items_.begin(), items_.end(), it),
                  std::move(it));
    backlog_ += serviceEstimate;
}

std::vector<Request>
RequestQueue::popBatch(u64 maxBatch)
{
    std::vector<Request> batch;
    if (items_.empty())
        return batch;
    if (maxBatch == 0)
        maxBatch = 1;
    const u64 key = items_.front().batchKey;
    std::vector<Item> keep;
    keep.reserve(items_.size());
    for (auto &it : items_) {
        if (batch.size() < maxBatch && it.batchKey == key) {
            backlog_ -= it.est;
            batch.push_back(it.req);
        } else {
            keep.push_back(std::move(it));
        }
    }
    items_ = std::move(keep);
    return batch;
}

}  // namespace crophe::serve
