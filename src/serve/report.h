#ifndef CROPHE_SERVE_REPORT_H_
#define CROPHE_SERVE_REPORT_H_

/**
 * @file
 * Per-tenant and aggregate serving metrics: latency percentiles
 * (nearest-rank), goodput (SLA-met completions per second of offered
 * traffic window), rejection counts, plan-compile cache hit rate and the
 * Jain fairness index over per-tenant goodput.
 *
 * registerReport() publishes everything under `serve.*` in the
 * telemetry registry; printReport() renders the human table. The table
 * deliberately contains no plan-cache-dependent numbers, so a cold and
 * a warm run with planSecondsPerOp = 0 print byte-identical tables (the
 * cache's effect lives in the stats JSON under serve.plan.* and
 * plan.cache.*).
 */

#include <ostream>
#include <string>
#include <vector>

#include "serve/dispatcher.h"

namespace crophe::telemetry {
class StatsRegistry;
}  // namespace crophe::telemetry

namespace crophe::serve {

/** One tenant's scoreboard. */
struct TenantReport
{
    std::string name;
    u64 offered = 0;
    u64 admitted = 0;
    u64 rejectedThrottled = 0;
    u64 rejectedOverload = 0;
    u64 rejectedBreaker = 0;  ///< circuit breaker open (DESIGN.md §14)
    u64 completed = 0;
    u64 expired = 0;  ///< admitted but failed out of retries/SLA (§14)
    u64 slaMet = 0;
    u64 slaMissed = 0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    double maxMs = 0.0;
    double goodput = 0.0;  ///< SLA-met completions / duration
};

/** Whole-run scoreboard. */
struct ServeReport
{
    std::vector<TenantReport> tenants;
    TenantReport total;  ///< name = "total", aggregates all tenants
    double durationSeconds = 0.0;
    double horizonSeconds = 0.0;
    double utilization = 0.0;  ///< busy / horizon
    double jainIndex = 1.0;    ///< fairness over per-tenant goodput
    u64 batches = 0;
    double meanBatchSize = 0.0;
    u64 planCompiles = 0;
    u64 planCacheHits = 0;
    bool truncated = false;
    /** Failure-recovery activity (§14). Healthy runs leave this empty,
     *  and the printer/registrar emit nothing for it — so healthy
     *  stdout and stats stay byte-identical to pre-recovery builds. */
    RecoveryStats recovery;
};

/** Nearest-rank percentile; @p q in (0, 1]; sorts a copy of @p xs. */
double percentile(std::vector<double> xs, double q);

/** Jain fairness index (Σx)² / (n·Σx²); 1.0 for n = 0 or all-zero. */
double jainIndex(const std::vector<double> &xs);

/** Aggregate @p result per tenant (tenant indices refer to @p tenants). */
ServeReport buildReport(const ServeResult &result,
                        const std::vector<TenantSpec> &tenants);

/** Publish as `<prefix>.*` counters/scalars (default prefix "serve"). */
void registerReport(const ServeReport &report,
                    telemetry::StatsRegistry &reg,
                    const std::string &prefix = "serve");

/** Human-readable per-tenant table (see file doc on cache neutrality). */
void printReport(const ServeReport &report, std::ostream &os);

}  // namespace crophe::serve

#endif  // CROPHE_SERVE_REPORT_H_
