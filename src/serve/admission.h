#ifndef CROPHE_SERVE_ADMISSION_H_
#define CROPHE_SERVE_ADMISSION_H_

/**
 * @file
 * Admission control: per-tenant token buckets (rate contracts) plus
 * system-wide load shedding (backlog- and depth-bounded).
 *
 * The decision order is contract-friendly: a tenant over its token
 * bucket is Throttled *without* consuming a token; a request the system
 * cannot serve within shedFactor × SLA is shed as Overload *before* the
 * tenant's token is spent. Rejections surface as the typed
 * AdmissionRejected (a RecoverableError), so an embedding harness can
 * catch per-request failures without tearing down the serving loop.
 */

#include <optional>
#include <vector>

#include "common/error.h"
#include "serve/request.h"
#include "serve/traffic.h"

namespace crophe::serve {

/** Typed rejection thrown by AdmissionController::admitOrThrow. */
class AdmissionRejected : public RecoverableError
{
  public:
    AdmissionRejected(RejectReason reason, const Request &req);

    RejectReason reason;
    u64 requestId;
    u32 tenant;
};

/** Classic token bucket over virtual time. */
struct TokenBucket
{
    double rate = 0.0;   ///< sustained tokens per second (0 = unlimited)
    double burst = 1.0;  ///< bucket capacity
    double tokens = 0.0;
    double last = 0.0;   ///< virtual time of the last refill

    /** Fill to burst and anchor the refill clock at @p now. */
    void reset(double now);
    /** Accrue rate × elapsed tokens (clamped to burst). */
    void refill(double now);
    /** True when a token is available after refilling at @p now. */
    bool available(double now);
    /** Consume one token (caller checked available()). */
    void take();
};

/** System-protection knobs. */
struct AdmissionOptions
{
    /**
     * Shed when the projected wait (queue backlog + residual busy time)
     * exceeds shedFactor × the tenant's SLA; 0 disables shedding.
     */
    double shedFactor = 8.0;
    /** Hard queue-depth cap; 0 = unlimited. */
    u64 maxQueue = 0;
};

/** Per-run admission state (buckets anchored at virtual time 0). */
class AdmissionController
{
  public:
    AdmissionController(const AdmissionOptions &opt,
                        const std::vector<TenantSpec> &tenants);

    /**
     * Decide on @p req at virtual time @p now given the dispatcher's
     * projected wait and queue depth. Returns nullopt on admit (the
     * tenant's token is consumed); the reason otherwise.
     */
    std::optional<RejectReason> decide(const Request &req, double now,
                                       double projectedWaitSeconds,
                                       std::size_t queueDepth);

    /** decide(), but rejections throw the typed AdmissionRejected. */
    void admitOrThrow(const Request &req, double now,
                      double projectedWaitSeconds, std::size_t queueDepth);

    /**
     * Degraded-mode scaling (DESIGN.md §14): after a capacity loss the
     * dispatcher sets @p fraction = aliveChips/chips, which scales every
     * tenant's token-bucket rate and the shed threshold by the same
     * factor — the system sheds early instead of building a backlog the
     * surviving chips can never drain. Buckets refill at @p now under
     * the old rate first, so the change takes effect exactly at the
     * fault's virtual time. fraction = 1.0 restores healthy behavior.
     */
    void setCapacityFraction(double fraction, double now);

  private:
    AdmissionOptions opt_;
    std::vector<double> slaSeconds_;
    std::vector<TokenBucket> buckets_;
    std::vector<double> baseRates_;
    double capacityFraction_ = 1.0;
};

}  // namespace crophe::serve

#endif  // CROPHE_SERVE_ADMISSION_H_
