#include "serve/admission.h"

#include <algorithm>
#include <string>

namespace crophe::serve {

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
    case RejectReason::Throttled:
        return "throttled";
    case RejectReason::Overload:
        return "overload";
    }
    return "?";
}

AdmissionRejected::AdmissionRejected(RejectReason r, const Request &req)
    : RecoverableError("request " + std::to_string(req.id) + " (tenant " +
                       std::to_string(req.tenant) + ") rejected: " +
                       rejectReasonName(r)),
      reason(r),
      requestId(req.id),
      tenant(req.tenant)
{
}

void
TokenBucket::reset(double now)
{
    tokens = burst;
    last = now;
}

void
TokenBucket::refill(double now)
{
    if (now > last) {
        tokens = std::min(burst, tokens + rate * (now - last));
        last = now;
    }
}

bool
TokenBucket::available(double now)
{
    if (rate <= 0.0)
        return true;  // unlimited contract
    refill(now);
    return tokens >= 1.0;
}

void
TokenBucket::take()
{
    if (rate > 0.0)
        tokens -= 1.0;
}

AdmissionController::AdmissionController(
    const AdmissionOptions &opt, const std::vector<TenantSpec> &tenants)
    : opt_(opt)
{
    slaSeconds_.reserve(tenants.size());
    buckets_.reserve(tenants.size());
    baseRates_.reserve(tenants.size());
    for (const auto &t : tenants) {
        slaSeconds_.push_back(t.slaSeconds);
        TokenBucket b;
        b.rate = t.bucketRate;
        b.burst = std::max(1.0, t.bucketBurst);
        b.reset(0.0);
        buckets_.push_back(b);
        baseRates_.push_back(b.rate);
    }
}

void
AdmissionController::setCapacityFraction(double fraction, double now)
{
    capacityFraction_ = std::clamp(fraction, 0.0, 1.0);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        // Accrue up to the change point at the old rate, then switch.
        buckets_[i].refill(now);
        buckets_[i].rate = baseRates_[i] * capacityFraction_;
    }
}

std::optional<RejectReason>
AdmissionController::decide(const Request &req, double now,
                            double projectedWaitSeconds,
                            std::size_t queueDepth)
{
    TokenBucket &bucket = buckets_[req.tenant];
    if (!bucket.available(now))
        return RejectReason::Throttled;
    if (opt_.maxQueue > 0 && queueDepth >= opt_.maxQueue)
        return RejectReason::Overload;
    if (opt_.shedFactor > 0.0 &&
        projectedWaitSeconds >
            opt_.shedFactor * slaSeconds_[req.tenant] * capacityFraction_)
        return RejectReason::Overload;
    bucket.take();
    return std::nullopt;
}

void
AdmissionController::admitOrThrow(const Request &req, double now,
                                  double projectedWaitSeconds,
                                  std::size_t queueDepth)
{
    auto reject = decide(req, now, projectedWaitSeconds, queueDepth);
    if (reject.has_value())
        throw AdmissionRejected(*reject, req);
}

}  // namespace crophe::serve
