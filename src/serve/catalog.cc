#include "serve/catalog.h"

#include <algorithm>

#include "common/error.h"

namespace crophe::serve {

namespace {

/** splitmix-style combiner (same family the plan cache uses). */
u64
mix64(u64 h, u64 v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

/** Wrap one primitive graph as a single-segment workload. */
graph::Workload
wrapPrimitive(const std::string &name, const graph::FheParams &p,
              graph::Graph g)
{
    graph::Workload w;
    w.name = name;
    w.params = p;
    w.segments.push_back({name, std::move(g), 1});
    return w;
}

graph::Workload
buildTemplateWorkload(const std::string &name, const graph::FheParams &p,
                      const graph::WorkloadOptions &wopt)
{
    // Primitives run at a mid-stack level: deep enough to exercise
    // key switching, cheap enough for tests.
    const u32 level = std::min<u32>(10, p.L);
    if (name == "hmult")
        return wrapPrimitive(name, p, graph::buildHMult(p, level));
    if (name == "hrot")
        return wrapPrimitive(name, p,
                             graph::buildHRot(p, level, "evk_rot_1"));
    if (name == "matvec")
        return wrapPrimitive(
            name, p,
            graph::buildPtMatVecMult(p, level, 4, 2, wopt.rotMode,
                                     wopt.rHyb));
    // Everything else must be a Section VI benchmark workload;
    // buildWorkload throws RecoverableError on unknown names.
    return graph::buildWorkload(name, p, wopt);
}

}  // namespace

u32
Catalog::indexOf(const std::string &name) const
{
    for (u32 i = 0; i < templates.size(); ++i)
        if (templates[i].name == name)
            return i;
    throw RecoverableError("unknown catalog template '" + name + "'");
}

Catalog
buildCatalog(const graph::FheParams &p,
             const std::vector<std::string> &names,
             const graph::WorkloadOptions &wopt)
{
    if (names.empty())
        throw RecoverableError("catalog template list is empty");
    Catalog cat;
    cat.params = p;
    for (const auto &name : names) {
        RequestTemplate t;
        t.name = name;
        t.workload = buildTemplateWorkload(name, p, wopt);
        u64 h = 0x53525645u;  // 'SRVE'
        for (const auto &seg : t.workload.segments) {
            h = mix64(h, seg.graph.structuralHash(seg.graph.topoOrder()));
            h = mix64(h, seg.repetitions);
            t.ops += seg.graph.size();
        }
        t.graphHash = h;
        cat.templates.push_back(std::move(t));
    }
    return cat;
}

MixProfile
mixByName(const std::string &name)
{
    if (name == "bootstrap")
        return {name, {"bootstrap", "helr"}, {0.7, 0.3}};
    if (name == "matvec")
        return {name, {"resnet20", "bootstrap"}, {0.7, 0.3}};
    if (name == "blend")
        return {name, {"bootstrap", "helr", "resnet20"}, {0.4, 0.3, 0.3}};
    if (name == "micro")
        return {name, {"hmult", "hrot", "matvec"}, {0.5, 0.3, 0.2}};
    throw RecoverableError(
        "unknown mix '" + name +
        "' (expected bootstrap, matvec, blend, or micro)");
}

}  // namespace crophe::serve
