#ifndef CROPHE_GRAPH_KEYSWITCH_BUILDER_H_
#define CROPHE_GRAPH_KEYSWITCH_BUILDER_H_

/**
 * @file
 * Expansion of the key-switching primitive into its operator subgraph
 * (Figure 1): Decomp → per-digit { iNTT → BConv(ModUp) → NTT } →
 * KSKInP → { iNTT → BConv(ModDown) → NTT } per output half.
 */

#include <string>

#include "graph/graph.h"
#include "graph/params.h"

namespace crophe::graph {

/** Node handles returned by the expansion. */
struct KeySwitchNodes
{
    OpId inputPoly;  ///< consumes d(X) over ℓ+1 limbs (Eval rep)
    OpId outB;       ///< produces the b half over ℓ+1 limbs
    OpId outA;       ///< produces the a half over ℓ+1 limbs
};

/**
 * Append a full key-switch of a level-ℓ polynomial to @p g.
 *
 * @param producer node whose output feeds the key switch (kNoOp adds an
 *        Input node);
 * @param evk_key identity of the evaluation key (e.g. "evk:mult" or
 *        "evk:rot:5") — operators referencing equal keys can share it.
 */
KeySwitchNodes buildKeySwitch(Graph &g, const FheParams &params, u32 level,
                              OpId producer, const std::string &evk_key);

/** Count of ops a key switch expands to (used by workload sizing tests). */
u32 keySwitchOpCount(const FheParams &params, u32 level);

}  // namespace crophe::graph

#endif  // CROPHE_GRAPH_KEYSWITCH_BUILDER_H_
