#ifndef CROPHE_GRAPH_KEYSWITCH_BUILDER_H_
#define CROPHE_GRAPH_KEYSWITCH_BUILDER_H_

/**
 * @file
 * Expansion of the key-switching primitive into its operator subgraph
 * (Figure 1): Decomp → per-digit { iNTT → BConv(ModUp) → NTT } →
 * KSKInP → { iNTT → BConv(ModDown) → NTT } per output half.
 *
 * Three dataflow variants are emitted (DESIGN.md §15): the fused
 * per-digit pipeline above, the CiFlow output-stationary variant whose
 * (b, a) result pair shares one batched ModDown walk, and the CiFlow
 * reordered-ModUp variant whose per-digit forward transforms collapse
 * into one batched NTT node. All three compute the same key switch; they
 * differ in node structure — and hence in the orientation switches,
 * intermediate traffic and grouping opportunities the scheduler sees.
 */

#include <string>

#include "graph/graph.h"
#include "graph/params.h"

namespace crophe::graph {

/** Graph-level key-switch dataflow (mirrors fhe::KeySwitchDataflow minus
 *  the unfused oracle, which only exists for differential testing). */
enum class KsDataflow : u8
{
    Fused = 0,             ///< per-digit iNTT→BConv→NTT pipeline (default)
    OutputStationary = 1,  ///< pair-batched single ModDown walk
    ReorderedModUp = 2,    ///< one batched NTT across all digits' BConv rows
};

/** Stable lowercase name: fused | ostat | reordup. */
const char *ksDataflowName(KsDataflow df);

/** Node handles returned by the expansion. */
struct KeySwitchNodes
{
    OpId inputPoly;  ///< consumes d(X) over ℓ+1 limbs (Eval rep)
    OpId outB;       ///< produces the b half over ℓ+1 limbs
    OpId outA;       ///< produces the a half over ℓ+1 limbs
};

/**
 * Append a full key-switch of a level-ℓ polynomial to @p g.
 *
 * @param producer node whose output feeds the key switch (kNoOp adds an
 *        Input node);
 * @param evk_key identity of the evaluation key (e.g. "evk:mult" or
 *        "evk:rot:5") — operators referencing equal keys can share it;
 * @param df dataflow variant to emit (see file doc). For OutputStationary
 *        the (b, a) halves leave one shared pair-ModDown chain, so outB
 *        and outA are the same node.
 */
KeySwitchNodes buildKeySwitch(Graph &g, const FheParams &params, u32 level,
                              OpId producer, const std::string &evk_key,
                              KsDataflow df = KsDataflow::Fused);

/** Count of ops a key switch expands to (used by workload sizing tests). */
u32 keySwitchOpCount(const FheParams &params, u32 level);

/** Dataflow-aware op count; Fused matches the two-argument overload. */
u32 keySwitchOpCount(const FheParams &params, u32 level, KsDataflow df);

}  // namespace crophe::graph

#endif  // CROPHE_GRAPH_KEYSWITCH_BUILDER_H_
