#ifndef CROPHE_GRAPH_GRAPH_H_
#define CROPHE_GRAPH_GRAPH_H_

/**
 * @file
 * The operator DAG, with the utilities the scheduler needs: topological
 * order, acyclic pre-partitioning, and structural hashing for merging
 * redundant subgraphs (Section V-D).
 */

#include <string>
#include <vector>

#include "common/types.h"
#include "graph/op.h"

namespace crophe::graph {

/** A producer→consumer edge; volume is the producer's output words. */
struct Edge
{
    OpId from;
    OpId to;
};

/** Directed acyclic graph of FHE operators. */
class Graph
{
  public:
    Graph() = default;

    /** Add a node; returns its id. */
    OpId add(Op op);

    /** Add a dependency edge from @p from to @p to. */
    void connect(OpId from, OpId to);

    /**
     * Replace both adjacency lists wholesale (deserialization support).
     * Edge-list order is semantically relevant — group analysis iterates
     * producers/consumers in insertion order — so a round-trip must restore
     * the exact lists, not re-derive them via connect() in some canonical
     * order. Panics if the lists disagree with each other or the node set.
     */
    void restoreEdges(std::vector<std::vector<OpId>> succ,
                      std::vector<std::vector<OpId>> pred);

    u32 size() const { return static_cast<u32>(ops_.size()); }
    const Op &op(OpId id) const { return ops_[id]; }
    Op &op(OpId id) { return ops_[id]; }
    const std::vector<Op> &ops() const { return ops_; }

    const std::vector<OpId> &consumers(OpId id) const { return succ_[id]; }
    const std::vector<OpId> &producers(OpId id) const { return pred_[id]; }

    /** Topological order of all node ids; panics on a cycle. */
    std::vector<OpId> topoOrder() const;

    /**
     * Topological order that clusters operators sharing an auxKey
     * adjacently whenever dependencies allow. This is what lets the
     * scheduler's (contiguous-window) group enumeration co-run the
     * same-evk fine-step rotations of the hybrid scheme (Section V-C) and
     * share their key with one fetch.
     */
    std::vector<OpId> topoOrderAuxAffinity() const;

    /** Sum of op flops. */
    u64 totalFlops() const;
    /** Sum of distinct auxiliary volumes (each auxKey counted once;
     *  keyless aux counted per op). */
    u64 totalAuxWords() const;

    /**
     * Partition into acyclic chunks of at most @p max_size ops, following
     * topological order (the pre-partitioning of Section V-D).
     */
    std::vector<std::vector<OpId>> partition(u32 max_size) const;

    /**
     * Structural hash of the subgraph induced by @p nodes: equal hashes ⇒
     * the subgraphs are (with overwhelming probability) isomorphic with
     * identical op shapes, letting the scheduler search each unique
     * subgraph once.
     */
    u64 structuralHash(const std::vector<OpId> &nodes) const;

    /**
     * Induced subgraph over @p nodes (kept in the given order) with the
     * boundary materialized: every edge from an op outside @p nodes adds
     * an Input op shaped like the external producer's output, and every
     * edge to an op outside adds an Output op — so a scheduler seeing only
     * the subgraph still charges the crossing ciphertexts as off-chip
     * traffic. Edges among @p nodes keep their insertion order. This is
     * what the pod partitioner hands each chip. Panics if @p nodes has
     * duplicates or out-of-range ids.
     */
    Graph inducedSubgraph(const std::vector<OpId> &nodes) const;

    /** Human-readable dump (for examples and debugging). */
    std::string toString() const;

  private:
    std::vector<Op> ops_;
    std::vector<std::vector<OpId>> succ_;
    std::vector<std::vector<OpId>> pred_;
};

}  // namespace crophe::graph

#endif  // CROPHE_GRAPH_GRAPH_H_
