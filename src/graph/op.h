#ifndef CROPHE_GRAPH_OP_H_
#define CROPHE_GRAPH_OP_H_

/**
 * @file
 * FHE operator nodes of the computational graph the scheduler consumes.
 *
 * Each node carries the loop-shape information the CROPHE scheduler needs
 * (Section V-A): how many elements flow through it, how many modular
 * multiplications it performs, which auxiliary constant data it touches
 * (evk digits, BConv matrices, plaintext diagonals), and along which loop
 * dimension it can stream for fine-grained pipelining.
 */

#include <string>
#include <vector>

#include "common/types.h"

namespace crophe::graph {

/** Kinds of FHE operators (Section II-A summary). */
enum class OpKind : u8
{
    Input,         ///< ciphertext polynomial arriving from DRAM
    Output,        ///< result leaving to DRAM
    EwAdd,         ///< element-wise addition (HAdd and partial sums)
    EwMul,         ///< element-wise multiplication (tensor products)
    EwMulPlain,    ///< PMult with a plaintext operand (aux data)
    EwMulConst,    ///< CMult by a scalar
    Twiddle,       ///< element-wise twiddle multiply of a decomposed NTT
    Ntt,           ///< monolithic forward NTT (all limbs)
    INtt,          ///< monolithic inverse NTT
    NttCol,        ///< column step of a decomposed NTT (N1 instances of N2)
    NttRow,        ///< row step of a decomposed NTT (N2 instances of N1)
    INttCol,       ///< column step of a decomposed iNTT
    INttRow,       ///< row step of a decomposed iNTT
    Transpose,     ///< on-chip data transposition (transpose unit)
    Automorphism,  ///< coefficient permutation of HRot
    BConv,         ///< base conversion matrix multiply (ModUp/ModDown)
    KskInnerProd,  ///< inner product with one evk digit
    Rescale,       ///< HRescale limb-drop arithmetic
};

const char *opKindName(OpKind kind);

/** Axis an operator can keep as its outermost loop while streaming. */
enum class StreamAxis : u8
{
    SlotN,   ///< the (tiled) N dimension
    SlotN1,  ///< only the N1 instance dimension (column NTT step)
    SlotN2,  ///< only the N2 instance dimension (row NTT step)
    Limb,    ///< the limb dimension
    None,    ///< must materialize its whole input (orientation switch)
};

using OpId = u32;
constexpr OpId kNoOp = ~0u;

/** One operator node. */
struct Op
{
    OpId id = kNoOp;
    OpKind kind = OpKind::Input;
    std::string label;

    // --- Loop shape -----------------------------------------------------
    u64 n = 0;         ///< slot count N
    u64 n1 = 0;        ///< NTT-decomposition factor (0 if undecomposed)
    u64 n2 = 0;
    u32 limbsIn = 0;   ///< limbs per input operand
    u32 limbsOut = 0;  ///< limbs per output
    u32 beta = 1;      ///< digits reduced over (KskInnerProd)

    // --- Data volumes (in machine words) --------------------------------
    u64 inputWords = 0;   ///< total ciphertext input volume
    u64 outputWords = 0;  ///< output volume
    u64 auxWords = 0;     ///< auxiliary constant volume (evk/ptx/matrix)

    /**
     * Identity of the auxiliary data: operators with equal non-empty
     * auxKey reference the same constants and can *share* them
     * (Section V-A, sharing).
     */
    std::string auxKey;

    // --- Compute --------------------------------------------------------
    u64 flops = 0;  ///< modular multiplications (the PE-lane unit of work)

    // --- Dataflow properties ---------------------------------------------
    /** Outermost-loop axes this operator can stream on. */
    std::vector<StreamAxis> streamAxes;

    /** True if the operator changes the data access orientation (NTT,
     *  automorphism, transpose) — a pipeline barrier unless decomposed. */
    bool orientationSwitch = false;

    bool isTransform() const;
    bool isElementwise() const;
    bool canStream(StreamAxis axis) const;
};

/**
 * Factory helpers: fill in volumes/flops/stream axes from the loop shape.
 * @{
 */
Op makeInput(u64 n, u32 limbs, const std::string &label = "input");
Op makeOutput(u64 n, u32 limbs);
Op makeEwBinary(OpKind kind, u64 n, u32 limbs);
Op makeEwMulPlain(u64 n, u32 limbs, const std::string &aux_key);
Op makeEwMulConst(u64 n, u32 limbs);
Op makeTwiddle(u64 n, u32 limbs);
Op makeNtt(OpKind kind, u64 n, u32 limbs);
Op makeNttStep(OpKind kind, u64 n1, u64 n2, u32 limbs);
Op makeTranspose(u64 n, u32 limbs);
Op makeAutomorphism(u64 n, u32 limbs);
Op makeBConv(u64 n, u32 limbs_in, u32 limbs_out);
Op makeKskInnerProd(u64 n, u32 limbs, u32 beta, const std::string &evk_key);
Op makeRescale(u64 n, u32 limbs_in);
/** @} */

}  // namespace crophe::graph

#endif  // CROPHE_GRAPH_OP_H_
