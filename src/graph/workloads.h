#ifndef CROPHE_GRAPH_WORKLOADS_H_
#define CROPHE_GRAPH_WORKLOADS_H_

/**
 * @file
 * Workload graph generators for the four evaluation benchmarks
 * (Section VI): bootstrapping, HELR-1024, ResNet-20 and ResNet-110.
 *
 * Large workloads are expressed as sequences of *segments* — unique
 * subgraphs with repetition counts. This mirrors the paper's
 * pre-partitioning and redundant-subgraph merging (Section V-D): the
 * scheduler searches each unique segment once and the results are
 * composed sequentially.
 */

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/keyswitch_builder.h"
#include "graph/params.h"

namespace crophe::graph {

/** Graph-level rotation strategy for BSGS baby steps (Section V-C). */
enum class RotMode : u8
{
    MinKs,     ///< ARK's sequential unit rotations
    Hoisting,  ///< MAD's hoisted parallel rotations
    Hybrid,    ///< CROPHE's coarse/fine hybrid (r_hyb)
    /** Hoisted baby steps plus giant-step inner products accumulated in
     *  the extended basis, so the per-giant-step ModDown collapses into
     *  one shared ModDown at the end (DESIGN.md §15). */
    TripleHoisted,
};

const char *rotModeName(RotMode mode);

/** A unique subgraph plus how many times the workload executes it. */
struct WorkloadSegment
{
    std::string name;
    Graph graph;
    u64 repetitions = 1;
};

/** A full benchmark workload. */
struct Workload
{
    std::string name;
    FheParams params;
    std::vector<WorkloadSegment> segments;

    u64 totalOps() const;
    u64 totalFlops() const;
};

/** Knobs for workload generation. */
struct WorkloadOptions
{
    RotMode rotMode = RotMode::Hybrid;
    u32 rHyb = 4;  ///< hybrid coarse stride (ignored unless Hybrid)
    /** Dataflow emitted for every full key switch (relinearization,
     *  Min-KS/coarse/giant rotations); hoisted rotations have their own
     *  shapes and are unaffected. */
    KsDataflow ksDataflow = KsDataflow::Fused;
};

// --- Primitive builders (also used directly by tests/benches) -----------

/** HMult (tensor product + relinearization + rescale) at @p level. */
Graph buildHMult(const FheParams &p, u32 level,
                 KsDataflow df = KsDataflow::Fused);

/** HRot (automorphism + key switch) at @p level with key id @p evk_key. */
Graph buildHRot(const FheParams &p, u32 level, const std::string &evk_key,
                KsDataflow df = KsDataflow::Fused);

/**
 * BSGS PtMatVecMult (Algorithm 1) with n1 baby and n2 giant steps at
 * @p level, baby-step rotations per @p mode / @p r_hyb, full key switches
 * per @p df. TripleHoisted emits hoisted baby steps plus per-giant-step
 * ModUp + KSKInP whose pair outputs accumulate in the extended basis and
 * share a single trailing ModDown.
 */
Graph buildPtMatVecMult(const FheParams &p, u32 level, u32 n1, u32 n2,
                        RotMode mode, u32 r_hyb,
                        const std::string &tag = "mv",
                        KsDataflow df = KsDataflow::Fused);

// --- Benchmark workloads -------------------------------------------------

/** Sparse-packed CKKS bootstrapping: CoeffToSlot + EvalMod + SlotToCoeff. */
Workload buildBootstrapping(const FheParams &p, const WorkloadOptions &opt);

/** HELR: one logistic-regression training iteration on 1024 MNIST images. */
Workload buildHelr(const FheParams &p, const WorkloadOptions &opt);

/** ResNet-20 CIFAR-10 inference (CKKS implementation of [38]). */
Workload buildResNet20(const FheParams &p, const WorkloadOptions &opt);

/** ResNet-110 (the large-scale scalability workload). */
Workload buildResNet110(const FheParams &p, const WorkloadOptions &opt);

/** Lookup by name: bootstrap/helr/resnet20/resnet110. */
Workload buildWorkload(const std::string &name, const FheParams &p,
                       const WorkloadOptions &opt);

}  // namespace crophe::graph

#endif  // CROPHE_GRAPH_WORKLOADS_H_
