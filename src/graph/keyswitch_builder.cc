#include "graph/keyswitch_builder.h"

#include <algorithm>

#include "common/logging.h"

namespace crophe::graph {

namespace {

/** Limbs of digit @p j at level ℓ (the last digit may be partial). */
u32
digitLimbCount(const FheParams &p, u32 j, u32 level)
{
    u32 lo = j * p.alpha;
    u32 hi = std::min((j + 1) * p.alpha, level + 1);
    CROPHE_ASSERT(hi > lo, "empty digit");
    return hi - lo;
}

/**
 * ModDown of one output half: iNTT(α) → BConv(α→ℓ+1) → NTT(ℓ+1) →
 * EwAdd(ℓ+1) with the top part → EwMulConst(ℓ+1) for the 1/P scaling.
 * Returns the final node.
 */
OpId
buildModDown(Graph &g, const FheParams &p, u32 level, OpId source)
{
    const u64 n = p.n();
    const u32 lq = p.limbsAt(level);

    OpId intt = g.add(makeNtt(OpKind::INtt, n, p.alpha));
    g.connect(source, intt);
    OpId bconv = g.add(makeBConv(n, p.alpha, lq));
    g.connect(intt, bconv);
    OpId ntt = g.add(makeNtt(OpKind::Ntt, n, lq));
    g.connect(bconv, ntt);
    OpId sub = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
    g.connect(source, sub);  // the q-limb top part
    g.connect(ntt, sub);
    OpId scale = g.add(makeEwMulConst(n, lq));
    g.connect(sub, scale);
    return scale;
}

}  // namespace

KeySwitchNodes
buildKeySwitch(Graph &g, const FheParams &params, u32 level, OpId producer,
               const std::string &evk_key)
{
    const u64 n = params.n();
    const u32 beta = params.betaAt(level);
    const u32 ext = params.extLimbsAt(level);

    KeySwitchNodes nodes;
    if (producer == kNoOp) {
        nodes.inputPoly =
            g.add(makeInput(n, params.limbsAt(level), "ks-input"));
    } else {
        nodes.inputPoly = producer;
    }

    // ModUp per digit: iNTT → BConv → NTT on the digit's limbs
    // (Decomp itself is zero-cost bookkeeping).
    OpId inner = g.add(makeKskInnerProd(n, ext, beta, evk_key));
    for (u32 j = 0; j < beta; ++j) {
        u32 dl = digitLimbCount(params, j, level);
        OpId intt = g.add(makeNtt(OpKind::INtt, n, dl));
        g.connect(nodes.inputPoly, intt);
        OpId bconv = g.add(makeBConv(n, dl, ext - dl));
        g.connect(intt, bconv);
        OpId ntt = g.add(makeNtt(OpKind::Ntt, n, ext - dl));
        g.connect(bconv, ntt);
        g.connect(ntt, inner);
    }

    // ModDown for the two output halves.
    nodes.outB = buildModDown(g, params, level, inner);
    nodes.outA = buildModDown(g, params, level, inner);
    return nodes;
}

u32
keySwitchOpCount(const FheParams &params, u32 level)
{
    return 3 * params.betaAt(level) + 1 + 2 * 5;
}

}  // namespace crophe::graph
