#include "graph/keyswitch_builder.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace crophe::graph {

const char *
ksDataflowName(KsDataflow df)
{
    switch (df) {
      case KsDataflow::Fused: return "fused";
      case KsDataflow::OutputStationary: return "ostat";
      case KsDataflow::ReorderedModUp: return "reordup";
    }
    return "?";
}

namespace {

/** Limbs of digit @p j at level ℓ (the last digit may be partial). */
u32
digitLimbCount(const FheParams &p, u32 j, u32 level)
{
    u32 lo = j * p.alpha;
    u32 hi = std::min((j + 1) * p.alpha, level + 1);
    CROPHE_ASSERT(hi > lo, "empty digit");
    return hi - lo;
}

/**
 * ModDown of one output half: iNTT(α) → BConv(α→ℓ+1) → NTT(ℓ+1) →
 * EwAdd(ℓ+1) with the top part → EwMulConst(ℓ+1) for the 1/P scaling.
 * Returns the final node.
 */
OpId
buildModDown(Graph &g, const FheParams &p, u32 level, OpId source)
{
    const u64 n = p.n();
    const u32 lq = p.limbsAt(level);

    OpId intt = g.add(makeNtt(OpKind::INtt, n, p.alpha));
    g.connect(source, intt);
    OpId bconv = g.add(makeBConv(n, p.alpha, lq));
    g.connect(intt, bconv);
    OpId ntt = g.add(makeNtt(OpKind::Ntt, n, lq));
    g.connect(bconv, ntt);
    OpId sub = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
    g.connect(source, sub);  // the q-limb top part
    g.connect(ntt, sub);
    OpId scale = g.add(makeEwMulConst(n, lq));
    g.connect(sub, scale);
    return scale;
}

/**
 * Output-stationary pair ModDown: the (b, a) accumulator halves leave the
 * KSKInP together, so the p-limb iNTT and the q-limb NTT each run once as
 * a 2×-batched walk (one twiddle stream for the resident pair) instead of
 * once per half. The BConv matrix is per-polynomial and stays two nodes.
 */
OpId
buildModDownPair(Graph &g, const FheParams &p, u32 level, OpId source)
{
    const u64 n = p.n();
    const u32 lq = p.limbsAt(level);

    OpId intt = g.add(makeNtt(OpKind::INtt, n, 2 * p.alpha));
    g.connect(source, intt);
    OpId bconv_b = g.add(makeBConv(n, p.alpha, lq));
    g.connect(intt, bconv_b);
    OpId bconv_a = g.add(makeBConv(n, p.alpha, lq));
    g.connect(intt, bconv_a);
    OpId ntt = g.add(makeNtt(OpKind::Ntt, n, 2 * lq));
    g.connect(bconv_b, ntt);
    g.connect(bconv_a, ntt);
    OpId sub = g.add(makeEwBinary(OpKind::EwAdd, n, 2 * lq));
    g.connect(source, sub);  // the q-limb top parts of both halves
    g.connect(ntt, sub);
    OpId scale = g.add(makeEwMulConst(n, 2 * lq));
    g.connect(sub, scale);
    return scale;
}

}  // namespace

KeySwitchNodes
buildKeySwitch(Graph &g, const FheParams &params, u32 level, OpId producer,
               const std::string &evk_key, KsDataflow df)
{
    const u64 n = params.n();
    const u32 beta = params.betaAt(level);
    const u32 ext = params.extLimbsAt(level);

    KeySwitchNodes nodes;
    if (producer == kNoOp) {
        nodes.inputPoly =
            g.add(makeInput(n, params.limbsAt(level), "ks-input"));
    } else {
        nodes.inputPoly = producer;
    }

    // ModUp (Decomp itself is zero-cost bookkeeping).
    OpId inner = g.add(makeKskInnerProd(n, ext, beta, evk_key));
    if (df == KsDataflow::ReorderedModUp) {
        // Per digit: iNTT → BConv only; the converted rows of ALL digits
        // then share one batched forward NTT (one twiddle walk per target
        // modulus instead of β) feeding the inner product.
        u32 total = 0;
        std::vector<OpId> bconvs;
        bconvs.reserve(beta);
        for (u32 j = 0; j < beta; ++j) {
            u32 dl = digitLimbCount(params, j, level);
            OpId intt = g.add(makeNtt(OpKind::INtt, n, dl));
            g.connect(nodes.inputPoly, intt);
            OpId bconv = g.add(makeBConv(n, dl, ext - dl));
            g.connect(intt, bconv);
            bconvs.push_back(bconv);
            total += ext - dl;
        }
        OpId ntt = g.add(makeNtt(OpKind::Ntt, n, total));
        for (OpId b : bconvs)
            g.connect(b, ntt);
        g.connect(ntt, inner);
    } else {
        // Fused / OutputStationary: per-digit iNTT → BConv → NTT pipeline.
        for (u32 j = 0; j < beta; ++j) {
            u32 dl = digitLimbCount(params, j, level);
            OpId intt = g.add(makeNtt(OpKind::INtt, n, dl));
            g.connect(nodes.inputPoly, intt);
            OpId bconv = g.add(makeBConv(n, dl, ext - dl));
            g.connect(intt, bconv);
            OpId ntt = g.add(makeNtt(OpKind::Ntt, n, ext - dl));
            g.connect(bconv, ntt);
            g.connect(ntt, inner);
        }
    }

    // ModDown: separate per-half chains, or the output-stationary shared
    // pair walk (outB == outA — the pair leaves as one tensor).
    if (df == KsDataflow::OutputStationary) {
        nodes.outB = buildModDownPair(g, params, level, inner);
        nodes.outA = nodes.outB;
    } else {
        nodes.outB = buildModDown(g, params, level, inner);
        nodes.outA = buildModDown(g, params, level, inner);
    }
    return nodes;
}

u32
keySwitchOpCount(const FheParams &params, u32 level)
{
    return keySwitchOpCount(params, level, KsDataflow::Fused);
}

u32
keySwitchOpCount(const FheParams &params, u32 level, KsDataflow df)
{
    const u32 beta = params.betaAt(level);
    switch (df) {
      case KsDataflow::Fused:
        return 3 * beta + 1 + 2 * 5;
      case KsDataflow::OutputStationary:
        // Same ModUp + inner product, one 6-op pair ModDown.
        return 3 * beta + 1 + 6;
      case KsDataflow::ReorderedModUp:
        // 2 ops per digit + the batched NTT, plus the fused ModDowns.
        return 2 * beta + 1 + 1 + 2 * 5;
    }
    return 0;
}

}  // namespace crophe::graph
