#include "graph/params.h"

#include "common/error.h"
#include "common/logging.h"

namespace crophe::graph {

FheParams
paramsBts()
{
    return {"BTS(INS-2)", 17, 39, 19, 2, 20};
}

FheParams
paramsArk()
{
    return {"ARK", 16, 23, 15, 4, 6};
}

FheParams
paramsSharp()
{
    return {"SHARP", 16, 35, 27, 3, 12};
}

FheParams
paramsCraterLake()
{
    return {"CraterLake", 16, 59, 51, 1, 60};
}

FheParams
paramsByName(const std::string &name)
{
    if (name == "bts")
        return paramsBts();
    if (name == "ark")
        return paramsArk();
    if (name == "sharp")
        return paramsSharp();
    if (name == "craterlake")
        return paramsCraterLake();
    // User input (CLI/config lookup), not an invariant: recoverable.
    throw RecoverableError("unknown parameter set: " + name);
}

}  // namespace crophe::graph
