#include "graph/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "graph/keyswitch_builder.h"

namespace crophe::graph {

const char *
rotModeName(RotMode mode)
{
    switch (mode) {
      case RotMode::MinKs: return "MinKS";
      case RotMode::Hoisting: return "Hoisting";
      case RotMode::Hybrid: return "Hybrid";
      case RotMode::TripleHoisted: return "TripleHoisted";
    }
    return "?";
}

u64
Workload::totalOps() const
{
    u64 total = 0;
    for (const auto &seg : segments)
        total += static_cast<u64>(seg.graph.size()) * seg.repetitions;
    return total;
}

u64
Workload::totalFlops() const
{
    u64 total = 0;
    for (const auto &seg : segments)
        total += seg.graph.totalFlops() * seg.repetitions;
    return total;
}

namespace {

/**
 * Append a full HRot to @p g: automorphism of both halves, key switch of
 * the rotated a-half, and the b-half combine. Returns the output node.
 */
OpId
appendHRot(Graph &g, const FheParams &p, u32 level, OpId source,
           const std::string &evk_key, KsDataflow df)
{
    const u64 n = p.n();
    const u32 lq = p.limbsAt(level);
    // Automorphism permutes both ciphertext halves.
    OpId aut = g.add(makeAutomorphism(n, 2 * lq));
    g.connect(source, aut);
    auto ks = buildKeySwitch(g, p, level, aut, evk_key, df);
    OpId combine = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
    g.connect(aut, combine);
    g.connect(ks.outB, combine);
    // outA becomes the new a-half directly; combine is the result handle.
    (void)ks;
    return combine;
}

/**
 * Append the shared ModUp of a hoisting group (per-digit iNTT→BConv→NTT
 * from @p source) and return the per-group handle feeding the hoisted
 * rotations.
 */
OpId
appendHoistModUp(Graph &g, const FheParams &p, u32 level, OpId source)
{
    const u64 n = p.n();
    const u32 beta = p.betaAt(level);
    const u32 ext = p.extLimbsAt(level);

    // Join node representing the ModUp-ed digit tensor.
    OpId join = g.add(makeEwBinary(OpKind::EwAdd, n, ext));
    g.op(join).label = "modup-join";
    for (u32 j = 0; j < beta; ++j) {
        u32 lo = j * p.alpha;
        u32 hi = std::min((j + 1) * p.alpha, level + 1);
        u32 dl = hi - lo;
        OpId intt = g.add(makeNtt(OpKind::INtt, n, dl));
        g.connect(source, intt);
        OpId bconv = g.add(makeBConv(n, dl, ext - dl));
        g.connect(intt, bconv);
        OpId ntt = g.add(makeNtt(OpKind::Ntt, n, ext - dl));
        g.connect(bconv, ntt);
        g.connect(ntt, join);
    }
    return join;
}

/**
 * One hoisted rotation from a shared ModUp handle: automorphism in the
 * extended basis + KSKInP with the per-distance evk. ModDown is deferred
 * to the caller (shared across the group, as in MAD).
 */
OpId
appendHoistedRot(Graph &g, const FheParams &p, u32 level, OpId modup,
                 const std::string &evk_key)
{
    const u64 n = p.n();
    const u32 beta = p.betaAt(level);
    const u32 ext = p.extLimbsAt(level);
    OpId aut = g.add(makeAutomorphism(n, ext));
    g.connect(modup, aut);
    OpId inner = g.add(makeKskInnerProd(n, ext, beta, evk_key));
    g.connect(aut, inner);
    return inner;
}

/** Shared ModDown closing a hoisting group (both halves + combine). */
OpId
appendModDown(Graph &g, const FheParams &p, u32 level, OpId source)
{
    const u64 n = p.n();
    const u32 lq = p.limbsAt(level);
    OpId intt = g.add(makeNtt(OpKind::INtt, n, p.alpha));
    g.connect(source, intt);
    OpId bconv = g.add(makeBConv(n, p.alpha, lq));
    g.connect(intt, bconv);
    OpId ntt = g.add(makeNtt(OpKind::Ntt, n, lq));
    g.connect(bconv, ntt);
    OpId sub = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
    g.connect(source, sub);
    g.connect(ntt, sub);
    OpId scale = g.add(makeEwMulConst(n, lq));
    g.connect(sub, scale);
    return scale;
}

/**
 * Produce the n1 baby-step handles per the rotation strategy. The entry
 * for i = 0 is the (unrotated) source.
 */
std::vector<OpId>
appendBabySteps(Graph &g, const FheParams &p, u32 level, OpId source,
                u32 n1, RotMode mode, u32 r_hyb, const std::string &tag,
                KsDataflow df)
{
    std::vector<OpId> handles(n1, kNoOp);
    handles[0] = source;
    switch (mode) {
      case RotMode::MinKs: {
        // Sequential unit rotations; one shared evk.
        for (u32 i = 1; i < n1; ++i)
            handles[i] = appendHRot(g, p, level, handles[i - 1],
                                    "evk:rot:" + tag + ":unit", df);
        break;
      }
      // TripleHoisted baby steps share the Hoisting shape: one ModUp for
      // the whole set, per-step KSKInP + ModDown (each baby ciphertext is
      // consumed immediately, so its ModDown cannot defer). The triple
      // hoisting's deferred ModDown lives in the giant steps
      // (buildPtMatVecMult).
      case RotMode::TripleHoisted:
      case RotMode::Hoisting: {
        OpId modup = appendHoistModUp(g, p, level, source);
        for (u32 i = 1; i < n1; ++i) {
            OpId inner = appendHoistedRot(g, p, level, modup,
                                          "evk:rot:hoist:" +
                                              std::to_string(i));
            handles[i] = appendModDown(g, p, level, inner);
        }
        break;
      }
      case RotMode::Hybrid: {
        CROPHE_ASSERT(r_hyb >= 1, "bad r_hyb ", r_hyb);
        r_hyb = std::min(r_hyb, n1);  // r_hyb == n1 degenerates to Hoisting
        // Coarse Min-KS chain of stride r_hyb.
        for (u32 c = r_hyb; c < n1; c += r_hyb)
            handles[c] = appendHRot(g, p, level, handles[c - r_hyb],
                                    "evk:rot:" + tag + ":coarse", df);
        if (r_hyb == 1)
            break;
        // One hoisting ModUp per coarse group...
        std::vector<std::pair<u32, OpId>> modups;  // (coarse base, handle)
        for (u32 c = 0; c < n1; c += r_hyb) {
            if (c + 1 < n1)
                modups.emplace_back(
                    c, appendHoistModUp(g, p, level, handles[c]));
        }
        // ...then the fine steps, emitted distance-major: the fine evks
        // are keyed only by the distance f, and emitting all coarse
        // groups' same-distance rotations adjacently lets the scheduler
        // co-run them and stream their shared key once (the new
        // cross-operator sharing opportunity of Section V-C).
        for (u32 f = 1; f < r_hyb; ++f) {
            std::vector<std::pair<u32, OpId>> inners;
            for (auto [c, modup] : modups) {
                if (c + f >= n1)
                    continue;
                inners.emplace_back(
                    c, appendHoistedRot(g, p, level, modup,
                                        "evk:rot:fine:" +
                                            std::to_string(f)));
            }
            for (auto [c, inner] : inners)
                handles[c + f] = appendModDown(g, p, level, inner);
        }
        break;
      }
    }
    return handles;
}

}  // namespace

Graph
buildHMult(const FheParams &p, u32 level, KsDataflow df)
{
    CROPHE_ASSERT(level >= 1, "HMult needs a level to rescale into");
    Graph g;
    const u64 n = p.n();
    const u32 lq = p.limbsAt(level);

    OpId in0 = g.add(makeInput(n, 2 * lq, "ct0"));
    OpId in1 = g.add(makeInput(n, 2 * lq, "ct1"));

    // Tensor product d0, d1, d2 (three element-wise passes).
    OpId d0 = g.add(makeEwBinary(OpKind::EwMul, n, lq));
    g.connect(in0, d0);
    g.connect(in1, d0);
    OpId d1 = g.add(makeEwBinary(OpKind::EwMul, n, lq));
    g.connect(in0, d1);
    g.connect(in1, d1);
    OpId d1b = g.add(makeEwBinary(OpKind::EwMul, n, lq));
    g.connect(in0, d1b);
    g.connect(in1, d1b);
    OpId d1sum = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
    g.connect(d1, d1sum);
    g.connect(d1b, d1sum);
    OpId d2 = g.add(makeEwBinary(OpKind::EwMul, n, lq));
    g.connect(in0, d2);
    g.connect(in1, d2);

    auto ks = buildKeySwitch(g, p, level, d2, "evk:mult", df);

    OpId add_b = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
    g.connect(d0, add_b);
    g.connect(ks.outB, add_b);
    OpId add_a = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
    g.connect(d1sum, add_a);
    g.connect(ks.outA, add_a);

    OpId res_b = g.add(makeRescale(n, lq));
    g.connect(add_b, res_b);
    OpId res_a = g.add(makeRescale(n, lq));
    g.connect(add_a, res_a);

    OpId out = g.add(makeOutput(n, 2 * (lq - 1)));
    g.connect(res_b, out);
    g.connect(res_a, out);
    return g;
}

Graph
buildHRot(const FheParams &p, u32 level, const std::string &evk_key,
          KsDataflow df)
{
    Graph g;
    OpId in = g.add(makeInput(p.n(), 2 * p.limbsAt(level), "ct"));
    OpId rot = appendHRot(g, p, level, in, evk_key, df);
    OpId out = g.add(makeOutput(p.n(), 2 * p.limbsAt(level)));
    g.connect(rot, out);
    return g;
}

Graph
buildPtMatVecMult(const FheParams &p, u32 level, u32 n1, u32 n2,
                  RotMode mode, u32 r_hyb, const std::string &tag,
                  KsDataflow df)
{
    CROPHE_ASSERT(level >= 1, "PtMatVecMult rescales at the end");
    Graph g;
    const u64 n = p.n();
    const u32 lq = p.limbsAt(level);

    OpId in = g.add(makeInput(n, 2 * lq, "ct"));
    auto baby = appendBabySteps(g, p, level, in, n1, mode, r_hyb, tag, df);

    // Baby-step-major accumulation: each rotated ciphertext feeds all n2
    // partial sums as soon as it is produced, so its lifetime is one
    // pipeline stage rather than the whole giant-step phase — the loop
    // order a cross-operator scheduler would choose (only n2 psums stay
    // live instead of n1 baby ciphertexts).
    std::vector<OpId> psum(n2, kNoOp);
    for (u32 i = 0; i < n1; ++i) {
        for (u32 j = 0; j < n2; ++j) {
            OpId pm = g.add(makeEwMulPlain(
                n, lq,
                "ptx:" + tag + ":" + std::to_string(j * n1 + i)));
            g.connect(baby[i], pm);
            if (psum[j] == kNoOp) {
                psum[j] = pm;
            } else {
                OpId add = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
                g.connect(psum[j], add);
                g.connect(pm, add);
                psum[j] = add;
            }
        }
    }
    // TripleHoisted giant steps: every j > 0 gets its own ModUp + hoisted
    // KSKInP, but the (b, a) inner-product pairs accumulate in the
    // extended basis (ext_acc) and share ONE trailing ModDown — the n2-1
    // per-giant-step ModDowns of the eager path collapse to one
    // (DESIGN.md §15). Only the permuted b-half joins the q-basis running
    // sum immediately.
    const bool deferred = mode == RotMode::TripleHoisted;
    const u32 ext = p.extLimbsAt(level);
    OpId ext_acc = kNoOp;
    OpId acc_out = kNoOp;
    for (u32 j = 0; j < n2; ++j) {
        OpId acc = psum[j];
        if (j > 0) {
            if (deferred) {
                OpId modup = appendHoistModUp(g, p, level, acc);
                OpId inner = appendHoistedRot(g, p, level, modup,
                                              "evk:rot:" + tag + ":giant:" +
                                                  std::to_string(j));
                if (ext_acc == kNoOp) {
                    ext_acc = inner;
                } else {
                    OpId add = g.add(makeEwBinary(OpKind::EwAdd, n, ext));
                    g.connect(ext_acc, add);
                    g.connect(inner, add);
                    ext_acc = add;
                }
                // ψ(b): the b-half permutation stays in the q basis.
                OpId autb = g.add(makeAutomorphism(n, lq));
                g.connect(acc, autb);
                acc = autb;
            } else {
                acc = appendHRot(g, p, level, acc,
                                 "evk:rot:" + tag + ":giant:" +
                                     std::to_string(j),
                                 df);
            }
        }
        if (acc_out == kNoOp) {
            acc_out = acc;
        } else {
            OpId add = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
            g.connect(acc_out, add);
            g.connect(acc, add);
            acc_out = add;
        }
    }
    if (ext_acc != kNoOp) {
        OpId md = appendModDown(g, p, level, ext_acc);
        OpId add = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
        g.connect(acc_out, add);
        g.connect(md, add);
        acc_out = add;
    }
    OpId res = g.add(makeRescale(n, lq));
    g.connect(acc_out, res);
    OpId out = g.add(makeOutput(n, 2 * (lq - 1)));
    g.connect(res, out);
    return g;
}

namespace {

/** One EvalMod Horner step: HMult + CAdd + rescale, as a unique segment. */
Graph
buildEvalModStep(const FheParams &p, u32 level, KsDataflow df)
{
    Graph g = buildHMult(p, level, df);
    // Horner adds a constant after each multiply; negligible but present.
    // (The CAdd rides on the rescaled output; modelled inside buildHMult's
    // output level via an extra element-wise op.)
    OpId cadd = g.add(makeEwMulConst(p.n(), p.limbsAt(level - 1)));
    // Attach after the first rescale node: find it.
    for (OpId v = 0; v < g.size(); ++v) {
        if (g.op(v).kind == OpKind::Rescale) {
            g.connect(v, cadd);
            break;
        }
    }
    return g;
}

u32
bsgsSplit(u64 dim, u32 &n1, u32 &n2)
{
    // n1, n2 ~ sqrt(dim), both powers of two, n1*n2 == dim.
    u32 log_dim = log2Exact(dim);
    u32 l1 = (log_dim + 1) / 2;
    n1 = 1u << l1;
    n2 = static_cast<u32>(dim >> l1);
    return l1;
}

}  // namespace

Workload
buildBootstrapping(const FheParams &p, const WorkloadOptions &opt)
{
    Workload w;
    w.name = "bootstrap";
    w.params = p;

    // Sparse-packed bootstrapping [14], [25]: CoeffToSlot as 3 BSGS
    // matmuls, EvalMod as a degree-31 polynomial (Horner: ~15 effective
    // multiply levels with odd-only terms), SlotToCoeff as 3 matmuls.
    const u32 cts_matmuls = 3;
    const u32 stc_matmuls = 3;
    const u32 evalmod_steps = 15;

    // The matmul dimension per factor: the sparse factorization splits a
    // dense slots×slots transform into radix-2^5 stages; each stage is a
    // BSGS matmul over a small dimension (sparse packing keeps the
    // per-stage rotation count low).
    const u64 stage_dim = 1ull << 5;
    u32 n1, n2;
    bsgsSplit(stage_dim, n1, n2);

    // Levels: bootstrapping starts near the top.
    const u32 lv_cts = p.L >= 1 ? p.L - 1 : p.L;
    const u32 lv_mod = p.L > cts_matmuls ? p.L - cts_matmuls : 1;
    const u32 lv_stc =
        lv_mod > evalmod_steps ? lv_mod - evalmod_steps : 1;

    WorkloadSegment cts;
    cts.name = "CoeffToSlot";
    cts.graph = buildPtMatVecMult(p, lv_cts, n1, n2, opt.rotMode, opt.rHyb,
                                  "cts", opt.ksDataflow);
    cts.repetitions = cts_matmuls;
    w.segments.push_back(std::move(cts));

    WorkloadSegment mod;
    mod.name = "EvalMod";
    mod.graph = buildEvalModStep(p, std::max(1u, lv_mod), opt.ksDataflow);
    mod.repetitions = evalmod_steps;
    w.segments.push_back(std::move(mod));

    WorkloadSegment stc;
    stc.name = "SlotToCoeff";
    stc.graph = buildPtMatVecMult(p, std::max(1u, lv_stc), n1, n2,
                                  opt.rotMode, opt.rHyb, "stc",
                                  opt.ksDataflow);
    stc.repetitions = stc_matmuls;
    w.segments.push_back(std::move(stc));
    return w;
}

Workload
buildHelr(const FheParams &p, const WorkloadOptions &opt)
{
    Workload w;
    w.name = "helr";
    w.params = p;

    // One training iteration on a 1024-image minibatch of 14×14 images:
    // per iteration a 196-dim matvec (gradient), a degree-7 sigmoid
    // approximation, and the weight update — then one bootstrap to
    // replenish levels (HELR is bootstrapping-dominated [33]).
    const u32 lv = std::min(p.L, 8u);
    u32 n1, n2;
    bsgsSplit(256, n1, n2);  // 196 padded to 256

    WorkloadSegment grad;
    grad.name = "gradient-matvec";
    grad.graph = buildPtMatVecMult(p, lv, n1, n2, opt.rotMode, opt.rHyb,
                                   "helr", opt.ksDataflow);
    grad.repetitions = 4;  // batch folding of 1024 images into 4 ciphertexts
    w.segments.push_back(std::move(grad));

    WorkloadSegment sig;
    sig.name = "sigmoid";
    sig.graph = buildHMult(p, std::max(1u, lv - 1), opt.ksDataflow);
    sig.repetitions = 3;  // degree-7 via 3 multiplicative levels
    w.segments.push_back(std::move(sig));

    WorkloadSegment upd;
    upd.name = "weight-update";
    {
        Graph g;
        const u64 n = p.n();
        const u32 lq = p.limbsAt(std::max(1u, lv - 4));
        OpId in0 = g.add(makeInput(n, 2 * lq, "w"));
        OpId in1 = g.add(makeInput(n, 2 * lq, "g"));
        OpId scale = g.add(makeEwMulConst(n, lq));
        g.connect(in1, scale);
        OpId add = g.add(makeEwBinary(OpKind::EwAdd, n, lq));
        g.connect(in0, add);
        g.connect(scale, add);
        OpId out = g.add(makeOutput(n, 2 * lq));
        g.connect(add, out);
        upd.graph = std::move(g);
    }
    upd.repetitions = 1;
    w.segments.push_back(std::move(upd));

    auto boot = buildBootstrapping(p, opt);
    for (auto &seg : boot.segments) {
        seg.name = "boot-" + seg.name;
        w.segments.push_back(std::move(seg));
    }
    return w;
}

namespace {

Workload
buildResNet(const FheParams &p, const WorkloadOptions &opt, u32 layers,
            const char *name)
{
    Workload w;
    w.name = name;
    w.params = p;

    // Multiplexed-convolution ResNet [38]: each conv layer lowers to a
    // BSGS matmul over the packed feature map, followed by a polynomial
    // ReLU approximation (a few HMult levels); a bootstrap replenishes
    // levels every other layer.
    const u32 lv = std::min(p.L, 10u);
    u32 n1, n2;
    bsgsSplit(1ull << 8, n1, n2);

    WorkloadSegment conv;
    conv.name = "conv-matmul";
    conv.graph = buildPtMatVecMult(p, lv, n1, n2, opt.rotMode, opt.rHyb,
                                   "conv", opt.ksDataflow);
    conv.repetitions = layers;
    w.segments.push_back(std::move(conv));

    WorkloadSegment relu;
    relu.name = "relu-poly";
    relu.graph = buildHMult(p, std::max(1u, lv - 1), opt.ksDataflow);
    relu.repetitions = static_cast<u64>(layers) * 4;  // deg-15 approx
    w.segments.push_back(std::move(relu));

    auto boot = buildBootstrapping(p, opt);
    const u64 boots = ceilDiv(layers, 2);
    for (auto &seg : boot.segments) {
        seg.name = "boot-" + seg.name;
        seg.repetitions *= boots;
        w.segments.push_back(std::move(seg));
    }
    return w;
}

}  // namespace

Workload
buildResNet20(const FheParams &p, const WorkloadOptions &opt)
{
    return buildResNet(p, opt, 20, "resnet20");
}

Workload
buildResNet110(const FheParams &p, const WorkloadOptions &opt)
{
    return buildResNet(p, opt, 110, "resnet110");
}

Workload
buildWorkload(const std::string &name, const FheParams &p,
              const WorkloadOptions &opt)
{
    if (name == "bootstrap")
        return buildBootstrapping(p, opt);
    if (name == "helr")
        return buildHelr(p, opt);
    if (name == "resnet20")
        return buildResNet20(p, opt);
    if (name == "resnet110")
        return buildResNet110(p, opt);
    // User input (CLI/config lookup), not an invariant: recoverable.
    throw RecoverableError("unknown workload: " + name);
}

}  // namespace crophe::graph
