#include "graph/op.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace crophe::graph {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Input: return "Input";
      case OpKind::Output: return "Output";
      case OpKind::EwAdd: return "EwAdd";
      case OpKind::EwMul: return "EwMul";
      case OpKind::EwMulPlain: return "EwMulPlain";
      case OpKind::EwMulConst: return "EwMulConst";
      case OpKind::Twiddle: return "Twiddle";
      case OpKind::Ntt: return "NTT";
      case OpKind::INtt: return "iNTT";
      case OpKind::NttCol: return "col-NTT";
      case OpKind::NttRow: return "row-NTT";
      case OpKind::INttCol: return "col-iNTT";
      case OpKind::INttRow: return "row-iNTT";
      case OpKind::Transpose: return "Transpose";
      case OpKind::Automorphism: return "Auto";
      case OpKind::BConv: return "BConv";
      case OpKind::KskInnerProd: return "KSKInP";
      case OpKind::Rescale: return "Rescale";
    }
    return "?";
}

bool
Op::isTransform() const
{
    switch (kind) {
      case OpKind::Ntt:
      case OpKind::INtt:
      case OpKind::NttCol:
      case OpKind::NttRow:
      case OpKind::INttCol:
      case OpKind::INttRow:
        return true;
      default:
        return false;
    }
}

bool
Op::isElementwise() const
{
    switch (kind) {
      case OpKind::EwAdd:
      case OpKind::EwMul:
      case OpKind::EwMulPlain:
      case OpKind::EwMulConst:
      case OpKind::Twiddle:
      case OpKind::Rescale:
        return true;
      default:
        return false;
    }
}

bool
Op::canStream(StreamAxis axis) const
{
    return std::find(streamAxes.begin(), streamAxes.end(), axis) !=
           streamAxes.end();
}

namespace {

Op
base(OpKind kind, u64 n, u32 limbs_in, u32 limbs_out)
{
    Op op;
    op.kind = kind;
    op.label = opKindName(kind);
    op.n = n;
    op.limbsIn = limbs_in;
    op.limbsOut = limbs_out;
    op.inputWords = static_cast<u64>(limbs_in) * n;
    op.outputWords = static_cast<u64>(limbs_out) * n;
    return op;
}

}  // namespace

Op
makeInput(u64 n, u32 limbs, const std::string &label)
{
    Op op = base(OpKind::Input, n, 0, limbs);
    op.label = label;
    op.inputWords = 0;
    op.streamAxes = {StreamAxis::SlotN, StreamAxis::Limb};
    return op;
}

Op
makeOutput(u64 n, u32 limbs)
{
    Op op = base(OpKind::Output, n, limbs, 0);
    op.outputWords = 0;
    op.streamAxes = {StreamAxis::SlotN, StreamAxis::Limb};
    return op;
}

Op
makeEwBinary(OpKind kind, u64 n, u32 limbs)
{
    CROPHE_ASSERT(kind == OpKind::EwAdd || kind == OpKind::EwMul,
                  "not a binary element-wise kind");
    Op op = base(kind, n, limbs, limbs);
    op.inputWords *= 2;  // two ciphertext operands
    op.flops = static_cast<u64>(limbs) * n;
    op.streamAxes = {StreamAxis::SlotN, StreamAxis::Limb};
    return op;
}

Op
makeEwMulPlain(u64 n, u32 limbs, const std::string &aux_key)
{
    Op op = base(OpKind::EwMulPlain, n, limbs, limbs);
    // On-the-fly limb extension (OF-Limb [34], applied to all designs):
    // only one plaintext limb is fetched; the rest are generated on-chip,
    // trading one extra multiply per generated element.
    op.auxWords = n;
    op.auxKey = aux_key;
    op.flops = 2ull * limbs * n;
    op.streamAxes = {StreamAxis::SlotN, StreamAxis::Limb};
    return op;
}

Op
makeEwMulConst(u64 n, u32 limbs)
{
    Op op = base(OpKind::EwMulConst, n, limbs, limbs);
    op.flops = static_cast<u64>(limbs) * n;
    op.streamAxes = {StreamAxis::SlotN, StreamAxis::Limb};
    return op;
}

Op
makeTwiddle(u64 n, u32 limbs)
{
    Op op = base(OpKind::Twiddle, n, limbs, limbs);
    op.flops = static_cast<u64>(limbs) * n;
    // Twiddle factors are generated on the fly from per-limb seeds (PRNG
    // optimization applied to all designs), so no aux traffic is charged.
    op.streamAxes = {StreamAxis::SlotN, StreamAxis::Limb};
    return op;
}

Op
makeNtt(OpKind kind, u64 n, u32 limbs)
{
    CROPHE_ASSERT(kind == OpKind::Ntt || kind == OpKind::INtt,
                  "not a monolithic NTT kind");
    Op op = base(kind, n, limbs, limbs);
    op.flops = static_cast<u64>(limbs) * (n / 2) * log2Exact(n);
    op.orientationSwitch = true;
    op.streamAxes = {StreamAxis::Limb};  // cannot stream on N
    return op;
}

Op
makeNttStep(OpKind kind, u64 n1, u64 n2, u32 limbs)
{
    const u64 n = n1 * n2;
    Op op = base(kind, n, limbs, limbs);
    op.n1 = n1;
    op.n2 = n2;
    switch (kind) {
      case OpKind::NttCol:
      case OpKind::INttCol:
        // N1 independent instances of length-N2 transforms.
        op.flops = static_cast<u64>(limbs) * n1 * (n2 / 2) * log2Exact(n2);
        op.streamAxes = {StreamAxis::SlotN1, StreamAxis::Limb};
        break;
      case OpKind::NttRow:
      case OpKind::INttRow:
        // N2 independent instances of length-N1 transforms.
        op.flops = static_cast<u64>(limbs) * n2 * (n1 / 2) * log2Exact(n1);
        op.streamAxes = {StreamAxis::SlotN2, StreamAxis::Limb};
        break;
      default:
        CROPHE_PANIC("not a decomposed NTT kind");
    }
    return op;
}

Op
makeTranspose(u64 n, u32 limbs)
{
    Op op = base(OpKind::Transpose, n, limbs, limbs);
    op.orientationSwitch = true;
    op.streamAxes = {StreamAxis::Limb};
    return op;
}

Op
makeAutomorphism(u64 n, u32 limbs)
{
    Op op = base(OpKind::Automorphism, n, limbs, limbs);
    // Realized by the inter-lane shift networks; negligible multiplies.
    op.orientationSwitch = true;
    op.streamAxes = {StreamAxis::Limb};
    return op;
}

Op
makeBConv(u64 n, u32 limbs_in, u32 limbs_out)
{
    Op op = base(OpKind::BConv, n, limbs_in, limbs_out);
    // x̂ scaling (one mul per input element) plus the matrix product.
    op.flops = static_cast<u64>(limbs_in) * n +
               static_cast<u64>(limbs_in) * limbs_out * n;
    // The constant matrix is tiny ((α+ℓ+1)×α); count it but it is < 1k.
    op.auxWords = static_cast<u64>(limbs_in) * limbs_out;
    op.auxKey = "";  // too small to matter for sharing
    // Reduces over limbs per coefficient: streams on N, not on limbs.
    op.streamAxes = {StreamAxis::SlotN};
    return op;
}

Op
makeKskInnerProd(u64 n, u32 limbs, u32 beta, const std::string &evk_key)
{
    Op op = base(OpKind::KskInnerProd, n, limbs, limbs);
    op.beta = beta;
    op.inputWords = static_cast<u64>(limbs) * n * beta;
    op.outputWords = static_cast<u64>(limbs) * n * 2;  // (b, a) halves
    // evk digit: 2 polynomials of limbs × N per digit; the a-halves are
    // regenerated on-chip from PRNG seeds ([2], [51], applied to all
    // designs), halving the fetched volume.
    op.auxWords = static_cast<u64>(limbs) * n * beta;
    op.auxKey = evk_key;
    op.flops = 2ull * limbs * n * beta;
    op.streamAxes = {StreamAxis::SlotN, StreamAxis::Limb};
    return op;
}

Op
makeRescale(u64 n, u32 limbs_in)
{
    CROPHE_ASSERT(limbs_in >= 2, "rescale needs at least two limbs");
    Op op = base(OpKind::Rescale, n, limbs_in, limbs_in - 1);
    op.flops = static_cast<u64>(limbs_in - 1) * n * 2;
    op.streamAxes = {StreamAxis::SlotN, StreamAxis::Limb};
    return op;
}

}  // namespace crophe::graph
