#include "graph/graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace crophe::graph {

OpId
Graph::add(Op op)
{
    OpId id = static_cast<OpId>(ops_.size());
    op.id = id;
    ops_.push_back(std::move(op));
    succ_.emplace_back();
    pred_.emplace_back();
    return id;
}

void
Graph::connect(OpId from, OpId to)
{
    CROPHE_ASSERT(from < size() && to < size(), "edge endpoint out of range");
    CROPHE_ASSERT(from != to, "self edge");
    succ_[from].push_back(to);
    pred_[to].push_back(from);
}

void
Graph::restoreEdges(std::vector<std::vector<OpId>> succ,
                    std::vector<std::vector<OpId>> pred)
{
    CROPHE_ASSERT(succ.size() == ops_.size() && pred.size() == ops_.size(),
                  "adjacency lists must cover every node");
    std::map<std::pair<OpId, OpId>, i64> edges;
    for (OpId v = 0; v < succ.size(); ++v) {
        for (OpId w : succ[v]) {
            CROPHE_ASSERT(w < ops_.size() && w != v, "bad successor edge");
            ++edges[{v, w}];
        }
    }
    for (OpId w = 0; w < pred.size(); ++w) {
        for (OpId v : pred[w]) {
            CROPHE_ASSERT(v < ops_.size() && v != w, "bad predecessor edge");
            --edges[{v, w}];
        }
    }
    for (const auto &[edge, count] : edges)
        CROPHE_ASSERT(count == 0, "succ/pred lists disagree on edge ",
                      edge.first, "->", edge.second);
    succ_ = std::move(succ);
    pred_ = std::move(pred);
}

std::vector<OpId>
Graph::topoOrder() const
{
    std::vector<u32> indeg(size(), 0);
    for (OpId v = 0; v < size(); ++v)
        indeg[v] = static_cast<u32>(pred_[v].size());

    std::vector<OpId> queue;
    for (OpId v = 0; v < size(); ++v)
        if (indeg[v] == 0)
            queue.push_back(v);

    std::vector<OpId> order;
    order.reserve(size());
    for (std::size_t head = 0; head < queue.size(); ++head) {
        OpId v = queue[head];
        order.push_back(v);
        for (OpId w : succ_[v]) {
            if (--indeg[w] == 0)
                queue.push_back(w);
        }
    }
    CROPHE_ASSERT(order.size() == size(), "graph has a cycle");
    return order;
}

std::vector<OpId>
Graph::topoOrderAuxAffinity() const
{
    std::vector<u32> indeg(size(), 0);
    for (OpId v = 0; v < size(); ++v)
        indeg[v] = static_cast<u32>(pred_[v].size());

    // Ready set keyed for affinity selection.
    std::set<OpId> ready;
    for (OpId v = 0; v < size(); ++v)
        if (indeg[v] == 0)
            ready.insert(v);

    std::vector<OpId> order;
    order.reserve(size());
    std::string last_aux;
    while (!ready.empty()) {
        // Prefer a ready op with the same aux key as the last emitted op
        // (clustering same-evk work); otherwise the smallest id.
        OpId pick = *ready.begin();
        if (!last_aux.empty()) {
            for (OpId v : ready) {
                if (ops_[v].auxKey == last_aux) {
                    pick = v;
                    break;
                }
            }
        }
        ready.erase(pick);
        order.push_back(pick);
        if (!ops_[pick].auxKey.empty())
            last_aux = ops_[pick].auxKey;
        for (OpId w : succ_[pick])
            if (--indeg[w] == 0)
                ready.insert(w);
    }
    CROPHE_ASSERT(order.size() == size(), "graph has a cycle");
    return order;
}

u64
Graph::totalFlops() const
{
    u64 total = 0;
    for (const auto &op : ops_)
        total += op.flops;
    return total;
}

u64
Graph::totalAuxWords() const
{
    u64 total = 0;
    std::set<std::string> seen;
    for (const auto &op : ops_) {
        if (op.auxWords == 0)
            continue;
        if (op.auxKey.empty()) {
            total += op.auxWords;
        } else if (seen.insert(op.auxKey).second) {
            total += op.auxWords;
        }
    }
    return total;
}

std::vector<std::vector<OpId>>
Graph::partition(u32 max_size) const
{
    CROPHE_ASSERT(max_size >= 1, "partition size must be positive");
    auto order = topoOrder();
    std::vector<std::vector<OpId>> parts;
    for (std::size_t i = 0; i < order.size(); i += max_size) {
        std::vector<OpId> part(
            order.begin() + i,
            order.begin() + std::min(order.size(),
                                     i + static_cast<std::size_t>(max_size)));
        parts.push_back(std::move(part));
    }
    return parts;
}

u64
Graph::structuralHash(const std::vector<OpId> &nodes) const
{
    // Order-sensitive FNV-style hash over op shapes and the edge structure
    // relabelled to positions within @p nodes.
    std::map<OpId, u32> index;
    for (u32 i = 0; i < nodes.size(); ++i)
        index[nodes[i]] = i;

    u64 h = 1469598103934665603ull;
    auto mix = [&h](u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 1099511628211ull;
    };

    for (OpId id : nodes) {
        const Op &op = ops_[id];
        mix(static_cast<u64>(op.kind));
        mix(op.n);
        mix(op.n1);
        mix(op.limbsIn);
        mix(op.limbsOut);
        mix(op.beta);
        mix(op.auxWords);
        // Aux identity matters: subgraphs touching different evks are not
        // interchangeable for sharing/caching decisions.
        mix(std::hash<std::string>{}(op.auxKey));
        for (OpId c : succ_[id]) {
            auto it = index.find(c);
            mix(it == index.end() ? ~0ull : it->second);
        }
    }
    return h;
}

Graph
Graph::inducedSubgraph(const std::vector<OpId> &nodes) const
{
    std::map<OpId, OpId> local;
    Graph sub;
    for (OpId id : nodes) {
        CROPHE_ASSERT(id < size(), "subgraph node out of range");
        CROPHE_ASSERT(local.find(id) == local.end(),
                      "duplicate subgraph node ", id);
        local[id] = sub.add(ops_[id]);
    }
    for (OpId id : nodes) {
        const OpId to = local[id];
        for (OpId p : pred_[id]) {
            auto it = local.find(p);
            if (it != local.end()) {
                // Internal edges are connected from the consumer side (in
                // producer-list order) so both adjacency lists preserve
                // the original insertion order exactly.
                continue;
            }
            // The external producer becomes a boundary Input carrying the
            // crossing ciphertext's volume.
            const Op &ext = ops_[p];
            OpId in = sub.add(makeInput(ext.n, ext.limbsOut,
                                        "xchip:" + ext.label));
            sub.connect(in, to);
        }
        for (OpId p : pred_[id]) {
            auto it = local.find(p);
            if (it != local.end())
                sub.connect(it->second, to);
        }
        for (OpId c : succ_[id]) {
            if (local.find(c) != local.end())
                continue;
            OpId out = sub.add(makeOutput(ops_[id].n, ops_[id].limbsOut));
            sub.connect(to, out);
        }
    }
    return sub;
}

std::string
Graph::toString() const
{
    std::ostringstream os;
    for (OpId v : topoOrder()) {
        const Op &op = ops_[v];
        os << v << ": " << op.label << " [" << opKindName(op.kind) << " l="
           << op.limbsIn << "->" << op.limbsOut << " flops=" << op.flops
           << "]";
        if (!succ_[v].empty()) {
            os << " ->";
            for (OpId w : succ_[v])
                os << " " << w;
        }
        os << "\n";
    }
    return os.str();
}

}  // namespace crophe::graph
