#ifndef CROPHE_GRAPH_PARAMS_H_
#define CROPHE_GRAPH_PARAMS_H_

/**
 * @file
 * CKKS parameter sets used by the evaluation (Table III). Each baseline
 * accelerator is compared using the parameters of its original paper; all
 * sets reach 128-bit security.
 */

#include <string>

#include "common/types.h"

namespace crophe::graph {

/** A CKKS parameter set at the accelerator level of abstraction. */
struct FheParams
{
    std::string name;
    u32 logN = 16;   ///< polynomial degree exponent
    u32 L = 23;      ///< maximum multiplicative level
    u32 Lboot = 15;  ///< levels consumed by bootstrapping
    u32 dnum = 4;    ///< key-switching digits
    u32 alpha = 6;   ///< limbs per digit

    u64 n() const { return 1ull << logN; }
    u64 slots() const { return n() / 2; }
    /** Limb count at level ℓ. */
    u32 limbsAt(u32 level) const { return level + 1; }
    /** Digits β touched at level ℓ. */
    u32 betaAt(u32 level) const { return (level + 1 + alpha - 1) / alpha; }
    /** Extended limb count α + ℓ + 1 after ModUp. */
    u32 extLimbsAt(u32 level) const { return alpha + level + 1; }
};

/** Table III parameter sets. @{ */
FheParams paramsBts();         ///< BTS (INS-2): logN=17, L=39, dnum=2
FheParams paramsArk();         ///< ARK: logN=16, L=23, dnum=4
FheParams paramsSharp();       ///< SHARP: logN=16, L=35, dnum=3
FheParams paramsCraterLake();  ///< CraterLake: logN=16, L=59, dnum=1
/** @} */

/** Look up a Table III set by name (bts/ark/sharp/craterlake). */
FheParams paramsByName(const std::string &name);

}  // namespace crophe::graph

#endif  // CROPHE_GRAPH_PARAMS_H_
