#include "fhe/bsgs.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "fhe/automorphism.h"
#include "fhe/bconv.h"

namespace crophe::fhe {

std::vector<i64>
requiredRotations(u32 n1, u32 n2, RotStrategy strategy, u32 r_hyb)
{
    std::vector<i64> rots;
    switch (strategy) {
      case RotStrategy::MinKs:
        rots.push_back(1);
        break;
      case RotStrategy::Hoisting:
      case RotStrategy::TripleHoisted:
        // TripleHoisted reuses Hoisting's key set: one evk per baby-step
        // distance (the extra hoisting lives in the dataflow, not the keys).
        for (u32 i = 1; i < n1; ++i)
            rots.push_back(i);
        break;
      case RotStrategy::Hybrid: {
        CROPHE_ASSERT(r_hyb >= 1 && r_hyb <= n1, "bad r_hyb ", r_hyb);
        u32 coarse = ceilDiv(n1, r_hyb) - 1;
        if (coarse > 0)
            rots.push_back(r_hyb);
        for (u32 f = 1; f < r_hyb; ++f)
            rots.push_back(f);
        break;
      }
    }
    // Giant steps always need strides n1·j, j = 1…n2-1.
    for (u32 j = 1; j < n2; ++j)
        rots.push_back(static_cast<i64>(n1) * j);
    std::sort(rots.begin(), rots.end());
    rots.erase(std::unique(rots.begin(), rots.end()), rots.end());
    return rots;
}

std::vector<Ciphertext>
babySteps(const Evaluator &eval, const Ciphertext &ct, u32 n1,
          RotStrategy strategy, u32 r_hyb, const BsgsKeys &keys)
{
    std::vector<Ciphertext> out(n1);
    out[0] = ct;
    switch (strategy) {
      case RotStrategy::MinKs: {
        const KswKey &k1 = keys.rot.at(1);
        for (u32 i = 1; i < n1; ++i)
            out[i] = eval.rotate(out[i - 1], 1, k1);
        break;
      }
      case RotStrategy::Hoisting: {
        // Functionally, hoisting produces each rotation from the original
        // ciphertext; the shared Decomp/ModUp is a cost-level property that
        // the scheduler models (babyStepCost).
        for (u32 i = 1; i < n1; ++i)
            out[i] = eval.rotate(ct, i, keys.rot.at(i));
        break;
      }
      case RotStrategy::TripleHoisted: {
        // Genuinely shared Decomp/ModUp: ct.a is decomposed and raised to
        // the extended basis once, then every baby-step rotation permutes
        // the precomputed digits (decrypt-equivalent to eval.rotate; the
        // permuted-lift difference is absorbed by key-switch noise).
        auto digits = eval.hoistedDecompModUp(ct.a, ct.level);
        for (u32 i = 1; i < n1; ++i)
            out[i] = eval.hoistedRotate(ct, digits, i, keys.rot.at(i));
        break;
      }
      case RotStrategy::Hybrid: {
        CROPHE_ASSERT(r_hyb >= 1 && r_hyb <= n1, "bad r_hyb ", r_hyb);
        // Coarse Min-KS chain at stride r_hyb...
        for (u32 c = r_hyb; c < n1; c += r_hyb)
            out[c] = eval.rotate(out[c - r_hyb], r_hyb, keys.rot.at(r_hyb));
        // ...then Hoisting fine steps within each coarse group.
        for (u32 c = 0; c < n1; c += r_hyb) {
            for (u32 f = 1; f < r_hyb && c + f < n1; ++f)
                out[c + f] = eval.rotate(out[c], f, keys.rot.at(f));
        }
        break;
      }
    }
    return out;
}

std::vector<std::vector<double>>
matrixDiagonals(const std::vector<std::vector<double>> &m, u64 slots)
{
    const u64 s = m.size();
    CROPHE_ASSERT(slots % s == 0, "matrix size must divide slot count");
    std::vector<std::vector<double>> diags(s, std::vector<double>(slots));
    for (u64 d = 0; d < s; ++d) {
        for (u64 i = 0; i < slots; ++i)
            diags[d][i] = m[i % s][(i + d) % s];
    }
    return diags;
}

std::vector<double>
matVecRef(const std::vector<std::vector<double>> &m,
          const std::vector<double> &x)
{
    const u64 s = m.size();
    std::vector<double> y(s, 0.0);
    for (u64 i = 0; i < s; ++i)
        for (u64 j = 0; j < s; ++j)
            y[i] += m[i][j] * x[j];
    return y;
}

namespace {

/** Cyclic right-shift of a slot vector by @p amount (i.e., Rot_{-amount}). */
std::vector<double>
rotateRight(const std::vector<double> &v, u64 amount)
{
    const u64 n = v.size();
    amount %= n;
    std::vector<double> out(n);
    for (u64 i = 0; i < n; ++i)
        out[(i + amount) % n] = v[i];
    return out;
}

}  // namespace

Ciphertext
ptMatVecMult(const Evaluator &eval, const Ciphertext &ct,
             const std::vector<std::vector<double>> &diagonals, u32 n1,
             u32 n2, RotStrategy strategy, u32 r_hyb, const BsgsKeys &keys)
{
    const u64 s = static_cast<u64>(n1) * n2;
    CROPHE_ASSERT(diagonals.size() == s, "need one diagonal per offset");
    const Encoder &enc = eval.encoder();

    auto cts = babySteps(eval, ct, n1, strategy, r_hyb, keys);

    const bool deferred = strategy == RotStrategy::TripleHoisted;
    const FheContext &ctx = eval.context();

    // TripleHoisted: the giant-step key-switch inner products accumulate
    // here, in the extended qp basis, so that ModDown runs once at the
    // end instead of once per giant step (n2-1 ModDowns → 1).
    bool have_acc = false;
    RnsPoly acc_b, acc_a;

    bool have_out = false;
    Ciphertext out;
    for (u32 j = 0; j < n2; ++j) {
        bool have_r = false;
        Ciphertext r;
        for (u32 i = 0; i < n1; ++i) {
            u64 d = static_cast<u64>(n1) * j + i;
            auto diag = rotateRight(diagonals[d], static_cast<u64>(n1) * j);
            Plaintext pt = enc.encodeReal(diag, cts[i].level);
            Ciphertext term = eval.mulPlain(cts[i], pt);
            if (!have_r) {
                r = std::move(term);
                have_r = true;
            } else {
                r = eval.add(r, term);
            }
        }
        if (j > 0) {
            const i64 stride = static_cast<i64>(n1) * j;
            const KswKey &gk = keys.rot.at(stride);
            if (deferred) {
                const u64 g = galoisElementForRotation(stride, ctx.n());
                auto digits = eval.hoistedDecompModUp(r.a, r.level);
                std::vector<RnsPoly> rotated(digits.size());
                parallelFor(0, digits.size(), [&](u64 k) {
                    rotated[k] = applyAutomorphism(digits[k], g);
                });
                auto [ip_b, ip_a] = eval.hoistedInnerProd(rotated, gk);
                if (!have_acc) {
                    acc_b = std::move(ip_b);
                    acc_a = std::move(ip_a);
                    have_acc = true;
                } else {
                    acc_b.addInplace(ip_b);
                    acc_a.addInplace(ip_a);
                }
                // Only ψ(r.b) enters the running sum now; the key-switch
                // (b, a) contribution arrives after the hoisted ModDown.
                r.b = applyAutomorphism(r.b, g);
                r.a = RnsPoly(ctx, ctx.qBasis(r.level), Rep::Eval);
            } else {
                r = eval.rotate(r, stride, gk);
            }
        }
        if (!have_out) {
            out = std::move(r);
            have_out = true;
        } else {
            out = eval.add(out, r);
        }
    }
    if (have_acc) {
        auto [md_b, md_a] = modDownEvalPair(ctx, acc_b, acc_a, out.level);
        out.b.addInplace(md_b);
        out.a.addInplace(md_a);
    }
    return eval.rescale(out);
}

RotCost
babyStepCost(u32 n1, RotStrategy strategy, u32 r_hyb)
{
    switch (strategy) {
      case RotStrategy::MinKs:
        return {n1 - 1, 1};
      case RotStrategy::Hoisting:
      case RotStrategy::TripleHoisted:
        return {1, n1 - 1};
      case RotStrategy::Hybrid: {
        CROPHE_ASSERT(r_hyb >= 1 && r_hyb <= n1, "bad r_hyb ", r_hyb);
        u32 coarse = ceilDiv(n1, r_hyb) - 1;
        u32 pairs = coarse + (r_hyb > 1 ? 1 : 0);
        u32 evk = (r_hyb - 1) + (coarse > 0 ? 1 : 0);
        return {pairs, evk};
      }
    }
    CROPHE_PANIC("unreachable");
}

}  // namespace crophe::fhe
