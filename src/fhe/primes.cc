#include "fhe/primes.h"

#include <algorithm>

#include "common/logging.h"
#include "fhe/modarith.h"

namespace crophe::fhe {

namespace {

u64
mulMod(u64 a, u64 b, u64 m)
{
    return static_cast<u64>(static_cast<u128>(a) * b % m);
}

u64
powMod(u64 a, u64 e, u64 m)
{
    u64 r = 1;
    a %= m;
    while (e != 0) {
        if (e & 1)
            r = mulMod(r, a, m);
        a = mulMod(a, a, m);
        e >>= 1;
    }
    return r;
}

}  // namespace

bool
isPrime(u64 n)
{
    if (n < 2)
        return false;
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0)
            return n == p;
    }
    u64 d = n - 1;
    int s = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++s;
    }
    // This witness set is deterministic for all n < 2^64.
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        u64 x = powMod(a, d, n);
        if (x == 1 || x == n - 1)
            continue;
        bool composite = true;
        for (int i = 1; i < s; ++i) {
            x = mulMod(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

std::vector<u64>
generateNttPrimes(u32 bits, u64 n, u32 count, const std::vector<u64> &skip)
{
    CROPHE_ASSERT(bits >= 20 && bits < 60, "prime size out of range: ", bits);
    std::vector<u64> primes;
    u64 step = 2 * n;
    // Largest candidate of the form k*2N + 1 below 2^bits.
    u64 candidate = ((((1ULL << bits) - 1) - 1) / step) * step + 1;
    while (primes.size() < count && candidate > (1ULL << (bits - 1))) {
        if (isPrime(candidate) &&
            std::find(skip.begin(), skip.end(), candidate) == skip.end() &&
            std::find(primes.begin(), primes.end(), candidate) ==
                primes.end()) {
            primes.push_back(candidate);
        }
        candidate -= step;
    }
    CROPHE_ASSERT(primes.size() == count,
                  "could not find ", count, " NTT primes of ", bits,
                  " bits for N=", n);
    return primes;
}

u64
findGenerator(u64 q)
{
    // Factor q-1 (small trial division is fine for our structured primes).
    u64 phi = q - 1;
    std::vector<u64> factors;
    u64 m = phi;
    for (u64 p = 2; p * p <= m; ++p) {
        if (m % p == 0) {
            factors.push_back(p);
            while (m % p == 0)
                m /= p;
        }
    }
    if (m > 1)
        factors.push_back(m);

    for (u64 g = 2; g < q; ++g) {
        bool ok = true;
        for (u64 f : factors) {
            if (powMod(g, phi / f, q) == 1) {
                ok = false;
                break;
            }
        }
        if (ok)
            return g;
    }
    CROPHE_PANIC("no generator found for ", q);
}

u64
findPrimitiveRoot(u64 q, u64 order)
{
    CROPHE_ASSERT((q - 1) % order == 0, "order ", order,
                  " does not divide q-1 for q=", q);
    u64 g = findGenerator(q);
    u64 root = powMod(g, (q - 1) / order, q);
    CROPHE_ASSERT(powMod(root, order / 2, q) != 1,
                  "root is not primitive for order ", order);
    return root;
}

}  // namespace crophe::fhe
