#ifndef CROPHE_FHE_CFFT_H_
#define CROPHE_FHE_CFFT_H_

/**
 * @file
 * Complex "special" FFT over the CKKS rotation group.
 *
 * CKKS canonical embedding evaluates a real polynomial at the primitive
 * 2N-th roots ζ^{5^j} (j = 0…N/2-1); this module provides the fast
 * transform between slot values and the half-size complex coefficient
 * vector, in the rotation-group ordering that makes HRot a cyclic shift.
 */

#include <complex>
#include <vector>

#include "common/types.h"

namespace crophe::fhe {

using Cplx = std::complex<double>;

/**
 * Special FFT support tables for a ring of degree @p n (so M = 2n roots,
 * and n/2 slots).
 */
class SpecialFft
{
  public:
    explicit SpecialFft(u64 n);

    u64 n() const { return n_; }
    u64 slots() const { return n_ / 2; }

    /**
     * Slots -> coefficient-pair vector (inverse embedding), in place;
     * vals.size() == slots(). After this, the real parts are coefficients
     * 0…n/2-1 and the imaginary parts are coefficients n/2…n-1.
     */
    void embedInverse(std::vector<Cplx> &vals) const;

    /** Coefficient-pair vector -> slots (forward embedding), in place. */
    void embed(std::vector<Cplx> &vals) const;

  private:
    u64 n_;       ///< ring degree N
    u64 m_;       ///< 2N
    std::vector<Cplx> ksi_;   ///< ksi_[j] = exp(2πi j / M), j = 0…M
    std::vector<u64> rotGroup_;  ///< 5^j mod M, j = 0…N/2-1
};

/**
 * Reference O(n²) embedding used by tests: slot_j = m(ζ^{5^j}) evaluated
 * directly from coefficients.
 */
std::vector<Cplx> embedDirect(const std::vector<double> &coeffs);

/** Reference inverse: coefficients from slots via the conjugate formula. */
std::vector<double> embedInverseDirect(const std::vector<Cplx> &slots, u64 n);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_CFFT_H_
