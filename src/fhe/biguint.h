#ifndef CROPHE_FHE_BIGUINT_H_
#define CROPHE_FHE_BIGUINT_H_

/**
 * @file
 * Minimal arbitrary-precision unsigned integer.
 *
 * Used for CRT reconstruction (composing RNS limbs back to Z_Q), for
 * validating base conversion in tests, and for decoding wide coefficients.
 * Only the handful of operations CROPHE needs are implemented.
 */

#include <string>
#include <vector>

#include "common/types.h"

namespace crophe::fhe {

/** Little-endian base-2^64 unsigned integer. */
class BigUInt
{
  public:
    BigUInt() = default;
    explicit BigUInt(u64 v);

    static BigUInt fromWords(std::vector<u64> words);

    bool isZero() const;
    std::size_t wordCount() const { return words_.size(); }

    /** -1 / 0 / +1 for this <,==,> other. */
    int compare(const BigUInt &other) const;

    BigUInt &addInplace(const BigUInt &other);
    /** Requires *this >= other. */
    BigUInt &subInplace(const BigUInt &other);
    BigUInt &mulSmallInplace(u64 m);
    BigUInt &addSmallInplace(u64 v);

    /** this += a * b. */
    BigUInt &addMulSmall(const BigUInt &a, u64 b);

    /** this mod m, m != 0. */
    u64 modSmall(u64 m) const;

    /** floor(this / 2). */
    BigUInt half() const;

    /** Approximate conversion to double (for decode sanity checks). */
    double toDouble() const;

    /** Hex string, most significant first (no leading zeros). */
    std::string toHex() const;

    bool operator==(const BigUInt &o) const { return compare(o) == 0; }
    bool operator<(const BigUInt &o) const { return compare(o) < 0; }
    bool operator<=(const BigUInt &o) const { return compare(o) <= 0; }

  private:
    void trim();

    std::vector<u64> words_;  ///< little-endian; normalized (no top zeros)
};

/** Product of a list of word-sized moduli. */
BigUInt productOf(const std::vector<u64> &factors);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_BIGUINT_H_
