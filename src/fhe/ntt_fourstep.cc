#include "fhe/ntt_fourstep.h"

#include "common/logging.h"
#include "common/math_util.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"

namespace crophe::fhe {

FourStepNtt::FourStepNtt(u64 n1, u64 n2, const Modulus &mod)
    : n1_(n1), n2_(n2), mod_(mod)
{
    CROPHE_ASSERT(isPow2(n1) && isPow2(n2), "factors must be powers of two");
    u64 n = n1 * n2;
    CROPHE_ASSERT((mod.value() - 1) % (2 * n) == 0,
                  "modulus not NTT-friendly for N=", n);
    psi_ = findPrimitiveRoot(mod.value(), 2 * n);
    omega_ = mod_.mul(psi_, psi_);

    twist_.resize(n);
    twistInv_.resize(n);
    u64 psi_inv = mod_.inv(psi_);
    u64 p = 1, pi = 1;
    for (u64 i = 0; i < n; ++i) {
        twist_[i] = p;
        twistInv_[i] = pi;
        p = mod_.mul(p, psi_);
        pi = mod_.mul(pi, psi_inv);
    }
}

void
FourStepNtt::cyclicFourStep(std::vector<u64> &a, bool inverse) const
{
    // Index split: i = i1 + N1*i2, output k = k2 + N2*k1.
    // Step 1: N1 column transforms of length N2 (stride N1, root ω^N1).
    // Step 2: twiddle multiply by ω^{i1·k2}.
    // Step 3: N2 row transforms of length N1 (root ω^N2).
    // Step 4: transpose into natural output order.
    const u64 n = n1_ * n2_;
    u64 omega = inverse ? mod_.inv(omega_) : omega_;
    u64 omega_col = mod_.pow(omega, n1_);
    u64 omega_row = mod_.pow(omega, n2_);

    std::vector<u64> col(n2_);
    std::vector<u64> work(n);
    for (u64 i1 = 0; i1 < n1_; ++i1) {
        for (u64 i2 = 0; i2 < n2_; ++i2)
            col[i2] = a[i1 + n1_ * i2];
        cyclicNtt(col.data(), n2_, mod_, omega_col);
        for (u64 k2 = 0; k2 < n2_; ++k2) {
            u64 tw = mod_.pow(omega, (i1 * k2) % n);
            work[i1 + n1_ * k2] = mod_.mul(col[k2], tw);
        }
    }

    std::vector<u64> row(n1_);
    for (u64 k2 = 0; k2 < n2_; ++k2) {
        for (u64 i1 = 0; i1 < n1_; ++i1)
            row[i1] = work[i1 + n1_ * k2];
        cyclicNtt(row.data(), n1_, mod_, omega_row);
        for (u64 k1 = 0; k1 < n1_; ++k1)
            a[k2 + n2_ * k1] = row[k1];
    }

    if (inverse) {
        u64 n_inv = mod_.inv(mod_.reduce64(n));
        for (auto &x : a)
            x = mod_.mul(x, n_inv);
    }
}

std::vector<u64>
FourStepNtt::forward(const std::vector<u64> &a) const
{
    const u64 n = n1_ * n2_;
    CROPHE_ASSERT(a.size() == n, "input size mismatch");
    std::vector<u64> out(n);
    for (u64 i = 0; i < n; ++i)
        out[i] = mod_.mul(a[i], twist_[i]);
    cyclicFourStep(out, false);
    return out;
}

std::vector<u64>
FourStepNtt::inverse(const std::vector<u64> &a) const
{
    const u64 n = n1_ * n2_;
    CROPHE_ASSERT(a.size() == n, "input size mismatch");
    std::vector<u64> out = a;
    cyclicFourStep(out, true);
    for (u64 i = 0; i < n; ++i)
        out[i] = mod_.mul(out[i], twistInv_[i]);
    return out;
}

}  // namespace crophe::fhe
