#include "fhe/ntt_fourstep.h"

#include "common/logging.h"
#include "common/math_util.h"
#include "fhe/primes.h"

namespace crophe::fhe {

namespace {

inline u64
shoupMulCanonical(u64 a, u64 w, u64 ws, u64 q)
{
    u64 hi = static_cast<u64>((static_cast<u128>(a) * ws) >> 64);
    u64 r = a * w - hi * q;
    return r >= q ? r - q : r;
}

u64
rootFor(u64 n1, u64 n2, const Modulus &mod)
{
    CROPHE_ASSERT(isPow2(n1) && isPow2(n2), "factors must be powers of two");
    u64 n = n1 * n2;
    CROPHE_ASSERT((mod.value() - 1) % (2 * n) == 0,
                  "modulus not NTT-friendly for N=", n);
    return findPrimitiveRoot(mod.value(), 2 * n);
}

}  // namespace

FourStepNtt::FourStepNtt(u64 n1, u64 n2, const Modulus &mod)
    : n1_(n1),
      n2_(n2),
      mod_(mod),
      psi_(rootFor(n1, n2, mod)),
      omega_(mod.mul(psi_, psi_)),
      colFwd_(n2, mod, mod.pow(omega_, n1)),
      rowFwd_(n1, mod, mod.pow(omega_, n2)),
      colInv_(n2, mod, mod.pow(mod.inv(omega_), n1)),
      rowInv_(n1, mod, mod.pow(mod.inv(omega_), n2)),
      twFwd_(buildTwiddleMatrix(omega_)),
      twInv_(buildTwiddleMatrix(mod.inv(omega_)))
{
    const u64 n = n1_ * n2_;
    const u64 q = mod_.value();
    twist_.w.assign(n);
    twist_.wShoup.assign(n);
    twistInv_.w.assign(n);
    twistInv_.wShoup.assign(n);
    u64 psi_inv = mod_.inv(psi_);
    u64 p = 1, pi = 1;
    for (u64 i = 0; i < n; ++i) {
        twist_.w[i] = p;
        twist_.wShoup[i] = shoupQuotient(p, q);
        twistInv_.w[i] = pi;
        twistInv_.wShoup[i] = shoupQuotient(pi, q);
        p = mod_.mul(p, psi_);
        pi = mod_.mul(pi, psi_inv);
    }
    nInv_ = mod_.inv(mod_.reduce64(n));
    nInvShoup_ = shoupQuotient(nInv_, q);
}

FourStepNtt::ShoupTable
FourStepNtt::buildTwiddleMatrix(u64 omega) const
{
    // Row i1 holds ω^{i1·k2} for k2 in [0, N2): a geometric progression
    // with ratio ω^{i1}, itself advanced by one ω multiply per row.
    const u64 n = n1_ * n2_;
    const u64 q = mod_.value();
    ShoupTable t;
    t.w.assign(n);
    t.wShoup.assign(n);
    u64 base = 1;  // ω^{i1}
    for (u64 i1 = 0; i1 < n1_; ++i1) {
        u64 w = 1;
        for (u64 k2 = 0; k2 < n2_; ++k2) {
            t.w[i1 * n2_ + k2] = w;
            t.wShoup[i1 * n2_ + k2] = shoupQuotient(w, q);
            w = mod_.mul(w, base);
        }
        base = mod_.mul(base, omega);
    }
    return t;
}

void
FourStepNtt::cyclicFourStep(std::vector<u64> &a, bool inverse) const
{
    // Index split: i = i1 + N1*i2, output k = k2 + N2*k1.
    // Step 1: N1 column transforms of length N2 (stride N1, root ω^N1).
    // Step 2: twiddle multiply by ω^{i1·k2}.
    // Step 3: N2 row transforms of length N1 (root ω^N2).
    // Step 4: transpose into natural output order.
    const u64 n = n1_ * n2_;
    const u64 q = mod_.value();
    const CyclicNtt &col = inverse ? colInv_ : colFwd_;
    const CyclicNtt &row = inverse ? rowInv_ : rowFwd_;
    const ShoupTable &tw = inverse ? twInv_ : twFwd_;

    std::vector<u64> colBuf(n2_);
    std::vector<u64> work(n);
    for (u64 i1 = 0; i1 < n1_; ++i1) {
        for (u64 i2 = 0; i2 < n2_; ++i2)
            colBuf[i2] = a[i1 + n1_ * i2];
        col.forward(colBuf.data());
        const u64 *w = tw.w.data() + i1 * n2_;
        const u64 *ws = tw.wShoup.data() + i1 * n2_;
        for (u64 k2 = 0; k2 < n2_; ++k2)
            work[i1 + n1_ * k2] =
                shoupMulCanonical(colBuf[k2], w[k2], ws[k2], q);
    }

    std::vector<u64> rowBuf(n1_);
    for (u64 k2 = 0; k2 < n2_; ++k2) {
        for (u64 i1 = 0; i1 < n1_; ++i1)
            rowBuf[i1] = work[i1 + n1_ * k2];
        row.forward(rowBuf.data());
        for (u64 k1 = 0; k1 < n1_; ++k1)
            a[k2 + n2_ * k1] = rowBuf[k1];
    }

    if (inverse) {
        for (auto &x : a)
            x = shoupMulCanonical(x, nInv_, nInvShoup_, q);
    }
}

std::vector<u64>
FourStepNtt::forward(const std::vector<u64> &a) const
{
    const u64 n = n1_ * n2_;
    CROPHE_ASSERT(a.size() == n, "input size mismatch");
    const u64 q = mod_.value();
    std::vector<u64> out(n);
    for (u64 i = 0; i < n; ++i)
        out[i] =
            shoupMulCanonical(a[i], twist_.w[i], twist_.wShoup[i], q);
    cyclicFourStep(out, false);
    return out;
}

std::vector<u64>
FourStepNtt::inverse(const std::vector<u64> &a) const
{
    const u64 n = n1_ * n2_;
    CROPHE_ASSERT(a.size() == n, "input size mismatch");
    const u64 q = mod_.value();
    std::vector<u64> out = a;
    cyclicFourStep(out, true);
    for (u64 i = 0; i < n; ++i)
        out[i] = shoupMulCanonical(out[i], twistInv_.w[i],
                                   twistInv_.wShoup[i], q);
    return out;
}

}  // namespace crophe::fhe
