#include "fhe/biguint.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace crophe::fhe {

BigUInt::BigUInt(u64 v)
{
    if (v != 0)
        words_.push_back(v);
}

BigUInt
BigUInt::fromWords(std::vector<u64> words)
{
    BigUInt b;
    b.words_ = std::move(words);
    b.trim();
    return b;
}

void
BigUInt::trim()
{
    while (!words_.empty() && words_.back() == 0)
        words_.pop_back();
}

bool
BigUInt::isZero() const
{
    return words_.empty();
}

int
BigUInt::compare(const BigUInt &other) const
{
    if (words_.size() != other.words_.size())
        return words_.size() < other.words_.size() ? -1 : 1;
    for (std::size_t i = words_.size(); i-- > 0;) {
        if (words_[i] != other.words_[i])
            return words_[i] < other.words_[i] ? -1 : 1;
    }
    return 0;
}

BigUInt &
BigUInt::addInplace(const BigUInt &other)
{
    words_.resize(std::max(words_.size(), other.words_.size()), 0);
    u64 carry = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        u128 s = static_cast<u128>(words_[i]) + carry;
        if (i < other.words_.size())
            s += other.words_[i];
        words_[i] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
    }
    if (carry != 0)
        words_.push_back(carry);
    return *this;
}

BigUInt &
BigUInt::subInplace(const BigUInt &other)
{
    CROPHE_ASSERT(other <= *this, "BigUInt underflow");
    u64 borrow = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        u128 rhs = borrow;
        if (i < other.words_.size())
            rhs += other.words_[i];
        if (static_cast<u128>(words_[i]) >= rhs) {
            words_[i] = static_cast<u64>(words_[i] - rhs);
            borrow = 0;
        } else {
            words_[i] = static_cast<u64>((static_cast<u128>(1) << 64) +
                                         words_[i] - rhs);
            borrow = 1;
        }
    }
    CROPHE_ASSERT(borrow == 0, "BigUInt underflow");
    trim();
    return *this;
}

BigUInt &
BigUInt::mulSmallInplace(u64 m)
{
    u64 carry = 0;
    for (auto &w : words_) {
        u128 prod = static_cast<u128>(w) * m + carry;
        w = static_cast<u64>(prod);
        carry = static_cast<u64>(prod >> 64);
    }
    if (carry != 0)
        words_.push_back(carry);
    trim();
    return *this;
}

BigUInt &
BigUInt::addSmallInplace(u64 v)
{
    return addInplace(BigUInt(v));
}

BigUInt &
BigUInt::addMulSmall(const BigUInt &a, u64 b)
{
    BigUInt t = a;
    t.mulSmallInplace(b);
    return addInplace(t);
}

u64
BigUInt::modSmall(u64 m) const
{
    CROPHE_ASSERT(m != 0, "mod by zero");
    u64 r = 0;
    for (std::size_t i = words_.size(); i-- > 0;) {
        u128 cur = (static_cast<u128>(r) << 64) | words_[i];
        r = static_cast<u64>(cur % m);
    }
    return r;
}

BigUInt
BigUInt::half() const
{
    BigUInt out = *this;
    u64 carry = 0;
    for (std::size_t i = out.words_.size(); i-- > 0;) {
        u64 w = out.words_[i];
        out.words_[i] = (w >> 1) | (carry << 63);
        carry = w & 1;
    }
    out.trim();
    return out;
}

double
BigUInt::toDouble() const
{
    double acc = 0.0;
    for (std::size_t i = words_.size(); i-- > 0;)
        acc = acc * 0x1.0p64 + static_cast<double>(words_[i]);
    return acc;
}

std::string
BigUInt::toHex() const
{
    if (isZero())
        return "0";
    static const char *digits = "0123456789abcdef";
    std::string out;
    for (std::size_t i = words_.size(); i-- > 0;) {
        for (int nib = 15; nib >= 0; --nib) {
            int d = static_cast<int>((words_[i] >> (4 * nib)) & 0xf);
            if (!out.empty() || d != 0)
                out.push_back(digits[d]);
        }
    }
    return out;
}

BigUInt
productOf(const std::vector<u64> &factors)
{
    BigUInt out(1);
    for (u64 f : factors)
        out.mulSmallInplace(f);
    return out;
}

}  // namespace crophe::fhe
