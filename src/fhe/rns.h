#ifndef CROPHE_FHE_RNS_H_
#define CROPHE_FHE_RNS_H_

/**
 * @file
 * RNS (residue number system) context and limb-matrix polynomials.
 *
 * A ciphertext polynomial in Z_Q[X]/(X^N+1), Q = q_0…q_ℓ, is held as an
 * (ℓ+1) × N matrix of word-sized limbs (Section II-A). The FheContext owns
 * the RNS bases: q_0…q_L (ciphertext moduli) and p_0…p_{α-1} (the special
 * modulus P used by key-switching), together with the per-modulus NTT
 * tables and digit-decomposition parameters (α, dnum).
 *
 * RnsPoly stores its limb matrix as a single 64-byte-aligned slab with a
 * cache-line-rounded row stride (DESIGN.md §10): limb i occupies
 * [data + i·stride, data + i·stride + N). Rows are handed out as spans,
 * the element-wise operations run through the kernel dispatch layer, and
 * dropping the last limb is O(1) bookkeeping.
 */

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "common/types.h"
#include "fhe/biguint.h"
#include "fhe/modarith.h"
#include "fhe/ntt.h"

namespace crophe::fhe {

class BaseConverter;

/** Parameters used to build an FheContext. */
struct FheContextParams
{
    u64 n = 1 << 10;          ///< polynomial degree (power of two)
    u32 levels = 3;           ///< L: maximum multiplicative level
    u32 alpha = 2;            ///< limbs per key-switching digit
    u32 firstModulusBits = 50;  ///< size of q_0
    u32 scalingModulusBits = 35;  ///< size of q_1…q_L
    u32 specialModulusBits = 50;  ///< size of p_0…p_{α-1}
    double scale = 1ull << 35;    ///< default encoding scale Δ
};

/**
 * Immutable CKKS RNS context: moduli, NTT tables, digit layout.
 *
 * Modulus indexing is global: indices 0…L name q_0…q_L and indices
 * L+1…L+α name p_0…p_{α-1}.
 *
 * The context also memoizes the expensive derived objects that earlier
 * versions rebuilt on every operation: BaseConverters (O(m²) big-integer
 * work each) and NTT-domain automorphism permutation tables. Both caches
 * are value-transparent — a cached object is a pure function of the
 * context and the key — so caching cannot change any result.
 */
class FheContext
{
  public:
    explicit FheContext(const FheContextParams &params);
    ~FheContext();

    FheContext(const FheContext &) = delete;
    FheContext &operator=(const FheContext &) = delete;

    u64 n() const { return n_; }
    u32 maxLevel() const { return levels_; }
    u32 alpha() const { return alpha_; }
    u32 dnum() const { return dnum_; }
    double defaultScale() const { return scale_; }

    u32 qCount() const { return levels_ + 1; }
    u32 pCount() const { return alpha_; }
    u32 modulusCount() const { return qCount() + pCount(); }

    const Modulus &mod(u32 idx) const { return moduli_[idx]; }
    const NttTables &ntt(u32 idx) const { return *ntt_[idx]; }
    u64 modValue(u32 idx) const { return moduli_[idx].value(); }

    /** Global indices of the q basis up to @p level inclusive. */
    std::vector<u32> qBasis(u32 level) const;
    /** Global indices of the p (special) basis. */
    std::vector<u32> pBasis() const;
    /** q basis up to @p level followed by the p basis. */
    std::vector<u32> qpBasis(u32 level) const;

    /** Digit index of q-limb @p i (i / α). */
    u32 digitOf(u32 i) const { return i / alpha_; }
    /** q-limb indices of digit @p j at ciphertext level @p level. */
    std::vector<u32> digitLimbs(u32 j, u32 level) const;
    /** Number of digits spanned by limbs 0…level (β = ceil((ℓ+1)/α)). */
    u32 digitCount(u32 level) const { return (level + 1 + alpha_ - 1) / alpha_; }

    /** Product of the special moduli P (big integer). */
    const BigUInt &bigP() const { return bigP_; }
    /** Product q_0…q_level. */
    BigUInt bigQ(u32 level) const;

    /**
     * The memoized BaseConverter for @p from → @p to. Thread-safe; the
     * returned reference lives as long as the context.
     */
    const BaseConverter &converter(const std::vector<u32> &from,
                                   const std::vector<u32> &to) const;

    /**
     * The memoized NTT-domain automorphism permutation for @p galois:
     * output slot k takes input slot table[k]. Thread-safe.
     */
    const AlignedVec<u64> &autEvalTable(u64 galois) const;

  private:
    u64 n_;
    u32 levels_;
    u32 alpha_;
    u32 dnum_;
    double scale_;
    std::vector<Modulus> moduli_;
    std::vector<std::unique_ptr<NttTables>> ntt_;
    BigUInt bigP_;

    mutable std::mutex cacheMu_;
    mutable std::map<std::pair<std::vector<u32>, std::vector<u32>>,
                     std::unique_ptr<BaseConverter>>
        convCache_;
    mutable std::map<u64, std::unique_ptr<AlignedVec<u64>>> autCache_;
};

/** Domain of an RnsPoly's values. */
enum class Rep
{
    Coeff,  ///< coefficient representation
    Eval,   ///< NTT (evaluation) representation
};

/**
 * A polynomial held limb-wise over an explicit basis of context moduli,
 * in one aligned slab (rows are 64-byte aligned, stride ≥ N).
 */
class RnsPoly
{
  public:
    RnsPoly() : ctx_(nullptr), rep_(Rep::Coeff) {}

    /** Zero polynomial over @p basis. */
    RnsPoly(const FheContext &ctx, std::vector<u32> basis,
            Rep rep = Rep::Coeff);

    const FheContext &context() const { return *ctx_; }
    u64 n() const { return ctx_->n(); }
    Rep rep() const { return rep_; }
    void setRep(Rep rep) { rep_ = rep; }

    u32 limbCount() const { return static_cast<u32>(basis_.size()); }
    const std::vector<u32> &basis() const { return basis_; }
    u32 modIndex(u32 limb) const { return basis_[limb]; }
    const Modulus &mod(u32 limb) const { return ctx_->mod(basis_[limb]); }

    /** Row i of the limb matrix (N elements, 64-byte-aligned start). */
    std::span<u64>
    limb(u32 i)
    {
        return {data_.data() + i * stride_, static_cast<std::size_t>(n())};
    }
    std::span<const u64>
    limb(u32 i) const
    {
        return {data_.data() + i * stride_, static_cast<std::size_t>(n())};
    }

    /** Copy of limb @p i (tests compare limbs by value). */
    std::vector<u64>
    limbVec(u32 i) const
    {
        auto s = limb(i);
        return {s.begin(), s.end()};
    }

    /** Slab row stride in elements (≥ n, multiple of 8). */
    u64 limbStride() const { return stride_; }

    /** limb(dst_limb) = src.limb(src_limb) (sizes must match). */
    void copyLimbFrom(u32 dst_limb, const RnsPoly &src, u32 src_limb);

    /** this += other (same basis, same representation). */
    void addInplace(const RnsPoly &other);
    /** this -= other (same basis, same representation). */
    void subInplace(const RnsPoly &other);
    /** this = -this. */
    void negateInplace();
    /** this *= other element-wise; both must be in Eval representation. */
    void mulEwInplace(const RnsPoly &other);
    /**
     * Element-wise multiply by the matching limbs of @p other, whose
     * basis may be any superset of ours (each of our global moduli is
     * looked up in other's basis). Lets key-switch multiply a digit
     * product by the key's rows in place instead of materializing a
     * restrictedTo() copy of the key; row-for-row identical to
     * `mulEwInplace(other.restrictedTo(basis()))`.
     */
    void mulEwRestricted(const RnsPoly &other);
    /** Multiply limb i by scalar (already reduced mod that limb). */
    void mulScalarInplace(const std::vector<u64> &scalar_per_limb);
    /** Multiply every limb by the same small integer constant. */
    void mulConstInplace(u64 c);

    /** Convert all limbs Coeff -> Eval. */
    void toEval();
    /** Convert all limbs Eval -> Coeff. */
    void toCoeff();

    /** Drop the last limb (used by rescale/level drop bookkeeping). */
    void dropLastLimb();

    /** Keep only the limbs whose basis entry is within the q range ≤ level. */
    RnsPoly restrictedTo(const std::vector<u32> &basis) const;

    /**
     * CRT-reconstruct coefficient @p coeff_idx as an integer in [0, M)
     * where M is the product of this poly's basis. Requires Rep::Coeff.
     */
    BigUInt reconstructCoeff(u64 coeff_idx) const;

    /** Fill all limbs with uniformly random values (for tests / keygen). */
    void uniformRandom(crophe::Rng &rng);

  private:
    const FheContext *ctx_;
    Rep rep_;
    std::vector<u32> basis_;
    u64 stride_ = 0;
    AlignedVec<u64> data_;
};

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_RNS_H_
