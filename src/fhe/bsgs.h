#ifndef CROPHE_FHE_BSGS_H_
#define CROPHE_FHE_BSGS_H_

/**
 * @file
 * PtMatVecMult via baby-step giant-step (Algorithm 1), plus the three
 * baby-step rotation strategies the paper analyzes (Section V-C):
 *
 *  - MinKs (ARK): sequential unit-step rotations sharing one evk;
 *  - Hoisting (MAD): parallel rotations sharing Decomp/ModUp, one evk each;
 *  - Hybrid (CROPHE): coarse Min-KS steps of stride r_hyb, each expanded by
 *    Hoisting into fine steps — the fine-step evks are shared across all
 *    coarse steps;
 *  - TripleHoisted (Akherati & Zhang): hoisted baby steps (one shared
 *    Decomp/ModUp for the whole set), plus the giant-step inner products
 *    accumulated in the extended qp basis so the per-giant-step ModDown
 *    collapses to one hoisted ModDown at the end (DESIGN.md §15).
 *
 * MinKs/Hoisting/Hybrid compute bit-identical results; TripleHoisted
 * reuses hoisted ModUp digits across rotations (a lift ambiguity
 * absorbed by key-switch noise, as in standard hoisting) and defers
 * ModDown across the giant-step sum (rounding shift of at most n2-1
 * per coefficient) — both far below the noise floor, and validated
 * against a same-math oracle plus a decrypt-level comparison.
 * The scheduler chooses among all four by cost. This module is the
 * functional counterpart used for correctness tests and the examples.
 */

#include <map>
#include <vector>

#include "fhe/ckks.h"

namespace crophe::fhe {

/** How baby-step rotations are produced. */
enum class RotStrategy
{
    MinKs,          ///< sequential unit rotations, single evk
    Hoisting,       ///< independent rotations, evk per distance
    Hybrid,         ///< coarse Min-KS + fine Hoisting (r_hyb parameter)
    TripleHoisted,  ///< hoisted baby steps + deferred giant-step ModDown
};

/** Keys required by PtMatVecMult for a given strategy. */
struct BsgsKeys
{
    /** Rotation keys by rotation amount. */
    std::map<i64, KswKey> rot;
};

/**
 * Compute all baby-step rotations ct_i = HRot_i(ct) for i = 0…n1-1.
 *
 * @param r_hyb hybrid coarse stride (only used by RotStrategy::Hybrid;
 *        must satisfy 1 <= r_hyb <= n1).
 */
std::vector<Ciphertext> babySteps(const Evaluator &eval,
                                  const Ciphertext &ct, u32 n1,
                                  RotStrategy strategy, u32 r_hyb,
                                  const BsgsKeys &keys);

/** Rotation amounts whose keys @p strategy needs for n1 baby steps plus
 *  n2 giant steps of stride n1. */
std::vector<i64> requiredRotations(u32 n1, u32 n2, RotStrategy strategy,
                                   u32 r_hyb);

/**
 * PtMatVecMult: ct' = M × ct for an s × s diagonal-encoded plaintext
 * matrix, s = n1·n2 (Algorithm 1). Diagonal d of M is provided by
 * @p diag(d) as a length-`slots` vector already rotated per BSGS
 * (Rot_{-n1·j} applied by this routine).
 */
Ciphertext ptMatVecMult(const Evaluator &eval, const Ciphertext &ct,
                        const std::vector<std::vector<double>> &diagonals,
                        u32 n1, u32 n2, RotStrategy strategy, u32 r_hyb,
                        const BsgsKeys &keys);

/**
 * Diagonal extraction helper: diagonals[d][i] = M[i][(i + d) mod s] for a
 * dense s × s matrix, embedded into full-slot vectors by tiling.
 */
std::vector<std::vector<double>> matrixDiagonals(
    const std::vector<std::vector<double>> &m, u64 slots);

/** Plain reference: y = M x (for validation). */
std::vector<double> matVecRef(const std::vector<std::vector<double>> &m,
                              const std::vector<double> &x);

/**
 * Operation-count accounting used by the scheduler tests: the number of
 * ModUp+ModDown pairs and distinct evks each strategy needs for n1 baby
 * steps (Section V-C).
 */
struct RotCost
{
    u32 modUpDown;   ///< key-switching ModUp/ModDown pairs
    u32 distinctEvk; ///< distinct evaluation keys touched
};

RotCost babyStepCost(u32 n1, RotStrategy strategy, u32 r_hyb);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_BSGS_H_
