#include "fhe/modarith.h"

#include "common/math_util.h"

namespace crophe::fhe {

namespace {

/** Compute floor(2^128 / q) as (hi, lo) by 128-bit long division. */
void
barrettRatio(u64 q, u64 &hi, u64 &lo)
{
    // 2^128 / q = ((2^128 - 1) / q) adjusted: since q does not divide
    // 2^128 (q odd > 1), floor(2^128/q) == floor((2^128-1)/q).
    u128 all_ones = ~static_cast<u128>(0);
    u128 ratio = all_ones / q;
    hi = static_cast<u64>(ratio >> 64);
    lo = static_cast<u64>(ratio);
}

}  // namespace

Modulus::Modulus(u64 q) : q_(q)
{
    CROPHE_ASSERT(q > 2 && q < (1ULL << 60) && (q & 1) == 1,
                  "modulus out of range: ", q);
    barrettRatio(q, ratio1_, ratio0_);
}

u32
Modulus::bits() const
{
    return log2Floor(q_) + 1;
}

u64
Modulus::pow(u64 a, u64 e) const
{
    u64 base = reduce64(a);
    u64 result = 1;
    while (e != 0) {
        if (e & 1)
            result = mul(result, base);
        base = mul(base, base);
        e >>= 1;
    }
    return result;
}

u64
Modulus::inv(u64 a) const
{
    // q is prime, so a^(q-2) is the inverse by Fermat's little theorem.
    CROPHE_ASSERT(a % q_ != 0, "no inverse of 0 mod ", q_);
    return pow(a, q_ - 2);
}

}  // namespace crophe::fhe
