#include "fhe/ntt.h"

#include <atomic>

#include "common/logging.h"
#include "common/math_util.h"
#include "fhe/kernels/autotune.h"
#include "fhe/primes.h"

namespace crophe::fhe {

namespace {

std::atomic<u64> g_limb_transforms{0};

}  // namespace

u64
nttLimbTransforms()
{
    return g_limb_transforms.load(std::memory_order_relaxed);
}

void
resetNttLimbTransforms()
{
    g_limb_transforms.store(0, std::memory_order_relaxed);
}

namespace {

/** Canonical Shoup product (a < q, w < q, ws = floor(w·2^64/q)). */
inline u64
shoupMulCanonical(u64 a, u64 w, u64 ws, u64 q)
{
    u64 hi = static_cast<u64>((static_cast<u128>(a) * ws) >> 64);
    u64 r = a * w - hi * q;
    return r >= q ? r - q : r;
}

/** The SIMD transforms process 8 lanes at a time; tiny transforms
 *  (four-step building blocks can be this small) stay scalar. */
inline const kernels::KernelTable &
tableForSize(u64 n)
{
    return n >= 8 ? kernels::table() : kernels::scalarTable();
}

}  // namespace

NttTables::NttTables(u64 n, const Modulus &mod)
    : n_(n), logn_(log2Exact(n)), mod_(mod)
{
    CROPHE_ASSERT((mod.value() - 1) % (2 * n) == 0,
                  "modulus ", mod.value(), " not NTT-friendly for N=", n);
    psi_ = findPrimitiveRoot(mod.value(), 2 * n);
    psiInv_ = mod_.inv(psi_);
    nInv_ = mod_.inv(n);
    nInvShoup_ = shoupQuotient(nInv_, mod_.value());

    fwdW_.assign(n);
    fwdShoup_.assign(n);
    invW_.assign(n);
    invShoup_.assign(n);
    u64 p = 1;
    std::vector<u64> psi_pow(n), psi_inv_pow(n);
    for (u64 i = 0; i < n; ++i) {
        psi_pow[i] = p;
        p = mod_.mul(p, psi_);
    }
    p = 1;
    for (u64 i = 0; i < n; ++i) {
        psi_inv_pow[i] = p;
        p = mod_.mul(p, psiInv_);
    }
    const u64 q = mod_.value();
    for (u64 i = 0; i < n; ++i) {
        u64 br = bitReverse(i, logn_);
        fwdW_[i] = psi_pow[br];
        fwdShoup_[i] = shoupQuotient(psi_pow[br], q);
        invW_[i] = psi_inv_pow[br];
        invShoup_[i] = shoupQuotient(psi_inv_pow[br], q);
    }
}

kernels::NttView
NttTables::forwardView() const
{
    return {fwdW_.data(), fwdShoup_.data(), n_, mod_.value(), 0, 0};
}

kernels::NttView
NttTables::inverseView() const
{
    return {invW_.data(),  invShoup_.data(), n_,
            mod_.value(), nInv_,            nInvShoup_};
}

void
NttTables::forward(u64 *a) const
{
    g_limb_transforms.fetch_add(1, std::memory_order_relaxed);
    kernels::NttView v = forwardView();
    tableForSize(n_).fwdNtt(a, v);
}

void
NttTables::inverse(u64 *a) const
{
    g_limb_transforms.fetch_add(1, std::memory_order_relaxed);
    kernels::NttView v = inverseView();
    tableForSize(n_).invNtt(a, v);
}

void
NttTables::forwardBatched(u64 *const *polys, u64 count) const
{
    g_limb_transforms.fetch_add(count, std::memory_order_relaxed);
    kernels::NttView v = forwardView();
    const kernels::KernelTable &kt = tableForSize(n_);
    u64 tile = kernels::autotuner().batchTile(n_, count,
                                              kernels::activeBackend());
    kernels::fwdNttBatched(kt, polys, count, v, tile);
}

void
NttTables::inverseBatched(u64 *const *polys, u64 count) const
{
    g_limb_transforms.fetch_add(count, std::memory_order_relaxed);
    kernels::NttView v = inverseView();
    const kernels::KernelTable &kt = tableForSize(n_);
    u64 tile = kernels::autotuner().batchTile(n_, count,
                                              kernels::activeBackend());
    kernels::invNttBatched(kt, polys, count, v, tile);
}

std::vector<u64>
nttNaiveNegacyclic(const std::vector<u64> &a, const Modulus &mod, u64 psi)
{
    u64 n = a.size();
    std::vector<u64> out(n, 0);
    for (u64 k = 0; k < n; ++k) {
        u64 acc = 0;
        for (u64 i = 0; i < n; ++i) {
            u64 w = mod.pow(psi, (i * (2 * k + 1)) % (2 * n));
            acc = mod.add(acc, mod.mul(a[i], w));
        }
        out[k] = acc;
    }
    return out;
}

std::vector<u64>
polyMulNaive(const std::vector<u64> &a, const std::vector<u64> &b,
             const Modulus &mod)
{
    u64 n = a.size();
    CROPHE_ASSERT(b.size() == n, "size mismatch");
    std::vector<u64> out(n, 0);
    for (u64 i = 0; i < n; ++i) {
        for (u64 j = 0; j < n; ++j) {
            u64 prod = mod.mul(a[i], b[j]);
            u64 k = i + j;
            if (k < n)
                out[k] = mod.add(out[k], prod);
            else
                out[k - n] = mod.sub(out[k - n], prod);  // X^N = -1
        }
    }
    return out;
}

CyclicNtt::CyclicNtt(u64 n, const Modulus &mod, u64 omega)
    : n_(n), logn_(log2Exact(n)), mod_(mod), omega_(omega)
{
    buildStages(&fwd_, omega_);
    buildStages(&inv_, mod_.inv(omega_));
    nInv_ = mod_.inv(mod_.reduce64(n_));
    nInvShoup_ = shoupQuotient(nInv_, mod_.value());
}

void
CyclicNtt::buildStages(StageTables *t, u64 root) const
{
    const u64 q = mod_.value();
    t->w.assign(n_ > 0 ? n_ - 1 : 0);
    t->wShoup.assign(n_ > 0 ? n_ - 1 : 0);
    for (u64 len = 2; len <= n_; len <<= 1) {
        const u64 half = len / 2;
        const u64 wLen = mod_.pow(root, n_ / len);
        u64 w = 1;
        for (u64 j = 0; j < half; ++j) {
            t->w[half - 1 + j] = w;
            t->wShoup[half - 1 + j] = shoupQuotient(w, q);
            w = mod_.mul(w, wLen);
        }
    }
}

void
CyclicNtt::core(u64 *a, const StageTables &t) const
{
    const u64 q = mod_.value();
    // Bit-reverse permutation so that natural input -> natural output.
    for (u64 i = 0; i < n_; ++i) {
        u64 j = bitReverse(i, logn_);
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (u64 len = 2; len <= n_; len <<= 1) {
        const u64 half = len / 2;
        const u64 *w = t.w.data() + (half - 1);
        const u64 *ws = t.wShoup.data() + (half - 1);
        for (u64 i = 0; i < n_; i += len) {
            for (u64 j = 0; j < half; ++j) {
                u64 u = a[i + j];
                u64 v = shoupMulCanonical(a[i + j + half], w[j], ws[j], q);
                a[i + j] = mod_.add(u, v);
                a[i + j + half] = mod_.sub(u, v);
            }
        }
    }
}

void
CyclicNtt::forward(u64 *a) const
{
    core(a, fwd_);
}

void
CyclicNtt::inverse(u64 *a) const
{
    core(a, inv_);
    const u64 q = mod_.value();
    for (u64 i = 0; i < n_; ++i)
        a[i] = shoupMulCanonical(a[i], nInv_, nInvShoup_, q);
}

void
cyclicNtt(u64 *a, u64 n, const Modulus &mod, u64 omega)
{
    CyclicNtt(n, mod, omega).forward(a);
}

void
cyclicInverseNtt(u64 *a, u64 n, const Modulus &mod, u64 omega)
{
    CyclicNtt(n, mod, omega).inverse(a);
}

}  // namespace crophe::fhe
