#include "fhe/ntt.h"

#include "common/logging.h"
#include "common/math_util.h"
#include "fhe/primes.h"

namespace crophe::fhe {

NttTables::NttTables(u64 n, const Modulus &mod)
    : n_(n), logn_(log2Exact(n)), mod_(mod)
{
    CROPHE_ASSERT((mod.value() - 1) % (2 * n) == 0,
                  "modulus ", mod.value(), " not NTT-friendly for N=", n);
    psi_ = findPrimitiveRoot(mod.value(), 2 * n);
    psiInv_ = mod_.inv(psi_);
    nInv_ = ShoupMul(mod_.inv(n), mod_);

    fwd_.resize(n);
    inv_.resize(n);
    u64 p = 1;
    std::vector<u64> psi_pow(n), psi_inv_pow(n);
    for (u64 i = 0; i < n; ++i) {
        psi_pow[i] = p;
        p = mod_.mul(p, psi_);
    }
    p = 1;
    for (u64 i = 0; i < n; ++i) {
        psi_inv_pow[i] = p;
        p = mod_.mul(p, psiInv_);
    }
    for (u64 i = 0; i < n; ++i) {
        u64 br = bitReverse(i, logn_);
        fwd_[i] = ShoupMul(psi_pow[br], mod_);
        inv_[i] = ShoupMul(psi_inv_pow[br], mod_);
    }
}

void
NttTables::forward(u64 *a) const
{
    const u64 q = mod_.value();
    u64 t = n_;
    for (u64 m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (u64 i = 0; i < m; ++i) {
            u64 j1 = 2 * i * t;
            u64 j2 = j1 + t;
            const ShoupMul &s = fwd_[m + i];
            for (u64 j = j1; j < j2; ++j) {
                u64 u = a[j];
                u64 v = s.mul(a[j + t], q);
                a[j] = mod_.add(u, v);
                a[j + t] = mod_.sub(u, v);
            }
        }
    }
}

void
NttTables::inverse(u64 *a) const
{
    const u64 q = mod_.value();
    u64 t = 1;
    for (u64 m = n_; m > 1; m >>= 1) {
        u64 j1 = 0;
        u64 h = m >> 1;
        for (u64 i = 0; i < h; ++i) {
            u64 j2 = j1 + t;
            const ShoupMul &s = inv_[h + i];
            for (u64 j = j1; j < j2; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                a[j] = mod_.add(u, v);
                a[j + t] = s.mul(mod_.sub(u, v), q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (u64 j = 0; j < n_; ++j)
        a[j] = nInv_.mul(a[j], q);
}

std::vector<u64>
nttNaiveNegacyclic(const std::vector<u64> &a, const Modulus &mod, u64 psi)
{
    u64 n = a.size();
    std::vector<u64> out(n, 0);
    for (u64 k = 0; k < n; ++k) {
        u64 acc = 0;
        for (u64 i = 0; i < n; ++i) {
            u64 w = mod.pow(psi, (i * (2 * k + 1)) % (2 * n));
            acc = mod.add(acc, mod.mul(a[i], w));
        }
        out[k] = acc;
    }
    return out;
}

std::vector<u64>
polyMulNaive(const std::vector<u64> &a, const std::vector<u64> &b,
             const Modulus &mod)
{
    u64 n = a.size();
    CROPHE_ASSERT(b.size() == n, "size mismatch");
    std::vector<u64> out(n, 0);
    for (u64 i = 0; i < n; ++i) {
        for (u64 j = 0; j < n; ++j) {
            u64 prod = mod.mul(a[i], b[j]);
            u64 k = i + j;
            if (k < n)
                out[k] = mod.add(out[k], prod);
            else
                out[k - n] = mod.sub(out[k - n], prod);  // X^N = -1
        }
    }
    return out;
}

namespace {

/** In-place decimation-in-time cyclic FFT, natural order in and out (the
 *  bit-reverse permutation is applied internally). */
void
cyclicNttCore(u64 *a, u64 n, const Modulus &mod, u64 omega)
{
    u32 logn = log2Exact(n);
    // Bit-reverse permutation so that natural input -> natural output.
    for (u64 i = 0; i < n; ++i) {
        u64 j = bitReverse(i, logn);
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (u64 len = 2; len <= n; len <<= 1) {
        u64 w_len = mod.pow(omega, n / len);
        for (u64 i = 0; i < n; i += len) {
            u64 w = 1;
            for (u64 j = 0; j < len / 2; ++j) {
                u64 u = a[i + j];
                u64 v = mod.mul(a[i + j + len / 2], w);
                a[i + j] = mod.add(u, v);
                a[i + j + len / 2] = mod.sub(u, v);
                w = mod.mul(w, w_len);
            }
        }
    }
}

}  // namespace

void
cyclicNtt(u64 *a, u64 n, const Modulus &mod, u64 omega)
{
    cyclicNttCore(a, n, mod, omega);
}

void
cyclicInverseNtt(u64 *a, u64 n, const Modulus &mod, u64 omega)
{
    cyclicNttCore(a, n, mod, mod.inv(omega));
    u64 n_inv = mod.inv(mod.reduce64(n));
    for (u64 i = 0; i < n; ++i)
        a[i] = mod.mul(a[i], n_inv);
}

}  // namespace crophe::fhe
