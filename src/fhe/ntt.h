#ifndef CROPHE_FHE_NTT_H_
#define CROPHE_FHE_NTT_H_

/**
 * @file
 * Negacyclic number theoretic transform over Z_q[X]/(X^N + 1).
 *
 * Two implementations are provided:
 *  - NttTables: the merged radix-2 in-place transform (Harvey/SEAL style,
 *    Cooley-Tukey forward into bit-reversed order, Gentleman-Sande inverse),
 *    the fast path used by the CKKS library; and
 *  - naive reference transforms used by the test suite.
 *
 * The four-step (decomposed) NTT that CROPHE's dataflow optimization builds
 * on lives in fhe/ntt_fourstep.h.
 */

#include <vector>

#include "common/types.h"
#include "fhe/modarith.h"

namespace crophe::fhe {

/**
 * Precomputed twiddle tables for one (N, q) pair and the in-place
 * negacyclic transforms using them.
 *
 * Convention: forward() maps the coefficient vector a to the evaluations
 * â[k] = a(ψ^(2·br(k)+1)) where br is the log2(N)-bit reversal, i.e. the
 * output is in bit-reversed order. inverse() consumes that order and
 * returns natural-order coefficients. Element-wise products of two
 * forward() outputs therefore correspond to negacyclic convolution.
 */
class NttTables
{
  public:
    /** @param n power-of-two transform size; @param mod prime ≡ 1 mod 2n. */
    NttTables(u64 n, const Modulus &mod);

    u64 n() const { return n_; }
    const Modulus &modulus() const { return mod_; }
    u64 psi() const { return psi_; }

    /** In-place forward negacyclic NTT; a.size() == n. */
    void forward(u64 *a) const;

    /** In-place inverse negacyclic NTT; a.size() == n. */
    void inverse(u64 *a) const;

    void forward(std::vector<u64> &a) const { forward(a.data()); }
    void inverse(std::vector<u64> &a) const { inverse(a.data()); }

  private:
    u64 n_;
    u32 logn_;
    Modulus mod_;
    u64 psi_;     ///< primitive 2n-th root of unity
    u64 psiInv_;  ///< psi^{-1}
    ShoupMul nInv_;
    std::vector<ShoupMul> fwd_;  ///< ψ^br(i) at table index i
    std::vector<ShoupMul> inv_;  ///< ψ^{-br(i)} at table index i
};

/**
 * Reference negacyclic forward NTT in natural order:
 * out[k] = Σ_i a[i] ψ^{i(2k+1)}. O(N²); for tests only.
 */
std::vector<u64> nttNaiveNegacyclic(const std::vector<u64> &a,
                                    const Modulus &mod, u64 psi);

/** Schoolbook negacyclic polynomial product mod (X^N + 1, q); tests only. */
std::vector<u64> polyMulNaive(const std::vector<u64> &a,
                              const std::vector<u64> &b, const Modulus &mod);

/**
 * Generic in-place cyclic NTT (root ω of order n), natural input order,
 * natural output order (decimation-in-time with explicit bit reversal).
 * Shared by the four-step implementation and tests.
 */
void cyclicNtt(u64 *a, u64 n, const Modulus &mod, u64 omega);

/** Inverse of cyclicNtt (includes the 1/n scaling). */
void cyclicInverseNtt(u64 *a, u64 n, const Modulus &mod, u64 omega);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_NTT_H_
