#ifndef CROPHE_FHE_NTT_H_
#define CROPHE_FHE_NTT_H_

/**
 * @file
 * Negacyclic number theoretic transform over Z_q[X]/(X^N + 1).
 *
 * Two implementations are provided:
 *  - NttTables: the merged radix-2 in-place transform (Harvey/SEAL style,
 *    Cooley-Tukey forward into bit-reversed order, Gentleman-Sande inverse),
 *    the fast path used by the CKKS library; and
 *  - naive reference transforms used by the test suite.
 *
 * The butterfly loops live in the kernel layer (fhe/kernels/kernels.h):
 * NttTables stores its twiddles as structure-of-arrays (value / Shoup
 * quotient) in 64-byte-aligned storage and hands the selected backend a
 * view, so the same tables drive the scalar, AVX2 and AVX-512 transforms.
 *
 * The four-step (decomposed) NTT that CROPHE's dataflow optimization builds
 * on lives in fhe/ntt_fourstep.h.
 */

#include <vector>

#include "common/aligned.h"
#include "common/types.h"
#include "fhe/kernels/kernels.h"
#include "fhe/modarith.h"

namespace crophe::fhe {

/**
 * Process-wide count of limb transforms executed through NttTables
 * (forward/inverse, single or batched; each polynomial in a batch counts
 * once). Relaxed atomic — a profiling counter for the benches' NTT-count
 * accounting (DESIGN.md §15), not a synchronization point. @{
 */
u64 nttLimbTransforms();
void resetNttLimbTransforms();
/** @} */

/**
 * Precomputed twiddle tables for one (N, q) pair and the in-place
 * negacyclic transforms using them.
 *
 * Convention: forward() maps the coefficient vector a to the evaluations
 * â[k] = a(ψ^(2·br(k)+1)) where br is the log2(N)-bit reversal, i.e. the
 * output is in bit-reversed order. inverse() consumes that order and
 * returns natural-order coefficients. Element-wise products of two
 * forward() outputs therefore correspond to negacyclic convolution.
 */
class NttTables
{
  public:
    /** @param n power-of-two transform size; @param mod prime ≡ 1 mod 2n. */
    NttTables(u64 n, const Modulus &mod);

    u64 n() const { return n_; }
    const Modulus &modulus() const { return mod_; }
    u64 psi() const { return psi_; }

    /** In-place forward negacyclic NTT; a.size() == n. */
    void forward(u64 *a) const;

    /** In-place inverse negacyclic NTT; a.size() == n. */
    void inverse(u64 *a) const;

    void forward(std::vector<u64> &a) const { forward(a.data()); }
    void inverse(std::vector<u64> &a) const { inverse(a.data()); }

    /**
     * In-place transforms of @p count polynomials sharing this table's
     * (n, q), routed through the backend's batched kernel (stage-outer
     * loops, autotuned tile width) when present. Bit-identical to
     * calling forward()/inverse() per polynomial.
     */
    void forwardBatched(u64 *const *polys, u64 count) const;
    void inverseBatched(u64 *const *polys, u64 count) const;

    /** Kernel views over the precomputed tables (bench/tests). */
    kernels::NttView forwardView() const;
    kernels::NttView inverseView() const;

  private:
    u64 n_;
    u32 logn_;
    Modulus mod_;
    u64 psi_;     ///< primitive 2n-th root of unity
    u64 psiInv_;  ///< psi^{-1}
    u64 nInv_;    ///< n^{-1} mod q
    u64 nInvShoup_;
    AlignedVec<u64> fwdW_;      ///< ψ^br(i) at table index i
    AlignedVec<u64> fwdShoup_;  ///< floor(fwdW·2^64/q)
    AlignedVec<u64> invW_;      ///< ψ^{-br(i)} at table index i
    AlignedVec<u64> invShoup_;
};

/**
 * Reference negacyclic forward NTT in natural order:
 * out[k] = Σ_i a[i] ψ^{i(2k+1)}. O(N²); for tests only.
 */
std::vector<u64> nttNaiveNegacyclic(const std::vector<u64> &a,
                                    const Modulus &mod, u64 psi);

/** Schoolbook negacyclic polynomial product mod (X^N + 1, q); tests only. */
std::vector<u64> polyMulNaive(const std::vector<u64> &a,
                              const std::vector<u64> &b, const Modulus &mod);

/**
 * A cyclic NTT plan: the per-stage twiddle powers ω^(j·n/len) and their
 * Shoup quotients, precomputed once, plus the cached inverse tables and
 * n^{-1} — replacing the seed's chained Barrett mod.mul(w, w_len) per
 * butterfly and per-call mod.inv(omega) recomputation. The transform is
 * decimation-in-time with an explicit bit-reversal, so input and output
 * are both in natural order.
 */
class CyclicNtt
{
  public:
    /** @param n power of two; @param omega a primitive n-th root mod q. */
    CyclicNtt(u64 n, const Modulus &mod, u64 omega);

    u64 n() const { return n_; }
    u64 omega() const { return omega_; }

    /** In-place forward cyclic NTT, natural order in and out. */
    void forward(u64 *a) const;

    /** In-place inverse (includes the 1/n scaling). */
    void inverse(u64 *a) const;

  private:
    /** One direction's twiddles: stage with half-length h occupies
     *  entries [h-1, 2h-1), holding ω_len^j for j in [0, h). */
    struct StageTables
    {
        AlignedVec<u64> w;
        AlignedVec<u64> wShoup;
    };

    void buildStages(StageTables *t, u64 root) const;
    void core(u64 *a, const StageTables &t) const;

    u64 n_;
    u32 logn_;
    Modulus mod_;
    u64 omega_;
    StageTables fwd_;
    StageTables inv_;
    u64 nInv_;
    u64 nInvShoup_;
};

/**
 * Generic in-place cyclic NTT (root ω of order n), natural input order,
 * natural output order. Convenience wrapper that builds a CyclicNtt plan
 * per call; repeated transforms should hold a plan instead.
 */
void cyclicNtt(u64 *a, u64 n, const Modulus &mod, u64 omega);

/** Inverse of cyclicNtt (includes the 1/n scaling). */
void cyclicInverseNtt(u64 *a, u64 n, const Modulus &mod, u64 omega);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_NTT_H_
