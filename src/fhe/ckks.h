#ifndef CROPHE_FHE_CKKS_H_
#define CROPHE_FHE_CKKS_H_

/**
 * @file
 * CKKS homomorphic operations (Section II-A).
 *
 * The Evaluator implements HAdd/HSub, CAdd/CMult, PAdd/PMult, HMult with
 * relinearization, rescaling, and HRot — all on RNS ciphertexts — with the
 * full key-switching flow Decomp → ModUp → KSKInP → ModDown of Figure 1.
 */

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fhe/bconv.h"
#include "fhe/encoding.h"
#include "fhe/keys.h"
#include "fhe/rns.h"

namespace crophe::fhe {

/** A CKKS ciphertext (b, a) over qBasis(level) in Eval representation. */
struct Ciphertext
{
    RnsPoly b;
    RnsPoly a;
    double scale = 0.0;
    u32 level = 0;
};

/**
 * Dataflow variants of the raw key switch. All four compute bit-identical
 * results — they reorder the same exact integer operations — and differ
 * only in loop structure, parallel axis and intermediate traffic
 * (CiFlow-style reordered pipelines; DESIGN.md §15).
 */
enum class KeySwitchDataflow : u8
{
    Fused = 0,    ///< per-digit fused iNTT→BConv→NTT pipeline (default)
    Unfused = 1,  ///< whole-stage reference flow (differential oracle)
    /** CiFlow output-stationary KSKInP: all digits are ModUp-ed first,
     *  then each extended-basis output limb is accumulated to completion
     *  while it stays resident (parallel axis = output limbs). */
    OutputStationary = 2,
    /** CiFlow reordered ModUp: every digit's BConv runs before any
     *  forward transform, then the per-modulus rows of all digits go
     *  through one batched NTT (shared twiddle walk per modulus). */
    ReorderedModUp = 3,
};

/** Stable lowercase name: fused | unfused | ostat | reordup. */
const char *keySwitchDataflowName(KeySwitchDataflow df);

/** All homomorphic operations over one FheContext. */
class Evaluator
{
  public:
    Evaluator(const FheContext &ctx, u64 seed = 42);

    const FheContext &context() const { return *ctx_; }

    /** Public-key encryption of a plaintext. */
    Ciphertext encrypt(const Plaintext &pt, const PublicKey &pk);

    /** Symmetric encryption (fresh, lower-noise; used by tests). */
    Ciphertext encryptSymmetric(const Plaintext &pt, const SecretKey &sk);

    /** Decryption: m = b + a·s. */
    Plaintext decrypt(const Ciphertext &ct, const SecretKey &sk) const;

    Ciphertext add(const Ciphertext &c0, const Ciphertext &c1) const;
    Ciphertext sub(const Ciphertext &c0, const Ciphertext &c1) const;

    /** Add an encoded plaintext (PAdd); scales must match. */
    Ciphertext addPlain(const Ciphertext &ct, const Plaintext &pt) const;

    /** Multiply by an encoded plaintext (PMult); scale multiplies. */
    Ciphertext mulPlain(const Ciphertext &ct, const Plaintext &pt) const;

    /** Add a scalar constant (CAdd). */
    Ciphertext addConst(const Ciphertext &ct, double c) const;

    /** Multiply by a scalar constant (CMult); consumes scale Δ. */
    Ciphertext mulConst(const Ciphertext &ct, double c) const;

    /** HMult with relinearization by @p rlk. */
    Ciphertext mul(const Ciphertext &c0, const Ciphertext &c1,
                   const KswKey &rlk) const;

    /** Rescale by the current last prime (HRescale). */
    Ciphertext rescale(const Ciphertext &ct) const;

    /** Drop to a target level without rescaling (mod-switch). */
    Ciphertext levelDown(const Ciphertext &ct, u32 target_level) const;

    /** HRot: rotate slots left by @p r using rotation key @p rk. */
    Ciphertext rotate(const Ciphertext &ct, i64 r, const KswKey &rk) const;

    /** Complex conjugation of all slots. */
    Ciphertext conjugate(const Ciphertext &ct, const KswKey &ck) const;

    /**
     * Raw key switching: given a polynomial d over qBasis(level) in Eval
     * rep, return (b, a) = P^{-1}(d ⊙ evk) per Equation (1). Dispatches
     * on the Evaluator's configured KeySwitchDataflow (default: the fused
     * per-digit pipeline of DESIGN.md §13). Every dataflow is
     * bit-identical — the choice only moves the same exact operations
     * around.
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &d, u32 level,
                                          const KswKey &key) const;

    /**
     * The fused per-digit iNTT→BConv→NTT pipeline (DESIGN.md §13): ModUp
     * copies the digit's own limbs from the Eval-domain input and ModDown
     * stays in the Eval domain, skipping the transform round trips of the
     * unfused flow. Bit-identical to keySwitchUnfused().
     */
    std::pair<RnsPoly, RnsPoly> keySwitchFused(const RnsPoly &d, u32 level,
                                               const KswKey &key) const;

    /**
     * The unfused Decomp → ModUp → KSKInP → ModDown reference flow, each
     * stage a whole-polynomial pass with explicit toCoeff/toEval domain
     * crossings. Kept as the differential-test oracle and the benchmark
     * reference for the fused pipeline.
     */
    std::pair<RnsPoly, RnsPoly> keySwitchUnfused(const RnsPoly &d, u32 level,
                                                 const KswKey &key) const;

    /**
     * CiFlow output-stationary KSKInP (DESIGN.md §15): ModUp all digits,
     * then walk the extended basis limb-major — each output limb of the
     * (b, a) accumulator pair is multiplied and accumulated across all β
     * digits while it stays resident, instead of materializing β whole
     * partial-product polynomials. Same transforms, different loop nest;
     * bit-identical to keySwitchFused().
     */
    std::pair<RnsPoly, RnsPoly> keySwitchOutputStationary(
        const RnsPoly &d, u32 level, const KswKey &key) const;

    /**
     * CiFlow reordered-ModUp (DESIGN.md §15): run every digit's BConv
     * before any forward transform, then group the converted rows of all
     * digits by target modulus and push each group through one batched
     * NTT call (one twiddle walk per modulus instead of β). Bit-identical
     * to keySwitchFused().
     */
    std::pair<RnsPoly, RnsPoly> keySwitchReorderedModUp(
        const RnsPoly &d, u32 level, const KswKey &key) const;

    // --- Hoisting primitives (triple-hoisted BSGS, DESIGN.md §15) -------

    /**
     * Shared Decomp + ModUp of @p d (Eval over qBasis(level)): all β
     * key-switch digits, each in Eval rep over qpBasis(level). Computed
     * once per hoisting group and reused by every hoistedRotate().
     */
    std::vector<RnsPoly> hoistedDecompModUp(const RnsPoly &d,
                                            u32 level) const;

    /**
     * KSKInP over precomputed ModUp digits: the (b, a) accumulator pair
     * over qpBasis(level) in Eval rep, WITHOUT the final ModDown — the
     * caller either finishes with modDownEvalPair() or keeps accumulating
     * more inner products in the extended basis (the triple-hoisted
     * giant-step accumulation).
     */
    std::pair<RnsPoly, RnsPoly> hoistedInnerProd(
        const std::vector<RnsPoly> &digits, const KswKey &key) const;

    /**
     * HRot by @p r from hoisted digits of ct.a: the NTT-domain
     * automorphism is applied to each precomputed digit (a pure
     * permutation — no transforms, no BConv), then KSKInP + ModDown as
     * usual. NOT bit-identical to rotate(ct, r, rk): ψ carries sign
     * flips and BConv of the canonical representative is not
     * odd-symmetric, so the extended limbs differ from the eager path
     * by multiples of the digit modulus — a lift ambiguity absorbed by
     * key-switch noise (standard hoisting). Validated bit-for-bit
     * against an unfused-primitive oracle and at decrypt level against
     * rotate().
     */
    Ciphertext hoistedRotate(const Ciphertext &ct,
                             const std::vector<RnsPoly> &digits, i64 r,
                             const KswKey &rk) const;

    /** Select the key-switch dataflow used by keySwitch()/rotate()/mul(). */
    void setKeySwitchDataflow(KeySwitchDataflow df) { ksDataflow_ = df; }
    KeySwitchDataflow keySwitchDataflow() const { return ksDataflow_; }

    const Encoder &encoder() const { return encoder_; }

  private:
    const FheContext *ctx_;
    Encoder encoder_;
    mutable Rng rng_;
    KeySwitchDataflow ksDataflow_ = KeySwitchDataflow::Fused;
};

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_CKKS_H_
