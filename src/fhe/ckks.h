#ifndef CROPHE_FHE_CKKS_H_
#define CROPHE_FHE_CKKS_H_

/**
 * @file
 * CKKS homomorphic operations (Section II-A).
 *
 * The Evaluator implements HAdd/HSub, CAdd/CMult, PAdd/PMult, HMult with
 * relinearization, rescaling, and HRot — all on RNS ciphertexts — with the
 * full key-switching flow Decomp → ModUp → KSKInP → ModDown of Figure 1.
 */

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fhe/bconv.h"
#include "fhe/encoding.h"
#include "fhe/keys.h"
#include "fhe/rns.h"

namespace crophe::fhe {

/** A CKKS ciphertext (b, a) over qBasis(level) in Eval representation. */
struct Ciphertext
{
    RnsPoly b;
    RnsPoly a;
    double scale = 0.0;
    u32 level = 0;
};

/** All homomorphic operations over one FheContext. */
class Evaluator
{
  public:
    Evaluator(const FheContext &ctx, u64 seed = 42);

    const FheContext &context() const { return *ctx_; }

    /** Public-key encryption of a plaintext. */
    Ciphertext encrypt(const Plaintext &pt, const PublicKey &pk);

    /** Symmetric encryption (fresh, lower-noise; used by tests). */
    Ciphertext encryptSymmetric(const Plaintext &pt, const SecretKey &sk);

    /** Decryption: m = b + a·s. */
    Plaintext decrypt(const Ciphertext &ct, const SecretKey &sk) const;

    Ciphertext add(const Ciphertext &c0, const Ciphertext &c1) const;
    Ciphertext sub(const Ciphertext &c0, const Ciphertext &c1) const;

    /** Add an encoded plaintext (PAdd); scales must match. */
    Ciphertext addPlain(const Ciphertext &ct, const Plaintext &pt) const;

    /** Multiply by an encoded plaintext (PMult); scale multiplies. */
    Ciphertext mulPlain(const Ciphertext &ct, const Plaintext &pt) const;

    /** Add a scalar constant (CAdd). */
    Ciphertext addConst(const Ciphertext &ct, double c) const;

    /** Multiply by a scalar constant (CMult); consumes scale Δ. */
    Ciphertext mulConst(const Ciphertext &ct, double c) const;

    /** HMult with relinearization by @p rlk. */
    Ciphertext mul(const Ciphertext &c0, const Ciphertext &c1,
                   const KswKey &rlk) const;

    /** Rescale by the current last prime (HRescale). */
    Ciphertext rescale(const Ciphertext &ct) const;

    /** Drop to a target level without rescaling (mod-switch). */
    Ciphertext levelDown(const Ciphertext &ct, u32 target_level) const;

    /** HRot: rotate slots left by @p r using rotation key @p rk. */
    Ciphertext rotate(const Ciphertext &ct, i64 r, const KswKey &rk) const;

    /** Complex conjugation of all slots. */
    Ciphertext conjugate(const Ciphertext &ct, const KswKey &ck) const;

    /**
     * Raw key switching: given a polynomial d over qBasis(level) in Eval
     * rep, return (b, a) = P^{-1}(d ⊙ evk) per Equation (1). Runs the
     * fused iNTT→BConv→NTT pipeline (DESIGN.md §13): ModUp copies the
     * digit's own limbs from the Eval-domain input and ModDown stays in
     * the Eval domain, skipping the transform round trips of the unfused
     * flow. Bit-identical to keySwitchUnfused().
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &d, u32 level,
                                          const KswKey &key) const;

    /**
     * The unfused Decomp → ModUp → KSKInP → ModDown reference flow, each
     * stage a whole-polynomial pass with explicit toCoeff/toEval domain
     * crossings. Kept as the differential-test oracle and the benchmark
     * reference for the fused pipeline.
     */
    std::pair<RnsPoly, RnsPoly> keySwitchUnfused(const RnsPoly &d, u32 level,
                                                 const KswKey &key) const;

    const Encoder &encoder() const { return encoder_; }

  private:
    const FheContext *ctx_;
    Encoder encoder_;
    mutable Rng rng_;
};

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_CKKS_H_
