#include "fhe/automorphism.h"

#include "common/logging.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "fhe/kernels/kernels.h"

namespace crophe::fhe {

u64
galoisElementForRotation(i64 r, u64 n)
{
    const u64 m = 2 * n;
    // Normalize the rotation amount into [0, n/2).
    const u64 half = n / 2;
    u64 steps = static_cast<u64>(((r % static_cast<i64>(half)) +
                                  static_cast<i64>(half)) %
                                 static_cast<i64>(half));
    u64 g = 1;
    for (u64 i = 0; i < steps; ++i)
        g = (g * 5) % m;
    return g;
}

u64
galoisElementForConjugation(u64 n)
{
    return 2 * n - 1;
}

void
applyAutomorphismCoeff(const u64 *in, u64 *out, u64 n, u64 galois,
                       const Modulus &mod)
{
    const u64 m = 2 * n;
    for (u64 i = 0; i < n; ++i)
        out[i] = 0;
    for (u64 i = 0; i < n; ++i) {
        u64 dest = (i * galois) % m;
        if (dest < n) {
            out[dest] = mod.add(out[dest], in[i]);
        } else {
            out[dest - n] = mod.sub(out[dest - n], in[i]);
        }
    }
}

std::vector<u64>
evalAutomorphismTable(u64 galois, u64 n)
{
    // Our forward NTT stores, at output slot k, the evaluation at
    // ψ^(2·br(k)+1). Under X -> X^g, the value at root exponent e becomes
    // the old value at exponent e·g mod 2N. Build table[k] = k' such that
    // 2·br(k')+1 == (2·br(k)+1)·g mod 2N.
    const u64 m = 2 * n;
    const u32 logn = log2Exact(n);
    std::vector<u64> table(n);
    for (u64 k = 0; k < n; ++k) {
        u64 e = (2 * bitReverse(k, logn) + 1) % m;
        u64 src_e = (e * galois) % m;
        u64 src_idx = bitReverse((src_e - 1) / 2, logn);
        table[k] = src_idx;
    }
    return table;
}

RnsPoly
applyAutomorphism(const RnsPoly &in, u64 galois)
{
    RnsPoly out(in.context(), in.basis(), in.rep());
    if (in.rep() == Rep::Coeff) {
        parallelFor(0, in.limbCount(), [&](u64 i) {
            applyAutomorphismCoeff(in.limb(i).data(), out.limb(i).data(),
                                   in.n(), galois, in.mod(i));
        });
    } else {
        // The permutation table is context-cached; the gather itself is a
        // kernel (AVX2/AVX-512 use hardware gathers).
        const AlignedVec<u64> &table = in.context().autEvalTable(galois);
        const auto &kt = kernels::table();
        parallelFor(0, in.limbCount(), [&](u64 i) {
            kt.gather(out.limb(i).data(), in.limb(i).data(), table.data(),
                      in.n());
        });
    }
    return out;
}

}  // namespace crophe::fhe
