#include "fhe/ckks.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "common/arena.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "fhe/automorphism.h"
#include "fhe/kernels/kernels.h"

namespace crophe::fhe {

const char *
keySwitchDataflowName(KeySwitchDataflow df)
{
    switch (df) {
      case KeySwitchDataflow::Fused: return "fused";
      case KeySwitchDataflow::Unfused: return "unfused";
      case KeySwitchDataflow::OutputStationary: return "ostat";
      case KeySwitchDataflow::ReorderedModUp: return "reordup";
    }
    return "?";
}

namespace {

/** Sample a small signed polynomial into Coeff rep over @p basis. */
RnsPoly
sampleSigned(const FheContext &ctx, const std::vector<u32> &basis, Rng &rng,
             bool ternary)
{
    RnsPoly poly(ctx, basis, Rep::Coeff);
    const u64 n = ctx.n();
    // Draw coefficients serially (the RNG stream order must not depend on
    // thread count); the per-limb reductions of the fixed draw are
    // independent and run in parallel.
    std::vector<i64> coeffs(n);
    for (u64 i = 0; i < n; ++i)
        coeffs[i] = ternary ? rng.nextTernary() : rng.nextNoise();
    parallelFor(0, poly.limbCount(), [&](u64 l) {
        const Modulus &m = poly.mod(l);
        for (u64 i = 0; i < n; ++i) {
            i64 c = coeffs[i];
            poly.limb(l)[i] =
                c >= 0 ? m.reduce64(static_cast<u64>(c))
                       : m.neg(m.reduce64(static_cast<u64>(-c)));
        }
    });
    return poly;
}

}  // namespace

Evaluator::Evaluator(const FheContext &ctx, u64 seed)
    : ctx_(&ctx), encoder_(ctx), rng_(seed)
{
}

Ciphertext
Evaluator::encrypt(const Plaintext &pt, const PublicKey &pk)
{
    auto basis = ctx_->qBasis(pt.level);
    RnsPoly u = sampleSigned(*ctx_, basis, rng_, true);
    u.toEval();
    RnsPoly e0 = sampleSigned(*ctx_, basis, rng_, false);
    e0.toEval();
    RnsPoly e1 = sampleSigned(*ctx_, basis, rng_, false);
    e1.toEval();

    Ciphertext ct;
    ct.scale = pt.scale;
    ct.level = pt.level;
    ct.b = pk.b.restrictedTo(basis);
    ct.b.mulEwInplace(u);
    ct.b.addInplace(e0);
    ct.b.addInplace(pt.poly);
    ct.a = pk.a.restrictedTo(basis);
    ct.a.mulEwInplace(u);
    ct.a.addInplace(e1);
    return ct;
}

Ciphertext
Evaluator::encryptSymmetric(const Plaintext &pt, const SecretKey &sk)
{
    auto basis = ctx_->qBasis(pt.level);
    Ciphertext ct;
    ct.scale = pt.scale;
    ct.level = pt.level;
    ct.a = RnsPoly(*ctx_, basis, Rep::Eval);
    ct.a.uniformRandom(rng_);
    RnsPoly e = sampleSigned(*ctx_, basis, rng_, false);
    e.toEval();

    RnsPoly s_q = sk.s.restrictedTo(basis);
    ct.b = ct.a;
    ct.b.mulEwInplace(s_q);
    ct.b.negateInplace();
    ct.b.addInplace(e);
    ct.b.addInplace(pt.poly);
    return ct;
}

Plaintext
Evaluator::decrypt(const Ciphertext &ct, const SecretKey &sk) const
{
    auto basis = ctx_->qBasis(ct.level);
    RnsPoly s_q = sk.s.restrictedTo(basis);
    Plaintext pt;
    pt.scale = ct.scale;
    pt.level = ct.level;
    pt.poly = ct.a;
    pt.poly.mulEwInplace(s_q);
    pt.poly.addInplace(ct.b);
    return pt;
}

Ciphertext
Evaluator::add(const Ciphertext &c0, const Ciphertext &c1) const
{
    CROPHE_ASSERT(c0.level == c1.level, "HAdd level mismatch");
    CROPHE_ASSERT(std::abs(c0.scale / c1.scale - 1.0) < 1e-9,
                  "HAdd scale mismatch: ", c0.scale, " vs ", c1.scale);
    Ciphertext out = c0;
    out.b.addInplace(c1.b);
    out.a.addInplace(c1.a);
    return out;
}

Ciphertext
Evaluator::sub(const Ciphertext &c0, const Ciphertext &c1) const
{
    CROPHE_ASSERT(c0.level == c1.level, "HSub level mismatch");
    Ciphertext out = c0;
    out.b.subInplace(c1.b);
    out.a.subInplace(c1.a);
    return out;
}

Ciphertext
Evaluator::addPlain(const Ciphertext &ct, const Plaintext &pt) const
{
    CROPHE_ASSERT(ct.level == pt.level, "PAdd level mismatch");
    Ciphertext out = ct;
    out.b.addInplace(pt.poly);
    return out;
}

Ciphertext
Evaluator::mulPlain(const Ciphertext &ct, const Plaintext &pt) const
{
    CROPHE_ASSERT(ct.level == pt.level, "PMult level mismatch");
    Ciphertext out = ct;
    out.b.mulEwInplace(pt.poly);
    out.a.mulEwInplace(pt.poly);
    out.scale = ct.scale * pt.scale;
    return out;
}

Ciphertext
Evaluator::addConst(const Ciphertext &ct, double c) const
{
    // Encode the constant into every slot at the ciphertext's scale.
    std::vector<double> v(ctx_->n() / 2, c);
    Plaintext pt = encoder_.encodeReal(v, ct.level, ct.scale);
    return addPlain(ct, pt);
}

Ciphertext
Evaluator::mulConst(const Ciphertext &ct, double c) const
{
    Ciphertext out = ct;
    double scaled = c * ctx_->defaultScale();
    bool negative = scaled < 0;
    u64 ci = static_cast<u64>(std::llround(std::abs(scaled)));
    out.b.mulConstInplace(ci);
    out.a.mulConstInplace(ci);
    if (negative) {
        out.b.negateInplace();
        out.a.negateInplace();
    }
    out.scale = ct.scale * ctx_->defaultScale();
    return out;
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keySwitch(const RnsPoly &d, u32 level, const KswKey &key) const
{
    switch (ksDataflow_) {
      case KeySwitchDataflow::Unfused:
          return keySwitchUnfused(d, level, key);
      case KeySwitchDataflow::OutputStationary:
          return keySwitchOutputStationary(d, level, key);
      case KeySwitchDataflow::ReorderedModUp:
          return keySwitchReorderedModUp(d, level, key);
      case KeySwitchDataflow::Fused: break;
    }
    return keySwitchFused(d, level, key);
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keySwitchFused(const RnsPoly &d, u32 level, const KswKey &key) const
{
    CROPHE_ASSERT(d.rep() == Rep::Eval, "keySwitch expects Eval input");
    // The Coeff-domain copy feeds every digit's BConv; the Eval-domain
    // original supplies each digit's own limbs directly (fused ModUp).
    RnsPoly d_coeff = d;
    d_coeff.toCoeff();

    const u32 beta = ctx_->digitCount(level);
    CROPHE_ASSERT(beta <= key.digitCount(), "key has too few digits");
    // Digits are independent up to the final accumulation: compute the
    // per-digit partial products in parallel, then merge them on this
    // thread in digit order. Modular adds are exact, so the index-order
    // merge is bit-identical to the sequential loop. The key's rows are
    // multiplied in place via mulEwRestricted — no restrictedTo copy of
    // the key — and the b-product reuses the digit's ModUp slab.
    std::vector<std::unique_ptr<std::pair<RnsPoly, RnsPoly>>> parts(beta);
    parallelFor(0, beta, [&](u64 j) {
        RnsPoly up = fusedModUpEval(*ctx_, d, d_coeff, static_cast<u32>(j),
                                    level);  // Eval, qp
        RnsPoly part_b = up;
        part_b.mulEwRestricted(key.b[j]);
        up.mulEwRestricted(key.a[j]);
        parts[j] = std::make_unique<std::pair<RnsPoly, RnsPoly>>(
            std::move(part_b), std::move(up));
    });
    // Digit 0 seeds the accumulators directly (adding into a fresh
    // zero poly is the identity), later digits accumulate in order.
    RnsPoly acc_b = std::move(parts[0]->first);
    RnsPoly acc_a = std::move(parts[0]->second);
    for (u32 j = 1; j < beta; ++j) {
        acc_b.addInplace(parts[j]->first);
        acc_a.addInplace(parts[j]->second);
    }

    // The accumulators never leave the Eval domain: ModDown inverse-
    // transforms only the P limbs and returns the pair already in Eval.
    return modDownEvalPair(*ctx_, acc_b, acc_a, level);
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keySwitchUnfused(const RnsPoly &d, u32 level,
                            const KswKey &key) const
{
    CROPHE_ASSERT(d.rep() == Rep::Eval, "keySwitch expects Eval input");
    RnsPoly d_coeff = d;
    d_coeff.toCoeff();

    auto qp = ctx_->qpBasis(level);
    RnsPoly acc_b(*ctx_, qp, Rep::Eval);
    RnsPoly acc_a(*ctx_, qp, Rep::Eval);

    const u32 beta = ctx_->digitCount(level);
    CROPHE_ASSERT(beta <= key.digitCount(), "key has too few digits");
    std::vector<std::unique_ptr<std::pair<RnsPoly, RnsPoly>>> parts(beta);
    parallelFor(0, beta, [&](u64 j) {
        RnsPoly up = modUpDigit(*ctx_, d_coeff, static_cast<u32>(j),
                                level);  // Coeff, qp
        up.toEval();
        RnsPoly kb = key.b[j].restrictedTo(qp);
        RnsPoly ka = key.a[j].restrictedTo(qp);
        kb.mulEwInplace(up);
        ka.mulEwInplace(up);
        parts[j] = std::make_unique<std::pair<RnsPoly, RnsPoly>>(
            std::move(kb), std::move(ka));
    });
    for (u32 j = 0; j < beta; ++j) {
        acc_b.addInplace(parts[j]->first);
        acc_a.addInplace(parts[j]->second);
    }

    acc_b.toCoeff();
    acc_a.toCoeff();
    RnsPoly out_b = modDown(*ctx_, acc_b, level);
    RnsPoly out_a = modDown(*ctx_, acc_a, level);
    out_b.toEval();
    out_a.toEval();
    return {std::move(out_b), std::move(out_a)};
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keySwitchOutputStationary(const RnsPoly &d, u32 level,
                                     const KswKey &key) const
{
    CROPHE_ASSERT(d.rep() == Rep::Eval, "keySwitch expects Eval input");
    RnsPoly d_coeff = d;
    d_coeff.toCoeff();

    const u32 beta = ctx_->digitCount(level);
    CROPHE_ASSERT(beta <= key.digitCount(), "key has too few digits");

    // Stage 1: ModUp every digit (same fused iNTT→BConv→NTT pipeline as
    // keySwitchFused — the dataflow change is confined to the KSKInP).
    std::vector<RnsPoly> ups(beta);
    parallelFor(0, beta, [&](u64 j) {
        ups[j] = fusedModUpEval(*ctx_, d, d_coeff, static_cast<u32>(j),
                                level);
    });

    // Stage 2: output-stationary KSKInP. The fused path materializes β
    // whole partial-product polynomial pairs and then merges them; here
    // each extended-basis output limb of (b, a) is multiplied and
    // accumulated across all β digits while it stays resident, so the
    // only β-sized intermediate is one scratch row per thread. Per limb
    // the operation sequence (Barrett product in ascending digit order,
    // then modular add) matches the fused path exactly, so the result
    // is bit-identical.
    auto qp = ctx_->qpBasis(level);
    const u32 ext = static_cast<u32>(qp.size());
    const u64 n = ctx_->n();
    RnsPoly acc_b(*ctx_, qp, Rep::Eval);
    RnsPoly acc_a(*ctx_, qp, Rep::Eval);

    // Key digits all share the qpBasis(L) layout; map each output limb
    // to its row in the key polynomials once.
    std::vector<u32> kmap(ext);
    const auto &key_basis = key.b[0].basis();
    for (u32 k = 0; k < ext; ++k) {
        auto it = std::find(key_basis.begin(), key_basis.end(), qp[k]);
        CROPHE_ASSERT(it != key_basis.end(), "key basis missing limb");
        kmap[k] = static_cast<u32>(it - key_basis.begin());
    }

    const auto &kt = kernels::table();
    parallelFor(0, ext, [&](u64 k) {
        const Modulus &m = ctx_->mod(qp[k]);
        const kernels::BarrettView bv{m.value(), m.barrettLo(),
                                      m.barrettHi()};
        u64 *db = acc_b.limb(static_cast<u32>(k)).data();
        u64 *da = acc_a.limb(static_cast<u32>(k)).data();
        ScratchArena::Scope scope;
        u64 *tmp = ScratchArena::local().alloc<u64>(n);
        for (u32 j = 0; j < beta; ++j) {
            const u64 *up = ups[j].limb(static_cast<u32>(k)).data();
            const u64 *kb = key.b[j].limb(kmap[k]).data();
            const u64 *ka = key.a[j].limb(kmap[k]).data();
            if (j == 0) {
                // Digit 0 writes the products straight into the
                // accumulator rows (identical to seeding from parts[0]).
                std::memcpy(db, up, n * sizeof(u64));
                kt.mulModBarrett(db, kb, n, bv);
                std::memcpy(da, up, n * sizeof(u64));
                kt.mulModBarrett(da, ka, n, bv);
            } else {
                std::memcpy(tmp, up, n * sizeof(u64));
                kt.mulModBarrett(tmp, kb, n, bv);
                kt.addMod(db, tmp, n, m.value());
                std::memcpy(tmp, up, n * sizeof(u64));
                kt.mulModBarrett(tmp, ka, n, bv);
                kt.addMod(da, tmp, n, m.value());
            }
        }
    });

    return modDownEvalPair(*ctx_, acc_b, acc_a, level);
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keySwitchReorderedModUp(const RnsPoly &d, u32 level,
                                   const KswKey &key) const
{
    CROPHE_ASSERT(d.rep() == Rep::Eval, "keySwitch expects Eval input");
    RnsPoly d_coeff = d;
    d_coeff.toCoeff();

    const u32 beta = ctx_->digitCount(level);
    CROPHE_ASSERT(beta <= key.digitCount(), "key has too few digits");
    auto target = ctx_->qpBasis(level);
    const u32 ext = static_cast<u32>(target.size());
    const auto &d_basis = d.basis();

    // Stage 1: every digit's BConv runs before any forward transform.
    // Own limbs are copied from the Eval-domain input as in the fused
    // path; converted rows are left in the Coeff domain inside the
    // Eval-tagged output slabs (transformed in place in stage 2).
    std::vector<RnsPoly> ups(beta);
    for (u32 j = 0; j < beta; ++j)
        ups[j] = RnsPoly(*ctx_, target, Rep::Eval);
    std::vector<std::vector<u8>> own(beta, std::vector<u8>(ext, 0));
    parallelFor(0, beta, [&](u64 j) {
        auto digit_limbs = ctx_->digitLimbs(static_cast<u32>(j), level);
        RnsPoly digit_poly = d_coeff.restrictedTo(digit_limbs);
        std::vector<u32> missing;
        std::vector<u64 *> missing_rows;
        for (u32 k = 0; k < ext; ++k) {
            bool is_own = std::find(digit_limbs.begin(), digit_limbs.end(),
                                    target[k]) != digit_limbs.end();
            own[j][k] = is_own ? 1 : 0;
            if (is_own) {
                auto it = std::find(d_basis.begin(), d_basis.end(),
                                    target[k]);
                CROPHE_ASSERT(it != d_basis.end(),
                              "digit limb missing from d_eval");
                ups[j].copyLimbFrom(
                    k, d, static_cast<u32>(it - d_basis.begin()));
            } else {
                missing.push_back(target[k]);
                missing_rows.push_back(ups[j].limb(k).data());
            }
        }
        const BaseConverter &conv = ctx_->converter(digit_limbs, missing);
        conv.convertInto(digit_poly, missing_rows.data());
    });

    // Stage 2: group the converted rows of all digits by target modulus
    // and push each group through one batched forward NTT — one twiddle
    // walk per modulus instead of β. The batched transform applies the
    // same butterfly sequence per row as the scalar one, so this is
    // bit-identical to the fused path's per-digit transforms.
    parallelFor(0, ext, [&](u64 k) {
        std::vector<u64 *> rows;
        rows.reserve(beta);
        for (u32 j = 0; j < beta; ++j)
            if (!own[j][k])
                rows.push_back(ups[j].limb(static_cast<u32>(k)).data());
        if (!rows.empty())
            ctx_->ntt(target[k]).forwardBatched(rows.data(), rows.size());
    });

    // Stage 3: KSKInP + ModDown, identical to the fused path.
    std::vector<std::unique_ptr<std::pair<RnsPoly, RnsPoly>>> parts(beta);
    parallelFor(0, beta, [&](u64 j) {
        RnsPoly part_b = ups[j];
        part_b.mulEwRestricted(key.b[j]);
        ups[j].mulEwRestricted(key.a[j]);
        parts[j] = std::make_unique<std::pair<RnsPoly, RnsPoly>>(
            std::move(part_b), std::move(ups[j]));
    });
    RnsPoly acc_b = std::move(parts[0]->first);
    RnsPoly acc_a = std::move(parts[0]->second);
    for (u32 j = 1; j < beta; ++j) {
        acc_b.addInplace(parts[j]->first);
        acc_a.addInplace(parts[j]->second);
    }
    return modDownEvalPair(*ctx_, acc_b, acc_a, level);
}

std::vector<RnsPoly>
Evaluator::hoistedDecompModUp(const RnsPoly &d, u32 level) const
{
    CROPHE_ASSERT(d.rep() == Rep::Eval, "hoisted ModUp expects Eval input");
    RnsPoly d_coeff = d;
    d_coeff.toCoeff();
    const u32 beta = ctx_->digitCount(level);
    std::vector<RnsPoly> digits(beta);
    parallelFor(0, beta, [&](u64 j) {
        digits[j] = fusedModUpEval(*ctx_, d, d_coeff, static_cast<u32>(j),
                                   level);
    });
    return digits;
}

std::pair<RnsPoly, RnsPoly>
Evaluator::hoistedInnerProd(const std::vector<RnsPoly> &digits,
                            const KswKey &key) const
{
    const u32 beta = static_cast<u32>(digits.size());
    CROPHE_ASSERT(beta >= 1 && beta <= key.digitCount(),
                  "digit count mismatch in hoisted inner product");
    std::vector<std::unique_ptr<std::pair<RnsPoly, RnsPoly>>> parts(beta);
    parallelFor(0, beta, [&](u64 j) {
        RnsPoly part_b = digits[j];
        part_b.mulEwRestricted(key.b[j]);
        RnsPoly part_a = digits[j];
        part_a.mulEwRestricted(key.a[j]);
        parts[j] = std::make_unique<std::pair<RnsPoly, RnsPoly>>(
            std::move(part_b), std::move(part_a));
    });
    RnsPoly acc_b = std::move(parts[0]->first);
    RnsPoly acc_a = std::move(parts[0]->second);
    for (u32 j = 1; j < beta; ++j) {
        acc_b.addInplace(parts[j]->first);
        acc_a.addInplace(parts[j]->second);
    }
    return {std::move(acc_b), std::move(acc_a)};
}

Ciphertext
Evaluator::hoistedRotate(const Ciphertext &ct,
                         const std::vector<RnsPoly> &digits, i64 r,
                         const KswKey &rk) const
{
    const u64 g = galoisElementForRotation(r, ctx_->n());
    const u32 beta = static_cast<u32>(digits.size());
    // ψ commutes with ModUp bit-for-bit (BConv is exact on [0, M)
    // representatives), so permuting the hoisted digits replaces the
    // per-rotation Decomp + ModUp entirely.
    std::vector<RnsPoly> rotated(beta);
    parallelFor(0, beta, [&](u64 j) {
        rotated[j] = applyAutomorphism(digits[j], g);
    });
    auto [ip_b, ip_a] = hoistedInnerProd(rotated, rk);
    auto [ks_b, ks_a] = modDownEvalPair(*ctx_, ip_b, ip_a, ct.level);

    Ciphertext out;
    out.level = ct.level;
    out.scale = ct.scale;
    out.b = applyAutomorphism(ct.b, g);
    out.b.addInplace(ks_b);
    out.a = std::move(ks_a);
    return out;
}

Ciphertext
Evaluator::mul(const Ciphertext &c0, const Ciphertext &c1,
               const KswKey &rlk) const
{
    CROPHE_ASSERT(c0.level == c1.level, "HMult level mismatch");

    RnsPoly d0 = c0.b;
    d0.mulEwInplace(c1.b);
    RnsPoly d1 = c0.a;
    d1.mulEwInplace(c1.b);
    RnsPoly t = c0.b;
    t.mulEwInplace(c1.a);
    d1.addInplace(t);
    RnsPoly d2 = c0.a;
    d2.mulEwInplace(c1.a);

    auto [ks_b, ks_a] = keySwitch(d2, c0.level, rlk);

    Ciphertext out;
    out.level = c0.level;
    out.scale = c0.scale * c1.scale;
    out.b = std::move(d0);
    out.b.addInplace(ks_b);
    out.a = std::move(d1);
    out.a.addInplace(ks_a);
    return out;
}

Ciphertext
Evaluator::rescale(const Ciphertext &ct) const
{
    CROPHE_ASSERT(ct.level >= 1, "cannot rescale at level 0");
    Ciphertext out;
    out.level = ct.level - 1;
    out.scale = ct.scale / static_cast<double>(ctx_->modValue(ct.level));

    RnsPoly b = ct.b;
    b.toCoeff();
    out.b = rescalePoly(*ctx_, b, ct.level);
    out.b.toEval();

    RnsPoly a = ct.a;
    a.toCoeff();
    out.a = rescalePoly(*ctx_, a, ct.level);
    out.a.toEval();
    return out;
}

Ciphertext
Evaluator::levelDown(const Ciphertext &ct, u32 target_level) const
{
    CROPHE_ASSERT(target_level <= ct.level, "levelDown cannot raise level");
    Ciphertext out;
    out.level = target_level;
    out.scale = ct.scale;
    auto basis = ctx_->qBasis(target_level);
    out.b = ct.b.restrictedTo(basis);
    out.a = ct.a.restrictedTo(basis);
    return out;
}

Ciphertext
Evaluator::rotate(const Ciphertext &ct, i64 r, const KswKey &rk) const
{
    u64 g = galoisElementForRotation(r, ctx_->n());
    RnsPoly b_rot = applyAutomorphism(ct.b, g);
    RnsPoly a_rot = applyAutomorphism(ct.a, g);

    auto [ks_b, ks_a] = keySwitch(a_rot, ct.level, rk);

    Ciphertext out;
    out.level = ct.level;
    out.scale = ct.scale;
    out.b = std::move(b_rot);
    out.b.addInplace(ks_b);
    out.a = std::move(ks_a);
    return out;
}

Ciphertext
Evaluator::conjugate(const Ciphertext &ct, const KswKey &ck) const
{
    u64 g = galoisElementForConjugation(ctx_->n());
    RnsPoly b_conj = applyAutomorphism(ct.b, g);
    RnsPoly a_conj = applyAutomorphism(ct.a, g);

    auto [ks_b, ks_a] = keySwitch(a_conj, ct.level, ck);

    Ciphertext out;
    out.level = ct.level;
    out.scale = ct.scale;
    out.b = std::move(b_conj);
    out.b.addInplace(ks_b);
    out.a = std::move(ks_a);
    return out;
}

}  // namespace crophe::fhe
