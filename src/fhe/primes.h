#ifndef CROPHE_FHE_PRIMES_H_
#define CROPHE_FHE_PRIMES_H_

/**
 * @file
 * Generation of NTT-friendly RNS primes.
 *
 * The RNS bases q_i (and extended bases p_j) must satisfy q ≡ 1 (mod 2N) so
 * that a primitive 2N-th root of unity exists, enabling the negacyclic NTT
 * over Z_q[X]/(X^N + 1).
 */

#include <vector>

#include "common/types.h"

namespace crophe::fhe {

/** Deterministic Miller-Rabin primality test, exact for 64-bit inputs. */
bool isPrime(u64 n);

/**
 * Generate @p count distinct primes of roughly @p bits bits with
 * q ≡ 1 (mod 2N), scanning downward from 2^bits.
 *
 * @param skip primes already in use that must not be re-issued.
 */
std::vector<u64> generateNttPrimes(u32 bits, u64 n, u32 count,
                                   const std::vector<u64> &skip = {});

/** Find a generator of the multiplicative group Z_q^*. */
u64 findGenerator(u64 q);

/** Find a primitive @p order -th root of unity mod @p q (order | q-1). */
u64 findPrimitiveRoot(u64 q, u64 order);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_PRIMES_H_
