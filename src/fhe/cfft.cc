#include "fhe/cfft.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"
#include "common/math_util.h"

namespace crophe::fhe {

namespace {

void
arrayBitReverse(std::vector<Cplx> &vals)
{
    u64 n = vals.size();
    u32 logn = log2Exact(n);
    for (u64 i = 0; i < n; ++i) {
        u64 j = bitReverse(i, logn);
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
}

}  // namespace

SpecialFft::SpecialFft(u64 n) : n_(n), m_(2 * n)
{
    CROPHE_ASSERT(isPow2(n) && n >= 4, "ring degree must be a power of two >= 4");
    ksi_.resize(m_ + 1);
    for (u64 j = 0; j <= m_; ++j) {
        double angle = 2.0 * std::numbers::pi * static_cast<double>(j) /
                       static_cast<double>(m_);
        ksi_[j] = Cplx(std::cos(angle), std::sin(angle));
    }
    rotGroup_.resize(n_ / 2);
    u64 five = 1;
    for (u64 j = 0; j < n_ / 2; ++j) {
        rotGroup_[j] = five;
        five = (five * 5) % m_;
    }
}

void
SpecialFft::embed(std::vector<Cplx> &vals) const
{
    const u64 slots_count = vals.size();
    CROPHE_ASSERT(slots_count == slots(), "slot count mismatch");
    arrayBitReverse(vals);
    for (u64 len = 2; len <= slots_count; len <<= 1) {
        for (u64 i = 0; i < slots_count; i += len) {
            u64 lenh = len >> 1;
            u64 lenq = len << 2;
            for (u64 j = 0; j < lenh; ++j) {
                u64 idx = (rotGroup_[j] % lenq) * (m_ / lenq);
                Cplx u = vals[i + j];
                Cplx v = vals[i + j + lenh] * ksi_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
SpecialFft::embedInverse(std::vector<Cplx> &vals) const
{
    const u64 slots_count = vals.size();
    CROPHE_ASSERT(slots_count == slots(), "slot count mismatch");
    for (u64 len = slots_count; len >= 1; len >>= 1) {
        if (len < 2)
            break;
        for (u64 i = 0; i < slots_count; i += len) {
            u64 lenh = len >> 1;
            u64 lenq = len << 2;
            for (u64 j = 0; j < lenh; ++j) {
                u64 idx = (lenq - (rotGroup_[j] % lenq)) * (m_ / lenq);
                Cplx u = vals[i + j] + vals[i + j + lenh];
                Cplx v = (vals[i + j] - vals[i + j + lenh]) * ksi_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    arrayBitReverse(vals);
    double inv = 1.0 / static_cast<double>(slots_count);
    for (auto &v : vals)
        v *= inv;
}

std::vector<Cplx>
embedDirect(const std::vector<double> &coeffs)
{
    const u64 n = coeffs.size();
    const u64 m = 2 * n;
    std::vector<Cplx> out(n / 2);
    u64 power = 1;
    for (u64 j = 0; j < n / 2; ++j) {
        Cplx acc(0.0, 0.0);
        for (u64 k = 0; k < n; ++k) {
            double angle = 2.0 * std::numbers::pi *
                           static_cast<double>((power * k) % m) /
                           static_cast<double>(m);
            acc += coeffs[k] * Cplx(std::cos(angle), std::sin(angle));
        }
        out[j] = acc;
        power = (power * 5) % m;
    }
    return out;
}

std::vector<double>
embedInverseDirect(const std::vector<Cplx> &slots, u64 n)
{
    const u64 m = 2 * n;
    const u64 half = n / 2;
    CROPHE_ASSERT(slots.size() == half, "slot count mismatch");
    std::vector<double> out(n, 0.0);
    for (u64 k = 0; k < n; ++k) {
        double acc = 0.0;
        u64 power = 1;
        for (u64 j = 0; j < half; ++j) {
            // Re(z_j * ζ^{-k·5^j})
            u64 e = (power * (k % m)) % m;
            double angle = -2.0 * std::numbers::pi * static_cast<double>(e) /
                           static_cast<double>(m);
            acc += slots[j].real() * std::cos(angle) -
                   slots[j].imag() * std::sin(angle);
            power = (power * 5) % m;
        }
        out[k] = acc / static_cast<double>(half);
    }
    return out;
}

}  // namespace crophe::fhe
