#include "fhe/encoding.h"

#include <cmath>

#include "common/logging.h"

namespace crophe::fhe {

namespace {

/** Map a signed real coefficient to its residues over the poly's basis. */
void
setSignedCoeff(RnsPoly &poly, u64 idx, double value)
{
    bool negative = value < 0;
    double mag = std::abs(value);
    CROPHE_ASSERT(mag < 0x1.0p62, "coefficient too large to encode: ", value);
    u64 v = static_cast<u64>(std::llround(mag));
    for (u32 i = 0; i < poly.limbCount(); ++i) {
        const Modulus &m = poly.mod(i);
        u64 r = m.reduce64(v);
        poly.limb(i)[idx] = negative ? m.neg(r) : r;
    }
}

}  // namespace

Encoder::Encoder(const FheContext &ctx) : ctx_(&ctx), fft_(ctx.n())
{
}

Plaintext
Encoder::encode(const std::vector<Cplx> &values, u32 level,
                double scale) const
{
    if (scale == 0.0)
        scale = ctx_->defaultScale();
    const u64 half = slots();

    std::vector<Cplx> vals(half, Cplx(0.0, 0.0));
    for (u64 i = 0; i < values.size() && i < half; ++i)
        vals[i] = values[i];

    fft_.embedInverse(vals);

    Plaintext pt;
    pt.scale = scale;
    pt.level = level;
    pt.poly = RnsPoly(*ctx_, ctx_->qBasis(level), Rep::Coeff);
    for (u64 j = 0; j < half; ++j) {
        setSignedCoeff(pt.poly, j, vals[j].real() * scale);
        setSignedCoeff(pt.poly, j + half, vals[j].imag() * scale);
    }
    pt.poly.toEval();
    return pt;
}

Plaintext
Encoder::encodeReal(const std::vector<double> &values, u32 level,
                    double scale) const
{
    std::vector<Cplx> v(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        v[i] = Cplx(values[i], 0.0);
    return encode(v, level, scale);
}

Plaintext
Encoder::encodeCoeffs(const std::vector<double> &coeffs, u32 level,
                      double scale) const
{
    Plaintext pt;
    pt.scale = scale;
    pt.level = level;
    pt.poly = RnsPoly(*ctx_, ctx_->qBasis(level), Rep::Coeff);
    for (u64 i = 0; i < coeffs.size() && i < ctx_->n(); ++i)
        setSignedCoeff(pt.poly, i, coeffs[i]);
    pt.poly.toEval();
    return pt;
}

std::vector<Cplx>
Encoder::decode(const Plaintext &pt) const
{
    RnsPoly poly = pt.poly;
    if (poly.rep() == Rep::Eval)
        poly.toCoeff();

    // CRT-reconstruct and center each coefficient.
    BigUInt big_q = ctx_->bigQ(pt.level);
    BigUInt half_q = big_q.half();
    const u64 n = ctx_->n();
    const u64 half = n / 2;
    std::vector<Cplx> vals(half);
    std::vector<double> coeffs(n);
    for (u64 i = 0; i < n; ++i) {
        BigUInt c = poly.reconstructCoeff(i);
        if (half_q < c) {
            BigUInt neg = big_q;
            neg.subInplace(c);
            coeffs[i] = -neg.toDouble();
        } else {
            coeffs[i] = c.toDouble();
        }
        coeffs[i] /= pt.scale;
    }
    for (u64 j = 0; j < half; ++j)
        vals[j] = Cplx(coeffs[j], coeffs[j + half]);
    fft_.embed(vals);
    return vals;
}

}  // namespace crophe::fhe
