#ifndef CROPHE_FHE_MODARITH_H_
#define CROPHE_FHE_MODARITH_H_

/**
 * @file
 * Modular arithmetic over word-sized primes.
 *
 * CROPHE PE lanes implement Barrett reduction (Section IV-A); this module is
 * the functional counterpart used by the CKKS library. A Modulus caches the
 * two-word Barrett constant floor(2^128 / q) for its prime, and ShoupMul
 * provides the precomputed-quotient multiplication that NTT butterflies use.
 */

#include "common/logging.h"
#include "common/types.h"

namespace crophe::fhe {

/**
 * A word-sized prime modulus with a cached Barrett constant.
 *
 * Valid moduli are odd primes in (2, 2^60); this covers the 28/36/64-bit
 * machine-word regimes evaluated in the paper (a "64-bit word" accelerator
 * still operates on sub-62-bit RNS primes).
 */
class Modulus
{
  public:
    Modulus() : q_(0), ratio0_(0), ratio1_(0) {}

    /** @param q odd prime, 2 < q < 2^60. */
    explicit Modulus(u64 q);

    u64 value() const { return q_; }
    u32 bits() const;

    /** Low word of floor(2^128 / q) (kernel BarrettView plumbing). */
    u64 barrettLo() const { return ratio0_; }
    /** High word of floor(2^128 / q). */
    u64 barrettHi() const { return ratio1_; }

    /** (a + b) mod q; inputs must already be < q. */
    u64
    add(u64 a, u64 b) const
    {
        u64 s = a + b;
        return s >= q_ ? s - q_ : s;
    }

    /** (a - b) mod q; inputs must already be < q. */
    u64
    sub(u64 a, u64 b) const
    {
        return a >= b ? a - b : a + q_ - b;
    }

    /** (-a) mod q. */
    u64 neg(u64 a) const { return a == 0 ? 0 : q_ - a; }

    /**
     * Barrett reduction of an arbitrary 128-bit value to [0, q).
     *
     * Computes quot = floor(x * floor(2^128/q) / 2^128), which
     * underestimates floor(x/q) by at most 2; the tail loop corrects.
     */
    u64
    reduce(u128 x) const
    {
        u64 xlo = static_cast<u64>(x);
        u64 xhi = static_cast<u64>(x >> 64);
        u64 carry =
            static_cast<u64>((static_cast<u128>(xlo) * ratio0_) >> 64);
        u128 mid = static_cast<u128>(xlo) * ratio1_ +
                   static_cast<u128>(xhi) * ratio0_ + carry;
        u64 quot = static_cast<u64>(mid >> 64) + xhi * ratio1_;
        u64 r = xlo - quot * q_;
        while (r >= q_)
            r -= q_;
        return r;
    }

    /** Reduce a single 64-bit value to [0, q). */
    u64 reduce64(u64 x) const { return reduce(static_cast<u128>(x)); }

    /** (a * b) mod q via Barrett. */
    u64
    mul(u64 a, u64 b) const
    {
        return reduce(static_cast<u128>(a) * b);
    }

    /** a^e mod q by square-and-multiply. */
    u64 pow(u64 a, u64 e) const;

    /** Multiplicative inverse; requires gcd(a, q) == 1. */
    u64 inv(u64 a) const;

  private:
    u64 q_;
    u64 ratio0_;  ///< low word of floor(2^128 / q)
    u64 ratio1_;  ///< high word of floor(2^128 / q)
};

/**
 * Shoup multiplication: multiply by a fixed operand @p w with a precomputed
 * quotient — one mulhi, one mullo, one conditional correction. Used in NTT
 * butterflies where the twiddle factor is a constant.
 */
class ShoupMul
{
  public:
    ShoupMul() : w_(0), wShoup_(0) {}

    ShoupMul(u64 w, const Modulus &mod)
        : w_(w),
          wShoup_(static_cast<u64>((static_cast<u128>(w) << 64) /
                                   mod.value()))
    {
        // The precomputed quotient floor(w * 2^64 / q) only fits — and
        // mulMod's single correction step only suffices — when w < q.
        CROPHE_ASSERT(w < mod.value(), "Shoup operand ", w,
                      " must be reduced mod ", mod.value());
    }

    u64 operand() const { return w_; }

    /** (a * w) mod q; requires a < q; result in [0, q). */
    u64
    mul(u64 a, u64 q) const
    {
        u64 hi = static_cast<u64>((static_cast<u128>(a) * wShoup_) >> 64);
        u64 r = a * w_ - hi * q;
        return r >= q ? r - q : r;
    }

    u64 quotient() const { return wShoup_; }

  private:
    u64 w_;
    u64 wShoup_;
};

/** floor(w·2^64 / q), the precomputed Shoup quotient; requires w < q. */
inline u64
shoupQuotient(u64 w, u64 q)
{
    return static_cast<u64>((static_cast<u128>(w) << 64) / q);
}

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_MODARITH_H_
