#ifndef CROPHE_FHE_ENCODING_H_
#define CROPHE_FHE_ENCODING_H_

/**
 * @file
 * CKKS plaintexts and the slot <-> polynomial encoder.
 */

#include <vector>

#include "common/types.h"
#include "fhe/cfft.h"
#include "fhe/rns.h"

namespace crophe::fhe {

/** An encoded CKKS plaintext: an RNS polynomial plus scale/level. */
struct Plaintext
{
    RnsPoly poly;   ///< Eval representation over qBasis(level)
    double scale = 0.0;
    u32 level = 0;
};

/**
 * Encoder between complex slot vectors (length N/2) and plaintexts.
 *
 * The fast special-FFT path is used; embedDirect/embedInverseDirect in
 * fhe/cfft.h are the O(N²) references the tests validate against.
 */
class Encoder
{
  public:
    explicit Encoder(const FheContext &ctx);

    u64 slots() const { return ctx_->n() / 2; }

    /**
     * Encode @p values (padded/truncated to N/2 slots) at @p level with
     * scale @p scale (0 = context default).
     */
    Plaintext encode(const std::vector<Cplx> &values, u32 level,
                     double scale = 0.0) const;

    /** Real-vector convenience overload. */
    Plaintext encodeReal(const std::vector<double> &values, u32 level,
                         double scale = 0.0) const;

    /** Decode back to N/2 complex slots. */
    std::vector<Cplx> decode(const Plaintext &pt) const;

    /**
     * Encode signed integer coefficients (already scaled) directly;
     * used by tests and by key-switching constants.
     */
    Plaintext encodeCoeffs(const std::vector<double> &coeffs, u32 level,
                           double scale) const;

  private:
    const FheContext *ctx_;
    SpecialFft fft_;
};

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_ENCODING_H_
