#include "fhe/keys.h"

#include "common/logging.h"
#include "fhe/automorphism.h"
#include "fhe/biguint.h"

namespace crophe::fhe {

u64
KswKey::sizeWords() const
{
    u64 words = 0;
    for (const auto &poly : b)
        words += static_cast<u64>(poly.limbCount()) * poly.n();
    for (const auto &poly : a)
        words += static_cast<u64>(poly.limbCount()) * poly.n();
    return words;
}

KeyGenerator::KeyGenerator(const FheContext &ctx, u64 seed)
    : ctx_(&ctx), rng_(seed)
{
    auto full = ctx.qpBasis(ctx.maxLevel());
    sk_.s = sampleTernary(full);
    sk_.s.toEval();
}

RnsPoly
KeyGenerator::sampleTernary(const std::vector<u32> &basis)
{
    RnsPoly poly(*ctx_, basis, Rep::Coeff);
    const u64 n = ctx_->n();
    std::vector<int> coeffs(n);
    for (u64 i = 0; i < n; ++i)
        coeffs[i] = rng_.nextTernary();
    for (u32 l = 0; l < poly.limbCount(); ++l) {
        const Modulus &m = poly.mod(l);
        for (u64 i = 0; i < n; ++i) {
            int c = coeffs[i];
            poly.limb(l)[i] = c == 0 ? 0 : (c > 0 ? 1 : m.value() - 1);
        }
    }
    return poly;
}

RnsPoly
KeyGenerator::sampleNoise(const std::vector<u32> &basis)
{
    RnsPoly poly(*ctx_, basis, Rep::Coeff);
    const u64 n = ctx_->n();
    std::vector<i64> coeffs(n);
    for (u64 i = 0; i < n; ++i)
        coeffs[i] = rng_.nextNoise();
    for (u32 l = 0; l < poly.limbCount(); ++l) {
        const Modulus &m = poly.mod(l);
        for (u64 i = 0; i < n; ++i) {
            i64 c = coeffs[i];
            poly.limb(l)[i] =
                c >= 0 ? m.reduce64(static_cast<u64>(c))
                       : m.neg(m.reduce64(static_cast<u64>(-c)));
        }
    }
    return poly;
}

PublicKey
KeyGenerator::makePublicKey()
{
    auto basis = ctx_->qBasis(ctx_->maxLevel());
    PublicKey pk;
    pk.a = RnsPoly(*ctx_, basis, Rep::Eval);
    pk.a.uniformRandom(rng_);
    RnsPoly e = sampleNoise(basis);
    e.toEval();

    RnsPoly s_q = sk_.s.restrictedTo(basis);
    pk.b = pk.a;
    pk.b.mulEwInplace(s_q);
    pk.b.negateInplace();
    pk.b.addInplace(e);
    return pk;
}

KswKey
KeyGenerator::makeKswKey(const RnsPoly &s_from)
{
    const u32 top = ctx_->maxLevel();
    auto full = ctx_->qpBasis(top);
    const u32 dnum = ctx_->dnum();

    // Gadget factors g_j = (Q/D_j)·[(Q/D_j)^{-1} mod D_j]: g_j ≡ 1 mod the
    // digit-j moduli and ≡ 0 mod every other q_i; computed per modulus.
    std::vector<u64> q_vals;
    for (u32 i = 0; i <= top; ++i)
        q_vals.push_back(ctx_->modValue(i));

    KswKey key;
    for (u32 j = 0; j < dnum; ++j) {
        auto digit = ctx_->digitLimbs(j, top);
        std::vector<u64> d_vals, dhat_vals;
        for (u32 i = 0; i <= top; ++i) {
            bool in_digit = false;
            for (u32 d : digit)
                in_digit |= (d == i);
            (in_digit ? d_vals : dhat_vals).push_back(q_vals[i]);
        }
        BigUInt dhat = dhat_vals.empty() ? BigUInt(1) : productOf(dhat_vals);
        BigUInt d_prod = productOf(d_vals);
        // (Q/D_j)^{-1} mod D_j via CRT over the digit moduli.
        // g_j = dhat * inv; compute g_j mod every context modulus directly:
        // g_j ≡ dhat·[dhat^{-1} mod D_j] — build the inverse as an integer
        // with CRT, then multiply BigUInts.
        BigUInt inv_big(0);
        for (u64 dq : d_vals) {
            Modulus dm(dq);
            u64 inv_mod = dm.inv(dhat.modSmall(dq));
            // CRT accumulate: inv_big += inv_mod·(D_j/dq)·[(D_j/dq)^{-1}]_dq
            std::vector<u64> others;
            for (u64 o : d_vals)
                if (o != dq)
                    others.push_back(o);
            BigUInt ohat = others.empty() ? BigUInt(1) : productOf(others);
            u64 comb = dm.mul(inv_mod, dm.inv(ohat.modSmall(dq)));
            inv_big.addMulSmall(ohat, comb);
        }
        while (!(inv_big < d_prod))
            inv_big.subInplace(d_prod);

        RnsPoly a(*ctx_, full, Rep::Eval);
        a.uniformRandom(rng_);
        RnsPoly e = sampleNoise(full);
        e.toEval();

        // b = -a·s + e + P·g_j·s_from, with P·g_j reduced per modulus.
        std::vector<u64> factor(full.size());
        for (std::size_t k = 0; k < full.size(); ++k) {
            const Modulus &m = ctx_->mod(full[k]);
            u64 g_mod = m.mul(dhat.modSmall(m.value()),
                              inv_big.modSmall(m.value()));
            u64 p_mod = ctx_->bigP().modSmall(m.value());
            factor[k] = m.mul(g_mod, p_mod);
        }

        RnsPoly payload = s_from;
        payload.mulScalarInplace(factor);

        RnsPoly b = a;
        b.mulEwInplace(sk_.s);
        b.negateInplace();
        b.addInplace(e);
        b.addInplace(payload);

        key.b.push_back(std::move(b));
        key.a.push_back(std::move(a));
    }
    return key;
}

KswKey
KeyGenerator::makeRelinKey()
{
    RnsPoly s2 = sk_.s;
    s2.mulEwInplace(sk_.s);
    return makeKswKey(s2);
}

KswKey
KeyGenerator::makeRotationKey(i64 r)
{
    u64 g = galoisElementForRotation(r, ctx_->n());
    RnsPoly s_rot = applyAutomorphism(sk_.s, g);
    return makeKswKey(s_rot);
}

KswKey
KeyGenerator::makeConjugationKey()
{
    u64 g = galoisElementForConjugation(ctx_->n());
    RnsPoly s_conj = applyAutomorphism(sk_.s, g);
    return makeKswKey(s_conj);
}

}  // namespace crophe::fhe
