#ifndef CROPHE_FHE_NTT_FOURSTEP_H_
#define CROPHE_FHE_NTT_FOURSTEP_H_

/**
 * @file
 * Four-step (decomposed) negacyclic NTT, N = N1 × N2.
 *
 * This is the computational substrate of CROPHE's NTT-decomposition dataflow
 * optimization (Section V-B): the length-N transform becomes
 *   N1 independent length-N2 column NTTs  →  element-wise twiddle multiply
 *   →  N2 independent length-N1 row NTTs,
 * which turns the loop nest  log N ▷ N  into
 *   N1 ▷ log N2 ▷ N2  →  N1 ▷ N2  →  N2 ▷ log N1 ▷ N1,
 * so the column step pipelines with predecessors along N1 and the row step
 * pipelines with successors along N2, halving orientation switches.
 *
 * Functionally, the negacyclic transform is realized by twisting the input
 * with ψ^i and running a cyclic four-step transform with ω = ψ².
 */

#include <vector>

#include "common/types.h"
#include "fhe/modarith.h"

namespace crophe::fhe {

/** Four-step negacyclic NTT for one (N1, N2, q) configuration. */
class FourStepNtt
{
  public:
    /**
     * @param n1,n2 power-of-two factors with n = n1*n2;
     * @param mod prime ≡ 1 mod 2·n1·n2.
     */
    FourStepNtt(u64 n1, u64 n2, const Modulus &mod);

    u64 n() const { return n1_ * n2_; }
    u64 n1() const { return n1_; }
    u64 n2() const { return n2_; }

    /**
     * Forward transform, natural-order output:
     * out[k] = Σ_i a[i] ψ^{i(2k+1)}. Matches nttNaiveNegacyclic().
     */
    std::vector<u64> forward(const std::vector<u64> &a) const;

    /** Inverse of forward(). */
    std::vector<u64> inverse(const std::vector<u64> &a) const;

    /**
     * Number of data orientation switches incurred by the sequence
     * iNTT → elementwise → NTT when this decomposition is used (2) versus
     * the undecomposed transform (4); exposed for scheduler tests.
     */
    static u32 orientationSwitchesDecomposed() { return 2; }
    static u32 orientationSwitchesMonolithic() { return 4; }

  private:
    void cyclicFourStep(std::vector<u64> &a, bool inverse) const;

    u64 n1_;
    u64 n2_;
    Modulus mod_;
    u64 psi_;
    u64 omega_;                    ///< ψ², an N-th root of unity
    std::vector<u64> twist_;       ///< ψ^i
    std::vector<u64> twistInv_;    ///< ψ^{-i} / N folded at inverse
};

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_NTT_FOURSTEP_H_
