#ifndef CROPHE_FHE_NTT_FOURSTEP_H_
#define CROPHE_FHE_NTT_FOURSTEP_H_

/**
 * @file
 * Four-step (decomposed) negacyclic NTT, N = N1 × N2.
 *
 * This is the computational substrate of CROPHE's NTT-decomposition dataflow
 * optimization (Section V-B): the length-N transform becomes
 *   N1 independent length-N2 column NTTs  →  element-wise twiddle multiply
 *   →  N2 independent length-N1 row NTTs,
 * which turns the loop nest  log N ▷ N  into
 *   N1 ▷ log N2 ▷ N2  →  N1 ▷ N2  →  N2 ▷ log N1 ▷ N1,
 * so the column step pipelines with predecessors along N1 and the row step
 * pipelines with successors along N2, halving orientation switches.
 *
 * Functionally, the negacyclic transform is realized by twisting the input
 * with ψ^i and running a cyclic four-step transform with ω = ψ².
 *
 * All data-independent work — the column/row CyclicNtt plans for both
 * directions, the N1×N2 step-2 twiddle matrix, the ψ^i twist factors and
 * 1/N — is precomputed at construction with Shoup quotients, so a
 * transform performs no modular inversions, pow() calls, or chained
 * twiddle generation.
 */

#include <vector>

#include "common/aligned.h"
#include "common/types.h"
#include "fhe/modarith.h"
#include "fhe/ntt.h"

namespace crophe::fhe {

/** Four-step negacyclic NTT for one (N1, N2, q) configuration. */
class FourStepNtt
{
  public:
    /**
     * @param n1,n2 power-of-two factors with n = n1*n2;
     * @param mod prime ≡ 1 mod 2·n1·n2.
     */
    FourStepNtt(u64 n1, u64 n2, const Modulus &mod);

    u64 n() const { return n1_ * n2_; }
    u64 n1() const { return n1_; }
    u64 n2() const { return n2_; }

    /**
     * Forward transform, natural-order output:
     * out[k] = Σ_i a[i] ψ^{i(2k+1)}. Matches nttNaiveNegacyclic().
     */
    std::vector<u64> forward(const std::vector<u64> &a) const;

    /** Inverse of forward(). */
    std::vector<u64> inverse(const std::vector<u64> &a) const;

    /**
     * Number of data orientation switches incurred by the sequence
     * iNTT → elementwise → NTT when this decomposition is used (2) versus
     * the undecomposed transform (4); exposed for scheduler tests.
     */
    static u32 orientationSwitchesDecomposed() { return 2; }
    static u32 orientationSwitchesMonolithic() { return 4; }

  private:
    /** Per-element constants with their Shoup quotients, index-aligned. */
    struct ShoupTable
    {
        AlignedVec<u64> w;
        AlignedVec<u64> wShoup;
    };

    void cyclicFourStep(std::vector<u64> &a, bool inverse) const;
    ShoupTable buildTwiddleMatrix(u64 omega) const;

    u64 n1_;
    u64 n2_;
    Modulus mod_;
    u64 psi_;
    u64 omega_;           ///< ψ², an N-th root of unity
    CyclicNtt colFwd_;    ///< length-N2 plan, root ω^N1
    CyclicNtt rowFwd_;    ///< length-N1 plan, root ω^N2
    CyclicNtt colInv_;    ///< length-N2 plan, root ω^{-N1}
    CyclicNtt rowInv_;    ///< length-N1 plan, root ω^{-N2}
    ShoupTable twFwd_;    ///< ω^{i1·k2} at index i1·N2 + k2
    ShoupTable twInv_;    ///< ω^{-i1·k2}
    ShoupTable twist_;    ///< ψ^i
    ShoupTable twistInv_; ///< ψ^{-i}
    u64 nInv_;            ///< N^{-1} mod q
    u64 nInvShoup_;
};

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_NTT_FOURSTEP_H_
