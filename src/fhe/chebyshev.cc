#include "fhe/chebyshev.h"

#include <cmath>

#include "common/logging.h"

namespace crophe::fhe {

Ciphertext
evalPolyHorner(const Evaluator &eval, const Ciphertext &x,
               const std::vector<double> &coeffs, const KswKey &rlk)
{
    CROPHE_ASSERT(coeffs.size() >= 2, "need degree >= 1");
    const u32 degree = static_cast<u32>(coeffs.size()) - 1;
    CROPHE_ASSERT(x.level >= degree,
                  "insufficient levels: need ", degree, ", have ", x.level);

    // acc = c_d; then repeatedly acc = acc·x + c_i.
    // We keep acc as a ciphertext at progressively lower levels.
    Ciphertext acc = eval.mulConst(x, coeffs[degree]);
    acc = eval.rescale(acc);
    acc = eval.addConst(acc, coeffs[degree - 1]);

    for (u32 i = degree - 1; i-- > 0;) {
        Ciphertext x_here = eval.levelDown(x, acc.level);
        acc = eval.mul(acc, x_here, rlk);
        acc = eval.rescale(acc);
        acc = eval.addConst(acc, coeffs[i]);
    }
    return acc;
}

std::vector<double>
cosineMonomialCoeffs(double t, u32 degree)
{
    // cos(t·x) = sum_k (-1)^k (t·x)^{2k} / (2k)!  truncated at @p degree.
    std::vector<double> coeffs(degree + 1, 0.0);
    double term = 1.0;  // t^{2k} / (2k)!
    int sign = 1;
    for (u32 k = 0; 2 * k <= degree; ++k) {
        coeffs[2 * k] = sign * term;
        sign = -sign;
        term *= t * t / ((2.0 * k + 1.0) * (2.0 * k + 2.0));
    }
    return coeffs;
}

double
evalPolyRef(const std::vector<double> &coeffs, double x)
{
    double acc = 0.0;
    for (std::size_t i = coeffs.size(); i-- > 0;)
        acc = acc * x + coeffs[i];
    return acc;
}

}  // namespace crophe::fhe
