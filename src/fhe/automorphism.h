#ifndef CROPHE_FHE_AUTOMORPHISM_H_
#define CROPHE_FHE_AUTOMORPHISM_H_

/**
 * @file
 * Galois automorphisms X -> X^g of Z_q[X]/(X^N + 1).
 *
 * HRot applies the automorphism with g = 5^r (mod 2N) to rotate the CKKS
 * slot vector left by r (Section II-A). In the coefficient representation
 * the map permutes coefficient i to i·g mod 2N with a sign flip when the
 * destination wraps past N; in the NTT (evaluation) representation it is a
 * pure permutation of evaluation points, which is what CROPHE's hardware
 * shift networks implement.
 */

#include <vector>

#include "common/types.h"
#include "fhe/modarith.h"
#include "fhe/rns.h"

namespace crophe::fhe {

/** Galois element for a left rotation by @p r slots: 5^r mod 2N. */
u64 galoisElementForRotation(i64 r, u64 n);

/** Galois element for complex conjugation: 2N - 1. */
u64 galoisElementForConjugation(u64 n);

/**
 * Apply X -> X^g to one coefficient-domain limb of @p n coefficients.
 * out[i·g mod 2N adjusted] = ±in[i]; out must not alias in and is fully
 * overwritten.
 */
void applyAutomorphismCoeff(const u64 *in, u64 *out, u64 n, u64 galois,
                            const Modulus &mod);

/**
 * Permutation table for the NTT-domain automorphism given this library's
 * bit-reversed negacyclic NTT ordering: output index k takes input index
 * table[k].
 */
std::vector<u64> evalAutomorphismTable(u64 galois, u64 n);

/** Apply X -> X^g to a full RnsPoly (either representation). */
RnsPoly applyAutomorphism(const RnsPoly &in, u64 galois);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_AUTOMORPHISM_H_
