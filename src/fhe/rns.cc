#include "fhe/rns.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "fhe/automorphism.h"
#include "fhe/bconv.h"
#include "fhe/kernels/autotune.h"
#include "fhe/kernels/kernels.h"
#include "fhe/primes.h"

namespace crophe::fhe {

namespace {

inline kernels::BarrettView
barrettView(const Modulus &m)
{
    return {m.value(), m.barrettLo(), m.barrettHi()};
}

}  // namespace

FheContext::FheContext(const FheContextParams &params)
    : n_(params.n),
      levels_(params.levels),
      alpha_(params.alpha),
      dnum_(ceilDiv(params.levels + 1, params.alpha)),
      scale_(params.scale)
{
    CROPHE_ASSERT(isPow2(n_), "N must be a power of two, got ", n_);
    CROPHE_ASSERT(alpha_ >= 1, "alpha must be positive");

    // q_0 (largest, holds the final message), q_1..q_L (scaling primes),
    // then p_0..p_{alpha-1} (special primes). All distinct.
    std::vector<u64> used;
    auto q0 = generateNttPrimes(params.firstModulusBits, n_, 1, used);
    used.insert(used.end(), q0.begin(), q0.end());
    auto qi = generateNttPrimes(params.scalingModulusBits, n_, levels_, used);
    used.insert(used.end(), qi.begin(), qi.end());
    auto pj = generateNttPrimes(params.specialModulusBits, n_, alpha_, used);

    std::vector<u64> all;
    all.push_back(q0[0]);
    all.insert(all.end(), qi.begin(), qi.end());
    all.insert(all.end(), pj.begin(), pj.end());

    for (u64 q : all) {
        moduli_.emplace_back(q);
        ntt_.push_back(std::make_unique<NttTables>(n_, moduli_.back()));
    }
    bigP_ = productOf(pj);

    // Pre-tune the batched-NTT tile for the key-switch hot path so the
    // first keySwitch on this context doesn't pay the measurement. Tile
    // choice only ever affects speed, never results.
    kernels::autotuner().prepare(n_);
}

FheContext::~FheContext() = default;

std::vector<u32>
FheContext::qBasis(u32 level) const
{
    CROPHE_ASSERT(level <= levels_, "level out of range: ", level);
    std::vector<u32> basis(level + 1);
    for (u32 i = 0; i <= level; ++i)
        basis[i] = i;
    return basis;
}

std::vector<u32>
FheContext::pBasis() const
{
    std::vector<u32> basis(alpha_);
    for (u32 i = 0; i < alpha_; ++i)
        basis[i] = qCount() + i;
    return basis;
}

std::vector<u32>
FheContext::qpBasis(u32 level) const
{
    auto basis = qBasis(level);
    auto p = pBasis();
    basis.insert(basis.end(), p.begin(), p.end());
    return basis;
}

std::vector<u32>
FheContext::digitLimbs(u32 j, u32 level) const
{
    std::vector<u32> limbs;
    for (u32 i = j * alpha_; i < (j + 1) * alpha_ && i <= level; ++i)
        limbs.push_back(i);
    CROPHE_ASSERT(!limbs.empty(), "digit ", j, " empty at level ", level);
    return limbs;
}

BigUInt
FheContext::bigQ(u32 level) const
{
    std::vector<u64> qs;
    for (u32 i = 0; i <= level; ++i)
        qs.push_back(moduli_[i].value());
    return productOf(qs);
}

const BaseConverter &
FheContext::converter(const std::vector<u32> &from,
                      const std::vector<u32> &to) const
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    auto key = std::make_pair(from, to);
    auto it = convCache_.find(key);
    if (it == convCache_.end()) {
        it = convCache_
                 .emplace(std::move(key),
                          std::make_unique<BaseConverter>(*this, from, to))
                 .first;
    }
    return *it->second;
}

const AlignedVec<u64> &
FheContext::autEvalTable(u64 galois) const
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    auto it = autCache_.find(galois);
    if (it == autCache_.end()) {
        auto table = evalAutomorphismTable(galois, n_);
        auto stored = std::make_unique<AlignedVec<u64>>();
        stored->assign(table.size());
        std::copy(table.begin(), table.end(), stored->data());
        it = autCache_.emplace(galois, std::move(stored)).first;
    }
    return *it->second;
}

RnsPoly::RnsPoly(const FheContext &ctx, std::vector<u32> basis, Rep rep)
    : ctx_(&ctx), rep_(rep), basis_(std::move(basis))
{
    // Round the row stride up to a cache line so every limb row starts
    // 64-byte aligned in the slab.
    stride_ = (ctx.n() + 7) & ~static_cast<u64>(7);
    data_.assign(basis_.size() * stride_);
}

void
RnsPoly::copyLimbFrom(u32 dst_limb, const RnsPoly &src, u32 src_limb)
{
    auto d = limb(dst_limb);
    auto s = src.limb(src_limb);
    CROPHE_ASSERT(d.size() == s.size(), "limb size mismatch in copy");
    std::copy(s.begin(), s.end(), d.begin());
}

void
RnsPoly::addInplace(const RnsPoly &other)
{
    CROPHE_ASSERT(basis_ == other.basis_ && rep_ == other.rep_,
                  "basis/representation mismatch in add");
    const auto &kt = kernels::table();
    // Limbs are independent: one chunk per limb, disjoint writes.
    parallelFor(0, limbCount(), [&](u64 i) {
        kt.addMod(limb(i).data(), other.limb(i).data(), n(),
                  mod(i).value());
    });
}

void
RnsPoly::subInplace(const RnsPoly &other)
{
    CROPHE_ASSERT(basis_ == other.basis_ && rep_ == other.rep_,
                  "basis/representation mismatch in sub");
    const auto &kt = kernels::table();
    parallelFor(0, limbCount(), [&](u64 i) {
        kt.subMod(limb(i).data(), other.limb(i).data(), n(),
                  mod(i).value());
    });
}

void
RnsPoly::negateInplace()
{
    const auto &kt = kernels::table();
    parallelFor(0, limbCount(),
                [&](u64 i) { kt.negMod(limb(i).data(), n(), mod(i).value()); });
}

void
RnsPoly::mulEwInplace(const RnsPoly &other)
{
    CROPHE_ASSERT(basis_ == other.basis_, "basis mismatch in mul");
    CROPHE_ASSERT(rep_ == Rep::Eval && other.rep_ == Rep::Eval,
                  "element-wise multiply requires Eval representation");
    const auto &kt = kernels::table();
    parallelFor(0, limbCount(), [&](u64 i) {
        kernels::BarrettView b = barrettView(mod(i));
        kt.mulModBarrett(limb(i).data(), other.limb(i).data(), n(), b);
    });
}

void
RnsPoly::mulEwRestricted(const RnsPoly &other)
{
    CROPHE_ASSERT(rep_ == Rep::Eval && other.rep_ == Rep::Eval,
                  "element-wise multiply requires Eval representation");
    std::vector<u32> map(limbCount());
    for (u32 i = 0; i < limbCount(); ++i) {
        auto it = std::find(other.basis_.begin(), other.basis_.end(),
                            basis_[i]);
        CROPHE_ASSERT(it != other.basis_.end(),
                      "operand basis is not a superset in mul");
        map[i] = static_cast<u32>(it - other.basis_.begin());
    }
    const auto &kt = kernels::table();
    parallelFor(0, limbCount(), [&](u64 i) {
        kernels::BarrettView b = barrettView(mod(i));
        kt.mulModBarrett(limb(i).data(), other.limb(map[i]).data(), n(), b);
    });
}

void
RnsPoly::mulScalarInplace(const std::vector<u64> &scalar_per_limb)
{
    CROPHE_ASSERT(scalar_per_limb.size() == limbCount(),
                  "scalar vector size mismatch");
    const auto &kt = kernels::table();
    parallelFor(0, limbCount(), [&](u64 i) {
        const u64 q = mod(i).value();
        const u64 s = scalar_per_limb[i];
        kt.mulScalarShoup(limb(i).data(), n(), q, s, shoupQuotient(s, q));
    });
}

void
RnsPoly::mulConstInplace(u64 c)
{
    const auto &kt = kernels::table();
    parallelFor(0, limbCount(), [&](u64 i) {
        const Modulus &m = mod(i);
        const u64 s = m.reduce64(c);
        kt.mulScalarShoup(limb(i).data(), n(), m.value(), s,
                          shoupQuotient(s, m.value()));
    });
}

void
RnsPoly::toEval()
{
    CROPHE_ASSERT(rep_ == Rep::Coeff, "already in Eval representation");
    parallelFor(0, limbCount(),
                [&](u64 i) { ctx_->ntt(basis_[i]).forward(limb(i).data()); });
    rep_ = Rep::Eval;
}

void
RnsPoly::toCoeff()
{
    CROPHE_ASSERT(rep_ == Rep::Eval, "already in Coeff representation");
    parallelFor(0, limbCount(),
                [&](u64 i) { ctx_->ntt(basis_[i]).inverse(limb(i).data()); });
    rep_ = Rep::Coeff;
}

void
RnsPoly::dropLastLimb()
{
    CROPHE_ASSERT(limbCount() > 1, "cannot drop the only limb");
    // O(1): the slab keeps its storage; only the logical row count drops.
    basis_.pop_back();
}

RnsPoly
RnsPoly::restrictedTo(const std::vector<u32> &basis) const
{
    RnsPoly out(*ctx_, basis, rep_);
    for (u32 k = 0; k < basis.size(); ++k) {
        auto it = std::find(basis_.begin(), basis_.end(), basis[k]);
        CROPHE_ASSERT(it != basis_.end(),
                      "limb for modulus index ", basis[k], " not present");
        out.copyLimbFrom(k, *this, static_cast<u32>(it - basis_.begin()));
    }
    return out;
}

BigUInt
RnsPoly::reconstructCoeff(u64 coeff_idx) const
{
    CROPHE_ASSERT(rep_ == Rep::Coeff, "reconstruct requires Coeff rep");
    // Standard CRT: x = sum_i [x_i * (M/m_i)^{-1} mod m_i] * (M/m_i) mod M.
    std::vector<u64> mods;
    for (u32 i = 0; i < limbCount(); ++i)
        mods.push_back(mod(i).value());
    BigUInt big_m = productOf(mods);

    BigUInt acc(0);
    for (u32 i = 0; i < limbCount(); ++i) {
        const Modulus &m = mod(i);
        // M/m_i as BigUInt.
        std::vector<u64> others;
        for (u32 k = 0; k < limbCount(); ++k)
            if (k != i)
                others.push_back(mods[k]);
        BigUInt mhat = productOf(others);
        u64 mhat_mod = mhat.modSmall(m.value());
        u64 coef = m.mul(limb(i)[coeff_idx], m.inv(mhat_mod));
        acc.addMulSmall(mhat, coef);
    }
    // acc < limbCount * M; reduce.
    while (!(acc < big_m))
        acc.subInplace(big_m);
    return acc;
}

void
RnsPoly::uniformRandom(crophe::Rng &rng)
{
    // Intentionally serial: the RNG stream order is part of the
    // determinism contract, so sampling must not depend on thread count.
    for (u32 i = 0; i < limbCount(); ++i) {
        u64 q = mod(i).value();
        for (u64 &x : limb(i))
            x = rng.nextBounded(q);
    }
}

}  // namespace crophe::fhe
