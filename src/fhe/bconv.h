#ifndef CROPHE_FHE_BCONV_H_
#define CROPHE_FHE_BCONV_H_

/**
 * @file
 * RNS base conversion (BConv), and the ModUp/ModDown primitives built on it.
 *
 * BConv is the matrix-multiplication operator of key-switching (Figure 1):
 * converting an m-limb representation to a t-limb one multiplies the m × N
 * limb matrix by a constant t × m matrix of CRT factors. We implement the
 * HPS variant with floating-point quotient estimation so that values whose
 * representative lies in [0, M) convert exactly.
 *
 * convert() is limb-blocked and coefficient-tiled: a tile of coefficients
 * has its xhat row block and float quotients computed once (kernel stage
 * 1), then every target modulus consumes the resident tile (stage 2), so
 * the traffic per source limb element is one read regardless of t. The
 * float quotient is accumulated in ascending source-limb order with
 * contraction pinned off — the summation order is part of the
 * bit-identity contract across kernel backends.
 *
 * ModUp/ModDown fetch their converters from the FheContext memo, so the
 * O(m²) big-integer constant setup happens once per basis pair per
 * context rather than once per call.
 */

#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/types.h"
#include "fhe/kernels/kernels.h"
#include "fhe/modarith.h"
#include "fhe/rns.h"

namespace crophe::fhe {

/** Converts coefficient-domain limbs from one RNS basis to another. */
class BaseConverter
{
  public:
    /**
     * @param ctx context owning all moduli;
     * @param from global modulus indices of the source basis;
     * @param to global modulus indices of the target basis (disjoint or not).
     */
    BaseConverter(const FheContext &ctx, std::vector<u32> from,
                  std::vector<u32> to);

    const std::vector<u32> &fromBasis() const { return from_; }
    const std::vector<u32> &toBasis() const { return to_; }

    /**
     * Convert a Coeff-representation polynomial over the source basis to
     * one over the target basis. The value of each coefficient, taken as
     * its representative in [0, M), is preserved mod every target modulus.
     */
    RnsPoly convert(const RnsPoly &in) const;

    /**
     * convert() into caller-owned rows: @p dst_rows[j] receives target
     * limb j (n elements each). This is the fused-pipeline entry point —
     * writing straight into the consumer's limb slab skips the
     * whole-polynomial temporary between BConv and the NTT that follows
     * it. Byte-identical to convert().
     */
    void convertInto(const RnsPoly &in, u64 *const *dst_rows) const;

  private:
    const FheContext *ctx_;
    std::vector<u32> from_;
    std::vector<u32> to_;
    /** (M/m_i)^{-1} mod m_i, with Shoup quotients. */
    AlignedVec<u64> mhatInv_;
    AlignedVec<u64> mhatInvShoup_;
    /** Source modulus values m_i. */
    AlignedVec<u64> fromQ_;
    /** [M/m_i mod t_j] at index j·m + i. */
    AlignedVec<u64> mhatModT_;
    /** M mod t_j. */
    std::vector<u64> mModT_;
    /** 1 / m_i as double, for the quotient estimate. */
    AlignedVec<double> invM_;
    /** Barrett constants of the target moduli. */
    std::vector<kernels::BarrettView> toView_;
};

/**
 * ModUp for key-switching digit @p j: take the digit's limbs of @p d
 * (Coeff rep over the q basis at level @p level) and extend them to the
 * full q+p basis at that level.
 */
RnsPoly modUpDigit(const FheContext &ctx, const RnsPoly &d_coeff, u32 digit,
                   u32 level);

/**
 * Fused iNTT→BConv→NTT ModUp (DESIGN.md §13): produce digit @p j of
 * key-switching directly in Eval representation over the q+p basis.
 *
 * The unfused flow (modUpDigit + toEval) inverse-transforms every limb of
 * d and then forward-transforms all of the extended basis — including the
 * digit's own limbs, which NTT∘iNTT maps back to exactly where they
 * started. Here the digit's own limbs are instead copied straight from
 * the Eval-domain input @p d_eval, BConv writes the missing limbs
 * directly into the output slab (convertInto), and only those converted
 * limbs are forward-transformed. Both transforms are exact mutually
 * inverse bijections with canonical outputs, so the result is
 * bit-identical to the unfused flow while skipping the round trips.
 *
 * @param d_eval  the key-switch operand over qBasis(level), Eval rep;
 * @param d_coeff the same polynomial in Coeff rep (shared across digits).
 */
RnsPoly fusedModUpEval(const FheContext &ctx, const RnsPoly &d_eval,
                       const RnsPoly &d_coeff, u32 digit, u32 level);

/**
 * ModDown: divide a (q…q_level, p…) polynomial by P and return the result
 * over the q basis only. Input and output in Coeff representation.
 */
RnsPoly modDown(const FheContext &ctx, const RnsPoly &in, u32 level);

/**
 * Fused Eval-domain ModDown of a key-switch accumulator pair (b, a), both
 * over qpBasis(level) in Eval rep; returns the pair over qBasis(level),
 * still in Eval rep.
 *
 * Instead of inverse-transforming all q+p limbs of both polynomials and
 * forward-transforming the q limbs again afterwards (the unfused
 * toCoeff → modDown → toEval flow), only the α special-modulus limbs are
 * inverse-transformed — pair-batched per modulus, since b and a share
 * every modulus — BConv carries them to the q basis, and the converted
 * rows are forward-transformed (again pair-batched). The subtraction and
 * the P⁻¹ scaling are linear and pointwise, so applying them in the Eval
 * domain commutes with the NTT bit-exactly.
 */
std::pair<RnsPoly, RnsPoly> modDownEvalPair(const FheContext &ctx,
                                            const RnsPoly &b,
                                            const RnsPoly &a, u32 level);

/**
 * Rescale: divide by the last ciphertext modulus q_level and drop it.
 * Input/output in Coeff representation over q bases.
 */
RnsPoly rescalePoly(const FheContext &ctx, const RnsPoly &in, u32 level);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_BCONV_H_
