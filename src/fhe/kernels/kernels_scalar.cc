/**
 * @file
 * Portable scalar backend of the kernel layer.
 *
 * The NTTs use Harvey-style lazy reduction: forward butterflies keep
 * values in [0,4q) (one conditional correction per butterfly instead of
 * two canonical reductions), inverse butterflies keep values in [0,2q),
 * and a single normalization pass at the end restores canonical [0,q)
 * outputs — bit-identical to the eager reference because every value
 * stays congruent mod q throughout and the final pass fully reduces.
 *
 * This file is compiled with contraction pinned off (see
 * src/CMakeLists.txt) so the BConv float-quotient accumulation is a
 * plain multiply-then-add in every build mode, matching the SIMD
 * backends' mul_pd/add_pd sequences exactly.
 */

#include "fhe/kernels/kernels.h"

#include "common/logging.h"

namespace crophe::fhe::kernels {

namespace {

inline u64
mulHi64(u64 a, u64 b)
{
    return static_cast<u64>((static_cast<u128>(a) * b) >> 64);
}

/** Shoup lazy product: a·w mod q in [0,2q), for any u64 a and w < q. */
inline u64
shoupMulLazy(u64 a, u64 w, u64 wShoup, u64 q)
{
    u64 hi = mulHi64(a, wShoup);
    return a * w - hi * q;
}

/** Canonical Shoup product; requires a < q. */
inline u64
shoupMul(u64 a, u64 w, u64 wShoup, u64 q)
{
    u64 r = shoupMulLazy(a, w, wShoup, q);
    return r >= q ? r - q : r;
}

/** Two-word Barrett reduction of a 128-bit value (Modulus::reduce). */
inline u64
barrettReduce(u64 xhi, u64 xlo, const BarrettView &b)
{
    u64 carry = mulHi64(xlo, b.lo);
    u128 mid = static_cast<u128>(xlo) * b.hi +
               static_cast<u128>(xhi) * b.lo + carry;
    u64 quot = static_cast<u64>(mid >> 64) + xhi * b.hi;
    u64 r = xlo - quot * b.q;
    while (r >= b.q)
        r -= b.q;
    return r;
}

inline u64
barrettMul(u64 a, u64 c, const BarrettView &b)
{
    u128 x = static_cast<u128>(a) * c;
    return barrettReduce(static_cast<u64>(x >> 64), static_cast<u64>(x), b);
}

/** One forward stage (m blocks of width gap), values lazy in [0,4q). */
inline void
fwdStageScalar(u64 *a, const NttView &t, u64 m, u64 gap)
{
    const u64 q = t.q;
    const u64 twoq = 2 * q;
    for (u64 i = 0; i < m; ++i) {
        const u64 j1 = 2 * i * gap;
        const u64 w = t.w[m + i];
        const u64 ws = t.wShoup[m + i];
        u64 *x = a + j1;
        u64 *y = x + gap;
        for (u64 j = 0; j < gap; ++j) {
            u64 u = x[j];
            if (u >= twoq)
                u -= twoq;
            u64 v = shoupMulLazy(y[j], w, ws, q);
            x[j] = u + v;
            y[j] = u - v + twoq;
        }
    }
}

/** Final forward pass: fold lazy [0,4q) values back to canonical. */
inline void
fwdNormalizeScalar(u64 *a, const NttView &t)
{
    const u64 q = t.q;
    const u64 twoq = 2 * q;
    for (u64 j = 0; j < t.n; ++j) {
        u64 v = a[j];
        if (v >= twoq)
            v -= twoq;
        if (v >= q)
            v -= q;
        a[j] = v;
    }
}

void
fwdNttScalar(u64 *a, const NttView &t)
{
    u64 gap = t.n;
    for (u64 m = 1; m < t.n; m <<= 1) {
        gap >>= 1;
        fwdStageScalar(a, t, m, gap);
    }
    fwdNormalizeScalar(a, t);
}

/** One inverse stage (h blocks of width gap), values lazy in [0,2q). */
inline void
invStageScalar(u64 *a, const NttView &t, u64 h, u64 gap)
{
    const u64 q = t.q;
    const u64 twoq = 2 * q;
    u64 j1 = 0;
    for (u64 i = 0; i < h; ++i) {
        const u64 w = t.w[h + i];
        const u64 ws = t.wShoup[h + i];
        u64 *x = a + j1;
        u64 *y = x + gap;
        for (u64 j = 0; j < gap; ++j) {
            u64 u = x[j];
            u64 v = y[j];
            u64 s = u + v;
            if (s >= twoq)
                s -= twoq;
            x[j] = s;
            y[j] = shoupMulLazy(u - v + twoq, w, ws, q);
        }
        j1 += 2 * gap;
    }
}

/** Final inverse pass: scale by n^{-1} and reduce to canonical. */
inline void
invNormalizeScalar(u64 *a, const NttView &t)
{
    const u64 q = t.q;
    for (u64 j = 0; j < t.n; ++j) {
        u64 v = shoupMulLazy(a[j], t.nInv, t.nInvShoup, q);
        if (v >= q)
            v -= q;
        a[j] = v;
    }
}

void
invNttScalar(u64 *a, const NttView &t)
{
    u64 gap = 1;
    for (u64 m = t.n; m > 1; m >>= 1) {
        invStageScalar(a, t, m >> 1, gap);
        gap <<= 1;
    }
    invNormalizeScalar(a, t);
}

/**
 * Batched transforms: stages outermost, polynomials innermost, so each
 * stage's twiddle block stays cache-hot across the whole batch. Each
 * polynomial sees the identical butterfly sequence as the single-poly
 * kernel, so results are bit-identical by construction.
 */
void
fwdNttScalarBatch(u64 *const *polys, u64 count, const NttView &t)
{
    u64 gap = t.n;
    for (u64 m = 1; m < t.n; m <<= 1) {
        gap >>= 1;
        for (u64 p = 0; p < count; ++p)
            fwdStageScalar(polys[p], t, m, gap);
    }
    for (u64 p = 0; p < count; ++p)
        fwdNormalizeScalar(polys[p], t);
}

void
invNttScalarBatch(u64 *const *polys, u64 count, const NttView &t)
{
    u64 gap = 1;
    for (u64 m = t.n; m > 1; m >>= 1) {
        for (u64 p = 0; p < count; ++p)
            invStageScalar(polys[p], t, m >> 1, gap);
        gap <<= 1;
    }
    for (u64 p = 0; p < count; ++p)
        invNormalizeScalar(polys[p], t);
}

void
addModScalar(u64 *dst, const u64 *src, u64 n, u64 q)
{
    for (u64 i = 0; i < n; ++i) {
        u64 s = dst[i] + src[i];
        dst[i] = s >= q ? s - q : s;
    }
}

void
subModScalar(u64 *dst, const u64 *src, u64 n, u64 q)
{
    for (u64 i = 0; i < n; ++i) {
        u64 a = dst[i];
        u64 b = src[i];
        dst[i] = a >= b ? a - b : a + q - b;
    }
}

void
negModScalar(u64 *dst, u64 n, u64 q)
{
    for (u64 i = 0; i < n; ++i)
        dst[i] = dst[i] == 0 ? 0 : q - dst[i];
}

void
mulModBarrettScalar(u64 *dst, const u64 *src, u64 n, const BarrettView &q)
{
    for (u64 i = 0; i < n; ++i)
        dst[i] = barrettMul(dst[i], src[i], q);
}

void
mulScalarShoupScalar(u64 *dst, u64 n, u64 q, u64 w, u64 wShoup)
{
    for (u64 i = 0; i < n; ++i)
        dst[i] = shoupMul(dst[i], w, wShoup, q);
}

void
gatherScalar(u64 *dst, const u64 *src, const u64 *idx, u64 n)
{
    for (u64 k = 0; k < n; ++k)
        dst[k] = src[idx[k]];
}

void
bconvXhatScalar(u64 *xhat, u64 xhatStride, double *vest, const u64 *in,
                u64 inStride, u64 m, u64 cnt, const u64 *mhatInv,
                const u64 *mhatInvShoup, const u64 *qFrom, const double *invM)
{
    for (u64 i = 0; i < m; ++i) {
        const u64 *row = in + i * inStride;
        u64 *out = xhat + i * xhatStride;
        const u64 w = mhatInv[i];
        const u64 ws = mhatInvShoup[i];
        const u64 q = qFrom[i];
        const double inv = invM[i];
        for (u64 c = 0; c < cnt; ++c) {
            u64 xh = shoupMul(row[c], w, ws, q);
            out[c] = xh;
            vest[c] += static_cast<double>(xh) * inv;
        }
    }
}

void
bconvOutScalar(u64 *out, const u64 *xhat, u64 xhatStride, u64 m, u64 cnt,
               const u64 *w, const double *vest, u64 mModT,
               const BarrettView &q)
{
    for (u64 c = 0; c < cnt; ++c) {
        u128 acc = 0;
        for (u64 i = 0; i < m; ++i)
            acc += static_cast<u128>(xhat[i * xhatStride + c]) * w[i];
        u64 s = barrettReduce(static_cast<u64>(acc >> 64),
                              static_cast<u64>(acc), q);
        u64 v = static_cast<u64>(vest[c]);
        u64 corr = barrettMul(v, mModT, q);
        u64 r = s >= corr ? s - corr : s + q.q - corr;
        out[c] = r;
    }
}

}  // namespace

void
referenceFwdNtt(u64 *a, const NttView &t)
{
    // Seed butterfly order and semantics (canonical reduction after every
    // butterfly), with the conditional subtractions written as branchless
    // masks: on random data the ternaries are 50/50 branches and the
    // mispredictions made this reference row ~4x slower than the inverse
    // transform (whose ternaries happened to compile to cmov). Outputs
    // are bit-identical to the original seed code.
    const u64 q = t.q;
    u64 gap = t.n;
    for (u64 m = 1; m < t.n; m <<= 1) {
        gap >>= 1;
        for (u64 i = 0; i < m; ++i) {
            u64 j1 = 2 * i * gap;
            u64 j2 = j1 + gap;
            const u64 w = t.w[m + i];
            const u64 ws = t.wShoup[m + i];
            for (u64 j = j1; j < j2; ++j) {
                u64 u = a[j];
                u64 v = shoupMul(a[j + gap], w, ws, q);
                u64 s = u + v;
                s -= q & (0 - static_cast<u64>(s >= q));
                a[j] = s;
                u64 d = u - v + (q & (0 - static_cast<u64>(u < v)));
                a[j + gap] = d;
            }
        }
    }
}

void
referenceInvNtt(u64 *a, const NttView &t)
{
    const u64 q = t.q;
    u64 gap = 1;
    for (u64 m = t.n; m > 1; m >>= 1) {
        u64 j1 = 0;
        u64 h = m >> 1;
        for (u64 i = 0; i < h; ++i) {
            u64 j2 = j1 + gap;
            const u64 w = t.w[h + i];
            const u64 ws = t.wShoup[h + i];
            for (u64 j = j1; j < j2; ++j) {
                u64 u = a[j];
                u64 v = a[j + gap];
                u64 s = u + v;
                s -= q & (0 - static_cast<u64>(s >= q));
                a[j] = s;
                u64 d = u - v + (q & (0 - static_cast<u64>(u < v)));
                a[j + gap] = shoupMul(d, w, ws, q);
            }
            j1 += 2 * gap;
        }
        gap <<= 1;
    }
    for (u64 j = 0; j < t.n; ++j)
        a[j] = shoupMul(a[j], t.nInv, t.nInvShoup, q);
}

const KernelTable &
scalarTable()
{
    static const KernelTable tbl = {
        "scalar",        fwdNttScalar,        invNttScalar,
        addModScalar,    subModScalar,        negModScalar,
        mulModBarrettScalar, mulScalarShoupScalar, gatherScalar,
        bconvXhatScalar, bconvOutScalar,
        fwdNttScalarBatch, invNttScalarBatch,
    };
    return tbl;
}

}  // namespace crophe::fhe::kernels
