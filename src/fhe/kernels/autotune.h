#ifndef CROPHE_FHE_KERNELS_AUTOTUNE_H_
#define CROPHE_FHE_KERNELS_AUTOTUNE_H_

/**
 * @file
 * Tiny deterministic NTT autotuner (DESIGN.md §13).
 *
 * The batched NTT kernels accept a *tile width*: how many same-modulus
 * polynomials one stage-outer pass interleaves. The sweet spot depends
 * on n, the batch size and the backend (the tile's working set must fit
 * the private caches while still amortizing twiddle loads), so the
 * autotuner measures the candidate tiles once per (n, limb-count,
 * backend) and memoizes the winner. Every candidate computes the exact
 * same bits — tuning only ever changes *speed*, never results — which
 * is what makes a timing-based tuner safe in a bit-identical library.
 *
 * The table persists alongside the plan cache (one small text file in
 * $CROPHE_AUTOTUNE_DIR, falling back to $CROPHE_PLAN_CACHE), keyed by a
 * host/kernel digest (CPU features + kKernelVersion) and guarded by a
 * checksum: any mismatch — corrupt file, different host, older kernel
 * layer — rejects the file and re-tunes, so a stale table can never
 * pick an invalid variant (and even a *wrong* table would only cost
 * speed). Overrides: CROPHE_AUTOTUNE=off disables measurement (fixed
 * default tile), CROPHE_NTT_TILE=K forces a tile width, and
 * CROPHE_AUTOTUNE_VERBOSE=1 narrates tuning decisions on stderr.
 */

#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "common/types.h"
#include "fhe/kernels/kernels.h"

namespace crophe::fhe::kernels {

/**
 * Version stamp of the kernel layer's tunable code paths; bump it when
 * batched-kernel codegen changes so persisted tables re-tune.
 */
inline constexpr u32 kKernelVersion = 2;

struct AutotuneStats
{
    u64 tuned = 0;        ///< keys measured this process
    u64 memoHits = 0;     ///< keys answered from the in-memory table
    u64 diskLoaded = 0;   ///< entries adopted from the persisted table
    u64 diskRejects = 0;  ///< persisted tables rejected by validation
    u64 diskWrites = 0;   ///< table files written
};

class Autotuner
{
  public:
    /**
     * @p dir empty means in-memory only; otherwise the table file
     * `<dir>/autotune_ntt.tbl` is loaded eagerly (invalid files are
     * rejected, never trusted) and rewritten after each new tuning.
     */
    explicit Autotuner(std::string dir);

    /**
     * Tile width for transforming @p limbs same-modulus polynomials of
     * degree @p n on backend @p b (clamped to a power-of-two bucket
     * <= 8). Measures on first miss; later queries are memoized.
     */
    u32 batchTile(u64 n, u64 limbs, Backend b);

    /**
     * Pre-tune the hot key-switch shape (pair-batched transforms) for
     * a context of degree @p n, so the first keySwitch doesn't pay the
     * measurement. Called from the FheContext constructor.
     */
    void prepare(u64 n);

    const AutotuneStats &stats() const { return stats_; }
    const std::string &dir() const { return dir_; }

  private:
    u32 tuneLocked(u64 n, u64 limbs, Backend b);
    bool loadLocked();
    void persistLocked();

    std::mutex mu_;
    std::string dir_;
    bool enabled_ = true;  ///< false under CROPHE_AUTOTUNE=off
    u32 forcedTile_ = 0;   ///< nonzero under CROPHE_NTT_TILE=K
    std::map<std::tuple<u64, u64, u8>, u32> table_;
    AutotuneStats stats_;
};

/**
 * The process-wide autotuner; directory resolved once from
 * $CROPHE_AUTOTUNE_DIR, else $CROPHE_PLAN_CACHE, else in-memory.
 */
Autotuner &autotuner();

}  // namespace crophe::fhe::kernels

#endif  // CROPHE_FHE_KERNELS_AUTOTUNE_H_
