#include "fhe/kernels/autotune.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "fhe/modarith.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"

namespace crophe::fhe::kernels {

namespace {

constexpr const char *kMagic = "crophe-ntt-autotune";
constexpr const char *kFileName = "autotune_ntt.tbl";
constexpr u32 kDefaultTile = 4;
constexpr u32 kMaxTile = 8;

bool
verbose()
{
    static const bool v = [] {
        const char *e = std::getenv("CROPHE_AUTOTUNE_VERBOSE");
        return e != nullptr && e[0] != '\0' && e[0] != '0';
    }();
    return v;
}

u64
fnv1a(u64 h, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

u64
fnv1aStr(u64 h, const std::string &s)
{
    return fnv1a(h, s.data(), s.size());
}

/** Host/kernel digest: CPU feature set + kernel-layer version. */
u64
hostDigest()
{
    u64 h = 1469598103934665603ull;
    u64 bits = kKernelVersion;
    bits = (bits << 1) | (cpuFeatures().avx2 ? 1 : 0);
    bits = (bits << 1) | (cpuFeatures().avx512 ? 1 : 0);
#ifdef CROPHE_HAVE_AVX2
    bits = (bits << 1) | 1;
#else
    bits <<= 1;
#endif
#ifdef CROPHE_HAVE_AVX512
    bits = (bits << 1) | 1;
#else
    bits <<= 1;
#endif
    return fnv1a(h, &bits, sizeof bits);
}

const KernelTable *
tableForBackend(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return &scalarTable();
    case Backend::Avx2:
#ifdef CROPHE_HAVE_AVX2
        return available(Backend::Avx2) ? &avx2Table() : nullptr;
#else
        return nullptr;
#endif
    case Backend::Avx512:
#ifdef CROPHE_HAVE_AVX512
        return available(Backend::Avx512) ? &avx512Table() : nullptr;
#else
        return nullptr;
#endif
    }
    return nullptr;
}

bool
backendFromName(const std::string &name, Backend *out)
{
    if (name == "scalar")
        *out = Backend::Scalar;
    else if (name == "avx2")
        *out = Backend::Avx2;
    else if (name == "avx512")
        *out = Backend::Avx512;
    else
        return false;
    return true;
}

u64
limbsBucket(u64 limbs)
{
    u64 bucket = 1;
    while (bucket * 2 <= limbs && bucket < kMaxTile)
        bucket <<= 1;
    return bucket;
}

}  // namespace

Autotuner::Autotuner(std::string dir) : dir_(std::move(dir))
{
    if (const char *e = std::getenv("CROPHE_AUTOTUNE")) {
        std::string v(e);
        if (v == "off" || v == "0" || v == "false")
            enabled_ = false;
    }
    if (const char *e = std::getenv("CROPHE_NTT_TILE")) {
        char *end = nullptr;
        unsigned long t = std::strtoul(e, &end, 10);
        if (end != e && *end == '\0' && t >= 1 && t <= 64)
            forcedTile_ = static_cast<u32>(t);
    }
    if (!dir_.empty() && enabled_) {
        // Like the plan cache, the table directory is created on demand;
        // failure just means the tuner stays in-memory.
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        std::lock_guard<std::mutex> lock(mu_);
        loadLocked();
    }
}

u32
Autotuner::batchTile(u64 n, u64 limbs, Backend b)
{
    if (limbs <= 1)
        return 1;
    if (forcedTile_ != 0)
        return forcedTile_;
    const u64 bucket = limbsBucket(limbs);
    if (!enabled_)
        return static_cast<u32>(std::min<u64>(kDefaultTile, bucket));
    std::lock_guard<std::mutex> lock(mu_);
    auto key = std::make_tuple(n, bucket, static_cast<u8>(b));
    auto it = table_.find(key);
    if (it != table_.end()) {
        ++stats_.memoHits;
        return it->second;
    }
    u32 tile = tuneLocked(n, bucket, b);
    table_[key] = tile;
    ++stats_.tuned;
    if (!dir_.empty())
        persistLocked();
    return tile;
}

void
Autotuner::prepare(u64 n)
{
    // The key-switch hot path batches the (b, a) accumulator pair per
    // modulus, so pre-tune the 2-wide shape for the active backend.
    batchTile(n, 2, activeBackend());
}

/**
 * Measure the candidate tile widths with a forward+inverse round trip
 * over `limbs` polynomials and keep the fastest (ties break toward the
 * smaller tile, so the choice is stable under timing noise on equal
 * variants). Every candidate is exact, so whichever wins, downstream
 * results are byte-identical.
 */
u32
Autotuner::tuneLocked(u64 n, u64 limbs, Backend b)
{
    const KernelTable *kt = tableForBackend(b);
    if (kt == nullptr || n < 8)
        return 1;

    auto primes = generateNttPrimes(50, n, 1);
    Modulus mod(primes[0]);
    NttTables ntt(n, mod);
    const NttView fwd = ntt.forwardView();
    const NttView inv = ntt.inverseView();

    Rng rng(1);
    std::vector<std::vector<u64>> data(limbs);
    std::vector<u64 *> polys(limbs);
    for (u64 i = 0; i < limbs; ++i) {
        data[i].resize(n);
        for (auto &x : data[i])
            x = rng.nextBounded(mod.value());
        polys[i] = data[i].data();
    }

    u32 best = 1;
    double bestNs = 0.0;
    for (u32 tile = 1; tile <= limbs; tile <<= 1) {
        // Warm-up round, then best-of-3 timing; a round trip restores
        // the input so every candidate sees identical data.
        fwdNttBatched(*kt, polys.data(), limbs, fwd, tile);
        invNttBatched(*kt, polys.data(), limbs, inv, tile);
        double minNs = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            fwdNttBatched(*kt, polys.data(), limbs, fwd, tile);
            invNttBatched(*kt, polys.data(), limbs, inv, tile);
            auto t1 = std::chrono::steady_clock::now();
            double ns =
                std::chrono::duration<double, std::nano>(t1 - t0).count();
            if (rep == 0 || ns < minNs)
                minNs = ns;
        }
        if (tile == 1 || minNs < bestNs) {
            best = tile;
            bestNs = minNs;
        }
    }
    if (verbose())
        std::fprintf(stderr,
                     "autotune: tuned n=%llu limbs=%llu backend=%s -> "
                     "tile %u (%.0f ns/round)\n",
                     static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(limbs),
                     backendName(b), best, bestNs);
    return best;
}

bool
Autotuner::loadLocked()
{
    const std::string path = dir_ + "/" + kFileName;
    std::ifstream is(path);
    if (!is)
        return false;  // no table yet; not a rejection
    std::ostringstream hashed;
    std::string line;
    std::map<std::tuple<u64, u64, u8>, u32> parsed;
    bool sawMagic = false, sawHost = false, sawChecksum = false;
    bool ok = true;
    while (ok && std::getline(is, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "checksum") {
            std::string hex;
            ls >> hex;
            u64 want = std::strtoull(hex.c_str(), nullptr, 16);
            u64 got = fnv1aStr(1469598103934665603ull, hashed.str());
            ok = sawMagic && sawHost && want == got;
            sawChecksum = true;
            break;
        }
        hashed << line << "\n";
        if (tag == kMagic) {
            u32 version = 0;
            ls >> version;
            ok = !ls.fail() && version == kKernelVersion;
            sawMagic = true;
        } else if (tag == "host") {
            std::string hex;
            ls >> hex;
            ok = std::strtoull(hex.c_str(), nullptr, 16) == hostDigest();
            sawHost = true;
        } else if (tag == "entry") {
            u64 n = 0, limbs = 0;
            std::string backend;
            u32 tile = 0;
            ls >> n >> limbs >> backend >> tile;
            Backend b;
            ok = !ls.fail() && backendFromName(backend, &b) && tile >= 1 &&
                 tile <= 64;
            if (ok)
                parsed[{n, limbs, static_cast<u8>(b)}] = tile;
        } else {
            ok = false;
        }
    }
    if (!ok || !sawChecksum) {
        // Corrupt, stale or foreign table: ignore it entirely and
        // re-tune — a rejected table can never influence results.
        ++stats_.diskRejects;
        if (verbose())
            std::fprintf(stderr, "autotune: rejected table %s (re-tuning)\n",
                         path.c_str());
        return false;
    }
    table_ = std::move(parsed);
    stats_.diskLoaded += table_.size();
    if (verbose())
        std::fprintf(stderr, "autotune: loaded %zu entries from %s\n",
                     table_.size(), path.c_str());
    return true;
}

void
Autotuner::persistLocked()
{
    std::ostringstream body;
    body << kMagic << " " << kKernelVersion << "\n";
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(hostDigest()));
    body << "host " << hex << "\n";
    for (const auto &[key, tile] : table_) {
        const auto &[n, limbs, b] = key;
        body << "entry " << n << " " << limbs << " "
             << backendName(static_cast<Backend>(b)) << " " << tile << "\n";
    }
    u64 sum = fnv1aStr(1469598103934665603ull, body.str());
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(sum));

    // Atomic publish: write a temp file, then rename over the table.
    const std::string path = dir_ + "/" + kFileName;
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return;  // unwritable dir: stay in-memory, never fail the run
        os << body.str() << "checksum " << hex << "\n";
    }
    if (std::rename(tmp.c_str(), path.c_str()) == 0)
        ++stats_.diskWrites;
    else
        std::remove(tmp.c_str());
}

Autotuner &
autotuner()
{
    static Autotuner tuner([] {
        if (const char *e = std::getenv("CROPHE_AUTOTUNE_DIR"))
            return std::string(e);
        if (const char *e = std::getenv("CROPHE_PLAN_CACHE"))
            return std::string(e);
        return std::string();
    }());
    return tuner;
}

}  // namespace crophe::fhe::kernels
