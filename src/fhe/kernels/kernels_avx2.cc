/**
 * @file
 * AVX2 backend: 4-wide 256-bit kernels.
 *
 * AVX2 has no 64x64 multiply, so the 64-bit products the kernels need
 * (Shoup mulhi, Barrett, the BConv 128-bit accumulate) are assembled
 * from vpmuludq 32x32 partial products. All residues are < 2^60, so
 * intermediate lazy values (< 4q < 2^62) stay below 2^63 and magnitude
 * comparisons can use the *signed* vpcmpgtq; only the full-width carry
 * detection in 128-bit additions needs the sign-flip trick.
 *
 * The float-quotient path mirrors the scalar backend operation for
 * operation: u64→double via an exact two-part (hi·2^32 + lo) sum of
 * exactly-representable halves (correctly rounded, equal to a scalar
 * cast), then separate mul_pd/add_pd — never FMA — so vest is
 * bit-identical to the contraction-off scalar path.
 */

#include "fhe/kernels/kernels.h"

#ifdef CROPHE_HAVE_AVX2

#include <immintrin.h>

#include "fhe/kernels/ntt_simd256_inl.h"

namespace crophe::fhe::kernels {

namespace {

inline u64
mulHi64(u64 a, u64 b)
{
    return static_cast<u64>((static_cast<u128>(a) * b) >> 64);
}

inline u64
shoupMulLazyS(u64 a, u64 w, u64 wShoup, u64 q)
{
    return a * w - mulHi64(a, wShoup) * q;
}

/** Low 64 bits of the 4 lane-wise 64x64 products. */
inline __m256i
mulLo64(__m256i x, __m256i y)
{
    __m256i lo = _mm256_mul_epu32(x, y);
    __m256i h1 = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), y);
    __m256i h2 = _mm256_mul_epu32(x, _mm256_srli_epi64(y, 32));
    __m256i cross = _mm256_add_epi64(h1, h2);
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/** High 64 bits of the 4 lane-wise 64x64 products. */
inline __m256i
mulHi64v(__m256i x, __m256i y)
{
    const __m256i mask32 = _mm256_set1_epi64x(0xffffffff);
    __m256i x1 = _mm256_srli_epi64(x, 32);
    __m256i y1 = _mm256_srli_epi64(y, 32);
    __m256i lolo = _mm256_mul_epu32(x, y);
    __m256i hilo = _mm256_mul_epu32(x1, y);
    __m256i lohi = _mm256_mul_epu32(x, y1);
    __m256i hihi = _mm256_mul_epu32(x1, y1);
    __m256i mid = _mm256_add_epi64(hilo, _mm256_srli_epi64(lolo, 32));
    __m256i mid2 = _mm256_add_epi64(lohi, _mm256_and_si256(mid, mask32));
    return _mm256_add_epi64(
        hihi, _mm256_add_epi64(_mm256_srli_epi64(mid, 32),
                               _mm256_srli_epi64(mid2, 32)));
}

/**
 * Both halves of the 4 lane-wise 64x64 products from one set of four
 * vpmuludq partials — callers needing hi *and* lo (the BConv accumulate,
 * Barrett) save the three partial products a separate mulLo64 re-derives.
 */
inline void
mulWide64(__m256i x, __m256i y, __m256i &hi, __m256i &lo)
{
    const __m256i mask32 = _mm256_set1_epi64x(0xffffffff);
    __m256i x1 = _mm256_srli_epi64(x, 32);
    __m256i y1 = _mm256_srli_epi64(y, 32);
    __m256i lolo = _mm256_mul_epu32(x, y);
    __m256i hilo = _mm256_mul_epu32(x1, y);
    __m256i lohi = _mm256_mul_epu32(x, y1);
    __m256i hihi = _mm256_mul_epu32(x1, y1);
    __m256i mid = _mm256_add_epi64(hilo, _mm256_srli_epi64(lolo, 32));
    __m256i mid2 = _mm256_add_epi64(lohi, _mm256_and_si256(mid, mask32));
    hi = _mm256_add_epi64(
        hihi, _mm256_add_epi64(_mm256_srli_epi64(mid, 32),
                               _mm256_srli_epi64(mid2, 32)));
    lo = _mm256_add_epi64(_mm256_slli_epi64(mid2, 32),
                          _mm256_and_si256(lolo, mask32));
}

/** mask of lanes with x >= bound, both < 2^63 (signed compare is safe). */
inline __m256i
geSmall(__m256i x, __m256i boundMinus1)
{
    return _mm256_cmpgt_epi64(x, boundMinus1);
}

/** x - (x >= bound ? bound : 0) for values < 2^63. */
inline __m256i
condSub(__m256i x, __m256i bound, __m256i boundMinus1)
{
    return _mm256_sub_epi64(x,
                            _mm256_and_si256(geSmall(x, boundMinus1), bound));
}

/** Full-width unsigned a < b as a lane mask (sign-flip trick). */
inline __m256i
ltU64(__m256i a, __m256i b)
{
    const __m256i flip = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(b, flip),
                              _mm256_xor_si256(a, flip));
}

/** Shoup lazy product in [0,2q) per lane; any a, w < q. */
inline __m256i
shoupMulLazyV(__m256i a, __m256i w, __m256i ws, __m256i q)
{
    __m256i hi = mulHi64v(a, ws);
    return _mm256_sub_epi64(mulLo64(a, w), mulLo64(hi, q));
}

struct BarrettV
{
    __m256i q, qm1, lo, hi;
};

inline BarrettV
broadcastBarrett(const BarrettView &b)
{
    BarrettV v;
    v.q = _mm256_set1_epi64x(static_cast<long long>(b.q));
    v.qm1 = _mm256_set1_epi64x(static_cast<long long>(b.q - 1));
    v.lo = _mm256_set1_epi64x(static_cast<long long>(b.lo));
    v.hi = _mm256_set1_epi64x(static_cast<long long>(b.hi));
    return v;
}

/** Lane-wise Barrett reduction of (xhi:xlo) to canonical [0,q). */
inline __m256i
barrettReduceV(__m256i xhi, __m256i xlo, const BarrettV &b)
{
    __m256i carry = mulHi64v(xlo, b.lo);
    // mid = xlo*hi + xhi*lo + carry (128-bit); we need its high word.
    __m256i m1hi, m1lo, m2hi, m2lo;
    mulWide64(xlo, b.hi, m1hi, m1lo);
    mulWide64(xhi, b.lo, m2hi, m2lo);
    __m256i s1 = _mm256_add_epi64(m1lo, m2lo);
    __m256i c1 = ltU64(s1, m1lo);  // all-ones where carry
    __m256i s2 = _mm256_add_epi64(s1, carry);
    __m256i c2 = ltU64(s2, s1);
    __m256i midhi = _mm256_add_epi64(m1hi, m2hi);
    midhi = _mm256_sub_epi64(midhi, c1);  // -(-1) == +1
    midhi = _mm256_sub_epi64(midhi, c2);
    __m256i quot = _mm256_add_epi64(midhi, mulLo64(xhi, b.hi));
    __m256i r = _mm256_sub_epi64(xlo, mulLo64(quot, b.q));
    // quot underestimates by at most 2: r in [0,3q), 3q < 2^62.
    r = condSub(r, b.q, b.qm1);
    r = condSub(r, b.q, b.qm1);
    return r;
}

inline __m256i
barrettMulV(__m256i a, __m256i c, const BarrettV &b)
{
    __m256i hi, lo;
    mulWide64(a, c, hi, lo);
    return barrettReduceV(hi, lo, b);
}

void
fwdNttAvx2(u64 *a, const NttView &t)
{
    // The dispatcher guarantees n >= 8, so the gap-2 and gap-1 stages
    // always exist and every butterfly runs vectorized; the gap-1 stage
    // also performs the final normalization to canonical [0,q).
    const simd256::NttConsts c = simd256::nttConsts(t.q);
    u64 m = 1;
    u64 gap = t.n >> 1;
    for (; gap >= 4; m <<= 1, gap >>= 1)
        simd256::fwdStageWide(a, t, m, gap, c);
    simd256::fwdStageGap2(a, t, m, c);
    m <<= 1;
    simd256::fwdStageGap1Normalize(a, t, m, c);
}

/** Final inverse pass: scale by n^{-1}, reduce to canonical [0,q). */
inline void
invNormalizeAvx2(u64 *a, const NttView &t, const simd256::NttConsts &c)
{
    const __m256i vqm1 =
        _mm256_set1_epi64x(static_cast<long long>(t.q - 1));
    const __m256i nv =
        _mm256_set1_epi64x(static_cast<long long>(t.nInv));
    const __m256i nvs =
        _mm256_set1_epi64x(static_cast<long long>(t.nInvShoup));
    for (u64 j = 0; j < t.n; j += 4) {
        __m256i v =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(a + j));
        v = simd256::shoupMulLazy(v, nv, nvs, c.vq);
        v = simd256::condSub(v, c.vq, vqm1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + j), v);
    }
}

void
invNttAvx2(u64 *a, const NttView &t)
{
    const simd256::NttConsts c = simd256::nttConsts(t.q);
    simd256::invStageGap1(a, t, t.n >> 1, c);
    simd256::invStageGap2(a, t, t.n >> 2, c);
    u64 gap = 4;
    for (u64 h = t.n >> 3; h >= 1; h >>= 1, gap <<= 1)
        simd256::invStageWide(a, t, h, gap, c);
    invNormalizeAvx2(a, t, c);
}

/**
 * Batched transforms: stages outermost, polynomials innermost (the
 * twiddle block of each stage is streamed once per batch). Per-poly
 * butterfly sequence identical to fwdNttAvx2/invNttAvx2, so results
 * are bit-identical.
 */
void
fwdNttAvx2Batch(u64 *const *polys, u64 count, const NttView &t)
{
    const simd256::NttConsts c = simd256::nttConsts(t.q);
    u64 m = 1;
    u64 gap = t.n >> 1;
    for (; gap >= 4; m <<= 1, gap >>= 1)
        for (u64 p = 0; p < count; ++p)
            simd256::fwdStageWide(polys[p], t, m, gap, c);
    for (u64 p = 0; p < count; ++p)
        simd256::fwdStageGap2(polys[p], t, m, c);
    m <<= 1;
    for (u64 p = 0; p < count; ++p)
        simd256::fwdStageGap1Normalize(polys[p], t, m, c);
}

void
invNttAvx2Batch(u64 *const *polys, u64 count, const NttView &t)
{
    const simd256::NttConsts c = simd256::nttConsts(t.q);
    for (u64 p = 0; p < count; ++p)
        simd256::invStageGap1(polys[p], t, t.n >> 1, c);
    for (u64 p = 0; p < count; ++p)
        simd256::invStageGap2(polys[p], t, t.n >> 2, c);
    u64 gap = 4;
    for (u64 h = t.n >> 3; h >= 1; h >>= 1, gap <<= 1)
        for (u64 p = 0; p < count; ++p)
            simd256::invStageWide(polys[p], t, h, gap, c);
    for (u64 p = 0; p < count; ++p)
        invNormalizeAvx2(polys[p], t, c);
}

void
addModAvx2(u64 *dst, const u64 *src, u64 n, u64 q)
{
    const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i vqm1 = _mm256_set1_epi64x(static_cast<long long>(q - 1));
    u64 i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i a =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(dst + i));
        __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i s = condSub(_mm256_add_epi64(a, b), vq, vqm1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), s);
    }
    for (; i < n; ++i) {
        u64 s = dst[i] + src[i];
        dst[i] = s >= q ? s - q : s;
    }
}

void
subModAvx2(u64 *dst, const u64 *src, u64 n, u64 q)
{
    const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i vqm1 = _mm256_set1_epi64x(static_cast<long long>(q - 1));
    u64 i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i a =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(dst + i));
        __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        // a - b + q, then canonicalize (result of a-b+q is in [1-?..): a<q,
        // b<q so a-b+q in (0, 2q) — one conditional subtract).
        __m256i s = _mm256_add_epi64(_mm256_sub_epi64(a, b), vq);
        s = condSub(s, vq, vqm1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), s);
    }
    for (; i < n; ++i) {
        u64 a = dst[i];
        u64 b = src[i];
        dst[i] = a >= b ? a - b : a + q - b;
    }
}

void
negModAvx2(u64 *dst, u64 n, u64 q)
{
    const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i zero = _mm256_setzero_si256();
    u64 i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i a =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(dst + i));
        __m256i isz = _mm256_cmpeq_epi64(a, zero);
        __m256i r = _mm256_sub_epi64(vq, a);
        r = _mm256_andnot_si256(isz, r);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), r);
    }
    for (; i < n; ++i)
        dst[i] = dst[i] == 0 ? 0 : q - dst[i];
}

void
mulModBarrettAvx2(u64 *dst, const u64 *src, u64 n, const BarrettView &q)
{
    const BarrettV b = broadcastBarrett(q);
    u64 i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i a =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(dst + i));
        __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            barrettMulV(a, c, b));
    }
    for (; i < n; ++i) {
        u128 x = static_cast<u128>(dst[i]) * src[i];
        u64 xlo = static_cast<u64>(x);
        u64 xhi = static_cast<u64>(x >> 64);
        u64 carry = mulHi64(xlo, q.lo);
        u128 mid = static_cast<u128>(xlo) * q.hi +
                   static_cast<u128>(xhi) * q.lo + carry;
        u64 quot = static_cast<u64>(mid >> 64) + xhi * q.hi;
        u64 r = xlo - quot * q.q;
        while (r >= q.q)
            r -= q.q;
        dst[i] = r;
    }
}

void
mulScalarShoupAvx2(u64 *dst, u64 n, u64 q, u64 w, u64 wShoup)
{
    const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i vqm1 = _mm256_set1_epi64x(static_cast<long long>(q - 1));
    const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
    const __m256i vws =
        _mm256_set1_epi64x(static_cast<long long>(wShoup));
    u64 i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i a =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(dst + i));
        __m256i r = shoupMulLazyV(a, vw, vws, vq);
        r = condSub(r, vq, vqm1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), r);
    }
    for (; i < n; ++i) {
        u64 r = shoupMulLazyS(dst[i], w, wShoup, q);
        dst[i] = r >= q ? r - q : r;
    }
}

void
gatherAvx2(u64 *dst, const u64 *src, const u64 *idx, u64 n)
{
    u64 k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i vi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(idx + k));
        __m256i v = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(src), vi, 8);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + k), v);
    }
    for (; k < n; ++k)
        dst[k] = src[idx[k]];
}

/**
 * Exact u64→double for values < 2^60 (== correctly rounded scalar cast).
 *
 * Magic-constant conversion: the high half is planted on the 2^84
 * exponent (ulp 2^32, so hi·2^32 is exact) and the low half on 2^52
 * (ulp 1, lo exact); subtracting 2^84+2^52 cancels both biases without
 * rounding, and the single final add rounds once — exactly like the
 * scalar cast. Five ops vs the previous split-halves sequence's eight.
 */
inline __m256d
u64ToPd(__m256i x)
{
    const __m256i magicLo = _mm256_set1_epi64x(
        static_cast<long long>(0x4330000000000000ull));  // 2^52
    const __m256i magicHi = _mm256_set1_epi64x(
        static_cast<long long>(0x4530000000000000ull));  // 2^84
    const __m256d magicAll = _mm256_castsi256_pd(_mm256_set1_epi64x(
        static_cast<long long>(0x4530000000100000ull)));  // 2^84 + 2^52
    __m256i lo = _mm256_blend_epi32(magicLo, x, 0x55);
    __m256i hi = _mm256_xor_si256(_mm256_srli_epi64(x, 32), magicHi);
    __m256d dhi = _mm256_sub_pd(_mm256_castsi256_pd(hi), magicAll);
    return _mm256_add_pd(dhi, _mm256_castsi256_pd(lo));
}

void
bconvXhatAvx2(u64 *xhat, u64 xhatStride, double *vest, const u64 *in,
              u64 inStride, u64 m, u64 cnt, const u64 *mhatInv,
              const u64 *mhatInvShoup, const u64 *qFrom, const double *invM)
{
    for (u64 i = 0; i < m; ++i) {
        const u64 *row = in + i * inStride;
        u64 *out = xhat + i * xhatStride;
        const u64 w = mhatInv[i];
        const u64 ws = mhatInvShoup[i];
        const u64 q = qFrom[i];
        const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
        const __m256i vqm1 =
            _mm256_set1_epi64x(static_cast<long long>(q - 1));
        const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
        const __m256i vws =
            _mm256_set1_epi64x(static_cast<long long>(ws));
        const __m256d vinv = _mm256_set1_pd(invM[i]);
        u64 c = 0;
        for (; c + 4 <= cnt; c += 4) {
            __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(row + c));
            __m256i r = shoupMulLazyV(x, vw, vws, vq);
            r = condSub(r, vq, vqm1);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + c), r);
            __m256d d = u64ToPd(r);
            __m256d acc = _mm256_loadu_pd(vest + c);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, vinv));
            _mm256_storeu_pd(vest + c, acc);
        }
        for (; c < cnt; ++c) {
            u64 r = shoupMulLazyS(row[c], w, ws, q);
            if (r >= q)
                r -= q;
            out[c] = r;
            double prod = static_cast<double>(r) * invM[i];
            vest[c] = vest[c] + prod;
        }
    }
}

void
bconvOutAvx2(u64 *out, const u64 *xhat, u64 xhatStride, u64 m, u64 cnt,
             const u64 *w, const double *vest, u64 mModT,
             const BarrettView &q)
{
    const BarrettV b = broadcastBarrett(q);
    const __m256i vmmod =
        _mm256_set1_epi64x(static_cast<long long>(mModT));
    // Shoup constant for the per-call-fixed multiplicand mModT < q: the
    // one u128 division amortizes over the tile and replaces the full
    // two-word Barrett correction multiply with a three-product Shoup.
    const u64 mModTShoup = static_cast<u64>(
        (static_cast<u128>(mModT) << 64) / q.q);
    const __m256i vmmods =
        _mm256_set1_epi64x(static_cast<long long>(mModTShoup));
    u64 c = 0;
    for (; c + 4 <= cnt; c += 4) {
        __m256i accLo = _mm256_setzero_si256();
        __m256i accHi = _mm256_setzero_si256();
        for (u64 i = 0; i < m; ++i) {
            __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(xhat + i * xhatStride +
                                                  c));
            __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w[i]));
            __m256i plo, phi;
            mulWide64(x, vw, phi, plo);
            __m256i s = _mm256_add_epi64(accLo, plo);
            __m256i carry = ltU64(s, plo);
            accLo = s;
            accHi = _mm256_add_epi64(accHi, phi);
            accHi = _mm256_sub_epi64(accHi, carry);
        }
        __m256i sres = barrettReduceV(accHi, accLo, b);
        // v = trunc(vest); v < m <= 255 so a 32-bit convert suffices.
        __m128i v32 = _mm256_cvttpd_epi32(_mm256_loadu_pd(vest + c));
        __m256i v = _mm256_cvtepi32_epi64(v32);
        __m256i corr = shoupMulLazyV(v, vmmod, vmmods, b.q);
        corr = condSub(corr, b.q, b.qm1);
        __m256i r = _mm256_add_epi64(_mm256_sub_epi64(sres, corr), b.q);
        r = condSub(r, b.q, b.qm1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + c), r);
    }
    for (; c < cnt; ++c) {
        u128 acc = 0;
        for (u64 i = 0; i < m; ++i)
            acc += static_cast<u128>(xhat[i * xhatStride + c]) * w[i];
        u64 xlo = static_cast<u64>(acc);
        u64 xhi = static_cast<u64>(acc >> 64);
        u64 carry = mulHi64(xlo, q.lo);
        u128 mid = static_cast<u128>(xlo) * q.hi +
                   static_cast<u128>(xhi) * q.lo + carry;
        u64 quot = static_cast<u64>(mid >> 64) + xhi * q.hi;
        u64 s = xlo - quot * q.q;
        while (s >= q.q)
            s -= q.q;
        u64 v = static_cast<u64>(vest[c]);
        u128 cx = static_cast<u128>(v) * mModT;
        u64 cxlo = static_cast<u64>(cx);
        u64 cxhi = static_cast<u64>(cx >> 64);
        u64 ccarry = mulHi64(cxlo, q.lo);
        u128 cmid = static_cast<u128>(cxlo) * q.hi +
                    static_cast<u128>(cxhi) * q.lo + ccarry;
        u64 cquot = static_cast<u64>(cmid >> 64) + cxhi * q.hi;
        u64 corr = cxlo - cquot * q.q;
        while (corr >= q.q)
            corr -= q.q;
        out[c] = s >= corr ? s - corr : s + q.q - corr;
    }
}

}  // namespace

const KernelTable &
avx2Table()
{
    static const KernelTable tbl = {
        "avx2",        fwdNttAvx2,        invNttAvx2,
        addModAvx2,    subModAvx2,        negModAvx2,
        mulModBarrettAvx2, mulScalarShoupAvx2, gatherAvx2,
        bconvXhatAvx2, bconvOutAvx2,
        fwdNttAvx2Batch, invNttAvx2Batch,
    };
    return tbl;
}

}  // namespace crophe::fhe::kernels

#endif  // CROPHE_HAVE_AVX2
