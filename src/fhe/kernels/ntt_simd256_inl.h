#ifndef CROPHE_FHE_KERNELS_NTT_SIMD256_INL_H_
#define CROPHE_FHE_KERNELS_NTT_SIMD256_INL_H_

/**
 * @file
 * 256-bit lazy-reduction NTT stage kernels shared by the AVX2 and
 * AVX-512 backends (AVX-512F implies AVX2, so both translation units can
 * instantiate these).
 *
 * The wide-gap stages broadcast one twiddle per butterfly block and are
 * unrolled two vectors deep — the loop is front-end bound, so shaving
 * per-iteration overhead is the remaining lever once the multiply count
 * is minimal. The gap-2 and gap-1 stages (where the seed fell back to
 * scalar butterflies) shuffle x/y operands into separate vectors with
 * in-register permutes so every butterfly of the transform is vectorized.
 * The forward gap-1 stage folds the final [0,4q) → [0,q) normalization
 * into its stores, saving a full pass over the coefficient array.
 *
 * All values follow the Harvey invariants: forward inputs per stage in
 * [0,4q), Shoup lazy products in [0,2q); inverse keeps sums in [0,2q).
 * Everything is exact mod q, so outputs are bit-identical to the scalar
 * and reference paths.
 *
 * Include only from kernel backend .cc files compiled with at least
 * -mavx2; this header is not part of the public kernel API.
 */

#include <immintrin.h>

#include "common/types.h"
#include "fhe/kernels/kernels.h"

namespace crophe::fhe::kernels::simd256 {

inline __m256i
set1(u64 x)
{
    return _mm256_set1_epi64x(static_cast<long long>(x));
}

/** Low 64 bits of the 4 lane-wise 64x64 products. */
inline __m256i
mulLo64(__m256i x, __m256i y)
{
    __m256i lo = _mm256_mul_epu32(x, y);
    __m256i h1 = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), y);
    __m256i h2 = _mm256_mul_epu32(x, _mm256_srli_epi64(y, 32));
    __m256i cross = _mm256_add_epi64(h1, h2);
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/** High 64 bits of the 4 lane-wise 64x64 products (exact). */
inline __m256i
mulHi64(__m256i x, __m256i y)
{
    const __m256i mask32 = _mm256_set1_epi64x(0xffffffff);
    __m256i x1 = _mm256_srli_epi64(x, 32);
    __m256i y1 = _mm256_srli_epi64(y, 32);
    __m256i lolo = _mm256_mul_epu32(x, y);
    __m256i hilo = _mm256_mul_epu32(x1, y);
    __m256i lohi = _mm256_mul_epu32(x, y1);
    __m256i hihi = _mm256_mul_epu32(x1, y1);
    __m256i mid = _mm256_add_epi64(hilo, _mm256_srli_epi64(lolo, 32));
    __m256i mid2 = _mm256_add_epi64(lohi, _mm256_and_si256(mid, mask32));
    return _mm256_add_epi64(
        hihi, _mm256_add_epi64(_mm256_srli_epi64(mid, 32),
                               _mm256_srli_epi64(mid2, 32)));
}

/** x - (x >= bound ? bound : 0); values < 2^63 (signed compare safe). */
inline __m256i
condSub(__m256i x, __m256i bound, __m256i boundMinus1)
{
    return _mm256_sub_epi64(
        x, _mm256_and_si256(_mm256_cmpgt_epi64(x, boundMinus1), bound));
}

/** Shoup lazy product in [0,2q) per lane; any a, requires w < q. */
inline __m256i
shoupMulLazy(__m256i a, __m256i w, __m256i ws, __m256i q)
{
    __m256i hi = mulHi64(a, ws);
    return _mm256_sub_epi64(mulLo64(a, w), mulLo64(hi, q));
}

/** Broadcast-twiddle constants for one stage's block. */
struct NttConsts
{
    __m256i vq, v2q, v2qm1;
};

inline NttConsts
nttConsts(u64 q)
{
    return {set1(q), set1(2 * q), set1(2 * q - 1)};
}

/**
 * Forward CT stage with gap >= 4: per block, x in [0,4q) is reduced to
 * [0,2q), v = y·w lazy, x' = x+v, y' = x-v+2q (both in [0,4q)).
 */
inline void
fwdStageWide(u64 *a, const NttView &t, u64 m, u64 gap, const NttConsts &c)
{
    for (u64 i = 0; i < m; ++i) {
        u64 *x = a + 2 * i * gap;
        u64 *y = x + gap;
        const __m256i w = set1(t.w[m + i]);
        const __m256i ws = set1(t.wShoup[m + i]);
        u64 j = 0;
        for (; j + 8 <= gap; j += 8) {
            __m256i u0 =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(x + j));
            __m256i u1 =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(x + j + 4));
            __m256i y0 =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(y + j));
            __m256i y1 =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(y + j + 4));
            u0 = condSub(u0, c.v2q, c.v2qm1);
            u1 = condSub(u1, c.v2q, c.v2qm1);
            __m256i v0 = shoupMulLazy(y0, w, ws, c.vq);
            __m256i v1 = shoupMulLazy(y1, w, ws, c.vq);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j),
                                _mm256_add_epi64(u0, v0));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j + 4),
                                _mm256_add_epi64(u1, v1));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(y + j),
                _mm256_add_epi64(_mm256_sub_epi64(u0, v0), c.v2q));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(y + j + 4),
                _mm256_add_epi64(_mm256_sub_epi64(u1, v1), c.v2q));
        }
        for (; j < gap; j += 4) {
            __m256i u =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(x + j));
            __m256i yv =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(y + j));
            u = condSub(u, c.v2q, c.v2qm1);
            __m256i v = shoupMulLazy(yv, w, ws, c.vq);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j),
                                _mm256_add_epi64(u, v));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(y + j),
                _mm256_add_epi64(_mm256_sub_epi64(u, v), c.v2q));
        }
    }
}

/**
 * Forward stage with gap == 2 (m = n/4 blocks of [x0 x1 y0 y1]). Two
 * blocks per iteration; x/y are separated with 128-bit-lane permutes and
 * twiddles are pair-broadcast from the table.
 */
inline void
fwdStageGap2(u64 *a, const NttView &t, u64 m, const NttConsts &c)
{
    for (u64 i = 0; i < m; i += 2) {
        u64 *p = a + 4 * i;
        __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i *>(p));
        __m256i vb = _mm256_loadu_si256(reinterpret_cast<__m256i *>(p + 4));
        __m256i x = _mm256_permute2x128_si256(va, vb, 0x20);
        __m256i y = _mm256_permute2x128_si256(va, vb, 0x31);
        __m256i w = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(t.w + m + i))),
            0x50);
        __m256i ws = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(t.wShoup + m + i))),
            0x50);
        __m256i u = condSub(x, c.v2q, c.v2qm1);
        __m256i v = shoupMulLazy(y, w, ws, c.vq);
        __m256i nx = _mm256_add_epi64(u, v);
        __m256i ny = _mm256_add_epi64(_mm256_sub_epi64(u, v), c.v2q);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p),
                            _mm256_permute2x128_si256(nx, ny, 0x20));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 4),
                            _mm256_permute2x128_si256(nx, ny, 0x31));
    }
}

/**
 * Forward stage with gap == 1 (m = n/2 blocks of [x y]), fused with the
 * final normalization: outputs are canonical [0,q). Four blocks per
 * iteration via 64-bit unpacks; the twiddle vectors are permuted into
 * the matching [w0 w2 w1 w3] lane order.
 */
inline void
fwdStageGap1Normalize(u64 *a, const NttView &t, u64 m, const NttConsts &c)
{
    const __m256i vq = c.vq;
    const __m256i vqm1 = _mm256_sub_epi64(vq, _mm256_set1_epi64x(1));
    for (u64 i = 0; i < m; i += 4) {
        u64 *p = a + 2 * i;
        __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i *>(p));
        __m256i vb = _mm256_loadu_si256(reinterpret_cast<__m256i *>(p + 4));
        __m256i xs = _mm256_unpacklo_epi64(va, vb);
        __m256i ys = _mm256_unpackhi_epi64(va, vb);
        __m256i w = _mm256_permute4x64_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(t.w + m + i)),
            0xD8);
        __m256i ws = _mm256_permute4x64_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(t.wShoup + m + i)),
            0xD8);
        __m256i u = condSub(xs, c.v2q, c.v2qm1);
        __m256i v = shoupMulLazy(ys, w, ws, c.vq);
        __m256i nx = _mm256_add_epi64(u, v);
        __m256i ny = _mm256_add_epi64(_mm256_sub_epi64(u, v), c.v2q);
        nx = condSub(condSub(nx, c.v2q, c.v2qm1), vq, vqm1);
        ny = condSub(condSub(ny, c.v2q, c.v2qm1), vq, vqm1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p),
                            _mm256_unpacklo_epi64(nx, ny));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 4),
                            _mm256_unpackhi_epi64(nx, ny));
    }
}

/** Inverse GS stage with gap == 1 (h = n/2 blocks of [x y]). */
inline void
invStageGap1(u64 *a, const NttView &t, u64 h, const NttConsts &c)
{
    for (u64 i = 0; i < h; i += 4) {
        u64 *p = a + 2 * i;
        __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i *>(p));
        __m256i vb = _mm256_loadu_si256(reinterpret_cast<__m256i *>(p + 4));
        __m256i xs = _mm256_unpacklo_epi64(va, vb);
        __m256i ys = _mm256_unpackhi_epi64(va, vb);
        __m256i w = _mm256_permute4x64_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(t.w + h + i)),
            0xD8);
        __m256i ws = _mm256_permute4x64_epi64(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(t.wShoup + h + i)),
            0xD8);
        __m256i s = condSub(_mm256_add_epi64(xs, ys), c.v2q, c.v2qm1);
        __m256i d = _mm256_add_epi64(_mm256_sub_epi64(xs, ys), c.v2q);
        __m256i ny = shoupMulLazy(d, w, ws, c.vq);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p),
                            _mm256_unpacklo_epi64(s, ny));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 4),
                            _mm256_unpackhi_epi64(s, ny));
    }
}

/** Inverse GS stage with gap == 2 (h = n/4 blocks of [x0 x1 y0 y1]). */
inline void
invStageGap2(u64 *a, const NttView &t, u64 h, const NttConsts &c)
{
    for (u64 i = 0; i < h; i += 2) {
        u64 *p = a + 4 * i;
        __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i *>(p));
        __m256i vb = _mm256_loadu_si256(reinterpret_cast<__m256i *>(p + 4));
        __m256i x = _mm256_permute2x128_si256(va, vb, 0x20);
        __m256i y = _mm256_permute2x128_si256(va, vb, 0x31);
        __m256i w = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(t.w + h + i))),
            0x50);
        __m256i ws = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(t.wShoup + h + i))),
            0x50);
        __m256i s = condSub(_mm256_add_epi64(x, y), c.v2q, c.v2qm1);
        __m256i d = _mm256_add_epi64(_mm256_sub_epi64(x, y), c.v2q);
        __m256i ny = shoupMulLazy(d, w, ws, c.vq);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p),
                            _mm256_permute2x128_si256(s, ny, 0x20));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 4),
                            _mm256_permute2x128_si256(s, ny, 0x31));
    }
}

/** Inverse GS stage with gap >= 4, unrolled two vectors deep. */
inline void
invStageWide(u64 *a, const NttView &t, u64 h, u64 gap, const NttConsts &c)
{
    u64 j1 = 0;
    for (u64 i = 0; i < h; ++i) {
        u64 *x = a + j1;
        u64 *y = x + gap;
        const __m256i w = set1(t.w[h + i]);
        const __m256i ws = set1(t.wShoup[h + i]);
        u64 j = 0;
        for (; j + 8 <= gap; j += 8) {
            __m256i u0 =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(x + j));
            __m256i u1 =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(x + j + 4));
            __m256i v0 =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(y + j));
            __m256i v1 =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(y + j + 4));
            __m256i s0 =
                condSub(_mm256_add_epi64(u0, v0), c.v2q, c.v2qm1);
            __m256i s1 =
                condSub(_mm256_add_epi64(u1, v1), c.v2q, c.v2qm1);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j), s0);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j + 4), s1);
            __m256i d0 =
                _mm256_add_epi64(_mm256_sub_epi64(u0, v0), c.v2q);
            __m256i d1 =
                _mm256_add_epi64(_mm256_sub_epi64(u1, v1), c.v2q);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(y + j),
                                shoupMulLazy(d0, w, ws, c.vq));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(y + j + 4),
                                shoupMulLazy(d1, w, ws, c.vq));
        }
        for (; j < gap; j += 4) {
            __m256i u =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(x + j));
            __m256i v =
                _mm256_loadu_si256(reinterpret_cast<__m256i *>(y + j));
            __m256i s = condSub(_mm256_add_epi64(u, v), c.v2q, c.v2qm1);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j), s);
            __m256i d = _mm256_add_epi64(_mm256_sub_epi64(u, v), c.v2q);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(y + j),
                                shoupMulLazy(d, w, ws, c.vq));
        }
        j1 += 2 * gap;
    }
}

}  // namespace crophe::fhe::kernels::simd256

#endif  // CROPHE_FHE_KERNELS_NTT_SIMD256_INL_H_
