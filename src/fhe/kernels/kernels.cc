#include "fhe/kernels/kernels.h"

#include <atomic>
#include <cstdlib>

#include "common/cpu_features.h"
#include "common/logging.h"

namespace crophe::fhe::kernels {

namespace {

const KernelTable *
tableFor(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return &scalarTable();
    case Backend::Avx2:
#ifdef CROPHE_HAVE_AVX2
        return &avx2Table();
#else
        return nullptr;
#endif
    case Backend::Avx512:
#ifdef CROPHE_HAVE_AVX512
        return &avx512Table();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

Backend
widestAvailable()
{
    if (available(Backend::Avx512))
        return Backend::Avx512;
    if (available(Backend::Avx2))
        return Backend::Avx2;
    return Backend::Scalar;
}

struct Active
{
    std::atomic<const KernelTable *> table{nullptr};
    std::atomic<Backend> backend{Backend::Scalar};
};

Active &
active()
{
    static Active a;
    return a;
}

bool
parseName(const std::string &name, Backend *out)
{
    if (name == "scalar")
        *out = Backend::Scalar;
    else if (name == "avx2")
        *out = Backend::Avx2;
    else if (name == "avx512")
        *out = Backend::Avx512;
    else if (name == "auto")
        *out = widestAvailable();
    else
        return false;
    return true;
}

/** One-time default selection: CROPHE_KERNEL env, else widest ISA. */
const KernelTable *
resolveDefault()
{
    Backend b = widestAvailable();
    if (const char *env = std::getenv("CROPHE_KERNEL")) {
        Backend requested;
        if (!parseName(env, &requested)) {
            CROPHE_WARN_ONCE("CROPHE_KERNEL=", env,
                             " is not a backend name "
                             "(scalar|avx2|avx512|auto); using ",
                             backendName(b));
        } else if (!available(requested)) {
            CROPHE_WARN_ONCE("CROPHE_KERNEL=", env,
                             " is unavailable on this host/binary; "
                             "falling back to ",
                             backendName(b));
        } else {
            b = requested;
        }
    }
    active().backend.store(b, std::memory_order_relaxed);
    return tableFor(b);
}

}  // namespace

const KernelTable &
table()
{
    const KernelTable *t = active().table.load(std::memory_order_acquire);
    if (t == nullptr) {
        t = resolveDefault();
        active().table.store(t, std::memory_order_release);
    }
    return *t;
}

Backend
activeBackend()
{
    table();  // force resolution
    return active().backend.load(std::memory_order_relaxed);
}

bool
available(Backend b)
{
    if (tableFor(b) == nullptr)
        return false;
    switch (b) {
    case Backend::Scalar:
        return true;
    case Backend::Avx2:
        return cpuFeatures().avx2;
    case Backend::Avx512:
        return cpuFeatures().avx512;
    }
    return false;
}

void
setBackend(Backend b)
{
    CROPHE_ASSERT(available(b), "kernel backend '", backendName(b),
                  "' unavailable");
    active().backend.store(b, std::memory_order_relaxed);
    active().table.store(tableFor(b), std::memory_order_release);
}

bool
setBackendByName(const std::string &name)
{
    Backend b;
    if (!parseName(name, &b))
        return false;
    if (!available(b)) {
        Backend fallback = widestAvailable();
        CROPHE_WARN_ONCE("kernel backend '", name,
                         "' unavailable on this host/binary; "
                         "falling back to ",
                         backendName(fallback));
        b = fallback;
    }
    setBackend(b);
    return true;
}

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Avx2:
        return "avx2";
    case Backend::Avx512:
        return "avx512";
    }
    return "?";
}

}  // namespace crophe::fhe::kernels
