#include "fhe/kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/cpu_features.h"
#include "common/error.h"
#include "common/logging.h"

namespace crophe::fhe::kernels {

namespace {

const KernelTable *
tableFor(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return &scalarTable();
    case Backend::Avx2:
#ifdef CROPHE_HAVE_AVX2
        return &avx2Table();
#else
        return nullptr;
#endif
    case Backend::Avx512:
#ifdef CROPHE_HAVE_AVX512
        return &avx512Table();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

Backend
widestAvailable()
{
    if (available(Backend::Avx512))
        return Backend::Avx512;
    if (available(Backend::Avx2))
        return Backend::Avx2;
    return Backend::Scalar;
}

struct Active
{
    std::atomic<const KernelTable *> table{nullptr};
    std::atomic<Backend> backend{Backend::Scalar};
};

Active &
active()
{
    static Active a;
    return a;
}

bool
parseName(const std::string &name, Backend *out)
{
    if (name == "scalar")
        *out = Backend::Scalar;
    else if (name == "avx2")
        *out = Backend::Avx2;
    else if (name == "avx512")
        *out = Backend::Avx512;
    else if (name == "auto")
        *out = widestAvailable();
    else
        return false;
    return true;
}

/** One-time default selection: CROPHE_KERNEL env, else widest ISA. */
const KernelTable *
resolveDefault()
{
    Backend b = widestAvailable();
    if (const char *env = std::getenv("CROPHE_KERNEL")) {
        Backend requested;
        if (!parseName(env, &requested)) {
            CROPHE_WARN_ONCE("CROPHE_KERNEL=", env,
                             " is not a backend name "
                             "(scalar|avx2|avx512|auto); using ",
                             backendName(b));
        } else if (!available(requested)) {
            CROPHE_WARN_ONCE("CROPHE_KERNEL=", env,
                             " is unavailable on this host/binary; "
                             "falling back to ",
                             backendName(b));
        } else {
            b = requested;
        }
    }
    active().backend.store(b, std::memory_order_relaxed);
    return tableFor(b);
}

}  // namespace

const KernelTable &
table()
{
    const KernelTable *t = active().table.load(std::memory_order_acquire);
    if (t == nullptr) {
        t = resolveDefault();
        active().table.store(t, std::memory_order_release);
    }
    return *t;
}

Backend
activeBackend()
{
    table();  // force resolution
    return active().backend.load(std::memory_order_relaxed);
}

bool
available(Backend b)
{
    if (tableFor(b) == nullptr)
        return false;
    switch (b) {
    case Backend::Scalar:
        return true;
    case Backend::Avx2:
        return cpuFeatures().avx2;
    case Backend::Avx512:
        return cpuFeatures().avx512;
    }
    return false;
}

void
setBackend(Backend b)
{
    CROPHE_ASSERT(available(b), "kernel backend '", backendName(b),
                  "' unavailable");
    active().backend.store(b, std::memory_order_relaxed);
    active().table.store(tableFor(b), std::memory_order_release);
}

Backend
parseBackend(const std::string &name)
{
    Backend b;
    if (!parseName(name, &b))
        throw RecoverableError("unknown kernel backend '" + name +
                               "' (expected scalar|avx2|avx512|auto)");
    return b;
}

void
requestBackend(Backend b)
{
    if (!available(b)) {
        Backend fallback = widestAvailable();
        CROPHE_WARN_ONCE("kernel backend '", backendName(b),
                         "' unavailable on this host/binary; "
                         "falling back to ",
                         backendName(fallback));
        b = fallback;
    }
    setBackend(b);
}

bool
setBackendByName(const std::string &name)
{
    Backend b;
    if (!parseName(name, &b))
        return false;
    requestBackend(b);
    return true;
}

void
fwdNttBatched(const KernelTable &kt, u64 *const *polys, u64 count,
              const NttView &t, u64 tile)
{
    if (kt.fwdNttBatch == nullptr) {
        for (u64 i = 0; i < count; ++i)
            kt.fwdNtt(polys[i], t);
        return;
    }
    if (tile == 0 || tile >= count) {
        kt.fwdNttBatch(polys, count, t);
        return;
    }
    for (u64 at = 0; at < count; at += tile)
        kt.fwdNttBatch(polys + at, std::min(tile, count - at), t);
}

void
invNttBatched(const KernelTable &kt, u64 *const *polys, u64 count,
              const NttView &t, u64 tile)
{
    if (kt.invNttBatch == nullptr) {
        for (u64 i = 0; i < count; ++i)
            kt.invNtt(polys[i], t);
        return;
    }
    if (tile == 0 || tile >= count) {
        kt.invNttBatch(polys, count, t);
        return;
    }
    for (u64 at = 0; at < count; at += tile)
        kt.invNttBatch(polys + at, std::min(tile, count - at), t);
}

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Avx2:
        return "avx2";
    case Backend::Avx512:
        return "avx512";
    }
    return "?";
}

}  // namespace crophe::fhe::kernels
