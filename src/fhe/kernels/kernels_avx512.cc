/**
 * @file
 * AVX-512 backend: 8-wide 512-bit kernels (requires F + DQ).
 *
 * Structurally a double-width mirror of the AVX2 backend, but simpler
 * where AVX-512 has first-class support: vpmullq supplies the low
 * 64x64 product directly, mask registers replace the blend/and games of
 * the 256-bit compares, and vcvtuqq2pd/vcvttpd2uqq give exact
 * u64↔double conversion (identical to a scalar cast, which is the
 * bit-identity requirement of the BConv float-quotient path). The high
 * 64x64 product still has to be assembled from vpmuludq partials.
 */

#include "fhe/kernels/kernels.h"

#ifdef CROPHE_HAVE_AVX512

#include <immintrin.h>

#include "fhe/kernels/ntt_simd256_inl.h"

namespace crophe::fhe::kernels {

namespace {

inline u64
mulHi64(u64 a, u64 b)
{
    return static_cast<u64>((static_cast<u128>(a) * b) >> 64);
}

inline u64
shoupMulLazyS(u64 a, u64 w, u64 wShoup, u64 q)
{
    return a * w - mulHi64(a, wShoup) * q;
}

/** High 64 bits of the 8 lane-wise 64x64 products. */
inline __m512i
mulHi64v(__m512i x, __m512i y)
{
    const __m512i mask32 = _mm512_set1_epi64(0xffffffff);
    __m512i x1 = _mm512_srli_epi64(x, 32);
    __m512i y1 = _mm512_srli_epi64(y, 32);
    __m512i lolo = _mm512_mul_epu32(x, y);
    __m512i hilo = _mm512_mul_epu32(x1, y);
    __m512i lohi = _mm512_mul_epu32(x, y1);
    __m512i hihi = _mm512_mul_epu32(x1, y1);
    __m512i mid = _mm512_add_epi64(hilo, _mm512_srli_epi64(lolo, 32));
    __m512i mid2 = _mm512_add_epi64(lohi, _mm512_and_si512(mid, mask32));
    return _mm512_add_epi64(
        hihi, _mm512_add_epi64(_mm512_srli_epi64(mid, 32),
                               _mm512_srli_epi64(mid2, 32)));
}

/** x - (x >= bound ? bound : 0), full unsigned range via mask compare. */
inline __m512i
condSub(__m512i x, __m512i bound)
{
    __mmask8 ge = _mm512_cmpge_epu64_mask(x, bound);
    return _mm512_mask_sub_epi64(x, ge, x, bound);
}

/** Shoup lazy product in [0,2q) per lane; any a, w < q. */
inline __m512i
shoupMulLazyV(__m512i a, __m512i w, __m512i ws, __m512i q)
{
    __m512i hi = mulHi64v(a, ws);
    return _mm512_sub_epi64(_mm512_mullo_epi64(a, w),
                            _mm512_mullo_epi64(hi, q));
}

struct BarrettV
{
    __m512i q, lo, hi;
};

inline BarrettV
broadcastBarrett(const BarrettView &b)
{
    BarrettV v;
    v.q = _mm512_set1_epi64(static_cast<long long>(b.q));
    v.lo = _mm512_set1_epi64(static_cast<long long>(b.lo));
    v.hi = _mm512_set1_epi64(static_cast<long long>(b.hi));
    return v;
}

/** Lane-wise Barrett reduction of (xhi:xlo) to canonical [0,q). */
inline __m512i
barrettReduceV(__m512i xhi, __m512i xlo, const BarrettV &b)
{
    const __m512i one = _mm512_set1_epi64(1);
    __m512i carry = mulHi64v(xlo, b.lo);
    __m512i m1hi = mulHi64v(xlo, b.hi);
    __m512i m1lo = _mm512_mullo_epi64(xlo, b.hi);
    __m512i m2hi = mulHi64v(xhi, b.lo);
    __m512i m2lo = _mm512_mullo_epi64(xhi, b.lo);
    __m512i s1 = _mm512_add_epi64(m1lo, m2lo);
    __mmask8 c1 = _mm512_cmplt_epu64_mask(s1, m1lo);
    __m512i s2 = _mm512_add_epi64(s1, carry);
    __mmask8 c2 = _mm512_cmplt_epu64_mask(s2, s1);
    __m512i midhi = _mm512_add_epi64(m1hi, m2hi);
    midhi = _mm512_mask_add_epi64(midhi, c1, midhi, one);
    midhi = _mm512_mask_add_epi64(midhi, c2, midhi, one);
    __m512i quot = _mm512_add_epi64(midhi, _mm512_mullo_epi64(xhi, b.hi));
    __m512i r = _mm512_sub_epi64(xlo, _mm512_mullo_epi64(quot, b.q));
    r = condSub(r, b.q);
    r = condSub(r, b.q);
    return r;
}

inline __m512i
barrettMulV(__m512i a, __m512i c, const BarrettV &b)
{
    return barrettReduceV(mulHi64v(a, c), _mm512_mullo_epi64(a, c), b);
}

/** One 512-bit forward stage (m blocks, gap >= 8), values in [0,4q). */
inline void
fwdStageWide512(u64 *a, const NttView &t, u64 m, u64 gap, __m512i vq,
                __m512i v2q)
{
    for (u64 i = 0; i < m; ++i) {
        u64 *x = a + 2 * i * gap;
        u64 *y = x + gap;
        const __m512i w =
            _mm512_set1_epi64(static_cast<long long>(t.w[m + i]));
        const __m512i ws = _mm512_set1_epi64(
            static_cast<long long>(t.wShoup[m + i]));
        u64 j = 0;
        for (; j + 16 <= gap; j += 16) {
            __m512i u0 = _mm512_loadu_si512(x + j);
            __m512i u1 = _mm512_loadu_si512(x + j + 8);
            __m512i y0 = _mm512_loadu_si512(y + j);
            __m512i y1 = _mm512_loadu_si512(y + j + 8);
            u0 = condSub(u0, v2q);
            u1 = condSub(u1, v2q);
            __m512i v0 = shoupMulLazyV(y0, w, ws, vq);
            __m512i v1 = shoupMulLazyV(y1, w, ws, vq);
            _mm512_storeu_si512(x + j, _mm512_add_epi64(u0, v0));
            _mm512_storeu_si512(x + j + 8, _mm512_add_epi64(u1, v1));
            _mm512_storeu_si512(
                y + j,
                _mm512_add_epi64(_mm512_sub_epi64(u0, v0), v2q));
            _mm512_storeu_si512(
                y + j + 8,
                _mm512_add_epi64(_mm512_sub_epi64(u1, v1), v2q));
        }
        for (; j < gap; j += 8) {
            __m512i u = _mm512_loadu_si512(x + j);
            __m512i yv = _mm512_loadu_si512(y + j);
            u = condSub(u, v2q);
            __m512i v = shoupMulLazyV(yv, w, ws, vq);
            _mm512_storeu_si512(x + j, _mm512_add_epi64(u, v));
            _mm512_storeu_si512(
                y + j,
                _mm512_add_epi64(_mm512_sub_epi64(u, v), v2q));
        }
    }
}

void
fwdNttAvx512(u64 *a, const NttView &t)
{
    const __m512i vq = _mm512_set1_epi64(static_cast<long long>(t.q));
    const __m512i v2q = _mm512_set1_epi64(static_cast<long long>(2 * t.q));
    const simd256::NttConsts c = simd256::nttConsts(t.q);
    u64 m = 1;
    u64 gap = t.n >> 1;
    for (; gap >= 8; m <<= 1, gap >>= 1)
        fwdStageWide512(a, t, m, gap, vq, v2q);
    // gap == 4, 2, 1: shared 256-bit shuffle stages (AVX-512F implies
    // AVX2); the gap-1 stage fuses the final normalization.
    simd256::fwdStageWide(a, t, m, 4, c);
    m <<= 1;
    simd256::fwdStageGap2(a, t, m, c);
    m <<= 1;
    simd256::fwdStageGap1Normalize(a, t, m, c);
}

/** One 512-bit inverse stage (h blocks, gap >= 8), values in [0,2q). */
inline void
invStageWide512(u64 *a, const NttView &t, u64 h, u64 gap, __m512i vq,
                __m512i v2q)
{
    u64 j1 = 0;
    for (u64 i = 0; i < h; ++i) {
        u64 *x = a + j1;
        u64 *y = x + gap;
        const __m512i w =
            _mm512_set1_epi64(static_cast<long long>(t.w[h + i]));
        const __m512i ws = _mm512_set1_epi64(
            static_cast<long long>(t.wShoup[h + i]));
        u64 j = 0;
        for (; j + 16 <= gap; j += 16) {
            __m512i u0 = _mm512_loadu_si512(x + j);
            __m512i u1 = _mm512_loadu_si512(x + j + 8);
            __m512i v0 = _mm512_loadu_si512(y + j);
            __m512i v1 = _mm512_loadu_si512(y + j + 8);
            _mm512_storeu_si512(
                x + j, condSub(_mm512_add_epi64(u0, v0), v2q));
            _mm512_storeu_si512(
                x + j + 8, condSub(_mm512_add_epi64(u1, v1), v2q));
            __m512i d0 = _mm512_add_epi64(_mm512_sub_epi64(u0, v0), v2q);
            __m512i d1 = _mm512_add_epi64(_mm512_sub_epi64(u1, v1), v2q);
            _mm512_storeu_si512(y + j, shoupMulLazyV(d0, w, ws, vq));
            _mm512_storeu_si512(y + j + 8,
                                shoupMulLazyV(d1, w, ws, vq));
        }
        for (; j < gap; j += 8) {
            __m512i u = _mm512_loadu_si512(x + j);
            __m512i v = _mm512_loadu_si512(y + j);
            __m512i s = condSub(_mm512_add_epi64(u, v), v2q);
            _mm512_storeu_si512(x + j, s);
            __m512i d = _mm512_add_epi64(_mm512_sub_epi64(u, v), v2q);
            _mm512_storeu_si512(y + j, shoupMulLazyV(d, w, ws, vq));
        }
        j1 += 2 * gap;
    }
}

/** Final inverse pass: scale by n^{-1}, reduce to canonical [0,q). */
inline void
invNormalizeAvx512(u64 *a, const NttView &t, __m512i vq)
{
    const __m512i nv = _mm512_set1_epi64(static_cast<long long>(t.nInv));
    const __m512i nvs =
        _mm512_set1_epi64(static_cast<long long>(t.nInvShoup));
    for (u64 j = 0; j < t.n; j += 8) {
        __m512i v = _mm512_loadu_si512(a + j);
        v = shoupMulLazyV(v, nv, nvs, vq);
        v = condSub(v, vq);
        _mm512_storeu_si512(a + j, v);
    }
}

void
invNttAvx512(u64 *a, const NttView &t)
{
    const __m512i vq = _mm512_set1_epi64(static_cast<long long>(t.q));
    const __m512i v2q = _mm512_set1_epi64(static_cast<long long>(2 * t.q));
    const simd256::NttConsts c = simd256::nttConsts(t.q);
    // gap == 1, 2, 4: shared 256-bit shuffle stages.
    simd256::invStageGap1(a, t, t.n >> 1, c);
    simd256::invStageGap2(a, t, t.n >> 2, c);
    simd256::invStageWide(a, t, t.n >> 3, 4, c);
    u64 gap = 8;
    for (u64 h = t.n >> 4; h >= 1; h >>= 1, gap <<= 1)
        invStageWide512(a, t, h, gap, vq, v2q);
    invNormalizeAvx512(a, t, vq);
}

/**
 * Batched transforms: stages outermost, polynomials innermost (each
 * stage's twiddle block is streamed once per batch). Per-polynomial
 * butterfly sequence identical to fwdNttAvx512/invNttAvx512, so the
 * results are bit-identical.
 */
void
fwdNttAvx512Batch(u64 *const *polys, u64 count, const NttView &t)
{
    const __m512i vq = _mm512_set1_epi64(static_cast<long long>(t.q));
    const __m512i v2q = _mm512_set1_epi64(static_cast<long long>(2 * t.q));
    const simd256::NttConsts c = simd256::nttConsts(t.q);
    u64 m = 1;
    u64 gap = t.n >> 1;
    for (; gap >= 8; m <<= 1, gap >>= 1)
        for (u64 p = 0; p < count; ++p)
            fwdStageWide512(polys[p], t, m, gap, vq, v2q);
    for (u64 p = 0; p < count; ++p)
        simd256::fwdStageWide(polys[p], t, m, 4, c);
    m <<= 1;
    for (u64 p = 0; p < count; ++p)
        simd256::fwdStageGap2(polys[p], t, m, c);
    m <<= 1;
    for (u64 p = 0; p < count; ++p)
        simd256::fwdStageGap1Normalize(polys[p], t, m, c);
}

void
invNttAvx512Batch(u64 *const *polys, u64 count, const NttView &t)
{
    const __m512i vq = _mm512_set1_epi64(static_cast<long long>(t.q));
    const __m512i v2q = _mm512_set1_epi64(static_cast<long long>(2 * t.q));
    const simd256::NttConsts c = simd256::nttConsts(t.q);
    for (u64 p = 0; p < count; ++p)
        simd256::invStageGap1(polys[p], t, t.n >> 1, c);
    for (u64 p = 0; p < count; ++p)
        simd256::invStageGap2(polys[p], t, t.n >> 2, c);
    for (u64 p = 0; p < count; ++p)
        simd256::invStageWide(polys[p], t, t.n >> 3, 4, c);
    u64 gap = 8;
    for (u64 h = t.n >> 4; h >= 1; h >>= 1, gap <<= 1)
        for (u64 p = 0; p < count; ++p)
            invStageWide512(polys[p], t, h, gap, vq, v2q);
    for (u64 p = 0; p < count; ++p)
        invNormalizeAvx512(polys[p], t, vq);
}

void
addModAvx512(u64 *dst, const u64 *src, u64 n, u64 q)
{
    const __m512i vq = _mm512_set1_epi64(static_cast<long long>(q));
    u64 i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i a = _mm512_loadu_si512(dst + i);
        __m512i b = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(dst + i, condSub(_mm512_add_epi64(a, b), vq));
    }
    for (; i < n; ++i) {
        u64 s = dst[i] + src[i];
        dst[i] = s >= q ? s - q : s;
    }
}

void
subModAvx512(u64 *dst, const u64 *src, u64 n, u64 q)
{
    const __m512i vq = _mm512_set1_epi64(static_cast<long long>(q));
    u64 i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i a = _mm512_loadu_si512(dst + i);
        __m512i b = _mm512_loadu_si512(src + i);
        __m512i s = _mm512_add_epi64(_mm512_sub_epi64(a, b), vq);
        _mm512_storeu_si512(dst + i, condSub(s, vq));
    }
    for (; i < n; ++i) {
        u64 a = dst[i];
        u64 b = src[i];
        dst[i] = a >= b ? a - b : a + q - b;
    }
}

void
negModAvx512(u64 *dst, u64 n, u64 q)
{
    const __m512i vq = _mm512_set1_epi64(static_cast<long long>(q));
    const __m512i zero = _mm512_setzero_si512();
    u64 i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i a = _mm512_loadu_si512(dst + i);
        __mmask8 nz = _mm512_cmpneq_epi64_mask(a, zero);
        __m512i r = _mm512_maskz_sub_epi64(nz, vq, a);
        _mm512_storeu_si512(dst + i, r);
    }
    for (; i < n; ++i)
        dst[i] = dst[i] == 0 ? 0 : q - dst[i];
}

void
mulModBarrettAvx512(u64 *dst, const u64 *src, u64 n, const BarrettView &q)
{
    const BarrettV b = broadcastBarrett(q);
    u64 i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i a = _mm512_loadu_si512(dst + i);
        __m512i c = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(dst + i, barrettMulV(a, c, b));
    }
    for (; i < n; ++i) {
        u128 x = static_cast<u128>(dst[i]) * src[i];
        u64 xlo = static_cast<u64>(x);
        u64 xhi = static_cast<u64>(x >> 64);
        u64 carry = mulHi64(xlo, q.lo);
        u128 mid = static_cast<u128>(xlo) * q.hi +
                   static_cast<u128>(xhi) * q.lo + carry;
        u64 quot = static_cast<u64>(mid >> 64) + xhi * q.hi;
        u64 r = xlo - quot * q.q;
        while (r >= q.q)
            r -= q.q;
        dst[i] = r;
    }
}

void
mulScalarShoupAvx512(u64 *dst, u64 n, u64 q, u64 w, u64 wShoup)
{
    const __m512i vq = _mm512_set1_epi64(static_cast<long long>(q));
    const __m512i vw = _mm512_set1_epi64(static_cast<long long>(w));
    const __m512i vws = _mm512_set1_epi64(static_cast<long long>(wShoup));
    u64 i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i a = _mm512_loadu_si512(dst + i);
        __m512i r = condSub(shoupMulLazyV(a, vw, vws, vq), vq);
        _mm512_storeu_si512(dst + i, r);
    }
    for (; i < n; ++i) {
        u64 r = shoupMulLazyS(dst[i], w, wShoup, q);
        dst[i] = r >= q ? r - q : r;
    }
}

void
gatherAvx512(u64 *dst, const u64 *src, const u64 *idx, u64 n)
{
    u64 k = 0;
    for (; k + 8 <= n; k += 8) {
        __m512i vi = _mm512_loadu_si512(idx + k);
        __m512i v = _mm512_i64gather_epi64(vi, src, 8);
        _mm512_storeu_si512(dst + k, v);
    }
    for (; k < n; ++k)
        dst[k] = src[idx[k]];
}

void
bconvXhatAvx512(u64 *xhat, u64 xhatStride, double *vest, const u64 *in,
                u64 inStride, u64 m, u64 cnt, const u64 *mhatInv,
                const u64 *mhatInvShoup, const u64 *qFrom,
                const double *invM)
{
    for (u64 i = 0; i < m; ++i) {
        const u64 *row = in + i * inStride;
        u64 *out = xhat + i * xhatStride;
        const u64 w = mhatInv[i];
        const u64 ws = mhatInvShoup[i];
        const u64 q = qFrom[i];
        const __m512i vq = _mm512_set1_epi64(static_cast<long long>(q));
        const __m512i vw = _mm512_set1_epi64(static_cast<long long>(w));
        const __m512i vws = _mm512_set1_epi64(static_cast<long long>(ws));
        const __m512d vinv = _mm512_set1_pd(invM[i]);
        u64 c = 0;
        for (; c + 8 <= cnt; c += 8) {
            __m512i x = _mm512_loadu_si512(row + c);
            __m512i r = condSub(shoupMulLazyV(x, vw, vws, vq), vq);
            _mm512_storeu_si512(out + c, r);
            __m512d d = _mm512_cvtepu64_pd(r);
            __m512d acc = _mm512_loadu_pd(vest + c);
            acc = _mm512_add_pd(acc, _mm512_mul_pd(d, vinv));
            _mm512_storeu_pd(vest + c, acc);
        }
        for (; c < cnt; ++c) {
            u64 r = shoupMulLazyS(row[c], w, ws, q);
            if (r >= q)
                r -= q;
            out[c] = r;
            double prod = static_cast<double>(r) * invM[i];
            vest[c] = vest[c] + prod;
        }
    }
}

void
bconvOutAvx512(u64 *out, const u64 *xhat, u64 xhatStride, u64 m, u64 cnt,
               const u64 *w, const double *vest, u64 mModT,
               const BarrettView &q)
{
    const BarrettV b = broadcastBarrett(q);
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i vmmod = _mm512_set1_epi64(static_cast<long long>(mModT));
    u64 c = 0;
    for (; c + 8 <= cnt; c += 8) {
        __m512i accLo = _mm512_setzero_si512();
        __m512i accHi = _mm512_setzero_si512();
        for (u64 i = 0; i < m; ++i) {
            __m512i x = _mm512_loadu_si512(xhat + i * xhatStride + c);
            __m512i vw = _mm512_set1_epi64(static_cast<long long>(w[i]));
            __m512i plo = _mm512_mullo_epi64(x, vw);
            __m512i phi = mulHi64v(x, vw);
            __m512i s = _mm512_add_epi64(accLo, plo);
            __mmask8 carry = _mm512_cmplt_epu64_mask(s, plo);
            accLo = s;
            accHi = _mm512_add_epi64(accHi, phi);
            accHi = _mm512_mask_add_epi64(accHi, carry, accHi, one);
        }
        __m512i sres = barrettReduceV(accHi, accLo, b);
        __m512i v = _mm512_cvttpd_epu64(_mm512_loadu_pd(vest + c));
        __m512i corr = barrettMulV(v, vmmod, b);
        __m512i r = _mm512_add_epi64(_mm512_sub_epi64(sres, corr), b.q);
        r = condSub(r, b.q);
        _mm512_storeu_si512(out + c, r);
    }
    for (; c < cnt; ++c) {
        u128 acc = 0;
        for (u64 i = 0; i < m; ++i)
            acc += static_cast<u128>(xhat[i * xhatStride + c]) * w[i];
        u64 xlo = static_cast<u64>(acc);
        u64 xhi = static_cast<u64>(acc >> 64);
        u64 carry = mulHi64(xlo, q.lo);
        u128 mid = static_cast<u128>(xlo) * q.hi +
                   static_cast<u128>(xhi) * q.lo + carry;
        u64 quot = static_cast<u64>(mid >> 64) + xhi * q.hi;
        u64 s = xlo - quot * q.q;
        while (s >= q.q)
            s -= q.q;
        u64 v = static_cast<u64>(vest[c]);
        u128 cx = static_cast<u128>(v) * mModT;
        u64 cxlo = static_cast<u64>(cx);
        u64 cxhi = static_cast<u64>(cx >> 64);
        u64 ccarry = mulHi64(cxlo, q.lo);
        u128 cmid = static_cast<u128>(cxlo) * q.hi +
                    static_cast<u128>(cxhi) * q.lo + ccarry;
        u64 cquot = static_cast<u64>(cmid >> 64) + cxhi * q.hi;
        u64 corr = cxlo - cquot * q.q;
        while (corr >= q.q)
            corr -= q.q;
        out[c] = s >= corr ? s - corr : s + q.q - corr;
    }
}

}  // namespace

const KernelTable &
avx512Table()
{
    static const KernelTable tbl = {
        "avx512",        fwdNttAvx512,        invNttAvx512,
        addModAvx512,    subModAvx512,        negModAvx512,
        mulModBarrettAvx512, mulScalarShoupAvx512, gatherAvx512,
        bconvXhatAvx512, bconvOutAvx512,
        fwdNttAvx512Batch, invNttAvx512Batch,
    };
    return tbl;
}

}  // namespace crophe::fhe::kernels

#endif  // CROPHE_HAVE_AVX512
