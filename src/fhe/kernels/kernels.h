#ifndef CROPHE_FHE_KERNELS_KERNELS_H_
#define CROPHE_FHE_KERNELS_KERNELS_H_

/**
 * @file
 * Vectorized lazy-reduction kernel layer (DESIGN.md §10).
 *
 * Every hot loop of the functional CKKS library — NTT butterflies,
 * element-wise limb ops, the BConv inner product, automorphism gathers —
 * funnels through this table of function pointers. Three backends
 * implement the table:
 *
 *   - scalar:  portable C++, Harvey lazy reduction, always available;
 *   - avx2:    4-wide 256-bit kernels (64x64 multiplies assembled from
 *              vpmuludq partial products);
 *   - avx512:  8-wide 512-bit kernels (AVX-512F + DQ).
 *
 * The active backend is chosen once per process: an explicit
 * setBackend()/setBackendByName() call (the --kernel flag) wins, then
 * the CROPHE_KERNEL environment variable, then the widest ISA the host
 * supports. Every backend is bit-identical: all kernels produce
 * canonical (fully reduced) outputs, lazy reduction is an internal
 * invariant only, and the BConv float-quotient estimate performs its
 * additions in a fixed order with contraction pinned off — so switching
 * backends, or machines, never changes a single limb.
 *
 * Values are u64 residues below 2^60 moduli, which leaves the headroom
 * the lazy NTT needs ([0,4q) fits in 62 bits) and lets comparisons use
 * signed vector instructions.
 */

#include <string>

#include "common/types.h"

namespace crophe::fhe::kernels {

/** Kernel implementation families, ordered by preference. */
enum class Backend : u8
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/**
 * One (N, q) NTT's precomputed state, viewed by the kernels.
 *
 * w/wShoup hold the per-butterfly twiddles in the merged radix-2 heap
 * order of fhe/ntt.h (entry m+i serves block i of the stage with m
 * blocks); wShoup[k] = floor(w[k]·2^64 / q).
 */
struct NttView
{
    const u64 *w;
    const u64 *wShoup;
    u64 n;
    u64 q;
    u64 nInv;       ///< n^{-1} mod q (inverse transform only)
    u64 nInvShoup;  ///< floor(nInv·2^64 / q)
};

/** A modulus plus its two-word Barrett constant floor(2^128 / q). */
struct BarrettView
{
    u64 q;
    u64 lo;  ///< low word of floor(2^128 / q)
    u64 hi;  ///< high word of floor(2^128 / q)
};

/**
 * The dispatch table. All kernels are pure functions over caller-owned
 * arrays; "mod q" results are always canonical representatives in
 * [0, q).
 */
struct KernelTable
{
    const char *name;

    /** In-place forward negacyclic NTT; input/output canonical. */
    void (*fwdNtt)(u64 *a, const NttView &t);
    /** In-place inverse negacyclic NTT incl. n^{-1} scaling. */
    void (*invNtt)(u64 *a, const NttView &t);

    /** dst[i] = (dst[i] + src[i]) mod q; inputs canonical. */
    void (*addMod)(u64 *dst, const u64 *src, u64 n, u64 q);
    /** dst[i] = (dst[i] - src[i]) mod q; inputs canonical. */
    void (*subMod)(u64 *dst, const u64 *src, u64 n, u64 q);
    /** dst[i] = (-dst[i]) mod q. */
    void (*negMod)(u64 *dst, u64 n, u64 q);
    /** dst[i] = dst[i]·src[i] mod q via two-word Barrett. */
    void (*mulModBarrett)(u64 *dst, const u64 *src, u64 n,
                          const BarrettView &q);
    /** dst[i] = dst[i]·w mod q via Shoup; requires w < q, dst canonical. */
    void (*mulScalarShoup)(u64 *dst, u64 n, u64 q, u64 w, u64 wShoup);
    /** dst[k] = src[idx[k]] (automorphism gather; idx values < n_src). */
    void (*gather)(u64 *dst, const u64 *src, const u64 *idx, u64 n);

    /**
     * BConv stage 1 over a coefficient tile: for each source limb i and
     * tile coefficient c,
     *   xhat[i·xhatStride + c] = in[i·inStride + c]·mhatInv[i] mod qFrom[i]
     * and vest[c] += double(xhat)·invM[i], accumulated in ascending-i
     * order (the float quotient's summation order is part of the
     * bit-identity contract).
     */
    void (*bconvXhat)(u64 *xhat, u64 xhatStride, double *vest, const u64 *in,
                      u64 inStride, u64 m, u64 cnt, const u64 *mhatInv,
                      const u64 *mhatInvShoup, const u64 *qFrom,
                      const double *invM);

    /**
     * BConv stage 2 for one target modulus: for each tile coefficient c,
     *   s = (Σ_i xhat[i·xhatStride + c]·w[i]) mod q   (exact 128-bit sum)
     *   out[c] = s - floor(vest[c])·mModT mod q.
     * Requires m < 256 so the 128-bit accumulator cannot overflow.
     */
    void (*bconvOut)(u64 *out, const u64 *xhat, u64 xhatStride, u64 m,
                     u64 cnt, const u64 *w, const double *vest, u64 mModT,
                     const BarrettView &q);

    // -- Batched entries (capability/fallback contract) -----------------
    //
    // Batched kernels transform `count` polynomials that all share ONE
    // (n, q) NttView, walking the butterfly stages outermost and the
    // polynomials innermost so each stage's twiddle block is loaded once
    // per batch instead of once per polynomial (the Hermes-style hybrid
    // dataflow, DESIGN.md §13). They are *nullable*: a backend without a
    // native batched path leaves the slot null, and callers must go
    // through fwdNttBatched()/invNttBatched() below, which fall back to
    // looping the single-polynomial entry. Batched entries live at the
    // end of the struct so older aggregate initializers value-initialize
    // them to null. Results are bit-identical to the per-polynomial
    // kernels by construction (same butterfly sequence per polynomial).

    /** In-place forward NTT of polys[0..count) (may be null). */
    void (*fwdNttBatch)(u64 *const *polys, u64 count, const NttView &t);
    /** In-place inverse NTT of polys[0..count) (may be null). */
    void (*invNttBatch)(u64 *const *polys, u64 count, const NttView &t);
};

/**
 * Transform a batch through @p kt's batched entry when present, else
 * loop the single-polynomial kernel. @p tile bounds how many
 * polynomials one stage-outer pass interleaves (the autotuner's batch
 * width); 0 means "whole batch". All tile choices are bit-identical.
 */
void fwdNttBatched(const KernelTable &kt, u64 *const *polys, u64 count,
                   const NttView &t, u64 tile = 0);
void invNttBatched(const KernelTable &kt, u64 *const *polys, u64 count,
                   const NttView &t, u64 tile = 0);

/** The selected backend's table (resolves on first use). */
const KernelTable &table();

/** The selected backend (resolves on first use). */
Backend activeBackend();

/** Whether @p b can run on this host with this binary. */
bool available(Backend b);

/** Force @p b; panics if unavailable. Intended for tests and flags. */
void setBackend(Backend b);

/**
 * Parse a backend name ("scalar" | "avx2" | "avx512" | "auto", where
 * "auto" resolves to the widest ISA this host supports). Throws a
 * typed RecoverableError on anything else — the one place unknown
 * `--kernel` / CROPHE_KERNEL spellings are rejected, so downstream
 * code only ever sees the enum.
 */
Backend parseBackend(const std::string &name);

/**
 * Install @p b as the active backend, falling back to the widest
 * available one with a one-time warning when @p b cannot run here (so
 * an explicit avx512 request degrades gracefully on older hosts).
 */
void requestBackend(Backend b);

/**
 * Select by name; unknown names return false (legacy shim over
 * parseBackend() + requestBackend(), kept for string-typed callers).
 */
bool setBackendByName(const std::string &name);

const char *backendName(Backend b);

/**
 * The seed's eager scalar NTT (per-butterfly canonical reduction),
 * retained verbatim as the differential-test reference and the
 * before/after baseline of bench_kernels.
 */
void referenceFwdNtt(u64 *a, const NttView &t);
void referenceInvNtt(u64 *a, const NttView &t);

/** Per-backend tables (unconditionally: scalar; compile-gated: SIMD). */
const KernelTable &scalarTable();
#ifdef CROPHE_HAVE_AVX2
const KernelTable &avx2Table();
#endif
#ifdef CROPHE_HAVE_AVX512
const KernelTable &avx512Table();
#endif

}  // namespace crophe::fhe::kernels

#endif  // CROPHE_FHE_KERNELS_KERNELS_H_
