#ifndef CROPHE_FHE_KEYS_H_
#define CROPHE_FHE_KEYS_H_

/**
 * @file
 * CKKS key material: secret/public keys and key-switching keys.
 *
 * Key-switching keys (evk) use the digit decomposition of Section II-A:
 * with dnum digits of α limbs each, evk has shape
 * 2 × dnum × (α + L + 1) × N — each digit holds a pair of polynomials over
 * the extended basis {q_0…q_L, p_0…p_{α-1}}.
 */

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fhe/rns.h"

namespace crophe::fhe {

/** Secret key: ternary s, kept in Eval representation over the full basis. */
struct SecretKey
{
    RnsPoly s;
};

/** Public encryption key (b, a) = (-a·s + e, a) over qBasis(L), Eval. */
struct PublicKey
{
    RnsPoly b;
    RnsPoly a;
};

/** One key-switching key: dnum digit pairs over qpBasis(L), Eval. */
struct KswKey
{
    std::vector<RnsPoly> b;  ///< b[j] for digit j
    std::vector<RnsPoly> a;  ///< a[j] for digit j

    u32 digitCount() const { return static_cast<u32>(b.size()); }

    /** Total size of this key in machine words (2·dnum·(α+L+1)·N). */
    u64 sizeWords() const;
};

/** Generates all key material from a seeded RNG. */
class KeyGenerator
{
  public:
    KeyGenerator(const FheContext &ctx, u64 seed);

    const SecretKey &secretKey() const { return sk_; }

    PublicKey makePublicKey();

    /** Relinearization key: switches from s² to s. */
    KswKey makeRelinKey();

    /** Rotation key for a left rotation by @p r slots. */
    KswKey makeRotationKey(i64 r);

    /** Conjugation key (galois element 2N-1). */
    KswKey makeConjugationKey();

    /** Generic key switching from @p s_from (full-basis, Eval) to s. */
    KswKey makeKswKey(const RnsPoly &s_from);

  private:
    /** Sample a full-basis polynomial with ternary coefficients. */
    RnsPoly sampleTernary(const std::vector<u32> &basis);
    /** Sample a full-basis polynomial with centered Gaussian noise. */
    RnsPoly sampleNoise(const std::vector<u32> &basis);

    const FheContext *ctx_;
    Rng rng_;
    SecretKey sk_;
};

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_KEYS_H_
