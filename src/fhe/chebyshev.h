#ifndef CROPHE_FHE_CHEBYSHEV_H_
#define CROPHE_FHE_CHEBYSHEV_H_

/**
 * @file
 * Homomorphic polynomial evaluation — the computational substrate of
 * bootstrapping's EvalMod step, which approximates a modular reduction by
 * a high-degree polynomial (a scaled sine) evaluated with HMult/CMult
 * chains (Section II-A).
 */

#include <vector>

#include "fhe/ckks.h"

namespace crophe::fhe {

/**
 * Evaluate p(x) = c_0 + c_1 x + … + c_d x^d homomorphically via Horner's
 * rule. Consumes d levels (one HMult+rescale per degree).
 */
Ciphertext evalPolyHorner(const Evaluator &eval, const Ciphertext &x,
                          const std::vector<double> &coeffs,
                          const KswKey &rlk);

/**
 * Chebyshev series coefficients for cos(t·x) on [-1, 1], degree @p degree —
 * the kernel of EvalMod's sine approximation. Returned in the monomial
 * basis (suitable for evalPolyHorner); degrees beyond ~16 are not
 * recommended in the monomial basis for numerical reasons.
 */
std::vector<double> cosineMonomialCoeffs(double t, u32 degree);

/** Plain reference evaluation of a monomial-basis polynomial. */
double evalPolyRef(const std::vector<double> &coeffs, double x);

}  // namespace crophe::fhe

#endif  // CROPHE_FHE_CHEBYSHEV_H_
