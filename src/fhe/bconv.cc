#include "fhe/bconv.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace crophe::fhe {

BaseConverter::BaseConverter(const FheContext &ctx, std::vector<u32> from,
                             std::vector<u32> to)
    : ctx_(&ctx), from_(std::move(from)), to_(std::move(to))
{
    const u32 m = static_cast<u32>(from_.size());
    const u32 t = static_cast<u32>(to_.size());
    CROPHE_ASSERT(m > 0 && t > 0, "empty basis in BaseConverter");

    std::vector<u64> from_vals;
    for (u32 idx : from_)
        from_vals.push_back(ctx.modValue(idx));

    mhatInv_.resize(m);
    invM_.resize(m);
    for (u32 i = 0; i < m; ++i) {
        const Modulus &mi = ctx.mod(from_[i]);
        std::vector<u64> others;
        for (u32 k = 0; k < m; ++k)
            if (k != i)
                others.push_back(from_vals[k]);
        BigUInt mhat = others.empty() ? BigUInt(1) : productOf(others);
        mhatInv_[i] = mi.inv(mhat.modSmall(mi.value()));
        invM_[i] = 1.0 / static_cast<double>(mi.value());
    }

    BigUInt big_m = productOf(from_vals);
    mhatModT_.resize(t);
    mModT_.resize(t);
    for (u32 j = 0; j < t; ++j) {
        u64 tj = ctx.modValue(to_[j]);
        mhatModT_[j].resize(m);
        for (u32 i = 0; i < m; ++i) {
            std::vector<u64> others;
            for (u32 k = 0; k < m; ++k)
                if (k != i)
                    others.push_back(from_vals[k]);
            BigUInt mhat = others.empty() ? BigUInt(1) : productOf(others);
            mhatModT_[j][i] = mhat.modSmall(tj);
        }
        mModT_[j] = big_m.modSmall(tj);
    }
}

RnsPoly
BaseConverter::convert(const RnsPoly &in) const
{
    CROPHE_ASSERT(in.rep() == Rep::Coeff, "BConv requires Coeff rep");
    CROPHE_ASSERT(in.basis() == from_, "input basis mismatch");
    const u32 m = static_cast<u32>(from_.size());
    const u32 t = static_cast<u32>(to_.size());
    const u64 n = in.n();

    RnsPoly out(*ctx_, to_, Rep::Coeff);

    // Coefficients are independent, so chunk the coefficient axis; each
    // chunk keeps its own xhat scratch so nothing is shared between
    // chunks. Per-coefficient arithmetic is exact (integer mod-q plus a
    // float quotient computed in a fixed order within the coefficient),
    // so the result is bit-identical for any chunking.
    parallelForRange(0, n, [&](u64 c0, u64 c1) {
        // Scratch: xhat_i = x_i * (M/m_i)^{-1} mod m_i, and the float
        // quotient v = floor(sum_i xhat_i / m_i).
        std::vector<u64> xhat(m);
        for (u64 c = c0; c < c1; ++c) {
            double v_est = 0.0;
            for (u32 i = 0; i < m; ++i) {
                const Modulus &mi = ctx_->mod(from_[i]);
                xhat[i] = mi.mul(in.limb(i)[c], mhatInv_[i]);
                v_est += static_cast<double>(xhat[i]) * invM_[i];
            }
            // v_est = u + x/M with x/M in [0,1); the overshoot count u is
            // its floor (rounding would off-by-one whenever x > M/2).
            u64 v = static_cast<u64>(v_est);
            for (u32 j = 0; j < t; ++j) {
                const Modulus &tj = ctx_->mod(to_[j]);
                u128 acc = 0;
                for (u32 i = 0; i < m; ++i) {
                    acc += static_cast<u128>(xhat[i]) * mhatModT_[j][i];
                    // Keep the accumulator bounded (m can be ~60 limbs).
                    if ((i & 7) == 7)
                        acc = tj.reduce(acc);
                }
                u64 s = tj.reduce(acc);
                u64 corr = tj.mul(tj.reduce64(v), mModT_[j]);
                out.limb(j)[c] = tj.sub(s, corr);
            }
        }
    });
    return out;
}

RnsPoly
modUpDigit(const FheContext &ctx, const RnsPoly &d_coeff, u32 digit,
           u32 level)
{
    CROPHE_ASSERT(d_coeff.rep() == Rep::Coeff, "ModUp requires Coeff rep");
    auto digit_limbs = ctx.digitLimbs(digit, level);
    auto target = ctx.qpBasis(level);

    RnsPoly digit_poly = d_coeff.restrictedTo(digit_limbs);

    // Convert the digit to the moduli it does not already cover, then
    // splice its own limbs through unchanged.
    std::vector<u32> missing;
    for (u32 idx : target) {
        bool have = false;
        for (u32 d : digit_limbs)
            have |= (d == idx);
        if (!have)
            missing.push_back(idx);
    }
    BaseConverter conv(ctx, digit_limbs, missing);
    RnsPoly converted = conv.convert(digit_poly);

    RnsPoly out(ctx, target, Rep::Coeff);
    u32 mi = 0;
    for (u32 k = 0; k < target.size(); ++k) {
        bool own = false;
        for (u32 i = 0; i < digit_limbs.size(); ++i) {
            if (digit_limbs[i] == target[k]) {
                out.limb(k) = digit_poly.limb(i);
                own = true;
                break;
            }
        }
        if (!own)
            out.limb(k) = converted.limb(mi++);
    }
    return out;
}

RnsPoly
modDown(const FheContext &ctx, const RnsPoly &in, u32 level)
{
    CROPHE_ASSERT(in.rep() == Rep::Coeff, "ModDown requires Coeff rep");
    CROPHE_ASSERT(in.basis() == ctx.qpBasis(level), "unexpected basis");

    auto q_basis = ctx.qBasis(level);
    auto p_basis = ctx.pBasis();

    RnsPoly p_part = in.restrictedTo(p_basis);
    BaseConverter conv(ctx, p_basis, q_basis);
    RnsPoly p_in_q = conv.convert(p_part);

    u64 p_mod_small = 0;  // P mod q_i computed per limb below
    (void)p_mod_small;

    RnsPoly out(ctx, q_basis, Rep::Coeff);
    parallelFor(0, q_basis.size(), [&](u64 i) {
        const Modulus &qi = ctx.mod(q_basis[i]);
        u64 p_inv = qi.inv(ctx.bigP().modSmall(qi.value()));
        const auto &top = in.limb(i);
        const auto &low = p_in_q.limb(i);
        auto &dst = out.limb(i);
        for (u64 c = 0; c < in.n(); ++c)
            dst[c] = qi.mul(qi.sub(top[c], low[c]), p_inv);
    });
    return out;
}

RnsPoly
rescalePoly(const FheContext &ctx, const RnsPoly &in, u32 level)
{
    CROPHE_ASSERT(in.rep() == Rep::Coeff, "rescale requires Coeff rep");
    CROPHE_ASSERT(level >= 1, "cannot rescale at level 0");
    CROPHE_ASSERT(in.basis() == ctx.qBasis(level), "unexpected basis");

    auto out_basis = ctx.qBasis(level - 1);
    const Modulus &ql = ctx.mod(level);

    RnsPoly out(ctx, out_basis, Rep::Coeff);
    const auto &last = in.limb(level);
    parallelFor(0, out_basis.size(), [&](u64 i) {
        const Modulus &qi = ctx.mod(out_basis[i]);
        u64 ql_inv = qi.inv(qi.reduce64(ql.value()));
        const auto &src = in.limb(i);
        auto &dst = out.limb(i);
        for (u64 c = 0; c < in.n(); ++c) {
            // (x - [x]_{q_l}) / q_l mod q_i, with the centered lift of
            // [x]_{q_l} to reduce rounding bias.
            u64 r = last[c];
            u64 r_mod = qi.reduce64(r);
            dst[c] = qi.mul(qi.sub(src[c], r_mod), ql_inv);
        }
    });
    return out;
}

}  // namespace crophe::fhe
