#include "fhe/bconv.h"

#include <algorithm>
#include <cmath>

#include "common/arena.h"
#include "common/logging.h"
#include "common/parallel.h"

namespace crophe::fhe {

namespace {

/** Coefficients per BConv tile: the m × kTile xhat block plus the tile's
 *  quotients stay L1/L2-resident while every target modulus consumes
 *  them. 512 coefficients × 60 limbs is ~240 KiB of u64. */
constexpr u64 kTileCoeffs = 512;

}  // namespace

BaseConverter::BaseConverter(const FheContext &ctx, std::vector<u32> from,
                             std::vector<u32> to)
    : ctx_(&ctx), from_(std::move(from)), to_(std::move(to))
{
    const u32 m = static_cast<u32>(from_.size());
    const u32 t = static_cast<u32>(to_.size());
    CROPHE_ASSERT(m > 0 && t > 0, "empty basis in BaseConverter");
    // The stage-2 kernels accumulate m products of <2^120 in 128 bits
    // without intermediate reduction; m < 256 keeps that exact.
    CROPHE_ASSERT(m < 256, "source basis too large for BConv kernels");

    std::vector<u64> from_vals;
    from_vals.reserve(m);
    for (u32 idx : from_)
        from_vals.push_back(ctx.modValue(idx));

    // Each complement product M/m_i is computed exactly once and reused
    // for every target modulus.
    std::vector<BigUInt> mhat;
    mhat.reserve(m);
    std::vector<u64> others;
    others.reserve(m > 0 ? m - 1 : 0);
    for (u32 i = 0; i < m; ++i) {
        others.clear();
        for (u32 k = 0; k < m; ++k)
            if (k != i)
                others.push_back(from_vals[k]);
        mhat.push_back(others.empty() ? BigUInt(1) : productOf(others));
    }

    mhatInv_.assign(m);
    mhatInvShoup_.assign(m);
    fromQ_.assign(m);
    invM_.assign(m);
    for (u32 i = 0; i < m; ++i) {
        const Modulus &mi = ctx.mod(from_[i]);
        mhatInv_[i] = mi.inv(mhat[i].modSmall(mi.value()));
        mhatInvShoup_[i] = shoupQuotient(mhatInv_[i], mi.value());
        fromQ_[i] = mi.value();
        invM_[i] = 1.0 / static_cast<double>(mi.value());
    }

    BigUInt big_m = productOf(from_vals);
    mhatModT_.assign(static_cast<std::size_t>(t) * m);
    mModT_.resize(t);
    toView_.resize(t);
    for (u32 j = 0; j < t; ++j) {
        const Modulus &tj = ctx.mod(to_[j]);
        for (u32 i = 0; i < m; ++i)
            mhatModT_[static_cast<std::size_t>(j) * m + i] =
                mhat[i].modSmall(tj.value());
        mModT_[j] = big_m.modSmall(tj.value());
        toView_[j] = {tj.value(), tj.barrettLo(), tj.barrettHi()};
    }
}

RnsPoly
BaseConverter::convert(const RnsPoly &in) const
{
    RnsPoly out(*ctx_, to_, Rep::Coeff);
    std::vector<u64 *> rows(to_.size());
    for (u32 j = 0; j < to_.size(); ++j)
        rows[j] = out.limb(j).data();
    convertInto(in, rows.data());
    return out;
}

void
BaseConverter::convertInto(const RnsPoly &in, u64 *const *dst_rows) const
{
    CROPHE_ASSERT(in.rep() == Rep::Coeff, "BConv requires Coeff rep");
    CROPHE_ASSERT(in.basis() == from_, "input basis mismatch");
    const u32 m = static_cast<u32>(from_.size());
    const u32 t = static_cast<u32>(to_.size());
    const u64 n = in.n();
    const u64 in_stride = in.limbStride();

    const auto &kt = kernels::table();

    // Coefficients are independent, so chunk the coefficient axis; each
    // chunk tiles through its range with thread-local arena scratch.
    // Per-coefficient arithmetic is exact (integer mod-q plus a float
    // quotient accumulated in fixed ascending-limb order), so the result
    // is bit-identical for any chunking or tile size.
    const u64 *in_base = in.limb(0).data();
    parallelForRange(0, n, [&](u64 c0, u64 c1) {
        ScratchArena::Scope scope;
        ScratchArena &arena = ScratchArena::local();
        u64 *xhat = arena.alloc<u64>(static_cast<std::size_t>(m) *
                                     kTileCoeffs);
        double *vest = arena.alloc<double>(kTileCoeffs);
        for (u64 tile = c0; tile < c1; tile += kTileCoeffs) {
            const u64 cnt = std::min(kTileCoeffs, c1 - tile);
            std::fill(vest, vest + cnt, 0.0);
            kt.bconvXhat(xhat, kTileCoeffs, vest, in_base + tile, in_stride,
                         m, cnt, mhatInv_.data(), mhatInvShoup_.data(),
                         fromQ_.data(), invM_.data());
            for (u32 j = 0; j < t; ++j) {
                kt.bconvOut(dst_rows[j] + tile, xhat,
                            kTileCoeffs, m, cnt,
                            mhatModT_.data() + static_cast<std::size_t>(j) * m,
                            vest, mModT_[j], toView_[j]);
            }
        }
    });
}

RnsPoly
modUpDigit(const FheContext &ctx, const RnsPoly &d_coeff, u32 digit,
           u32 level)
{
    CROPHE_ASSERT(d_coeff.rep() == Rep::Coeff, "ModUp requires Coeff rep");
    auto digit_limbs = ctx.digitLimbs(digit, level);
    auto target = ctx.qpBasis(level);

    RnsPoly digit_poly = d_coeff.restrictedTo(digit_limbs);

    // Convert the digit to the moduli it does not already cover, then
    // splice its own limbs through unchanged.
    std::vector<u32> missing;
    for (u32 idx : target) {
        bool have = false;
        for (u32 d : digit_limbs)
            have |= (d == idx);
        if (!have)
            missing.push_back(idx);
    }
    const BaseConverter &conv = ctx.converter(digit_limbs, missing);
    RnsPoly converted = conv.convert(digit_poly);

    RnsPoly out(ctx, target, Rep::Coeff);
    u32 mi = 0;
    for (u32 k = 0; k < target.size(); ++k) {
        bool own = false;
        for (u32 i = 0; i < digit_limbs.size(); ++i) {
            if (digit_limbs[i] == target[k]) {
                out.copyLimbFrom(k, digit_poly, i);
                own = true;
                break;
            }
        }
        if (!own)
            out.copyLimbFrom(k, converted, mi++);
    }
    return out;
}

RnsPoly
fusedModUpEval(const FheContext &ctx, const RnsPoly &d_eval,
               const RnsPoly &d_coeff, u32 digit, u32 level)
{
    CROPHE_ASSERT(d_eval.rep() == Rep::Eval, "fused ModUp: d must be Eval");
    CROPHE_ASSERT(d_coeff.rep() == Rep::Coeff,
                  "fused ModUp: d_coeff must be Coeff");
    auto digit_limbs = ctx.digitLimbs(digit, level);
    auto target = ctx.qpBasis(level);

    RnsPoly digit_poly = d_coeff.restrictedTo(digit_limbs);
    RnsPoly out(ctx, target, Rep::Eval);

    // The digit's own limbs come straight from the Eval-domain input:
    // the unfused path would iNTT and then NTT them back unchanged.
    // Everything else is BConv'd from the Coeff-domain digit into the
    // output slab and forward-transformed in place.
    std::vector<u32> missing;       // global modulus indices to convert
    std::vector<u64 *> missing_rows;  // their rows in the output slab
    const auto &d_basis = d_eval.basis();
    for (u32 k = 0; k < target.size(); ++k) {
        bool own = false;
        for (u32 i = 0; i < digit_limbs.size(); ++i) {
            if (digit_limbs[i] == target[k]) {
                auto it = std::find(d_basis.begin(), d_basis.end(),
                                    target[k]);
                CROPHE_ASSERT(it != d_basis.end(),
                              "digit limb missing from d_eval");
                out.copyLimbFrom(
                    k, d_eval, static_cast<u32>(it - d_basis.begin()));
                own = true;
                break;
            }
        }
        if (!own) {
            missing.push_back(target[k]);
            missing_rows.push_back(out.limb(k).data());
        }
    }

    const BaseConverter &conv = ctx.converter(digit_limbs, missing);
    conv.convertInto(digit_poly, missing_rows.data());
    // Converted limbs all have distinct moduli, so they transform
    // independently (no shared-twiddle batch to form here).
    parallelFor(0, missing.size(), [&](u64 i) {
        ctx.ntt(missing[i]).forward(missing_rows[i]);
    });
    return out;
}

RnsPoly
modDown(const FheContext &ctx, const RnsPoly &in, u32 level)
{
    CROPHE_ASSERT(in.rep() == Rep::Coeff, "ModDown requires Coeff rep");
    CROPHE_ASSERT(in.basis() == ctx.qpBasis(level), "unexpected basis");

    auto q_basis = ctx.qBasis(level);
    auto p_basis = ctx.pBasis();

    RnsPoly p_part = in.restrictedTo(p_basis);
    const BaseConverter &conv = ctx.converter(p_basis, q_basis);
    RnsPoly p_in_q = conv.convert(p_part);

    const auto &kt = kernels::table();
    RnsPoly out(ctx, q_basis, Rep::Coeff);
    parallelFor(0, q_basis.size(), [&](u64 i) {
        const Modulus &qi = ctx.mod(q_basis[i]);
        u64 p_inv = qi.inv(ctx.bigP().modSmall(qi.value()));
        out.copyLimbFrom(static_cast<u32>(i), in, static_cast<u32>(i));
        u64 *dst = out.limb(i).data();
        kt.subMod(dst, p_in_q.limb(i).data(), in.n(), qi.value());
        kt.mulScalarShoup(dst, in.n(), qi.value(), p_inv,
                          shoupQuotient(p_inv, qi.value()));
    });
    return out;
}

std::pair<RnsPoly, RnsPoly>
modDownEvalPair(const FheContext &ctx, const RnsPoly &b, const RnsPoly &a,
                u32 level)
{
    CROPHE_ASSERT(b.rep() == Rep::Eval && a.rep() == Rep::Eval,
                  "Eval-domain ModDown requires Eval rep");
    CROPHE_ASSERT(b.basis() == ctx.qpBasis(level) && a.basis() == b.basis(),
                  "unexpected basis");

    auto q_basis = ctx.qBasis(level);
    auto p_basis = ctx.pBasis();
    const u32 nq = static_cast<u32>(q_basis.size());
    const u32 np = static_cast<u32>(p_basis.size());
    const u64 n = b.n();

    // Stage 1: inverse-transform only the special-modulus limbs; b and a
    // share each modulus, so the pair goes through one batched call.
    RnsPoly pb(ctx, p_basis, Rep::Coeff);
    RnsPoly pa(ctx, p_basis, Rep::Coeff);
    parallelFor(0, np, [&](u64 i) {
        const u32 src = nq + static_cast<u32>(i);
        pb.copyLimbFrom(static_cast<u32>(i), b, src);
        pa.copyLimbFrom(static_cast<u32>(i), a, src);
        u64 *rows[2] = {pb.limb(static_cast<u32>(i)).data(),
                        pa.limb(static_cast<u32>(i)).data()};
        ctx.ntt(p_basis[i]).inverseBatched(rows, 2);
    });

    // Stage 2: BConv the P parts down to the q basis (Coeff domain).
    const BaseConverter &conv = ctx.converter(p_basis, q_basis);
    RnsPoly cb = conv.convert(pb);
    RnsPoly ca = conv.convert(pa);

    // Stage 3: forward-transform the converted rows (pair-batched per
    // modulus) and finish in the Eval domain. Subtraction and the P⁻¹
    // scaling are pointwise linear maps, so doing them after the NTT is
    // bit-identical to the Coeff-domain reference.
    const auto &kt = kernels::table();
    RnsPoly out_b(ctx, q_basis, Rep::Eval);
    RnsPoly out_a(ctx, q_basis, Rep::Eval);
    parallelFor(0, nq, [&](u64 i) {
        const u32 k = static_cast<u32>(i);
        u64 *rows[2] = {cb.limb(k).data(), ca.limb(k).data()};
        ctx.ntt(q_basis[i]).forwardBatched(rows, 2);

        const Modulus &qi = ctx.mod(q_basis[i]);
        const u64 p_inv = qi.inv(ctx.bigP().modSmall(qi.value()));
        const u64 p_inv_shoup = shoupQuotient(p_inv, qi.value());
        out_b.copyLimbFrom(k, b, k);
        out_a.copyLimbFrom(k, a, k);
        kt.subMod(out_b.limb(k).data(), rows[0], n, qi.value());
        kt.mulScalarShoup(out_b.limb(k).data(), n, qi.value(), p_inv,
                          p_inv_shoup);
        kt.subMod(out_a.limb(k).data(), rows[1], n, qi.value());
        kt.mulScalarShoup(out_a.limb(k).data(), n, qi.value(), p_inv,
                          p_inv_shoup);
    });
    return {std::move(out_b), std::move(out_a)};
}

RnsPoly
rescalePoly(const FheContext &ctx, const RnsPoly &in, u32 level)
{
    CROPHE_ASSERT(in.rep() == Rep::Coeff, "rescale requires Coeff rep");
    CROPHE_ASSERT(level >= 1, "cannot rescale at level 0");
    CROPHE_ASSERT(in.basis() == ctx.qBasis(level), "unexpected basis");

    auto out_basis = ctx.qBasis(level - 1);
    const Modulus &ql = ctx.mod(level);

    RnsPoly out(ctx, out_basis, Rep::Coeff);
    auto last = in.limb(level);
    parallelFor(0, out_basis.size(), [&](u64 i) {
        const Modulus &qi = ctx.mod(out_basis[i]);
        u64 ql_inv = qi.inv(qi.reduce64(ql.value()));
        auto src = in.limb(i);
        auto dst = out.limb(i);
        for (u64 c = 0; c < in.n(); ++c) {
            // (x - [x]_{q_l}) / q_l mod q_i, with the centered lift of
            // [x]_{q_l} to reduce rounding bias.
            u64 r = last[c];
            u64 r_mod = qi.reduce64(r);
            dst[c] = qi.mul(qi.sub(src[c], r_mod), ql_inv);
        }
    });
    return out;
}

}  // namespace crophe::fhe
