#ifndef CROPHE_BASELINES_BASELINE_H_
#define CROPHE_BASELINES_BASELINE_H_

/**
 * @file
 * The design points of the evaluation (Section VII): each baseline
 * accelerator re-implemented on the shared scheduling/simulation
 * substrate with MAD dataflow, plus the CROPHE variants. This is the
 * registry the benchmark harnesses iterate over.
 */

#include <string>
#include <vector>

#include "graph/params.h"
#include "graph/workloads.h"
#include "hw/config.h"
#include "sched/cost_model.h"

namespace crophe::plan {
class PlanCache;
}  // namespace crophe::plan

namespace crophe::telemetry {
class SearchTelemetry;
}  // namespace crophe::telemetry

namespace crophe::fault {
class FaultInjector;
}  // namespace crophe::fault

namespace crophe::baselines {

/** One evaluated design point. */
struct DesignSpec
{
    std::string name;        ///< display name, e.g. "ARK+MAD"
    hw::HwConfig cfg;
    graph::FheParams params; ///< Table III set used with this design
    bool mad = false;        ///< MAD scheduling instead of CROPHE
    bool dataParallel = false;  ///< CROPHE-p cluster partitioning
    bool nttDecomp = true;   ///< CROPHE NTT-decomposition optimization
    bool hybridRot = true;   ///< CROPHE hybrid-rotation optimization
};

/** 64-bit comparison group (vs BTS and ARK), Figure 9 top. */
std::vector<DesignSpec> designs64();

/** 36-bit comparison group (vs CL+ and SHARP), Figure 9 bottom. */
std::vector<DesignSpec> designs36();

/** Build the specific design by name (see designs64/designs36). */
DesignSpec designByName(const std::string &name);

/** Harness-level knobs for runDesign. */
struct RunOptions
{
    /** Cycle-level simulation of every unique segment (slower). */
    bool simulate = false;
    /** Optional content-addressed schedule cache (DESIGN.md §8). */
    plan::PlanCache *planCache = nullptr;
    /** Optional search observer; also accrues scheduling wall-clock. */
    telemetry::SearchTelemetry *search = nullptr;
    /** Optional transient-fault injector for the simulation phase
     *  (DESIGN.md §9); structural faults degrade cfg before the call. */
    const fault::FaultInjector *faults = nullptr;
    /** Anytime budget per graph search (SchedOptions::deadlineSeconds). */
    double deadlineSeconds = 0.0;
    /** Rotation-scheme filter (SchedOptions::rotSchemeMask); CLI
     *  --rot-schemes via sched::parseRotSchemes. Default: all four. */
    u32 rotSchemeMask = 0xF;
    /** Key-switch dataflow filter (SchedOptions::ksDataflowMask); CLI
     *  --ks-dataflows via sched::parseKsDataflows. Default: all three. */
    u32 ksDataflowMask = 0x7;
};

/**
 * Run @p workload on @p design end-to-end: graph generation (with the
 * design's rotation scheme), scheduling, and — when run.simulate is set —
 * cycle-level simulation of every unique segment. All schedule searches
 * of the run share one group-analysis memo.
 */
sched::WorkloadResult runDesign(const DesignSpec &design,
                                const std::string &workload,
                                const RunOptions &run);

/** Convenience overload keeping the original positional-bool call. */
sched::WorkloadResult runDesign(const DesignSpec &design,
                                const std::string &workload,
                                bool simulate = false);

/** Copy of @p design with the global buffer resized (Figure 10 sweeps). */
DesignSpec withSram(const DesignSpec &design, double sram_mb);

}  // namespace crophe::baselines

#endif  // CROPHE_BASELINES_BASELINE_H_
