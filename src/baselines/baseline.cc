#include "baselines/baseline.h"

#include <chrono>

#include "common/error.h"
#include "common/logging.h"
#include "sched/enumerator.h"
#include "sched/hybrid_rotation.h"
#include "sched/mad.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "telemetry/search_telemetry.h"

namespace crophe::baselines {

std::vector<DesignSpec>
designs64()
{
    std::vector<DesignSpec> designs;
    designs.push_back({"BTS+MAD", hw::configBts(), graph::paramsBts(),
                       true, false, false, false});
    designs.push_back({"ARK+MAD", hw::configArk(), graph::paramsArk(),
                       true, false, false, false});
    designs.push_back({"CROPHE-hw+MAD", hw::configCrophe64(),
                       graph::paramsArk(), true, false, false, false});
    designs.push_back({"CROPHE-64", hw::configCrophe64(),
                       graph::paramsArk(), false, false, true, true});
    designs.push_back({"CROPHE-p-64", hw::configCrophe64(),
                       graph::paramsArk(), false, true, true, true});
    return designs;
}

std::vector<DesignSpec>
designs36()
{
    std::vector<DesignSpec> designs;
    designs.push_back({"CL+MAD", hw::configClPlus(),
                       graph::paramsCraterLake(), true, false, false,
                       false});
    designs.push_back({"SHARP+MAD", hw::configSharp(), graph::paramsSharp(),
                       true, false, false, false});
    designs.push_back({"CROPHE-hw+MAD", hw::configCrophe36(),
                       graph::paramsSharp(), true, false, false, false});
    designs.push_back({"CROPHE-36", hw::configCrophe36(),
                       graph::paramsSharp(), false, false, true, true});
    designs.push_back({"CROPHE-p-36", hw::configCrophe36(),
                       graph::paramsSharp(), false, true, true, true});
    return designs;
}

DesignSpec
designByName(const std::string &name)
{
    for (const auto &d : designs64())
        if (d.name == name)
            return d;
    for (const auto &d : designs36())
        if (d.name == name)
            return d;
    // User input (CLI/config lookup), not an invariant: recoverable.
    throw RecoverableError("unknown design: " + name);
}

namespace {

sched::WorkloadResult
runDesignImpl(const DesignSpec &design, const std::string &workload,
              const RunOptions &run, sched::GroupMemo &memo)
{
    if (design.mad) {
        graph::Workload w = graph::buildWorkload(
            workload, design.params, sched::madWorkloadOptions());
        sched::SchedOptions opt = sched::madOptions();
        opt.memo = &memo;
        opt.planCache = run.planCache;
        opt.search = run.search;
        opt.deadlineSeconds = run.deadlineSeconds;
        sched::WorkloadResult res =
            run.simulate ? sim::simulateWorkload(w, design.cfg, opt,
                                                 nullptr, run.faults)
                         : sched::scheduleWorkload(w, design.cfg, opt);
        res.design = design.name;
        return res;
    }

    sched::SchedOptions opt;
    opt.crossOpDataflow = true;
    opt.nttDecomp = design.nttDecomp;
    opt.memo = &memo;
    opt.planCache = run.planCache;
    opt.search = run.search;
    opt.deadlineSeconds = run.deadlineSeconds;
    opt.rotSchemeMask = run.rotSchemeMask;
    opt.ksDataflowMask = run.ksDataflowMask;

    // Rotation scheme × ks dataflow search happens at graph level
    // (Section V-D, DESIGN.md §15).
    auto choice = sched::chooseRotationScheme(
        workload, design.params, design.cfg, opt, design.hybridRot);

    graph::WorkloadOptions wopt;
    wopt.rotMode = choice.mode;
    wopt.rHyb = choice.rHyb;
    wopt.ksDataflow = choice.ksDataflow;
    graph::Workload w = graph::buildWorkload(workload, design.params, wopt);

    sched::WorkloadResult res;
    if (design.dataParallel) {
        // Pick the best cluster count, then (optionally) simulate it.
        auto best = sched::scheduleWorkloadAutoClusters(w, design.cfg, opt);
        if (run.simulate) {
            opt.clusters = best.clusters;
            res = sim::simulateWorkload(w, design.cfg, opt, nullptr,
                                        run.faults);
        } else {
            res = std::move(best);
        }
    } else {
        opt.clusters = 1;
        res = run.simulate ? sim::simulateWorkload(w, design.cfg, opt,
                                                   nullptr, run.faults)
                           : sched::scheduleWorkload(w, design.cfg, opt);
    }
    res.design = design.name;
    res.rotScheme = graph::rotModeName(choice.mode);
    if (choice.mode == graph::RotMode::Hybrid)
        res.rotScheme += " r=" + std::to_string(choice.rHyb);
    res.ksDataflow = graph::ksDataflowName(choice.ksDataflow);
    return res;
}

}  // namespace

sched::WorkloadResult
runDesign(const DesignSpec &design, const std::string &workload,
          const RunOptions &run)
{
    // One memo spans the rotation/cluster sweeps and the final schedule:
    // a design's candidate graphs are riddled with repeated subgraphs.
    sched::GroupMemo memo;
    auto start = std::chrono::steady_clock::now();
    sched::WorkloadResult res = runDesignImpl(design, workload, run, memo);
    if (run.search != nullptr) {
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        run.search->addSearchSeconds(elapsed.count());
    }
    return res;
}

sched::WorkloadResult
runDesign(const DesignSpec &design, const std::string &workload,
          bool simulate)
{
    RunOptions run;
    run.simulate = simulate;
    return runDesign(design, workload, run);
}

DesignSpec
withSram(const DesignSpec &design, double sram_mb)
{
    DesignSpec d = design;
    d.cfg = hw::withSramMB(d.cfg, sram_mb);
    return d;
}

}  // namespace crophe::baselines
