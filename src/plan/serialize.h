#ifndef CROPHE_PLAN_SERIALIZE_H_
#define CROPHE_PLAN_SERIALIZE_H_

/**
 * @file
 * Versioned binary serialization of schedules and workload results for the
 * plan cache (DESIGN.md §8).
 *
 * The format is deliberately exact: integers are fixed-width little-endian,
 * doubles are stored as their IEEE-754 bit pattern, and the graph's
 * adjacency lists are written in insertion order (group analysis iterates
 * producers/consumers in that order, so a canonicalized re-encode would
 * change downstream behavior). A round-trip therefore reproduces the
 * original structures bit-for-bit, which is what lets the cache promise
 * byte-identical results to a cold search.
 */

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "sched/cost_model.h"
#include "sched/group.h"

namespace crophe::plan {

/** Bump on ANY layout change; readers reject other versions.
 *  v2: WorkloadResult gained rotScheme / ksDataflow annotation strings. */
constexpr u32 kPlanFormatVersion = 2;

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    void putU8(u8 v) { buf_.push_back(v); }
    void putU32(u32 v);
    void putU64(u64 v);
    /** IEEE-754 bit pattern; exact round-trip (incl. -0.0 and inf). */
    void putDouble(double v);
    /** u64 length prefix + raw bytes. */
    void putString(const std::string &s);

    const std::vector<u8> &bytes() const { return buf_; }
    std::vector<u8> take() { return std::move(buf_); }

  private:
    std::vector<u8> buf_;
};

/**
 * Bounds-checked reader over a byte span. Every get returns false on
 * truncation and latches the failure; callers may batch reads and check
 * ok() once.
 */
class ByteReader
{
  public:
    ByteReader(const u8 *data, std::size_t size) : data_(data), size_(size) {}
    explicit ByteReader(const std::vector<u8> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    bool getU8(u8 &v);
    bool getU32(u32 &v);
    bool getU64(u64 &v);
    bool getDouble(double &v);
    bool getString(std::string &s);

    bool ok() const { return ok_; }
    /** True when every byte has been consumed (trailing garbage check). */
    bool atEnd() const { return ok_ && pos_ == size_; }

  private:
    bool take(std::size_t n, const u8 *&p);

    const u8 *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * Schedule <-> bytes. serialize writes a version header; deserialize
 * returns false (leaving @p out unspecified) on a version mismatch,
 * truncation, or structurally invalid payload. @{
 */
void serializeSchedule(const sched::Schedule &s, ByteWriter &w);
bool deserializeSchedule(ByteReader &r, sched::Schedule &out);
std::vector<u8> scheduleBytes(const sched::Schedule &s);
/** @} */

/** WorkloadResult <-> bytes, same contract. @{ */
void serializeWorkloadResult(const sched::WorkloadResult &res, ByteWriter &w);
bool deserializeWorkloadResult(ByteReader &r, sched::WorkloadResult &out);
std::vector<u8> workloadResultBytes(const sched::WorkloadResult &res);
/** @} */

}  // namespace crophe::plan

#endif  // CROPHE_PLAN_SERIALIZE_H_
