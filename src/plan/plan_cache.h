#ifndef CROPHE_PLAN_PLAN_CACHE_H_
#define CROPHE_PLAN_PLAN_CACHE_H_

/**
 * @file
 * Content-addressed schedule cache (DESIGN.md §8).
 *
 * Schedules are keyed by (graph structural hash, hardware-config digest,
 * scheduler-options digest): equal keys mean the search would produce the
 * same schedule, so the serialized bytes of a previous search can be
 * returned verbatim. The cache is a two-tier store — an in-memory LRU map
 * over serialized payloads, optionally backed by an on-disk directory so
 * repeated harness runs (e.g. `bench_fig9_overall --plan-cache DIR` twice)
 * skip the search entirely on the second run.
 *
 * Contract: a cache hit is byte-identical to a cold search. That holds
 * because (a) the key covers everything the search reads, (b) the payload
 * is the exact serialized Schedule (plan/serialize.h round-trips
 * bit-for-bit), and (c) loads are validated — wrong magic, version, key
 * echo, size, or checksum fall back to a miss, never to a wrong schedule.
 *
 * Thread safety: all operations take an internal mutex; concurrent lookups
 * and inserts from the scheduler's thread pool are safe. Disk writes go to
 * a temp file then rename(2), so concurrent processes sharing a directory
 * see either the old file or the complete new one.
 */

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace crophe::telemetry {
class StatsRegistry;
}  // namespace crophe::telemetry

namespace crophe::plan {

/** Cache key: everything the schedule search depends on. */
struct PlanKey
{
    u64 graphHash = 0;  ///< graph::Graph::structuralHash over topo order
    u64 hwDigest = 0;   ///< hw::configDigest
    u64 optDigest = 0;  ///< sched::optionsDigest

    bool operator==(const PlanKey &o) const
    {
        return graphHash == o.graphHash && hwDigest == o.hwDigest &&
               optDigest == o.optDigest;
    }

    /** Single-u64 mix of the three components (map bucket + file name). */
    u64 combined() const;
};

/** Monotonic operation counters (telemetry + tests). */
struct PlanCacheStats
{
    u64 hits = 0;         ///< memory-tier hits
    u64 misses = 0;       ///< lookups that found nothing in either tier
    u64 insertions = 0;
    u64 evictions = 0;    ///< LRU evictions from the memory tier
    u64 diskHits = 0;     ///< misses served by a valid on-disk entry
    u64 diskRejects = 0;  ///< on-disk entries rejected by validation
    u64 diskWrites = 0;
};

/** Two-tier (memory LRU + optional directory) plan store. See file doc. */
class PlanCache
{
  public:
    /**
     * @param dir on-disk tier directory ("" = memory only). Created on
     *        first write if missing.
     * @param max_entries memory-tier LRU capacity.
     */
    explicit PlanCache(std::string dir = "", std::size_t max_entries = 256);

    /**
     * Look up @p key. On a hit (either tier) copies the payload into
     * @p out and returns true; a disk hit is promoted into the memory
     * tier. Returns false on a miss or when every candidate entry fails
     * validation.
     */
    bool lookup(const PlanKey &key, std::vector<u8> &out);

    /**
     * Store @p payload under @p key in the memory tier and, when a
     * directory is configured, write it through to disk atomically.
     * Re-inserting an existing key refreshes its LRU position.
     */
    void insert(const PlanKey &key, const std::vector<u8> &payload);

    PlanCacheStats stats() const;
    const std::string &dir() const { return dir_; }

    /** Register hit/miss/eviction counters as `<prefix>.*` gauges. */
    void registerStats(telemetry::StatsRegistry &reg,
                       const std::string &prefix = "plan.cache") const;

    /**
     * Directory from the CROPHE_PLAN_CACHE environment variable, or "" if
     * unset/empty — the conventional fallback for the `--plan-cache` flag.
     */
    static std::string dirFromEnv();

  private:
    struct Entry
    {
        PlanKey key;
        std::vector<u8> payload;
    };

    std::string filePath(const PlanKey &key) const;
    bool loadFromDisk(const PlanKey &key, std::vector<u8> &out);
    void writeToDisk(const PlanKey &key, const std::vector<u8> &payload);
    void touchFront(std::list<Entry>::iterator it);

    mutable std::mutex mu_;
    std::string dir_;
    std::size_t maxEntries_;
    /** MRU-first entry list + key index into it. */
    std::list<Entry> lru_;
    std::unordered_map<u64, std::list<Entry>::iterator> index_;
    PlanCacheStats stats_;
};

}  // namespace crophe::plan

#endif  // CROPHE_PLAN_PLAN_CACHE_H_
