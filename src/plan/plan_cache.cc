#include "plan/plan_cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/logging.h"
#include "telemetry/stats_registry.h"

namespace crophe::plan {

namespace {

constexpr u8 kMagic[4] = {'C', 'R', 'P', 'L'};
constexpr u32 kDiskFormatVersion = 1;

u64
fnv1a(const std::vector<u8> &bytes)
{
    u64 h = 1469598103934665603ull;
    for (u8 b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

void
appendU32(std::vector<u8> &buf, u32 v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<u8>(v >> (8 * i)));
}

void
appendU64(std::vector<u8> &buf, u64 v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<u8>(v >> (8 * i)));
}

u64
readU64(const u8 *p)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(p[i]) << (8 * i);
    return v;
}

u32
readU32(const u8 *p)
{
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(p[i]) << (8 * i);
    return v;
}

}  // namespace

u64
PlanKey::combined() const
{
    u64 h = 1469598103934665603ull;
    auto mix = [&h](u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 1099511628211ull;
    };
    mix(graphHash);
    mix(hwDigest);
    mix(optDigest);
    return h;
}

PlanCache::PlanCache(std::string dir, std::size_t max_entries)
    : dir_(std::move(dir)), maxEntries_(max_entries)
{
    CROPHE_ASSERT(maxEntries_ >= 1, "plan cache needs at least one entry");
}

void
PlanCache::touchFront(std::list<Entry>::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
}

bool
PlanCache::lookup(const PlanKey &key, std::vector<u8> &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key.combined());
    if (it != index_.end() && it->second->key == key) {
        ++stats_.hits;
        touchFront(it->second);
        out = it->second->payload;
        return true;
    }
    if (!dir_.empty() && loadFromDisk(key, out)) {
        ++stats_.diskHits;
        // Promote into the memory tier (counted separately from inserts so
        // tests can tell the tiers apart).
        lru_.push_front({key, out});
        index_[key.combined()] = lru_.begin();
        while (lru_.size() > maxEntries_) {
            index_.erase(lru_.back().key.combined());
            lru_.pop_back();
            ++stats_.evictions;
        }
        return true;
    }
    ++stats_.misses;
    return false;
}

void
PlanCache::insert(const PlanKey &key, const std::vector<u8> &payload)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key.combined());
    if (it != index_.end() && it->second->key == key) {
        it->second->payload = payload;
        touchFront(it->second);
    } else {
        lru_.push_front({key, payload});
        index_[key.combined()] = lru_.begin();
        ++stats_.insertions;
        while (lru_.size() > maxEntries_) {
            index_.erase(lru_.back().key.combined());
            lru_.pop_back();
            ++stats_.evictions;
        }
    }
    if (!dir_.empty())
        writeToDisk(key, payload);
}

std::string
PlanCache::filePath(const PlanKey &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.plan",
                  static_cast<unsigned long long>(key.combined()));
    return dir_ + "/" + name;
}

bool
PlanCache::loadFromDisk(const PlanKey &key, std::vector<u8> &out)
{
    std::ifstream in(filePath(key), std::ios::binary);
    if (!in)
        return false;
    std::vector<u8> file((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    // Header: magic(4) version(4) key(3*8) payloadSize(8); trailer: fnv(8).
    constexpr std::size_t kHeader = 4 + 4 + 24 + 8;
    if (file.size() < kHeader + 8 ||
        !std::equal(kMagic, kMagic + 4, file.begin()) ||
        readU32(file.data() + 4) != kDiskFormatVersion) {
        ++stats_.diskRejects;
        return false;
    }
    PlanKey echoed{readU64(file.data() + 8), readU64(file.data() + 16),
                   readU64(file.data() + 24)};
    u64 payload_size = readU64(file.data() + 32);
    if (!(echoed == key) || file.size() != kHeader + payload_size + 8) {
        ++stats_.diskRejects;
        return false;
    }
    std::vector<u8> payload(file.begin() + kHeader,
                            file.begin() + kHeader +
                                static_cast<std::size_t>(payload_size));
    if (readU64(file.data() + kHeader + payload_size) != fnv1a(payload)) {
        ++stats_.diskRejects;
        return false;
    }
    out = std::move(payload);
    return true;
}

void
PlanCache::writeToDisk(const PlanKey &key, const std::vector<u8> &payload)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        return;  // disk tier is best-effort; memory tier already has it

    std::vector<u8> file;
    file.reserve(48 + payload.size() + 8);
    file.insert(file.end(), kMagic, kMagic + 4);
    appendU32(file, kDiskFormatVersion);
    appendU64(file, key.graphHash);
    appendU64(file, key.hwDigest);
    appendU64(file, key.optDigest);
    appendU64(file, payload.size());
    file.insert(file.end(), payload.begin(), payload.end());
    appendU64(file, fnv1a(payload));

    // Temp-then-rename so a concurrent reader (or a crash) never sees a
    // half-written entry. The temp name is per-process; two processes
    // racing on the same key both write valid identical content.
    const std::string path = filePath(key);
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<u64>(::getpid()));
    {
        std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
        if (!outf)
            return;
        outf.write(reinterpret_cast<const char *>(file.data()),
                   static_cast<std::streamsize>(file.size()));
        if (!outf)
            return;
    }
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
    else
        ++stats_.diskWrites;
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
PlanCache::registerStats(telemetry::StatsRegistry &reg,
                         const std::string &prefix) const
{
    PlanCacheStats s = stats();
    reg.counter(prefix + ".hits", "plan-cache memory-tier hits").set(s.hits);
    reg.counter(prefix + ".misses", "plan-cache lookups that searched")
        .set(s.misses);
    reg.counter(prefix + ".insertions", "schedules stored in the plan cache")
        .set(s.insertions);
    reg.counter(prefix + ".evictions", "LRU evictions from the memory tier")
        .set(s.evictions);
    reg.counter(prefix + ".diskHits", "misses served by the on-disk tier")
        .set(s.diskHits);
    reg.counter(prefix + ".diskRejects",
                "on-disk entries rejected by validation")
        .set(s.diskRejects);
    reg.counter(prefix + ".diskWrites", "entries written through to disk")
        .set(s.diskWrites);
}

std::string
PlanCache::dirFromEnv()
{
    const char *dir = std::getenv("CROPHE_PLAN_CACHE");
    return dir ? std::string(dir) : std::string();
}

}  // namespace crophe::plan
