#include "plan/serialize.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace crophe::plan {

void
ByteWriter::putU32(u32 v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<u8>(v >> (8 * i)));
}

void
ByteWriter::putU64(u64 v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<u8>(v >> (8 * i)));
}

void
ByteWriter::putDouble(double v)
{
    u64 bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
ByteWriter::putString(const std::string &s)
{
    putU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

bool
ByteReader::take(std::size_t n, const u8 *&p)
{
    if (!ok_ || size_ - pos_ < n) {
        ok_ = false;
        return false;
    }
    p = data_ + pos_;
    pos_ += n;
    return true;
}

bool
ByteReader::getU8(u8 &v)
{
    const u8 *p;
    if (!take(1, p))
        return false;
    v = *p;
    return true;
}

bool
ByteReader::getU32(u32 &v)
{
    const u8 *p;
    if (!take(4, p))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(p[i]) << (8 * i);
    return true;
}

bool
ByteReader::getU64(u64 &v)
{
    const u8 *p;
    if (!take(8, p))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(p[i]) << (8 * i);
    return true;
}

bool
ByteReader::getDouble(double &v)
{
    u64 bits;
    if (!getU64(bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
ByteReader::getString(std::string &s)
{
    u64 len;
    if (!getU64(len))
        return false;
    if (len > size_ - pos_) {
        ok_ = false;
        return false;
    }
    s.assign(reinterpret_cast<const char *>(data_ + pos_),
             static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
}

namespace {

// A cheap sanity ceiling for deserialized list lengths: any plausible
// schedule is far below this, and it keeps a corrupt length prefix from
// turning into a giant allocation before the bounds checks kick in.
constexpr u64 kMaxListLen = 1u << 24;

void
writeOp(const graph::Op &op, ByteWriter &w)
{
    w.putU8(static_cast<u8>(op.kind));
    w.putString(op.label);
    w.putU64(op.n);
    w.putU64(op.n1);
    w.putU64(op.n2);
    w.putU32(op.limbsIn);
    w.putU32(op.limbsOut);
    w.putU32(op.beta);
    w.putU64(op.inputWords);
    w.putU64(op.outputWords);
    w.putU64(op.auxWords);
    w.putString(op.auxKey);
    w.putU64(op.flops);
    w.putU64(op.streamAxes.size());
    for (graph::StreamAxis a : op.streamAxes)
        w.putU8(static_cast<u8>(a));
    w.putU8(op.orientationSwitch ? 1 : 0);
}

bool
readOp(ByteReader &r, graph::Op &op)
{
    u8 kind, orient;
    u64 axes;
    if (!r.getU8(kind) || !r.getString(op.label) || !r.getU64(op.n) ||
        !r.getU64(op.n1) || !r.getU64(op.n2) || !r.getU32(op.limbsIn) ||
        !r.getU32(op.limbsOut) || !r.getU32(op.beta) ||
        !r.getU64(op.inputWords) || !r.getU64(op.outputWords) ||
        !r.getU64(op.auxWords) || !r.getString(op.auxKey) ||
        !r.getU64(op.flops) || !r.getU64(axes))
        return false;
    if (kind > static_cast<u8>(graph::OpKind::Rescale) ||
        axes > kMaxListLen)
        return false;
    op.kind = static_cast<graph::OpKind>(kind);
    op.streamAxes.clear();
    op.streamAxes.reserve(static_cast<std::size_t>(axes));
    for (u64 i = 0; i < axes; ++i) {
        u8 a;
        if (!r.getU8(a) || a > static_cast<u8>(graph::StreamAxis::None))
            return false;
        op.streamAxes.push_back(static_cast<graph::StreamAxis>(a));
    }
    if (!r.getU8(orient) || orient > 1)
        return false;
    op.orientationSwitch = orient != 0;
    return true;
}

bool
readIdList(ByteReader &r, u32 n_ops, std::vector<graph::OpId> &out)
{
    u64 count;
    if (!r.getU64(count) || count > kMaxListLen)
        return false;
    out.clear();
    out.reserve(static_cast<std::size_t>(count));
    for (u64 i = 0; i < count; ++i) {
        u32 id;
        if (!r.getU32(id) || id >= n_ops)
            return false;
        out.push_back(id);
    }
    return true;
}

void
writeGraph(const graph::Graph &g, ByteWriter &w)
{
    w.putU32(g.size());
    for (graph::OpId v = 0; v < g.size(); ++v)
        writeOp(g.op(v), w);
    for (graph::OpId v = 0; v < g.size(); ++v) {
        const auto &succ = g.consumers(v);
        w.putU64(succ.size());
        for (graph::OpId c : succ)
            w.putU32(c);
    }
    for (graph::OpId v = 0; v < g.size(); ++v) {
        const auto &pred = g.producers(v);
        w.putU64(pred.size());
        for (graph::OpId p : pred)
            w.putU32(p);
    }
}

bool
readGraph(ByteReader &r, graph::Graph &g)
{
    u32 n_ops;
    if (!r.getU32(n_ops) || n_ops > kMaxListLen)
        return false;
    g = graph::Graph();
    for (u32 v = 0; v < n_ops; ++v) {
        graph::Op op;
        if (!readOp(r, op))
            return false;
        g.add(std::move(op));
    }
    std::vector<std::vector<graph::OpId>> succ(n_ops), pred(n_ops);
    for (u32 v = 0; v < n_ops; ++v)
        if (!readIdList(r, n_ops, succ[v]))
            return false;
    for (u32 v = 0; v < n_ops; ++v)
        if (!readIdList(r, n_ops, pred[v]))
            return false;
    // restoreEdges cross-validates the two lists but panics on mismatch;
    // pre-check consistency here so corrupt cache payloads fail soft.
    std::vector<std::pair<graph::OpId, graph::OpId>> a, b;
    for (u32 v = 0; v < n_ops; ++v)
        for (graph::OpId c : succ[v]) {
            if (c == v)
                return false;
            a.emplace_back(v, c);
        }
    for (u32 v = 0; v < n_ops; ++v)
        for (graph::OpId p : pred[v]) {
            if (p == v)
                return false;
            b.emplace_back(p, v);
        }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b)
        return false;
    g.restoreEdges(std::move(succ), std::move(pred));
    return true;
}

void
writeStats(const sched::SchedStats &s, ByteWriter &w)
{
    w.putDouble(s.cycles);
    w.putU64(s.dramWords);
    w.putU64(s.auxDramWords);
    w.putU64(s.sramWords);
    w.putU64(s.nocWords);
    w.putU64(s.flops);
    w.putDouble(s.peUtil);
    w.putDouble(s.nocUtil);
    w.putDouble(s.sramBwUtil);
    w.putDouble(s.dramBwUtil);
}

bool
readStats(ByteReader &r, sched::SchedStats &s)
{
    return r.getDouble(s.cycles) && r.getU64(s.dramWords) &&
           r.getU64(s.auxDramWords) && r.getU64(s.sramWords) &&
           r.getU64(s.nocWords) && r.getU64(s.flops) &&
           r.getDouble(s.peUtil) && r.getDouble(s.nocUtil) &&
           r.getDouble(s.sramBwUtil) && r.getDouble(s.dramBwUtil);
}

void
writeSpatialGroup(const sched::SpatialGroup &sg, ByteWriter &w)
{
    w.putU64(sg.allocs.size());
    for (const auto &a : sg.allocs) {
        w.putU32(a.op);
        w.putU32(a.pes);
        w.putU64(a.chunks);
    }
    w.putU64(sg.internalEdges.size());
    for (const auto &e : sg.internalEdges) {
        w.putU32(e.from);
        w.putU32(e.to);
        w.putU8(static_cast<u8>(e.mode));
        w.putU64(e.volumeWords);
        w.putU64(e.granuleWords);
        w.putU64(e.bufferWords);
    }
    w.putDouble(sg.computeCycles);
    w.putU64(sg.dramWords);
    w.putU64(sg.sramWords);
    w.putU64(sg.nocWords);
    w.putU64(sg.bufferWords);
    w.putU64(sg.extWords);
    w.putU64(sg.flops);
    w.putU64(sg.auxNeeds.size());
    for (const auto &[key, words] : sg.auxNeeds) {
        w.putString(key);
        w.putU64(words);
    }
    w.putDouble(sg.cycles);
}

bool
readSpatialGroup(ByteReader &r, u32 n_ops, sched::SpatialGroup &sg)
{
    u64 count;
    if (!r.getU64(count) || count > kMaxListLen)
        return false;
    sg.allocs.clear();
    for (u64 i = 0; i < count; ++i) {
        sched::OpAlloc a;
        if (!r.getU32(a.op) || a.op >= n_ops || !r.getU32(a.pes) ||
            !r.getU64(a.chunks))
            return false;
        sg.allocs.push_back(a);
    }
    if (!r.getU64(count) || count > kMaxListLen)
        return false;
    sg.internalEdges.clear();
    for (u64 i = 0; i < count; ++i) {
        sched::EdgePlan e;
        u8 mode;
        if (!r.getU32(e.from) || e.from >= n_ops || !r.getU32(e.to) ||
            e.to >= n_ops || !r.getU8(mode) ||
            mode > static_cast<u8>(sched::EdgeMode::Materialized) ||
            !r.getU64(e.volumeWords) || !r.getU64(e.granuleWords) ||
            !r.getU64(e.bufferWords))
            return false;
        e.mode = static_cast<sched::EdgeMode>(mode);
        sg.internalEdges.push_back(e);
    }
    if (!r.getDouble(sg.computeCycles) || !r.getU64(sg.dramWords) ||
        !r.getU64(sg.sramWords) || !r.getU64(sg.nocWords) ||
        !r.getU64(sg.bufferWords) || !r.getU64(sg.extWords) ||
        !r.getU64(sg.flops) || !r.getU64(count) || count > kMaxListLen)
        return false;
    sg.auxNeeds.clear();
    for (u64 i = 0; i < count; ++i) {
        std::string key;
        u64 words;
        if (!r.getString(key) || !r.getU64(words))
            return false;
        sg.auxNeeds.emplace_back(std::move(key), words);
    }
    return r.getDouble(sg.cycles);
}

void
writeScheduleBody(const sched::Schedule &s, ByteWriter &w)
{
    writeGraph(s.graph, w);
    w.putU64(s.sequence.size());
    for (const auto &tg : s.sequence) {
        w.putU64(tg.groups.size());
        for (const auto &sg : tg.groups)
            writeSpatialGroup(sg, w);
        w.putU64(tg.residentAuxWords);
        w.putDouble(tg.cycles);
    }
    writeStats(s.stats, w);
    writeStats(s.warmStats, w);
}

bool
readScheduleBody(ByteReader &r, sched::Schedule &s)
{
    if (!readGraph(r, s.graph))
        return false;
    u64 n_temporal;
    if (!r.getU64(n_temporal) || n_temporal > kMaxListLen)
        return false;
    s.sequence.clear();
    for (u64 t = 0; t < n_temporal; ++t) {
        sched::TemporalGroup tg;
        u64 n_groups;
        if (!r.getU64(n_groups) || n_groups > kMaxListLen)
            return false;
        for (u64 gi = 0; gi < n_groups; ++gi) {
            sched::SpatialGroup sg;
            if (!readSpatialGroup(r, s.graph.size(), sg))
                return false;
            tg.groups.push_back(std::move(sg));
        }
        if (!r.getU64(tg.residentAuxWords) || !r.getDouble(tg.cycles))
            return false;
        s.sequence.push_back(std::move(tg));
    }
    return readStats(r, s.stats) && readStats(r, s.warmStats);
}

}  // namespace

void
serializeSchedule(const sched::Schedule &s, ByteWriter &w)
{
    w.putU32(kPlanFormatVersion);
    writeScheduleBody(s, w);
}

bool
deserializeSchedule(ByteReader &r, sched::Schedule &out)
{
    u32 version;
    if (!r.getU32(version) || version != kPlanFormatVersion)
        return false;
    return readScheduleBody(r, out) && r.atEnd();
}

std::vector<u8>
scheduleBytes(const sched::Schedule &s)
{
    ByteWriter w;
    serializeSchedule(s, w);
    return w.take();
}

void
serializeWorkloadResult(const sched::WorkloadResult &res, ByteWriter &w)
{
    w.putU32(kPlanFormatVersion);
    w.putString(res.workload);
    w.putString(res.design);
    w.putU32(res.clusters);
    writeStats(res.stats, w);
    w.putDouble(res.seconds);
    w.putU64(res.perSegment.size());
    for (const auto &[name, stats] : res.perSegment) {
        w.putString(name);
        writeStats(stats, w);
    }
    w.putString(res.rotScheme);
    w.putString(res.ksDataflow);
}

bool
deserializeWorkloadResult(ByteReader &r, sched::WorkloadResult &out)
{
    u32 version;
    if (!r.getU32(version) || version != kPlanFormatVersion)
        return false;
    if (!r.getString(out.workload) || !r.getString(out.design) ||
        !r.getU32(out.clusters) || !readStats(r, out.stats) ||
        !r.getDouble(out.seconds))
        return false;
    u64 count;
    if (!r.getU64(count) || count > kMaxListLen)
        return false;
    out.perSegment.clear();
    for (u64 i = 0; i < count; ++i) {
        std::string name;
        sched::SchedStats stats;
        if (!r.getString(name) || !readStats(r, stats))
            return false;
        out.perSegment.emplace_back(std::move(name), stats);
    }
    if (!r.getString(out.rotScheme) || !r.getString(out.ksDataflow))
        return false;
    return r.atEnd();
}

std::vector<u8>
workloadResultBytes(const sched::WorkloadResult &res)
{
    ByteWriter w;
    serializeWorkloadResult(res, w);
    return w.take();
}

}  // namespace crophe::plan
