#include "hw/area_model.h"

#include <cmath>

namespace crophe::hw {

namespace {

// Calibration constants at 7 nm for a 36-bit word, from Table II
// (CROPHE-36: 256 lanes/PE, 64 kB register file).
constexpr double kMulUm2Per36bLane = 337650.31 / 256.0;
constexpr double kMulMwPer36bLane = 388.80 / 256.0;
constexpr double kAddUm2Per36bLane = 27784.55 / 256.0;
constexpr double kAddMwPer36bLane = 33.79 / 256.0;
constexpr double kRegUm2PerKb = 67242.02 / 64.0;
constexpr double kRegMwPerKb = 16.86 / 64.0;
constexpr double kNetUm2PerLane = 15806.76 / 256.0;
constexpr double kNetMwPerLane = 58.17 / 256.0;

// Chip-level constants (Table II lower half, CROPHE-36 reference design:
// 128 PEs, 180 MB buffer, 16x8 mesh).
constexpr double kNocMm2Per36bPe = 40.70 / 128.0;
constexpr double kNocWPer36bPe = 67.40 / 128.0;
constexpr double kSramMm2PerMB = 116.05 / 180.0;
constexpr double kSramWPerMB = 15.34 / 180.0;
constexpr double kTransposeMm2PerMB = 7.38 / 4.0;
constexpr double kTransposeWPerMB = 2.87 / 4.0;
constexpr double kHbmPhyMm2 = 29.60;
constexpr double kHbmPhyW = 31.80;

/** Multiplier area grows ~quadratically with word width, adders linearly. */
double
mulScale(u32 word_bits)
{
    double r = word_bits / 36.0;
    return r * r;
}

double
linScale(u32 word_bits)
{
    return word_bits / 36.0;
}

}  // namespace

PeBreakdown
peAreaPower(const HwConfig &cfg)
{
    PeBreakdown pe;
    const double lanes = cfg.lanes;
    pe.multipliersUm2 = kMulUm2Per36bLane * mulScale(cfg.wordBits) * lanes;
    pe.addersUm2 = kAddUm2Per36bLane * linScale(cfg.wordBits) * lanes;
    pe.regFileUm2 = kRegUm2PerKb * cfg.regFileKB;
    pe.interLaneUm2 = kNetUm2PerLane * linScale(cfg.wordBits) * lanes;
    pe.totalUm2 =
        pe.multipliersUm2 + pe.addersUm2 + pe.regFileUm2 + pe.interLaneUm2;

    // Power scales with area and frequency (reference frequency 1.2 GHz).
    const double f = cfg.freqGhz / 1.2;
    pe.multipliersMw = kMulMwPer36bLane * mulScale(cfg.wordBits) * lanes * f;
    pe.addersMw = kAddMwPer36bLane * linScale(cfg.wordBits) * lanes * f;
    pe.regFileMw = kRegMwPerKb * cfg.regFileKB * f;
    pe.interLaneMw = kNetMwPerLane * linScale(cfg.wordBits) * lanes * f;
    pe.totalMw =
        pe.multipliersMw + pe.addersMw + pe.regFileMw + pe.interLaneMw;
    return pe;
}

AreaPower
chipAreaPower(const HwConfig &cfg)
{
    AreaPower chip;
    PeBreakdown pe = peAreaPower(cfg);

    const double pes_mm2 = pe.totalUm2 * cfg.numPes / 1e6;
    const double pes_w = pe.totalMw * cfg.numPes / 1e3;
    chip.rows.push_back({"PEs", pes_mm2, pes_w});

    const double noc_mm2 =
        kNocMm2Per36bPe * linScale(cfg.wordBits) * cfg.numPes;
    const double noc_w = kNocWPer36bPe * linScale(cfg.wordBits) *
                         cfg.numPes * (cfg.freqGhz / 1.2);
    chip.rows.push_back({"Inter-PE NoC & crossbars", noc_mm2, noc_w});

    const double sram_mm2 = kSramMm2PerMB * cfg.sramMB;
    const double sram_w = kSramWPerMB * cfg.sramMB;
    chip.rows.push_back({"Global buffer", sram_mm2, sram_w});

    const double tr_mm2 = kTransposeMm2PerMB * cfg.transposeMB;
    const double tr_w = kTransposeWPerMB * cfg.transposeMB;
    chip.rows.push_back({"Transpose unit", tr_mm2, tr_w});

    chip.rows.push_back({"HBM PHY", kHbmPhyMm2, kHbmPhyW});

    for (const auto &row : chip.rows) {
        chip.totalAreaMm2 += row.areaMm2;
        chip.totalPowerW += row.powerW;
    }
    chip.logicAreaMm2 = chip.totalAreaMm2 - sram_mm2 - kHbmPhyMm2;
    return chip;
}

}  // namespace crophe::hw
