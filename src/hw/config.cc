#include "hw/config.h"

#include "common/error.h"
#include "common/logging.h"

namespace crophe::hw {

HwConfig
configBts()
{
    HwConfig c;
    c.name = "BTS";
    c.wordBits = 64;
    c.freqGhz = 1.2;
    // BTS provisions 2048 small PEs; normalized here to lane-equivalents
    // of comparable total logic capability (each BTS PE bundles several
    // specialized datapaths).
    c.lanes = 4;
    c.numPes = 2048;
    c.meshX = 64;
    c.meshY = 32;
    c.sramGBs = 38400.0;
    c.sramMB = 512.0;
    c.regFileKB = 8.0;
    c.homogeneous = false;
    c.fuFraction = {0.45, 0.25, 0.15, 0.15};
    return c;
}

HwConfig
configArk()
{
    HwConfig c;
    c.name = "ARK";
    c.wordBits = 64;
    c.freqGhz = 1.0;
    c.lanes = 256;
    c.numPes = 4 * 12;  // 4 clusters, each with multiple engine groups
    c.meshX = 12;
    c.meshY = 4;
    c.sramGBs = 20000.0;
    c.sramMB = 512.0;
    c.regFileKB = 128.0;
    c.homogeneous = false;
    c.fuFraction = {0.40, 0.25, 0.20, 0.15};
    return c;
}

HwConfig
configCrophe64()
{
    HwConfig c;
    c.name = "CROPHE-64";
    c.wordBits = 64;
    c.freqGhz = 1.2;
    c.lanes = 256;
    c.numPes = 64;
    c.meshX = 8;
    c.meshY = 8;
    c.sramGBs = 39000.0;
    c.sramMB = 512.0;
    c.regFileKB = 64.0;
    c.homogeneous = true;
    return c;
}

HwConfig
configClPlus()
{
    HwConfig c;
    c.name = "CL+";
    c.wordBits = 28;
    c.freqGhz = 1.0;
    c.lanes = 512;
    c.numPes = 8 * 6;  // 8 clusters of wide vector groups
    c.meshX = 8;
    c.meshY = 6;
    c.sramGBs = 84000.0;
    c.sramMB = 256.0;
    c.regFileKB = 32.0;
    c.homogeneous = false;
    c.fuFraction = {0.40, 0.30, 0.20, 0.10};
    return c;
}

HwConfig
configSharp()
{
    HwConfig c;
    c.name = "SHARP";
    c.wordBits = 36;
    c.freqGhz = 1.0;
    c.lanes = 256;
    c.numPes = 4 * 16;  // 4 clusters, hierarchical lane groups
    c.meshX = 16;
    c.meshY = 4;
    c.sramGBs = 36000.0;
    c.sramMB = 180.0;
    c.regFileKB = 72.0;
    c.homogeneous = false;
    c.fuFraction = {0.40, 0.25, 0.17, 0.18};
    return c;
}

HwConfig
configCrophe36()
{
    HwConfig c;
    c.name = "CROPHE-36";
    c.wordBits = 36;
    c.freqGhz = 1.2;
    c.lanes = 256;
    c.numPes = 128;
    c.meshX = 16;
    c.meshY = 8;
    c.sramGBs = 44000.0;
    c.sramMB = 180.0;
    c.regFileKB = 64.0;
    c.homogeneous = true;
    return c;
}

HwConfig
configByName(const std::string &name)
{
    if (name == "bts")
        return configBts();
    if (name == "ark")
        return configArk();
    if (name == "crophe64")
        return configCrophe64();
    if (name == "cl+" || name == "clplus")
        return configClPlus();
    if (name == "sharp")
        return configSharp();
    if (name == "crophe36")
        return configCrophe36();
    // User input (CLI/config lookup), not an invariant: recoverable.
    throw RecoverableError("unknown hardware configuration: " + name);
}

void
validateConfig(const HwConfig &cfg)
{
    auto reject = [&cfg](const std::string &why) {
        throw RecoverableError("invalid hardware configuration \"" +
                               cfg.name + "\": " + why);
    };
    if (cfg.wordBits < 8)
        reject("wordBits must be at least 8");
    if (!(cfg.freqGhz > 0.0))
        reject("freqGhz must be positive");
    if (cfg.lanes == 0)
        reject("lanes must be positive");
    if (cfg.numPes == 0)
        reject("numPes must be positive");
    if (cfg.meshX == 0 || cfg.meshY == 0)
        reject("mesh dimensions must be positive");
    if (!(cfg.dramGBs > 0.0))
        reject("dramGBs must be positive");
    if (!(cfg.sramGBs > 0.0))
        reject("sramGBs must be positive");
    if (!(cfg.sramMB > 0.0))
        reject("sramMB must be positive");
    if (!(cfg.regFileKB > 0.0))
        reject("regFileKB must be positive");
    if (!(cfg.transposeMB > 0.0))
        reject("transposeMB must be positive");
    if (!cfg.homogeneous) {
        double total = 0.0;
        for (double f : cfg.fuFraction) {
            if (!(f >= 0.0))
                reject("FU-class fractions must be non-negative");
            total += f;
        }
        if (!(total > 0.0))
            reject("a specialized design needs some FU capacity");
    }
}

u64
configDigest(const HwConfig &cfg)
{
    u64 h = 1469598103934665603ull;
    auto mix = [&h](u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 1099511628211ull;
    };
    auto mixd = [&](double v) {
        u64 bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    mix(std::hash<std::string>{}(cfg.name));
    mix(cfg.wordBits);
    mixd(cfg.freqGhz);
    mix(cfg.lanes);
    mix(cfg.numPes);
    mix(cfg.meshX);
    mix(cfg.meshY);
    mixd(cfg.dramGBs);
    mixd(cfg.sramGBs);
    mixd(cfg.sramMB);
    mixd(cfg.regFileKB);
    mixd(cfg.transposeMB);
    mix(cfg.homogeneous ? 1 : 0);
    for (double f : cfg.fuFraction)
        mixd(f);
    // Mixed only when set: a zero salt keeps the digest byte-identical to
    // pre-salt builds (existing disk plan caches stay valid).
    if (cfg.digestSalt != 0)
        mix(cfg.digestSalt);
    return h;
}

HwConfig
withSramMB(const HwConfig &base, double sram_mb)
{
    CROPHE_ASSERT(sram_mb > 0, "SRAM capacity must be positive");
    HwConfig c = base;
    c.sramMB = sram_mb;
    return c;
}

}  // namespace crophe::hw
