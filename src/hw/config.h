#ifndef CROPHE_HW_CONFIG_H_
#define CROPHE_HW_CONFIG_H_

/**
 * @file
 * Hardware configurations of the CROPHE variants and the baseline
 * accelerators (Table I).
 *
 * CROPHE's array is homogeneous: every PE executes any operator. The
 * baselines provision specialized functional-unit classes at fixed ratios;
 * their configs carry the per-class capacity fractions that constrain MAD
 * scheduling on them (Section III-A, "overly specialized hardware").
 */

#include <array>
#include <string>

#include "common/types.h"

namespace crophe::hw {

/** Functional-unit classes in specialized baseline designs. */
enum class FuClass : u8
{
    Ntt = 0,       ///< (i)NTT butterfly engines
    Elementwise,   ///< vector add/mult units
    BConv,         ///< base-conversion MAC trees
    Automorphism,  ///< permutation networks
    kCount,
};

constexpr u32 kFuClassCount = static_cast<u32>(FuClass::kCount);

/** One accelerator configuration. */
struct HwConfig
{
    std::string name;
    u32 wordBits = 36;        ///< machine word (28 / 36 / 64)
    double freqGhz = 1.2;     ///< logic frequency
    u32 lanes = 256;          ///< modular-multiplier lanes per PE
    u32 numPes = 128;         ///< PEs (CROPHE) or equivalent lane groups
    u32 meshX = 16;           ///< PE array columns
    u32 meshY = 8;            ///< PE array rows
    double dramGBs = 1000.0;  ///< off-chip bandwidth (GB/s)
    double sramGBs = 44000.0; ///< global-buffer bandwidth (GB/s)
    double sramMB = 180.0;    ///< global-buffer capacity (MB)
    double regFileKB = 64.0;  ///< per-PE register file
    double transposeMB = 4.0; ///< transpose-unit SRAM

    bool homogeneous = true;  ///< CROPHE PEs vs specialized FU classes
    /** Capacity fraction per FU class (specialized designs only). */
    std::array<double, kFuClassCount> fuFraction{0.40, 0.30, 0.15, 0.15};

    /**
     * Extra context mixed into configDigest() by layers that schedule on
     * this chip under additional constraints the fields above cannot
     * express (the pod layer salts per-chip configs with the pod digest).
     * Zero — the default — leaves the digest identical to pre-salt
     * builds, so single-chip plan-cache keys are unchanged.
     */
    u64 digestSalt = 0;

    /** Bytes per machine word as stored in SRAM/DRAM. */
    double wordBytes() const { return wordBits / 8.0; }

    /** Total modular multiplications retired per cycle at full util. */
    u64 multsPerCycle() const { return static_cast<u64>(lanes) * numPes; }

    /** Peak modmul throughput (ops/s). */
    double peakMultOps() const { return multsPerCycle() * freqGhz * 1e9; }

    /** Global-buffer capacity in machine words. */
    u64 sramWords() const
    {
        return static_cast<u64>(sramMB * 1024.0 * 1024.0 / wordBytes());
    }
};

/** Table I configurations. @{ */
HwConfig configBts();        ///< BTS [35] (64-bit, 512 MB)
HwConfig configArk();        ///< ARK [34] (64-bit, 512 MB)
HwConfig configCrophe64();   ///< CROPHE-64 (vs BTS/ARK)
HwConfig configClPlus();     ///< CraterLake scaled to 7 nm (28-bit)
HwConfig configSharp();      ///< SHARP [33] (36-bit, 180 MB)
HwConfig configCrophe36();   ///< CROPHE-36 (vs CL+/SHARP)
/** @} */

/** Lookup by name (bts/ark/crophe64/cl+/sharp/crophe36). */
HwConfig configByName(const std::string &name);

/**
 * Validate every field a scheduler or simulator divides by or sizes
 * buffers from. Throws crophe::RecoverableError listing the first
 * problem — user-facing entry points (scheduleWorkload, simulateWorkload)
 * call this so an invalid (e.g. over-degraded) configuration is reported
 * instead of aborting deep inside a model with panic()/fatal().
 */
void validateConfig(const HwConfig &cfg);

/**
 * Order-sensitive digest over every field that affects scheduling and
 * simulation (name included). Used to key schedule caches and shared
 * enumeration memos: equal digests ⇒ interchangeable hardware.
 */
u64 configDigest(const HwConfig &cfg);

/** Copy of @p base with the global buffer resized to @p sram_mb. */
HwConfig withSramMB(const HwConfig &base, double sram_mb);

}  // namespace crophe::hw

#endif  // CROPHE_HW_CONFIG_H_
