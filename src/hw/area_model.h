#ifndef CROPHE_HW_AREA_MODEL_H_
#define CROPHE_HW_AREA_MODEL_H_

/**
 * @file
 * 7 nm area/power model (Table II).
 *
 * The paper obtains component constants from RTL synthesis (ASAP7),
 * FN-CACTI (SRAM) and Orion 3 (NoC). We encode those constants — anchored
 * to the published CROPHE-36 breakdown — and scale them with word size,
 * lane/PE counts and buffer capacities, so any HwConfig gets a consistent
 * area/power estimate.
 */

#include <string>
#include <vector>

#include "hw/config.h"

namespace crophe::hw {

/** One row of the area/power breakdown. */
struct BreakdownRow
{
    std::string component;
    double areaMm2;
    double powerW;
};

/** Full-chip area/power estimate. */
struct AreaPower
{
    std::vector<BreakdownRow> rows;
    double totalAreaMm2 = 0.0;
    double totalPowerW = 0.0;
    /** Area excluding SRAM buffers and the HBM PHY (Table I row). */
    double logicAreaMm2 = 0.0;
};

/** Per-PE estimate (the upper half of Table II), in μm² / mW. */
struct PeBreakdown
{
    double multipliersUm2;
    double addersUm2;
    double regFileUm2;
    double interLaneUm2;
    double totalUm2;
    double multipliersMw;
    double addersMw;
    double regFileMw;
    double interLaneMw;
    double totalMw;
};

/** Estimate one PE of @p cfg. */
PeBreakdown peAreaPower(const HwConfig &cfg);

/** Estimate the whole chip of @p cfg. */
AreaPower chipAreaPower(const HwConfig &cfg);

}  // namespace crophe::hw

#endif  // CROPHE_HW_AREA_MODEL_H_
