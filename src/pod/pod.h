#ifndef CROPHE_POD_POD_H_
#define CROPHE_POD_POD_H_

/**
 * @file
 * Multi-accelerator pod scheduling (DESIGN.md §12): shard each workload
 * segment across the chips of a pod with the cost-driven partitioner,
 * schedule every stage independently on one chip, place stages on the
 * ring, and pipeline segment repetitions through the stages with
 * cross-chip transfers charged on the interconnect model.
 *
 * Plan-cache isolation. Every per-stage schedule runs on a *salted* copy
 * of the chip config whose digestSalt is the pod digest (chip count,
 * link bandwidth/latency, dead chips). hw::configDigest keys the plan
 * cache, so pod plans and single-chip plans can never cross-serve, and
 * two pods with different shapes cannot share entries either. A
 * single-chip pod (chips == 1, no dead chips) is NOT salted: it is
 * contractually the same machine as the plain scheduler and shares its
 * cache entries.
 *
 * Fault composition. FaultPlan::deadChips removes whole chips: the
 * survivors repartition the graph (fewer, larger stages), the pod digest
 * changes with the dead-chip count, and per-chip structural faults can
 * additionally shrink the chip config itself before it reaches here.
 *
 * Determinism: partitioning, placement and the virtual-time pipeline are
 * all single-threaded deterministic code; the only parallelism is inside
 * each stage's schedule search, which is bit-deterministic (DESIGN.md
 * §7). The same inputs give byte-identical PodResults at any thread
 * count.
 */

#include <string>
#include <vector>

#include "graph/workloads.h"
#include "hw/config.h"
#include "sched/group.h"
#include "sim/interconnect.h"

namespace crophe::telemetry {
class StatsRegistry;
class TraceRecorder;
}  // namespace crophe::telemetry

namespace crophe::pod {

/** Pod shape + interconnect parameters (the pod digest covers all). */
struct PodConfig
{
    u32 chips = 1;
    /** Bandwidth of one directed ring link (GB/s). */
    double linkGBs = 600.0;
    /** Fixed latency per ring hop, in chip cycles. */
    double linkLatencyCycles = 500.0;
    /**
     * Chips removed by structural faults (FaultPlan::deadChips). The
     * highest-numbered chips die — a deterministic convention, so equal
     * plans repartition identically. Survivors = chips - deadChips.
     */
    u32 deadChips = 0;
    /**
     * Healthy-bandwidth fraction every ring link runs at, in (0, 1].
     * Dropped below 1.0 by timed link-degrade faults (DESIGN.md §14).
     * Mixed into the pod digest only when != 1.0, so healthy pods keep
     * their historical digests (and plan-cache entries).
     */
    double linkFraction = 1.0;

    u32 aliveChips() const { return chips - deadChips; }
};

/** Reject nonsensical pod shapes with a RecoverableError (PR 4 contract). */
void validatePod(const PodConfig &pod);

/**
 * Order-sensitive digest over every pod parameter. Changes with the
 * chip count, link bandwidth/latency and dead-chip set, so degraded
 * pods never share schedules with healthy ones.
 */
u64 podDigest(const PodConfig &pod);

/**
 * The per-chip config stage schedules run on: a copy of @p chip salted
 * with podDigest(pod) whenever the pod is a real pod (chips > 1 or dead
 * chips). A trivial 1-chip pod returns @p chip unchanged, sharing the
 * single-chip plan-cache namespace.
 */
hw::HwConfig chipConfigForPod(const PodConfig &pod,
                              const hw::HwConfig &chip);

/** One segment's pod execution summary. */
struct PodSegmentResult
{
    std::string name;
    u64 repetitions = 1;
    u32 stages = 1;
    /** Physical chip each stage runs on. */
    std::vector<u32> stageChip;
    /** Makespan of all repetitions through the pipeline (cycles). */
    double cycles = 0.0;
    /** Steady-state cycles per additional repetition (bottleneck stage
     *  or bottleneck link, whichever is slower). */
    double warmCyclesPerRep = 0.0;
    u64 interchipWords = 0;  ///< per full segment (all reps)
    u64 cutHopWords = 0;     ///< partitioner objective value (one rep)
    u32 partitionMoves = 0;
    bool sramOverflow = false;
    bool degraded = false;   ///< any stage schedule was anytime-truncated
};

/** Whole-workload pod execution summary. */
struct PodResult
{
    std::string workload;
    PodConfig pod;
    /** Wall time of one cold request: every segment's pipeline makespan,
     *  segments in sequence (pipeline drains between segments). */
    double seconds = 0.0;
    /** Steady-state seconds per additional back-to-back request: the
     *  pipeline-throughput bound Σ_seg reps × warmCyclesPerRep. */
    double warmSeconds = 0.0;
    u64 interchipWords = 0;
    u64 transfers = 0;
    double linkBusyCycles = 0.0;
    double maxLinkBusyCycles = 0.0;
    std::vector<PodSegmentResult> perSegment;
    bool degraded = false;
};

/**
 * Shard and pipeline @p w over @p pod chips shaped like @p chip.
 * Per-stage schedule searches honor @p opt (plan cache, deadline,
 * search telemetry). With @p reg set, interconnect totals accumulate
 * under `sim.pod.*`; with @p trace set, each segment becomes one trace
 * process with per-chip stage spans and per-link occupancy tracks.
 * Throws RecoverableError on an invalid pod or chip config.
 */
PodResult schedulePodWorkload(const graph::Workload &w,
                              const hw::HwConfig &chip,
                              const PodConfig &pod,
                              const sched::SchedOptions &opt,
                              telemetry::StatsRegistry *reg = nullptr,
                              telemetry::TraceRecorder *trace = nullptr);

}  // namespace crophe::pod

#endif  // CROPHE_POD_POD_H_
