#include "pod/partition.h"

#include <algorithm>
#include <map>
#include <string>

#include "common/logging.h"
#include "sim/interconnect.h"

namespace crophe::pod {

namespace {

/** SRAM footprint an op needs live while it executes (words). */
u64
opFootprint(const graph::Op &op)
{
    return op.inputWords + op.outputWords + op.auxWords;
}

/** Mutable per-stage load tracked across refinement moves. */
struct StageLoad
{
    u64 weight = 0;  ///< flops (or op count when the graph has none)
    u32 ops = 0;
    u64 auxWords = 0;  ///< distinct-auxKey volume + keyless per op
    /** Reference counts so removing one sharer keeps the key charged. */
    std::map<std::string, u32> auxKeys;
    /**
     * Largest single-op footprint ever inserted. Never lowered on
     * removal — a deterministic, conservative upper bound that keeps
     * move evaluation O(1).
     */
    u64 maxFootprint = 0;

    void
    insert(const graph::Op &op, u64 w)
    {
        weight += w;
        ++ops;
        maxFootprint = std::max(maxFootprint, opFootprint(op));
        if (op.auxWords == 0)
            return;
        if (op.auxKey.empty()) {
            auxWords += op.auxWords;
        } else if (++auxKeys[op.auxKey] == 1) {
            auxWords += op.auxWords;
        }
    }

    void
    remove(const graph::Op &op, u64 w)
    {
        weight -= w;
        --ops;
        if (op.auxWords == 0)
            return;
        if (op.auxKey.empty()) {
            auxWords -= op.auxWords;
        } else if (--auxKeys[op.auxKey] == 0) {
            auxKeys.erase(op.auxKey);
            auxWords -= op.auxWords;
        }
    }

    u64 sramProxy() const { return auxWords + maxFootprint; }
};

}  // namespace

PartitionResult
partitionGraph(const graph::Graph &g, u32 parts, const hw::HwConfig &chip,
               const PartitionOptions &opt)
{
    CROPHE_ASSERT(parts >= 1, "need at least one stage");
    CROPHE_ASSERT(parts <= g.size(), "more stages than ops (", parts,
                  " > ", g.size(), ")");

    PartitionResult res;
    res.partOf.assign(g.size(), 0);

    // Per-op balance weight: flops, or 1 each for all-data graphs so the
    // prefix-sum seed still spreads the ops.
    const bool useFlops = g.totalFlops() > 0;
    auto weightOf = [&](graph::OpId id) -> u64 {
        return useFlops ? g.op(id).flops : 1;
    };

    // --- Phase 1: balanced contiguous seed over the affinity order ------
    const auto order = g.topoOrderAuxAffinity();
    u64 total = 0;
    for (graph::OpId id : order)
        total += weightOf(id);

    std::vector<StageLoad> load(parts);
    u64 acc = 0;
    u32 k = 0;
    for (u32 i = 0; i < order.size(); ++i) {
        if (k + 1 < parts) {
            // Advance when this stage holds its balanced share — or when
            // exactly one op per remaining stage is left.
            const bool must =
                (order.size() - i) <= (parts - 1 - k);
            const bool want = load[k].ops > 0 &&
                              acc * parts >= total * (k + 1);
            if (must || want)
                ++k;
        }
        const graph::OpId id = order[i];
        res.partOf[id] = k;
        load[k].insert(g.op(id), weightOf(id));
        acc += weightOf(id);
    }

    // --- Phase 2: KL-style boundary refinement ---------------------------
    const u64 weightCap = static_cast<u64>(
        (1.0 + opt.balanceTolerance) *
        (static_cast<double>(total) / static_cast<double>(parts)));
    const u64 sramBudget = chip.sramWords();

    auto hops = [&](u32 a, u32 b) -> u64 {
        return sim::Interconnect::ringHops(a, b, parts);
    };
    // Hop-weighted cut delta of moving @p u to stage @p to.
    auto gainOf = [&](graph::OpId u, u32 to) -> i64 {
        const u32 from = res.partOf[u];
        i64 gain = 0;
        for (graph::OpId w : g.producers(u)) {
            const i64 words = static_cast<i64>(g.op(w).outputWords);
            gain += words * (static_cast<i64>(hops(res.partOf[w], from)) -
                             static_cast<i64>(hops(res.partOf[w], to)));
        }
        for (graph::OpId v : g.consumers(u)) {
            const i64 words = static_cast<i64>(g.op(u).outputWords);
            gain += words * (static_cast<i64>(hops(from, res.partOf[v])) -
                             static_cast<i64>(hops(to, res.partOf[v])));
        }
        return gain;
    };
    // A move is legal iff it keeps every edge pointing to an
    // equal-or-later stage (acyclic pipeline invariant), keeps the source
    // stage populated, and respects the balance + SRAM constraints.
    auto legal = [&](graph::OpId u, u32 to) -> bool {
        const u32 from = res.partOf[u];
        if (load[from].ops <= 1)
            return false;
        if (to > from) {
            for (graph::OpId v : g.consumers(u))
                if (res.partOf[v] < to)
                    return false;
        } else {
            for (graph::OpId w : g.producers(u))
                if (res.partOf[w] > to)
                    return false;
        }
        if (load[to].weight + weightOf(u) > weightCap)
            return false;
        StageLoad probe = load[to];
        probe.insert(g.op(u), weightOf(u));
        if (probe.sramProxy() > sramBudget &&
            probe.sramProxy() > load[to].sramProxy())
            return false;
        return true;
    };

    if (parts > 1) {
        for (u32 pass = 0; pass < opt.refinePasses; ++pass) {
            u32 applied = 0;
            for (graph::OpId u = 0; u < g.size(); ++u) {
                const u32 from = res.partOf[u];
                i64 best = 0;
                u32 bestTo = from;
                // Forward first so ties resolve identically everywhere.
                if (from + 1 < parts && legal(u, from + 1)) {
                    const i64 gain = gainOf(u, from + 1);
                    if (gain > best) {
                        best = gain;
                        bestTo = from + 1;
                    }
                }
                if (from > 0 && legal(u, from - 1)) {
                    const i64 gain = gainOf(u, from - 1);
                    if (gain > best) {
                        best = gain;
                        bestTo = from - 1;
                    }
                }
                if (bestTo == from)
                    continue;
                load[from].remove(g.op(u), weightOf(u));
                load[bestTo].insert(g.op(u), weightOf(u));
                res.partOf[u] = bestTo;
                ++applied;
            }
            res.moves += applied;
            if (applied == 0)
                break;
        }
    }

    // --- Assemble stages + final cut accounting --------------------------
    res.parts.assign(parts, {});
    for (graph::OpId id : g.topoOrder())
        res.parts[res.partOf[id]].push_back(id);
    for (u32 p = 0; p < parts; ++p) {
        CROPHE_ASSERT(!res.parts[p].empty(), "stage ", p, " ended empty");
        if (load[p].sramProxy() > sramBudget)
            res.sramOverflow = true;
    }
    for (graph::OpId u = 0; u < g.size(); ++u) {
        for (graph::OpId v : g.consumers(u)) {
            if (res.partOf[u] == res.partOf[v])
                continue;
            CROPHE_ASSERT(res.partOf[u] < res.partOf[v],
                          "edge ", u, "->", v, " points backwards across "
                          "stages; refinement broke the pipeline");
            res.cutWords += g.op(u).outputWords;
            res.cutHopWords +=
                g.op(u).outputWords * hops(res.partOf[u], res.partOf[v]);
        }
    }
    return res;
}

}  // namespace crophe::pod
