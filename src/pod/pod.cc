#include "pod/pod.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "common/logging.h"
#include "map/pod_place.h"
#include "pod/partition.h"
#include "sched/scheduler.h"
#include "telemetry/stats_registry.h"
#include "telemetry/trace_recorder.h"

namespace crophe::pod {

void
validatePod(const PodConfig &pod)
{
    auto reject = [](const std::string &why) {
        throw RecoverableError("invalid pod configuration: " + why);
    };
    if (pod.chips == 0)
        reject("chips must be at least 1");
    if (pod.deadChips >= pod.chips)
        reject("dead chips (" + std::to_string(pod.deadChips) +
               ") must leave at least one of " +
               std::to_string(pod.chips) + " chips alive");
    if (pod.chips > 1 && !(pod.linkGBs > 0.0))
        reject("link bandwidth must be positive");
    if (!(pod.linkLatencyCycles >= 0.0))
        reject("link latency cannot be negative");
    if (!(pod.linkFraction > 0.0 && pod.linkFraction <= 1.0))
        reject("link fraction must be in (0, 1]");
}

u64
podDigest(const PodConfig &pod)
{
    u64 h = 1469598103934665603ull;
    auto mix = [&h](u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 1099511628211ull;
    };
    auto mixd = [&](double v) {
        u64 bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    mix(pod.chips);
    mixd(pod.linkGBs);
    mixd(pod.linkLatencyCycles);
    mix(pod.deadChips);
    // Mixed only when degraded: healthy pods keep their historical
    // digests so existing plan-cache entries stay valid.
    if (pod.linkFraction != 1.0)
        mixd(pod.linkFraction);
    return h;
}

hw::HwConfig
chipConfigForPod(const PodConfig &pod, const hw::HwConfig &chip)
{
    hw::HwConfig cfg = chip;
    if (pod.chips > 1 || pod.deadChips > 0)
        cfg.digestSalt = podDigest(pod);
    return cfg;
}

namespace {

/** Physical ids of the surviving chips (the highest-numbered die). */
std::vector<u32>
aliveChipIds(const PodConfig &pod)
{
    std::vector<u32> alive;
    for (u32 c = 0; c < pod.chips - pod.deadChips; ++c)
        alive.push_back(c);
    return alive;
}

}  // namespace

PodResult
schedulePodWorkload(const graph::Workload &w, const hw::HwConfig &chip,
                    const PodConfig &pod, const sched::SchedOptions &opt,
                    telemetry::StatsRegistry *reg,
                    telemetry::TraceRecorder *trace)
{
    validatePod(pod);
    hw::validateConfig(chip);
    const hw::HwConfig stageCfg = chipConfigForPod(pod, chip);
    const double hz = chip.freqGhz * 1e9;
    const u32 alive = pod.aliveChips();

    PodResult res;
    res.workload = w.name;
    res.pod = pod;

    for (const auto &seg : w.segments) {
        const u32 stages =
            std::min(alive, std::max<u32>(1, seg.graph.size()));
        auto part = partitionGraph(seg.graph, stages, chip);

        // Per-stage schedules on the pod-salted chip config. Stage
        // subgraphs materialize the crossing ciphertexts as boundary
        // Input/Output ops, so each chip's schedule charges them as
        // off-chip traffic on its own DRAM.
        std::vector<sched::Schedule> scheds;
        scheds.reserve(stages);
        PodSegmentResult sr;
        sr.name = seg.name;
        sr.repetitions = seg.repetitions;
        sr.stages = stages;
        sr.cutHopWords = part.cutHopWords;
        sr.partitionMoves = part.moves;
        sr.sramOverflow = part.sramOverflow;
        for (u32 s = 0; s < stages; ++s) {
            auto sub = seg.graph.inducedSubgraph(part.parts[s]);
            scheds.push_back(sched::scheduleGraph(sub, stageCfg, opt));
            if (scheds.back().degraded)
                sr.degraded = true;
        }

        // Aggregate cross-stage traffic (per repetition).
        std::map<std::pair<u32, u32>, u64> stageTraffic;
        for (graph::OpId u = 0; u < seg.graph.size(); ++u) {
            for (graph::OpId v : seg.graph.consumers(u)) {
                const u32 a = part.partOf[u], b = part.partOf[v];
                if (a != b)
                    stageTraffic[{a, b}] += seg.graph.op(u).outputWords;
            }
        }
        std::vector<map::StageEdge> edges;
        for (const auto &[key, words] : stageTraffic)
            edges.push_back({key.first, key.second, words});

        sr.stageChip = map::placeStagesOnRing(stages, aliveChipIds(pod),
                                              pod.chips, edges);

        sim::InterconnectConfig ic;
        ic.chips = pod.chips;
        ic.linkGBs = pod.linkGBs;
        ic.linkLatencyCycles = pod.linkLatencyCycles;
        ic.linkFraction = pod.linkFraction;
        sim::Interconnect net(ic, chip);
        std::vector<u32> chipTracks;
        if (trace != nullptr) {
            trace->beginProcess("pod:" + seg.name);
            net.attachTrace(trace);
            for (u32 s = 0; s < stages; ++s)
                chipTracks.push_back(trace->track(
                    "chip c" + std::to_string(sr.stageChip[s])));
        }

        // Pipeline the repetitions: repetition r enters stage s once its
        // chip is free and every cross-chip input for r has arrived.
        // Repetition 0 runs each stage cold; later repetitions keep the
        // stage's aux resident (warm cycles).
        std::vector<double> chipFree(pod.chips, 0.0);
        double segEnd = 0.0;
        for (u64 r = 0; r < seg.repetitions; ++r) {
            // Repetitions are independent instances of the segment graph:
            // transfers of repetition r gate only r's own later stages.
            std::vector<double> arrival(stages, 0.0);
            for (u32 s = 0; s < stages; ++s) {
                const u32 c = sr.stageChip[s];
                const double start = std::max(chipFree[c], arrival[s]);
                const double cycles = r == 0
                                          ? scheds[s].stats.cycles
                                          : scheds[s].warmStats.cycles;
                const double finish = start + cycles;
                chipFree[c] = finish;
                segEnd = std::max(segEnd, finish);
                if (trace != nullptr)
                    trace->complete(chipTracks[s],
                                    "s" + std::to_string(s) + " r" +
                                        std::to_string(r),
                                    start, cycles);
                for (const auto &e : edges) {
                    if (e.from != s)
                        continue;
                    const double arr = net.transfer(
                        finish, sr.stageChip[e.from],
                        sr.stageChip[e.to], e.words);
                    arrival[e.to] = std::max(arrival[e.to], arr);
                    segEnd = std::max(segEnd, arr);
                }
            }
        }
        sr.cycles = segEnd;

        // Steady-state throughput bound: the slowest warm stage or, if a
        // link saturates first, the busiest link's per-repetition
        // occupancy.
        double bottleneck = 0.0;
        for (u32 s = 0; s < stages; ++s)
            bottleneck = std::max(bottleneck, scheds[s].warmStats.cycles);
        if (stages > 1 && seg.repetitions > 0) {
            const double perRepLink =
                net.maxLinkBusyCycles() /
                static_cast<double>(seg.repetitions);
            bottleneck = std::max(bottleneck, perRepLink);
        }
        sr.warmCyclesPerRep = bottleneck;
        sr.interchipWords = net.totalWords();

        res.seconds += sr.cycles / hz;
        res.warmSeconds +=
            static_cast<double>(seg.repetitions) * bottleneck / hz;
        res.interchipWords += net.totalWords();
        res.transfers += net.transfers();
        res.linkBusyCycles += net.busyCycles();
        res.maxLinkBusyCycles =
            std::max(res.maxLinkBusyCycles, net.maxLinkBusyCycles());
        res.degraded = res.degraded || sr.degraded;
        if (reg != nullptr)
            net.accumulateInto(*reg);
        res.perSegment.push_back(std::move(sr));
    }
    return res;
}

}  // namespace crophe::pod
