#ifndef CROPHE_POD_PARTITION_H_
#define CROPHE_POD_PARTITION_H_

/**
 * @file
 * Cost-driven DAG partitioning for multi-accelerator pods
 * (DESIGN.md §12). The partitioner shards an operator graph into K
 * acyclic stages — one per chip — minimizing the ring-hop-weighted
 * inter-chip ciphertext traffic subject to per-stage balance and SRAM
 * constraints:
 *
 *   minimize   Σ_{(u,v) cut} outputWords(u) × ringHops(part(u), part(v))
 *   subject to flops(p) ≤ (1 + tol) × Σflops / K          (balance)
 *              auxWords(p) + maxOpFootprint(p) ≤ sramWords (capacity)
 *
 * Two phases, both deterministic and thread-count independent:
 *  1. Greedy seed: contiguous chunks of the aux-affinity topological
 *     order split at balanced flop prefix sums (same family as the
 *     Keembay workload partitioner's Balanced cost function).
 *  2. Kernighan–Lin-style boundary refinement: bounded best-gain passes
 *     moving single ops between adjacent stages. A move u: p → p+1 is
 *     legal only when every consumer of u sits in a stage ≥ p+1 (and
 *     symmetrically backwards), which preserves the seed's forward-edge
 *     invariant — every edge points to an equal-or-later stage — so
 *     stages always form an acyclic pipeline.
 *
 * Ties break on the smallest op id and the scan order is fixed, so the
 * result is byte-identical at any CROPHE_THREADS value.
 */

#include <vector>

#include "graph/graph.h"
#include "hw/config.h"

namespace crophe::pod {

/** Partitioner knobs (defaults match the pod scheduler). */
struct PartitionOptions
{
    /** Max stage flops over the perfect-balance average. */
    double balanceTolerance = 0.20;
    /** Max refinement passes; each pass applies at most one move per
     *  boundary op, so work is bounded by passes × ops. */
    u32 refinePasses = 8;
};

/** K acyclic stages plus the cut the refinement settled on. */
struct PartitionResult
{
    /** Stage index per op of the input graph. */
    std::vector<u32> partOf;
    /** Ops per stage, each in the input graph's topological order. */
    std::vector<std::vector<graph::OpId>> parts;
    /** Words crossing stage boundaries (each edge once). */
    u64 cutWords = 0;
    /** Ring-hop-weighted cut (the refinement objective). */
    u64 cutHopWords = 0;
    /** Refinement moves applied (0 = the seed was locally optimal). */
    u32 moves = 0;
    /** True when some stage exceeds the SRAM proxy even after
     *  refinement (the pod still runs; aux streams from DRAM). */
    bool sramOverflow = false;
};

/**
 * Partition @p g into @p parts pipeline stages for chips shaped like
 * @p chip. @p parts must be ≥ 1 and ≤ g.size(); parts == 1 returns the
 * trivial single-stage partition with zero cut.
 */
PartitionResult partitionGraph(const graph::Graph &g, u32 parts,
                               const hw::HwConfig &chip,
                               const PartitionOptions &opt = {});

}  // namespace crophe::pod

#endif  // CROPHE_POD_PARTITION_H_
