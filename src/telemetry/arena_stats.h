#ifndef CROPHE_TELEMETRY_ARENA_STATS_H_
#define CROPHE_TELEMETRY_ARENA_STATS_H_

/**
 * @file
 * Scratch-arena telemetry bridge.
 *
 * The thread-local ScratchArena tracks a process-wide high-water mark
 * and rewind count, but nothing reported them. registerArenaStats()
 * publishes them under `fhe.arena.*` as dump-time formulas, so a dump at
 * the end of a run sees the true peak rather than a registration-time
 * snapshot. Null-gated like the other telemetry hooks: callers that
 * aren't collecting stats pass nullptr and pay nothing.
 */

#include "telemetry/stats_registry.h"

namespace crophe::telemetry {

/**
 * Register `fhe.arena.peakBytes` and `fhe.arena.rewinds` in @p registry.
 * No-op when @p registry is null.
 */
void registerArenaStats(StatsRegistry *registry);

}  // namespace crophe::telemetry

#endif  // CROPHE_TELEMETRY_ARENA_STATS_H_
