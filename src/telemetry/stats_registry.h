#ifndef CROPHE_TELEMETRY_STATS_REGISTRY_H_
#define CROPHE_TELEMETRY_STATS_REGISTRY_H_

/**
 * @file
 * gem5-style hierarchical statistics registry.
 *
 * Components register named stats under dotted paths ("sim.noc.words",
 * "sched.enum.memoHits"); the registry owns them and dumps the whole tree
 * as aligned text or nested JSON. Four stat kinds:
 *
 *   Counter   — monotone u64 (event/word counts)
 *   Scalar    — double (cycles, busy time)
 *   Histogram — fixed linear bins with under/overflow and sum/min/max
 *   Formula   — computed on dump from other stats (rates, utilizations)
 *
 * Path uniqueness is enforced: re-registering a path, or registering a
 * path that is an ancestor/descendant of an existing one ("sim.noc" vs
 * "sim.noc.words"), panics. The get-or-create accessors (counter(),
 * scalar(), histogram()) allow accumulation across repeated runs — they
 * return the existing stat when the path is already bound to the same
 * kind and panic on a kind mismatch.
 */

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace crophe::telemetry {

/** Base of all registered statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

    /** Scalar view (histograms report their mean). */
    virtual double value() const = 0;
    /** Emit the stat's value as a JSON value. */
    virtual void writeJsonValue(std::ostream &os) const;
    /** One-line value for the text dump. */
    virtual std::string textValue() const;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotone event/word counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++count_; return *this; }
    Counter &operator+=(u64 n) { count_ += n; return *this; }
    void set(u64 n) { count_ = n; }
    u64 count() const { return count_; }
    double value() const override { return static_cast<double>(count_); }
    void writeJsonValue(std::ostream &os) const override;
    std::string textValue() const override;

  private:
    u64 count_ = 0;
};

/** Floating-point scalar (cycle counts, busy time). */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }
    double value() const override { return value_; }

  private:
    double value_ = 0.0;
};

/** Linear-binned distribution over [lo, hi) with under/overflow bins. */
class Histogram : public Stat
{
  public:
    Histogram(std::string name, std::string desc, double lo, double hi,
              u32 num_bins);

    void sample(double x, u64 weight = 1);

    u64 count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }
    u64 underflow() const { return underflow_; }
    u64 overflow() const { return overflow_; }
    const std::vector<u64> &bins() const { return bins_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    /** Lower edge of bin @p i. */
    double binLo(u32 i) const { return lo_ + i * width_; }

    double value() const override { return mean(); }
    void writeJsonValue(std::ostream &os) const override;
    std::string textValue() const override;

  private:
    double lo_, hi_, width_;
    std::vector<u64> bins_;
    u64 underflow_ = 0;
    u64 overflow_ = 0;
    u64 count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Stat computed on dump from other stats (hit rates, utilizations). */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc, std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
    {
    }

    double value() const override { return fn_(); }

  private:
    std::function<double()> fn_;
};

/** Ownership + lookup + dump over one tree of stats. */
class StatsRegistry
{
  public:
    /** Strict registration: panics when @p path collides (see file doc). @{ */
    Counter &addCounter(const std::string &path, const std::string &desc);
    Scalar &addScalar(const std::string &path, const std::string &desc);
    Histogram &addHistogram(const std::string &path, const std::string &desc,
                            double lo, double hi, u32 num_bins);
    Formula &addFormula(const std::string &path, const std::string &desc,
                        std::function<double()> fn);
    /** @} */

    /** Get-or-create: returns the existing stat of the same kind, panics
     *  on a kind mismatch. @{ */
    Counter &counter(const std::string &path, const std::string &desc = "");
    Scalar &scalar(const std::string &path, const std::string &desc = "");
    Histogram &histogram(const std::string &path, const std::string &desc,
                         double lo, double hi, u32 num_bins);
    /** @} */

    const Stat *find(const std::string &path) const;
    bool has(const std::string &path) const { return find(path) != nullptr; }
    /** Scalar view of the stat at @p path; panics when missing. */
    double value(const std::string &path) const;
    std::size_t size() const { return stats_.size(); }

    /** Aligned `path  value  # description` lines, sorted by path. */
    void dumpText(std::ostream &os) const;
    /** Nested JSON object following the dotted-path hierarchy. */
    void dumpJson(std::ostream &os) const;

  private:
    void checkPathFree(const std::string &path) const;
    template <typename T> T *findAs(const std::string &path) const;

    /** Sorted so the dotted hierarchy is contiguous for the dumpers. */
    std::map<std::string, std::unique_ptr<Stat>> stats_;
};

}  // namespace crophe::telemetry

#endif  // CROPHE_TELEMETRY_STATS_REGISTRY_H_
