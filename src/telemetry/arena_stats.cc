#include "telemetry/arena_stats.h"

#include "common/arena.h"

namespace crophe::telemetry {

void
registerArenaStats(StatsRegistry *registry)
{
    if (registry == nullptr)
        return;
    registry->addFormula(
        "fhe.arena.peakBytes",
        "high-water mark of scratch-arena bytes in use (all threads)", [] {
            return static_cast<double>(ScratchArena::globalPeakBytes());
        });
    registry->addFormula(
        "fhe.arena.rewinds", "scratch-arena scope rewinds executed",
        [] { return static_cast<double>(ScratchArena::globalRewinds()); });
}

}  // namespace crophe::telemetry
