#include "telemetry/trace_recorder.h"

#include "common/logging.h"
#include "telemetry/json_util.h"

namespace crophe::telemetry {

TraceRecorder::TraceRecorder()
{
    processes_.push_back({"crophe", {}, {}});
}

u32
TraceRecorder::beginProcess(const std::string &name)
{
    currentPid_ = static_cast<u32>(processes_.size());
    processes_.push_back({name, {}, {}});
    return currentPid_;
}

u32
TraceRecorder::track(const std::string &name)
{
    Process &proc = processes_[currentPid_];
    auto [it, inserted] = proc.trackIds.emplace(
        name, static_cast<u32>(proc.trackNames.size()) + 1);
    if (inserted)
        proc.trackNames.push_back(name);
    return it->second;
}

void
TraceRecorder::complete(u32 tid, const std::string &name, double ts,
                        double dur, Args args)
{
    events_.push_back(
        {'X', currentPid_, tid, name, ts, dur, 0.0, std::move(args)});
}

void
TraceRecorder::counter(const std::string &name, double ts, double value)
{
    events_.push_back({'C', currentPid_, 0, name, ts, 0.0, value, {}});
}

void
TraceRecorder::instant(const std::string &name, double ts)
{
    events_.push_back({'i', currentPid_, 0, name, ts, 0.0, 0.0, {}});
}

std::string
TraceRecorder::trackName(u32 pid, u32 tid) const
{
    if (pid >= processes_.size())
        return "";
    const auto &names = processes_[pid].trackNames;
    if (tid == 0 || tid > names.size())
        return "";
    return names[tid - 1];
}

std::string
TraceRecorder::processName(u32 pid) const
{
    return pid < processes_.size() ? processes_[pid].name : "";
}

void
TraceRecorder::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Metadata: process and track names.
    for (u32 pid = 0; pid < processes_.size(); ++pid) {
        const Process &proc = processes_[pid];
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":";
        jsonString(os, proc.name);
        os << "}}";
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":"
           << pid << "}}";
        for (u32 tid = 1; tid <= proc.trackNames.size(); ++tid) {
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
               << ",\"name\":\"thread_name\",\"args\":{\"name\":";
            jsonString(os, proc.trackNames[tid - 1]);
            os << "}}";
        }
    }

    for (const Event &ev : events_) {
        sep();
        os << "{\"ph\":\"" << ev.phase << "\",\"pid\":" << ev.pid
           << ",\"tid\":" << ev.tid << ",\"name\":";
        jsonString(os, ev.name);
        os << ",\"cat\":\"sim\",\"ts\":";
        jsonNumber(os, ev.ts);
        switch (ev.phase) {
        case 'X':
            os << ",\"dur\":";
            jsonNumber(os, ev.dur);
            if (!ev.args.empty()) {
                os << ",\"args\":{";
                for (std::size_t i = 0; i < ev.args.size(); ++i) {
                    if (i)
                        os << ",";
                    jsonString(os, ev.args[i].first);
                    os << ":";
                    jsonNumber(os, ev.args[i].second);
                }
                os << "}";
            }
            break;
        case 'C':
            os << ",\"args\":{\"value\":";
            jsonNumber(os, ev.value);
            os << "}";
            break;
        case 'i':
            os << ",\"s\":\"p\"";
            break;
        default:
            CROPHE_PANIC("unknown trace phase ", ev.phase);
        }
        os << "}";
    }
    os << "\n]}\n";
}

}  // namespace crophe::telemetry
