#include "telemetry/json_util.h"

#include <cmath>
#include <cstdio>

namespace crophe::telemetry {

void
jsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    // %.17g round-trips doubles and is always valid JSON syntax.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

void
jsonNumber(std::ostream &os, u64 v)
{
    os << v;
}

}  // namespace crophe::telemetry
