#ifndef CROPHE_TELEMETRY_JSON_UTIL_H_
#define CROPHE_TELEMETRY_JSON_UTIL_H_

/**
 * @file
 * Minimal JSON emission helpers shared by the stats registry and the
 * trace recorder. Output is plain RFC 8259 JSON: strings are escaped,
 * non-finite numbers degrade to null (JSON has no Inf/NaN).
 */

#include <ostream>
#include <string_view>

#include "common/types.h"

namespace crophe::telemetry {

/** Write @p s as a quoted, escaped JSON string literal. */
void jsonString(std::ostream &os, std::string_view s);

/** Write @p v as a JSON number; non-finite values become null. */
void jsonNumber(std::ostream &os, double v);

/** Write @p v as a JSON integer. */
void jsonNumber(std::ostream &os, u64 v);

}  // namespace crophe::telemetry

#endif  // CROPHE_TELEMETRY_JSON_UTIL_H_
