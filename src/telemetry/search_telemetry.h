#ifndef CROPHE_TELEMETRY_SEARCH_TELEMETRY_H_
#define CROPHE_TELEMETRY_SEARCH_TELEMETRY_H_

/**
 * @file
 * Scheduler search observability: every candidate schedule the search
 * evaluates (base dataflow, NTT-decomposition factors, rotation schemes,
 * cluster counts) is recorded with its cost, yielding a best-cost-so-far
 * curve, together with the group enumerator's memoization effectiveness
 * (unique subgraphs analyzed vs memo hits — the paper's
 * redundant-subgraph merging).
 *
 * Observers are attached via SchedOptions::search; a null pointer keeps
 * the scheduler free of any telemetry work.
 */

#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace crophe::telemetry {

class StatsRegistry;

/** One evaluated candidate in the schedule search. */
struct SearchSample
{
    u64 step;           ///< 0-based evaluation order
    std::string label;  ///< e.g. "bootstrap/nttdec n1=64"
    double cost;        ///< candidate cycles
    double bestSoFar;   ///< min cost up to and including this step
};

/** The winning (rotation scheme, ks dataflow) of one workload's search. */
struct SearchChoice
{
    std::string workload;  ///< e.g. "bootstrap"
    std::string rotLabel;  ///< e.g. "hybrid r=4"
    u32 rotIndex;          ///< static_cast<u32>(graph::RotMode)
    std::string ksLabel;   ///< e.g. "fused"
    u32 ksIndex;           ///< static_cast<u32>(graph::KsDataflow)
};

/**
 * Accumulates scheduler search progress across one or more searches.
 *
 * Thread-safe: the scheduler evaluates candidate sweeps in parallel, so
 * recordCandidate/addEnumeration may race. Samples are stored raw and
 * every read (curve(), writeCurveJson(), registerStats()) presents the
 * canonical view — samples sorted by (label, cost) with step and
 * best-so-far recomputed — so the dump is byte-identical for any thread
 * count and arrival order.
 */
class SearchTelemetry
{
  public:
    /** Record one evaluated candidate schedule. */
    void recordCandidate(const std::string &label, double cost);

    /** Record the variant the rotation/ks-dataflow search settled on. */
    void recordChoice(const std::string &workload,
                      const std::string &rot_label, u32 rot_index,
                      const std::string &ks_label, u32 ks_index);

    /** Fold in one GroupEnumerator's counters after a search. */
    void addEnumeration(u64 analyzed, u64 memo_hits);

    /** Fold in one DP cover's branch-and-bound pruned-window count. */
    void addPruning(u64 windows);

    /** Record one plan-cache lookup at scheduleGraph level. */
    void addPlanLookup(bool hit);

    /** Record one graph search truncated by its anytime deadline. */
    void addDeadlineHit();

    /** Accumulate wall-clock seconds spent searching (baselines timing). */
    void addSearchSeconds(double seconds);

    u64 candidates() const;
    u64 analyzed() const;
    u64 memoHits() const;
    u64 prunedWindows() const;
    u64 planHits() const;
    u64 planMisses() const;
    u64 deadlineHits() const;
    double searchSeconds() const;
    /** Fraction of candidate-group lookups served from the memo. */
    double memoHitRate() const;
    double bestCost() const;
    /** Canonical (label-sorted) best-cost curve; see class comment. */
    std::vector<SearchSample> curve() const;

    /** Recorded winners, sorted by (workload, rot, ks) for determinism. */
    std::vector<SearchChoice> choices() const;

    /** Snapshot the counters into @p reg under @p prefix (idempotent). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix = "sched") const;

    /** Write the best-cost curve as a JSON array of samples. */
    void writeCurveJson(std::ostream &os) const;

  private:
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, double>> samples_;  ///< raw order
    std::vector<SearchChoice> choices_;                    ///< raw order
    u64 analyzed_ = 0;
    u64 memoHits_ = 0;
    u64 prunedWindows_ = 0;
    u64 planHits_ = 0;
    u64 planMisses_ = 0;
    u64 deadlineHits_ = 0;
    double searchSeconds_ = 0.0;
};

}  // namespace crophe::telemetry

#endif  // CROPHE_TELEMETRY_SEARCH_TELEMETRY_H_
