#ifndef CROPHE_TELEMETRY_TELEMETRY_H_
#define CROPHE_TELEMETRY_TELEMETRY_H_

/**
 * @file
 * Telemetry session bundle handed to the simulator.
 *
 * Both members are optional and null by default: a null trace recorder
 * means the simulator's hot path does no recording work at all, and a
 * null registry skips stat accumulation — simulated timing is identical
 * either way (recording observes server start/finish times, it never
 * participates in them).
 */

#include <string>

#include "telemetry/search_telemetry.h"
#include "telemetry/stats_registry.h"
#include "telemetry/trace_recorder.h"

namespace crophe::telemetry {

/** Optional observers threaded through one simulation run. */
struct SimTelemetry
{
    TraceRecorder *trace = nullptr;
    StatsRegistry *registry = nullptr;
    /** Dotted-path prefix for the simulator's stats. */
    std::string statsPrefix = "sim";
};

}  // namespace crophe::telemetry

#endif  // CROPHE_TELEMETRY_TELEMETRY_H_
