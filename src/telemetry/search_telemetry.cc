#include "telemetry/search_telemetry.h"

#include "telemetry/json_util.h"
#include "telemetry/stats_registry.h"

namespace crophe::telemetry {

void
SearchTelemetry::recordCandidate(const std::string &label, double cost)
{
    double best = curve_.empty() ? cost : std::min(best_, cost);
    curve_.push_back({curve_.size(), label, cost, best});
    best_ = best;
}

void
SearchTelemetry::addEnumeration(u64 analyzed, u64 memo_hits)
{
    analyzed_ += analyzed;
    memoHits_ += memo_hits;
}

double
SearchTelemetry::memoHitRate() const
{
    u64 lookups = analyzed_ + memoHits_;
    return lookups ? static_cast<double>(memoHits_) / lookups : 0.0;
}

void
SearchTelemetry::registerStats(StatsRegistry &reg,
                               const std::string &prefix) const
{
    reg.counter(prefix + ".search.candidates",
                "candidate schedules evaluated")
        .set(candidates());
    reg.scalar(prefix + ".search.bestCycles",
               "cheapest candidate schedule cost")
        .set(best_);
    Counter &analyzed = reg.counter(
        prefix + ".enum.analyzed",
        "unique subgraphs analyzed by the group enumerator");
    analyzed.set(analyzed_);
    Counter &hits = reg.counter(
        prefix + ".enum.memoHits",
        "group analyses served from the structural-hash memo");
    hits.set(memoHits_);
    if (!reg.has(prefix + ".enum.memoHitRate")) {
        // Captures registry-owned counters, so the formula stays valid for
        // the registry's whole lifetime.
        reg.addFormula(prefix + ".enum.memoHitRate",
                       "memo hits / total candidate-group lookups",
                       [&analyzed, &hits] {
                           u64 lookups = analyzed.count() + hits.count();
                           return lookups ? static_cast<double>(hits.count()) /
                                                static_cast<double>(lookups)
                                          : 0.0;
                       });
    }
}

void
SearchTelemetry::writeCurveJson(std::ostream &os) const
{
    os << "[";
    for (std::size_t i = 0; i < curve_.size(); ++i) {
        const SearchSample &s = curve_[i];
        os << (i ? ",\n" : "\n") << "{\"step\":" << s.step << ",\"label\":";
        jsonString(os, s.label);
        os << ",\"cost\":";
        jsonNumber(os, s.cost);
        os << ",\"bestSoFar\":";
        jsonNumber(os, s.bestSoFar);
        os << "}";
    }
    os << "\n]";
}

}  // namespace crophe::telemetry
