#include "telemetry/search_telemetry.h"

#include <algorithm>
#include <limits>

#include "telemetry/json_util.h"
#include "telemetry/stats_registry.h"

namespace crophe::telemetry {

void
SearchTelemetry::recordCandidate(const std::string &label, double cost)
{
    std::lock_guard<std::mutex> lock(mu_);
    samples_.emplace_back(label, cost);
}

void
SearchTelemetry::recordChoice(const std::string &workload,
                              const std::string &rot_label, u32 rot_index,
                              const std::string &ks_label, u32 ks_index)
{
    std::lock_guard<std::mutex> lock(mu_);
    choices_.push_back({workload, rot_label, rot_index, ks_label, ks_index});
}

void
SearchTelemetry::addEnumeration(u64 analyzed, u64 memo_hits)
{
    std::lock_guard<std::mutex> lock(mu_);
    analyzed_ += analyzed;
    memoHits_ += memo_hits;
}

void
SearchTelemetry::addPruning(u64 windows)
{
    std::lock_guard<std::mutex> lock(mu_);
    prunedWindows_ += windows;
}

void
SearchTelemetry::addPlanLookup(bool hit)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (hit)
        ++planHits_;
    else
        ++planMisses_;
}

void
SearchTelemetry::addDeadlineHit()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++deadlineHits_;
}

void
SearchTelemetry::addSearchSeconds(double seconds)
{
    std::lock_guard<std::mutex> lock(mu_);
    searchSeconds_ += seconds;
}

u64
SearchTelemetry::prunedWindows() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return prunedWindows_;
}

u64
SearchTelemetry::planHits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return planHits_;
}

u64
SearchTelemetry::planMisses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return planMisses_;
}

u64
SearchTelemetry::deadlineHits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return deadlineHits_;
}

double
SearchTelemetry::searchSeconds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return searchSeconds_;
}

u64
SearchTelemetry::candidates() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
}

u64
SearchTelemetry::analyzed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return analyzed_;
}

u64
SearchTelemetry::memoHits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return memoHits_;
}

double
SearchTelemetry::memoHitRate() const
{
    std::lock_guard<std::mutex> lock(mu_);
    u64 lookups = analyzed_ + memoHits_;
    return lookups ? static_cast<double>(memoHits_) / lookups : 0.0;
}

double
SearchTelemetry::bestCost() const
{
    std::lock_guard<std::mutex> lock(mu_);
    double best = 0.0;
    bool first = true;
    for (const auto &[label, cost] : samples_) {
        best = first ? cost : std::min(best, cost);
        first = false;
    }
    return best;
}

std::vector<SearchSample>
SearchTelemetry::curve() const
{
    // Parallel sweeps record in nondeterministic order; the canonical
    // curve sorts by (label, cost) and recomputes step / best-so-far over
    // that order, so it depends only on the set of samples.
    std::vector<std::pair<std::string, double>> samples;
    {
        std::lock_guard<std::mutex> lock(mu_);
        samples = samples_;
    }
    std::stable_sort(samples.begin(), samples.end());
    std::vector<SearchSample> out;
    out.reserve(samples.size());
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        best = std::min(best, samples[i].second);
        out.push_back({i, samples[i].first, samples[i].second, best});
    }
    return out;
}

std::vector<SearchChoice>
SearchTelemetry::choices() const
{
    std::vector<SearchChoice> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out = choices_;
    }
    // Parallel design sweeps record in nondeterministic order; present a
    // canonical ordering so every reader sees the same list.
    std::stable_sort(out.begin(), out.end(),
                     [](const SearchChoice &a, const SearchChoice &b) {
                         if (a.workload != b.workload)
                             return a.workload < b.workload;
                         if (a.rotLabel != b.rotLabel)
                             return a.rotLabel < b.rotLabel;
                         return a.ksLabel < b.ksLabel;
                     });
    return out;
}

void
SearchTelemetry::registerStats(StatsRegistry &reg,
                               const std::string &prefix) const
{
    reg.counter(prefix + ".search.candidates",
                "candidate schedules evaluated")
        .set(candidates());
    reg.scalar(prefix + ".search.bestCycles",
               "cheapest candidate schedule cost")
        .set(bestCost());
    Counter &analyzed_ctr = reg.counter(
        prefix + ".enum.analyzed",
        "unique subgraphs analyzed by the group enumerator");
    analyzed_ctr.set(analyzed());
    Counter &hits = reg.counter(
        prefix + ".enum.memoHits",
        "group analyses served from the structural-hash memo");
    hits.set(memoHits());
    reg.counter(prefix + ".search.prunedWindows",
                "DP cover windows skipped by branch-and-bound")
        .set(prunedWindows());
    reg.counter(prefix + ".plan.hits",
                "schedule searches served from the plan cache")
        .set(planHits());
    reg.counter(prefix + ".plan.misses",
                "plan-cache lookups that fell back to a full search")
        .set(planMisses());
    reg.scalar(prefix + ".search.seconds",
               "wall-clock seconds spent scheduling")
        .set(searchSeconds());
    // Only registered once a deadline actually truncated a search, so
    // deadline-free runs keep their pre-anytime stats dumps byte-identical.
    if (deadlineHits() > 0)
        reg.counter(prefix + ".search.deadlineHits",
                    "graph searches truncated by the anytime deadline")
            .set(deadlineHits());
    // Variant winners, as bitmask unions of the chosen enum indices —
    // order-independent across thread interleavings, and absent entirely
    // when no rotation-scheme search ran (MAD-only dumps stay unchanged).
    auto chosen = choices();
    if (!chosen.empty()) {
        u64 rot_mask = 0;
        u64 ks_mask = 0;
        for (const SearchChoice &c : chosen) {
            rot_mask |= u64{1} << c.rotIndex;
            ks_mask |= u64{1} << c.ksIndex;
        }
        reg.counter(prefix + ".rot.mode",
                    "bitmask union of chosen rotation schemes "
                    "(1<<graph::RotMode)")
            .set(rot_mask);
        reg.counter(prefix + ".ks.dataflow",
                    "bitmask union of chosen key-switch dataflows "
                    "(1<<graph::KsDataflow)")
            .set(ks_mask);
    }
    if (!reg.has(prefix + ".enum.memoHitRate")) {
        // Captures registry-owned counters, so the formula stays valid for
        // the registry's whole lifetime.
        reg.addFormula(prefix + ".enum.memoHitRate",
                       "memo hits / total candidate-group lookups",
                       [&analyzed_ctr, &hits] {
                           u64 lookups =
                               analyzed_ctr.count() + hits.count();
                           return lookups
                                      ? static_cast<double>(hits.count()) /
                                            static_cast<double>(lookups)
                                      : 0.0;
                       });
    }
}

void
SearchTelemetry::writeCurveJson(std::ostream &os) const
{
    auto canonical = curve();
    os << "[";
    for (std::size_t i = 0; i < canonical.size(); ++i) {
        const SearchSample &s = canonical[i];
        os << (i ? ",\n" : "\n") << "{\"step\":" << s.step << ",\"label\":";
        jsonString(os, s.label);
        os << ",\"cost\":";
        jsonNumber(os, s.cost);
        os << ",\"bestSoFar\":";
        jsonNumber(os, s.bestSoFar);
        os << "}";
    }
    os << "\n]";
}

}  // namespace crophe::telemetry
