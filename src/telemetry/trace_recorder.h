#ifndef CROPHE_TELEMETRY_TRACE_RECORDER_H_
#define CROPHE_TELEMETRY_TRACE_RECORDER_H_

/**
 * @file
 * In-memory recorder for Chrome trace-event JSON (loadable in Perfetto /
 * chrome://tracing).
 *
 * The model maps onto the trace format as:
 *   process (pid)  — one simulated segment / run phase
 *   track (tid)    — one hardware resource: a PE group, the NoC, the SRAM
 *                    bank group, the transpose unit, one DRAM channel
 *   'X' complete   — a busy span on a track (begin + duration)
 *   'C' counter    — a sampled counter value (cumulative traffic, queue
 *                    depth)
 *   'i' instant    — a point event (synchronous group switch)
 *
 * Timestamps are simulated accelerator cycles written into the `ts`/`dur`
 * microsecond fields — the viewer's time unit reads as cycles. Recording
 * is append-only and never alters simulation state; a null recorder
 * pointer anywhere in the simulator means zero work.
 */

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace crophe::telemetry {

/** Chrome-trace recorder; see file comment for the mapping. */
class TraceRecorder
{
  public:
    /** Optional numeric span/counter arguments (words, chunk index...). */
    using Args = std::vector<std::pair<std::string, double>>;

    struct Event
    {
        char phase;        ///< 'X' complete, 'C' counter, 'i' instant
        u32 pid;
        u32 tid;           ///< 0 = the process-wide track
        std::string name;
        double ts;
        double dur = 0.0;   ///< 'X' only
        double value = 0.0; ///< 'C' only
        Args args;          ///< 'X' extra arguments
    };

    TraceRecorder();

    /**
     * Open a new process scope named @p name (e.g. one workload segment)
     * and make it current; returns its pid. Tracks are per process.
     */
    u32 beginProcess(const std::string &name);

    /** Id of the track named @p name in the current process (created and
     *  memoized on first use). */
    u32 track(const std::string &name);

    /** Record a busy span on @p tid. */
    void complete(u32 tid, const std::string &name, double ts, double dur,
                  Args args = {});

    /** Record a counter sample on the current process. */
    void counter(const std::string &name, double ts, double value);

    /** Record an instant event on the current process. */
    void instant(const std::string &name, double ts);

    const std::vector<Event> &events() const { return events_; }
    u32 currentPid() const { return currentPid_; }
    /** Track name lookup for tests/tools (empty when unknown). */
    std::string trackName(u32 pid, u32 tid) const;
    std::string processName(u32 pid) const;

    /** Write the full trace as Chrome trace-event JSON. */
    void writeJson(std::ostream &os) const;

  private:
    struct Process
    {
        std::string name;
        std::map<std::string, u32> trackIds;
        std::vector<std::string> trackNames;  ///< index = tid - 1
    };

    std::vector<Process> processes_;
    u32 currentPid_ = 0;
    std::vector<Event> events_;
};

}  // namespace crophe::telemetry

#endif  // CROPHE_TELEMETRY_TRACE_RECORDER_H_
