#include "telemetry/stats_registry.h"

#include <iomanip>
#include <sstream>

#include "common/logging.h"
#include "telemetry/json_util.h"

namespace crophe::telemetry {

void
Stat::writeJsonValue(std::ostream &os) const
{
    jsonNumber(os, value());
}

std::string
Stat::textValue() const
{
    std::ostringstream os;
    os << std::setprecision(12) << value();
    return os.str();
}

void
Counter::writeJsonValue(std::ostream &os) const
{
    jsonNumber(os, count_);
}

std::string
Counter::textValue() const
{
    return std::to_string(count_);
}

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, u32 num_bins)
    : Stat(std::move(name), std::move(desc)), lo_(lo), hi_(hi),
      width_((hi - lo) / num_bins), bins_(num_bins, 0)
{
    CROPHE_ASSERT(num_bins > 0 && hi > lo, "bad histogram spec for ",
                  this->name());
}

void
Histogram::sample(double x, u64 weight)
{
    count_ += weight;
    sum_ += x * static_cast<double>(weight);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    if (x < lo_) {
        underflow_ += weight;
    } else if (x >= hi_) {
        overflow_ += weight;
    } else {
        auto bin = static_cast<std::size_t>((x - lo_) / width_);
        bins_[std::min(bin, bins_.size() - 1)] += weight;
    }
}

void
Histogram::writeJsonValue(std::ostream &os) const
{
    os << "{\"count\":" << count_ << ",\"sum\":";
    jsonNumber(os, sum_);
    os << ",\"mean\":";
    jsonNumber(os, mean());
    os << ",\"min\":";
    jsonNumber(os, count_ ? min_ : 0.0);
    os << ",\"max\":";
    jsonNumber(os, count_ ? max_ : 0.0);
    os << ",\"lo\":";
    jsonNumber(os, lo_);
    os << ",\"hi\":";
    jsonNumber(os, hi_);
    os << ",\"underflow\":" << underflow_ << ",\"overflow\":" << overflow_
       << ",\"bins\":[";
    for (std::size_t i = 0; i < bins_.size(); ++i)
        os << (i ? "," : "") << bins_[i];
    os << "]}";
}

std::string
Histogram::textValue() const
{
    std::ostringstream os;
    os << "count=" << count_ << " mean=" << std::setprecision(6) << mean()
       << " min=" << (count_ ? min_ : 0.0)
       << " max=" << (count_ ? max_ : 0.0);
    return os.str();
}

void
StatsRegistry::checkPathFree(const std::string &path) const
{
    CROPHE_ASSERT(!path.empty(), "empty stat path");
    CROPHE_ASSERT(stats_.find(path) == stats_.end(), "duplicate stat path ",
                  path);
    // Ancestor conflict: some prefix of @p path is already a leaf.
    for (std::size_t dot = path.find('.'); dot != std::string::npos;
         dot = path.find('.', dot + 1)) {
        CROPHE_ASSERT(stats_.find(path.substr(0, dot)) == stats_.end(),
                      "stat path ", path, " nests under existing leaf ",
                      path.substr(0, dot));
    }
    // Descendant conflict: @p path is an ancestor of an existing leaf.
    auto it = stats_.lower_bound(path + ".");
    CROPHE_ASSERT(it == stats_.end() ||
                      it->first.compare(0, path.size() + 1, path + ".") != 0,
                  "stat path ", path, " is an ancestor of existing ",
                  it == stats_.end() ? "" : it->first);
}

template <typename T>
T *
StatsRegistry::findAs(const std::string &path) const
{
    auto it = stats_.find(path);
    if (it == stats_.end())
        return nullptr;
    T *stat = dynamic_cast<T *>(it->second.get());
    CROPHE_ASSERT(stat != nullptr, "stat ", path,
                  " already registered with a different kind");
    return stat;
}

Counter &
StatsRegistry::addCounter(const std::string &path, const std::string &desc)
{
    checkPathFree(path);
    auto stat = std::make_unique<Counter>(path, desc);
    Counter &ref = *stat;
    stats_.emplace(path, std::move(stat));
    return ref;
}

Scalar &
StatsRegistry::addScalar(const std::string &path, const std::string &desc)
{
    checkPathFree(path);
    auto stat = std::make_unique<Scalar>(path, desc);
    Scalar &ref = *stat;
    stats_.emplace(path, std::move(stat));
    return ref;
}

Histogram &
StatsRegistry::addHistogram(const std::string &path, const std::string &desc,
                            double lo, double hi, u32 num_bins)
{
    checkPathFree(path);
    auto stat = std::make_unique<Histogram>(path, desc, lo, hi, num_bins);
    Histogram &ref = *stat;
    stats_.emplace(path, std::move(stat));
    return ref;
}

Formula &
StatsRegistry::addFormula(const std::string &path, const std::string &desc,
                          std::function<double()> fn)
{
    checkPathFree(path);
    auto stat = std::make_unique<Formula>(path, desc, std::move(fn));
    Formula &ref = *stat;
    stats_.emplace(path, std::move(stat));
    return ref;
}

Counter &
StatsRegistry::counter(const std::string &path, const std::string &desc)
{
    if (Counter *existing = findAs<Counter>(path))
        return *existing;
    return addCounter(path, desc);
}

Scalar &
StatsRegistry::scalar(const std::string &path, const std::string &desc)
{
    if (Scalar *existing = findAs<Scalar>(path))
        return *existing;
    return addScalar(path, desc);
}

Histogram &
StatsRegistry::histogram(const std::string &path, const std::string &desc,
                         double lo, double hi, u32 num_bins)
{
    if (Histogram *existing = findAs<Histogram>(path))
        return *existing;
    return addHistogram(path, desc, lo, hi, num_bins);
}

const Stat *
StatsRegistry::find(const std::string &path) const
{
    auto it = stats_.find(path);
    return it == stats_.end() ? nullptr : it->second.get();
}

double
StatsRegistry::value(const std::string &path) const
{
    const Stat *stat = find(path);
    CROPHE_ASSERT(stat != nullptr, "unknown stat ", path);
    return stat->value();
}

void
StatsRegistry::dumpText(std::ostream &os) const
{
    std::size_t width = 0;
    for (const auto &[path, stat] : stats_)
        width = std::max(width, path.size());
    for (const auto &[path, stat] : stats_) {
        os << std::left << std::setw(static_cast<int>(width) + 2) << path
           << std::right << std::setw(16) << stat->textValue();
        if (!stat->description().empty())
            os << "  # " << stat->description();
        os << '\n';
    }
}

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    // The map is path-sorted, so every dotted subtree is a contiguous
    // range: walk it once, opening/closing nested objects as the shared
    // prefix grows and shrinks.
    auto segments = [](const std::string &path) {
        std::vector<std::string> out;
        std::size_t start = 0;
        for (std::size_t dot = path.find('.'); dot != std::string::npos;
             dot = path.find('.', start)) {
            out.push_back(path.substr(start, dot - start));
            start = dot + 1;
        }
        out.push_back(path.substr(start));
        return out;
    };

    os << "{";
    std::vector<std::string> open;  // currently open group names
    bool first = true;
    for (const auto &[path, stat] : stats_) {
        std::vector<std::string> segs = segments(path);
        std::size_t keep = 0;
        while (keep < open.size() && keep + 1 < segs.size() &&
               open[keep] == segs[keep])
            ++keep;
        while (open.size() > keep) {
            os << "}";
            open.pop_back();
            first = false;
        }
        for (std::size_t i = keep; i + 1 < segs.size(); ++i) {
            os << (first ? "" : ",");
            jsonString(os, segs[i]);
            os << ":{";
            open.push_back(segs[i]);
            first = true;
        }
        os << (first ? "" : ",");
        jsonString(os, segs.back());
        os << ":";
        stat->writeJsonValue(os);
        first = false;
    }
    for (std::size_t i = 0; i < open.size(); ++i)
        os << "}";
    os << "}";
}

}  // namespace crophe::telemetry
