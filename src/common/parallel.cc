#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace crophe {

namespace {

/** Pool size resolution: override > CROPHE_THREADS > hardware. */
u32
defaultThreadCount()
{
    if (const char *env = std::getenv("CROPHE_THREADS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<u32>(v);
        CROPHE_WARN("ignoring invalid CROPHE_THREADS=", env);
    }
    u32 hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
u32 g_thread_override = 0;  // 0 = no explicit setGlobalThreads() yet

}  // namespace

/**
 * One fork-join batch. Chunks self-schedule through an atomic cursor, so
 * any executor (the forking thread, a worker that popped a ticket) claims
 * the next unclaimed chunk; tickets hold shared ownership so a ticket
 * popped after the batch completed is a safe no-op.
 */
struct ThreadPool::Batch
{
    const std::function<void(u32)> *fn = nullptr;
    u32 chunks = 0;
    std::atomic<u32> next{0};
    std::atomic<u32> done{0};
    std::mutex m;
    std::condition_variable cv;
    std::vector<std::exception_ptr> errors;
};

struct ThreadPool::Worker
{
    std::mutex m;
    std::deque<std::shared_ptr<Batch>> deq;
    std::thread thread;
    ThreadPool *pool = nullptr;
};

// Sleep/wake state shared by all executors of one pool. The ticket
// counter is an upper bound on deque occupancy (incremented before a
// push, decremented after a pop), so counter == 0 implies empty deques
// and a worker may sleep.
struct ThreadPool::State
{
    std::mutex m;
    std::condition_variable cv;
    std::atomic<u64> tickets{0};
    std::atomic<bool> stop{false};
};

namespace {

/** Set while a pool thread (or a thread draining a batch) runs chunks. */
thread_local ThreadPool *tl_pool = nullptr;
thread_local u32 tl_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(u32 threads)
    : threads_(threads == 0 ? 1 : threads), state_(std::make_unique<State>())
{
    // threads_ - 1 workers; the forking thread is the last executor.
    for (u32 i = 0; i + 1 < threads_; ++i) {
        auto *w = new Worker();
        w->pool = this;
        workers_.push_back(w);
    }
    for (u32 i = 0; i < workers_.size(); ++i)
        workers_[i]->thread = std::thread([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(state_->m);
        state_->stop.store(true, std::memory_order_release);
    }
    state_->cv.notify_all();
    // Join every worker before deleting any: a still-running worker's
    // steal loop touches its peers' deques, so no Worker may die while
    // any thread is alive.
    for (auto *w : workers_)
        if (w->thread.joinable())
            w->thread.join();
    for (auto *w : workers_)
        delete w;
}

void
ThreadPool::drain(Batch &batch)
{
    for (;;) {
        u32 c = batch.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= batch.chunks)
            return;
        try {
            (*batch.fn)(c);
        } catch (...) {
            batch.errors[c] = std::current_exception();
        }
        if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            batch.chunks) {
            { std::lock_guard<std::mutex> lock(batch.m); }
            batch.cv.notify_all();
        }
    }
}

void
ThreadPool::workerLoop(u32 index)
{
    tl_pool = this;
    tl_worker_index = index + 1;  // 0 is reserved for non-pool threads
    State &st = *state_;

    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            // Own deque first (LIFO keeps fresh forks local) ...
            Worker &self = *workers_[index];
            std::lock_guard<std::mutex> lock(self.m);
            if (!self.deq.empty()) {
                batch = std::move(self.deq.back());
                self.deq.pop_back();
            }
        }
        if (!batch) {
            // ... then steal the oldest ticket from a victim.
            for (u32 k = 1; k < workers_.size() && !batch; ++k) {
                Worker &victim =
                    *workers_[(index + k) % workers_.size()];
                std::lock_guard<std::mutex> lock(victim.m);
                if (!victim.deq.empty()) {
                    batch = std::move(victim.deq.front());
                    victim.deq.pop_front();
                }
            }
        }
        if (batch) {
            st.tickets.fetch_sub(1, std::memory_order_acq_rel);
            drain(*batch);
            continue;
        }
        std::unique_lock<std::mutex> lock(st.m);
        st.cv.wait(lock, [&] {
            return st.stop.load(std::memory_order_acquire) ||
                   st.tickets.load(std::memory_order_acquire) > 0;
        });
        if (st.stop.load(std::memory_order_acquire))
            return;
    }
}

void
ThreadPool::run(u32 chunks, const std::function<void(u32)> &fn)
{
    if (chunks == 0)
        return;

    auto rethrowFirst = [](const std::vector<std::exception_ptr> &errors) {
        for (const auto &e : errors)
            if (e)
                std::rethrow_exception(e);
    };

    if (chunks == 1 || threads_ == 1 || workers_.empty()) {
        // Serial path: run every chunk (even past a failure) so side
        // effects match a parallel run, then surface the lowest-index
        // exception — the same contract as the parallel path.
        std::vector<std::exception_ptr> errors(chunks);
        for (u32 c = 0; c < chunks; ++c) {
            try {
                fn(c);
            } catch (...) {
                errors[c] = std::current_exception();
            }
        }
        rethrowFirst(errors);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->fn = &fn;
    batch->chunks = chunks;
    batch->errors.resize(chunks);

    // Share min(chunks, threads) - 1 tickets with the pool; every ticket
    // is an invitation to help drain the batch. The forking thread joins
    // in too, so a batch never waits for a worker to become free.
    u32 tickets = std::min<u32>(chunks, threads_) - 1;
    State &st = *state_;
    u32 start = tl_pool == this && tl_worker_index > 0
                    ? tl_worker_index - 1
                    : 0;
    // Publish the ticket count before the tickets themselves so a worker
    // that pops early can never drive the counter below zero.
    st.tickets.fetch_add(tickets, std::memory_order_acq_rel);
    for (u32 t = 0; t < tickets; ++t) {
        Worker &w = *workers_[(start + t) % workers_.size()];
        std::lock_guard<std::mutex> lock(w.m);
        w.deq.push_back(batch);
    }
    if (tickets > 0) {
        { std::lock_guard<std::mutex> lock(st.m); }
        st.cv.notify_all();
    }

    drain(*batch);

    if (batch->done.load(std::memory_order_acquire) != chunks) {
        std::unique_lock<std::mutex> lock(batch->m);
        batch->cv.wait(lock, [&] {
            return batch->done.load(std::memory_order_acquire) == chunks;
        });
    }
    rethrowFirst(batch->errors);
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(
            g_thread_override > 0 ? g_thread_override
                                  : defaultThreadCount());
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(u32 threads)
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_thread_override = threads;
    g_pool.reset();  // recreated lazily at the next global() call
}

u32
ThreadPool::globalThreads()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_pool)
        return g_pool->threads();
    return g_thread_override > 0 ? g_thread_override
                                 : defaultThreadCount();
}

void
parallelForRange(u64 begin, u64 end,
                 const std::function<void(u64, u64)> &fn)
{
    if (end <= begin)
        return;
    u64 len = end - begin;
    ThreadPool &pool = ThreadPool::global();
    u32 chunks = static_cast<u32>(
        std::min<u64>(len, pool.threads()));
    // Static chunking: boundaries depend only on (begin, end, chunks),
    // never on execution order.
    pool.run(chunks, [&](u32 c) {
        u64 b = begin + len * c / chunks;
        u64 e = begin + len * (c + 1) / chunks;
        if (b < e)
            fn(b, e);
    });
}

void
parallelFor(u64 begin, u64 end, const std::function<void(u64)> &fn)
{
    parallelForRange(begin, end, [&](u64 b, u64 e) {
        for (u64 i = b; i < e; ++i)
            fn(i);
    });
}

void
parallelInvoke(const std::vector<std::function<void()>> &tasks)
{
    if (tasks.empty())
        return;
    ThreadPool::global().run(static_cast<u32>(tasks.size()),
                             [&](u32 c) { tasks[c](); });
}

}  // namespace crophe
