#include "common/shutdown.h"

#include <csignal>

namespace crophe {

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void
shutdownSignalHandler(int signum)
{
    g_shutdown_requested = 1;
    // Second signal kills the process: restore the default disposition so
    // a harness stuck inside one long unit of work stays interruptible.
    std::signal(signum, SIG_DFL);
}

}  // namespace

void
installShutdownHandler()
{
    std::signal(SIGINT, shutdownSignalHandler);
    std::signal(SIGTERM, shutdownSignalHandler);
}

bool
shutdownRequested()
{
    return g_shutdown_requested != 0;
}

}  // namespace crophe
