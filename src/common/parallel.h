#ifndef CROPHE_COMMON_PARALLEL_H_
#define CROPHE_COMMON_PARALLEL_H_

/**
 * @file
 * Deterministic host-side parallelism (DESIGN.md §7).
 *
 * A process-wide work-stealing thread pool executes fork-join batches:
 * parallelFor / parallelForRange split an index space into statically
 * chunked, disjoint ranges and parallelInvoke runs a fixed set of tasks.
 * Call sites own the determinism contract — every chunk writes only its
 * own slice of the output and reductions happen on the calling thread in
 * index order — so for any thread count (including 1) the results are
 * bit-identical to a serial run. Parallelism changes wall-clock only.
 *
 * The pool size comes from, in priority order: an explicit
 * setGlobalThreads() call (the --threads flag of the benches and
 * examples), the CROPHE_THREADS environment variable, and
 * std::thread::hardware_concurrency(). Nested parallel calls are allowed:
 * a worker forking a sub-batch shares its chunks with the pool and helps
 * drain them, so nesting never deadlocks and never oversubscribes.
 */

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"

namespace crophe {

/**
 * Work-stealing fork-join pool: N-1 worker threads plus the forking
 * thread cooperate on batches of chunks. Workers pop their own deque
 * LIFO and steal FIFO from victims, so a forking thread's chunks stay
 * hot while idle workers drain the oldest work.
 */
class ThreadPool
{
  public:
    /** @param threads total executors (including the forking thread). */
    explicit ThreadPool(u32 threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total executors (worker threads + the forking thread). */
    u32 threads() const { return threads_; }

    /**
     * Execute fn(c) for every chunk id c in [0, chunks). The calling
     * thread participates; returns once all chunks completed. Exceptions
     * are collected per chunk and the lowest-index one is rethrown on the
     * calling thread (remaining chunks still run, keeping side effects
     * deterministic).
     */
    void run(u32 chunks, const std::function<void(u32)> &fn);

    /** The process-wide pool, created on first use. */
    static ThreadPool &global();

    /**
     * Resize the process-wide pool (0 = hardware concurrency). Must not
     * race with in-flight parallel work; intended for flag parsing and
     * tests.
     */
    static void setGlobalThreads(u32 threads);

    /** Thread count the next global() call will use. */
    static u32 globalThreads();

  private:
    struct Batch;
    struct Worker;
    struct State;

    void workerLoop(u32 index);
    /** Drain chunks of @p batch until none are unclaimed. */
    static void drain(Batch &batch);

    u32 threads_;
    std::unique_ptr<State> state_;
    std::vector<Worker *> workers_;
};

/**
 * fn(i) for every i in [begin, end). Chunk boundaries are a pure
 * function of (begin, end, pool size); which thread runs which chunk is
 * not specified. fn must not write state shared across indices.
 */
void parallelFor(u64 begin, u64 end, const std::function<void(u64)> &fn);

/**
 * fn(b, e) over disjoint ranges covering [begin, end) — the chunked
 * variant for loops whose per-index body is too small to dispatch
 * individually (per-coefficient arithmetic). Same contract as
 * parallelFor.
 */
void parallelForRange(u64 begin, u64 end,
                      const std::function<void(u64, u64)> &fn);

/** Run all tasks to completion (fork-join); exceptions as parallelFor. */
void parallelInvoke(const std::vector<std::function<void()>> &tasks);

}  // namespace crophe

#endif  // CROPHE_COMMON_PARALLEL_H_
