#ifndef CROPHE_COMMON_COMMON_FLAGS_H_
#define CROPHE_COMMON_COMMON_FLAGS_H_

/**
 * @file
 * The flag set shared by every CROPHE harness.
 *
 * The example drivers and benchmarks all accept some subset of
 * `--threads/--stats-out/--trace-out/--plan-cache/--kernel/--seed`, and
 * each used to register (and validate) its subset by hand. CommonFlags
 * centralizes the registrations, the defaults (plan-cache directory from
 * $CROPHE_PLAN_CACHE, seed 42) and the post-parse application — notably
 * `--kernel`, which is parsed once into the typed kernels::Backend enum
 * and rejected with a RecoverableError on an unknown spelling instead of
 * being threaded around as a string.
 *
 * Usage:
 *     cli::FlagParser parser("...");
 *     cli::CommonFlags common;
 *     common.registerInto(parser, cli::CommonFlags::kThreads |
 *                                     cli::CommonFlags::kStatsOut);
 *     ...                       // binary-specific flags
 *     if (!parser.parse(argc, argv)) return 1;
 *     common.apply();           // throws RecoverableError on bad --kernel
 */

#include <string>

#include "common/cli.h"
#include "common/types.h"

namespace crophe::cli {

/** Registration + post-parse application of the shared harness flags. */
struct CommonFlags
{
    /** Which of the shared flags a binary actually implements. */
    enum Want : u32
    {
        kThreads = 1u << 0,    ///< --threads N (thread-pool size)
        kStatsOut = 1u << 1,   ///< --stats-out FILE (JSON stats dump)
        kTraceOut = 1u << 2,   ///< --trace-out FILE (event trace)
        kPlanCache = 1u << 3,  ///< --plan-cache DIR (schedule cache)
        kKernel = 1u << 4,     ///< --kernel B (scalar|avx2|avx512|auto)
        kSeed = 1u << 5,       ///< --seed N (workload RNG seed)
    };

    std::string statsOut;      ///< empty: no stats dump
    std::string traceOut;      ///< empty: no trace
    std::string planCacheDir;  ///< defaulted from $CROPHE_PLAN_CACHE
    std::string kernelName;    ///< raw spelling; typed by apply()
    u32 seed = 42;

    /** Register the flags selected by @p want (a Want bitmask). */
    void registerInto(FlagParser &parser, u32 want);

    /**
     * Apply parsed values that carry process-wide effects. Today that is
     * `--kernel`: the spelling is parsed into kernels::Backend (throwing
     * RecoverableError on an unknown name) and the backend is selected,
     * falling back with a one-time warning when the CPU lacks it.
     */
    void apply() const;
};

}  // namespace crophe::cli

#endif  // CROPHE_COMMON_COMMON_FLAGS_H_
