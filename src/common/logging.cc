#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace crophe {

namespace {
bool g_verbose = true;
}  // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

}  // namespace crophe
