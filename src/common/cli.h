#ifndef CROPHE_COMMON_CLI_H_
#define CROPHE_COMMON_CLI_H_

/**
 * @file
 * Minimal shared command-line flag parser for the benchmark and example
 * harnesses. Replaces the per-binary strcmp loops: flags are registered
 * with a destination and a help line, usage text is generated from the
 * registrations, and unknown flags (or flags missing their value) print
 * the usage and fail parsing instead of being silently ignored.
 *
 * Supported shapes: `--flag VALUE` and `--flag=VALUE` (string /
 * numeric) and presence-only `--flag` (bool, which rejects `=`).
 * Parsing is strict and order-independent.
 */

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace crophe::cli {

/** Registration-driven argv parser (see file doc). */
class FlagParser
{
  public:
    /** @param summary one-line description printed above the flag list. */
    explicit FlagParser(std::string summary = "");

    /** `--name VALUE`: any string. @{ */
    void addString(const std::string &name, std::string *out,
                   const std::string &help);
    /** `--name N`: base-10 unsigned. Parsing fails on non-numeric input. */
    void addUint(const std::string &name, u32 *out, const std::string &help);
    /** `--name X`: floating point. Parsing fails on non-numeric input. */
    void addDouble(const std::string &name, double *out,
                   const std::string &help);
    /** `--name` (no value): sets *out to true. */
    void addBool(const std::string &name, bool *out, const std::string &help);
    /** @} */

    /**
     * Convenience: register the conventional `--threads N` flag, which on
     * parse() sizes the process-wide thread pool (ThreadPool). Results are
     * bit-identical for any N (DESIGN.md §7); only wall-clock changes.
     */
    void addThreadsFlag();

    /**
     * Parse argv[1..argc). On an unknown flag, a missing value, or a
     * malformed number, prints an error plus the usage to stderr and
     * returns false — callers should exit non-zero.
     */
    bool parse(int argc, char **argv);

    /** Auto-generated usage text (also printed on parse failure). */
    void printUsage(const char *argv0, std::ostream &os) const;

  private:
    enum class Kind : u8
    {
        String,
        Uint,
        Double,
        Bool,
    };
    struct Flag
    {
        std::string name;
        Kind kind;
        void *out;
        std::string help;
    };

    bool fail(const char *argv0, const std::string &message) const;

    std::string summary_;
    std::vector<Flag> flags_;
    bool wantThreads_ = false;
    u32 threads_ = 0;
};

/**
 * Domain checks for parsed flag values (DESIGN.md §9 error contract):
 * each throws crophe::RecoverableError naming the offending flag, so
 * harnesses can reject nonsensical inputs (`--arrival-rate 0`,
 * `--tenants 0`) at startup with a typed error plus their usage text
 * instead of letting the value reach the dispatcher. @{
 */
void requirePositive(const std::string &flag, double value);
void requirePositive(const std::string &flag, u32 value);
void requireNonNegative(const std::string &flag, double value);
/** @} */

}  // namespace crophe::cli

#endif  // CROPHE_COMMON_CLI_H_
