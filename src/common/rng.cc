#include "common/rng.h"

#include <cmath>

namespace crophe {

Rng::Rng(u64 seed)
{
    // SplitMix64 expansion of the seed into the xoshiro state.
    u64 x = seed;
    for (auto &s : s_) {
        x += 0x9e3779b97f4a7c15ULL;
        u64 z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        s = z ^ (z >> 31);
    }
}

u64
Rng::next()
{
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Rng::nextBounded(u64 bound)
{
    if (bound == 0)
        return 0;
    // Lemire's multiply-shift bounded reduction.
    u128 m = static_cast<u128>(next()) * static_cast<u128>(bound);
    return static_cast<u64>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

int
Rng::nextTernary()
{
    return static_cast<int>(nextBounded(3)) - 1;
}

i64
Rng::nextNoise()
{
    // Sum of 12 uniforms in [0,1) minus 6 approximates N(0,1); scale to
    // sigma = 3.2 and round to the nearest integer.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += nextDouble();
    return static_cast<i64>(std::llround((acc - 6.0) * 3.2));
}

}  // namespace crophe
