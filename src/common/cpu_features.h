#ifndef CROPHE_COMMON_CPU_FEATURES_H_
#define CROPHE_COMMON_CPU_FEATURES_H_

/**
 * @file
 * Runtime CPU feature detection for the kernel dispatcher.
 *
 * The vectorized FHE kernels (fhe/kernels, DESIGN.md §10) are compiled
 * per-ISA and selected at runtime, so a single portable binary runs on
 * any x86-64 machine and automatically uses the widest vector unit the
 * host offers. Detection goes through the compiler's cpuid builtins,
 * which also account for OS-level state saving (XSAVE), so a kernel is
 * only reported available when it can actually execute.
 */

namespace crophe {

/** Host vector-ISA capabilities, queried once and cached. */
struct CpuFeatures
{
    bool avx2 = false;    ///< AVX2 (256-bit integer ops)
    bool avx512 = false;  ///< AVX-512 F+DQ (512-bit ops + 64-bit mullo)
};

/** The host's capabilities; the cpuid query runs once per process. */
const CpuFeatures &cpuFeatures();

}  // namespace crophe

#endif  // CROPHE_COMMON_CPU_FEATURES_H_
