#ifndef CROPHE_COMMON_LOGGING_H_
#define CROPHE_COMMON_LOGGING_H_

/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic()  — an internal invariant was violated (a CROPHE bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 *
 * High-frequency degradation sites (a DRAM retry inside a fault sweep can
 * fire thousands of times) use the rate-limited variants: WARN_ONCE emits
 * only the first occurrence per call site, WARN_EVERY_N the 1st, N+1th,
 * 2N+1th... occurrence, suffixed with the running count so the log still
 * shows the event volume.
 */

#include <atomic>
#include <sstream>
#include <string>

namespace crophe {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benchmarks silence it). */
void setVerbose(bool verbose);
bool verbose();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

}  // namespace detail

}  // namespace crophe

#define CROPHE_PANIC(...) \
    ::crophe::panicImpl(__FILE__, __LINE__, ::crophe::detail::format(__VA_ARGS__))

#define CROPHE_FATAL(...) \
    ::crophe::fatalImpl(__FILE__, __LINE__, ::crophe::detail::format(__VA_ARGS__))

#define CROPHE_WARN(...) \
    ::crophe::warnImpl(::crophe::detail::format(__VA_ARGS__))

/** Warn only on the first execution of this call site (thread-safe). */
#define CROPHE_WARN_ONCE(...)                                             \
    do {                                                                  \
        static std::atomic<bool> crophe_warned_{false};                   \
        if (!crophe_warned_.exchange(true, std::memory_order_relaxed))    \
            ::crophe::warnImpl(::crophe::detail::format(__VA_ARGS__));    \
    } while (false)

/**
 * Warn on the 1st, n+1th, 2n+1th... execution of this call site, with the
 * occurrence count appended — fault sweeps injecting thousands of errors
 * log a handful of lines instead of flooding stderr.
 */
#define CROPHE_WARN_EVERY_N(n, ...)                                       \
    do {                                                                  \
        static std::atomic<unsigned long long> crophe_warn_count_{0};     \
        unsigned long long crophe_seen_ = crophe_warn_count_.fetch_add(   \
                                              1,                          \
                                              std::memory_order_relaxed) +\
                                          1;                              \
        if ((crophe_seen_ - 1) % static_cast<unsigned long long>(n) == 0) \
            ::crophe::warnImpl(::crophe::detail::format(                  \
                __VA_ARGS__, " (occurrence ", crophe_seen_, ")"));        \
    } while (false)

#define CROPHE_INFORM(...) \
    ::crophe::informImpl(::crophe::detail::format(__VA_ARGS__))

/** Internal invariant check; active in all build types. */
#define CROPHE_ASSERT(cond, ...)                                        \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::crophe::panicImpl(__FILE__, __LINE__,                     \
                ::crophe::detail::format("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__));              \
        }                                                               \
    } while (false)

#endif  // CROPHE_COMMON_LOGGING_H_
