#ifndef CROPHE_COMMON_LOGGING_H_
#define CROPHE_COMMON_LOGGING_H_

/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic()  — an internal invariant was violated (a CROPHE bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 */

#include <sstream>
#include <string>

namespace crophe {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benchmarks silence it). */
void setVerbose(bool verbose);
bool verbose();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

}  // namespace detail

}  // namespace crophe

#define CROPHE_PANIC(...) \
    ::crophe::panicImpl(__FILE__, __LINE__, ::crophe::detail::format(__VA_ARGS__))

#define CROPHE_FATAL(...) \
    ::crophe::fatalImpl(__FILE__, __LINE__, ::crophe::detail::format(__VA_ARGS__))

#define CROPHE_WARN(...) \
    ::crophe::warnImpl(::crophe::detail::format(__VA_ARGS__))

#define CROPHE_INFORM(...) \
    ::crophe::informImpl(::crophe::detail::format(__VA_ARGS__))

/** Internal invariant check; active in all build types. */
#define CROPHE_ASSERT(cond, ...)                                        \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::crophe::panicImpl(__FILE__, __LINE__,                     \
                ::crophe::detail::format("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__));              \
        }                                                               \
    } while (false)

#endif  // CROPHE_COMMON_LOGGING_H_
