#ifndef CROPHE_COMMON_ARENA_H_
#define CROPHE_COMMON_ARENA_H_

/**
 * @file
 * Thread-local scratch arena (DESIGN.md §10).
 *
 * Hot FHE paths (BConv tiles, ModDown, key-switch) need short-lived
 * scratch buffers sized by runtime parameters. Allocating them with
 * malloc per call serializes threads on the allocator and fragments the
 * heap; the arena instead hands out 64-byte-aligned bump allocations
 * from per-thread blocks that are reused forever.
 *
 * Usage:
 *     ScratchArena::Scope scope;                    // marks the arena
 *     u64 *buf = ScratchArena::local().alloc<u64>(n);
 *     ...                                           // use buf
 *     // scope destructor rewinds the arena; buf is dead
 *
 * Determinism contract: the arena affects only *where* scratch lives,
 * never values — every allocation is scoped, nothing escapes a Scope,
 * and blocks are thread-private so results cannot depend on thread
 * count or allocation order.
 */

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/types.h"

namespace crophe {

/** Per-thread bump allocator with scope-based rewind. */
class ScratchArena
{
  public:
    ScratchArena() = default;
    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** The calling thread's arena (created on first use). */
    static ScratchArena &local();

    /**
     * High-water mark of usedBytes() across all thread arenas since
     * process start (relaxed fetch-max; telemetry only — never consulted
     * by any allocation decision).
     */
    static std::size_t globalPeakBytes();

    /** Scope rewinds executed across all threads since process start. */
    static u64 globalRewinds();

    /**
     * RAII marker: records the arena position on construction and
     * rewinds to it on destruction, releasing every allocation made in
     * between. Scopes nest.
     */
    class Scope
    {
      public:
        Scope() : Scope(local()) {}
        explicit Scope(ScratchArena &arena)
            : arena_(arena), block_(arena.cur_), offset_(arena.curOffset())
        {
        }
        ~Scope() { arena_.rewind(block_, offset_); }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        ScratchArena &arena_;
        std::size_t block_;
        std::size_t offset_;
    };

    /** A 64-byte-aligned allocation of @p count elements (not zeroed). */
    template <typename T>
    T *
    alloc(std::size_t count)
    {
        static_assert(alignof(T) <= kCacheLineBytes);
        return static_cast<T *>(allocBytes(count * sizeof(T)));
    }

    /** A 64-byte-aligned allocation of @p bytes bytes (not zeroed). */
    void *allocBytes(std::size_t bytes);

    /** Total bytes currently reserved across blocks (for tests). */
    std::size_t capacityBytes() const;

    /** Bytes currently handed out (for tests). */
    std::size_t usedBytes() const;

  private:
    struct Block
    {
        AlignedVec<unsigned char> buf;
        std::size_t offset = 0;
    };

    std::size_t curOffset() const;
    void rewind(std::size_t block, std::size_t offset);

    std::vector<std::unique_ptr<Block>> blocks_;
    std::size_t cur_ = 0;
};

}  // namespace crophe

#endif  // CROPHE_COMMON_ARENA_H_
