#ifndef CROPHE_COMMON_TYPES_H_
#define CROPHE_COMMON_TYPES_H_

/**
 * @file
 * Fixed-width integer aliases used throughout CROPHE.
 */

#include <cstddef>
#include <cstdint>

namespace crophe {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i64 = std::int64_t;
using i128 = __int128;

/** Simulation time in accelerator clock cycles. */
using Cycle = std::uint64_t;

}  // namespace crophe

#endif  // CROPHE_COMMON_TYPES_H_
