#include "common/arena.h"

#include <algorithm>

#include "common/logging.h"

namespace crophe {

namespace {

/** First block size; later blocks double until kMaxBlockBytes. */
constexpr std::size_t kMinBlockBytes = 1u << 20;
constexpr std::size_t kMaxBlockBytes = 64u << 20;

std::size_t
roundUpAligned(std::size_t bytes)
{
    return (bytes + kCacheLineBytes - 1) & ~(kCacheLineBytes - 1);
}

/** Process-wide telemetry (relaxed: counts need no ordering). */
std::atomic<std::size_t> g_peak_bytes{0};
std::atomic<u64> g_rewinds{0};

void
notePeak(std::size_t used)
{
    std::size_t seen = g_peak_bytes.load(std::memory_order_relaxed);
    while (used > seen &&
           !g_peak_bytes.compare_exchange_weak(seen, used,
                                               std::memory_order_relaxed)) {
    }
}

}  // namespace

ScratchArena &
ScratchArena::local()
{
    thread_local ScratchArena arena;
    return arena;
}

std::size_t
ScratchArena::globalPeakBytes()
{
    return g_peak_bytes.load(std::memory_order_relaxed);
}

u64
ScratchArena::globalRewinds()
{
    return g_rewinds.load(std::memory_order_relaxed);
}

void *
ScratchArena::allocBytes(std::size_t bytes)
{
    bytes = roundUpAligned(std::max<std::size_t>(bytes, 1));
    // Advance through existing blocks looking for room; each visited
    // block's offset is left as-is so rewind() can restore it.
    while (cur_ < blocks_.size()) {
        Block &b = *blocks_[cur_];
        if (b.buf.size() - b.offset >= bytes) {
            void *p = b.buf.data() + b.offset;
            b.offset += bytes;
            notePeak(usedBytes());
            return p;
        }
        ++cur_;
    }
    std::size_t want = kMinBlockBytes;
    if (!blocks_.empty())
        want = std::min(blocks_.back()->buf.size() * 2, kMaxBlockBytes);
    want = std::max(want, bytes);
    auto block = std::make_unique<Block>();
    block->buf.assign(want);
    block->offset = bytes;
    blocks_.push_back(std::move(block));
    cur_ = blocks_.size() - 1;
    notePeak(usedBytes());
    return blocks_.back()->buf.data();
}

std::size_t
ScratchArena::capacityBytes() const
{
    std::size_t total = 0;
    for (const auto &b : blocks_)
        total += b->buf.size();
    return total;
}

std::size_t
ScratchArena::usedBytes() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < blocks_.size() && i <= cur_; ++i)
        total += blocks_[i]->offset;
    return total;
}

std::size_t
ScratchArena::curOffset() const
{
    return cur_ < blocks_.size() ? blocks_[cur_]->offset : 0;
}

void
ScratchArena::rewind(std::size_t block, std::size_t offset)
{
    CROPHE_ASSERT(block <= cur_, "scope rewind past live allocations");
    g_rewinds.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = block; i < blocks_.size(); ++i)
        blocks_[i]->offset = (i == block) ? offset : 0;
    cur_ = block;
    if (cur_ >= blocks_.size())
        cur_ = blocks_.empty() ? 0 : blocks_.size() - 1;
}

}  // namespace crophe
