#include "common/common_flags.h"

#include "fhe/kernels/kernels.h"
#include "plan/plan_cache.h"

namespace crophe::cli {

void
CommonFlags::registerInto(FlagParser &parser, u32 want)
{
    if (want & kThreads)
        parser.addThreadsFlag();
    if (want & kStatsOut)
        parser.addString("--stats-out", &statsOut,
                         "dump the telemetry registry as JSON to FILE");
    if (want & kTraceOut)
        parser.addString("--trace-out", &traceOut,
                         "write the event trace as JSON to FILE");
    if (want & kPlanCache) {
        planCacheDir = plan::PlanCache::dirFromEnv();
        parser.addString("--plan-cache", &planCacheDir,
                         "schedule-cache directory "
                         "(default $CROPHE_PLAN_CACHE)");
    }
    if (want & kKernel)
        parser.addString("--kernel", &kernelName,
                         "kernel backend: scalar|avx2|avx512|auto "
                         "(default $CROPHE_KERNEL or widest available)");
    if (want & kSeed)
        parser.addUint("--seed", &seed, "workload RNG seed");
}

void
CommonFlags::apply() const
{
    if (!kernelName.empty())
        fhe::kernels::requestBackend(fhe::kernels::parseBackend(kernelName));
}

}  // namespace crophe::cli
