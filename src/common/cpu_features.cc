#include "common/cpu_features.h"

namespace crophe {

namespace {

CpuFeatures
detect()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    // The AVX-512 kernels use foundation ops plus the DQ 64-bit multiply
    // and conversions; both must be present.
    f.avx512 = __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512dq") != 0;
#endif
    return f;
}

}  // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = detect();
    return features;
}

}  // namespace crophe
