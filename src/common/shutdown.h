#ifndef CROPHE_COMMON_SHUTDOWN_H_
#define CROPHE_COMMON_SHUTDOWN_H_

/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for the long-running harnesses.
 *
 * installShutdownHandler() arms an async-signal-safe handler that only
 * sets a flag; harness loops poll shutdownRequested() between units of
 * work and, when set, flush whatever partial --stats-out/--trace-out
 * output they have (valid JSON, marked truncated) before exiting
 * non-zero. A second signal restores the default disposition, so a stuck
 * run can still be killed with a second Ctrl-C.
 */

namespace crophe {

/**
 * Install the SIGINT/SIGTERM flag-setting handler (idempotent). The first
 * signal requests a cooperative shutdown; the second falls through to the
 * default handler and terminates immediately.
 */
void installShutdownHandler();

/** True once a SIGINT/SIGTERM arrived after installShutdownHandler(). */
bool shutdownRequested();

/**
 * Conventional exit code for a signal-truncated run: non-zero and
 * distinct from ordinary failures (128 + SIGINT, the shell convention).
 */
constexpr int kShutdownExitCode = 130;

}  // namespace crophe

#endif  // CROPHE_COMMON_SHUTDOWN_H_
