#ifndef CROPHE_COMMON_RNG_H_
#define CROPHE_COMMON_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * All randomness in CROPHE (key generation, encryption noise, synthetic
 * workload data) flows through this generator so that tests, examples and
 * benchmarks are reproducible bit-for-bit across runs and platforms.
 */

#include <cstdint>

#include "common/types.h"

namespace crophe {

/** xoshiro256** by Blackman & Vigna; small, fast, and high quality. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

    /** Uniform 64-bit value. */
    u64 next();

    /** Uniform value in [0, bound) via rejection-free Lemire reduction. */
    u64 nextBounded(u64 bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform value in {-1, 0, 1} (ternary secret distribution). */
    int nextTernary();

    /**
     * Sample from a centered discrete Gaussian approximation
     * (Irwin-Hall sum of uniforms), stddev ~3.2 as standard in RLWE.
     */
    i64 nextNoise();

  private:
    u64 rotl(u64 x, int k) const { return (x << k) | (x >> (64 - k)); }

    u64 s_[4];
};

}  // namespace crophe

#endif  // CROPHE_COMMON_RNG_H_
