#ifndef CROPHE_COMMON_ALIGNED_H_
#define CROPHE_COMMON_ALIGNED_H_

/**
 * @file
 * Cache-line-aligned flat buffer.
 *
 * The vectorized FHE kernels (DESIGN.md §10) operate on contiguous
 * 64-byte-aligned limb slabs so that AVX2/AVX-512 loads never split a
 * cache line and hardware prefetch sees a single linear stream.
 * AlignedVec is the minimal owning container for such data: fixed-size
 * after assign(), zero-initialized, copyable (RnsPoly values are passed
 * around by copy throughout the CKKS library).
 */

#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/types.h"

namespace crophe {

/** Allocation alignment for kernel-visible data, in bytes. */
inline constexpr std::size_t kCacheLineBytes = 64;

/** Fixed-size, 64-byte-aligned, zero-initialized, copyable buffer. */
template <typename T>
class AlignedVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedVec holds plain data only");

  public:
    AlignedVec() = default;

    explicit AlignedVec(std::size_t n) { assign(n); }

    AlignedVec(const AlignedVec &other)
    {
        assign(other.size_);
        if (size_ != 0)
            std::memcpy(p_, other.p_, size_ * sizeof(T));
    }

    AlignedVec(AlignedVec &&other) noexcept
        : p_(std::exchange(other.p_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {
    }

    AlignedVec &
    operator=(const AlignedVec &other)
    {
        if (this != &other) {
            assign(other.size_);
            if (size_ != 0)
                std::memcpy(p_, other.p_, size_ * sizeof(T));
        }
        return *this;
    }

    AlignedVec &
    operator=(AlignedVec &&other) noexcept
    {
        if (this != &other) {
            release();
            p_ = std::exchange(other.p_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~AlignedVec() { release(); }

    /** Reallocate to @p n elements, all zero. */
    void
    assign(std::size_t n)
    {
        release();
        if (n == 0)
            return;
        p_ = static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{kCacheLineBytes}));
        std::memset(p_, 0, n * sizeof(T));
        size_ = n;
    }

    T *data() { return p_; }
    const T *data() const { return p_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return p_[i]; }
    const T &operator[](std::size_t i) const { return p_[i]; }

    T *begin() { return p_; }
    T *end() { return p_ + size_; }
    const T *begin() const { return p_; }
    const T *end() const { return p_ + size_; }

  private:
    void
    release()
    {
        if (p_ != nullptr)
            ::operator delete(p_, std::align_val_t{kCacheLineBytes});
        p_ = nullptr;
        size_ = 0;
    }

    T *p_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace crophe

#endif  // CROPHE_COMMON_ALIGNED_H_
