#include "common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/error.h"
#include "common/logging.h"
#include "common/parallel.h"

namespace crophe::cli {

FlagParser::FlagParser(std::string summary) : summary_(std::move(summary)) {}

void
FlagParser::addString(const std::string &name, std::string *out,
                      const std::string &help)
{
    CROPHE_ASSERT(out != nullptr, "flag destination required");
    flags_.push_back({name, Kind::String, out, help});
}

void
FlagParser::addUint(const std::string &name, u32 *out,
                    const std::string &help)
{
    CROPHE_ASSERT(out != nullptr, "flag destination required");
    flags_.push_back({name, Kind::Uint, out, help});
}

void
FlagParser::addDouble(const std::string &name, double *out,
                      const std::string &help)
{
    CROPHE_ASSERT(out != nullptr, "flag destination required");
    flags_.push_back({name, Kind::Double, out, help});
}

void
FlagParser::addBool(const std::string &name, bool *out,
                    const std::string &help)
{
    CROPHE_ASSERT(out != nullptr, "flag destination required");
    flags_.push_back({name, Kind::Bool, out, help});
}

void
FlagParser::addThreadsFlag()
{
    wantThreads_ = true;
    addUint("--threads", &threads_,
            "size the process-wide thread pool (0 = hardware)");
}

bool
FlagParser::fail(const char *argv0, const std::string &message) const
{
    std::cerr << argv0 << ": " << message << "\n";
    printUsage(argv0, std::cerr);
    return false;
}

bool
FlagParser::parse(int argc, char **argv)
{
    threads_ = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // `--flag=value` splits at the first '='; `--flag value` is the
        // space-separated equivalent.
        bool inlineValue = false;
        std::string value;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            inlineValue = true;
        }
        const Flag *flag = nullptr;
        for (const auto &f : flags_)
            if (f.name == arg)
                flag = &f;
        if (flag == nullptr)
            return fail(argv[0], "unknown flag: " + arg);

        if (flag->kind == Kind::Bool) {
            if (inlineValue)
                return fail(argv[0], arg + " takes no value");
            *static_cast<bool *>(flag->out) = true;
            continue;
        }
        if (!inlineValue) {
            if (i + 1 >= argc)
                return fail(argv[0], arg + " requires a value");
            value = argv[++i];
        }
        if (flag->kind == Kind::String) {
            *static_cast<std::string *>(flag->out) = value;
            continue;
        }
        char *end = nullptr;
        if (flag->kind == Kind::Double) {
            double parsed = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                return fail(argv[0], arg + " expects a number, got \"" +
                                         value + "\"");
            *static_cast<double *>(flag->out) = parsed;
            continue;
        }
        unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            return fail(argv[0], arg + " expects an unsigned integer, got \"" +
                                     value + "\"");
        *static_cast<u32 *>(flag->out) = static_cast<u32>(parsed);
    }
    if (wantThreads_ && threads_ > 0)
        ThreadPool::setGlobalThreads(threads_);
    return true;
}

void
FlagParser::printUsage(const char *argv0, std::ostream &os) const
{
    os << "usage: " << argv0;
    for (const auto &f : flags_) {
        os << " [" << f.name;
        if (f.kind == Kind::String)
            os << " FILE";
        else if (f.kind == Kind::Uint)
            os << " N";
        else if (f.kind == Kind::Double)
            os << " X";
        os << "]";
    }
    os << "\n";
    if (!summary_.empty())
        os << "  " << summary_ << "\n";
    for (const auto &f : flags_) {
        os << "  ";
        std::string head = f.name;
        if (f.kind == Kind::String)
            head += " FILE";
        else if (f.kind == Kind::Uint)
            head += " N";
        else if (f.kind == Kind::Double)
            head += " X";
        os << head;
        for (std::size_t pad = head.size(); pad < 22; ++pad)
            os << ' ';
        os << f.help << "\n";
    }
}

void
requirePositive(const std::string &flag, double value)
{
    if (!(value > 0.0))
        throw RecoverableError(flag + " must be positive, got " +
                               std::to_string(value));
}

void
requirePositive(const std::string &flag, u32 value)
{
    if (value == 0)
        throw RecoverableError(flag + " must be at least 1");
}

void
requireNonNegative(const std::string &flag, double value)
{
    if (!(value >= 0.0))
        throw RecoverableError(flag + " cannot be negative, got " +
                               std::to_string(value));
}

}  // namespace crophe::cli
