#ifndef CROPHE_COMMON_ERROR_H_
#define CROPHE_COMMON_ERROR_H_

/**
 * @file
 * Recoverable error type for user-facing entry points.
 *
 * The logging layer draws a hard line: panic() is an internal invariant
 * violation (a CROPHE bug, aborts), fatal() an impossible request (exits).
 * Library entry points that validate *user input* — config names, fault
 * plans, degraded hardware configurations — must not tear the process
 * down: they throw RecoverableError so an embedding harness (or the CLI
 * main()) can report the problem and keep serving other requests.
 */

#include <stdexcept>
#include <string>

namespace crophe {

/**
 * A request that cannot be satisfied as posed (invalid user input, an
 * infeasibly degraded configuration). Catch at the harness boundary;
 * internal invariant violations still panic().
 */
class RecoverableError : public std::runtime_error
{
  public:
    explicit RecoverableError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

}  // namespace crophe

#endif  // CROPHE_COMMON_ERROR_H_
