#ifndef CROPHE_COMMON_MATH_UTIL_H_
#define CROPHE_COMMON_MATH_UTIL_H_

/**
 * @file
 * Small integer math helpers shared across modules.
 */

#include <bit>

#include "common/logging.h"
#include "common/types.h"

namespace crophe {

/** True iff @p x is a power of two (0 is not). */
constexpr bool
isPow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); requires x > 0. */
constexpr u32
log2Floor(u64 x)
{
    return 63 - static_cast<u32>(std::countl_zero(x));
}

/** log2 of a power of two. */
inline u32
log2Exact(u64 x)
{
    CROPHE_ASSERT(isPow2(x), "log2Exact of non-power-of-two ", x);
    return log2Floor(x);
}

/** ceil(a / b) for b > 0. */
constexpr u64
ceilDiv(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
constexpr u64
roundUp(u64 a, u64 b)
{
    return ceilDiv(a, b) * b;
}

/** Bit-reverse the low @p bits bits of @p x. */
constexpr u64
bitReverse(u64 x, u32 bits)
{
    u64 r = 0;
    for (u32 i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

}  // namespace crophe

#endif  // CROPHE_COMMON_MATH_UTIL_H_
