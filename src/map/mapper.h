#ifndef CROPHE_MAP_MAPPER_H_
#define CROPHE_MAP_MAPPER_H_

/**
 * @file
 * Operator placement onto the 2D PE array (Section IV-B).
 *
 * Consecutive operators are placed column-major from left to right so
 * forwarded data moves short distances; operators downstream of a
 * transpose are placed right-to-left starting at the transpose unit's
 * side, and multiple transposes split the array into horizontal bands.
 */

#include <vector>

#include "hw/config.h"
#include "sched/group.h"

namespace crophe::map {

/** PE rectangle assigned to one operator. */
struct PePlacement
{
    graph::OpId op = graph::kNoOp;
    std::vector<u32> peIds;  ///< pe id = y * meshX + x
    double centroidX = 0.0;
    double centroidY = 0.0;
};

/** Placement of one spatial group. */
struct GroupMapping
{
    std::vector<PePlacement> placements;
    /** Manhattan hop count per internal edge (parallel to
     *  SpatialGroup::internalEdges). */
    std::vector<u32> edgeHops;
    /** Average hops from the array edge (buffer crossbar) to each op. */
    double avgBufferHops = 0.0;
};

/** Place one analyzed spatial group on the array of @p cfg. */
GroupMapping mapGroup(const sched::SpatialGroup &group,
                      const graph::Graph &g, const hw::HwConfig &cfg);

}  // namespace crophe::map

#endif  // CROPHE_MAP_MAPPER_H_
