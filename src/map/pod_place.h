#ifndef CROPHE_MAP_POD_PLACE_H_
#define CROPHE_MAP_POD_PLACE_H_

/**
 * @file
 * Stage-to-chip placement for multi-accelerator pods (DESIGN.md §12).
 * The partitioner emits a logical pipeline of stages; this maps each
 * stage onto a physical chip of the ring so that the hop-weighted
 * inter-stage traffic is small. Placement starts from the identity
 * (stage i on the i-th alive chip — optimal when traffic is purely
 * between adjacent pipeline stages) and runs a deterministic
 * adjacent-swap local search for graphs whose cut edges skip stages.
 */

#include <vector>

#include "common/types.h"

namespace crophe::map {

/** Aggregated traffic between two pipeline stages. */
struct StageEdge
{
    u32 from = 0;
    u32 to = 0;
    u64 words = 0;
};

/**
 * Place @p stages pipeline stages onto @p aliveChips ring positions
 * (stages == aliveChips.size() required; ring distance is computed over
 * the physical ring of @p ringChips chips). Returns the physical chip id
 * per stage. Deterministic: fixed scan order, first-improvement swaps,
 * bounded passes.
 */
std::vector<u32> placeStagesOnRing(u32 stages,
                                   const std::vector<u32> &aliveChips,
                                   u32 ringChips,
                                   const std::vector<StageEdge> &edges);

}  // namespace crophe::map

#endif  // CROPHE_MAP_POD_PLACE_H_
