#include "map/pod_place.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/interconnect.h"

namespace crophe::map {

namespace {

u64
placementCost(const std::vector<u32> &chipOf,
              const std::vector<StageEdge> &edges, u32 ringChips)
{
    u64 cost = 0;
    for (const StageEdge &e : edges)
        cost += e.words * sim::Interconnect::ringHops(chipOf[e.from],
                                                      chipOf[e.to],
                                                      ringChips);
    return cost;
}

}  // namespace

std::vector<u32>
placeStagesOnRing(u32 stages, const std::vector<u32> &aliveChips,
                  u32 ringChips, const std::vector<StageEdge> &edges)
{
    CROPHE_ASSERT(stages == aliveChips.size(),
                  "one stage per alive chip (", stages, " stages, ",
                  aliveChips.size(), " chips)");
    std::vector<u32> chipOf(aliveChips.begin(), aliveChips.end());
    if (stages <= 2 || edges.empty())
        return chipOf;

    // Adjacent-swap first-improvement descent. The swap neighborhood is
    // scanned in a fixed order and a pass with no improvement ends the
    // search, so the result depends only on the inputs.
    u64 cost = placementCost(chipOf, edges, ringChips);
    for (u32 pass = 0; pass < stages; ++pass) {
        bool improved = false;
        for (u32 s = 0; s + 1 < stages; ++s) {
            std::swap(chipOf[s], chipOf[s + 1]);
            const u64 candidate = placementCost(chipOf, edges, ringChips);
            if (candidate < cost) {
                cost = candidate;
                improved = true;
            } else {
                std::swap(chipOf[s], chipOf[s + 1]);
            }
        }
        if (!improved)
            break;
    }
    return chipOf;
}

}  // namespace crophe::map
