#include "map/trace.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "sched/loopnest.h"

namespace crophe::map {

using graph::Op;
using graph::OpId;

GroupTrace
buildTrace(const sched::SpatialGroup &group, const GroupMapping &mapping,
           const graph::Graph &g, const hw::HwConfig &cfg)
{
    GroupTrace trace;
    std::map<OpId, u32> index_of;
    std::map<OpId, u32> pes_of;
    for (const auto &a : group.allocs)
        pes_of[a.op] = a.pes;

    // Raw per-op demand estimates used to apportion the group totals.
    std::vector<double> sram_w(group.allocs.size(), 0.0);
    std::vector<double> dram_w(group.allocs.size(), 0.0);
    double sram_sum = 0.0, dram_sum = 0.0;

    for (u32 i = 0; i < group.allocs.size(); ++i) {
        const auto &alloc = group.allocs[i];
        const Op &op = g.op(alloc.op);
        index_of[alloc.op] = i;

        TraceOp top;
        top.op = alloc.op;
        top.chunks = alloc.chunks;

        double mults = cfg.homogeneous
                           ? static_cast<double>(pes_of[alloc.op]) *
                                 cfg.lanes
                           : static_cast<double>(cfg.multsPerCycle()) / 4.0;
        double compute = static_cast<double>(op.flops) /
                         std::max(1.0, mults);
        double stream = static_cast<double>(op.outputWords) /
                        std::max(1.0, static_cast<double>(
                                          pes_of[alloc.op]) * cfg.lanes);
        top.computePerChunk = std::max(compute, stream) /
                              static_cast<double>(top.chunks);
        top.bufferHops = std::max<u32>(
            1, static_cast<u32>(mapping.avgBufferHops));
        trace.ops.push_back(std::move(top));

        sram_w[i] = static_cast<double>(op.inputWords + op.outputWords);
        dram_w[i] = static_cast<double>(op.auxWords) +
                    (op.kind == graph::OpKind::Input ? op.outputWords : 0) +
                    (op.kind == graph::OpKind::Output ? op.inputWords : 0);
        sram_sum += sram_w[i];
        dram_sum += dram_w[i];
    }

    // Apportion the analyzed group totals so the trace is consistent with
    // the analytical model.
    for (u32 i = 0; i < trace.ops.size(); ++i) {
        auto &top = trace.ops[i];
        double sram_share =
            sram_sum > 0 ? sram_w[i] / sram_sum : 1.0 / trace.ops.size();
        double dram_share =
            dram_sum > 0 ? dram_w[i] / dram_sum : 1.0 / trace.ops.size();
        top.sramWordsPerChunk = static_cast<u64>(
            sram_share * group.sramWords / top.chunks);
        top.dramWordsPerChunk = static_cast<u64>(
            dram_share * group.dramWords / top.chunks);
    }

    // Edge dependencies and NoC volume assigned to the consumer.
    for (u32 e = 0; e < group.internalEdges.size(); ++e) {
        const auto &edge = group.internalEdges[e];
        auto pit = index_of.find(edge.from);
        auto cit = index_of.find(edge.to);
        CROPHE_ASSERT(pit != index_of.end() && cit != index_of.end(),
                      "edge endpoints missing from trace");
        TraceDep dep;
        dep.producerIndex = pit->second;
        dep.pipelined = edge.mode == sched::EdgeMode::Pipelined;
        dep.hops = e < mapping.edgeHops.size() ? mapping.edgeHops[e] : 1;
        auto &consumer = trace.ops[cit->second];
        consumer.deps.push_back(dep);
        consumer.nocWordsPerChunk +=
            edge.volumeWords / std::max<u64>(1, consumer.chunks);
    }
    return trace;
}

}  // namespace crophe::map
