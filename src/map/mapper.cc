#include "map/mapper.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"

namespace crophe::map {

using graph::OpId;
using graph::OpKind;

GroupMapping
mapGroup(const sched::SpatialGroup &group, const graph::Graph &g,
         const hw::HwConfig &cfg)
{
    GroupMapping mapping;
    CROPHE_ASSERT(cfg.numPes > 0, "mapper needs at least one live PE");

    // A degraded array (DESIGN.md §9) can leave a group sized for more
    // PEs than remain; scale every op's share down proportionally so the
    // group still spreads across the live PEs instead of piling onto the
    // clamp boundary at the array edge.
    u64 requested = 0;
    for (const auto &alloc : group.allocs)
        if (g.op(alloc.op).kind != OpKind::Transpose)
            requested += alloc.pes;
    double scale = requested > cfg.numPes
                       ? static_cast<double>(cfg.numPes) /
                             static_cast<double>(requested)
                       : 1.0;
    if (scale < 1.0)
        CROPHE_WARN_ONCE("spatial group requests ", requested,
                         " PEs on a ", cfg.numPes,
                         "-PE array: rescaling allocations");

    // Split the op sequence at Transpose ops into segments; odd segments
    // (after a transpose) are placed right-to-left (Figure 4). Each
    // segment fills consecutive PE columns in its direction.
    // The group's allocs are already in topological order.
    bool reversed = false;
    u32 next_pe_forward = 0;                      // fills 0, 1, 2, ...
    u32 next_pe_backward = cfg.numPes - 1;        // fills N-1, N-2, ...

    std::map<OpId, std::size_t> placement_of;
    for (const auto &alloc : group.allocs) {
        const auto &op = g.op(alloc.op);
        if (op.kind == OpKind::Transpose) {
            // The transpose unit lives beside the array; flip direction.
            reversed = !reversed;
            PePlacement p;
            p.op = alloc.op;
            p.centroidX = static_cast<double>(cfg.meshX);  // array edge
            p.centroidY = cfg.meshY / 2.0;
            placement_of[alloc.op] = mapping.placements.size();
            mapping.placements.push_back(std::move(p));
            continue;
        }

        PePlacement p;
        p.op = alloc.op;
        u32 pes = std::max<u32>(
            1, static_cast<u32>(static_cast<double>(alloc.pes) * scale));
        for (u32 k = 0; k < pes; ++k) {
            u32 pe;
            if (!reversed) {
                pe = next_pe_forward;
                next_pe_forward =
                    std::min(next_pe_forward + 1, cfg.numPes - 1);
            } else {
                pe = next_pe_backward;
                next_pe_backward = next_pe_backward == 0
                                       ? 0
                                       : next_pe_backward - 1;
            }
            p.peIds.push_back(pe);
        }
        double sx = 0, sy = 0;
        for (u32 pe : p.peIds) {
            // Column-major: consecutive ids go down a column first.
            sx += pe / cfg.meshY;
            sy += pe % cfg.meshY;
        }
        p.centroidX = sx / p.peIds.size();
        p.centroidY = sy / p.peIds.size();
        placement_of[alloc.op] = mapping.placements.size();
        mapping.placements.push_back(std::move(p));
    }

    // Hop distance per internal edge (XY routing => Manhattan distance).
    double hop_sum = 0.0;
    for (const auto &e : group.internalEdges) {
        const auto &pf = mapping.placements[placement_of.at(e.from)];
        const auto &pt = mapping.placements[placement_of.at(e.to)];
        u32 hops = static_cast<u32>(std::lround(
            std::abs(pf.centroidX - pt.centroidX) +
            std::abs(pf.centroidY - pt.centroidY)));
        mapping.edgeHops.push_back(std::max<u32>(1, hops));
        hop_sum += mapping.edgeHops.back();
    }

    // Distance from the buffer crossbar (column 0 side) to each op.
    double buf_hops = 0.0;
    for (const auto &p : mapping.placements)
        buf_hops += p.centroidX + 1.0;
    mapping.avgBufferHops =
        mapping.placements.empty()
            ? 1.0
            : buf_hops / static_cast<double>(mapping.placements.size());
    return mapping;
}

}  // namespace crophe::map
