#ifndef CROPHE_MAP_TRACE_H_
#define CROPHE_MAP_TRACE_H_

/**
 * @file
 * Execution traces: the mapper's output consumed by the cycle-level
 * simulator (Section VI, "Implementation"). A trace describes each
 * operator's chunked execution, per-chunk resource demands, and chunk
 * dependencies along the pipelined/materialized edges.
 */

#include <vector>

#include "map/mapper.h"
#include "sched/group.h"

namespace crophe::map {

/** Dependency of a traced op on another traced op in the same group. */
struct TraceDep
{
    u32 producerIndex;  ///< index into GroupTrace::ops
    bool pipelined;     ///< chunk-wise dependency vs full-tensor barrier
    u32 hops;           ///< NoC hop distance of the forwarded data
};

/** One operator's chunked execution. */
struct TraceOp
{
    graph::OpId op = graph::kNoOp;
    u64 chunks = 1;
    double computePerChunk = 0.0;  ///< cycles of PE work per chunk
    u64 dramWordsPerChunk = 0;     ///< off-chip words fetched per chunk
    u64 sramWordsPerChunk = 0;     ///< global-buffer words per chunk
    u64 nocWordsPerChunk = 0;      ///< forwarded words per chunk
    u32 bufferHops = 1;            ///< distance to the buffer crossbar
    std::vector<TraceDep> deps;
};

/** Trace of one spatial group. */
struct GroupTrace
{
    std::vector<TraceOp> ops;
};

/**
 * Build the trace of one spatial group from its analysis and placement.
 * Resource totals in the trace match the group's analyzed totals.
 */
GroupTrace buildTrace(const sched::SpatialGroup &group,
                      const GroupMapping &mapping, const graph::Graph &g,
                      const hw::HwConfig &cfg);

}  // namespace crophe::map

#endif  // CROPHE_MAP_TRACE_H_
