#ifndef CROPHE_SCHED_MAD_H_
#define CROPHE_SCHED_MAD_H_

/**
 * @file
 * MAD scheduling [2] — the state-of-the-art baseline dataflow applied to
 * every design in the evaluation (Section VI).
 *
 * MAD fuses short element-wise chains (its O(1)/O(β) caching), uses
 * Hoisting for BSGS rotations, but has no systematic cross-operator
 * grouping, no aux-constant sharing across operators, and must break
 * pipelines at every orientation switch (no NTT decomposition).
 */

#include "graph/workloads.h"
#include "sched/cost_model.h"
#include "sched/group.h"

namespace crophe::sched {

/** Scheduler options that realize MAD semantics. */
SchedOptions madOptions();

/** Workload options MAD uses at graph level (hoisted rotations). */
graph::WorkloadOptions madWorkloadOptions();

/** Schedule one graph with MAD. */
Schedule scheduleGraphMad(const graph::Graph &g, const hw::HwConfig &cfg);

/** Schedule a workload with MAD. */
WorkloadResult scheduleWorkloadMad(const graph::Workload &w,
                                   const hw::HwConfig &cfg);

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_MAD_H_
