#include "sched/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <set>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "plan/plan_cache.h"
#include "plan/serialize.h"
#include "sched/enumerator.h"
#include "sched/ntt_decomp.h"
#include "telemetry/search_telemetry.h"

namespace crophe::sched {

using graph::Graph;
using graph::OpId;

namespace {

/**
 * Anytime-search budget (DESIGN.md §9): a wall-clock deadline shared by
 * one graph search, including its parallel NTT-decomposition sweep.
 * expiry is sticky — once observed, every later poll (from any thread)
 * reports expired, so all candidates truncate together.
 */
class DeadlineClock
{
  public:
    explicit DeadlineClock(double seconds) : active_(seconds > 0.0)
    {
        if (active_)
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
    }

    bool active() const { return active_; }

    /** Has the budget run out? (sticky; cheap when inactive). */
    bool expired() const
    {
        if (!active_)
            return false;
        if (expired_.load(std::memory_order_relaxed))
            return true;
        if (std::chrono::steady_clock::now() < deadline_)
            return false;
        expired_.store(true, std::memory_order_relaxed);
        return true;
    }

  private:
    bool active_;
    std::chrono::steady_clock::time_point deadline_;
    mutable std::atomic<bool> expired_{false};
};

/**
 * Incremental admissible lower bound on a topo window's group cycles
 * (DESIGN.md §8). Never calls analyzeSpatialGroup: the bound is assembled
 * from running sums as the window grows one op at a time, mirroring the
 * analysis's DRAM charges exactly and UNDER-counting its SRAM and compute
 * terms — so lb() <= the analyzed group's cycles for every feasible
 * window, which is what makes branch-and-bound pruning exact.
 */
class WindowBound
{
  public:
    WindowBound(const Graph &g, const hw::HwConfig &cfg, bool mad,
                const std::vector<OpId> &topo)
        : g_(&g), cfg_(&cfg), mad_(mad), topo_(&topo), pos_(g.size(), ~0u)
    {
        for (u32 i = 0; i < topo.size(); ++i)
            pos_[topo[i]] = i;
        // Admissible compute capacity: homogeneous chips retire at most
        // multsPerCycle; specialized chips at most the sum of their FU
        // class capacities (the per-class max in analyzeSpatialGroup is
        // >= flops / sum by the mediant inequality).
        double frac = 0.0;
        for (double f : cfg.fuFraction)
            frac += f;
        effMults_ = static_cast<double>(cfg.multsPerCycle()) *
                    (cfg.homogeneous ? 1.0 : frac);
        if (effMults_ < 1.0)
            effMults_ = 1.0;
    }

    /** Restart at window [begin, begin). */
    void reset(u32 begin)
    {
        begin_ = begin;
        len_ = 0;
        flops_ = 0;
        ioDram_ = 0;
        auxDram_ = 0;
        sram_ = 0;
        extCnt_.clear();
        seenAux_.clear();
    }

    /** Grow the window by the next topo op. */
    void extend()
    {
        OpId w = (*topo_)[begin_ + len_];
        ++len_;
        const graph::Op &op = g_->op(w);
        flops_ += op.flops;
        if (op.kind == graph::OpKind::Input) {
            ioDram_ += op.outputWords;
            return;
        }
        if (op.kind == graph::OpKind::Output) {
            ioDram_ += op.inputWords;
            // An in-window Output still internalizes its producers'
            // consumer-side handoffs; it adds no charges of its own.
            for (OpId p : g_->producers(w))
                if (inWindow(p))
                    internalize(p);
            return;
        }
        if (op.auxWords > 0) {
            // Exactly the analysis's DRAM charge: keyless and MAD aux per
            // op, keyed aux once per distinct key in the window.
            if (op.auxKey.empty() || mad_)
                auxDram_ += op.auxWords;
            else if (seenAux_.insert(op.auxKey).second)
                auxDram_ += op.auxWords;
        }
        for (OpId p : g_->producers(w)) {
            if (inWindow(p))
                internalize(p);
            else if (g_->op(p).kind != graph::OpKind::Input)
                sram_ += g_->op(p).outputWords;
        }
        // Consumer side: all consumers are later in topo order, hence
        // external until the window grows over them.
        sram_ += op.outputWords;
        if (!g_->consumers(w).empty())
            extCnt_.emplace_back(w, static_cast<u32>(
                                        g_->consumers(w).size()));
    }

    double lb() const
    {
        double compute = static_cast<double>(flops_) / effMults_;
        double dram = dramCycles(*cfg_, ioDram_ + auxDram_);
        double sram = sramCycles(*cfg_, sram_);
        return std::max({compute, dram, sram});
    }

  private:
    bool inWindow(OpId id) const
    {
        u32 p = pos_[id];
        return p >= begin_ && p < begin_ + len_;
    }

    void internalize(OpId p)
    {
        for (auto &e : extCnt_) {
            if (e.first != p)
                continue;
            if (--e.second == 0)
                sram_ -= g_->op(p).outputWords;
            return;
        }
    }

    const Graph *g_;
    const hw::HwConfig *cfg_;
    bool mad_;
    const std::vector<OpId> *topo_;
    std::vector<u32> pos_;  ///< op id -> topo position
    double effMults_;

    u32 begin_ = 0;
    u32 len_ = 0;
    u64 flops_ = 0;
    u64 ioDram_ = 0;
    u64 auxDram_ = 0;
    u64 sram_ = 0;
    /** In-window ops with external consumers left: (op, remaining). */
    std::vector<std::pair<OpId, u32>> extCnt_;
    std::set<std::string> seenAux_;
};

/** A cover of the topo order as (begin, len) windows with its cost. */
struct GreedyCover
{
    std::vector<std::pair<u32, u32>> windows;
    double cycles = 0.0;
};

/**
 * Greedy cover used to seed branch-and-bound: at each position take the
 * feasible window with the lowest cycles-per-op. Its cost is a valid
 * incumbent (it is a real schedule), its windows prime the enumerator's
 * memo for the DP that follows — and under a deadline it IS the anytime
 * fallback schedule. If @p deadline expires mid-greedy, the remaining
 * positions take single-op windows (always feasible), so even the
 * fallback construction is bounded.
 */
GreedyCover
greedyCover(GroupEnumerator &enumerator, const DeadlineClock *deadline)
{
    const u32 n = static_cast<u32>(enumerator.topo().size());
    GreedyCover cover;
    u32 i = 0;
    while (i < n) {
        double best_ratio = std::numeric_limits<double>::infinity();
        double best_cycles = 0.0;
        u32 best_len = 0;
        u32 max_len = enumerator.maxOps();
        if (deadline != nullptr && deadline->expired())
            max_len = 1;  // budget gone: cheapest valid progress
        for (u32 len = 1; len <= max_len && i + len <= n; ++len) {
            const SpatialGroup *cand = enumerator.window(i, len);
            if (!cand)
                continue;
            double ratio = cand->cycles / len;
            if (ratio < best_ratio) {
                best_ratio = ratio;
                best_cycles = cand->cycles;
                best_len = len;
            }
        }
        CROPHE_ASSERT(best_len > 0,
                      "no feasible group at op ", enumerator.topo()[i]);
        cover.windows.emplace_back(i, best_len);
        cover.cycles += best_cycles;
        i += best_len;
    }
    return cover;
}

/** Materialize a greedy cover back into analyzed spatial groups. */
std::vector<SpatialGroup>
materializeCover(GroupEnumerator &enumerator, const GreedyCover &cover)
{
    std::vector<SpatialGroup> groups;
    groups.reserve(cover.windows.size());
    for (auto [begin, len] : cover.windows) {
        const SpatialGroup *g = enumerator.window(begin, len);
        CROPHE_ASSERT(g != nullptr, "greedy window vanished");
        groups.push_back(*g);
    }
    return groups;
}

/**
 * Cover the topological order with spatial groups by dynamic programming:
 * dp[i] = cheapest cost of scheduling the first i ops.
 *
 * With @p prune set, windows whose admissible lower bound (plus the lower
 * bound of completing the cover) already exceeds the greedy incumbent are
 * skipped without analysis. The chosen cover is bit-identical to the
 * exhaustive sweep: every relaxation that achieves a dp value on the
 * reconstructed (optimal) path satisfies dp[i] + lb <= OPT <= incumbent
 * and therefore survives, and first-wins tie-breaking is preserved
 * because pruned relaxations were strictly above the final dp value
 * (DESIGN.md §8 for the full argument).
 *
 * With @p deadline set and active, the search is anytime: once the
 * budget expires the greedy cover (already a complete, valid schedule)
 * is returned instead of finishing the DP, and @p degraded is set.
 */
std::vector<SpatialGroup>
coverByDp(GroupEnumerator &enumerator, bool prune, bool mad,
          u64 &pruned_windows, const DeadlineClock *deadline,
          bool &degraded)
{
    const u32 n = static_cast<u32>(enumerator.topo().size());
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dp(n + 1, kInf);
    std::vector<u32> choice(n + 1, 0);
    dp[0] = 0.0;

    bool timed = deadline != nullptr && deadline->active();
    GreedyCover greedy;
    bool have_greedy = false;
    if ((prune || timed) && n > 0) {
        greedy = greedyCover(enumerator, deadline);
        have_greedy = true;
    }
    auto fall_back = [&]() {
        degraded = true;
        return materializeCover(enumerator, greedy);
    };
    if (timed && have_greedy && deadline->expired())
        return fall_back();

    WindowBound wb(enumerator.graph(), enumerator.config(), mad,
                   enumerator.topo());
    double bound = kInf;
    std::vector<double> lb_suffix;
    if (prune && n > 0) {
        // The epsilon absorbs float rounding in the bound sums: pruning
        // must only ever discard windows that are strictly worse in exact
        // arithmetic.
        bound = greedy.cycles * (1.0 + 1e-9);
        // lbSuffix[j]: admissible lower bound on covering ops [j, n).
        lb_suffix.assign(n + 1, 0.0);
        for (u32 j = n; j-- > 0;) {
            wb.reset(j);
            double best = kInf;
            for (u32 len = 1; len <= enumerator.maxOps() && j + len <= n;
                 ++len) {
                wb.extend();
                best = std::min(best, wb.lb() + lb_suffix[j + len]);
            }
            lb_suffix[j] = best;
        }
        if (timed && deadline->expired())
            return fall_back();
    }

    for (u32 i = 0; i < n; ++i) {
        if (dp[i] == kInf)
            continue;
        if (timed && deadline->expired())
            return fall_back();
        if (prune)
            wb.reset(i);
        for (u32 len = 1; len <= enumerator.maxOps() && i + len <= n;
             ++len) {
            if (prune) {
                wb.extend();
                if (dp[i] + wb.lb() + lb_suffix[i + len] > bound) {
                    ++pruned_windows;
                    continue;
                }
            }
            const SpatialGroup *cand = enumerator.window(i, len);
            if (!cand)
                continue;
            double cost = dp[i] + cand->cycles;
            if (cost < dp[i + len]) {
                dp[i + len] = cost;
                choice[i + len] = len;
            }
        }
        // Guarantee progress: single-op windows must always be feasible.
        // Under pruning a prefix may legitimately stay unreached (every
        // path through it is provably worse than the incumbent); the
        // greedy cover's own windows always survive, so dp[n] is bounded.
        if (!prune)
            CROPHE_ASSERT(dp[i + 1] < kInf,
                          "no feasible group at op ", enumerator.topo()[i]);
    }
    CROPHE_ASSERT(n == 0 || dp[n] < kInf, "search pruned away every cover");

    // Reconstruct the chosen segmentation.
    std::vector<u32> cuts;
    for (u32 i = n; i > 0; i -= choice[i])
        cuts.push_back(i - choice[i]);
    std::reverse(cuts.begin(), cuts.end());

    std::vector<SpatialGroup> groups;
    for (std::size_t k = 0; k < cuts.size(); ++k) {
        u32 begin = cuts[k];
        u32 len = (k + 1 < cuts.size() ? cuts[k + 1] : n) - begin;
        const SpatialGroup *g = enumerator.window(begin, len);
        CROPHE_ASSERT(g != nullptr, "chosen window vanished");
        groups.push_back(*g);
    }
    return groups;
}

/**
 * Working-set spill: the tensors a group materializes and hands off live
 * in the global buffer's working share (the rest is reserved for aux
 * residency). When they do not fit — MAD's orientation-switch buffers at
 * small SRAM capacities — the overflow fraction round-trips DRAM instead
 * (Section V-B: "each orientation switch would need to spill the data to
 * the off-chip memory").
 */
double
applyBufferSpill(const Graph &g, std::vector<SpatialGroup> &groups,
                 const hw::HwConfig &cfg, bool cross_op)
{
    if (groups.size() < 2)
        return 0.0;
    // Handoffs may use the whole buffer (minus the largest in-group
    // staging need); aux pinning later gets whatever stays free.
    u64 max_buffer = 0;
    for (const auto &grp : groups)
        max_buffer = std::max(max_buffer, grp.bufferWords);
    double capacity = 0.9 * static_cast<double>(cfg.sramWords()) -
                      static_cast<double>(max_buffer);
    if (capacity < 0)
        capacity = 0;

    // Group index of each op.
    std::vector<u32> group_of(g.size(), ~0u);
    for (u32 gi = 0; gi < groups.size(); ++gi)
        for (const auto &a : groups[gi].allocs)
            group_of[a.op] = gi;

    // Handoff edges spanning group boundaries, longest span first so the
    // long-lived tensors are the ones pushed off-chip when space runs out.
    struct Handoff
    {
        u32 from, to;  // producer group, last consumer group
        OpId producer;
        u64 volume;
        std::vector<u32> consumerGroups;
    };
    std::vector<Handoff> handoffs;
    for (OpId u = 0; u < g.size(); ++u) {
        if (group_of[u] == ~0u || g.op(u).kind == graph::OpKind::Input)
            continue;
        Handoff h{group_of[u], group_of[u], u, g.op(u).outputWords, {}};
        for (OpId v : g.consumers(u)) {
            if (group_of[v] == ~0u || group_of[v] == group_of[u])
                continue;
            h.consumerGroups.push_back(group_of[v]);
            h.to = std::max(h.to, group_of[v]);
        }
        if (h.consumerGroups.empty())
            continue;
        // Temporal pipelining (Section V-A): a handoff whose consumers run
        // within the same temporal group (a few spatial groups sharing
        // the chip back-to-back) streams through a granule-sized buffer —
        // it occupies no full-tensor residency. MAD has no cross-operator
        // pipelining, so its handoffs always materialize.
        constexpr u32 kTemporalReach = 6;
        if (cross_op && h.to <= h.from + kTemporalReach) {
            bool streamable = true;
            for (OpId v : g.consumers(u))
                if (group_of[v] != group_of[u])
                    streamable &= axesCompatible(g.op(u), g.op(v));
            if (streamable)
                continue;
        }
        // Otherwise the tensor is live from its producer to its last
        // consumer, regardless of how many operators read it.
        handoffs.push_back(std::move(h));
    }
    // Short-lived handoffs (the overwhelmingly common produce-then-consume
    // pattern) get the buffer first; long-lived tensors — e.g. the n1
    // baby-step ciphertexts BSGS keeps alive — are the ones spilled when
    // space runs out, exactly the temporary-ciphertext pressure SHARP
    // reports dominating the working set.
    std::sort(handoffs.begin(), handoffs.end(),
              [](const Handoff &a, const Handoff &b) {
                  return a.to - a.from < b.to - b.from;
              });

    // Greedy placement: a handoff stays in SRAM only if every boundary it
    // spans still has room; otherwise it round-trips DRAM.
    std::vector<double> live(groups.size(), 0.0);
    std::set<u32> dirty;
    for (const auto &h : handoffs) {
        bool fits = true;
        for (u32 b = h.from; b < h.to && fits; ++b)
            fits = live[b] + static_cast<double>(h.volume) <= capacity;
        if (fits) {
            for (u32 b = h.from; b < h.to; ++b)
                live[b] += static_cast<double>(h.volume);
            continue;
        }
        // Spill: the producer's write and every consumer's read move from
        // the global buffer to DRAM.
        auto &pg = groups[h.from];
        pg.sramWords = pg.sramWords > h.volume ? pg.sramWords - h.volume
                                               : 0;
        pg.dramWords += h.volume;
        dirty.insert(h.from);
        for (u32 cgi : h.consumerGroups) {
            auto &cg = groups[cgi];
            cg.sramWords = cg.sramWords > h.volume
                               ? cg.sramWords - h.volume
                               : 0;
            cg.dramWords += h.volume;
            dirty.insert(cgi);
        }
    }
    for (u32 gi : dirty) {
        auto &grp = groups[gi];
        grp.cycles = std::max({grp.computeCycles,
                               dramCycles(cfg, grp.dramWords),
                               sramCycles(cfg, grp.sramWords),
                               nocCycles(cfg, grp.nocWords)});
    }
    double peak_live = 0.0;
    for (double l : live)
        peak_live = std::max(peak_live, l);
    return peak_live;
}

/**
 * Schedule-level aux residency (temporal sharing, Section V-A; also the
 * evk caching all baselines enjoy in their large SRAM, Section VII-C).
 *
 * Aux constants live in the global-buffer space left over by the working
 * buffers, managed LRU. A hit removes the group's DRAM charge for that
 * key; a miss keeps it and (re)inserts the key. Keys larger than the
 * available space are streamed every time — this is what makes small-SRAM
 * configurations evk-bound and the hybrid rotation valuable (Figure 10).
 *
 * Returns the total aux words still charged to DRAM.
 */
struct AuxLru
{
    std::vector<std::pair<std::string, u64>> entries;  ///< front = MRU
    double resident = 0.0;
};

u64
applyAuxCaching(std::vector<SpatialGroup> &groups, const hw::HwConfig &cfg,
                double reserved_words, AuxLru &state)
{
    u64 max_buffer = 0;
    for (const auto &g : groups)
        max_buffer = std::max(max_buffer, g.bufferWords);
    double capacity = 0.9 * static_cast<double>(cfg.sramWords()) -
                      static_cast<double>(max_buffer) - reserved_words;
    if (capacity < 0)
        capacity = 0;

    auto &pinned = state.entries;
    double &resident = state.resident;
    u64 charged = 0;

    // Pin-first-fit residency: keys claim buffer space in first-use order
    // and stay pinned; once the space is exhausted the remaining keys are
    // streamed on every use. FHE aux reuse is cyclic (the same evks come
    // around every repetition), where LRU would evict exactly the entry
    // about to be reused — pinning is what the paper's scheduler (and the
    // baselines' evk caching, Section VII-C) effectively does, and it
    // makes the hit fraction track the capacity smoothly (Figure 10).
    auto touch = [&](const std::string &key, u64 words) -> bool {
        for (const auto &entry : pinned)
            if (entry.first == key)
                return true;  // hit: key is pinned on-chip
        if (resident + static_cast<double>(words) > capacity)
            return false;  // no space left: streamed every time
        pinned.emplace_back(key, words);
        resident += static_cast<double>(words);
        return false;  // first fetch of a now-pinned key
    };

    for (auto &g : groups) {
        u64 saved = 0;
        u64 group_aux = 0;
        std::set<std::string> seen_in_group;
        for (const auto &[key, vol] : g.auxNeeds) {
            bool dup_in_group = !seen_in_group.insert(key).second;
            bool hit = touch(key, vol);
            if (hit || dup_in_group)
                saved += vol;
            else
                group_aux += vol;
        }
        if (saved > 0) {
            g.dramWords = g.dramWords > saved ? g.dramWords - saved : 0;
            g.cycles = std::max({g.computeCycles,
                                 dramCycles(cfg, g.dramWords),
                                 sramCycles(cfg, g.sramWords),
                                 nocCycles(cfg, g.nocWords)});
        }
        charged += group_aux;
    }
    return charged;
}

/**
 * Compose spatial groups into temporal groups (Section V-A): consecutive
 * groups share the chip back-to-back while their buffers and resident aux
 * fit. MAD runs every group standalone.
 */
std::vector<TemporalGroup>
composeTemporal(std::vector<SpatialGroup> groups, const hw::HwConfig &cfg,
                bool cross_op)
{
    std::vector<TemporalGroup> sequence;
    const double capacity = 0.8 * static_cast<double>(cfg.sramWords());

    TemporalGroup current;
    double resident_words = 0.0;

    auto flush = [&]() {
        if (current.groups.empty())
            return;
        current.residentAuxWords = static_cast<u64>(resident_words);
        current.cycles = 0.0;
        for (const auto &g : current.groups)
            current.cycles += g.cycles;
        sequence.push_back(std::move(current));
        current = TemporalGroup();
        resident_words = 0.0;
    };

    for (auto &g : groups) {
        if (!cross_op) {
            current.groups.push_back(std::move(g));
            flush();
            continue;
        }
        double new_words = static_cast<double>(g.bufferWords);
        for (const auto &[key, vol] : g.auxNeeds)
            new_words += static_cast<double>(vol);
        if (!current.groups.empty() && resident_words + new_words > capacity)
            flush();
        resident_words += new_words;
        current.groups.push_back(std::move(g));
    }
    flush();
    return sequence;
}

SchedStats
summarize(const std::vector<TemporalGroup> &sequence)
{
    SchedStats st;
    for (const auto &tg : sequence) {
        for (const auto &g : tg.groups) {
            st.cycles += g.cycles;
            st.dramWords += g.dramWords;
            st.sramWords += g.sramWords;
            st.nocWords += g.nocWords;
            st.flops += g.flops;
        }
    }
    return st;
}

Schedule
scheduleOneGraph(const Graph &g, const hw::HwConfig &cfg,
                 const SchedOptions &opt, const DeadlineClock *deadline)
{
    GroupEnumerator enumerator(g, cfg,
                               /*mad=*/!opt.crossOpDataflow,
                               opt.crossOpDataflow ? opt.maxGroupOps : 3,
                               opt.memo);
    u64 pruned = 0;
    bool degraded = false;
    auto groups = coverByDp(enumerator, opt.pruneSearch,
                            /*mad=*/!opt.crossOpDataflow, pruned, deadline,
                            degraded);
    if (opt.search != nullptr) {
        opt.search->addEnumeration(enumerator.analyzedCount(),
                                   enumerator.memoHits());
        opt.search->addPruning(pruned);
    }
    double peak_live =
        applyBufferSpill(g, groups, cfg, opt.crossOpDataflow);

    // Cold pass: aux constants arrive from DRAM, building up residency in
    // the buffer space the working set leaves free.
    AuxLru lru;
    auto warm_groups = groups;  // pre-caching copy
    u64 cold_charged = applyAuxCaching(groups, cfg, peak_live, lru);

    // Warm pass: a repeated execution starts with the residency the cold
    // run left behind (segments repeat many times in FHE workloads).
    u64 warm_charged = applyAuxCaching(warm_groups, cfg, peak_live, lru);

    Schedule sched;
    sched.graph = g;
    {
        auto warm_seq = composeTemporal(std::move(warm_groups), cfg,
                                        opt.crossOpDataflow);
        sched.warmStats = summarize(warm_seq);
        sched.warmStats.auxDramWords = warm_charged;
        fillUtilization(sched.warmStats, cfg);
    }
    sched.sequence = composeTemporal(std::move(groups), cfg,
                                     opt.crossOpDataflow);
    sched.stats = summarize(sched.sequence);
    sched.stats.auxDramWords = cold_charged;
    fillUtilization(sched.stats, cfg);
    sched.degraded = degraded;
    return sched;
}

/** Full (uncached) schedule search: base + NTT-decomposition sweep. */
Schedule
scheduleGraphSearch(const Graph &g, const hw::HwConfig &cfg,
                    const SchedOptions &opt)
{
    // One wall-clock budget spans the base search and the decomposition
    // sweep; a truncated result anywhere makes the whole search anytime
    // (best could differ from the exhaustive sweep), hence degraded.
    DeadlineClock clock(opt.deadlineSeconds);
    const DeadlineClock *deadline = clock.active() ? &clock : nullptr;
    auto finish = [&](Schedule &&s, bool truncated) {
        s.degraded = s.degraded || truncated;
        if (s.degraded && opt.search != nullptr)
            opt.search->addDeadlineHit();
        return std::move(s);
    };

    Schedule best = scheduleOneGraph(g, cfg, opt, deadline);
    if (opt.search != nullptr)
        opt.search->recordCandidate("base", best.stats.cycles);
    if (!opt.nttDecomp || !opt.crossOpDataflow)
        return finish(std::move(best), false);

    // Try the four-step NTT rewritings; n is taken from the largest
    // transform in the graph.
    u64 n = 0;
    for (const auto &op : g.ops())
        if (op.kind == graph::OpKind::Ntt || op.kind == graph::OpKind::INtt)
            n = std::max(n, op.n);
    if (n == 0)
        return finish(std::move(best), false);

    // Candidates share one GroupMemo (its values are pure functions of
    // their keys, so the sweep stays independent work); telemetry and the
    // best-pick reduction run on this thread in option order, keeping the
    // chosen schedule (and tie-breaks) identical to the sequential sweep.
    auto options = nttDecompositionOptions(n, cfg.lanes);
    std::vector<std::unique_ptr<Schedule>> cands(options.size());
    parallelFor(0, options.size(), [&](u64 i) {
        Graph rewritten = rewriteNttDecomposition(g, options[i]);
        cands[i] = std::make_unique<Schedule>(
            scheduleOneGraph(rewritten, cfg, opt, deadline));
    });
    bool truncated = best.degraded;
    for (u64 i = 0; i < options.size(); ++i) {
        if (opt.search != nullptr)
            opt.search->recordCandidate(
                "nttdec n1=" + std::to_string(options[i]),
                cands[i]->stats.cycles);
        // A truncated candidate taints the sweep even when another one
        // wins: the comparison no longer matches the exhaustive search.
        truncated = truncated || cands[i]->degraded;
        if (cands[i]->stats.cycles < best.stats.cycles)
            best = std::move(*cands[i]);
    }
    return finish(std::move(best), truncated);
}

/**
 * Plan-cache key for scheduling @p g on @p cfg with @p opt. The graph
 * component extends structuralHash (which covers op shapes and edge
 * structure) with the remaining Op fields so any two graphs with equal
 * digests schedule — and print — identically.
 */
plan::PlanKey
planKeyFor(const Graph &g, const hw::HwConfig &cfg, const SchedOptions &opt)
{
    auto topo = g.topoOrder();
    u64 h = g.structuralHash(topo);
    auto mix = [&h](u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 1099511628211ull;
    };
    for (OpId id : topo) {
        const graph::Op &op = g.op(id);
        mix(std::hash<std::string>{}(op.label));
        mix(op.n2);
        mix(op.inputWords);
        mix(op.outputWords);
        mix(op.flops);
        mix(op.streamAxes.size());
        for (graph::StreamAxis a : op.streamAxes)
            mix(static_cast<u64>(a));
        mix(op.orientationSwitch ? 1 : 0);
    }
    plan::PlanKey key;
    key.graphHash = h;
    key.hwDigest = hw::configDigest(cfg);
    key.optDigest = optionsDigest(opt);
    return key;
}

}  // namespace

Schedule
scheduleGraph(const Graph &g, const hw::HwConfig &cfg,
              const SchedOptions &opt)
{
    hw::validateConfig(cfg);
    // The sweeps below share one group memo when the caller didn't
    // provide a broader-scoped one.
    GroupMemo local_memo;
    SchedOptions o = opt;
    if (o.memo == nullptr)
        o.memo = &local_memo;

    if (o.planCache == nullptr)
        return scheduleGraphSearch(g, cfg, o);

    plan::PlanKey key = planKeyFor(g, cfg, o);
    std::vector<u8> bytes;
    if (o.planCache->lookup(key, bytes)) {
        Schedule cached;
        plan::ByteReader reader(bytes);
        if (plan::deserializeSchedule(reader, cached)) {
            if (o.search != nullptr)
                o.search->addPlanLookup(true);
            return cached;
        }
        // An undeserializable payload means a corrupt or stale entry that
        // slipped past validation; fall back to a full search.
    }
    if (o.search != nullptr)
        o.search->addPlanLookup(false);
    Schedule sched = scheduleGraphSearch(g, cfg, o);
    // Deadline-truncated schedules are anytime fallbacks, not the exact
    // result this key promises — never cache them (DESIGN.md §9).
    if (!sched.degraded)
        o.planCache->insert(key, plan::scheduleBytes(sched));
    return sched;
}

WorkloadResult
scheduleWorkload(const graph::Workload &w, const hw::HwConfig &cfg,
                 const SchedOptions &opt)
{
    hw::validateConfig(cfg);
    // CROPHE-p slices the PE array into data-parallel clusters; each
    // cluster is scheduled like a smaller chip (intermediates use a
    // proportional buffer share — the aux residency is chip-wide).
    hw::HwConfig cluster_cfg = cfg;
    if (opt.clusters > 1) {
        cluster_cfg.numPes = std::max<u32>(1, cfg.numPes / opt.clusters);
        cluster_cfg.meshY = std::max<u32>(1, cfg.meshY / opt.clusters);
        cluster_cfg.sramGBs = cfg.sramGBs / opt.clusters;
        cluster_cfg.dramGBs = cfg.dramGBs / opt.clusters;
    }

    // Segments are independent graphs; schedule them concurrently into
    // per-segment slots (disjoint writes, index-order aggregation below).
    // They share one group memo (FHE workloads repeat the same subgraphs
    // across segments) unless the caller already scoped one wider.
    GroupMemo local_memo;
    SchedOptions o = opt;
    if (o.memo == nullptr)
        o.memo = &local_memo;
    std::vector<Schedule> schedules(w.segments.size());
    parallelFor(0, w.segments.size(), [&](u64 i) {
        schedules[i] = scheduleGraph(w.segments[i].graph, cluster_cfg, o);
    });

    return aggregateWorkload(w, cfg, schedules, opt.clusters,
                             opt.shareAuxAcrossClusters);
}

WorkloadResult
scheduleWorkloadAutoClusters(const graph::Workload &w,
                             const hw::HwConfig &cfg,
                             const SchedOptions &opt)
{
    WorkloadResult best;
    best.stats.cycles = std::numeric_limits<double>::infinity();
    std::vector<u32> ks;
    for (u32 k : {1u, 2u, 4u})
        if (cfg.numPes / k != 0)
            ks.push_back(k);
    // Cluster counts are independent design points: evaluate in parallel,
    // then record and reduce in candidate order for determinism. The
    // group memo spans all candidates (cluster-sliced configs get their
    // own keys via the hardware digest, so there is no false sharing).
    GroupMemo local_memo;
    std::vector<std::unique_ptr<WorkloadResult>> results(ks.size());
    parallelFor(0, ks.size(), [&](u64 i) {
        SchedOptions o = opt;
        if (o.memo == nullptr)
            o.memo = &local_memo;
        o.clusters = ks[i];
        results[i] =
            std::make_unique<WorkloadResult>(scheduleWorkload(w, cfg, o));
    });
    for (u64 i = 0; i < ks.size(); ++i) {
        if (opt.search != nullptr)
            opt.search->recordCandidate("clusters=" + std::to_string(ks[i]),
                                        results[i]->stats.cycles);
        if (results[i]->stats.cycles < best.stats.cycles)
            best = std::move(*results[i]);
    }
    return best;
}

}  // namespace crophe::sched
