#ifndef CROPHE_SCHED_NTT_DECOMP_H_
#define CROPHE_SCHED_NTT_DECOMP_H_

/**
 * @file
 * NTT-decomposition graph rewriting (Section V-B).
 *
 * Each monolithic (i)NTT node is replaced by the four-step structure
 * col-(i)NTT → twiddle → transpose → row-(i)NTT with N = N1 × N2. The
 * column step streams on the N1 instance loop and the row step on N2, so
 * each end of the decomposed transform pipelines with its neighbours and
 * orientation switches drop from 4 to 2 per iNTT→BConv→NTT sequence
 * (Figure 7).
 */

#include <vector>

#include "graph/graph.h"

namespace crophe::sched {

/**
 * Candidate N1 factors for an NTT of size @p n: powers of two with both
 * N1 and N2 at least @p lanes (smaller sub-NTTs cannot fill a PE's lanes,
 * Section V-D).
 */
std::vector<u64> nttDecompositionOptions(u64 n, u32 lanes);

/** Rewrite every monolithic NTT/iNTT of @p g with factor @p n1. */
graph::Graph rewriteNttDecomposition(const graph::Graph &g, u64 n1);

/** Count monolithic NTT nodes (for tests and reporting). */
u32 countMonolithicNtts(const graph::Graph &g);

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_NTT_DECOMP_H_
