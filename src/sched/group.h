#ifndef CROPHE_SCHED_GROUP_H_
#define CROPHE_SCHED_GROUP_H_

/**
 * @file
 * The three-level dataflow hierarchy of Section V-A:
 * sequential execution → temporal pipelining/sharing → spatial
 * pipelining/sharing — plus the per-group analysis that fills in
 * compute/memory cost and buffer residency.
 */

#include <string>
#include <vector>

#include "graph/graph.h"
#include "hw/config.h"
#include "sched/loopnest.h"

namespace crophe::telemetry {
class SearchTelemetry;
}  // namespace crophe::telemetry

namespace crophe::plan {
class PlanCache;
}  // namespace crophe::plan

namespace crophe::sched {

class GroupMemo;

/** Scheduler knobs. */
struct SchedOptions
{
    /** false = MAD-style limited fusion (the baseline dataflow). */
    bool crossOpDataflow = true;
    /** Apply the four-step NTT rewriting of Section V-B. */
    bool nttDecomp = true;
    /** Max ops per spatial group (the paper uses 7-10). */
    u32 maxGroupOps = 10;
    /** Data-parallel clusters (CROPHE-p); 1 = whole-chip scheduling. */
    u32 clusters = 1;
    /** Share aux constants (evks) across clusters in CROPHE-p. */
    bool shareAuxAcrossClusters = true;
    /**
     * Branch-and-bound pruning of the DP cover search (DESIGN.md §8). The
     * bound is admissible, so the chosen schedule is bit-identical to the
     * exhaustive search; false forces the exhaustive sweep (tests).
     */
    bool pruneSearch = true;
    /**
     * Bitmask of graph::RotMode values the rotation-scheme search may
     * enumerate (bit = 1 << static_cast<u32>(mode)); default all four
     * (MinKs | Hoisting | Hybrid | TripleHoisted). Only consulted by
     * chooseRotationScheme, but part of optionsDigest() since it shapes
     * which candidate won a cached search.
     */
    u32 rotSchemeMask = 0xF;
    /**
     * Bitmask of graph::KsDataflow values the search may enumerate
     * (bit = 1 << static_cast<u32>(df)); default all three
     * (Fused | OutputStationary | ReorderedModUp). Same digest rationale
     * as rotSchemeMask.
     */
    u32 ksDataflowMask = 0x7;
    /** Optional search observer: candidate costs and enumerator memo
     *  effectiveness are recorded here (null = no telemetry). */
    telemetry::SearchTelemetry *search = nullptr;
    /**
     * Optional content-addressed schedule cache (DESIGN.md §8). A hit
     * returns a byte-identical schedule without searching; null disables
     * caching. Not part of optionsDigest().
     */
    plan::PlanCache *planCache = nullptr;
    /**
     * Optional shared group-analysis memo. When set, the nttDecomp /
     * rotation-scheme / cluster sweeps share one structural-hash memo
     * instead of rebuilding one per candidate; when null each top-level
     * schedule call creates its own. Not part of optionsDigest().
     */
    GroupMemo *memo = nullptr;
    /**
     * Anytime-search wall-clock budget in seconds per graph search
     * (0 = unlimited, the default). When it expires mid-search the
     * scheduler returns its greedy incumbent — a valid cover, just not
     * the proven optimum — with Schedule::degraded set (DESIGN.md §9).
     * Excluded from optionsDigest(): deadline-truncated schedules never
     * enter the plan cache, so cached plans are always exact and the
     * digest need not distinguish budgets.
     */
    double deadlineSeconds = 0.0;
};

/**
 * Order-sensitive digest over the value fields of @p opt (the observer
 * and cache pointers are excluded — they do not affect the schedule).
 * Keys the plan cache together with the graph hash and config digest.
 */
u64 optionsDigest(const SchedOptions &opt);

/** PE allocation for one operator inside a spatial group. */
struct OpAlloc
{
    graph::OpId op = graph::kNoOp;
    u32 pes = 1;      ///< PEs allocated (∝ compute load, Section IV-B)
    u64 chunks = 1;   ///< pipelining granule count (simulation)
};

/** A set of operators co-running on the chip with data forwarding. */
struct SpatialGroup
{
    std::vector<OpAlloc> allocs;
    std::vector<EdgePlan> internalEdges;

    // --- Analysis results -------------------------------------------------
    double computeCycles = 0.0;  ///< pipelined compute bound
    u64 dramWords = 0;           ///< off-chip traffic this group causes
    u64 sramWords = 0;           ///< global-buffer traffic
    u64 nocWords = 0;            ///< inter-PE forwarded words
    u64 bufferWords = 0;         ///< peak global-buffer residency
    u64 extWords = 0;            ///< external in/out tensor volume
    u64 flops = 0;               ///< total modmuls in the group
    /** Distinct aux keys (evk etc.) this group streams in, with volumes. */
    std::vector<std::pair<std::string, u64>> auxNeeds;
    double cycles = 0.0;         ///< bounding resource time

    bool contains(graph::OpId id) const;
};

/** Spatial groups sharing the chip back-to-back with resident aux data. */
struct TemporalGroup
{
    std::vector<SpatialGroup> groups;
    u64 residentAuxWords = 0;  ///< aux kept in SRAM across the group
    double cycles = 0.0;
};

/** Aggregate statistics of a schedule (drives Table IV and Figure 11). */
struct SchedStats
{
    double cycles = 0.0;
    u64 dramWords = 0;
    u64 auxDramWords = 0;  ///< portion of dramWords that is aux constants
    u64 sramWords = 0;
    u64 nocWords = 0;
    u64 flops = 0;

    double peUtil = 0.0;
    double nocUtil = 0.0;
    double sramBwUtil = 0.0;
    double dramBwUtil = 0.0;

    void accumulate(const SchedStats &other);
};

/** A complete schedule for one workload segment (or whole workload). */
struct Schedule
{
    /** The scheduled graph (possibly NTT-decomposition-rewritten); all
     *  group op ids refer to this graph. */
    graph::Graph graph;
    std::vector<TemporalGroup> sequence;
    /** First execution: aux constants fetched cold. */
    SchedStats stats;
    /** Steady-state repetition: aux that fits stays resident on-chip. */
    SchedStats warmStats;
    /**
     * True when SchedOptions::deadlineSeconds expired and this is the
     * greedy incumbent rather than the exact search result. Degraded
     * schedules are never inserted into the plan cache (and hence never
     * come back from it), so the flag is not serialized.
     */
    bool degraded = false;
};

/**
 * Analyze a candidate spatial group over @p ops (a topological window of
 * @p g). Returns false if the group is infeasible (internal buffering
 * exceeds the global buffer).
 *
 * @param mad true = MAD semantics: no aux dedup across ops and fusion only
 *        across non-orientation-switch element-wise chains.
 */
bool analyzeSpatialGroup(const graph::Graph &g,
                         const std::vector<graph::OpId> &ops,
                         const hw::HwConfig &cfg, bool mad,
                         SpatialGroup &out);

/** Resource-time conversion helpers shared with the cost model. @{ */
double dramCycles(const hw::HwConfig &cfg, u64 words);
double sramCycles(const hw::HwConfig &cfg, u64 words);
double nocCycles(const hw::HwConfig &cfg, u64 words);
/** Serialization time of @p words over one inter-chip link of
 *  @p link_gbs GB/s, in @p cfg's cycles (pod partitioner / interconnect). */
double linkCycles(const hw::HwConfig &cfg, double link_gbs, u64 words);
/** @} */

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_GROUP_H_
