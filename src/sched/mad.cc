#include "sched/mad.h"

#include "sched/scheduler.h"

namespace crophe::sched {

SchedOptions
madOptions()
{
    SchedOptions opt;
    opt.crossOpDataflow = false;
    opt.nttDecomp = false;
    opt.maxGroupOps = 3;
    opt.clusters = 1;
    opt.shareAuxAcrossClusters = false;
    return opt;
}

graph::WorkloadOptions
madWorkloadOptions()
{
    graph::WorkloadOptions wopt;
    wopt.rotMode = graph::RotMode::Hoisting;
    wopt.rHyb = 0;
    return wopt;
}

Schedule
scheduleGraphMad(const graph::Graph &g, const hw::HwConfig &cfg)
{
    return scheduleGraph(g, cfg, madOptions());
}

WorkloadResult
scheduleWorkloadMad(const graph::Workload &w, const hw::HwConfig &cfg)
{
    return scheduleWorkload(w, cfg, madOptions());
}

}  // namespace crophe::sched
