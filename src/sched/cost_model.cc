#include "sched/cost_model.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/math_util.h"

namespace crophe::sched {

u64
segmentAuxDramWords(const Schedule &sched)
{
    // Distinct aux keys actually charged to DRAM across the schedule.
    u64 words = 0;
    std::set<std::string> seen;
    for (const auto &tg : sched.sequence) {
        for (const auto &sg : tg.groups) {
            for (const auto &[key, vol] : sg.auxNeeds) {
                if (seen.insert(key).second)
                    words += vol;
            }
        }
    }
    return words;
}

WorkloadResult
aggregateWorkload(const graph::Workload &w, const hw::HwConfig &cfg,
                  const std::vector<Schedule> &segment_schedules,
                  u32 clusters, bool share_aux)
{
    CROPHE_ASSERT(segment_schedules.size() == w.segments.size(),
                  "one schedule per segment required");
    CROPHE_ASSERT(clusters >= 1, "clusters must be positive");

    WorkloadResult res;
    res.workload = w.name;
    res.design = cfg.name;
    res.clusters = clusters;

    for (std::size_t s = 0; s < w.segments.size(); ++s) {
        const auto &seg = w.segments[s];
        const auto &sched = segment_schedules[s];
        const u64 reps = seg.repetitions;

        const SchedStats &cold = sched.stats;
        const SchedStats &warm = sched.warmStats;
        u64 warm_nonaux = warm.dramWords > warm.auxDramWords
                              ? warm.dramWords - warm.auxDramWords
                              : 0;

        // The clusters co-run `clusters` repetitions at a time; aux
        // constants streamed cold/thrashing are multicast to all of them
        // (CROPHE-p, Section VII-A), so aux is charged per *round*.
        u64 rounds = ceilDiv(reps, clusters);
        u64 aux_rounds = share_aux ? rounds : reps;

        SchedStats st;
        st.flops = cold.flops * reps;
        st.sramWords = cold.sramWords * reps;
        st.nocWords = cold.nocWords * reps;
        st.auxDramWords =
            cold.auxDramWords +
            (aux_rounds > 0 ? aux_rounds - 1 : 0) * warm.auxDramWords;
        st.dramWords = st.auxDramWords + warm_nonaux * (reps - 1) +
                       (cold.dramWords - cold.auxDramWords);

        // Wall time: the first round runs cold, the rest warm; chip-level
        // resources (DRAM/SRAM/NoC) bound the aggregate traffic.
        double compute_wall =
            cold.cycles +
            static_cast<double>(rounds > 0 ? rounds - 1 : 0) * warm.cycles;
        st.cycles = std::max({compute_wall, dramCycles(cfg, st.dramWords),
                              sramCycles(cfg, st.sramWords),
                              nocCycles(cfg, st.nocWords)});

        res.perSegment.emplace_back(seg.name, st);
        res.stats.accumulate(st);
        res.degraded = res.degraded || sched.degraded;
    }

    fillUtilization(res.stats, cfg);
    res.seconds = res.stats.cycles / (cfg.freqGhz * 1e9);
    return res;
}

void
fillUtilization(SchedStats &stats, const hw::HwConfig &cfg)
{
    if (stats.cycles <= 0)
        return;
    stats.peUtil = static_cast<double>(stats.flops) /
                   (stats.cycles * cfg.multsPerCycle());
    double noc_cap = static_cast<double>(cfg.numPes) * cfg.lanes / 4.0;
    stats.nocUtil = static_cast<double>(stats.nocWords) /
                    (stats.cycles * noc_cap);
    double sram_wpc = cfg.sramGBs / (cfg.wordBytes() * cfg.freqGhz);
    stats.sramBwUtil =
        static_cast<double>(stats.sramWords) / (stats.cycles * sram_wpc);
    double dram_wpc = cfg.dramGBs / (cfg.wordBytes() * cfg.freqGhz);
    stats.dramBwUtil =
        static_cast<double>(stats.dramWords) / (stats.cycles * dram_wpc);
}

}  // namespace crophe::sched
