#include "sched/dataflow_report.h"

#include <fstream>
#include <sstream>

#include "graph/op.h"

namespace crophe::sched {

std::string
dataflowReport(const Schedule &sched, const hw::HwConfig &cfg)
{
    std::ostringstream os;
    os << "# CROPHE dataflow result\n";
    os << "# hardware: " << cfg.name << " (" << cfg.numPes << " PEs x "
       << cfg.lanes << " lanes, " << cfg.sramMB << " MB)\n";
    os << "# cycles: " << sched.stats.cycles
       << "  dram words: " << sched.stats.dramWords
       << "  sram words: " << sched.stats.sramWords << "\n\n";

    u32 t_idx = 0;
    for (const auto &tg : sched.sequence) {
        os << "temporal-group " << t_idx++ << " (resident aux "
           << tg.residentAuxWords << " words)\n";
        u32 s_idx = 0;
        for (const auto &grp : tg.groups) {
            os << "  spatial-group " << s_idx++ << ": cycles="
               << grp.cycles << " buffer=" << grp.bufferWords << "\n";
            for (const auto &alloc : grp.allocs) {
                const auto &op = sched.graph.op(alloc.op);
                os << "    op " << alloc.op << " "
                   << graph::opKindName(op.kind) << " limbs="
                   << op.limbsIn << "->" << op.limbsOut << " pes="
                   << alloc.pes;
                if (!op.auxKey.empty())
                    os << " aux=" << op.auxKey;
                os << "\n";
            }
            for (const auto &e : grp.internalEdges) {
                os << "    edge " << e.from << "->" << e.to << " "
                   << (e.mode == EdgeMode::Pipelined ? "pipelined"
                                                     : "materialized")
                   << " granule=" << e.granuleWords << "\n";
            }
        }
    }
    return os.str();
}

bool
writeDataflowReport(const Schedule &sched, const hw::HwConfig &cfg,
                    const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << dataflowReport(sched, cfg);
    return static_cast<bool>(out);
}

}  // namespace crophe::sched
