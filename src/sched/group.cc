#include "sched/group.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/math_util.h"

namespace crophe::sched {

using graph::Graph;
using graph::Op;
using graph::OpId;
using graph::OpKind;

bool
SpatialGroup::contains(OpId id) const
{
    for (const auto &a : allocs)
        if (a.op == id)
            return true;
    return false;
}

void
SchedStats::accumulate(const SchedStats &other)
{
    cycles += other.cycles;
    dramWords += other.dramWords;
    auxDramWords += other.auxDramWords;
    sramWords += other.sramWords;
    nocWords += other.nocWords;
    flops += other.flops;
}

u64
optionsDigest(const SchedOptions &opt)
{
    u64 h = 1469598103934665603ull;
    auto mix = [&h](u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 1099511628211ull;
    };
    mix(opt.crossOpDataflow ? 1 : 0);
    mix(opt.nttDecomp ? 1 : 0);
    mix(opt.maxGroupOps);
    mix(opt.clusters);
    mix(opt.shareAuxAcrossClusters ? 1 : 0);
    // pruneSearch provably does not change the chosen schedule (the bound
    // is admissible, DESIGN.md §8), but it stays in the key as insurance:
    // a future inexact bound must never validate against exact-search
    // cache entries.
    mix(opt.pruneSearch ? 1 : 0);
    mix(opt.rotSchemeMask);
    mix(opt.ksDataflowMask);
    // deadlineSeconds is deliberately NOT mixed: a deadline can only
    // produce degraded schedules, which are never inserted into the plan
    // cache, so every cached entry is the exact result for this digest.
    return h;
}

double
dramCycles(const hw::HwConfig &cfg, u64 words)
{
    return static_cast<double>(words) * cfg.wordBytes() * cfg.freqGhz /
           cfg.dramGBs;
}

double
sramCycles(const hw::HwConfig &cfg, u64 words)
{
    return static_cast<double>(words) * cfg.wordBytes() * cfg.freqGhz /
           cfg.sramGBs;
}

double
linkCycles(const hw::HwConfig &cfg, double link_gbs, u64 words)
{
    CROPHE_ASSERT(link_gbs > 0.0, "link bandwidth must be positive");
    return static_cast<double>(words) * cfg.wordBytes() * cfg.freqGhz /
           link_gbs;
}

double
nocCycles(const hw::HwConfig &cfg, u64 words)
{
    // Aggregate mesh capacity: each PE can inject/eject a quarter-lane-width
    // packet per cycle.
    double words_per_cycle =
        static_cast<double>(cfg.numPes) * cfg.lanes / 4.0;
    return static_cast<double>(words) / words_per_cycle;
}

namespace {

hw::FuClass
fuClassOf(const Op &op)
{
    if (op.isTransform())
        return hw::FuClass::Ntt;
    switch (op.kind) {
      case OpKind::BConv:
      case OpKind::KskInnerProd:
        return hw::FuClass::BConv;
      case OpKind::Automorphism:
      case OpKind::Transpose:
        return hw::FuClass::Automorphism;
      default:
        return hw::FuClass::Elementwise;
    }
}

/** Allocation weight: compute load, with a floor for data-movement ops. */
u64
allocWeight(const Op &op)
{
    return std::max<u64>(op.flops, op.outputWords / 8 + 1);
}

}  // namespace

bool
analyzeSpatialGroup(const Graph &g, const std::vector<OpId> &ops,
                    const hw::HwConfig &cfg, bool mad, SpatialGroup &out)
{
    CROPHE_ASSERT(!ops.empty(), "empty group");
    out = SpatialGroup();

    std::set<OpId> inside(ops.begin(), ops.end());

    // MAD-style fusion is limited to element-wise chains: it cannot fuse
    // across orientation switches, matrix ops, or key-switch inner
    // products (Section III-A).
    if (mad && ops.size() > 1) {
        for (OpId id : ops) {
            const Op &op = g.op(id);
            if (!(op.isElementwise() || op.kind == OpKind::Input ||
                  op.kind == OpKind::Output)) {
                return false;
            }
        }
        if (ops.size() > 3)
            return false;  // MAD fuses a few ops at a time
    }

    // --- PE allocation proportional to load (Section IV-B) ---------------
    u64 total_weight = 0;
    for (OpId id : ops)
        total_weight += allocWeight(g.op(id));
    if (ops.size() > cfg.numPes)
        return false;

    u32 assigned = 0;
    for (OpId id : ops) {
        OpAlloc a;
        a.op = id;
        double share = static_cast<double>(allocWeight(g.op(id))) /
                       static_cast<double>(std::max<u64>(1, total_weight));
        a.pes = std::max<u32>(
            1, static_cast<u32>(share * cfg.numPes));
        a.chunks = chunkCount(g.op(id), cfg);
        assigned += a.pes;
        out.allocs.push_back(a);
    }
    // Normalize overshoot from rounding: shrink the largest allocations.
    while (assigned > cfg.numPes) {
        auto it = std::max_element(
            out.allocs.begin(), out.allocs.end(),
            [](const OpAlloc &x, const OpAlloc &y) { return x.pes < y.pes; });
        if (it->pes <= 1)
            return false;
        --it->pes;
        --assigned;
    }

    // --- Edge planning ----------------------------------------------------
    u64 buffer = 0;
    for (OpId id : ops) {
        for (OpId c : g.consumers(id)) {
            if (!inside.count(c))
                continue;
            EdgePlan plan = planEdge(g, id, c, cfg);
            buffer += plan.bufferWords;
            if (plan.mode == EdgeMode::Pipelined) {
                out.nocWords += plan.volumeWords;
            } else if (g.op(c).kind == OpKind::Transpose) {
                // Staged in the transpose unit, reached over the crossbar.
                out.nocWords += plan.volumeWords;
            } else {
                // Materialized through the global buffer: write + read.
                out.sramWords += 2 * plan.volumeWords;
            }
            out.internalEdges.push_back(plan);
        }
    }

    // --- External traffic ---------------------------------------------------
    std::map<std::string, u64> aux;
    for (OpId id : ops) {
        const Op &op = g.op(id);
        out.flops += op.flops;

        if (op.kind == OpKind::Input) {
            out.dramWords += op.outputWords;  // fresh operand from DRAM
            continue;
        }
        if (op.kind == OpKind::Output) {
            out.dramWords += op.inputWords;  // result to DRAM
            continue;
        }

        // Inputs produced outside the group arrive via the global buffer.
        for (OpId p : g.producers(id)) {
            if (!inside.count(p) && g.op(p).kind != OpKind::Input) {
                out.sramWords += g.op(p).outputWords;
                out.extWords += g.op(p).outputWords;
            }
        }
        // Outputs consumed outside the group return to the global buffer.
        bool external_consumer = g.consumers(id).empty();
        for (OpId c : g.consumers(id))
            external_consumer |= !inside.count(c);
        if (external_consumer && op.outputWords > 0) {
            out.sramWords += op.outputWords;
            out.extWords += op.outputWords;
        }

        // Auxiliary constants (evk digits, plaintext diagonals).
        if (op.auxWords > 0) {
            if (op.auxKey.empty()) {
                // Tiny keyless constants (BConv matrices): fetched inline.
                out.dramWords += op.auxWords;
                out.nocWords += op.auxWords;
            } else if (mad) {
                // MAD fetches aux per consumer; no cross-operator sharing
                // (residency caching is applied later at schedule level).
                out.dramWords += op.auxWords;
                out.nocWords += op.auxWords;
                out.auxNeeds.emplace_back(op.auxKey, op.auxWords);
            } else {
                auto [it, fresh] = aux.emplace(op.auxKey, op.auxWords);
                (void)it;
                if (fresh)
                    out.dramWords += op.auxWords;
                // Multicast to every consumer PE group.
                out.nocWords += op.auxWords;
            }
        }
    }
    for (auto &[key, words] : aux)
        out.auxNeeds.emplace_back(key, words);

    out.bufferWords = buffer;
    // In-group staging may claim at most a quarter of the global buffer:
    // the rest must stay available for live handoff tensors and resident
    // aux constants. Groups that would materialize more than that are
    // split by the DP (the orientation switch becomes a sequential
    // boundary) — or avoided altogether via NTT decomposition.
    if (static_cast<double>(buffer) > 0.25 * cfg.sramWords())
        return false;

    // --- Compute time: longest path with pipelining overlap ---------------
    std::map<OpId, double> dur;
    std::map<OpId, u32> pe_of;
    for (const auto &a : out.allocs)
        pe_of[a.op] = a.pes;

    // Per-class capacity on specialized hardware.
    double class_mults[hw::kFuClassCount];
    for (u32 k = 0; k < hw::kFuClassCount; ++k)
        class_mults[k] = cfg.homogeneous
                             ? static_cast<double>(cfg.multsPerCycle())
                             : cfg.multsPerCycle() * cfg.fuFraction[k];

    for (OpId id : ops) {
        const Op &op = g.op(id);
        if (op.kind == OpKind::Input || op.kind == OpKind::Output) {
            // Pseudo-ops: their traffic is charged to DRAM, not to PEs.
            dur[id] = 0.0;
            continue;
        }
        double mults;
        if (cfg.homogeneous) {
            mults = static_cast<double>(pe_of[id]) * cfg.lanes;
        } else {
            // Specialized designs: the op can only use its own FU class.
            mults = class_mults[static_cast<u32>(fuClassOf(op))];
        }
        double compute = op.flops / std::max(1.0, mults);
        // Data-movement ops still occupy their datapath for the stream;
        // the stream width is the op's full lane allocation (its FU
        // class's lanes on specialized designs).
        double stream =
            static_cast<double>(op.outputWords) / std::max(1.0, mults);
        dur[id] = std::max(compute, stream);
    }

    // Longest path: pipelined edges overlap all but one granule; material-
    // ized edges serialize producer and consumer.
    std::map<OpId, double> finish;
    double group_finish = 0.0;
    for (OpId id : ops) {  // ops is a topological window
        double start = 0.0;
        for (const auto &e : out.internalEdges) {
            if (e.to != id)
                continue;
            double p_finish = finish.count(e.from) ? finish[e.from] : 0.0;
            if (e.mode == EdgeMode::Materialized) {
                start = std::max(start, p_finish);
            } else {
                double p_start = p_finish - dur[e.from];
                double fill = dur[e.from] /
                              std::max<u64>(1, chunkCount(g.op(e.from), cfg));
                start = std::max(start, p_start + fill);
            }
        }
        finish[id] = start + dur[id];
        group_finish = std::max(group_finish, finish[id]);
    }

    // On specialized hardware, same-class work also serializes on the
    // shared units even when the path would allow overlap.
    if (!cfg.homogeneous) {
        double class_flops[hw::kFuClassCount] = {0, 0, 0, 0};
        for (OpId id : ops)
            class_flops[static_cast<u32>(fuClassOf(g.op(id)))] +=
                g.op(id).flops;
        for (u32 k = 0; k < hw::kFuClassCount; ++k)
            group_finish = std::max(
                group_finish, class_flops[k] / std::max(1.0, class_mults[k]));
    }

    out.computeCycles = group_finish;
    out.cycles = std::max({group_finish, dramCycles(cfg, out.dramWords),
                           sramCycles(cfg, out.sramWords),
                           nocCycles(cfg, out.nocWords)});
    return true;
}

}  // namespace crophe::sched
