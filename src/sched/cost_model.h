#ifndef CROPHE_SCHED_COST_MODEL_H_
#define CROPHE_SCHED_COST_MODEL_H_

/**
 * @file
 * Workload-level cost aggregation (Section V-D, "hardware cost model"),
 * including the CROPHE-p data-parallel cluster model and the resource
 * utilization figures of Table IV.
 */

#include <string>
#include <vector>

#include "graph/workloads.h"
#include "sched/group.h"

namespace crophe::sched {

/** End-to-end result for one workload on one design. */
struct WorkloadResult
{
    std::string workload;
    std::string design;
    u32 clusters = 1;
    SchedStats stats;                 ///< aggregate over all segments × reps
    double seconds = 0.0;             ///< wall time at the config frequency
    std::vector<std::pair<std::string, SchedStats>> perSegment;
    /** True when any segment schedule was deadline-truncated (anytime
     *  greedy fallback rather than the exact search, DESIGN.md §9). */
    bool degraded = false;
    /** Rotation scheme the search settled on ("Hybrid r=4"); empty when
     *  no rotation-scheme search ran (MAD path, plain scheduleWorkload). */
    std::string rotScheme;
    /** Key-switch dataflow the search settled on ("fused"); empty when no
     *  rotation-scheme search ran. */
    std::string ksDataflow;
};

/** Fraction of a segment's DRAM words that are shared aux constants. */
u64 segmentAuxDramWords(const Schedule &sched);

/**
 * Aggregate per-segment schedules into a workload result.
 *
 * With @p clusters > 1 (CROPHE-p), each cluster (scheduled on numPes /
 * clusters) runs a different repetition in data-parallel fashion, and the
 * aux constants (evks) are fetched once per co-running set when
 * @p share_aux is set.
 */
WorkloadResult aggregateWorkload(
    const graph::Workload &w, const hw::HwConfig &cfg,
    const std::vector<Schedule> &segment_schedules, u32 clusters,
    bool share_aux);

/** Fill the utilization fields of @p stats for hardware @p cfg. */
void fillUtilization(SchedStats &stats, const hw::HwConfig &cfg);

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_COST_MODEL_H_
