#ifndef CROPHE_SCHED_ENUMERATOR_H_
#define CROPHE_SCHED_ENUMERATOR_H_

/**
 * @file
 * Bottom-up spatial-group candidate enumeration (Section V-D).
 *
 * Candidates are contiguous windows of the topological order, up to the
 * configured maximum size. Analysis results are memoized by structural
 * hash so that the many isomorphic subgraphs of FHE workloads (every
 * KeySwitch looks alike) are each analyzed only once — the paper's
 * redundant-subgraph merging.
 *
 * The memo can be SHARED across enumerators (the nttDecomp / rotation /
 * cluster sweeps all schedule near-identical graphs): GroupMemo is a
 * thread-safe store keyed by a context-extended structural hash. The
 * extension folds in each window op's external-producer volumes (the only
 * out-of-window data analyzeSpatialGroup reads) plus the hardware digest
 * and MAD flag, making the memo value a pure function of its key — so
 * concurrent insert races are benign and sharing is deterministic.
 */

#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/group.h"

namespace crophe::sched {

/**
 * Thread-safe canonical-group store shared across enumerators.
 * Values are canonical (position-indexed) analyses; nullopt = infeasible.
 */
class GroupMemo
{
  public:
    GroupMemo() = default;
    GroupMemo(const GroupMemo &) = delete;
    GroupMemo &operator=(const GroupMemo &) = delete;

    /** Copies the entry for @p key into @p out; false when absent. */
    bool lookup(u64 key, std::optional<SpatialGroup> &out) const;

    /**
     * Insert-if-absent. Returns true when this call created the entry (an
     * "analyzed" event); false when an equal entry already existed — the
     * caller raced another analysis of the same key and is counted as a
     * memo hit, keeping analyzed/hit totals deterministic for any thread
     * count (analyzed sums to the number of unique keys).
     */
    bool insert(u64 key, std::optional<SpatialGroup> value);

    /** Unique keys stored. */
    u64 size() const;

  private:
    mutable std::mutex mu_;
    std::unordered_map<u64, std::optional<SpatialGroup>> map_;
};

/** Memoizing candidate factory over one graph. */
class GroupEnumerator
{
  public:
    /**
     * @param shared memo to consult/populate; nullptr = private memo.
     */
    GroupEnumerator(const graph::Graph &g, const hw::HwConfig &cfg, bool mad,
                    u32 max_ops, GroupMemo *shared = nullptr);

    const graph::Graph &graph() const { return *g_; }
    const hw::HwConfig &config() const { return *cfg_; }
    const std::vector<graph::OpId> &topo() const { return topo_; }
    u32 maxOps() const { return maxOps_; }

    /**
     * Analyzed group for topo window [begin, begin+len); nullptr when the
     * window exceeds the graph or is infeasible.
     */
    const SpatialGroup *window(u32 begin, u32 len);

    /** Unique subgraph analyses performed (memoization effectiveness). */
    u64 analyzedCount() const { return analyzed_; }
    u64 memoHits() const { return hits_; }

  private:
    u64 windowKey(const std::vector<graph::OpId> &ops) const;

    const graph::Graph *g_;
    const hw::HwConfig *cfg_;
    bool mad_;
    u32 maxOps_;
    std::vector<graph::OpId> topo_;
    u64 cfgKey_;  ///< configDigest ⊕ mad, folded into every memo key
    GroupMemo ownMemo_;
    GroupMemo *memo_;  ///< shared store, or &ownMemo_
    /** window key (begin*K+len) -> materialized result with real op ids. */
    std::unordered_map<u64, std::optional<SpatialGroup>> byWindow_;
    u64 analyzed_ = 0;
    u64 hits_ = 0;
};

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_ENUMERATOR_H_
