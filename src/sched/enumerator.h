#ifndef CROPHE_SCHED_ENUMERATOR_H_
#define CROPHE_SCHED_ENUMERATOR_H_

/**
 * @file
 * Bottom-up spatial-group candidate enumeration (Section V-D).
 *
 * Candidates are contiguous windows of the topological order, up to the
 * configured maximum size. Analysis results are memoized by structural
 * hash so that the many isomorphic subgraphs of FHE workloads (every
 * KeySwitch looks alike) are each analyzed only once — the paper's
 * redundant-subgraph merging.
 */

#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/group.h"

namespace crophe::sched {

/** Memoizing candidate factory over one graph. */
class GroupEnumerator
{
  public:
    GroupEnumerator(const graph::Graph &g, const hw::HwConfig &cfg, bool mad,
                    u32 max_ops);

    const graph::Graph &graph() const { return *g_; }
    const std::vector<graph::OpId> &topo() const { return topo_; }
    u32 maxOps() const { return maxOps_; }

    /**
     * Analyzed group for topo window [begin, begin+len); nullptr when the
     * window exceeds the graph or is infeasible.
     */
    const SpatialGroup *window(u32 begin, u32 len);

    /** Unique subgraph analyses performed (memoization effectiveness). */
    u64 analyzedCount() const { return analyzed_; }
    u64 memoHits() const { return hits_; }

  private:
    const graph::Graph *g_;
    const hw::HwConfig *cfg_;
    bool mad_;
    u32 maxOps_;
    std::vector<graph::OpId> topo_;
    /** structural hash -> analysis (nullopt = infeasible). */
    std::unordered_map<u64, std::optional<SpatialGroup>> memo_;
    /** window key (begin*K+len) -> materialized result with real op ids. */
    std::unordered_map<u64, std::optional<SpatialGroup>> byWindow_;
    u64 analyzed_ = 0;
    u64 hits_ = 0;
};

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_ENUMERATOR_H_
