#include "sched/loopnest.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace crophe::sched {

using graph::Op;
using graph::OpId;
using graph::OpKind;
using graph::StreamAxis;

namespace {

bool
isSlotAxis(StreamAxis a)
{
    return a == StreamAxis::SlotN || a == StreamAxis::SlotN1 ||
           a == StreamAxis::SlotN2;
}

/** Can two concrete axes drive one shared top loop? */
bool
axisPairMatches(StreamAxis p, StreamAxis c)
{
    if (p == c)
        return true;
    // A full-N streamer can follow any slot sub-loop and vice versa; the
    // two *different* tiled axes N1 vs N2 cannot match (Figure 7's
    // mid-decomposition switch).
    if (p == StreamAxis::SlotN && isSlotAxis(c))
        return true;
    if (c == StreamAxis::SlotN && isSlotAxis(p))
        return true;
    return false;
}

/** Best shared axis: slot-style preferred (finest granule). */
bool
bestSharedAxis(const Op &p, const Op &c, bool &slot_style)
{
    bool found = false;
    slot_style = false;
    for (StreamAxis pa : p.streamAxes) {
        for (StreamAxis ca : c.streamAxes) {
            if (!axisPairMatches(pa, ca))
                continue;
            found = true;
            if (isSlotAxis(pa) && isSlotAxis(ca))
                slot_style = true;
        }
    }
    return found;
}

}  // namespace

bool
axesCompatible(const Op &producer, const Op &consumer)
{
    bool slot_style = false;
    return bestSharedAxis(producer, consumer, slot_style);
}

EdgePlan
planEdge(const graph::Graph &g, OpId from, OpId to, const hw::HwConfig &cfg)
{
    const Op &p = g.op(from);
    const Op &c = g.op(to);

    EdgePlan plan;
    plan.from = from;
    plan.to = to;
    plan.volumeWords = p.outputWords;

    if (c.kind == OpKind::Transpose) {
        // Served by the dedicated transpose unit: a full orientation switch,
        // but its staging SRAM is the unit's own few-MB buffer, not the
        // global buffer (Section IV-A).
        plan.mode = EdgeMode::Materialized;
        plan.granuleWords = plan.volumeWords;
        plan.bufferWords = 0;
        return plan;
    }

    bool slot_style = false;
    if (!bestSharedAxis(p, c, slot_style)) {
        // Orientation switch: the consumer iterates the data in an order
        // the producer cannot emit (e.g. limb-major iNTT feeding
        // coefficient-major BConv). The tensor must be materialized.
        plan.mode = EdgeMode::Materialized;
        plan.granuleWords = plan.volumeWords;
        plan.bufferWords = plan.volumeWords;
        return plan;
    }

    plan.mode = EdgeMode::Pipelined;
    if (slot_style) {
        // Finest granule: a lane-width slice per co-iterated limb row.
        plan.granuleWords = std::max<u64>(1, std::min<u64>(p.n, cfg.lanes));
        plan.bufferWords =
            2 * plan.granuleWords * std::min<u64>(std::max<u32>(1, p.limbsOut), 4);
    } else {
        // Limb-axis pipelining: one limb (N words) per chunk.
        plan.granuleWords = std::max<u64>(1, p.n);
        plan.bufferWords = 2 * plan.granuleWords;
    }
    return plan;
}

u64
chunkCount(const Op &op, const hw::HwConfig &cfg)
{
    u64 words = std::max<u64>(op.outputWords, op.inputWords);
    if (words == 0)
        return 1;
    u64 granule = std::max<u64>(1, cfg.lanes);
    u64 chunks = ceilDiv(words, granule);
    // Cap so discrete-event simulation stays tractable; latency fidelity
    // at this granularity is unaffected (chunks remain >> pipeline depth).
    return std::clamp<u64>(chunks, 1, 64);
}

}  // namespace crophe::sched
