#ifndef CROPHE_SCHED_SCHEDULER_H_
#define CROPHE_SCHED_SCHEDULER_H_

/**
 * @file
 * The CROPHE scheduler (Section V-D): bottom-up composition of spatial
 * groups via dynamic programming over the topological order, temporal
 * grouping for on-chip aux residency, NTT-decomposition choice, and the
 * CROPHE-p data-parallel cluster decision.
 */

#include "graph/workloads.h"
#include "sched/cost_model.h"
#include "sched/group.h"

namespace crophe::sched {

/**
 * Schedule one graph (a workload segment) on @p cfg.
 *
 * When opt.nttDecomp is set, every candidate N1 factor of the NTT
 * decomposition is tried (including no decomposition) and the cheapest
 * schedule wins.
 *
 * When opt.planCache is set, the whole search is keyed by (graph digest,
 * hardware digest, options digest): a hit returns the previously found
 * schedule byte-for-byte; a miss runs the search and stores the result
 * (DESIGN.md §8).
 */
Schedule scheduleGraph(const graph::Graph &g, const hw::HwConfig &cfg,
                       const SchedOptions &opt);

/**
 * Schedule a full workload: each unique segment once (redundancy
 * merging), then aggregate over repetitions. With opt.clusters > 1 the
 * segments are scheduled on a cluster-sized slice of the chip and run
 * data-parallel (CROPHE-p).
 */
WorkloadResult scheduleWorkload(const graph::Workload &w,
                                const hw::HwConfig &cfg,
                                const SchedOptions &opt);

/**
 * CROPHE-p: try cluster counts {1, 2, 4} and return the fastest result
 * (the scheduler "automatically determines" the partitioning,
 * Section VII-A).
 */
WorkloadResult scheduleWorkloadAutoClusters(const graph::Workload &w,
                                            const hw::HwConfig &cfg,
                                            const SchedOptions &opt);

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_SCHEDULER_H_
