#include "sched/enumerator.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace crophe::sched {

using graph::OpId;

bool
GroupMemo::lookup(u64 key, std::optional<SpatialGroup> &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end())
        return false;
    out = it->second;
    return true;
}

bool
GroupMemo::insert(u64 key, std::optional<SpatialGroup> value)
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.emplace(key, std::move(value)).second;
}

u64
GroupMemo::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

GroupEnumerator::GroupEnumerator(const graph::Graph &g,
                                 const hw::HwConfig &cfg, bool mad,
                                 u32 max_ops, GroupMemo *shared)
    : g_(&g), cfg_(&cfg), mad_(mad), maxOps_(max_ops),
      topo_(g.topoOrderAuxAffinity()), memo_(shared ? shared : &ownMemo_)
{
    CROPHE_ASSERT(maxOps_ >= 1, "maxOps must be positive");
    u64 h = hw::configDigest(cfg);
    h ^= (mad ? 0x9e3779b97f4a7c15ull : 0) + (h << 6) + (h >> 2);
    h *= 1099511628211ull;
    cfgKey_ = h;
}

namespace {

/** Convert an analyzed group to a position-indexed canonical form. */
SpatialGroup
canonicalize(const SpatialGroup &group, const std::vector<OpId> &window)
{
    std::map<OpId, OpId> pos;
    for (u32 i = 0; i < window.size(); ++i)
        pos[window[i]] = i;
    SpatialGroup out = group;
    for (auto &a : out.allocs)
        a.op = pos.at(a.op);
    for (auto &e : out.internalEdges) {
        e.from = pos.at(e.from);
        e.to = pos.at(e.to);
    }
    return out;
}

/** Re-bind a canonical group to concrete window op ids. */
SpatialGroup
materialize(const SpatialGroup &canonical, const std::vector<OpId> &window)
{
    SpatialGroup out = canonical;
    for (auto &a : out.allocs)
        a.op = window[a.op];
    for (auto &e : out.internalEdges) {
        e.from = window[e.from];
        e.to = window[e.to];
    }
    return out;
}

}  // namespace

u64
GroupEnumerator::windowKey(const std::vector<OpId> &ops) const
{
    // Structural hash extended with everything analyzeSpatialGroup reads
    // from OUTSIDE the window: each op's external producers contribute
    // their output volume and Input-kind flag (they are charged to
    // SRAM/DRAM traffic), and the hardware/MAD context is folded in so one
    // store can serve many configs. Without the extension, two windows
    // with equal internal structure but different upstream volumes would
    // collide — and a shared memo would then return whichever analysis was
    // inserted first, making results depend on thread timing.
    u64 h = g_->structuralHash(ops);
    auto mix = [&h](u64 v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 1099511628211ull;
    };
    std::vector<OpId> sorted(ops.begin(), ops.end());
    std::sort(sorted.begin(), sorted.end());
    auto inside = [&sorted](OpId id) {
        return std::binary_search(sorted.begin(), sorted.end(), id);
    };
    for (OpId id : ops) {
        for (OpId p : g_->producers(id)) {
            if (inside(p))
                continue;
            const graph::Op &prod = g_->op(p);
            mix(prod.outputWords);
            mix(prod.kind == graph::OpKind::Input ? 1 : 0);
        }
    }
    mix(cfgKey_);
    return h;
}

const SpatialGroup *
GroupEnumerator::window(u32 begin, u32 len)
{
    if (len == 0 || len > maxOps_ || begin + len > topo_.size())
        return nullptr;

    u64 wkey = static_cast<u64>(begin) * (maxOps_ + 1) + len;
    auto wit = byWindow_.find(wkey);
    if (wit != byWindow_.end())
        return wit->second ? &*wit->second : nullptr;

    std::vector<OpId> ops(topo_.begin() + begin, topo_.begin() + begin + len);
    u64 h = windowKey(ops);

    std::optional<SpatialGroup> canonical;
    std::optional<SpatialGroup> result;
    if (memo_->lookup(h, canonical)) {
        ++hits_;
        if (canonical)
            result = materialize(*canonical, ops);
    } else {
        SpatialGroup group;
        bool feasible = analyzeSpatialGroup(*g_, ops, *cfg_, mad_, group);
        bool inserted = memo_->insert(
            h, feasible ? std::optional<SpatialGroup>(
                              canonicalize(group, ops))
                        : std::nullopt);
        // Losing the insert race counts as a hit: the winner's entry is
        // identical (the memo value is a pure function of the key), so
        // analyzed totals stay equal to the number of unique keys no
        // matter how threads interleave.
        if (inserted)
            ++analyzed_;
        else
            ++hits_;
        if (feasible)
            result = std::move(group);
    }

    auto [it, ok] = byWindow_.emplace(wkey, std::move(result));
    (void)ok;
    return it->second ? &*it->second : nullptr;
}

}  // namespace crophe::sched
