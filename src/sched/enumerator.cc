#include "sched/enumerator.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace crophe::sched {

using graph::OpId;

GroupEnumerator::GroupEnumerator(const graph::Graph &g,
                                 const hw::HwConfig &cfg, bool mad,
                                 u32 max_ops)
    : g_(&g), cfg_(&cfg), mad_(mad), maxOps_(max_ops),
      topo_(g.topoOrderAuxAffinity())
{
    CROPHE_ASSERT(maxOps_ >= 1, "maxOps must be positive");
}

namespace {

/** Convert an analyzed group to a position-indexed canonical form. */
SpatialGroup
canonicalize(const SpatialGroup &group, const std::vector<OpId> &window)
{
    std::map<OpId, OpId> pos;
    for (u32 i = 0; i < window.size(); ++i)
        pos[window[i]] = i;
    SpatialGroup out = group;
    for (auto &a : out.allocs)
        a.op = pos.at(a.op);
    for (auto &e : out.internalEdges) {
        e.from = pos.at(e.from);
        e.to = pos.at(e.to);
    }
    return out;
}

/** Re-bind a canonical group to concrete window op ids. */
SpatialGroup
materialize(const SpatialGroup &canonical, const std::vector<OpId> &window)
{
    SpatialGroup out = canonical;
    for (auto &a : out.allocs)
        a.op = window[a.op];
    for (auto &e : out.internalEdges) {
        e.from = window[e.from];
        e.to = window[e.to];
    }
    return out;
}

}  // namespace

const SpatialGroup *
GroupEnumerator::window(u32 begin, u32 len)
{
    if (len == 0 || len > maxOps_ || begin + len > topo_.size())
        return nullptr;

    u64 wkey = static_cast<u64>(begin) * (maxOps_ + 1) + len;
    auto wit = byWindow_.find(wkey);
    if (wit != byWindow_.end())
        return wit->second ? &*wit->second : nullptr;

    std::vector<OpId> ops(topo_.begin() + begin, topo_.begin() + begin + len);
    u64 h = g_->structuralHash(ops);

    auto mit = memo_.find(h);
    std::optional<SpatialGroup> result;
    if (mit != memo_.end()) {
        ++hits_;
        if (mit->second)
            result = materialize(*mit->second, ops);
    } else {
        ++analyzed_;
        SpatialGroup group;
        if (analyzeSpatialGroup(*g_, ops, *cfg_, mad_, group)) {
            memo_.emplace(h, canonicalize(group, ops));
            result = std::move(group);
        } else {
            memo_.emplace(h, std::nullopt);
        }
    }

    auto [it, ok] = byWindow_.emplace(wkey, std::move(result));
    (void)ok;
    return it->second ? &*it->second : nullptr;
}

}  // namespace crophe::sched
