#ifndef CROPHE_SCHED_LOOPNEST_H_
#define CROPHE_SCHED_LOOPNEST_H_

/**
 * @file
 * Loop-nest matching for fine-grained pipelining/sharing (Section V-A).
 *
 * Fine-grained forwarding between two operators requires them to iterate
 * their shared data in the same order at the top loop levels. Operators
 * advertise the axes they can keep outermost (graph::StreamAxis); this
 * module decides edge-level compatibility and the resulting forwarding
 * granule, and flags orientation switches (Section V-B) that force full
 * materialization.
 */

#include <vector>

#include "graph/graph.h"
#include "hw/config.h"

namespace crophe::sched {

/** How one producer→consumer edge inside a group is realized. */
enum class EdgeMode : u8
{
    Pipelined,     ///< fine-grained chunk forwarding (matched loops)
    Materialized,  ///< full tensor buffered (orientation switch)
};

/** Analysis result for one edge. */
struct EdgePlan
{
    graph::OpId from = graph::kNoOp;
    graph::OpId to = graph::kNoOp;
    EdgeMode mode = EdgeMode::Pipelined;
    u64 volumeWords = 0;   ///< full tensor volume
    u64 granuleWords = 0;  ///< forwarded chunk size when pipelined
    u64 bufferWords = 0;   ///< SRAM/regfile residency this edge needs
};

/**
 * Shared streaming axis of two operators, if any. SlotN matches SlotN1 and
 * SlotN2 (a tiled sub-loop of N); SlotN1 never matches SlotN2 — that is
 * exactly the mid-decomposition orientation switch of Figure 7.
 */
bool axesCompatible(const graph::Op &producer, const graph::Op &consumer);

/**
 * Plan one intra-group edge. The granule is one streaming chunk:
 * `lanes` words per limb row for SlotN-style streaming, or one limb
 * (n words) when only the limb axis matches.
 */
EdgePlan planEdge(const graph::Graph &g, graph::OpId from, graph::OpId to,
                  const hw::HwConfig &cfg);

/**
 * Chunk count used to pipeline/simulate @p op: the number of granules its
 * output decomposes into, capped so event-driven simulation stays cheap.
 */
u64 chunkCount(const graph::Op &op, const hw::HwConfig &cfg);

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_LOOPNEST_H_
