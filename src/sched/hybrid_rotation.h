#ifndef CROPHE_SCHED_HYBRID_ROTATION_H_
#define CROPHE_SCHED_HYBRID_ROTATION_H_

/**
 * @file
 * Hybrid-rotation search (Sections V-C, V-D).
 *
 * r_hyb changes the workload graph itself (coarse Min-KS chain + fine
 * hoisted steps), so the scheduler enumerates it "at the very beginning":
 * one workload graph is generated per candidate r_hyb and each is
 * scheduled independently; the cheapest wins.
 */

#include <vector>

#include "graph/workloads.h"
#include "sched/cost_model.h"
#include "sched/group.h"

namespace crophe::sched {

/** Outcome of the rotation-scheme search. */
struct RotationChoice
{
    graph::RotMode mode = graph::RotMode::MinKs;
    u32 rHyb = 0;
    WorkloadResult result;
};

/** Candidate r_hyb values (powers of two up to a sane baby-step bound). */
std::vector<u32> rHybCandidates(u32 n1_max = 16);

/**
 * Build the workload named @p workload for every rotation scheme allowed
 * by @p allow_hybrid (always including Min-KS and Hoisting) and return the
 * fastest on @p cfg.
 */
RotationChoice chooseRotationScheme(const std::string &workload,
                                    const graph::FheParams &params,
                                    const hw::HwConfig &cfg,
                                    const SchedOptions &opt,
                                    bool allow_hybrid);

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_HYBRID_ROTATION_H_
