#ifndef CROPHE_SCHED_HYBRID_ROTATION_H_
#define CROPHE_SCHED_HYBRID_ROTATION_H_

/**
 * @file
 * Rotation-scheme × key-switch-dataflow search (Sections V-C, V-D and
 * DESIGN.md §15).
 *
 * Both knobs change the workload graph itself (coarse Min-KS chain + fine
 * hoisted steps; fused vs CiFlow-reordered key-switch pipelines), so the
 * scheduler enumerates them "at the very beginning": one workload graph
 * is generated per (rotation scheme, ks dataflow) candidate and each is
 * scheduled independently; the cheapest wins. SchedOptions::rotSchemeMask
 * and ::ksDataflowMask restrict the cross product (CLI --rot-schemes /
 * --ks-dataflows).
 */

#include <string>
#include <vector>

#include "graph/workloads.h"
#include "sched/cost_model.h"
#include "sched/group.h"

namespace crophe::sched {

/** Outcome of the rotation-scheme search. */
struct RotationChoice
{
    graph::RotMode mode = graph::RotMode::MinKs;
    u32 rHyb = 0;
    graph::KsDataflow ksDataflow = graph::KsDataflow::Fused;
    WorkloadResult result;
};

/** Candidate r_hyb values (powers of two up to a sane baby-step bound). */
std::vector<u32> rHybCandidates(u32 n1_max = 16);

/**
 * Parse a comma-separated rotation-scheme filter into a RotMode bitmask
 * for SchedOptions::rotSchemeMask. Accepted names: minks, hoisting,
 * hybrid, triple (or all). Throws RecoverableError naming the offending
 * token on anything else, and on an empty result.
 */
u32 parseRotSchemes(const std::string &spec);

/**
 * Parse a comma-separated key-switch-dataflow filter into a KsDataflow
 * bitmask for SchedOptions::ksDataflowMask. Accepted names: fused, ostat,
 * reordup (or all). Same error contract as parseRotSchemes.
 */
u32 parseKsDataflows(const std::string &spec);

/**
 * Build the workload named @p workload for every (rotation scheme,
 * key-switch dataflow) pair allowed by @p allow_hybrid and the masks in
 * @p opt, and return the fastest on @p cfg. Ties resolve first-wins in
 * candidate order (Fused before the CiFlow dataflows within each scheme),
 * so enlarging the space never flips a tie away from the legacy winner.
 */
RotationChoice chooseRotationScheme(const std::string &workload,
                                    const graph::FheParams &params,
                                    const hw::HwConfig &cfg,
                                    const SchedOptions &opt,
                                    bool allow_hybrid);

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_HYBRID_ROTATION_H_
