#ifndef CROPHE_SCHED_DATAFLOW_REPORT_H_
#define CROPHE_SCHED_DATAFLOW_REPORT_H_

/**
 * @file
 * Human-readable dataflow result output (Section VI: "The scheduler
 * outputs a dataflow result file that details the optimized
 * spatial/temporal pipelining/sharing schemes for all the operators").
 */

#include <string>

#include "sched/group.h"

namespace crophe::sched {

/** Render one schedule as a dataflow result report. */
std::string dataflowReport(const Schedule &sched, const hw::HwConfig &cfg);

/** Write the report to @p path; returns false on I/O failure. */
bool writeDataflowReport(const Schedule &sched, const hw::HwConfig &cfg,
                         const std::string &path);

}  // namespace crophe::sched

#endif  // CROPHE_SCHED_DATAFLOW_REPORT_H_
