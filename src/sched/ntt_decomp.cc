#include "sched/ntt_decomp.h"

#include <map>

#include "common/logging.h"
#include "common/math_util.h"
#include "graph/op.h"

namespace crophe::sched {

using graph::Graph;
using graph::Op;
using graph::OpId;
using graph::OpKind;

std::vector<u64>
nttDecompositionOptions(u64 n, u32 lanes)
{
    std::vector<u64> options;
    if (!isPow2(n))
        return options;
    for (u64 n1 = lanes; n1 * lanes <= n; n1 <<= 1)
        options.push_back(n1);
    return options;
}

Graph
rewriteNttDecomposition(const Graph &g, u64 n1)
{
    Graph out;
    // first/last node of each original op in the rewritten graph.
    std::map<OpId, OpId> head, tail;

    for (OpId id : g.topoOrder()) {
        const Op &op = g.op(id);
        bool is_fwd = op.kind == OpKind::Ntt;
        bool is_inv = op.kind == OpKind::INtt;
        if ((is_fwd || is_inv) && op.n % n1 == 0 && op.n / n1 >= 2) {
            const u64 n2 = op.n / n1;
            OpId col = out.add(graph::makeNttStep(
                is_fwd ? OpKind::NttCol : OpKind::INttCol, n1, n2,
                op.limbsIn));
            OpId tw = out.add(graph::makeTwiddle(op.n, op.limbsIn));
            OpId tr = out.add(graph::makeTranspose(op.n, op.limbsIn));
            OpId row = out.add(graph::makeNttStep(
                is_fwd ? OpKind::NttRow : OpKind::INttRow, n1, n2,
                op.limbsIn));
            out.connect(col, tw);
            out.connect(tw, tr);
            out.connect(tr, row);
            head[id] = col;
            tail[id] = row;
        } else {
            OpId nid = out.add(op);
            head[id] = nid;
            tail[id] = nid;
        }
    }

    for (OpId id = 0; id < g.size(); ++id)
        for (OpId c : g.consumers(id))
            out.connect(tail[id], head[c]);
    return out;
}

u32
countMonolithicNtts(const Graph &g)
{
    u32 count = 0;
    for (const auto &op : g.ops())
        if (op.kind == OpKind::Ntt || op.kind == OpKind::INtt)
            ++count;
    return count;
}

}  // namespace crophe::sched
