#include "sched/hybrid_rotation.h"

#include <limits>

#include "sched/scheduler.h"
#include "telemetry/search_telemetry.h"

namespace crophe::sched {

std::vector<u32>
rHybCandidates(u32 n1_max)
{
    std::vector<u32> out;
    for (u32 r = 2; r <= n1_max; r <<= 1)
        out.push_back(r);
    return out;
}

RotationChoice
chooseRotationScheme(const std::string &workload,
                     const graph::FheParams &params, const hw::HwConfig &cfg,
                     const SchedOptions &opt, bool allow_hybrid)
{
    RotationChoice best;
    best.result.stats.cycles = std::numeric_limits<double>::infinity();

    auto consider = [&](graph::RotMode mode, u32 r_hyb) {
        graph::WorkloadOptions wopt;
        wopt.rotMode = mode;
        wopt.rHyb = r_hyb;
        graph::Workload w = graph::buildWorkload(workload, params, wopt);
        WorkloadResult res = scheduleWorkload(w, cfg, opt);
        if (opt.search != nullptr) {
            std::string label = mode == graph::RotMode::MinKs ? "rot=minks"
                                : mode == graph::RotMode::Hoisting
                                    ? "rot=hoisting"
                                    : "rot=hybrid r=" + std::to_string(r_hyb);
            opt.search->recordCandidate(workload + "/" + label,
                                       res.stats.cycles);
        }
        if (res.stats.cycles < best.result.stats.cycles) {
            best.mode = mode;
            best.rHyb = r_hyb;
            best.result = std::move(res);
        }
    };

    consider(graph::RotMode::MinKs, 0);
    consider(graph::RotMode::Hoisting, 0);
    if (allow_hybrid)
        for (u32 r : rHybCandidates())
            consider(graph::RotMode::Hybrid, r);
    return best;
}

}  // namespace crophe::sched
