#include "sched/hybrid_rotation.h"

#include <limits>
#include <memory>

#include "common/error.h"
#include "common/parallel.h"
#include "sched/enumerator.h"
#include "sched/scheduler.h"
#include "telemetry/search_telemetry.h"

namespace crophe::sched {

std::vector<u32>
rHybCandidates(u32 n1_max)
{
    std::vector<u32> out;
    for (u32 r = 2; r <= n1_max; r <<= 1)
        out.push_back(r);
    return out;
}

namespace {

/** Search-label spelling of a rotation candidate (also the CLI name). */
std::string
rotLabel(graph::RotMode mode, u32 r_hyb)
{
    switch (mode) {
      case graph::RotMode::MinKs: return "minks";
      case graph::RotMode::Hoisting: return "hoisting";
      case graph::RotMode::Hybrid:
        return "hybrid r=" + std::to_string(r_hyb);
      case graph::RotMode::TripleHoisted: return "triple";
    }
    return "?";
}

/** Comma-split @p spec and map each token through @p bit_of ("all" = all
 *  bits of @p all_mask); user input, so unknown tokens throw. */
template <typename BitOf>
u32
parseMask(const std::string &flag, const std::string &spec, u32 all_mask,
          BitOf bit_of)
{
    u32 mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        if (!token.empty()) {
            if (token == "all")
                mask |= all_mask;
            else
                mask |= bit_of(token);
        }
        pos = comma + 1;
    }
    if (mask == 0)
        throw RecoverableError(flag + ": empty filter '" + spec + "'");
    return mask;
}

}  // namespace

u32
parseRotSchemes(const std::string &spec)
{
    return parseMask("--rot-schemes", spec, 0xF, [](const std::string &t) {
        if (t == "minks")
            return 1u << static_cast<u32>(graph::RotMode::MinKs);
        if (t == "hoisting")
            return 1u << static_cast<u32>(graph::RotMode::Hoisting);
        if (t == "hybrid")
            return 1u << static_cast<u32>(graph::RotMode::Hybrid);
        if (t == "triple")
            return 1u << static_cast<u32>(graph::RotMode::TripleHoisted);
        // User input (CLI filter), not an invariant: recoverable.
        throw RecoverableError("--rot-schemes: unknown scheme '" + t +
                               "' (want minks|hoisting|hybrid|triple|all)");
    });
}

u32
parseKsDataflows(const std::string &spec)
{
    return parseMask(
        "--ks-dataflows", spec, 0x7, [](const std::string &t) {
            if (t == "fused")
                return 1u << static_cast<u32>(graph::KsDataflow::Fused);
            if (t == "ostat")
                return 1u
                       << static_cast<u32>(
                              graph::KsDataflow::OutputStationary);
            if (t == "reordup")
                return 1u
                       << static_cast<u32>(graph::KsDataflow::ReorderedModUp);
            throw RecoverableError("--ks-dataflows: unknown dataflow '" + t +
                                   "' (want fused|ostat|reordup|all)");
        });
}

RotationChoice
chooseRotationScheme(const std::string &workload,
                     const graph::FheParams &params, const hw::HwConfig &cfg,
                     const SchedOptions &opt, bool allow_hybrid)
{
    RotationChoice best;
    best.result.stats.cycles = std::numeric_limits<double>::infinity();

    // The (rotation scheme × ks dataflow) candidates are independent
    // searches. Evaluate them in parallel into per-candidate slots, then
    // record telemetry and reduce on this thread in candidate order — the
    // sequential sweep's first-wins tie-breaking, bit for bit. Dataflows
    // iterate innermost with Fused first, so on a tie the legacy
    // (per-scheme Fused) winner still wins.
    struct Candidate
    {
        graph::RotMode mode;
        u32 rHyb;
        graph::KsDataflow df;
    };
    std::vector<graph::KsDataflow> dfs;
    for (graph::KsDataflow df :
         {graph::KsDataflow::Fused, graph::KsDataflow::OutputStationary,
          graph::KsDataflow::ReorderedModUp}) {
        if (opt.ksDataflowMask & (1u << static_cast<u32>(df)))
            dfs.push_back(df);
    }
    if (dfs.empty())
        throw RecoverableError(
            "key-switch dataflow mask excludes every dataflow");
    auto allows = [&opt](graph::RotMode m) {
        return (opt.rotSchemeMask >> static_cast<u32>(m)) & 1u;
    };
    std::vector<Candidate> cands;
    auto push_scheme = [&](graph::RotMode mode, u32 r) {
        for (graph::KsDataflow df : dfs)
            cands.push_back({mode, r, df});
    };
    if (allows(graph::RotMode::MinKs))
        push_scheme(graph::RotMode::MinKs, 0);
    if (allows(graph::RotMode::Hoisting))
        push_scheme(graph::RotMode::Hoisting, 0);
    if (allow_hybrid && allows(graph::RotMode::Hybrid))
        for (u32 r : rHybCandidates())
            push_scheme(graph::RotMode::Hybrid, r);
    if (allows(graph::RotMode::TripleHoisted))
        push_scheme(graph::RotMode::TripleHoisted, 0);
    if (cands.empty())
        throw RecoverableError(
            "rotation-scheme mask excludes every scheme for this design");

    // Rotation candidates rebuild largely identical graphs (the compute
    // pipeline around the rotations is unchanged), so they share one
    // group memo unless the caller already scoped one wider.
    GroupMemo local_memo;
    SchedOptions sopt = opt;
    if (sopt.memo == nullptr)
        sopt.memo = &local_memo;

    std::vector<std::unique_ptr<WorkloadResult>> results(cands.size());
    parallelFor(0, cands.size(), [&](u64 i) {
        graph::WorkloadOptions wopt;
        wopt.rotMode = cands[i].mode;
        wopt.rHyb = cands[i].rHyb;
        wopt.ksDataflow = cands[i].df;
        graph::Workload w = graph::buildWorkload(workload, params, wopt);
        results[i] = std::make_unique<WorkloadResult>(
            scheduleWorkload(w, cfg, sopt));
    });

    for (u64 i = 0; i < cands.size(); ++i) {
        WorkloadResult &res = *results[i];
        if (opt.search != nullptr) {
            std::string label =
                "rot=" + rotLabel(cands[i].mode, cands[i].rHyb) +
                " ks=" + graph::ksDataflowName(cands[i].df);
            opt.search->recordCandidate(workload + "/" + label,
                                        res.stats.cycles);
        }
        if (res.stats.cycles < best.result.stats.cycles) {
            best.mode = cands[i].mode;
            best.rHyb = cands[i].rHyb;
            best.ksDataflow = cands[i].df;
            best.result = std::move(res);
        }
    }
    if (opt.search != nullptr)
        opt.search->recordChoice(workload, rotLabel(best.mode, best.rHyb),
                                 static_cast<u32>(best.mode),
                                 graph::ksDataflowName(best.ksDataflow),
                                 static_cast<u32>(best.ksDataflow));
    return best;
}

}  // namespace crophe::sched
