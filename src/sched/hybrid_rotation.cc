#include "sched/hybrid_rotation.h"

#include <limits>
#include <memory>

#include "common/parallel.h"
#include "sched/enumerator.h"
#include "sched/scheduler.h"
#include "telemetry/search_telemetry.h"

namespace crophe::sched {

std::vector<u32>
rHybCandidates(u32 n1_max)
{
    std::vector<u32> out;
    for (u32 r = 2; r <= n1_max; r <<= 1)
        out.push_back(r);
    return out;
}

RotationChoice
chooseRotationScheme(const std::string &workload,
                     const graph::FheParams &params, const hw::HwConfig &cfg,
                     const SchedOptions &opt, bool allow_hybrid)
{
    RotationChoice best;
    best.result.stats.cycles = std::numeric_limits<double>::infinity();

    // Min-KS / Hoisting / hybrid-r candidates are independent searches.
    // Evaluate them in parallel into per-candidate slots, then record
    // telemetry and reduce on this thread in candidate order — the
    // sequential sweep's first-wins tie-breaking, bit for bit.
    struct Candidate
    {
        graph::RotMode mode;
        u32 rHyb;
    };
    std::vector<Candidate> cands;
    cands.push_back({graph::RotMode::MinKs, 0});
    cands.push_back({graph::RotMode::Hoisting, 0});
    if (allow_hybrid)
        for (u32 r : rHybCandidates())
            cands.push_back({graph::RotMode::Hybrid, r});

    // Rotation candidates rebuild largely identical graphs (the compute
    // pipeline around the rotations is unchanged), so they share one
    // group memo unless the caller already scoped one wider.
    GroupMemo local_memo;
    SchedOptions sopt = opt;
    if (sopt.memo == nullptr)
        sopt.memo = &local_memo;

    std::vector<std::unique_ptr<WorkloadResult>> results(cands.size());
    parallelFor(0, cands.size(), [&](u64 i) {
        graph::WorkloadOptions wopt;
        wopt.rotMode = cands[i].mode;
        wopt.rHyb = cands[i].rHyb;
        graph::Workload w = graph::buildWorkload(workload, params, wopt);
        results[i] = std::make_unique<WorkloadResult>(
            scheduleWorkload(w, cfg, sopt));
    });

    for (u64 i = 0; i < cands.size(); ++i) {
        WorkloadResult &res = *results[i];
        if (opt.search != nullptr) {
            std::string label =
                cands[i].mode == graph::RotMode::MinKs ? "rot=minks"
                : cands[i].mode == graph::RotMode::Hoisting
                    ? "rot=hoisting"
                    : "rot=hybrid r=" + std::to_string(cands[i].rHyb);
            opt.search->recordCandidate(workload + "/" + label,
                                        res.stats.cycles);
        }
        if (res.stats.cycles < best.result.stats.cycles) {
            best.mode = cands[i].mode;
            best.rHyb = cands[i].rHyb;
            best.result = std::move(res);
        }
    }
    return best;
}

}  // namespace crophe::sched
