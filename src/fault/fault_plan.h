#ifndef CROPHE_FAULT_FAULT_PLAN_H_
#define CROPHE_FAULT_FAULT_PLAN_H_

/**
 * @file
 * Deterministic fault-injection plans (DESIGN.md §9).
 *
 * A FaultPlan describes which hardware degradations to inject into a run:
 * transient DRAM read errors (ECC-corrected or retried with exponential
 * backoff), stalled HBM pseudo-channels, failed NoC links (rerouted with
 * detour hops), dead PE groups and failed global-buffer banks. Plans are
 * parsed from a compact `key=value,key=value` spec string (the
 * `--fault-plan` flag / `CROPHE_FAULT_PLAN` environment variable) and are
 * fully seeded: the same plan produces bit-identical fault decisions —
 * and therefore bit-identical degraded statistics — on every run and at
 * every thread count.
 *
 * Structural faults (dead PE groups, failed SRAM banks) do not inject at
 * simulation time; they derive a *degraded* HwConfig up front, so the
 * scheduler and mapper plan around the missing resources and the plan
 * cache keys the result under a distinct configDigest (healthy-hardware
 * plans are never served to degraded hardware).
 */

#include <string>
#include <vector>

#include "hw/config.h"

namespace crophe::fault {

/**
 * One scheduled whole-chip failure (DESIGN.md §14): at virtual second
 * @p seconds, @p chips more pod chips die (highest-numbered first, the
 * same deterministic convention as FaultPlan::deadChips). Spec syntax:
 * `chip-fail@SECONDS=K`.
 */
struct ChipFailEvent
{
    double seconds = 0.0;
    u32 chips = 1;
};

/**
 * One scheduled interconnect degradation: from virtual second
 * @p seconds on, every pod ring link runs at @p fraction of its healthy
 * bandwidth (an absolute fraction, not cumulative). Spec syntax:
 * `link-degrade@SECONDS=FRACTION`.
 */
struct LinkDegradeEvent
{
    double seconds = 0.0;
    double fraction = 1.0;
};

/** One fault-injection scenario. See file doc for the spec format. */
struct FaultPlan
{
    /** Seeds every injector decision; part of the determinism contract. */
    u64 seed = 0;

    // --- Transient faults (injected by the cycle simulator) --------------
    /** Per-access probability of a transient DRAM read error. */
    double dramErrorRate = 0.0;
    /** Fraction of DRAM errors corrected in place by ECC (no retry). */
    double dramEccFraction = 0.5;
    /** Max re-reads of a failed burst before the scrubber gives up and
     *  the access is charged in full anyway (simulation always ends). */
    u32 dramRetryLimit = 3;
    /** Backoff latency of the first retry; doubles per further retry. */
    double dramRetryBackoffCycles = 100.0;
    /** HBM pseudo-channels stuck in a degraded state (of the model's 16);
     *  which ones is a seeded choice. */
    u32 stalledDramChannels = 0;
    /** Extra latency every burst on a stalled channel pays. */
    double channelStallCycles = 200.0;
    /** Probability a NoC transfer's route crosses a failed link. */
    double nocLinkFailRate = 0.0;
    /** Detour hops a rerouted transfer pays (XY reroute around a link). */
    u32 nocRerouteExtraHops = 2;

    // --- Structural faults (degrade the HwConfig before scheduling) ------
    /** Dead PE groups: whole mesh columns removed from the array. */
    u32 deadPeGroups = 0;
    /** Failed global-buffer banks out of kSramBanks. */
    u32 failedSramBanks = 0;
    /**
     * Whole accelerators removed from a multi-chip pod (DESIGN.md §12).
     * Consumed by the pod layer, not degradedConfig(): the pod
     * repartitions onto the survivors and its digest changes with the
     * count, so degraded-pod schedules never share plan-cache entries
     * with healthy-pod ones. Ignored (after validation against the
     * --chips count) in single-chip runs.
     */
    u32 deadChips = 0;

    // --- Timed faults (consumed by the online serving layer, §14) --------
    /**
     * Virtual-time-scheduled chip losses, sorted by seconds (parse sorts;
     * ties keep spec order). The serving dispatcher loses the batches in
     * flight at each event, repartitions the survivors and replays the
     * lost requests (DESIGN.md §14). Ignored by offline drivers.
     */
    std::vector<ChipFailEvent> chipFails;
    /** Virtual-time-scheduled link degradations, sorted like chipFails. */
    std::vector<LinkDegradeEvent> linkDegrades;
    /**
     * Per-batch probability of a transient execution failure (the batch
     * occupies the accelerator for its full service time but completes
     * nothing; its requests retry). Drawn through the FaultInjector
     * oracle indexed by dispatch sequence, so chaos runs stay
     * byte-identical at any thread count.
     */
    double batchFailRate = 0.0;

    /** Banked-buffer granularity for failed-bank degradation. */
    static constexpr u32 kSramBanks = 32;

    /** HBM pseudo-channel universe the stalled-channel pick draws from;
     *  must match the DRAM model's channel count (static_asserted there). */
    static constexpr u32 kDramChannels = 16;

    /**
     * True when the plan injects nothing (all rates and counts zero): an
     * empty plan is contractually byte-identical to no plan at all.
     */
    bool empty() const;

    /** True when the plan degrades the HwConfig (vs transient-only). */
    bool degradesHardware() const
    {
        return deadPeGroups > 0 || failedSramBanks > 0;
    }

    /** True when the plan schedules mid-run events (§14 recovery path). */
    bool hasTimedFaults() const
    {
        return !chipFails.empty() || !linkDegrades.empty() ||
               batchFailRate > 0.0;
    }

    /** Chips the scheduled chip-fail events kill in total. */
    u32 timedDeadChips() const;

    /**
     * Parse a `key=value,key=value` spec (e.g. `seed=7,dram-err=1e-3,
     * dead-pe-groups=1,failed-sram-banks=2`). Keys: seed, dram-err,
     * dram-ecc, dram-retries, dram-backoff, stalled-channels,
     * channel-stall, noc-fail, noc-extra-hops, dead-pe-groups,
     * failed-sram-banks, dead-chips, batch-fail, and the timed events
     * chip-fail@SECONDS=COUNT / link-degrade@SECONDS=FRACTION. Throws
     * RecoverableError on an unknown key, a malformed value, or an
     * out-of-range rate; every rejection names the offending token and
     * its byte offset in the spec.
     *
     * When @p podChips is nonzero the plan is validated against that pod
     * size at parse time: dead-chips plus the scheduled chip-fail totals
     * must leave at least one survivor, so pod::PodConfig::aliveChips()
     * can never underflow no matter which driver forgot the check.
     */
    static FaultPlan parse(const std::string &spec, u32 podChips = 0);

    /** Spec from $CROPHE_FAULT_PLAN, or "" when unset/empty. */
    static std::string specFromEnv();

    /** Canonical spec string (non-default fields only; parse round-trips). */
    std::string toString() const;

    /**
     * The hardware that remains once the structural faults are applied:
     * dead PE groups remove whole mesh columns (numPes and meshX shrink),
     * failed banks shrink the global buffer's capacity and bandwidth
     * proportionally, and the name gains a `+degraded` suffix — so
     * hw::configDigest differs from the healthy config and the plan cache
     * can never serve healthy-hardware schedules to degraded hardware.
     * Throws RecoverableError when nothing usable remains (every PE group
     * dead, every bank failed).
     */
    hw::HwConfig degradedConfig(const hw::HwConfig &healthy) const;
};

/**
 * Slowdown of a degraded run vs its healthy twin (>= 1.0 in practice;
 * exactly 1.0 for an empty plan). Both cycle counts must be positive.
 */
double degradationRatio(double degraded_cycles, double healthy_cycles);

}  // namespace crophe::fault

#endif  // CROPHE_FAULT_FAULT_PLAN_H_
