#include "fault/fault_injector.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace crophe::fault {

namespace {

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan &plan) : plan_(plan)
{
    // Stalled-channel set: rank every pseudo-channel by a seeded hash and
    // stall the lowest-ranked ones — a deterministic "random" choice.
    u32 stalled = std::min(plan_.stalledDramChannels,
                           FaultPlan::kDramChannels);
    if (stalled > 0) {
        std::array<std::pair<u64, u32>, FaultPlan::kDramChannels> ranked;
        for (u32 ch = 0; ch < FaultPlan::kDramChannels; ++ch)
            ranked[ch] = {mix64(plan_.seed ^
                                mix64(static_cast<u64>(
                                          FaultSite::ChannelPick) ^
                                      (static_cast<u64>(ch) << 32))),
                          ch};
        std::sort(ranked.begin(), ranked.end());
        for (u32 i = 0; i < stalled; ++i)
            stalledMask_ |= 1ull << ranked[i].second;
    }
}

double
FaultInjector::uniform(FaultSite site, u64 n) const
{
    u64 h = mix64(plan_.seed ^ mix64(static_cast<u64>(site) * 0x100000001b3ull ^
                                     mix64(n)));
    // 53 high bits -> [0, 1) double, the usual lossless mapping.
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

u32
FaultInjector::dramRetries(u64 n) const
{
    u32 retries = 1;  // the failed read is always re-issued once
    // Each re-read independently sees the transient rate; indexing the
    // draws by (access, attempt) keeps the sequence a pure function.
    while (retries < plan_.dramRetryLimit &&
           uniform(FaultSite::DramRetry, n * 32 + retries) <
               plan_.dramErrorRate)
        ++retries;
    return retries;
}

double
FaultInjector::retryBackoffCycles(u32 retries) const
{
    CROPHE_ASSERT(retries <= 32, "retry count out of range: ", retries);
    // base * (2^retries - 1): exponential backoff summed over attempts.
    double factor = static_cast<double>((1ull << retries) - 1);
    return plan_.dramRetryBackoffCycles * factor;
}

}  // namespace crophe::fault
