#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"

namespace crophe::fault {

namespace {

/** One `key=value` item plus where it starts in the spec string, so
 *  every rejection can point at the exact offending bytes. */
struct Token
{
    std::string text;
    std::size_t offset = 0;
};

[[noreturn]] void
badToken(const std::string &spec, const Token &tok, const std::string &why)
{
    throw RecoverableError("invalid fault plan \"" + spec + "\": token \"" +
                           tok.text + "\" at byte " +
                           std::to_string(tok.offset) + ": " + why);
}

u64
parseU64(const std::string &spec, const Token &tok, const std::string &key,
         const std::string &value)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        badToken(spec, tok, key + " expects an unsigned integer, got \"" +
                               value + "\"");
    return v;
}

double
parseDouble(const std::string &spec, const Token &tok,
            const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        badToken(spec, tok, key + " expects a number, got \"" + value +
                                "\"");
    return v;
}

double
parseRate(const std::string &spec, const Token &tok, const std::string &key,
          const std::string &value)
{
    double v = parseDouble(spec, tok, key, value);
    if (!(v >= 0.0 && v <= 1.0))
        badToken(spec, tok,
                 key + " must be a probability in [0, 1], got " + value);
    return v;
}

double
parseCycles(const std::string &spec, const Token &tok,
            const std::string &key, const std::string &value)
{
    double v = parseDouble(spec, tok, key, value);
    if (!(v >= 0.0))
        badToken(spec, tok, key + " must be non-negative, got " + value);
    return v;
}

double
parseEventSeconds(const std::string &spec, const Token &tok,
                  const std::string &key, const std::string &at)
{
    double v = parseDouble(spec, tok, key, at);
    if (!(v >= 0.0) || !std::isfinite(v))
        badToken(spec, tok, key + " needs a finite non-negative virtual "
                                  "time after '@', got " +
                                at);
    return v;
}

/** Shortest text that strtod round-trips to the same double. */
std::string
formatDouble(double v)
{
    std::ostringstream os;
    os << v;
    if (std::strtod(os.str().c_str(), nullptr) == v)
        return os.str();
    os.str("");
    os << std::setprecision(17) << v;
    return os.str();
}

}  // namespace

bool
FaultPlan::empty() const
{
    return dramErrorRate == 0.0 && stalledDramChannels == 0 &&
           nocLinkFailRate == 0.0 && deadPeGroups == 0 &&
           failedSramBanks == 0 && deadChips == 0 && chipFails.empty() &&
           linkDegrades.empty() && batchFailRate == 0.0;
}

u32
FaultPlan::timedDeadChips() const
{
    u32 total = 0;
    for (const ChipFailEvent &ev : chipFails)
        total += ev.chips;
    return total;
}

FaultPlan
FaultPlan::parse(const std::string &spec, u32 podChips)
{
    FaultPlan plan;

    // Scan comma-separated tokens by hand so each one keeps its byte
    // offset; every rejection below points at the exact offending bytes.
    std::size_t pos = 0;
    Token retryTok, bankTok, deadChipsTok;
    std::vector<Token> chipFailToks;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        Token tok{spec.substr(pos, comma - pos), pos};
        pos = comma + 1;
        if (tok.text.empty()) {
            if (comma == spec.size())
                break;
            continue;
        }
        auto eq = tok.text.find('=');
        if (eq == std::string::npos)
            badToken(spec, tok, "expected key=value");
        std::string key = tok.text.substr(0, eq);
        std::string value = tok.text.substr(eq + 1);

        // Timed events carry their fire time after '@': key@SECONDS=VALUE.
        std::string at;
        auto atSign = key.find('@');
        if (atSign != std::string::npos) {
            at = key.substr(atSign + 1);
            key = key.substr(0, atSign);
        }
        if (atSign != std::string::npos && key != "chip-fail" &&
            key != "link-degrade")
            badToken(spec, tok,
                     "'@' scheduling is only valid on chip-fail and "
                     "link-degrade, not \"" +
                         key + "\"");
        if (key == "chip-fail") {
            if (atSign == std::string::npos)
                badToken(spec, tok,
                         "chip-fail needs a fire time: chip-fail@SECONDS=K");
            ChipFailEvent ev;
            ev.seconds = parseEventSeconds(spec, tok, key, at);
            ev.chips =
                static_cast<u32>(parseU64(spec, tok, "chip-fail", value));
            if (ev.chips == 0)
                badToken(spec, tok, "chip-fail must kill at least 1 chip");
            plan.chipFails.push_back(ev);
            chipFailToks.push_back(tok);
        } else if (key == "link-degrade") {
            if (atSign == std::string::npos)
                badToken(spec, tok, "link-degrade needs a fire time: "
                                    "link-degrade@SECONDS=FRACTION");
            LinkDegradeEvent ev;
            ev.seconds = parseEventSeconds(spec, tok, key, at);
            ev.fraction = parseDouble(spec, tok, "link-degrade", value);
            if (!(ev.fraction > 0.0 && ev.fraction <= 1.0))
                badToken(spec, tok,
                         "link-degrade fraction must be in (0, 1], got " +
                             value);
            plan.linkDegrades.push_back(ev);
        } else if (key == "batch-fail")
            plan.batchFailRate = parseRate(spec, tok, key, value);
        else if (key == "seed")
            plan.seed = parseU64(spec, tok, key, value);
        else if (key == "dram-err")
            plan.dramErrorRate = parseRate(spec, tok, key, value);
        else if (key == "dram-ecc")
            plan.dramEccFraction = parseRate(spec, tok, key, value);
        else if (key == "dram-retries") {
            plan.dramRetryLimit =
                static_cast<u32>(parseU64(spec, tok, key, value));
            retryTok = tok;
        } else if (key == "dram-backoff")
            plan.dramRetryBackoffCycles = parseCycles(spec, tok, key, value);
        else if (key == "stalled-channels")
            plan.stalledDramChannels =
                static_cast<u32>(parseU64(spec, tok, key, value));
        else if (key == "channel-stall")
            plan.channelStallCycles = parseCycles(spec, tok, key, value);
        else if (key == "noc-fail")
            plan.nocLinkFailRate = parseRate(spec, tok, key, value);
        else if (key == "noc-extra-hops")
            plan.nocRerouteExtraHops =
                static_cast<u32>(parseU64(spec, tok, key, value));
        else if (key == "dead-pe-groups")
            plan.deadPeGroups =
                static_cast<u32>(parseU64(spec, tok, key, value));
        else if (key == "failed-sram-banks") {
            plan.failedSramBanks =
                static_cast<u32>(parseU64(spec, tok, key, value));
            bankTok = tok;
        } else if (key == "dead-chips") {
            plan.deadChips =
                static_cast<u32>(parseU64(spec, tok, key, value));
            deadChipsTok = tok;
        } else
            badToken(spec, tok, "unknown key \"" + key + "\"");
    }
    if (plan.dramRetryLimit > 16)
        badToken(spec, retryTok,
                 "dram-retries must be <= 16 (backoff doubles per retry "
                 "and would overflow any latency budget)");
    if (plan.failedSramBanks >= kSramBanks && plan.failedSramBanks != 0)
        badToken(spec, bankTok,
                 "failed-sram-banks must leave at least one of " +
                     std::to_string(kSramBanks) + " banks working");

    // Events fire in time order; stable sorts keep spec order for ties.
    // chipFails sorts together with its source tokens so the pod-size
    // guard below can blame the exact event that crosses the line.
    std::vector<std::size_t> order(plan.chipFails.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return plan.chipFails[a].seconds <
                                plan.chipFails[b].seconds;
                     });
    std::vector<ChipFailEvent> sortedFails;
    std::vector<Token> sortedToks;
    sortedFails.reserve(order.size());
    sortedToks.reserve(order.size());
    for (std::size_t i : order) {
        sortedFails.push_back(plan.chipFails[i]);
        sortedToks.push_back(chipFailToks[i]);
    }
    plan.chipFails = std::move(sortedFails);
    chipFailToks = std::move(sortedToks);
    std::stable_sort(plan.linkDegrades.begin(), plan.linkDegrades.end(),
                     [](const LinkDegradeEvent &a, const LinkDegradeEvent &b) {
                         return a.seconds < b.seconds;
                     });

    if (podChips > 0) {
        if (plan.deadChips >= podChips)
            badToken(spec, deadChipsTok,
                     "dead-chips must leave at least one of " +
                         std::to_string(podChips) + " pod chips alive");
        u32 dead = plan.deadChips;
        for (std::size_t i = 0; i < plan.chipFails.size(); ++i) {
            dead += plan.chipFails[i].chips;
            if (dead >= podChips)
                badToken(spec, chipFailToks[i],
                         "scheduled chip failures plus dead-chips must "
                         "leave at least one of " +
                             std::to_string(podChips) + " pod chips alive");
        }
    }
    return plan;
}

std::string
FaultPlan::specFromEnv()
{
    const char *env = std::getenv("CROPHE_FAULT_PLAN");
    return env != nullptr ? std::string(env) : std::string();
}

std::string
FaultPlan::toString() const
{
    const FaultPlan def;
    std::ostringstream os;
    const char *sep = "";
    auto emit = [&](const char *key, auto value, auto default_value) {
        if (value == default_value)
            return;
        os << sep << key << "=" << value;
        sep = ",";
    };
    emit("seed", seed, def.seed);
    emit("dram-err", dramErrorRate, def.dramErrorRate);
    emit("dram-ecc", dramEccFraction, def.dramEccFraction);
    emit("dram-retries", dramRetryLimit, def.dramRetryLimit);
    emit("dram-backoff", dramRetryBackoffCycles, def.dramRetryBackoffCycles);
    emit("stalled-channels", stalledDramChannels, def.stalledDramChannels);
    emit("channel-stall", channelStallCycles, def.channelStallCycles);
    emit("noc-fail", nocLinkFailRate, def.nocLinkFailRate);
    emit("noc-extra-hops", nocRerouteExtraHops, def.nocRerouteExtraHops);
    emit("dead-pe-groups", deadPeGroups, def.deadPeGroups);
    emit("failed-sram-banks", failedSramBanks, def.failedSramBanks);
    emit("dead-chips", deadChips, def.deadChips);
    emit("batch-fail", batchFailRate, def.batchFailRate);
    for (const ChipFailEvent &ev : chipFails) {
        os << sep << "chip-fail@" << formatDouble(ev.seconds) << "="
           << ev.chips;
        sep = ",";
    }
    for (const LinkDegradeEvent &ev : linkDegrades) {
        os << sep << "link-degrade@" << formatDouble(ev.seconds) << "="
           << formatDouble(ev.fraction);
        sep = ",";
    }
    return os.str();
}

hw::HwConfig
FaultPlan::degradedConfig(const hw::HwConfig &healthy) const
{
    hw::HwConfig cfg = healthy;
    if (!degradesHardware())
        return cfg;

    if (deadPeGroups > 0) {
        if (deadPeGroups >= healthy.meshX)
            throw RecoverableError(
                "fault plan kills all " + std::to_string(healthy.meshX) +
                " PE groups of " + healthy.name + "; nothing left to run on");
        // A PE group is one mesh column; the column's share of the array
        // dies with it.
        u32 per_column = healthy.numPes / healthy.meshX;
        if (per_column == 0)
            per_column = 1;
        u32 lost = deadPeGroups * per_column;
        if (lost >= healthy.numPes)
            throw RecoverableError("fault plan leaves no working PEs on " +
                                   healthy.name);
        cfg.numPes = healthy.numPes - lost;
        cfg.meshX = healthy.meshX - deadPeGroups;
    }
    if (failedSramBanks > 0) {
        if (failedSramBanks >= kSramBanks)
            throw RecoverableError("fault plan fails every global-buffer "
                                   "bank of " +
                                   healthy.name);
        // Single-ported banks: losing a bank loses its capacity slice and
        // its slice of the aggregate bandwidth.
        double keep = static_cast<double>(kSramBanks - failedSramBanks) /
                      static_cast<double>(kSramBanks);
        cfg.sramMB = healthy.sramMB * keep;
        cfg.sramGBs = healthy.sramGBs * keep;
    }
    cfg.name = healthy.name + "+degraded";
    hw::validateConfig(cfg);
    CROPHE_ASSERT(hw::configDigest(cfg) != hw::configDigest(healthy),
                  "degraded config must never share the healthy digest");
    return cfg;
}

double
degradationRatio(double degraded_cycles, double healthy_cycles)
{
    CROPHE_ASSERT(degraded_cycles > 0.0 && healthy_cycles > 0.0,
                  "degradation ratio needs positive cycle counts, got ",
                  degraded_cycles, " / ", healthy_cycles);
    return degraded_cycles / healthy_cycles;
}

}  // namespace crophe::fault
