#include "fault/fault_plan.h"

#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"

namespace crophe::fault {

namespace {

[[noreturn]] void
badSpec(const std::string &spec, const std::string &why)
{
    throw RecoverableError("invalid fault plan \"" + spec + "\": " + why);
}

u64
parseU64(const std::string &spec, const std::string &key,
         const std::string &value)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        badSpec(spec, key + " expects an unsigned integer, got \"" + value +
                          "\"");
    return v;
}

double
parseDouble(const std::string &spec, const std::string &key,
            const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        badSpec(spec, key + " expects a number, got \"" + value + "\"");
    return v;
}

double
parseRate(const std::string &spec, const std::string &key,
          const std::string &value)
{
    double v = parseDouble(spec, key, value);
    if (!(v >= 0.0 && v <= 1.0))
        badSpec(spec, key + " must be a probability in [0, 1], got " + value);
    return v;
}

double
parseCycles(const std::string &spec, const std::string &key,
            const std::string &value)
{
    double v = parseDouble(spec, key, value);
    if (!(v >= 0.0))
        badSpec(spec, key + " must be non-negative, got " + value);
    return v;
}

}  // namespace

bool
FaultPlan::empty() const
{
    return dramErrorRate == 0.0 && stalledDramChannels == 0 &&
           nocLinkFailRate == 0.0 && deadPeGroups == 0 &&
           failedSramBanks == 0 && deadChips == 0;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos)
            badSpec(spec, "expected key=value, got \"" + item + "\"");
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        if (key == "seed")
            plan.seed = parseU64(spec, key, value);
        else if (key == "dram-err")
            plan.dramErrorRate = parseRate(spec, key, value);
        else if (key == "dram-ecc")
            plan.dramEccFraction = parseRate(spec, key, value);
        else if (key == "dram-retries")
            plan.dramRetryLimit =
                static_cast<u32>(parseU64(spec, key, value));
        else if (key == "dram-backoff")
            plan.dramRetryBackoffCycles = parseCycles(spec, key, value);
        else if (key == "stalled-channels")
            plan.stalledDramChannels =
                static_cast<u32>(parseU64(spec, key, value));
        else if (key == "channel-stall")
            plan.channelStallCycles = parseCycles(spec, key, value);
        else if (key == "noc-fail")
            plan.nocLinkFailRate = parseRate(spec, key, value);
        else if (key == "noc-extra-hops")
            plan.nocRerouteExtraHops =
                static_cast<u32>(parseU64(spec, key, value));
        else if (key == "dead-pe-groups")
            plan.deadPeGroups = static_cast<u32>(parseU64(spec, key, value));
        else if (key == "failed-sram-banks")
            plan.failedSramBanks =
                static_cast<u32>(parseU64(spec, key, value));
        else if (key == "dead-chips")
            plan.deadChips = static_cast<u32>(parseU64(spec, key, value));
        else
            badSpec(spec, "unknown key \"" + key + "\"");
    }
    if (plan.dramRetryLimit > 16)
        badSpec(spec, "dram-retries must be <= 16 (backoff doubles per "
                      "retry and would overflow any latency budget)");
    if (plan.failedSramBanks >= kSramBanks && plan.failedSramBanks != 0)
        badSpec(spec, "failed-sram-banks must leave at least one of " +
                          std::to_string(kSramBanks) + " banks working");
    return plan;
}

std::string
FaultPlan::specFromEnv()
{
    const char *env = std::getenv("CROPHE_FAULT_PLAN");
    return env != nullptr ? std::string(env) : std::string();
}

std::string
FaultPlan::toString() const
{
    const FaultPlan def;
    std::ostringstream os;
    const char *sep = "";
    auto emit = [&](const char *key, auto value, auto default_value) {
        if (value == default_value)
            return;
        os << sep << key << "=" << value;
        sep = ",";
    };
    emit("seed", seed, def.seed);
    emit("dram-err", dramErrorRate, def.dramErrorRate);
    emit("dram-ecc", dramEccFraction, def.dramEccFraction);
    emit("dram-retries", dramRetryLimit, def.dramRetryLimit);
    emit("dram-backoff", dramRetryBackoffCycles, def.dramRetryBackoffCycles);
    emit("stalled-channels", stalledDramChannels, def.stalledDramChannels);
    emit("channel-stall", channelStallCycles, def.channelStallCycles);
    emit("noc-fail", nocLinkFailRate, def.nocLinkFailRate);
    emit("noc-extra-hops", nocRerouteExtraHops, def.nocRerouteExtraHops);
    emit("dead-pe-groups", deadPeGroups, def.deadPeGroups);
    emit("failed-sram-banks", failedSramBanks, def.failedSramBanks);
    emit("dead-chips", deadChips, def.deadChips);
    return os.str();
}

hw::HwConfig
FaultPlan::degradedConfig(const hw::HwConfig &healthy) const
{
    hw::HwConfig cfg = healthy;
    if (!degradesHardware())
        return cfg;

    if (deadPeGroups > 0) {
        if (deadPeGroups >= healthy.meshX)
            throw RecoverableError(
                "fault plan kills all " + std::to_string(healthy.meshX) +
                " PE groups of " + healthy.name + "; nothing left to run on");
        // A PE group is one mesh column; the column's share of the array
        // dies with it.
        u32 per_column = healthy.numPes / healthy.meshX;
        if (per_column == 0)
            per_column = 1;
        u32 lost = deadPeGroups * per_column;
        if (lost >= healthy.numPes)
            throw RecoverableError("fault plan leaves no working PEs on " +
                                   healthy.name);
        cfg.numPes = healthy.numPes - lost;
        cfg.meshX = healthy.meshX - deadPeGroups;
    }
    if (failedSramBanks > 0) {
        if (failedSramBanks >= kSramBanks)
            throw RecoverableError("fault plan fails every global-buffer "
                                   "bank of " +
                                   healthy.name);
        // Single-ported banks: losing a bank loses its capacity slice and
        // its slice of the aggregate bandwidth.
        double keep = static_cast<double>(kSramBanks - failedSramBanks) /
                      static_cast<double>(kSramBanks);
        cfg.sramMB = healthy.sramMB * keep;
        cfg.sramGBs = healthy.sramGBs * keep;
    }
    cfg.name = healthy.name + "+degraded";
    hw::validateConfig(cfg);
    CROPHE_ASSERT(hw::configDigest(cfg) != hw::configDigest(healthy),
                  "degraded config must never share the healthy digest");
    return cfg;
}

double
degradationRatio(double degraded_cycles, double healthy_cycles)
{
    CROPHE_ASSERT(degraded_cycles > 0.0 && healthy_cycles > 0.0,
                  "degradation ratio needs positive cycle counts, got ",
                  degraded_cycles, " / ", healthy_cycles);
    return degraded_cycles / healthy_cycles;
}

}  // namespace crophe::fault
