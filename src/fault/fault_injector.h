#ifndef CROPHE_FAULT_FAULT_INJECTOR_H_
#define CROPHE_FAULT_FAULT_INJECTOR_H_

/**
 * @file
 * Seeded, stateless fault-decision oracle (DESIGN.md §9).
 *
 * Every decision is a pure function of (plan seed, site, draw index):
 * `uniform(site, n)` hashes the triple through splitmix64 finalizers, so
 * decisions never depend on thread scheduling, on the order in which
 * independent components consume randomness, or on any shared mutable
 * state. Each consumer (a DramModel, a NocModel) keeps its *own* local
 * draw counters, which advance in deterministic simulated-event order —
 * this is what makes chaos runs bit-identical at 1 and 8 host threads
 * even though segments simulate concurrently.
 */

#include "fault/fault_plan.h"

namespace crophe::fault {

/** Decision sites: namespaces the injector's random streams. */
enum class FaultSite : u64
{
    DramError = 1,
    DramEcc = 2,
    DramRetry = 3,
    NocLink = 4,
    ChannelPick = 5,
    BatchFail = 6,
    ChaosPlan = 7,
};

/** Deterministic per-site decision oracle over one FaultPlan. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    const FaultPlan &plan() const { return plan_; }

    /** The n-th uniform [0,1) draw of @p site (pure function). */
    double uniform(FaultSite site, u64 n) const;

    /** Does the n-th DRAM access suffer a transient read error? */
    bool dramReadError(u64 n) const
    {
        return plan_.dramErrorRate > 0.0 &&
               uniform(FaultSite::DramError, n) < plan_.dramErrorRate;
    }

    /** Is the n-th DRAM error corrected in place by ECC (no retry)? */
    bool dramEccCorrected(u64 n) const
    {
        return uniform(FaultSite::DramEcc, n) < plan_.dramEccFraction;
    }

    /**
     * Retries the n-th erroring access performs before a clean re-read:
     * each re-read independently fails with the transient rate, capped at
     * the plan's retry limit so simulation always terminates. >= 1.
     */
    u32 dramRetries(u64 n) const;

    /** Total backoff latency (cycles) for @p retries re-reads: the first
     *  costs the plan's base backoff, each further one doubles it. */
    double retryBackoffCycles(u32 retries) const;

    /** Does the n-th NoC transfer cross a failed link (reroute)? */
    bool nocLinkFailed(u64 n) const
    {
        return plan_.nocLinkFailRate > 0.0 &&
               uniform(FaultSite::NocLink, n) < plan_.nocLinkFailRate;
    }

    /**
     * Does the n-th dispatched batch suffer a transient execution
     * failure? Indexed by the dispatcher's global dispatch sequence,
     * which advances in virtual-time order — so the chaos decision
     * stream is identical at any host thread count (DESIGN.md §14).
     */
    bool batchFailed(u64 n) const
    {
        return plan_.batchFailRate > 0.0 &&
               uniform(FaultSite::BatchFail, n) < plan_.batchFailRate;
    }

    /** Is pseudo-channel @p ch stalled under this plan? The stalled set
     *  is a seeded choice fixed at construction. */
    bool channelStalled(u32 ch) const
    {
        return ch < 64 && ((stalledMask_ >> ch) & 1u) != 0;
    }

  private:
    FaultPlan plan_;
    u64 stalledMask_ = 0;  ///< bit ch set = pseudo-channel ch stalled
};

}  // namespace crophe::fault

#endif  // CROPHE_FAULT_FAULT_INJECTOR_H_
