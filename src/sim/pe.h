#ifndef CROPHE_SIM_PE_H_
#define CROPHE_SIM_PE_H_

/**
 * @file
 * PE-group execution model: the PEs allocated to one operator execute its
 * chunks in order, fully pipelined at the lane level (Section IV-A).
 */

#include <vector>

#include "hw/config.h"
#include "map/trace.h"
#include "sim/event_queue.h"

namespace crophe::sim {

/** The serial chunk executor for one operator's PE allocation. */
class PeGroup
{
  public:
    explicit PeGroup(const map::TraceOp &op) : op_(&op) {}

    /** Execute chunk @p chunk once its inputs are ready at @p ready. */
    SimTime
    executeChunk(SimTime ready, u64 chunk)
    {
        (void)chunk;
        SimTime start = std::max(ready, freeAt_);
        freeAt_ = start + op_->computePerChunk;
        busy_ += op_->computePerChunk;
        return freeAt_;
    }

    double busyCycles() const { return busy_; }

  private:
    const map::TraceOp *op_;
    SimTime freeAt_ = 0.0;
    double busy_ = 0.0;
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_PE_H_
