#ifndef CROPHE_SIM_INTERCONNECT_H_
#define CROPHE_SIM_INTERCONNECT_H_

/**
 * @file
 * Inter-chip pod interconnect (DESIGN.md §12): a bidirectional ring of
 * point-to-point links between the chips of a multi-accelerator pod.
 * Each directed link is a FIFO bandwidth server, so two transfers
 * crossing the same link serialize (shared-link contention) while
 * transfers on disjoint links proceed in parallel. A transfer routes on
 * the shorter ring direction (ties break clockwise, deterministically)
 * and pays a fixed per-hop latency plus serialization on every link it
 * crosses.
 *
 * All timing is in chip cycles of the HwConfig the interconnect was
 * built for; the pod layer converts to seconds at cfg.freqGhz.
 */

#include <string>
#include <vector>

#include "hw/config.h"
#include "sim/event_queue.h"

namespace crophe::telemetry {
class StatsRegistry;
class TraceRecorder;
}  // namespace crophe::telemetry

namespace crophe::sim {

/** Pod-level interconnect parameters (part of the pod digest). */
struct InterconnectConfig
{
    u32 chips = 1;
    /** Bandwidth of one directed ring link (GB/s). */
    double linkGBs = 600.0;
    /** Fixed latency per ring hop, in chip cycles. */
    double linkLatencyCycles = 500.0;
    /**
     * Healthy-bandwidth fraction every link runs at, in (0, 1]. Set
     * below 1.0 by timed link-degrade faults (DESIGN.md §14); scales
     * the effective link rate, not the per-hop latency.
     */
    double linkFraction = 1.0;
};

/** Bidirectional ring of FIFO link servers. See file doc. */
class Interconnect
{
  public:
    /** @p chip supplies word width and frequency for rate conversion. */
    Interconnect(const InterconnectConfig &ic, const hw::HwConfig &chip);

    /**
     * Ring distance from @p from to @p to (shorter direction). Static so
     * the partitioner can weigh its cut objective with the same metric
     * the simulation charges.
     */
    static u32 ringHops(u32 from, u32 to, u32 chips);

    /**
     * Move @p words from chip @p from to chip @p to, data ready at
     * @p ready; returns the arrival time at the destination. A zero-hop
     * transfer (from == to) is free and returns @p ready.
     */
    SimTime transfer(SimTime ready, u32 from, u32 to, u64 words);

    u64 transfers() const { return transfers_; }
    u64 totalWords() const { return totalWords_; }
    u64 totalHopWords() const { return totalHopWords_; }
    /** Busy cycles summed over every directed link. */
    double busyCycles() const;
    /** Largest single-link busy time (the contention hot spot). */
    double maxLinkBusyCycles() const;

    /** Record per-link occupancy spans ("pod link c0->c1" tracks). */
    void attachTrace(telemetry::TraceRecorder *rec);

    /** Accumulate (+=) totals under @p prefix ("sim.pod.*"). */
    void accumulateInto(telemetry::StatsRegistry &reg,
                        const std::string &prefix = "sim.pod") const;

  private:
    /** Directed link leaving @p chip clockwise (+1) or counter (-1). */
    Server &link(u32 chip, bool clockwise);

    InterconnectConfig cfg_;
    double hopLatency_;
    std::vector<Server> links_;  ///< [0,chips) cw, [chips,2*chips) ccw
    std::vector<std::string> linkNames_;
    u64 transfers_ = 0;
    u64 totalWords_ = 0;
    u64 totalHopWords_ = 0;  ///< Σ words × hops (link occupancy words)
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_INTERCONNECT_H_
