#include "sim/interconnect.h"

#include <algorithm>

#include "common/logging.h"
#include "sched/group.h"
#include "telemetry/stats_registry.h"
#include "telemetry/trace_recorder.h"

namespace crophe::sim {

Interconnect::Interconnect(const InterconnectConfig &ic,
                           const hw::HwConfig &chip)
    : cfg_(ic), hopLatency_(ic.linkLatencyCycles)
{
    CROPHE_ASSERT(ic.chips >= 1, "interconnect needs at least one chip");
    CROPHE_ASSERT(ic.linkGBs > 0.0, "link bandwidth must be positive");
    CROPHE_ASSERT(ic.linkLatencyCycles >= 0.0,
                  "link latency cannot be negative");
    CROPHE_ASSERT(ic.linkFraction > 0.0 && ic.linkFraction <= 1.0,
                  "link fraction must be in (0, 1], got ", ic.linkFraction);
    if (ic.chips < 2)
        return;  // a single chip has no links
    // Words one directed link moves per chip cycle, derated by any
    // timed link degradation in force (DESIGN.md §14).
    const double words_per_cycle =
        ic.linkFraction * ic.linkGBs / (chip.wordBytes() * chip.freqGhz);
    links_.reserve(2 * ic.chips);
    linkNames_.reserve(2 * ic.chips);
    for (u32 c = 0; c < ic.chips; ++c) {
        links_.emplace_back(words_per_cycle);
        linkNames_.push_back("pod link c" + std::to_string(c) + "->c" +
                             std::to_string((c + 1) % ic.chips));
    }
    for (u32 c = 0; c < ic.chips; ++c) {
        links_.emplace_back(words_per_cycle);
        linkNames_.push_back(
            "pod link c" + std::to_string(c) + "->c" +
            std::to_string((c + ic.chips - 1) % ic.chips));
    }
}

u32
Interconnect::ringHops(u32 from, u32 to, u32 chips)
{
    CROPHE_ASSERT(chips >= 1 && from < chips && to < chips,
                  "ring endpoint out of range");
    u32 cw = (to + chips - from) % chips;
    return std::min(cw, chips - cw);
}

Server &
Interconnect::link(u32 chip, bool clockwise)
{
    return links_[clockwise ? chip : cfg_.chips + chip];
}

SimTime
Interconnect::transfer(SimTime ready, u32 from, u32 to, u64 words)
{
    CROPHE_ASSERT(from < cfg_.chips && to < cfg_.chips,
                  "transfer endpoint out of range");
    if (from == to || words == 0)
        return ready;
    const u32 cw = (to + cfg_.chips - from) % cfg_.chips;
    const u32 ccw = cfg_.chips - cw;
    // Shorter direction; ties break clockwise so routing never depends
    // on anything but the endpoints.
    const bool clockwise = cw <= ccw;
    const u32 hops = clockwise ? cw : ccw;

    SimTime t = ready;
    u32 at = from;
    for (u32 h = 0; h < hops; ++h) {
        Server &l = link(at, clockwise);
        t = l.serve(t, static_cast<double>(words), hopLatency_);
        at = clockwise ? (at + 1) % cfg_.chips
                       : (at + cfg_.chips - 1) % cfg_.chips;
    }
    ++transfers_;
    totalWords_ += words;
    totalHopWords_ += words * hops;
    return t;
}

double
Interconnect::busyCycles() const
{
    double busy = 0.0;
    for (const Server &l : links_)
        busy += l.busyCycles();
    return busy;
}

double
Interconnect::maxLinkBusyCycles() const
{
    double mx = 0.0;
    for (const Server &l : links_)
        mx = std::max(mx, l.busyCycles());
    return mx;
}

void
Interconnect::attachTrace(telemetry::TraceRecorder *rec)
{
    if (rec == nullptr)
        return;
    for (std::size_t i = 0; i < links_.size(); ++i)
        links_[i].attachTrace(rec, rec->track(linkNames_[i]), "xfer");
}

void
Interconnect::accumulateInto(telemetry::StatsRegistry &reg,
                             const std::string &prefix) const
{
    reg.counter(prefix + ".transfers", "inter-chip transfers") +=
        transfers_;
    reg.counter(prefix + ".words", "words moved between chips") +=
        totalWords_;
    reg.counter(prefix + ".hopWords",
                "link-occupancy words (words x hops crossed)") +=
        totalHopWords_;
    reg.scalar(prefix + ".link.busyCycles",
               "busy cycles summed over directed links") += busyCycles();
    reg.scalar(prefix + ".link.maxBusyCycles",
               "busy cycles of the most-loaded link") += maxLinkBusyCycles();
}

}  // namespace crophe::sim
