#ifndef CROPHE_SIM_SRAM_H_
#define CROPHE_SIM_SRAM_H_

/**
 * @file
 * Banked global-buffer model: single-ported banks at doubled frequency
 * (Section VI). Bank conflicts degrade sustained bandwidth by a fixed
 * efficiency factor.
 */

#include "hw/config.h"
#include "sim/event_queue.h"

namespace crophe::sim {

/** Multi-bank SRAM global buffer. */
class SramModel
{
  public:
    explicit SramModel(const hw::HwConfig &cfg);

    /** Move @p words through the buffer starting no earlier than @p ready. */
    SimTime access(SimTime ready, u64 words);

    /** Record bank-group occupancy spans on an "SRAM banks" trace track. */
    void attachTrace(telemetry::TraceRecorder *rec);

    double busyCycles() const { return banks_.busyCycles(); }
    u64 totalWords() const { return totalWords_; }
    u64 capacityWords() const { return capacityWords_; }

  private:
    static constexpr double kBankEfficiency = 0.9;

    Server banks_;
    u64 capacityWords_;
    u64 totalWords_ = 0;
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_SRAM_H_
