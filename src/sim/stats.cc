#include "sim/stats.h"

#include <sstream>

#include "sched/cost_model.h"

namespace crophe::sim {

sched::SchedStats
SimStats::toSchedStats(const hw::HwConfig &cfg) const
{
    sched::SchedStats st;
    st.cycles = cycles;
    st.dramWords = dramWords;
    st.sramWords = sramWords;
    st.nocWords = nocWords;
    st.flops = flops;
    sched::fillUtilization(st, cfg);
    return st;
}

std::string
SimStats::toString() const
{
    std::ostringstream os;
    os << "cycles=" << cycles << " dram=" << dramWords
       << " sram=" << sramWords << " noc=" << nocWords
       << " flops=" << flops << " events=" << events;
    return os.str();
}

}  // namespace crophe::sim
