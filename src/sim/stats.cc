#include "sim/stats.h"

#include <iomanip>
#include <sstream>

#include "sched/cost_model.h"
#include "telemetry/stats_registry.h"

namespace crophe::sim {

sched::SchedStats
SimStats::toSchedStats(const hw::HwConfig &cfg) const
{
    sched::SchedStats st;
    st.cycles = cycles;
    st.dramWords = dramWords;
    st.sramWords = sramWords;
    st.nocWords = nocWords;
    st.flops = flops;
    sched::fillUtilization(st, cfg);
    return st;
}

double
SimStats::dramRowHitRate() const
{
    u64 rows = dramRowHits + dramRowMisses;
    return rows ? static_cast<double>(dramRowHits) /
                      static_cast<double>(rows)
                : 0.0;
}

void
SimStats::accumulateInto(telemetry::StatsRegistry &reg,
                         const std::string &prefix) const
{
    reg.scalar(prefix + ".cycles", "simulated cycles") += cycles;
    reg.counter(prefix + ".flops", "modular multiplications retired") +=
        flops;
    reg.counter(prefix + ".events", "discrete events processed") += events;
    reg.scalar(prefix + ".pe.busyCycles", "summed PE-group busy cycles") +=
        peBusy;
    reg.counter(prefix + ".dram.words", "off-chip words transferred") +=
        dramWords;
    telemetry::Counter &hits =
        reg.counter(prefix + ".dram.rowHits", "DRAM row-buffer hits");
    hits += dramRowHits;
    telemetry::Counter &misses =
        reg.counter(prefix + ".dram.rowMisses", "DRAM row activations");
    misses += dramRowMisses;
    if (!reg.has(prefix + ".dram.rowHitRate")) {
        reg.addFormula(prefix + ".dram.rowHitRate",
                       "row hits / (hits + misses)", [&hits, &misses] {
                           u64 rows = hits.count() + misses.count();
                           return rows ? static_cast<double>(hits.count()) /
                                             static_cast<double>(rows)
                                       : 0.0;
                       });
    }
    reg.counter(prefix + ".sram.words", "global-buffer words transferred") +=
        sramWords;
    reg.counter(prefix + ".noc.words", "mesh-forwarded words") += nocWords;
    reg.counter(prefix + ".transpose.words",
                "words streamed through the transpose unit") +=
        transposeWords;
    if (faultsEnabled) {
        // Only a run with an active fault plan creates fault.* paths, so
        // healthy registry dumps stay byte-identical to pre-fault builds.
        reg.counter(prefix + ".fault.dram.eccCorrected",
                    "DRAM reads corrected in place by ECC") += faultDramEcc;
        reg.counter(prefix + ".fault.dram.retriedAccesses",
                    "DRAM reads re-issued after a transient error") +=
            faultDramRetried;
        reg.counter(prefix + ".fault.dram.retries",
                    "total DRAM re-issues (exponential backoff)") +=
            faultDramRetries;
        reg.counter(prefix + ".fault.dram.stalledBursts",
                    "bursts that hit a stalled pseudo-channel") +=
            faultDramStalls;
        reg.counter(prefix + ".fault.noc.reroutes",
                    "transfers detoured around a failed link") +=
            faultNocReroutes;
    }
}

std::string
SimStats::toString() const
{
    std::ostringstream os;
    os << "cycles=" << cycles << " dram=" << dramWords
       << " sram=" << sramWords << " noc=" << nocWords
       << " flops=" << flops << " events=" << events << " rowHit%="
       << std::fixed << std::setprecision(1) << 100.0 * dramRowHitRate();
    if (faultsEnabled)
        os << " faults[ecc=" << faultDramEcc
           << " retried=" << faultDramRetried
           << " retries=" << faultDramRetries
           << " stalls=" << faultDramStalls
           << " reroutes=" << faultNocReroutes << "]";
    return os.str();
}

}  // namespace crophe::sim
