#include "sim/sram.h"

#include "common/logging.h"
#include "telemetry/trace_recorder.h"

namespace crophe::sim {

namespace {

double
sramWordsPerCycle(const hw::HwConfig &cfg)
{
    CROPHE_ASSERT(cfg.sramGBs > 0.0, "sramGBs must be positive, got ",
                  cfg.sramGBs);
    CROPHE_ASSERT(cfg.freqGhz > 0.0, "freqGhz must be positive, got ",
                  cfg.freqGhz);
    CROPHE_ASSERT(cfg.wordBytes() > 0, "wordBits must be at least 8, got ",
                  cfg.wordBits);
    return cfg.sramGBs / (cfg.wordBytes() * cfg.freqGhz);
}

}  // namespace

SramModel::SramModel(const hw::HwConfig &cfg)
    : banks_(kBankEfficiency * sramWordsPerCycle(cfg)),
      capacityWords_(cfg.sramWords())
{
}

SimTime
SramModel::access(SimTime ready, u64 words)
{
    if (words == 0)
        return ready;
    totalWords_ += words;
    return banks_.serve(ready, static_cast<double>(words));
}

void
SramModel::attachTrace(telemetry::TraceRecorder *rec)
{
    banks_.attachTrace(rec, rec->track("SRAM banks"), "access");
}

}  // namespace crophe::sim
