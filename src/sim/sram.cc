#include "sim/sram.h"

#include "telemetry/trace_recorder.h"

namespace crophe::sim {

SramModel::SramModel(const hw::HwConfig &cfg)
    : banks_(kBankEfficiency * cfg.sramGBs /
             (cfg.wordBytes() * cfg.freqGhz)),
      capacityWords_(cfg.sramWords())
{
}

SimTime
SramModel::access(SimTime ready, u64 words)
{
    if (words == 0)
        return ready;
    totalWords_ += words;
    return banks_.serve(ready, static_cast<double>(words));
}

void
SramModel::attachTrace(telemetry::TraceRecorder *rec)
{
    banks_.attachTrace(rec, rec->track("SRAM banks"), "access");
}

}  // namespace crophe::sim
