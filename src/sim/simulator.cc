#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"
#include "fault/fault_injector.h"
#include "map/mapper.h"
#include "map/trace.h"
#include "sched/scheduler.h"
#include "sim/dram.h"
#include "sim/event_queue.h"
#include "sim/noc.h"
#include "sim/pe.h"
#include "sim/sram.h"
#include "sim/transpose_unit.h"
#include "telemetry/telemetry.h"

namespace crophe::sim {

namespace {

/** Shared chip resources that persist across groups within one segment. */
struct Chip
{
    explicit Chip(const hw::HwConfig &cfg)
        : dram(cfg), sram(cfg), noc(cfg), transpose(cfg)
    {
    }

    DramModel dram;
    SramModel sram;
    NocModel noc;
    TransposeUnit transpose;
};

/**
 * Simulate one spatial group starting at @p group_start; returns the
 * group's completion time.
 */
SimTime
simulateGroup(const sched::SpatialGroup &group, const graph::Graph &g,
              const hw::HwConfig &cfg, Chip &chip, SimTime group_start,
              EventQueue &queue, SimStats &stats,
              telemetry::TraceRecorder *rec)
{
    map::GroupMapping mapping = map::mapGroup(group, g, cfg);
    map::GroupTrace trace = map::buildTrace(group, mapping, g, cfg);

    const u32 num_ops = static_cast<u32>(trace.ops.size());
    std::vector<PeGroup> pes;
    pes.reserve(num_ops);
    for (const auto &top : trace.ops)
        pes.emplace_back(top);

    // One trace track per PE group; ids are memoized by name, so group
    // slot i maps to the same track across all spatial groups.
    std::vector<u32> pe_tracks;
    if (rec != nullptr) {
        pe_tracks.resize(num_ops);
        for (u32 i = 0; i < num_ops; ++i)
            pe_tracks[i] = rec->track("PE group " + std::to_string(i));
    }

    // finish[i][c]: completion time of chunk c of op i (-1 = not done).
    std::vector<std::vector<SimTime>> finish(num_ops);
    std::vector<u64> next_chunk(num_ops, 0);
    for (u32 i = 0; i < num_ops; ++i)
        finish[i].assign(trace.ops[i].chunks, -1.0);

    SimTime group_end = group_start;

    // Readiness check for chunk c of op i.
    auto dep_ready = [&](u32 i, u64 c, SimTime &ready) {
        ready = group_start;
        for (const auto &dep : trace.ops[i].deps) {
            const auto &p = trace.ops[dep.producerIndex];
            u64 needed;
            if (dep.pipelined) {
                // Chunk c consumes producer chunk floor(c·Cp/Ci).
                needed = std::min<u64>(
                    p.chunks - 1, c * p.chunks / trace.ops[i].chunks);
            } else {
                needed = p.chunks - 1;  // full-tensor barrier
            }
            SimTime f = finish[dep.producerIndex][needed];
            if (f < 0)
                return false;
            ready = std::max(ready, f);
        }
        return true;
    };

    // Execute one chunk: acquire memory inputs, NoC, then the PE group.
    std::function<void(u32, SimTime)> try_issue = [&](u32 i, SimTime now) {
        while (next_chunk[i] < trace.ops[i].chunks) {
            u64 c = next_chunk[i];
            SimTime ready;
            if (!dep_ready(i, c, ready))
                return;
            ready = std::max(ready, now);
            const auto &top = trace.ops[i];
            const auto &op = g.op(top.op);

            // Off-chip and buffer traffic for this chunk.
            SimTime t = chip.dram.access(ready, top.dramWordsPerChunk, i);
            t = chip.sram.access(t, top.sramWordsPerChunk);
            // Forwarded inputs traverse the mesh.
            u32 hops = 1;
            for (const auto &dep : top.deps)
                hops = std::max(hops, dep.hops);
            t = chip.noc.transfer(t, top.nocWordsPerChunk, hops);
            // Transpose ops stream through the transpose unit instead of
            // the PE datapath.
            SimTime done;
            if (op.kind == graph::OpKind::Transpose) {
                done = chip.transpose.transpose(
                    t, std::max<u64>(1, op.inputWords / top.chunks));
                stats.transposeWords += op.inputWords / top.chunks;
            } else {
                done = pes[i].executeChunk(t, c);
                if (rec != nullptr && top.computePerChunk > 0.0) {
                    rec->complete(pe_tracks[i], op.label,
                                  done - top.computePerChunk,
                                  top.computePerChunk,
                                  {{"chunk", static_cast<double>(c)}});
                }
            }
            finish[i][c] = done;
            ++next_chunk[i];
            group_end = std::max(group_end, done);

            // Wake consumers.
            for (u32 j = 0; j < num_ops; ++j) {
                for (const auto &dep : trace.ops[j].deps) {
                    if (dep.producerIndex == i && next_chunk[j] <
                                                      trace.ops[j].chunks) {
                        queue.schedule(done, [&, j](SimTime when) {
                            try_issue(j, when);
                        });
                        break;
                    }
                }
            }
        }
    };

    // Seed all ops (those with deps will simply not issue yet).
    for (u32 i = 0; i < num_ops; ++i)
        queue.schedule(group_start,
                       [&, i](SimTime when) { try_issue(i, when); });
    queue.runAll();

    for (u32 i = 0; i < num_ops; ++i) {
        CROPHE_ASSERT(next_chunk[i] == trace.ops[i].chunks,
                      "deadlock: op ", g.op(trace.ops[i].op).label,
                      " stuck at chunk ", next_chunk[i]);
        stats.peBusy += pes[i].busyCycles();
    }
    return group_end;
}

}  // namespace

SimStats
simulateSchedule(const sched::Schedule &sched, const hw::HwConfig &cfg,
                 const telemetry::SimTelemetry *telem,
                 const fault::FaultInjector *faults)
{
    SimStats stats;
    Chip chip(cfg);
    EventQueue queue;

    telemetry::TraceRecorder *rec = telem ? telem->trace : nullptr;
    if (rec != nullptr) {
        chip.dram.attachTrace(rec);
        chip.sram.attachTrace(rec);
        chip.noc.attachTrace(rec);
        chip.transpose.attachTrace(rec);
        queue.attachTrace(rec);
    }
    if (faults != nullptr && !faults->plan().empty()) {
        // The models filter empty plans themselves; gating here as well
        // keeps stats.faultsEnabled in lockstep with the models.
        chip.dram.attachFaults(faults);
        chip.noc.attachFaults(faults);
        stats.faultsEnabled = true;
    }
    telemetry::Histogram *group_hist = nullptr;
    if (telem != nullptr && telem->registry != nullptr) {
        group_hist = &telem->registry->histogram(
            telem->statsPrefix + ".group.log2cycles",
            "log2(cycles) distribution of spatial-group durations", 0.0,
            32.0, 32);
    }

    // Pipeline drain + reconfiguration cost of the fully synchronous
    // group switch (Section IV-A).
    constexpr double kGroupSwitchCycles = 64.0;

    SimTime now = 0.0;
    for (const auto &tg : sched.sequence) {
        for (const auto &group : tg.groups) {
            // Synchronous group switching: the next group starts after
            // the previous completes on all PEs (Section IV-A).
            SimTime group_start = now;
            now = simulateGroup(group, sched.graph, cfg, chip, now, queue,
                                stats, rec);
            if (rec != nullptr) {
                rec->instant("group switch", now);
                rec->counter("dram.words", now,
                             static_cast<double>(chip.dram.totalWords()));
                rec->counter("sram.words", now,
                             static_cast<double>(chip.sram.totalWords()));
                rec->counter("noc.words", now,
                             static_cast<double>(chip.noc.totalWords()));
            }
            if (group_hist != nullptr)
                group_hist->sample(
                    std::log2(std::max(1.0, now - group_start)));
            now += kGroupSwitchCycles;
            stats.flops += group.flops;
        }
    }
    stats.cycles = now;
    stats.dramWords = chip.dram.totalWords();
    stats.sramWords = chip.sram.totalWords();
    stats.nocWords = chip.noc.totalWords();
    stats.dramRowHits = chip.dram.rowHits();
    stats.dramRowMisses = chip.dram.rowMisses();
    stats.events = queue.processed();
    if (stats.faultsEnabled) {
        stats.faultDramEcc = chip.dram.faultEccCorrected();
        stats.faultDramRetried = chip.dram.faultRetriedAccesses();
        stats.faultDramRetries = chip.dram.faultRetries();
        stats.faultDramStalls = chip.dram.faultStalledBursts();
        stats.faultNocReroutes = chip.noc.faultReroutes();
    }
    if (telem != nullptr && telem->registry != nullptr)
        stats.accumulateInto(*telem->registry, telem->statsPrefix);
    return stats;
}

sched::WorkloadResult
simulateWorkload(const graph::Workload &w, const hw::HwConfig &cfg,
                 const sched::SchedOptions &opt,
                 const telemetry::SimTelemetry *telem,
                 const fault::FaultInjector *faults)
{
    hw::validateConfig(cfg);
    hw::HwConfig cluster_cfg = cfg;
    if (opt.clusters > 1) {
        cluster_cfg.numPes = std::max<u32>(1, cfg.numPes / opt.clusters);
        cluster_cfg.meshY = std::max<u32>(1, cfg.meshY / opt.clusters);
        cluster_cfg.sramGBs = cfg.sramGBs / opt.clusters;
        cluster_cfg.dramGBs = cfg.dramGBs / opt.clusters;
    }

    std::vector<sched::Schedule> schedules;
    schedules.reserve(w.segments.size());
    for (const auto &seg : w.segments) {
        if (telem != nullptr && telem->trace != nullptr)
            telem->trace->beginProcess(seg.name);
        sched::Schedule s =
            sched::scheduleGraph(seg.graph, cluster_cfg, opt);
        SimStats sim = simulateSchedule(s, cluster_cfg, telem, faults);
        // Replace the analytical cycle estimate with the simulated one;
        // warm repetitions scale by the same contention ratio.
        double ratio = s.stats.cycles > 0 ? sim.cycles / s.stats.cycles
                                          : 1.0;
        ratio = std::max(1.0, ratio);
        s.stats.cycles = sim.cycles;
        s.warmStats.cycles *= ratio;
        schedules.push_back(std::move(s));
    }
    return sched::aggregateWorkload(w, cfg, schedules, opt.clusters,
                                    opt.shareAuxAcrossClusters);
}

}  // namespace crophe::sim
