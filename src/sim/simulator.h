#ifndef CROPHE_SIM_SIMULATOR_H_
#define CROPHE_SIM_SIMULATOR_H_

/**
 * @file
 * Cycle-level simulator (Section VI): consumes the mapper's traces and
 * drives chunk execution over PE groups, the mesh NoC, the banked global
 * buffer, the transpose unit, and the HBM model with a discrete-event
 * kernel. Group switching is fully synchronous, as in the hardware.
 */

#include "graph/workloads.h"
#include "sched/cost_model.h"
#include "sched/group.h"
#include "sim/stats.h"

namespace crophe::telemetry {
struct SimTelemetry;
}  // namespace crophe::telemetry

namespace crophe::sim {

/**
 * Simulate one scheduled segment on @p cfg.
 *
 * With @p telem set, per-resource busy spans (PE groups, NoC, SRAM,
 * transpose unit, DRAM channels), group-switch instants and traffic
 * counters are recorded into its trace, and the run's SimStats are
 * accumulated into its registry. Null (the default) records nothing and
 * leaves simulated timing bit-identical.
 */
SimStats simulateSchedule(const sched::Schedule &sched,
                          const hw::HwConfig &cfg,
                          const telemetry::SimTelemetry *telem = nullptr);

/**
 * Schedule and simulate a whole workload: every unique segment is
 * scheduled and simulated once (cold), warm repetitions are scaled by the
 * simulated-to-analytical ratio, and the totals are aggregated with the
 * same cluster model as the scheduler. Each segment becomes one trace
 * process when @p telem is set.
 */
sched::WorkloadResult simulateWorkload(
    const graph::Workload &w, const hw::HwConfig &cfg,
    const sched::SchedOptions &opt,
    const telemetry::SimTelemetry *telem = nullptr);

}  // namespace crophe::sim

#endif  // CROPHE_SIM_SIMULATOR_H_
