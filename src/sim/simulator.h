#ifndef CROPHE_SIM_SIMULATOR_H_
#define CROPHE_SIM_SIMULATOR_H_

/**
 * @file
 * Cycle-level simulator (Section VI): consumes the mapper's traces and
 * drives chunk execution over PE groups, the mesh NoC, the banked global
 * buffer, the transpose unit, and the HBM model with a discrete-event
 * kernel. Group switching is fully synchronous, as in the hardware.
 */

#include "graph/workloads.h"
#include "sched/cost_model.h"
#include "sched/group.h"
#include "sim/stats.h"

namespace crophe::telemetry {
struct SimTelemetry;
}  // namespace crophe::telemetry

namespace crophe::fault {
class FaultInjector;
}  // namespace crophe::fault

namespace crophe::sim {

/**
 * Simulate one scheduled segment on @p cfg.
 *
 * With @p telem set, per-resource busy spans (PE groups, NoC, SRAM,
 * transpose unit, DRAM channels), group-switch instants and traffic
 * counters are recorded into its trace, and the run's SimStats are
 * accumulated into its registry. Null (the default) records nothing and
 * leaves simulated timing bit-identical.
 *
 * With @p faults set (and its plan non-empty), the DRAM and NoC models
 * suffer the plan's transient faults (DESIGN.md §9); the stats report
 * faultsEnabled plus per-kind counters. Null or an empty plan is
 * bit-identical to a healthy run.
 */
SimStats simulateSchedule(const sched::Schedule &sched,
                          const hw::HwConfig &cfg,
                          const telemetry::SimTelemetry *telem = nullptr,
                          const fault::FaultInjector *faults = nullptr);

/**
 * Schedule and simulate a whole workload: every unique segment is
 * scheduled and simulated once (cold), warm repetitions are scaled by the
 * simulated-to-analytical ratio, and the totals are aggregated with the
 * same cluster model as the scheduler. Each segment becomes one trace
 * process when @p telem is set. @p faults (if non-null) applies to every
 * segment's simulation.
 */
sched::WorkloadResult simulateWorkload(
    const graph::Workload &w, const hw::HwConfig &cfg,
    const sched::SchedOptions &opt,
    const telemetry::SimTelemetry *telem = nullptr,
    const fault::FaultInjector *faults = nullptr);

}  // namespace crophe::sim

#endif  // CROPHE_SIM_SIMULATOR_H_
