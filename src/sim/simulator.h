#ifndef CROPHE_SIM_SIMULATOR_H_
#define CROPHE_SIM_SIMULATOR_H_

/**
 * @file
 * Cycle-level simulator (Section VI): consumes the mapper's traces and
 * drives chunk execution over PE groups, the mesh NoC, the banked global
 * buffer, the transpose unit, and the HBM model with a discrete-event
 * kernel. Group switching is fully synchronous, as in the hardware.
 */

#include "graph/workloads.h"
#include "sched/cost_model.h"
#include "sched/group.h"
#include "sim/stats.h"

namespace crophe::sim {

/** Simulate one scheduled segment on @p cfg. */
SimStats simulateSchedule(const sched::Schedule &sched,
                          const hw::HwConfig &cfg);

/**
 * Schedule and simulate a whole workload: every unique segment is
 * scheduled and simulated once (cold), warm repetitions are scaled by the
 * simulated-to-analytical ratio, and the totals are aggregated with the
 * same cluster model as the scheduler.
 */
sched::WorkloadResult simulateWorkload(const graph::Workload &w,
                                       const hw::HwConfig &cfg,
                                       const sched::SchedOptions &opt);

}  // namespace crophe::sim

#endif  // CROPHE_SIM_SIMULATOR_H_
