#ifndef CROPHE_SIM_TRANSPOSE_UNIT_H_
#define CROPHE_SIM_TRANSPOSE_UNIT_H_

/**
 * @file
 * SRAM-based transpose unit (Section IV-A): stages a tensor and emits it
 * in the transposed orientation. Its few-MB buffer bounds the tile it can
 * hold at once; larger tensors stream through in tiles.
 */

#include "hw/config.h"
#include "sim/event_queue.h"

namespace crophe::sim {

/** On-chip transpose unit. */
class TransposeUnit
{
  public:
    explicit TransposeUnit(const hw::HwConfig &cfg);

    /** Transpose @p words starting at @p ready; returns completion. */
    SimTime transpose(SimTime ready, u64 words);

    /** Record staging-port occupancy spans on a "Transpose unit" track. */
    void attachTrace(telemetry::TraceRecorder *rec);

    double busyCycles() const { return port_.busyCycles(); }
    u64 totalWords() const { return totalWords_; }
    u64 capacityWords() const { return capacityWords_; }

  private:
    Server port_;
    u64 capacityWords_;
    u64 totalWords_ = 0;
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_TRANSPOSE_UNIT_H_
