#include "sim/dram.h"

#include <string>

#include "common/math_util.h"
#include "telemetry/trace_recorder.h"

namespace crophe::sim {

DramModel::DramModel(const hw::HwConfig &cfg)
    : wordsPerCycle_(cfg.dramGBs / (cfg.wordBytes() * cfg.freqGhz)),
      rowMissPenalty_(40.0),
      rowWords_(static_cast<u64>(2048.0 / cfg.wordBytes())),
      channel_(cfg.dramGBs / (cfg.wordBytes() * cfg.freqGhz))
{
    for (auto &s : lastStream_)
        s = ~0u;
}

SimTime
DramModel::access(SimTime ready, u64 words, u32 stream_id)
{
    if (words == 0)
        return ready;
    totalWords_ += words;

    // A requester switch on its pseudo-channel closes the open rows;
    // within a stream, accesses are sequential and hit open rows except
    // at row boundaries.
    u32 ch = stream_id % kChannels;
    u64 rows = std::max<u64>(1, ceilDiv(words, rowWords_));
    double latency;
    bool row_hit = stream_id == lastStream_[ch];
    if (!row_hit) {
        latency = rowMissPenalty_;
        ++rowMisses_;
        rowHits_ += rows - 1;
    } else {
        latency = 0.0;
        rowHits_ += rows;
    }
    lastStream_[ch] = stream_id;
    SimTime done = channel_.serve(ready, static_cast<double>(words), latency);
    if (trace_ != nullptr)
        recordBurst(ch, words, row_hit);
    return done;
}

void
DramModel::attachTrace(telemetry::TraceRecorder *rec)
{
    trace_ = rec;
}

void
DramModel::recordBurst(u32 ch, u64 words, bool row_hit)
{
    if (chTrack_[ch] == 0)
        chTrack_[ch] = trace_->track("DRAM ch" + std::to_string(ch));
    // The shared channel server serializes all bursts, so per-channel
    // spans never overlap.
    SimTime start = channel_.lastStart();
    trace_->complete(chTrack_[ch], "burst", start, channel_.freeAt() - start,
                     {{"words", static_cast<double>(words)},
                      {"rowHit", row_hit ? 1.0 : 0.0}});
}

}  // namespace crophe::sim
