#include "sim/dram.h"

#include "common/math_util.h"

namespace crophe::sim {

DramModel::DramModel(const hw::HwConfig &cfg)
    : wordsPerCycle_(cfg.dramGBs / (cfg.wordBytes() * cfg.freqGhz)),
      rowMissPenalty_(40.0),
      rowWords_(static_cast<u64>(2048.0 / cfg.wordBytes())),
      channel_(cfg.dramGBs / (cfg.wordBytes() * cfg.freqGhz))
{
    for (auto &s : lastStream_)
        s = ~0u;
}

SimTime
DramModel::access(SimTime ready, u64 words, u32 stream_id)
{
    if (words == 0)
        return ready;
    totalWords_ += words;

    // A requester switch on its pseudo-channel closes the open rows;
    // within a stream, accesses are sequential and hit open rows except
    // at row boundaries.
    u32 ch = stream_id % kChannels;
    u64 rows = std::max<u64>(1, ceilDiv(words, rowWords_));
    double latency;
    if (stream_id != lastStream_[ch]) {
        latency = rowMissPenalty_;
        ++rowMisses_;
        rowHits_ += rows - 1;
    } else {
        latency = 0.0;
        rowHits_ += rows;
    }
    lastStream_[ch] = stream_id;
    return channel_.serve(ready, static_cast<double>(words), latency);
}

}  // namespace crophe::sim
