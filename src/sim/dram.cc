#include "sim/dram.h"

#include <string>

#include "common/logging.h"
#include "common/math_util.h"
#include "telemetry/trace_recorder.h"

namespace crophe::sim {

namespace {

/** Words per cycle for the shared channel server; degenerate configs
 *  (zero bandwidth, frequency, or word size) would otherwise divide by
 *  zero and hand Server a rate of 0 or inf. */
double
dramWordsPerCycle(const hw::HwConfig &cfg)
{
    CROPHE_ASSERT(cfg.dramGBs > 0.0, "dramGBs must be positive, got ",
                  cfg.dramGBs);
    CROPHE_ASSERT(cfg.freqGhz > 0.0, "freqGhz must be positive, got ",
                  cfg.freqGhz);
    CROPHE_ASSERT(cfg.wordBytes() > 0, "wordBits must be at least 8, got ",
                  cfg.wordBits);
    return cfg.dramGBs / (cfg.wordBytes() * cfg.freqGhz);
}

}  // namespace

DramModel::DramModel(const hw::HwConfig &cfg)
    : wordsPerCycle_(dramWordsPerCycle(cfg)),
      rowMissPenalty_(40.0),
      rowWords_(static_cast<u64>(2048.0 / cfg.wordBytes())),
      channel_(wordsPerCycle_)
{
    for (auto &s : lastStream_)
        s = ~0u;
}

SimTime
DramModel::access(SimTime ready, u64 words, u32 stream_id)
{
    if (words == 0)
        return ready;
    totalWords_ += words;

    // A requester switch on its pseudo-channel closes the open rows;
    // within a stream, accesses are sequential and hit open rows except
    // at row boundaries. Crossing into a fresh row is always an
    // activation: a continuing stream re-opens rows - 1 times (its first
    // row is still open), a switching stream rows times, and every
    // activation pays the row-miss penalty up front.
    u32 ch = stream_id % kChannels;
    u64 rows = std::max<u64>(1, ceilDiv(words, rowWords_));
    bool row_hit = stream_id == lastStream_[ch];
    u64 misses = row_hit ? rows - 1 : rows;
    rowMisses_ += misses;
    rowHits_ += rows - misses;
    double latency = static_cast<double>(misses) * rowMissPenalty_;
    if (faults_ != nullptr)
        latency += faultLatency(ch);
    lastStream_[ch] = stream_id;
    SimTime done = channel_.serve(ready, static_cast<double>(words), latency);
    if (trace_ != nullptr) {
        recordBurst(ch, words, row_hit);
        // Per-fault Perfetto instants, pinned to the burst they hit.
        if (lastFault_ != nullptr) {
            trace_->instant(lastFault_, channel_.lastStart());
            lastFault_ = nullptr;
        }
    }
    return done;
}

double
DramModel::faultLatency(u32 ch)
{
    // Local draw counter: decisions depend only on (seed, site, index),
    // and the index advances in deterministic simulated-event order.
    u64 n = accessIndex_++;
    double extra = 0.0;
    if (faults_->channelStalled(ch)) {
        ++faultStalledBursts_;
        extra += faults_->plan().channelStallCycles;
    }
    if (faults_->dramReadError(n)) {
        if (faults_->dramEccCorrected(n)) {
            // Corrected in the memory controller: counted, no retry cost.
            ++faultEccCorrected_;
            lastFault_ = "dram ecc";
        } else {
            u32 retries = faults_->dramRetries(n);
            ++faultRetriedAccesses_;
            faultRetries_ += retries;
            extra += faults_->retryBackoffCycles(retries);
            CROPHE_WARN_EVERY_N(1000, "transient DRAM read error: ",
                                retries, " retr",
                                retries == 1 ? "y" : "ies",
                                " with exponential backoff");
            lastFault_ = "dram retry";
        }
    }
    return extra;
}

void
DramModel::attachTrace(telemetry::TraceRecorder *rec)
{
    trace_ = rec;
}

void
DramModel::attachFaults(const fault::FaultInjector *faults)
{
    // An empty plan must be indistinguishable from a healthy run, so it
    // never even takes the fault branch in access().
    faults_ = (faults != nullptr && !faults->plan().empty()) ? faults
                                                             : nullptr;
}

void
DramModel::recordBurst(u32 ch, u64 words, bool row_hit)
{
    if (chTrack_[ch] == 0)
        chTrack_[ch] = trace_->track("DRAM ch" + std::to_string(ch));
    // The shared channel server serializes all bursts, so per-channel
    // spans never overlap.
    SimTime start = channel_.lastStart();
    trace_->complete(chTrack_[ch], "burst", start, channel_.freeAt() - start,
                     {{"words", static_cast<double>(words)},
                      {"rowHit", row_hit ? 1.0 : 0.0}});
}

}  // namespace crophe::sim
