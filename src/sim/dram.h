#ifndef CROPHE_SIM_DRAM_H_
#define CROPHE_SIM_DRAM_H_

/**
 * @file
 * HBM off-chip memory model (the Ramulator 2 substitution documented in
 * DESIGN.md): multiple pseudo-channels, burst granularity, and row
 * hit/miss timing. Streaming accesses from one requester hit open rows;
 * switching requesters costs row activations, so interleaved traffic
 * sustains less than peak bandwidth — the first-order behaviour the
 * paper's evaluation relies on.
 *
 * With a FaultInjector attached (DESIGN.md §9) the model additionally
 * suffers the plan's transient read errors — ECC-corrected in place or
 * re-read with exponential backoff, each retry's latency charged to the
 * access — and fixed stall latency on the plan's stalled pseudo-channels.
 * Without one (the default) the fault path costs a single null check and
 * timing is bit-identical to the fault-free model.
 */

#include "fault/fault_injector.h"
#include "hw/config.h"
#include "sim/event_queue.h"

namespace crophe::sim {

/** HBM timing/bandwidth model. */
class DramModel
{
  public:
    explicit DramModel(const hw::HwConfig &cfg);

    /**
     * Request @p words for requester @p stream_id at time @p ready;
     * returns completion time.
     */
    SimTime access(SimTime ready, u64 words, u32 stream_id);

    /** Record every burst as a span on one trace track per pseudo-channel
     *  (with word count and row hit/miss as span arguments). */
    void attachTrace(telemetry::TraceRecorder *rec);

    /** Inject @p faults into every subsequent access (null = healthy). */
    void attachFaults(const fault::FaultInjector *faults);

    double busyCycles() const { return channel_.busyCycles(); }
    u64 totalWords() const { return totalWords_; }
    u64 rowHits() const { return rowHits_; }
    u64 rowMisses() const { return rowMisses_; }
    u64 rowWords() const { return rowWords_; }
    double rowMissPenalty() const { return rowMissPenalty_; }
    double wordsPerCycle() const { return wordsPerCycle_; }

    /** Fault accounting (all zero with no injector attached). @{ */
    u64 faultEccCorrected() const { return faultEccCorrected_; }
    u64 faultRetriedAccesses() const { return faultRetriedAccesses_; }
    u64 faultRetries() const { return faultRetries_; }
    u64 faultStalledBursts() const { return faultStalledBursts_; }
    /** @} */

  private:
    /** HBM pseudo-channels: concurrent streams retain row locality as
     *  long as they map to different channels. */
    static constexpr u32 kChannels = 16;
    static_assert(kChannels == fault::FaultPlan::kDramChannels,
                  "fault plans pick stalled channels out of this universe");

    void recordBurst(u32 ch, u64 words, bool row_hit);
    /** Extra latency the fault plan charges this access (counts faults). */
    double faultLatency(u32 ch);

    double wordsPerCycle_;
    double rowMissPenalty_;  ///< cycles per row activation
    u64 rowWords_;           ///< words per DRAM row
    Server channel_;
    u32 lastStream_[kChannels];
    u64 totalWords_ = 0;
    u64 rowHits_ = 0;
    u64 rowMisses_ = 0;
    telemetry::TraceRecorder *trace_ = nullptr;
    u32 chTrack_[kChannels] = {};  ///< lazily created trace track ids

    const fault::FaultInjector *faults_ = nullptr;
    u64 accessIndex_ = 0;  ///< local draw counter (deterministic order)
    const char *lastFault_ = nullptr;  ///< instant name for this access
    u64 faultEccCorrected_ = 0;
    u64 faultRetriedAccesses_ = 0;
    u64 faultRetries_ = 0;
    u64 faultStalledBursts_ = 0;
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_DRAM_H_
