#ifndef CROPHE_SIM_DRAM_H_
#define CROPHE_SIM_DRAM_H_

/**
 * @file
 * HBM off-chip memory model (the Ramulator 2 substitution documented in
 * DESIGN.md): multiple pseudo-channels, burst granularity, and row
 * hit/miss timing. Streaming accesses from one requester hit open rows;
 * switching requesters costs row activations, so interleaved traffic
 * sustains less than peak bandwidth — the first-order behaviour the
 * paper's evaluation relies on.
 */

#include "hw/config.h"
#include "sim/event_queue.h"

namespace crophe::sim {

/** HBM timing/bandwidth model. */
class DramModel
{
  public:
    explicit DramModel(const hw::HwConfig &cfg);

    /**
     * Request @p words for requester @p stream_id at time @p ready;
     * returns completion time.
     */
    SimTime access(SimTime ready, u64 words, u32 stream_id);

    /** Record every burst as a span on one trace track per pseudo-channel
     *  (with word count and row hit/miss as span arguments). */
    void attachTrace(telemetry::TraceRecorder *rec);

    double busyCycles() const { return channel_.busyCycles(); }
    u64 totalWords() const { return totalWords_; }
    u64 rowHits() const { return rowHits_; }
    u64 rowMisses() const { return rowMisses_; }
    u64 rowWords() const { return rowWords_; }
    double rowMissPenalty() const { return rowMissPenalty_; }
    double wordsPerCycle() const { return wordsPerCycle_; }

  private:
    /** HBM pseudo-channels: concurrent streams retain row locality as
     *  long as they map to different channels. */
    static constexpr u32 kChannels = 16;

    void recordBurst(u32 ch, u64 words, bool row_hit);

    double wordsPerCycle_;
    double rowMissPenalty_;  ///< cycles per row activation
    u64 rowWords_;           ///< words per DRAM row
    Server channel_;
    u32 lastStream_[kChannels];
    u64 totalWords_ = 0;
    u64 rowHits_ = 0;
    u64 rowMisses_ = 0;
    telemetry::TraceRecorder *trace_ = nullptr;
    u32 chTrack_[kChannels] = {};  ///< lazily created trace track ids
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_DRAM_H_
