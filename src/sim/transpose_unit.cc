#include "sim/transpose_unit.h"

#include "common/math_util.h"
#include "telemetry/trace_recorder.h"

namespace crophe::sim {

TransposeUnit::TransposeUnit(const hw::HwConfig &cfg)
    // Lane-wide read+write ports; Server panics on lanes == 0.
    : port_(static_cast<double>(cfg.lanes)),
      capacityWords_(static_cast<u64>(cfg.transposeMB * 1024.0 * 1024.0 /
                                      cfg.wordBytes()))
{
}

SimTime
TransposeUnit::transpose(SimTime ready, u64 words)
{
    if (words == 0)
        return ready;
    totalWords_ += words;
    // Tiles larger than the staging buffer stream through in passes:
    // write a tile, read it transposed (2x the port traffic).
    u64 tiles = std::max<u64>(1, ceilDiv(words, capacityWords_));
    (void)tiles;
    return port_.serve(ready, 2.0 * static_cast<double>(words));
}

void
TransposeUnit::attachTrace(telemetry::TraceRecorder *rec)
{
    port_.attachTrace(rec, rec->track("Transpose unit"), "transpose");
}

}  // namespace crophe::sim
