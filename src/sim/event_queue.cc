#include "sim/event_queue.h"

#include "common/logging.h"

namespace crophe::sim {

void
EventQueue::schedule(SimTime when, Handler handler)
{
    CROPHE_ASSERT(when >= 0.0, "negative event time");
    queue_.push({when, nextSeq_++, std::move(handler)});
}

SimTime
EventQueue::runNext()
{
    CROPHE_ASSERT(!queue_.empty(), "runNext on empty queue");
    Event ev = queue_.top();
    queue_.pop();
    ++processed_;
    ev.handler(ev.when);
    return ev.when;
}

SimTime
EventQueue::runAll()
{
    SimTime last = 0.0;
    while (!queue_.empty())
        last = runNext();
    return last;
}

}  // namespace crophe::sim
