#include "sim/event_queue.h"

#include "common/logging.h"
#include "telemetry/trace_recorder.h"

namespace crophe::sim {

namespace {
/** Sampling period for the queue-depth trace counter. */
constexpr u64 kDepthSampleMask = 0xFF;
}  // namespace

void
EventQueue::schedule(SimTime when, Handler handler)
{
    CROPHE_ASSERT(when >= 0.0, "negative event time");
    queue_.push({when, nextSeq_++, std::move(handler)});
}

SimTime
EventQueue::runNext()
{
    CROPHE_ASSERT(!queue_.empty(), "runNext on empty queue");
    Event ev = queue_.top();
    queue_.pop();
    ++processed_;
    if (trace_ != nullptr && (processed_ & kDepthSampleMask) == 0)
        sampleDepth(ev.when);
    ev.handler(ev.when);
    return ev.when;
}

void
EventQueue::sampleDepth(SimTime now) const
{
    trace_->counter("events.queued", now,
                    static_cast<double>(queue_.size()));
}

SimTime
EventQueue::runAll()
{
    SimTime last = 0.0;
    while (!queue_.empty())
        last = runNext();
    return last;
}

void
Server::recordSpan(SimTime start, double duration) const
{
    trace_->complete(traceTrack_, traceName_, start, duration);
}

}  // namespace crophe::sim
