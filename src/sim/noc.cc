#include "sim/noc.h"

#include "common/logging.h"
#include "telemetry/trace_recorder.h"

namespace crophe::sim {

namespace {

double
nocCapacity(const hw::HwConfig &cfg)
{
    CROPHE_ASSERT(cfg.numPes > 0 && cfg.lanes > 0,
                  "NoC needs positive numPes and lanes, got ", cfg.numPes,
                  " PEs x ", cfg.lanes, " lanes");
    return static_cast<double>(cfg.numPes) * cfg.lanes / 4.0;
}

}  // namespace

NocModel::NocModel(const hw::HwConfig &cfg)
    : capacity_(nocCapacity(cfg)), links_(capacity_)
{
}

SimTime
NocModel::transfer(SimTime ready, u64 words, u32 hops, u32 fanout)
{
    if (words == 0)
        return ready;
    (void)fanout;  // router replication: the source injects once
    totalWords_ += words;
    if (faults_ != nullptr) {
        // Local draw counter: reroute decisions depend only on
        // (seed, site, index) in deterministic simulated-event order.
        u64 n = transferIndex_++;
        if (faults_->nocLinkFailed(n)) {
            ++faultReroutes_;
            hops += faults_->plan().nocRerouteExtraHops;
            CROPHE_WARN_EVERY_N(1000, "NoC link failure: rerouting with ",
                                faults_->plan().nocRerouteExtraHops,
                                " extra hop(s)");
            if (trace_ != nullptr)
                trace_->instant("noc reroute", ready);
        }
    }
    // Hop latency is pipelined through the routers: it delays delivery
    // but does not occupy link bandwidth.
    return links_.serve(ready, static_cast<double>(words)) +
           kHopLatency * hops;
}

void
NocModel::attachTrace(telemetry::TraceRecorder *rec)
{
    trace_ = rec;
    links_.attachTrace(rec, rec->track("NoC"), "transfer");
}

void
NocModel::attachFaults(const fault::FaultInjector *faults)
{
    // An empty plan must be indistinguishable from a healthy run.
    faults_ = (faults != nullptr && !faults->plan().empty()) ? faults
                                                             : nullptr;
}

}  // namespace crophe::sim
