#include "sim/noc.h"

#include "common/logging.h"
#include "telemetry/trace_recorder.h"

namespace crophe::sim {

namespace {

double
nocCapacity(const hw::HwConfig &cfg)
{
    CROPHE_ASSERT(cfg.numPes > 0 && cfg.lanes > 0,
                  "NoC needs positive numPes and lanes, got ", cfg.numPes,
                  " PEs x ", cfg.lanes, " lanes");
    return static_cast<double>(cfg.numPes) * cfg.lanes / 4.0;
}

}  // namespace

NocModel::NocModel(const hw::HwConfig &cfg)
    : capacity_(nocCapacity(cfg)), links_(capacity_)
{
}

SimTime
NocModel::transfer(SimTime ready, u64 words, u32 hops, u32 fanout)
{
    if (words == 0)
        return ready;
    (void)fanout;  // router replication: the source injects once
    totalWords_ += words;
    // Hop latency is pipelined through the routers: it delays delivery
    // but does not occupy link bandwidth.
    return links_.serve(ready, static_cast<double>(words)) +
           kHopLatency * hops;
}

void
NocModel::attachTrace(telemetry::TraceRecorder *rec)
{
    links_.attachTrace(rec, rec->track("NoC"), "transfer");
}

}  // namespace crophe::sim
