#include "sim/noc.h"

#include "telemetry/trace_recorder.h"

namespace crophe::sim {

NocModel::NocModel(const hw::HwConfig &cfg)
    : capacity_(static_cast<double>(cfg.numPes) * cfg.lanes / 4.0),
      links_(capacity_)
{
}

SimTime
NocModel::transfer(SimTime ready, u64 words, u32 hops, u32 fanout)
{
    if (words == 0)
        return ready;
    (void)fanout;  // router replication: the source injects once
    totalWords_ += words;
    // Hop latency is pipelined through the routers: it delays delivery
    // but does not occupy link bandwidth.
    return links_.serve(ready, static_cast<double>(words)) +
           kHopLatency * hops;
}

void
NocModel::attachTrace(telemetry::TraceRecorder *rec)
{
    links_.attachTrace(rec, rec->track("NoC"), "transfer");
}

}  // namespace crophe::sim
