#ifndef CROPHE_SIM_EVENT_QUEUE_H_
#define CROPHE_SIM_EVENT_QUEUE_H_

/**
 * @file
 * Minimal discrete-event kernel: a time-ordered queue of callbacks.
 */

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace crophe::sim {

/** Simulated time in (fractional) accelerator cycles. */
using SimTime = double;

/** Time-ordered event queue with stable pop order for equal timestamps. */
class EventQueue
{
  public:
    using Handler = std::function<void(SimTime)>;

    /** Schedule @p handler to run at @p when. */
    void schedule(SimTime when, Handler handler);

    /** True when no events remain. */
    bool empty() const { return queue_.empty(); }

    /** Pop and run the earliest event; returns its timestamp. */
    SimTime runNext();

    /** Run until the queue drains; returns the final event time. */
    SimTime runAll();

    u64 processed() const { return processed_; }

  private:
    struct Event
    {
        SimTime when;
        u64 seq;
        Handler handler;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when > b.when || (a.when == b.when && a.seq > b.seq);
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    u64 nextSeq_ = 0;
    u64 processed_ = 0;
};

/** A FIFO bandwidth server: one resource serving requests in order. */
class Server
{
  public:
    explicit Server(double rate_per_cycle = 1.0) : rate_(rate_per_cycle) {}

    /**
     * Serve @p amount units arriving at @p ready (plus @p fixed_latency);
     * returns the completion time.
     */
    SimTime
    serve(SimTime ready, double amount, double fixed_latency = 0.0)
    {
        double duration = rate_ > 0 ? amount / rate_ : 0.0;
        SimTime start = std::max(ready + fixed_latency, freeAt_);
        freeAt_ = start + duration;
        busy_ += duration;
        served_ += amount;
        return freeAt_;
    }

    double busyCycles() const { return busy_; }
    double servedUnits() const { return served_; }
    SimTime freeAt() const { return freeAt_; }

  private:
    double rate_;
    SimTime freeAt_ = 0.0;
    double busy_ = 0.0;
    double served_ = 0.0;
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_EVENT_QUEUE_H_
