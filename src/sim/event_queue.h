#ifndef CROPHE_SIM_EVENT_QUEUE_H_
#define CROPHE_SIM_EVENT_QUEUE_H_

/**
 * @file
 * Minimal discrete-event kernel: a time-ordered queue of callbacks.
 */

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace crophe::telemetry {
class TraceRecorder;
}  // namespace crophe::telemetry

namespace crophe::sim {

/** Simulated time in (fractional) accelerator cycles. */
using SimTime = double;

/** Time-ordered event queue with stable pop order for equal timestamps. */
class EventQueue
{
  public:
    using Handler = std::function<void(SimTime)>;

    /** Schedule @p handler to run at @p when. */
    void schedule(SimTime when, Handler handler);

    /** True when no events remain. */
    bool empty() const { return queue_.empty(); }

    /** Pop and run the earliest event; returns its timestamp. */
    SimTime runNext();

    /** Run until the queue drains; returns the final event time. */
    SimTime runAll();

    u64 processed() const { return processed_; }

    /**
     * Periodically sample the queue depth as a trace counter while
     * running (null recorder = no work). Observation only; event order
     * and timing are unaffected.
     */
    void attachTrace(telemetry::TraceRecorder *rec) { trace_ = rec; }

  private:
    void sampleDepth(SimTime now) const;

    struct Event
    {
        SimTime when;
        u64 seq;
        Handler handler;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when > b.when || (a.when == b.when && a.seq > b.seq);
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    u64 nextSeq_ = 0;
    u64 processed_ = 0;
    telemetry::TraceRecorder *trace_ = nullptr;
};

/** A FIFO bandwidth server: one resource serving requests in order. */
class Server
{
  public:
    /** @param rate_per_cycle units served per cycle; must be positive —
     *  a zero rate would silently model infinite bandwidth. */
    explicit Server(double rate_per_cycle = 1.0) : rate_(rate_per_cycle)
    {
        if (!(rate_ > 0.0))
            CROPHE_PANIC("Server rate must be positive, got ", rate_);
    }

    /**
     * Serve @p amount units arriving at @p ready (plus @p fixed_latency);
     * returns the completion time.
     */
    SimTime
    serve(SimTime ready, double amount, double fixed_latency = 0.0)
    {
        double duration = amount / rate_;
        SimTime start = std::max(ready + fixed_latency, freeAt_);
        freeAt_ = start + duration;
        busy_ += duration;
        served_ += amount;
        lastStart_ = start;
        if (trace_ != nullptr && duration > 0.0)
            recordSpan(start, duration);
        return freeAt_;
    }

    /**
     * Record every busy interval as a span named @p span_name on @p track
     * of @p rec. Purely observational: the serve timing above is computed
     * before recording and never depends on it.
     */
    void
    attachTrace(telemetry::TraceRecorder *rec, u32 track,
                const char *span_name)
    {
        trace_ = rec;
        traceTrack_ = track;
        traceName_ = span_name;
    }

    double busyCycles() const { return busy_; }
    double servedUnits() const { return served_; }
    SimTime freeAt() const { return freeAt_; }
    /** Start time of the most recent serve() (for span recording). */
    SimTime lastStart() const { return lastStart_; }

  private:
    void recordSpan(SimTime start, double duration) const;

    double rate_;
    SimTime freeAt_ = 0.0;
    double busy_ = 0.0;
    double served_ = 0.0;
    SimTime lastStart_ = 0.0;
    telemetry::TraceRecorder *trace_ = nullptr;
    u32 traceTrack_ = 0;
    const char *traceName_ = "serve";
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_EVENT_QUEUE_H_
