#ifndef CROPHE_SIM_NOC_H_
#define CROPHE_SIM_NOC_H_

/**
 * @file
 * Mesh NoC model (Section IV-A): packet-based hop-by-hop transfers with
 * XY routing and multicast. Transfers pay a per-hop latency plus
 * serialization on the aggregate mesh bandwidth; the producer-consumer
 * routes are statically known from the mapping.
 *
 * With a FaultInjector attached (DESIGN.md §9), transfers can hit a
 * failed link and detour around it, paying the plan's extra hops; the
 * reroute is counted and traced but the static routes stay valid.
 */

#include "fault/fault_injector.h"
#include "hw/config.h"
#include "sim/event_queue.h"

namespace crophe::sim {

/** Aggregate mesh interconnect model. */
class NocModel
{
  public:
    explicit NocModel(const hw::HwConfig &cfg);

    /**
     * Transfer @p words over @p hops mesh hops starting at @p ready;
     * multicast transfers (fanout > 1) send the data once and replicate
     * at the routers, paying only the longest path.
     */
    SimTime transfer(SimTime ready, u64 words, u32 hops, u32 fanout = 1);

    /** Record link-occupancy spans on a "NoC" trace track. */
    void attachTrace(telemetry::TraceRecorder *rec);

    /** Inject @p faults into every subsequent transfer (null = healthy). */
    void attachFaults(const fault::FaultInjector *faults);

    double busyCycles() const { return links_.busyCycles(); }
    u64 totalWords() const { return totalWords_; }
    double capacityWordsPerCycle() const { return capacity_; }

    /** Transfers that detoured around a failed link (zero when healthy). */
    u64 faultReroutes() const { return faultReroutes_; }

  private:
    static constexpr double kHopLatency = 1.0;  ///< cycles per hop

    double capacity_;
    Server links_;
    u64 totalWords_ = 0;
    telemetry::TraceRecorder *trace_ = nullptr;

    const fault::FaultInjector *faults_ = nullptr;
    u64 transferIndex_ = 0;  ///< local draw counter (deterministic order)
    u64 faultReroutes_ = 0;
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_NOC_H_
