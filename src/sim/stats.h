#ifndef CROPHE_SIM_STATS_H_
#define CROPHE_SIM_STATS_H_

/**
 * @file
 * Simulation statistics: cycle counts plus per-resource busy/traffic
 * numbers, convertible to the scheduler's SchedStats for apples-to-apples
 * reporting (Table IV, Figure 11).
 */

#include <string>

#include "hw/config.h"
#include "sched/group.h"

namespace crophe::telemetry {
class StatsRegistry;
}  // namespace crophe::telemetry

namespace crophe::sim {

/** Result of simulating one schedule. */
struct SimStats
{
    double cycles = 0.0;
    u64 dramWords = 0;
    u64 sramWords = 0;
    u64 nocWords = 0;
    u64 transposeWords = 0;
    u64 flops = 0;
    u64 events = 0;       ///< discrete events processed
    double peBusy = 0.0;  ///< summed PE-group busy cycles
    u64 dramRowHits = 0;
    u64 dramRowMisses = 0;

    /**
     * Fault-injection accounting (DESIGN.md §9). All zero — and
     * faultsEnabled false — when no fault plan is active, in which case
     * accumulateInto() registers no fault.* paths at all, keeping healthy
     * stats dumps byte-identical to pre-fault builds. @{
     */
    bool faultsEnabled = false;
    u64 faultDramEcc = 0;       ///< reads corrected in place by ECC
    u64 faultDramRetried = 0;   ///< reads that needed re-issue
    u64 faultDramRetries = 0;   ///< total re-issues (with backoff)
    u64 faultDramStalls = 0;    ///< bursts hitting a stalled channel
    u64 faultNocReroutes = 0;   ///< transfers detoured around dead links
    /** @} */

    /** Convert to SchedStats (fills utilizations for @p cfg). */
    sched::SchedStats toSchedStats(const hw::HwConfig &cfg) const;

    /** DRAM row-buffer hit fraction (0 when no rows were touched). */
    double dramRowHitRate() const;

    /**
     * Accumulate (+=) these stats into @p reg under dotted paths below
     * @p prefix ("sim.cycles", "sim.dram.words", ...). Repeated calls sum,
     * so a multi-segment run's registry holds the workload totals.
     */
    void accumulateInto(telemetry::StatsRegistry &reg,
                        const std::string &prefix = "sim") const;

    std::string toString() const;
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_STATS_H_
