#ifndef CROPHE_SIM_STATS_H_
#define CROPHE_SIM_STATS_H_

/**
 * @file
 * Simulation statistics: cycle counts plus per-resource busy/traffic
 * numbers, convertible to the scheduler's SchedStats for apples-to-apples
 * reporting (Table IV, Figure 11).
 */

#include <string>

#include "hw/config.h"
#include "sched/group.h"

namespace crophe::telemetry {
class StatsRegistry;
}  // namespace crophe::telemetry

namespace crophe::sim {

/** Result of simulating one schedule. */
struct SimStats
{
    double cycles = 0.0;
    u64 dramWords = 0;
    u64 sramWords = 0;
    u64 nocWords = 0;
    u64 transposeWords = 0;
    u64 flops = 0;
    u64 events = 0;       ///< discrete events processed
    double peBusy = 0.0;  ///< summed PE-group busy cycles
    u64 dramRowHits = 0;
    u64 dramRowMisses = 0;

    /** Convert to SchedStats (fills utilizations for @p cfg). */
    sched::SchedStats toSchedStats(const hw::HwConfig &cfg) const;

    /** DRAM row-buffer hit fraction (0 when no rows were touched). */
    double dramRowHitRate() const;

    /**
     * Accumulate (+=) these stats into @p reg under dotted paths below
     * @p prefix ("sim.cycles", "sim.dram.words", ...). Repeated calls sum,
     * so a multi-segment run's registry holds the workload totals.
     */
    void accumulateInto(telemetry::StatsRegistry &reg,
                        const std::string &prefix = "sim") const;

    std::string toString() const;
};

}  // namespace crophe::sim

#endif  // CROPHE_SIM_STATS_H_
