/**
 * @file
 * Multi-tenant serving simulation (DESIGN.md §11): generate a seeded
 * open-loop arrival trace over the workload catalog, run the
 * virtual-time dispatcher on one accelerator config, and report
 * per-tenant latency percentiles, goodput, rejections and fairness.
 *
 * Everything is deterministic: a fixed --seed and flag set produce
 * byte-identical stdout, --stats-out JSON and --trace-out JSON at any
 * --threads value. The stdout table contains no plan-cache-dependent
 * numbers, so a cold-cache and a warm-cache run (same flags,
 * --plan-ms 0) print byte-identical tables; the cache's effect shows up
 * in --stats-out under serve.plan.* and plan.cache.*, and — with
 * --plan-ms > 0 — as lower tail latency (the virtual planning charge is
 * waived on cache hits).
 *
 * Failure recovery (DESIGN.md §14): --fault-plan accepts the timed
 * chip-fail@T=K / link-degrade@T=F / batch-fail events, the recovery
 * knobs (--retries, --breaker-threshold, --hedge, ...) shape how the
 * dispatcher reacts, and --chaos-soak N replaces the single run with N
 * seeded random fault scenarios, each checked for request conservation
 * (offered == completed + rejected + expired). An empty or absent fault
 * plan leaves every byte of output identical to pre-recovery builds.
 *
 * SIGINT/SIGTERM stop the event loop and flush partial telemetry
 * (marked truncated), exiting 130.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/shutdown.h"
#include "fault/fault_plan.h"
#include "plan/plan_cache.h"
#include "serve/dispatcher.h"
#include "serve/report.h"
#include "serve/traffic.h"
#include "telemetry/stats_registry.h"
#include "telemetry/trace_recorder.h"

using namespace crophe;

namespace {

/**
 * Derive the @p iter-th chaos scenario from @p seed: always a transient
 * batch-fail rate, plus (on a multi-chip pod) one mid-window chip-fail
 * that leaves at least one survivor and, half the time, a link
 * degradation. Pure function of (seed, iter) — the soak is byte-identical
 * across runs and thread counts.
 */
fault::FaultPlan
chaosScenario(u32 seed, u32 iter, u32 chips, double duration)
{
    Rng rng(static_cast<u64>(seed) * 0x9e3779b97f4a7c15ULL + iter + 1);
    fault::FaultPlan plan;
    plan.seed = rng.next();
    plan.batchFailRate = 0.02 + 0.08 * rng.nextDouble();
    if (chips > 1) {
        fault::ChipFailEvent ev;
        ev.seconds = duration * (0.1 + 0.8 * rng.nextDouble());
        ev.chips = 1 + static_cast<u32>(rng.nextBounded(chips - 1));
        plan.chipFails.push_back(ev);
        if (rng.nextBounded(2) == 0) {
            fault::LinkDegradeEvent ld;
            ld.seconds = duration * (0.1 + 0.8 * rng.nextDouble());
            ld.fraction = 0.3 + 0.6 * rng.nextDouble();
            plan.linkDegrades.push_back(ld);
        }
    }
    return plan;
}

/**
 * Run @p iterations seeded chaos scenarios over the same arrival trace
 * and assert the conservation invariant on each: every offered request
 * reaches exactly one terminal state. Returns 0 when every scenario
 * holds, 1 on a violation, kShutdownExitCode on SIGINT.
 */
int
runChaosSoak(const baselines::DesignSpec &design,
             const serve::Catalog &catalog,
             const std::vector<serve::TenantSpec> &specs,
             const std::vector<serve::Request> &arrivals, double duration,
             const serve::ServeOptions &base, u32 seed, u32 iterations)
{
    std::printf("chaos soak: %u scenarios over %zu arrivals (seed %u)\n\n",
                iterations, arrivals.size(), seed);
    for (u32 i = 0; i < iterations; ++i) {
        serve::ServeOptions opt = base;
        opt.trace = nullptr;  // soak telemetry is the stdout summary
        opt.faultPlan = chaosScenario(seed, i, opt.pod.chips, duration);
        serve::Dispatcher dispatcher(design.cfg, catalog, specs, opt);
        auto result = dispatcher.run(arrivals, duration);
        if (result.truncated) {
            std::fprintf(stderr, "\ninterrupted: soak aborted\n");
            return kShutdownExitCode;
        }
        auto report = serve::buildReport(result, specs);
        const auto &t = report.total;
        const u64 rejected = t.rejectedThrottled + t.rejectedOverload +
                             t.rejectedBreaker;
        const u64 accounted = t.completed + rejected + t.expired;
        std::printf("soak %2u: plan \"%s\"\n", i,
                    opt.faultPlan.toString().c_str());
        std::printf("         offered=%llu completed=%llu rejected=%llu "
                    "expired=%llu replays=%llu lost=%llu\n",
                    (unsigned long long)t.offered,
                    (unsigned long long)t.completed,
                    (unsigned long long)rejected,
                    (unsigned long long)t.expired,
                    (unsigned long long)report.recovery.replays,
                    (unsigned long long)report.recovery.lostRequests);
        if (accounted != t.offered) {
            std::fprintf(stderr,
                         "soak %u: CONSERVATION VIOLATED: offered %llu != "
                         "completed %llu + rejected %llu + expired %llu\n",
                         i, (unsigned long long)t.offered,
                         (unsigned long long)t.completed,
                         (unsigned long long)rejected,
                         (unsigned long long)t.expired);
            return 1;
        }
    }
    std::printf("\nchaos soak passed: conservation held on all %u "
                "scenarios\n",
                iterations);
    return 0;
}

int
run(int argc, char **argv)
{
    double duration = 2.0;
    double arrival_rate = 30.0;
    u32 tenants = 2;
    std::string mix_name = "blend";
    double sla_ms = 100.0;
    std::string design_name = "CROPHE-36";
    std::string policy_name = "edf";
    u32 max_batch = 8;
    double plan_ms = 0.0;
    double shed_factor = 8.0;
    double bucket_rate = 0.0;
    double bucket_burst = 4.0;
    double search_deadline = 0.0;
    u32 chips = 1;
    double link_gbs = 600.0;
    double link_latency = 500.0;
    std::string fault_spec = fault::FaultPlan::specFromEnv();
    u32 retries = 2;
    double retry_backoff_ms = 10.0;
    u32 breaker_threshold = 0;
    double breaker_reset_ms = 1000.0;
    double repartition_ms = 50.0;
    bool hedge = false;
    u32 chaos_soak = 0;

    cli::FlagParser flags(
        "Multi-tenant FHE serving simulation on one accelerator.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kStatsOut |
                                   cli::CommonFlags::kTraceOut |
                                   cli::CommonFlags::kPlanCache |
                                   cli::CommonFlags::kSeed);
    flags.addDouble("--duration", &duration,
                    "traffic window in virtual seconds");
    flags.addDouble("--arrival-rate", &arrival_rate,
                    "aggregate Poisson arrival rate (req/s, split evenly "
                    "across tenants)");
    flags.addUint("--tenants", &tenants, "number of tenants");
    flags.addString("--mix", &mix_name,
                    "workload mix: bootstrap, matvec, blend, or micro");
    flags.addDouble("--sla-ms", &sla_ms, "per-request SLA in milliseconds");
    flags.addString("--design", &design_name,
                    "accelerator design (Table I name)");
    flags.addString("--policy", &policy_name,
                    "queue ordering: fifo, edf, or wfq");
    flags.addUint("--max-batch", &max_batch,
                  "max same-template requests per dispatch");
    flags.addDouble("--plan-ms", &plan_ms,
                    "virtual planning latency per graph op on a "
                    "plan-cache miss (ms)");
    flags.addDouble("--shed-factor", &shed_factor,
                    "shed when projected wait exceeds factor x SLA "
                    "(0 = never)");
    flags.addDouble("--bucket-rate", &bucket_rate,
                    "per-tenant admission tokens per second (0 = "
                    "unlimited)");
    flags.addDouble("--bucket-burst", &bucket_burst,
                    "per-tenant token-bucket burst size");
    flags.addDouble("--search-deadline", &search_deadline,
                    "anytime budget per cache-miss schedule search in "
                    "seconds (nonzero trades determinism for bounded "
                    "wall-clock)");
    flags.addUint("--chips", &chips,
                  "accelerators in the serving pod (1 = single chip)");
    flags.addDouble("--link-gbs", &link_gbs,
                    "pod ring-link bandwidth per direction (GB/s)");
    flags.addDouble("--link-latency", &link_latency,
                    "pod ring-link latency per hop (chip cycles)");
    flags.addString("--fault-plan", &fault_spec,
                    "fault spec (default $CROPHE_FAULT_PLAN); timed "
                    "chip-fail@T=K, link-degrade@T=F and batch-fail "
                    "events drive online recovery (DESIGN.md 14)");
    flags.addUint("--retries", &retries,
                  "failed attempts a request may retry before expiring");
    flags.addDouble("--retry-backoff-ms", &retry_backoff_ms,
                    "backoff before the first retry (doubles per retry)");
    flags.addUint("--breaker-threshold", &breaker_threshold,
                  "consecutive failures that trip a tenant's circuit "
                  "breaker (0 = disabled)");
    flags.addDouble("--breaker-reset-ms", &breaker_reset_ms,
                    "open-breaker dwell before a half-open trial");
    flags.addDouble("--repartition-ms", &repartition_ms,
                    "virtual downtime per online survivor repartition");
    flags.addBool("--hedge", &hedge,
                  "duplicate retried batches onto an idle second chip "
                  "group (needs >= 2 alive chips)");
    flags.addUint("--chaos-soak", &chaos_soak,
                  "run N seeded random fault scenarios and assert request "
                  "conservation (ignores --fault-plan and telemetry "
                  "outputs)");
    if (!flags.parse(argc, argv))
        return 1;
    const u32 seed = common.seed;
    const std::string &plan_dir = common.planCacheDir;
    const std::string &stats_out = common.statsOut;
    const std::string &trace_out = common.traceOut;

    // Flag-domain validation (DESIGN.md §9): nonsensical values are
    // rejected here with a typed error + usage instead of reaching the
    // dispatcher. The fault plan parses against the pod size, so a plan
    // that would kill the whole pod is a flag error, not a crash.
    fault::FaultPlan fplan;
    try {
        cli::requirePositive("--duration", duration);
        cli::requirePositive("--arrival-rate", arrival_rate);
        cli::requirePositive("--tenants", tenants);
        cli::requirePositive("--sla-ms", sla_ms);
        cli::requirePositive("--max-batch", max_batch);
        cli::requireNonNegative("--plan-ms", plan_ms);
        cli::requireNonNegative("--shed-factor", shed_factor);
        cli::requireNonNegative("--bucket-rate", bucket_rate);
        cli::requireNonNegative("--bucket-burst", bucket_burst);
        cli::requireNonNegative("--search-deadline", search_deadline);
        cli::requirePositive("--chips", chips);
        cli::requirePositive("--link-gbs", link_gbs);
        cli::requireNonNegative("--link-latency", link_latency);
        cli::requireNonNegative("--retry-backoff-ms", retry_backoff_ms);
        cli::requireNonNegative("--breaker-reset-ms", breaker_reset_ms);
        cli::requireNonNegative("--repartition-ms", repartition_ms);
        if (chaos_soak == 0 && !fault_spec.empty())
            fplan = fault::FaultPlan::parse(fault_spec, chips);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        flags.printUsage(argv[0], std::cerr);
        return 1;
    }

    installShutdownHandler();
    setVerbose(false);

    std::unique_ptr<plan::PlanCache> cache;
    if (!plan_dir.empty())
        cache = std::make_unique<plan::PlanCache>(plan_dir);

    auto design = baselines::designByName(design_name);
    auto mix = serve::mixByName(mix_name);
    auto catalog = serve::buildCatalog(design.params, mix.templates);

    std::vector<serve::TenantSpec> specs;
    for (u32 i = 0; i < tenants; ++i) {
        serve::TenantSpec t;
        t.name = "t" + std::to_string(i);
        t.process = serve::ArrivalProcess::Poisson;
        t.rate = arrival_rate / tenants;
        t.slaSeconds = sla_ms * 1e-3;
        t.weight = 1.0;
        t.bucketRate = bucket_rate;
        t.bucketBurst = bucket_burst;
        t.mix = mix.weights;
        specs.push_back(std::move(t));
    }

    serve::TrafficSpec traffic;
    traffic.durationSeconds = duration;
    traffic.seed = seed;
    traffic.tenants = specs;
    auto arrivals = serve::generateTraffic(traffic, catalog);

    std::printf("serving %s traffic on %s (%u tenants, %.0f req/s, "
                "%.2fs window, %zu arrivals, seed %u)\n",
                mix.name.c_str(), design.cfg.name.c_str(), tenants,
                arrival_rate, duration, arrivals.size(), seed);
    std::printf("policy %s, max batch %u, SLA %.1f ms\n",
                policy_name.c_str(), max_batch, sla_ms);
    if (chips > 1)
        std::printf("pod: %u chips, ring links %.0f GB/s, hop latency "
                    "%.0f cycles\n",
                    chips, link_gbs, link_latency);
    if (!fplan.empty())
        std::printf("fault plan: %s\n", fplan.toString().c_str());

    telemetry::TraceRecorder recorder;
    telemetry::StatsRegistry registry;

    serve::ServeOptions opt;
    opt.policy = serve::policyByName(policy_name);
    opt.maxBatch = max_batch;
    opt.admission.shedFactor = shed_factor;
    opt.planSecondsPerOp = plan_ms * 1e-3;
    opt.searchDeadlineSeconds = search_deadline;
    opt.planCache = cache.get();
    opt.pod.chips = chips;
    opt.pod.linkGBs = link_gbs;
    opt.pod.linkLatencyCycles = link_latency;
    opt.pod.deadChips = fplan.deadChips;
    opt.faultPlan = fplan;
    opt.recovery.maxRetries = retries;
    opt.recovery.retryBackoffSeconds = retry_backoff_ms * 1e-3;
    opt.recovery.breakerThreshold = breaker_threshold;
    opt.recovery.breakerResetSeconds = breaker_reset_ms * 1e-3;
    opt.recovery.hedge = hedge;
    opt.recovery.repartitionSeconds = repartition_ms * 1e-3;
    if (!trace_out.empty())
        opt.trace = &recorder;
    opt.cancelled = []() { return shutdownRequested(); };

    if (chaos_soak > 0)
        return runChaosSoak(design, catalog, specs, arrivals, duration, opt,
                            seed, chaos_soak);

    serve::Dispatcher dispatcher(design.cfg, catalog, specs, opt);
    auto result = dispatcher.run(arrivals, duration);
    auto report = serve::buildReport(result, specs);

    std::printf("\n");
    serve::printReport(report, std::cout);

    bool ok = true;
    if (!stats_out.empty()) {
        serve::registerReport(report, registry);
        if (cache != nullptr)
            cache->registerStats(registry);
        std::ofstream os(stats_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", stats_out.c_str());
            ok = false;
        } else {
            registry.dumpJson(os);
            os << "\n";
            std::printf("\ntelemetry registry (%zu stats) written to %s\n",
                        registry.size(), stats_out.c_str());
        }
    }
    if (!trace_out.empty()) {
        std::ofstream os(trace_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
            ok = false;
        } else {
            recorder.writeJson(os);
            std::printf("wrote %zu trace events to %s "
                        "(load in ui.perfetto.dev)\n",
                        recorder.events().size(), trace_out.c_str());
        }
    }
    if (result.truncated) {
        std::fprintf(stderr, "\ninterrupted: partial results flushed\n");
        return kShutdownExitCode;
    }
    return ok ? 0 : 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
