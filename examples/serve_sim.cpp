/**
 * @file
 * Multi-tenant serving simulation (DESIGN.md §11): generate a seeded
 * open-loop arrival trace over the workload catalog, run the
 * virtual-time dispatcher on one accelerator config, and report
 * per-tenant latency percentiles, goodput, rejections and fairness.
 *
 * Everything is deterministic: a fixed --seed and flag set produce
 * byte-identical stdout, --stats-out JSON and --trace-out JSON at any
 * --threads value. The stdout table contains no plan-cache-dependent
 * numbers, so a cold-cache and a warm-cache run (same flags,
 * --plan-ms 0) print byte-identical tables; the cache's effect shows up
 * in --stats-out under serve.plan.* and plan.cache.*, and — with
 * --plan-ms > 0 — as lower tail latency (the virtual planning charge is
 * waived on cache hits).
 *
 * SIGINT/SIGTERM stop the event loop and flush partial telemetry
 * (marked truncated), exiting 130.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/shutdown.h"
#include "plan/plan_cache.h"
#include "serve/dispatcher.h"
#include "serve/report.h"
#include "serve/traffic.h"
#include "telemetry/stats_registry.h"
#include "telemetry/trace_recorder.h"

using namespace crophe;

namespace {

int
run(int argc, char **argv)
{
    double duration = 2.0;
    double arrival_rate = 30.0;
    u32 tenants = 2;
    std::string mix_name = "blend";
    double sla_ms = 100.0;
    std::string design_name = "CROPHE-36";
    std::string policy_name = "edf";
    u32 max_batch = 8;
    double plan_ms = 0.0;
    double shed_factor = 8.0;
    double bucket_rate = 0.0;
    double bucket_burst = 4.0;
    double search_deadline = 0.0;
    u32 chips = 1;
    double link_gbs = 600.0;
    double link_latency = 500.0;

    cli::FlagParser flags(
        "Multi-tenant FHE serving simulation on one accelerator.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kStatsOut |
                                   cli::CommonFlags::kTraceOut |
                                   cli::CommonFlags::kPlanCache |
                                   cli::CommonFlags::kSeed);
    flags.addDouble("--duration", &duration,
                    "traffic window in virtual seconds");
    flags.addDouble("--arrival-rate", &arrival_rate,
                    "aggregate Poisson arrival rate (req/s, split evenly "
                    "across tenants)");
    flags.addUint("--tenants", &tenants, "number of tenants");
    flags.addString("--mix", &mix_name,
                    "workload mix: bootstrap, matvec, blend, or micro");
    flags.addDouble("--sla-ms", &sla_ms, "per-request SLA in milliseconds");
    flags.addString("--design", &design_name,
                    "accelerator design (Table I name)");
    flags.addString("--policy", &policy_name,
                    "queue ordering: fifo, edf, or wfq");
    flags.addUint("--max-batch", &max_batch,
                  "max same-template requests per dispatch");
    flags.addDouble("--plan-ms", &plan_ms,
                    "virtual planning latency per graph op on a "
                    "plan-cache miss (ms)");
    flags.addDouble("--shed-factor", &shed_factor,
                    "shed when projected wait exceeds factor x SLA "
                    "(0 = never)");
    flags.addDouble("--bucket-rate", &bucket_rate,
                    "per-tenant admission tokens per second (0 = "
                    "unlimited)");
    flags.addDouble("--bucket-burst", &bucket_burst,
                    "per-tenant token-bucket burst size");
    flags.addDouble("--search-deadline", &search_deadline,
                    "anytime budget per cache-miss schedule search in "
                    "seconds (nonzero trades determinism for bounded "
                    "wall-clock)");
    flags.addUint("--chips", &chips,
                  "accelerators in the serving pod (1 = single chip)");
    flags.addDouble("--link-gbs", &link_gbs,
                    "pod ring-link bandwidth per direction (GB/s)");
    flags.addDouble("--link-latency", &link_latency,
                    "pod ring-link latency per hop (chip cycles)");
    if (!flags.parse(argc, argv))
        return 1;
    const u32 seed = common.seed;
    const std::string &plan_dir = common.planCacheDir;
    const std::string &stats_out = common.statsOut;
    const std::string &trace_out = common.traceOut;

    // Flag-domain validation (DESIGN.md §9): nonsensical values are
    // rejected here with a typed error + usage instead of reaching the
    // dispatcher.
    try {
        cli::requirePositive("--duration", duration);
        cli::requirePositive("--arrival-rate", arrival_rate);
        cli::requirePositive("--tenants", tenants);
        cli::requirePositive("--sla-ms", sla_ms);
        cli::requirePositive("--max-batch", max_batch);
        cli::requireNonNegative("--plan-ms", plan_ms);
        cli::requireNonNegative("--shed-factor", shed_factor);
        cli::requireNonNegative("--bucket-rate", bucket_rate);
        cli::requireNonNegative("--bucket-burst", bucket_burst);
        cli::requireNonNegative("--search-deadline", search_deadline);
        cli::requirePositive("--chips", chips);
        cli::requirePositive("--link-gbs", link_gbs);
        cli::requireNonNegative("--link-latency", link_latency);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        flags.printUsage(argv[0], std::cerr);
        return 1;
    }

    installShutdownHandler();
    setVerbose(false);

    std::unique_ptr<plan::PlanCache> cache;
    if (!plan_dir.empty())
        cache = std::make_unique<plan::PlanCache>(plan_dir);

    auto design = baselines::designByName(design_name);
    auto mix = serve::mixByName(mix_name);
    auto catalog = serve::buildCatalog(design.params, mix.templates);

    std::vector<serve::TenantSpec> specs;
    for (u32 i = 0; i < tenants; ++i) {
        serve::TenantSpec t;
        t.name = "t" + std::to_string(i);
        t.process = serve::ArrivalProcess::Poisson;
        t.rate = arrival_rate / tenants;
        t.slaSeconds = sla_ms * 1e-3;
        t.weight = 1.0;
        t.bucketRate = bucket_rate;
        t.bucketBurst = bucket_burst;
        t.mix = mix.weights;
        specs.push_back(std::move(t));
    }

    serve::TrafficSpec traffic;
    traffic.durationSeconds = duration;
    traffic.seed = seed;
    traffic.tenants = specs;
    auto arrivals = serve::generateTraffic(traffic, catalog);

    std::printf("serving %s traffic on %s (%u tenants, %.0f req/s, "
                "%.2fs window, %zu arrivals, seed %u)\n",
                mix.name.c_str(), design.cfg.name.c_str(), tenants,
                arrival_rate, duration, arrivals.size(), seed);
    std::printf("policy %s, max batch %u, SLA %.1f ms\n",
                policy_name.c_str(), max_batch, sla_ms);
    if (chips > 1)
        std::printf("pod: %u chips, ring links %.0f GB/s, hop latency "
                    "%.0f cycles\n",
                    chips, link_gbs, link_latency);

    telemetry::TraceRecorder recorder;
    telemetry::StatsRegistry registry;

    serve::ServeOptions opt;
    opt.policy = serve::policyByName(policy_name);
    opt.maxBatch = max_batch;
    opt.admission.shedFactor = shed_factor;
    opt.planSecondsPerOp = plan_ms * 1e-3;
    opt.searchDeadlineSeconds = search_deadline;
    opt.planCache = cache.get();
    opt.pod.chips = chips;
    opt.pod.linkGBs = link_gbs;
    opt.pod.linkLatencyCycles = link_latency;
    if (!trace_out.empty())
        opt.trace = &recorder;
    opt.cancelled = []() { return shutdownRequested(); };

    serve::Dispatcher dispatcher(design.cfg, catalog, specs, opt);
    auto result = dispatcher.run(arrivals, duration);
    auto report = serve::buildReport(result, specs);

    std::printf("\n");
    serve::printReport(report, std::cout);

    bool ok = true;
    if (!stats_out.empty()) {
        serve::registerReport(report, registry);
        if (cache != nullptr)
            cache->registerStats(registry);
        std::ofstream os(stats_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", stats_out.c_str());
            ok = false;
        } else {
            registry.dumpJson(os);
            os << "\n";
            std::printf("\ntelemetry registry (%zu stats) written to %s\n",
                        registry.size(), stats_out.c_str());
        }
    }
    if (!trace_out.empty()) {
        std::ofstream os(trace_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
            ok = false;
        } else {
            recorder.writeJson(os);
            std::printf("wrote %zu trace events to %s "
                        "(load in ui.perfetto.dev)\n",
                        recorder.events().size(), trace_out.c_str());
        }
    }
    if (result.truncated) {
        std::fprintf(stderr, "\ninterrupted: partial results flushed\n");
        return kShutdownExitCode;
    }
    return ok ? 0 : 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
