/**
 * @file
 * Quickstart: encrypt two vectors, compute (a+b)·a homomorphically,
 * rotate the result, and decrypt — the CKKS substrate in ten lines.
 */

#include <cstdio>
#include <vector>

#include "fhe/ckks.h"

using namespace crophe;
using namespace crophe::fhe;

int
main()
{
    // A compact context: N=2^12 (2048 slots), 4 multiplicative levels.
    FheContextParams params;
    params.n = 1 << 12;
    params.levels = 4;
    params.alpha = 2;
    FheContext ctx(params);

    KeyGenerator keygen(ctx, /*seed=*/2026);
    PublicKey pk = keygen.makePublicKey();
    KswKey rlk = keygen.makeRelinKey();
    KswKey rk3 = keygen.makeRotationKey(3);
    Evaluator eval(ctx);

    // Tile the 8-element vectors across all N/2 slots so that slot
    // rotation behaves as a cyclic rotation of the logical vector.
    std::vector<double> a8 = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
    std::vector<double> b8 = {0.5, 0.5, 0.5, 0.5, -1.0, -1.0, -1.0, -1.0};
    const u64 slots = ctx.n() / 2;
    std::vector<double> a(slots), b(slots);
    for (u64 i = 0; i < slots; ++i) {
        a[i] = a8[i % 8];
        b[i] = b8[i % 8];
    }

    Ciphertext ct_a =
        eval.encrypt(eval.encoder().encodeReal(a, ctx.maxLevel()), pk);
    Ciphertext ct_b =
        eval.encrypt(eval.encoder().encodeReal(b, ctx.maxLevel()), pk);

    // (a + b) * a, rescaled, then rotated left by 3 slots.
    Ciphertext sum = eval.add(ct_a, ct_b);
    Ciphertext prod = eval.rescale(eval.mul(sum, ct_a, rlk));
    Ciphertext rot = eval.rotate(prod, 3, rk3);

    auto out = eval.encoder().decode(eval.decrypt(rot, keygen.secretKey()));
    std::printf("slot  expected   decrypted\n");
    for (int i = 0; i < 8; ++i) {
        int j = (i + 3) % 8;
        double expect = (a[j] + b[j]) * a[j];
        std::printf("%4d  %8.4f   %9.4f\n", i, expect, out[i].real());
    }
    std::printf("\nquickstart OK\n");
    return 0;
}
