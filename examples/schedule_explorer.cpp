/**
 * @file
 * Schedule explorer: builds the bootstrapping operator graph, runs the
 * CROPHE scheduler and the MAD baseline on the same hardware, prints the
 * discovered dataflow (groups, rotation scheme, NTT decomposition) and
 * the resulting traffic/cycle comparison.
 */

#include <cstdio>

#include "common/logging.h"
#include "graph/workloads.h"
#include "sched/dataflow_report.h"
#include "sched/hybrid_rotation.h"
#include "sched/mad.h"
#include "sched/ntt_decomp.h"
#include "sched/scheduler.h"

using namespace crophe;

int
main()
{
    setVerbose(false);
    graph::FheParams params = graph::paramsArk();
    hw::HwConfig cfg = hw::withSramMB(hw::configCrophe64(), 128.0);

    std::printf("workload: CKKS bootstrapping, %s parameters\n",
                params.name.c_str());
    std::printf("hardware: %s with %.0f MB global buffer\n\n",
                cfg.name.c_str(), cfg.sramMB);

    // MAD baseline on the same chip.
    auto w_mad = graph::buildWorkload("bootstrap", params,
                                      sched::madWorkloadOptions());
    auto mad = sched::scheduleWorkloadMad(w_mad, cfg);

    // CROPHE: rotation-scheme search + full cross-operator scheduling.
    sched::SchedOptions opt;
    auto choice =
        sched::chooseRotationScheme("bootstrap", params, cfg, opt, true);

    std::printf("CROPHE scheduler decisions:\n");
    std::printf("  rotation scheme: %s",
                graph::rotModeName(choice.mode));
    if (choice.mode == graph::RotMode::Hybrid)
        std::printf(" (r_hyb = %u)", choice.rHyb);
    std::printf("\n");

    // Show the dataflow of one segment in detail.
    graph::WorkloadOptions wopt;
    wopt.rotMode = choice.mode;
    wopt.rHyb = choice.rHyb;
    auto w = graph::buildWorkload("bootstrap", params, wopt);
    auto seg_sched = sched::scheduleGraph(w.segments[0].graph, cfg, opt);
    u32 groups = 0, ops = 0;
    for (const auto &tg : seg_sched.sequence) {
        for (const auto &g : tg.groups) {
            ++groups;
            ops += static_cast<u32>(g.allocs.size());
        }
    }
    std::printf("  segment '%s': %u ops in %u spatial groups "
                "(%zu temporal groups), %.1f ops/group\n",
                w.segments[0].name.c_str(), ops, groups,
                seg_sched.sequence.size(),
                static_cast<double>(ops) / groups);
    std::printf("  NTT decomposition applied: %s\n",
                sched::countMonolithicNtts(seg_sched.graph) == 0 ? "yes"
                                                                 : "partial");

    std::printf("\ncomparison on %s:\n", cfg.name.c_str());
    std::printf("  %-8s %12s %14s %14s\n", "sched", "cycles",
                "SRAM words", "DRAM words");
    std::printf("  %-8s %12.3e %14.3e %14.3e\n", "MAD", mad.stats.cycles,
                static_cast<double>(mad.stats.sramWords),
                static_cast<double>(mad.stats.dramWords));
    std::printf("  %-8s %12.3e %14.3e %14.3e\n", "CROPHE",
                choice.result.stats.cycles,
                static_cast<double>(choice.result.stats.sramWords),
                static_cast<double>(choice.result.stats.dramWords));
    std::printf("\nCROPHE speedup over MAD on the same chip: %.2fx\n",
                mad.stats.cycles / choice.result.stats.cycles);

    // Emit the dataflow result file (Section VI).
    const char *out = "crophe_dataflow.txt";
    if (sched::writeDataflowReport(seg_sched, cfg, out))
        std::printf("dataflow result written to %s\n", out);
    return 0;
}
