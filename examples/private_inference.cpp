/**
 * @file
 * Private inference on encrypted data — the workload class the paper's
 * introduction motivates. A small logistic-regression layer runs under
 * encryption: an 8×8 weight matrix is applied to an encrypted feature
 * vector with the BSGS PtMatVecMult of Algorithm 1 (using CROPHE's
 * hybrid-rotation baby steps), followed by a polynomial sigmoid
 * approximation evaluated homomorphically.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "fhe/bsgs.h"
#include "fhe/chebyshev.h"

using namespace crophe;
using namespace crophe::fhe;

int
main()
{
    FheContextParams params;
    params.n = 1 << 11;
    params.levels = 6;
    params.alpha = 2;
    FheContext ctx(params);

    KeyGenerator keygen(ctx, 77);
    PublicKey pk = keygen.makePublicKey();
    KswKey rlk = keygen.makeRelinKey();
    Evaluator eval(ctx);

    // An 8-feature model: y = sigmoid(W x) per output neuron.
    const u32 n1 = 4, n2 = 2;
    const u64 dim = n1 * n2;
    Rng rng(123);
    std::vector<std::vector<double>> w(dim, std::vector<double>(dim));
    std::vector<double> x(dim);
    for (auto &row : w)
        for (auto &e : row)
            e = rng.nextDouble() - 0.5;
    for (auto &e : x)
        e = rng.nextDouble() - 0.5;

    // Rotation keys for the hybrid baby steps + giant steps.
    BsgsKeys keys;
    const u32 r_hyb = 2;
    for (i64 r : requiredRotations(n1, n2, RotStrategy::Hybrid, r_hyb))
        keys.rot.emplace(r, keygen.makeRotationKey(r));

    const u64 slots = ctx.n() / 2;
    std::vector<double> x_tiled(slots);
    for (u64 i = 0; i < slots; ++i)
        x_tiled[i] = x[i % dim];

    Ciphertext ct =
        eval.encrypt(eval.encoder().encodeReal(x_tiled, 5), pk);
    auto diags = matrixDiagonals(w, slots);
    Ciphertext wx = ptMatVecMult(eval, ct, diags, n1, n2,
                                 RotStrategy::Hybrid, r_hyb, keys);

    // sigmoid(t) ~ 0.5 + 0.197 t - 0.004 t^3 (the classic HELR cubic).
    std::vector<double> sigmoid = {0.5, 0.197, 0.0, -0.004};
    Ciphertext y = evalPolyHorner(eval, wx, sigmoid, rlk);

    auto out = eval.encoder().decode(eval.decrypt(y, keygen.secretKey()));
    auto wx_ref = matVecRef(w, x);
    std::printf("neuron  plaintext  encrypted\n");
    double max_err = 0.0;
    for (u64 i = 0; i < dim; ++i) {
        double t = wx_ref[i];
        double expect = evalPolyRef(sigmoid, t);
        std::printf("%6llu  %9.5f  %9.5f\n",
                    static_cast<unsigned long long>(i), expect,
                    out[i].real());
        max_err = std::max(max_err, std::abs(expect - out[i].real()));
    }
    std::printf("\nmax error %.2e — private_inference OK\n", max_err);
    return 0;
}
