/**
 * @file
 * Drive the cycle-level simulator: schedule ResNet-20 on CROPHE-36, run
 * every unique segment through the event-driven model, and report
 * cycles, traffic and resource utilization (the Table IV view).
 *
 * With --trace-out FILE the per-segment simulations are recorded as
 * Chrome trace-event JSON (open in https://ui.perfetto.dev): one process
 * per segment with one track per PE group, the NoC, the SRAM bank group,
 * the transpose unit and each busy DRAM channel. With --stats-out FILE
 * the telemetry registry (sim.* totals matching SimStats, sched.search.*
 * and sched.enum.* from the scheduler) is dumped as nested JSON; the
 * text form goes to stdout. With --plan-cache DIR (or
 * $CROPHE_PLAN_CACHE) schedule searches go through the content-addressed
 * plan cache (DESIGN.md §8).
 *
 * With --fault-plan SPEC (or $CROPHE_FAULT_PLAN) the run executes under
 * the seeded fault plan (DESIGN.md §9): transient DRAM/NoC faults are
 * injected into the simulation, structural faults degrade the hardware
 * configuration before scheduling, and the report ends with the
 * degradation ratio against the healthy run. --deadline SEC arms the
 * anytime scheduler budget. SIGINT/SIGTERM flush partial telemetry
 * (marked truncated) and exit 130.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/baseline.h"
#include "common/cli.h"
#include "common/common_flags.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/shutdown.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "graph/workloads.h"
#include "plan/plan_cache.h"
#include "pod/pod.h"
#include "sched/hybrid_rotation.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

using namespace crophe;

namespace {

int
run(int argc, char **argv)
{
    std::string fault_spec = fault::FaultPlan::specFromEnv();
    double deadline = 0.0;
    u32 chips = 1;
    double link_gbs = 600.0;
    double link_latency = 500.0;
    std::string rot_schemes = "all";
    std::string ks_dataflows = "all";
    cli::FlagParser flags(
        "Cycle-level simulation of ResNet-20 on CROPHE-36.");
    cli::CommonFlags common;
    common.registerInto(flags, cli::CommonFlags::kThreads |
                                   cli::CommonFlags::kStatsOut |
                                   cli::CommonFlags::kTraceOut |
                                   cli::CommonFlags::kPlanCache);
    flags.addString("--fault-plan", &fault_spec,
                    "fault-injection spec, e.g. seed=7,dram-err=1e-3 "
                    "(default $CROPHE_FAULT_PLAN)");
    flags.addDouble("--deadline", &deadline,
                    "anytime scheduling budget per graph search in seconds "
                    "(0 = exact search)");
    flags.addUint("--chips", &chips,
                  "shard the workload across a pod of this many chips "
                  "(1 = single chip)");
    flags.addDouble("--link-gbs", &link_gbs,
                    "pod ring-link bandwidth per direction (GB/s)");
    flags.addDouble("--link-latency", &link_latency,
                    "pod ring-link latency per hop (chip cycles)");
    flags.addString("--rot-schemes", &rot_schemes,
                    "rotation schemes the end-to-end search may pick "
                    "(minks|hoisting|hybrid|triple|all, comma-separated)");
    flags.addString("--ks-dataflows", &ks_dataflows,
                    "key-switch dataflows the search may pick "
                    "(fused|ostat|reordup|all, comma-separated)");
    if (!flags.parse(argc, argv))
        return 1;
    const std::string &trace_out = common.traceOut;
    const std::string &stats_out = common.statsOut;
    const std::string &plan_dir = common.planCacheDir;
    u32 rot_mask = 0xF;
    u32 ks_mask = 0x7;
    try {
        cli::requirePositive("--chips", chips);
        cli::requirePositive("--link-gbs", link_gbs);
        cli::requireNonNegative("--link-latency", link_latency);
        cli::requireNonNegative("--deadline", deadline);
        rot_mask = sched::parseRotSchemes(rot_schemes);
        ks_mask = sched::parseKsDataflows(ks_dataflows);
    } catch (const RecoverableError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        flags.printUsage(argv[0], std::cerr);
        return 1;
    }

    installShutdownHandler();

    std::unique_ptr<plan::PlanCache> cache;
    if (!plan_dir.empty())
        cache = std::make_unique<plan::PlanCache>(plan_dir);

    // Parsing against the pod size rejects plans that would kill every
    // chip, naming the offending token (DESIGN.md §14).
    fault::FaultPlan fplan = fault::FaultPlan::parse(fault_spec, chips);
    fault::FaultInjector injector(fplan);
    const bool faulty = !fplan.empty();
    const fault::FaultInjector *faults = faulty ? &injector : nullptr;

    setVerbose(false);
    auto design = baselines::designByName("CROPHE-36");
    std::printf("simulating ResNet-20 on %s (%u PEs x %u lanes, %.0f MB)\n",
                design.cfg.name.c_str(), design.cfg.numPes,
                design.cfg.lanes, design.cfg.sramMB);

    // Structural faults shrink the hardware before any scheduling; the
    // degraded config has a distinct digest, so the plan cache keeps
    // healthy and degraded schedules apart.
    auto run_design = design;
    if (fplan.degradesHardware()) {
        run_design.cfg = fplan.degradedConfig(design.cfg);
        run_design.name += "+degraded";
    }
    if (faulty)
        std::printf("fault plan: %s\n  degraded hardware: %s "
                    "(%u PEs x %u lanes, %.0f MB)\n",
                    fplan.toString().c_str(), run_design.cfg.name.c_str(),
                    run_design.cfg.numPes, run_design.cfg.lanes,
                    run_design.cfg.sramMB);

    telemetry::TraceRecorder recorder;
    telemetry::StatsRegistry registry;
    telemetry::SearchTelemetry search;
    telemetry::SimTelemetry telem;
    if (!trace_out.empty())
        telem.trace = &recorder;
    if (!stats_out.empty())
        telem.registry = &registry;
    bool telemetry_on = telem.trace != nullptr || telem.registry != nullptr;

    // Flush whatever telemetry exists so far; on a signal the outputs
    // stay valid JSON, just marked truncated.
    auto flush_outputs = [&](bool truncated) {
        if (!stats_out.empty()) {
            search.registerStats(registry);
            if (cache != nullptr)
                cache->registerStats(registry);
            if (truncated)
                registry.scalar("run.truncated",
                                "run was interrupted by SIGINT/SIGTERM")
                    .set(1.0);
            std::ofstream os(stats_out);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", stats_out.c_str());
                return false;
            }
            registry.dumpJson(os);
            os << "\n";
            if (!truncated) {
                std::printf("\ntelemetry registry (%zu stats, JSON in "
                            "%s):\n",
                            registry.size(), stats_out.c_str());
                registry.dumpText(std::cout);
            }
        }
        if (!trace_out.empty()) {
            if (truncated)
                recorder.instant("run truncated", 0.0);
            std::ofstream os(trace_out);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
                return false;
            }
            recorder.writeJson(os);
            if (!truncated)
                std::printf("\nwrote %zu trace events to %s "
                            "(load in ui.perfetto.dev)\n",
                            recorder.events().size(), trace_out.c_str());
        }
        return true;
    };
    auto bail_out = [&]() {
        std::fprintf(stderr,
                     "\ninterrupted: flushing partial telemetry\n");
        flush_outputs(/*truncated=*/true);
        return kShutdownExitCode;
    };

    // Per-segment cycle-level simulation detail.
    graph::WorkloadOptions wopt;
    wopt.rotMode = graph::RotMode::Hybrid;
    wopt.rHyb = 4;
    auto w = graph::buildResNet20(run_design.params, wopt);
    sched::SchedOptions opt;
    opt.planCache = cache.get();
    opt.deadlineSeconds = deadline;
    if (telemetry_on)
        opt.search = &search;
    std::printf("\n%-16s %6s %12s %12s %10s\n", "segment", "reps",
                "sim cycles", "events", "row hit%");
    for (const auto &seg : w.segments) {
        if (shutdownRequested())
            return bail_out();
        if (telem.trace != nullptr)
            telem.trace->beginProcess(seg.name);
        auto sched = sched::scheduleGraph(seg.graph, run_design.cfg, opt);
        auto sim = sim::simulateSchedule(sched, run_design.cfg,
                                         telemetry_on ? &telem : nullptr,
                                         faults);
        std::printf("%-16s %6llu %12.3e %12llu %9.1f%%\n",
                    seg.name.c_str(),
                    static_cast<unsigned long long>(seg.repetitions),
                    sim.cycles,
                    static_cast<unsigned long long>(sim.events),
                    100.0 * sim.dramRowHitRate());
        if (faulty && sim.faultsEnabled)
            std::printf("  faults: ecc=%llu retried=%llu (%llu retries) "
                        "stalled=%llu reroutes=%llu%s\n",
                        static_cast<unsigned long long>(sim.faultDramEcc),
                        static_cast<unsigned long long>(
                            sim.faultDramRetried),
                        static_cast<unsigned long long>(
                            sim.faultDramRetries),
                        static_cast<unsigned long long>(
                            sim.faultDramStalls),
                        static_cast<unsigned long long>(
                            sim.faultNocReroutes),
                        sched.degraded ? " [schedule: anytime fallback]"
                                       : "");
    }
    if (shutdownRequested())
        return bail_out();

    // End-to-end, with the rotation-scheme × ks-dataflow search.
    baselines::RunOptions run;
    run.simulate = true;
    run.planCache = cache.get();
    run.faults = faults;
    run.deadlineSeconds = deadline;
    run.rotSchemeMask = rot_mask;
    run.ksDataflowMask = ks_mask;
    if (telemetry_on)
        run.search = &search;
    auto result = baselines::runDesign(run_design, "resnet20", run);
    std::printf("\nend-to-end (simulated): %.3e cycles = %.3f ms%s\n",
                result.stats.cycles, result.seconds * 1e3,
                result.degraded ? "  [anytime: deadline hit]" : "");
    std::printf("utilization: PE %.1f%%  NoC %.1f%%  SRAM b/w %.1f%%  "
                "DRAM b/w %.1f%%\n",
                100 * result.stats.peUtil, 100 * result.stats.nocUtil,
                100 * result.stats.sramBwUtil,
                100 * result.stats.dramBwUtil);

    if (chips > 1) {
        if (shutdownRequested())
            return bail_out();
        pod::PodConfig podCfg;
        podCfg.chips = chips;
        podCfg.linkGBs = link_gbs;
        podCfg.linkLatencyCycles = link_latency;
        podCfg.deadChips = fplan.deadChips;
        auto podRes = pod::schedulePodWorkload(
            w, run_design.cfg, podCfg, opt,
            !stats_out.empty() ? &registry : nullptr,
            !trace_out.empty() ? &recorder : nullptr);
        std::printf("\npod: %u chips (%u alive), ring links %.0f GB/s, "
                    "hop latency %.0f cycles\n",
                    chips, podCfg.aliveChips(), link_gbs, link_latency);
        std::printf("%-16s %6s %7s %12s %14s %6s\n", "segment", "reps",
                    "stages", "pipeline cyc", "interchip wd", "moves");
        for (const auto &sr : podRes.perSegment)
            std::printf("%-16s %6llu %7u %12.3e %14llu %6u%s\n",
                        sr.name.c_str(),
                        static_cast<unsigned long long>(sr.repetitions),
                        sr.stages, sr.cycles,
                        static_cast<unsigned long long>(sr.interchipWords),
                        sr.partitionMoves,
                        sr.sramOverflow ? " [sram overflow]" : "");
        // The 1-chip reference uses the same analytic pipeline model, so
        // the ratio isolates the pod's sharding gain.
        pod::PodConfig solo;
        auto soloRes =
            pod::schedulePodWorkload(w, run_design.cfg, solo, opt);
        std::printf("pod end-to-end: %.3f ms (1 chip: %.3f ms, speedup "
                    "%.2fx), %llu interchip words in %llu transfers\n",
                    podRes.seconds * 1e3, soloRes.seconds * 1e3,
                    soloRes.seconds / podRes.seconds,
                    static_cast<unsigned long long>(podRes.interchipWords),
                    static_cast<unsigned long long>(podRes.transfers));
    }

    if (faulty) {
        if (shutdownRequested())
            return bail_out();
        // The healthy twin quantifies the plan's damage. It must not see
        // the injector or the degraded config (and a deadline would make
        // the baseline itself approximate, so it runs exact).
        baselines::RunOptions healthy_run;
        healthy_run.simulate = true;
        healthy_run.planCache = cache.get();
        if (telemetry_on)
            healthy_run.search = &search;
        auto healthy = baselines::runDesign(design, "resnet20",
                                            healthy_run);
        double ratio = fault::degradationRatio(result.stats.cycles,
                                               healthy.stats.cycles);
        std::printf("healthy twin: %.3e cycles = %.3f ms\n",
                    healthy.stats.cycles, healthy.seconds * 1e3);
        std::printf("degradation ratio (faulty / healthy): %.3fx\n", ratio);
    }

    if (!flush_outputs(/*truncated=*/false))
        return 1;
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const RecoverableError &e) {
        // User-input problems (bad flag values, impossible fault plans)
        // are reported, not aborted on.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
