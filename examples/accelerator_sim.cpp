/**
 * @file
 * Drive the cycle-level simulator: schedule ResNet-20 on CROPHE-36, run
 * every unique segment through the event-driven model, and report
 * cycles, traffic and resource utilization (the Table IV view).
 *
 * With --trace-out FILE the per-segment simulations are recorded as
 * Chrome trace-event JSON (open in https://ui.perfetto.dev): one process
 * per segment with one track per PE group, the NoC, the SRAM bank group,
 * the transpose unit and each busy DRAM channel. With --stats-out FILE
 * the telemetry registry (sim.* totals matching SimStats, sched.search.*
 * and sched.enum.* from the scheduler) is dumped as nested JSON; the
 * text form goes to stdout. With --plan-cache DIR (or
 * $CROPHE_PLAN_CACHE) schedule searches go through the content-addressed
 * plan cache (DESIGN.md §8).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/baseline.h"
#include "common/cli.h"
#include "common/logging.h"
#include "graph/workloads.h"
#include "plan/plan_cache.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

using namespace crophe;

int
main(int argc, char **argv)
{
    std::string trace_out, stats_out;
    std::string plan_dir = plan::PlanCache::dirFromEnv();
    cli::FlagParser flags(
        "Cycle-level simulation of ResNet-20 on CROPHE-36.");
    flags.addString("--trace-out", &trace_out,
                    "write per-segment Chrome trace JSON to FILE");
    flags.addString("--stats-out", &stats_out,
                    "dump the telemetry registry as JSON to FILE");
    flags.addString("--plan-cache", &plan_dir,
                    "schedule-cache directory (default $CROPHE_PLAN_CACHE)");
    flags.addThreadsFlag();
    if (!flags.parse(argc, argv))
        return 1;

    std::unique_ptr<plan::PlanCache> cache;
    if (!plan_dir.empty())
        cache = std::make_unique<plan::PlanCache>(plan_dir);

    setVerbose(false);
    auto design = baselines::designByName("CROPHE-36");
    std::printf("simulating ResNet-20 on %s (%u PEs x %u lanes, %.0f MB)\n",
                design.cfg.name.c_str(), design.cfg.numPes,
                design.cfg.lanes, design.cfg.sramMB);

    telemetry::TraceRecorder recorder;
    telemetry::StatsRegistry registry;
    telemetry::SearchTelemetry search;
    telemetry::SimTelemetry telem;
    if (!trace_out.empty())
        telem.trace = &recorder;
    if (!stats_out.empty())
        telem.registry = &registry;
    bool telemetry_on = telem.trace != nullptr || telem.registry != nullptr;

    // Per-segment cycle-level simulation detail.
    graph::WorkloadOptions wopt;
    wopt.rotMode = graph::RotMode::Hybrid;
    wopt.rHyb = 4;
    auto w = graph::buildResNet20(design.params, wopt);
    sched::SchedOptions opt;
    opt.planCache = cache.get();
    if (telemetry_on)
        opt.search = &search;
    std::printf("\n%-16s %6s %12s %12s %10s\n", "segment", "reps",
                "sim cycles", "events", "row hit%");
    for (const auto &seg : w.segments) {
        if (telem.trace != nullptr)
            telem.trace->beginProcess(seg.name);
        auto sched = sched::scheduleGraph(seg.graph, design.cfg, opt);
        auto sim = sim::simulateSchedule(sched, design.cfg,
                                         telemetry_on ? &telem : nullptr);
        std::printf("%-16s %6llu %12.3e %12llu %9.1f%%\n",
                    seg.name.c_str(),
                    static_cast<unsigned long long>(seg.repetitions),
                    sim.cycles,
                    static_cast<unsigned long long>(sim.events),
                    100.0 * sim.dramRowHitRate());
    }

    // End-to-end, with the rotation-scheme search.
    baselines::RunOptions run;
    run.simulate = true;
    run.planCache = cache.get();
    if (telemetry_on)
        run.search = &search;
    auto result = baselines::runDesign(design, "resnet20", run);
    std::printf("\nend-to-end (simulated): %.3e cycles = %.3f ms\n",
                result.stats.cycles, result.seconds * 1e3);
    std::printf("utilization: PE %.1f%%  NoC %.1f%%  SRAM b/w %.1f%%  "
                "DRAM b/w %.1f%%\n",
                100 * result.stats.peUtil, 100 * result.stats.nocUtil,
                100 * result.stats.sramBwUtil,
                100 * result.stats.dramBwUtil);

    if (!stats_out.empty()) {
        search.registerStats(registry);
        if (cache != nullptr)
            cache->registerStats(registry);
        std::ofstream os(stats_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", stats_out.c_str());
            return 1;
        }
        registry.dumpJson(os);
        os << "\n";
        std::printf("\ntelemetry registry (%zu stats, JSON in %s):\n",
                    registry.size(), stats_out.c_str());
        registry.dumpText(std::cout);
    }
    if (!trace_out.empty()) {
        std::ofstream os(trace_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
            return 1;
        }
        recorder.writeJson(os);
        std::printf("\nwrote %zu trace events to %s "
                    "(load in ui.perfetto.dev)\n",
                    recorder.events().size(), trace_out.c_str());
    }
    return 0;
}
