/**
 * @file
 * Drive the cycle-level simulator: schedule ResNet-20 on CROPHE-36, run
 * every unique segment through the event-driven model, and report
 * cycles, traffic and resource utilization (the Table IV view).
 */

#include <cstdio>

#include "baselines/baseline.h"
#include "common/logging.h"
#include "graph/workloads.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

using namespace crophe;

int
main()
{
    setVerbose(false);
    auto design = baselines::designByName("CROPHE-36");
    std::printf("simulating ResNet-20 on %s (%u PEs x %u lanes, %.0f MB)\n",
                design.cfg.name.c_str(), design.cfg.numPes,
                design.cfg.lanes, design.cfg.sramMB);

    // Per-segment cycle-level simulation detail.
    graph::WorkloadOptions wopt;
    wopt.rotMode = graph::RotMode::Hybrid;
    wopt.rHyb = 4;
    auto w = graph::buildResNet20(design.params, wopt);
    sched::SchedOptions opt;
    std::printf("\n%-16s %6s %12s %12s %10s\n", "segment", "reps",
                "sim cycles", "events", "row hit%");
    for (const auto &seg : w.segments) {
        auto sched = sched::scheduleGraph(seg.graph, design.cfg, opt);
        auto sim = sim::simulateSchedule(sched, design.cfg);
        double hits = static_cast<double>(sim.dramRowHits);
        double total = hits + sim.dramRowMisses;
        std::printf("%-16s %6llu %12.3e %12llu %9.1f%%\n",
                    seg.name.c_str(),
                    static_cast<unsigned long long>(seg.repetitions),
                    sim.cycles,
                    static_cast<unsigned long long>(sim.events),
                    total > 0 ? 100.0 * hits / total : 0.0);
    }

    // End-to-end, with the rotation-scheme search.
    auto result = baselines::runDesign(design, "resnet20",
                                       /*simulate=*/true);
    std::printf("\nend-to-end (simulated): %.3e cycles = %.3f ms\n",
                result.stats.cycles, result.seconds * 1e3);
    std::printf("utilization: PE %.1f%%  NoC %.1f%%  SRAM b/w %.1f%%  "
                "DRAM b/w %.1f%%\n",
                100 * result.stats.peUtil, 100 * result.stats.nocUtil,
                100 * result.stats.sramBwUtil,
                100 * result.stats.dramBwUtil);
    return 0;
}
