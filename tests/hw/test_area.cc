#include <gtest/gtest.h>

#include "hw/area_model.h"

namespace crophe::hw {
namespace {

/** Table II anchors: the model must reproduce the published CROPHE-36
 *  breakdown closely (it is calibrated to it). */
TEST(AreaModel, Crophe36PeMatchesTableII)
{
    PeBreakdown pe = peAreaPower(configCrophe36());
    EXPECT_NEAR(pe.multipliersUm2, 337650.31, 1.0);
    EXPECT_NEAR(pe.addersUm2, 27784.55, 1.0);
    EXPECT_NEAR(pe.regFileUm2, 67242.02, 1.0);
    EXPECT_NEAR(pe.interLaneUm2, 15806.76, 1.0);
    EXPECT_NEAR(pe.totalUm2, 448483.64, 2.0);
    EXPECT_NEAR(pe.totalMw, 497.62, 1.0);
}

TEST(AreaModel, Crophe36ChipMatchesTableII)
{
    AreaPower chip = chipAreaPower(configCrophe36());
    EXPECT_NEAR(chip.totalAreaMm2, 251.13, 2.0);
    EXPECT_NEAR(chip.totalPowerW, 181.11, 3.0);

    double pes = 0, noc = 0, sram = 0;
    for (const auto &row : chip.rows) {
        if (row.component == "PEs")
            pes = row.areaMm2;
        if (row.component == "Inter-PE NoC & crossbars")
            noc = row.areaMm2;
        if (row.component == "Global buffer")
            sram = row.areaMm2;
    }
    EXPECT_NEAR(pes, 57.40, 0.5);
    EXPECT_NEAR(noc, 40.70, 0.5);
    EXPECT_NEAR(sram, 116.05, 0.5);
}

TEST(AreaModel, WordWidthScalesMultiplierArea)
{
    HwConfig c36 = configCrophe36();
    HwConfig c64 = configCrophe64();
    PeBreakdown pe36 = peAreaPower(c36);
    PeBreakdown pe64 = peAreaPower(c64);
    // 64-bit multipliers are ~(64/36)^2 ≈ 3.2x the 36-bit ones.
    double ratio = pe64.multipliersUm2 / pe36.multipliersUm2;
    EXPECT_NEAR(ratio, (64.0 / 36.0) * (64.0 / 36.0), 0.01);
}

TEST(AreaModel, CropheVariantsLandNearTableIAreas)
{
    // Table I: CROPHE-64 total 362.8 mm², CROPHE-36 total 251.1 mm².
    // Our SRAM density constant is calibrated to the published CROPHE-36
    // breakdown; at 512 MB that is conservative versus Table I's 64-bit
    // design, so the 64-bit bound is loose on the high side.
    AreaPower c64 = chipAreaPower(configCrophe64());
    EXPECT_GT(c64.totalAreaMm2, 300.0);
    EXPECT_LT(c64.totalAreaMm2, 500.0);

    AreaPower c36 = chipAreaPower(configCrophe36());
    EXPECT_GT(c36.totalAreaMm2, 240.0);
    EXPECT_LT(c36.totalAreaMm2, 265.0);
}

TEST(AreaModel, SramDominatesAtLargeCapacity)
{
    AreaPower big = chipAreaPower(withSramMB(configCrophe64(), 512));
    AreaPower small = chipAreaPower(withSramMB(configCrophe64(), 64));
    EXPECT_GT(big.totalAreaMm2 - small.totalAreaMm2, 200.0);
}

}  // namespace
}  // namespace crophe::hw
