#include <gtest/gtest.h>

#include "hw/config.h"

namespace crophe::hw {
namespace {

TEST(HwConfig, TableIValues)
{
    HwConfig c64 = configCrophe64();
    EXPECT_EQ(c64.wordBits, 64u);
    EXPECT_EQ(c64.lanes, 256u);
    EXPECT_EQ(c64.numPes, 64u);
    EXPECT_DOUBLE_EQ(c64.freqGhz, 1.2);
    EXPECT_DOUBLE_EQ(c64.sramMB, 512.0);
    EXPECT_TRUE(c64.homogeneous);

    HwConfig c36 = configCrophe36();
    EXPECT_EQ(c36.wordBits, 36u);
    EXPECT_EQ(c36.numPes, 128u);
    EXPECT_DOUBLE_EQ(c36.sramMB, 180.0);

    HwConfig sharp = configSharp();
    EXPECT_EQ(sharp.wordBits, 36u);
    EXPECT_FALSE(sharp.homogeneous);
    EXPECT_DOUBLE_EQ(sharp.freqGhz, 1.0);

    HwConfig bts = configBts();
    EXPECT_EQ(bts.wordBits, 64u);
    EXPECT_DOUBLE_EQ(bts.sramMB, 512.0);

    HwConfig cl = configClPlus();
    EXPECT_EQ(cl.wordBits, 28u);
    EXPECT_DOUBLE_EQ(cl.sramMB, 256.0);
}

TEST(HwConfig, AllDesignsShareDramBandwidth)
{
    for (const char *name : {"bts", "ark", "crophe64", "cl+", "sharp",
                             "crophe36"})
        EXPECT_DOUBLE_EQ(configByName(name).dramGBs, 1000.0) << name;
}

TEST(HwConfig, SpecializedFractionsSumToOne)
{
    for (const char *name : {"bts", "ark", "cl+", "sharp"}) {
        HwConfig c = configByName(name);
        double sum = 0;
        for (double f : c.fuFraction)
            sum += f;
        EXPECT_NEAR(sum, 1.0, 1e-9) << name;
    }
}

TEST(HwConfig, DerivedQuantities)
{
    HwConfig c = configCrophe36();
    EXPECT_EQ(c.multsPerCycle(), 128ull * 256);
    EXPECT_DOUBLE_EQ(c.wordBytes(), 4.5);
    EXPECT_EQ(c.sramWords(),
              static_cast<u64>(180.0 * 1024 * 1024 / 4.5));
    EXPECT_EQ(c.meshX * c.meshY, c.numPes);
}

TEST(HwConfig, WithSramResizes)
{
    HwConfig c = withSramMB(configCrophe36(), 45.0);
    EXPECT_DOUBLE_EQ(c.sramMB, 45.0);
    EXPECT_EQ(c.numPes, configCrophe36().numPes);
}

TEST(HwConfig, CropheHasComparableLogicToBaselines)
{
    // The paper notes CROPHE's lanes×PEs exceeds the baselines' but each
    // lane is much simpler; peak modmul throughput stays within ~4x.
    double crophe = configCrophe64().peakMultOps();
    double ark = configArk().peakMultOps() /
                 0.4;  // ARK lane bundles several datapaths
    EXPECT_LT(crophe / ark, 4.0);
    EXPECT_GT(crophe / ark, 0.25);
}

}  // namespace
}  // namespace crophe::hw
