#include <gtest/gtest.h>

#include "graph/op.h"

namespace crophe::graph {
namespace {

TEST(Op, PlainMulUsesOnTheFlyLimbExtension)
{
    // OF-Limb: one plaintext limb fetched, the rest generated on-chip at
    // one extra multiply per element.
    Op op = makeEwMulPlain(1 << 12, 10, "ptx:x");
    EXPECT_EQ(op.auxWords, 1ull << 12);
    EXPECT_EQ(op.flops, 2ull * 10 * (1 << 12));
}

TEST(Op, ElementwiseShape)
{
    Op op = makeEwBinary(OpKind::EwAdd, 1 << 12, 10);
    EXPECT_EQ(op.inputWords, 2ull * 10 * (1 << 12));
    EXPECT_EQ(op.outputWords, 10ull * (1 << 12));
    EXPECT_EQ(op.flops, 10ull * (1 << 12));
    EXPECT_TRUE(op.isElementwise());
    EXPECT_FALSE(op.isTransform());
    EXPECT_TRUE(op.canStream(StreamAxis::SlotN));
    EXPECT_TRUE(op.canStream(StreamAxis::Limb));
    EXPECT_FALSE(op.orientationSwitch);
}

TEST(Op, MonolithicNttCannotStreamOnN)
{
    Op op = makeNtt(OpKind::Ntt, 1 << 12, 8);
    EXPECT_TRUE(op.isTransform());
    EXPECT_TRUE(op.orientationSwitch);
    EXPECT_FALSE(op.canStream(StreamAxis::SlotN));
    EXPECT_TRUE(op.canStream(StreamAxis::Limb));
    // N/2 * logN butterflies per limb.
    EXPECT_EQ(op.flops, 8ull * (1 << 11) * 12);
}

TEST(Op, DecomposedNttStreamsOnInstanceAxis)
{
    Op col = makeNttStep(OpKind::INttCol, 64, 256, 8);
    EXPECT_TRUE(col.canStream(StreamAxis::SlotN1));
    EXPECT_FALSE(col.canStream(StreamAxis::SlotN2));
    EXPECT_FALSE(col.orientationSwitch);
    Op row = makeNttStep(OpKind::NttRow, 64, 256, 8);
    EXPECT_TRUE(row.canStream(StreamAxis::SlotN2));
    EXPECT_FALSE(row.canStream(StreamAxis::SlotN1));

    // Col+row flops together equal the monolithic transform's flops.
    Op mono = makeNtt(OpKind::Ntt, 64 * 256, 8);
    EXPECT_EQ(col.flops + row.flops, mono.flops);
}

TEST(Op, BConvReducesOverLimbs)
{
    Op op = makeBConv(1 << 12, 6, 13);
    EXPECT_TRUE(op.canStream(StreamAxis::SlotN));
    EXPECT_FALSE(op.canStream(StreamAxis::Limb));
    EXPECT_EQ(op.outputWords, 13ull << 12);
    // Small constant matrix only.
    EXPECT_LT(op.auxWords, 1000u);
}

TEST(Op, KskInnerProdCarriesEvk)
{
    Op op = makeKskInnerProd(1 << 12, 30, 4, "evk:mult");
    EXPECT_EQ(op.auxKey, "evk:mult");
    // 2 × β × limbs × N halved by the PRNG optimization (the a-halves
    // are regenerated on-chip from seeds).
    EXPECT_EQ(op.auxWords, 30ull * (1 << 12) * 4);
    EXPECT_EQ(op.beta, 4u);
}

TEST(Op, AutomorphismIsPermutationOnly)
{
    Op op = makeAutomorphism(1 << 12, 10);
    EXPECT_EQ(op.flops, 0u);
    EXPECT_TRUE(op.orientationSwitch);
}

TEST(Op, KindNamesAreDistinct)
{
    EXPECT_STREQ(opKindName(OpKind::Ntt), "NTT");
    EXPECT_STREQ(opKindName(OpKind::INttCol), "col-iNTT");
    EXPECT_STREQ(opKindName(OpKind::KskInnerProd), "KSKInP");
}

}  // namespace
}  // namespace crophe::graph
