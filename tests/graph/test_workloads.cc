#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/workloads.h"

namespace crophe::graph {
namespace {

WorkloadOptions
hybridOpt(u32 r = 4)
{
    WorkloadOptions o;
    o.rotMode = RotMode::Hybrid;
    o.rHyb = r;
    return o;
}

TEST(WorkloadGraphs, HMultIsValid)
{
    FheParams p = paramsArk();
    Graph g = buildHMult(p, 10);
    EXPECT_EQ(g.topoOrder().size(), g.size());
    // Contains a KSKInP with the mult evk and two rescales.
    u32 inner = 0, rescale = 0;
    for (const auto &op : g.ops()) {
        inner += op.kind == OpKind::KskInnerProd;
        rescale += op.kind == OpKind::Rescale;
    }
    EXPECT_EQ(inner, 1u);
    EXPECT_EQ(rescale, 2u);
}

TEST(WorkloadGraphs, HRotSharesDeclaredKey)
{
    FheParams p = paramsArk();
    Graph g = buildHRot(p, 8, "evk:rot:7");
    bool found = false;
    for (const auto &op : g.ops())
        if (op.kind == OpKind::KskInnerProd) {
            EXPECT_EQ(op.auxKey, "evk:rot:7");
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(WorkloadGraphs, RotationStrategiesChangeKeyCounts)
{
    FheParams p = paramsArk();
    const u32 n1 = 8, n2 = 4, level = 10;

    auto distinct_rot_keys = [](const Graph &g) {
        std::set<std::string> keys;
        for (const auto &op : g.ops())
            if (op.kind == OpKind::KskInnerProd &&
                op.auxKey.find("rot") != std::string::npos)
                keys.insert(op.auxKey);
        return keys.size();
    };
    auto modup_intts = [](const Graph &g) {
        u32 count = 0;
        for (const auto &op : g.ops())
            count += op.kind == OpKind::INtt;
        return count;
    };

    WorkloadOptions o;
    o.rotMode = RotMode::MinKs;
    Graph min_ks = buildPtMatVecMult(p, level, n1, n2, o.rotMode, 0);
    o.rotMode = RotMode::Hoisting;
    Graph hoist = buildPtMatVecMult(p, level, n1, n2, o.rotMode, 0);
    Graph hybrid = buildPtMatVecMult(p, level, n1, n2, RotMode::Hybrid, 4);

    // MinKS uses one baby-step key (+ giant keys); Hoisting one per baby
    // distance; Hybrid in between.
    EXPECT_LT(distinct_rot_keys(min_ks), distinct_rot_keys(hoist));
    EXPECT_LT(distinct_rot_keys(hybrid), distinct_rot_keys(hoist));
    EXPECT_GT(distinct_rot_keys(hybrid), distinct_rot_keys(min_ks));

    // MinKS does the most ModUps (one per baby rotation); hoisting the
    // fewest (shared).
    EXPECT_GT(modup_intts(min_ks), modup_intts(hoist));
    EXPECT_LE(modup_intts(hybrid), modup_intts(min_ks));
}

TEST(WorkloadGraphs, TripleHoistedDefersGiantStepModDowns)
{
    FheParams p = paramsArk();
    const u32 n1 = 8, n2 = 4, level = 10;
    // Every ModDown chain (hoisted or in-key-switch) ends in exactly one
    // EwMulConst (the 1/P scaling), and PtMatVecMult emits EwMulConst
    // nowhere else — so counting them counts ModDowns.
    auto mod_downs = [](const Graph &g) {
        u32 count = 0;
        for (const auto &op : g.ops())
            count += op.kind == OpKind::EwMulConst;
        return count;
    };
    Graph hoist =
        buildPtMatVecMult(p, level, n1, n2, RotMode::Hoisting, 0);
    Graph triple =
        buildPtMatVecMult(p, level, n1, n2, RotMode::TripleHoisted, 0);
    EXPECT_EQ(triple.topoOrder().size(), triple.size());

    // Hoisting: n1-1 hoisted baby ModDowns + 2 per eager giant key switch.
    EXPECT_EQ(mod_downs(hoist), (n1 - 1) + 2 * (n2 - 1));
    // TripleHoisted: the n2-1 giant-step ModDowns collapse into one.
    EXPECT_EQ(mod_downs(triple), (n1 - 1) + 1);

    // The giant-step evks are still one per giant distance.
    std::set<std::string> giant_keys;
    for (const auto &op : triple.ops())
        if (op.kind == OpKind::KskInnerProd &&
            op.auxKey.find("giant") != std::string::npos)
            giant_keys.insert(op.auxKey);
    EXPECT_EQ(giant_keys.size(), n2 - 1);
}

TEST(WorkloadGraphs, KsDataflowThreadsThroughWorkloadBuilders)
{
    FheParams p = paramsArk();
    // HMult emits exactly one key switch, so the graph sizes must differ
    // by exactly the dataflow op-count deltas.
    const u32 level = 10;
    Graph fused = buildHMult(p, level, KsDataflow::Fused);
    Graph ostat = buildHMult(p, level, KsDataflow::OutputStationary);
    Graph reord = buildHMult(p, level, KsDataflow::ReorderedModUp);
    const i64 base = keySwitchOpCount(p, level, KsDataflow::Fused);
    EXPECT_EQ(static_cast<i64>(ostat.size()) - static_cast<i64>(fused.size()),
              static_cast<i64>(keySwitchOpCount(
                  p, level, KsDataflow::OutputStationary)) -
                  base);
    EXPECT_EQ(static_cast<i64>(reord.size()) - static_cast<i64>(fused.size()),
              static_cast<i64>(keySwitchOpCount(
                  p, level, KsDataflow::ReorderedModUp)) -
                  base);

    // And the option plumbs through buildWorkload end to end.
    WorkloadOptions o = hybridOpt();
    o.ksDataflow = KsDataflow::OutputStationary;
    Workload w = buildWorkload("bootstrap", p, o);
    WorkloadOptions of = hybridOpt();
    Workload wf = buildWorkload("bootstrap", p, of);
    EXPECT_NE(w.totalOps(), wf.totalOps());
}

TEST(WorkloadGraphs, HybridFineKeysSharedAcrossCoarseGroups)
{
    FheParams p = paramsArk();
    Graph g = buildPtMatVecMult(p, 10, 16, 2, RotMode::Hybrid, 4);
    // Fine keys appear once per (coarse group, distance); with 4 groups
    // and distances 1..3, each fine key must be referenced 4 times.
    std::map<std::string, u32> uses;
    for (const auto &op : g.ops())
        if (op.kind == OpKind::KskInnerProd &&
            op.auxKey.find("fine") != std::string::npos)
            ++uses[op.auxKey];
    ASSERT_EQ(uses.size(), 3u);  // distances 1, 2, 3
    for (const auto &[key, count] : uses)
        EXPECT_EQ(count, 4u) << key;
}

TEST(Workloads, AllFourBuildAndAreNonTrivial)
{
    FheParams p = paramsArk();
    auto opt = hybridOpt();
    for (const char *name :
         {"bootstrap", "helr", "resnet20", "resnet110"}) {
        Workload w = buildWorkload(name, p, opt);
        EXPECT_EQ(w.name, name);
        EXPECT_FALSE(w.segments.empty()) << name;
        EXPECT_GT(w.totalOps(), 50u) << name;
        EXPECT_GT(w.totalFlops(), 1ull << 30) << name;
        for (const auto &seg : w.segments)
            EXPECT_EQ(seg.graph.topoOrder().size(), seg.graph.size())
                << name << "/" << seg.name;
    }
}

TEST(Workloads, ResNet110IsProportionallyLarger)
{
    FheParams p = paramsSharp();
    auto opt = hybridOpt();
    Workload r20 = buildResNet20(p, opt);
    Workload r110 = buildResNet110(p, opt);
    EXPECT_GT(r110.totalFlops(), 4 * r20.totalFlops());
    EXPECT_LT(r110.totalFlops(), 8 * r20.totalFlops());
    // Segment merging keeps the unique-graph count identical.
    EXPECT_EQ(r20.segments.size(), r110.segments.size());
}

TEST(Workloads, BootstrapDominatedByRotations)
{
    FheParams p = paramsSharp();
    Workload w = buildBootstrapping(p, hybridOpt());
    u64 evk_words = 0;
    for (const auto &seg : w.segments)
        evk_words += seg.graph.totalAuxWords() * seg.repetitions;
    EXPECT_GT(evk_words, 1ull << 25);  // evks are the dominant constants
}

}  // namespace
}  // namespace crophe::graph
