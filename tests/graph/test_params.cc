#include <gtest/gtest.h>

#include "graph/params.h"

namespace crophe::graph {
namespace {

TEST(Params, TableIIIValues)
{
    FheParams bts = paramsBts();
    EXPECT_EQ(bts.logN, 17u);
    EXPECT_EQ(bts.L, 39u);
    EXPECT_EQ(bts.Lboot, 19u);
    EXPECT_EQ(bts.dnum, 2u);
    EXPECT_EQ(bts.alpha, 20u);

    FheParams ark = paramsArk();
    EXPECT_EQ(ark.logN, 16u);
    EXPECT_EQ(ark.L, 23u);
    EXPECT_EQ(ark.alpha, 6u);

    FheParams sharp = paramsSharp();
    EXPECT_EQ(sharp.L, 35u);
    EXPECT_EQ(sharp.dnum, 3u);

    FheParams cl = paramsCraterLake();
    EXPECT_EQ(cl.L, 59u);
    EXPECT_EQ(cl.dnum, 1u);
    EXPECT_EQ(cl.alpha, 60u);
}

TEST(Params, DerivedQuantities)
{
    FheParams ark = paramsArk();
    EXPECT_EQ(ark.n(), 1ull << 16);
    EXPECT_EQ(ark.slots(), 1ull << 15);
    EXPECT_EQ(ark.limbsAt(23), 24u);
    EXPECT_EQ(ark.betaAt(23), 4u);
    EXPECT_EQ(ark.betaAt(5), 1u);
    EXPECT_EQ(ark.extLimbsAt(23), 6 + 24u);
}

TEST(Params, DnumCoversAllLimbs)
{
    for (const auto &p : {paramsBts(), paramsArk(), paramsSharp(),
                          paramsCraterLake()}) {
        EXPECT_LE(p.betaAt(p.L), p.dnum) << p.name;
        EXPECT_GE(p.dnum * p.alpha, p.L + 1) << p.name;
    }
}

TEST(Params, LookupByName)
{
    EXPECT_EQ(paramsByName("ark").name, "ARK");
    EXPECT_EQ(paramsByName("bts").logN, 17u);
}

}  // namespace
}  // namespace crophe::graph
