#include <gtest/gtest.h>

#include "graph/graph.h"

namespace crophe::graph {
namespace {

Graph
diamond()
{
    Graph g;
    OpId in = g.add(makeInput(1 << 10, 4));
    OpId l = g.add(makeEwBinary(OpKind::EwMul, 1 << 10, 4));
    OpId r = g.add(makeEwBinary(OpKind::EwAdd, 1 << 10, 4));
    OpId out = g.add(makeOutput(1 << 10, 4));
    g.connect(in, l);
    g.connect(in, r);
    g.connect(l, out);
    g.connect(r, out);
    return g;
}

TEST(Graph, TopoOrderRespectsEdges)
{
    Graph g = diamond();
    auto order = g.topoOrder();
    ASSERT_EQ(order.size(), 4u);
    std::vector<u32> pos(4);
    for (u32 i = 0; i < 4; ++i)
        pos[order[i]] = i;
    EXPECT_LT(pos[0], pos[1]);
    EXPECT_LT(pos[0], pos[2]);
    EXPECT_LT(pos[1], pos[3]);
    EXPECT_LT(pos[2], pos[3]);
}

TEST(GraphDeath, CycleIsDetected)
{
    Graph g;
    OpId a = g.add(makeEwBinary(OpKind::EwAdd, 16, 1));
    OpId b = g.add(makeEwBinary(OpKind::EwAdd, 16, 1));
    g.connect(a, b);
    g.connect(b, a);
    EXPECT_DEATH(g.topoOrder(), "cycle");
}

TEST(Graph, TotalFlopsSums)
{
    Graph g = diamond();
    EXPECT_EQ(g.totalFlops(), 2ull * 4 * (1 << 10));
}

TEST(Graph, AuxDeduplicatedByKey)
{
    Graph g;
    OpId a = g.add(makeEwMulPlain(1 << 10, 4, "ptx:shared"));
    OpId b = g.add(makeEwMulPlain(1 << 10, 4, "ptx:shared"));
    OpId c = g.add(makeEwMulPlain(1 << 10, 4, "ptx:other"));
    (void)a;
    (void)b;
    (void)c;
    // With OF-Limb, each distinct plaintext key contributes N words.
    EXPECT_EQ(g.totalAuxWords(), 2ull * (1 << 10));
}

TEST(Graph, PartitionCoversAllNodes)
{
    Graph g = diamond();
    auto parts = g.partition(3);
    u32 total = 0;
    for (const auto &p : parts) {
        EXPECT_LE(p.size(), 3u);
        total += static_cast<u32>(p.size());
    }
    EXPECT_EQ(total, g.size());
}

TEST(Graph, StructuralHashMatchesIsomorphicSubgraphs)
{
    // Two copies of the same chain inside one graph hash identically.
    Graph g;
    OpId a1 = g.add(makeEwBinary(OpKind::EwMul, 1 << 10, 4));
    OpId a2 = g.add(makeEwBinary(OpKind::EwAdd, 1 << 10, 4));
    g.connect(a1, a2);
    OpId b1 = g.add(makeEwBinary(OpKind::EwMul, 1 << 10, 4));
    OpId b2 = g.add(makeEwBinary(OpKind::EwAdd, 1 << 10, 4));
    g.connect(b1, b2);

    EXPECT_EQ(g.structuralHash({a1, a2}), g.structuralHash({b1, b2}));
    EXPECT_NE(g.structuralHash({a1, a2}), g.structuralHash({a2, a1}));
    // Different shape => different hash.
    Graph g2;
    OpId c1 = g2.add(makeEwBinary(OpKind::EwMul, 1 << 10, 8));
    OpId c2 = g2.add(makeEwBinary(OpKind::EwAdd, 1 << 10, 8));
    g2.connect(c1, c2);
    EXPECT_NE(g.structuralHash({a1, a2}), g2.structuralHash({c1, c2}));
}

TEST(Graph, ToStringMentionsEveryOp)
{
    Graph g = diamond();
    std::string s = g.toString();
    EXPECT_NE(s.find("EwMul"), std::string::npos);
    EXPECT_NE(s.find("EwAdd"), std::string::npos);
}

}  // namespace
}  // namespace crophe::graph
