#include <gtest/gtest.h>

#include "graph/keyswitch_builder.h"

namespace crophe::graph {
namespace {

TEST(KeySwitchGraph, OpCountMatchesFormula)
{
    FheParams p = paramsArk();
    for (u32 level : {1u, 5u, 11u, 23u}) {
        Graph g;
        auto nodes = buildKeySwitch(g, p, level, kNoOp, "evk:test");
        (void)nodes;
        // +1 for the Input node buildKeySwitch adds when producer==kNoOp.
        EXPECT_EQ(g.size(), keySwitchOpCount(p, level) + 1)
            << "level " << level;
    }
}

TEST(KeySwitchGraph, StructureIsAcyclicAndConnected)
{
    FheParams p = paramsSharp();
    Graph g;
    auto nodes = buildKeySwitch(g, p, 20, kNoOp, "evk:mult");
    auto order = g.topoOrder();  // panics on cycles
    EXPECT_EQ(order.size(), g.size());

    // Every non-input node is reachable: it has at least one producer.
    for (OpId v = 0; v < g.size(); ++v) {
        if (g.op(v).kind != OpKind::Input)
            EXPECT_FALSE(g.producers(v).empty()) << v;
    }
    EXPECT_NE(nodes.outB, nodes.outA);
}

TEST(KeySwitchGraph, EvkVolumeMatchesDigitShape)
{
    FheParams p = paramsArk();
    const u32 level = p.L;
    Graph g;
    buildKeySwitch(g, p, level, kNoOp, "evk:mult");

    u64 evk_words = 0;
    u32 inner_count = 0;
    for (const auto &op : g.ops()) {
        if (op.kind == OpKind::KskInnerProd) {
            evk_words += op.auxWords;
            ++inner_count;
        }
    }
    EXPECT_EQ(inner_count, 1u);
    // 2 × β × (α+ℓ+1) × N, halved by PRNG regeneration of the a-halves.
    EXPECT_EQ(evk_words,
              1ull * p.betaAt(level) * p.extLimbsAt(level) * p.n());
}

TEST(KeySwitchGraph, BetaScalesWithLevel)
{
    FheParams p = paramsArk();
    Graph low, high;
    buildKeySwitch(low, p, 5, kNoOp, "k");
    buildKeySwitch(high, p, 23, kNoOp, "k");
    EXPECT_LT(low.size(), high.size());
}

TEST(KeySwitchGraph, DataflowOpCountsMatchFormulas)
{
    FheParams p = paramsArk();
    for (u32 level : {1u, 5u, 11u, 23u}) {
        for (KsDataflow df :
             {KsDataflow::Fused, KsDataflow::OutputStationary,
              KsDataflow::ReorderedModUp}) {
            Graph g;
            buildKeySwitch(g, p, level, kNoOp, "evk:test", df);
            // +1 for the Input node added when producer == kNoOp.
            EXPECT_EQ(g.size(), keySwitchOpCount(p, level, df) + 1)
                << "level " << level << " df " << ksDataflowName(df);
        }
    }
    // The dataflow-aware Fused count is the legacy count.
    EXPECT_EQ(keySwitchOpCount(p, 11),
              keySwitchOpCount(p, 11, KsDataflow::Fused));
}

TEST(KeySwitchGraph, OutputStationarySharesOnePairModDown)
{
    FheParams p = paramsSharp();
    for (KsDataflow df :
         {KsDataflow::Fused, KsDataflow::OutputStationary,
          KsDataflow::ReorderedModUp}) {
        Graph g;
        auto nodes = buildKeySwitch(g, p, 20, kNoOp, "evk:mult", df);
        EXPECT_EQ(g.topoOrder().size(), g.size());
        if (df == KsDataflow::OutputStationary)
            EXPECT_EQ(nodes.outB, nodes.outA) << ksDataflowName(df);
        else
            EXPECT_NE(nodes.outB, nodes.outA) << ksDataflowName(df);
    }
}

TEST(KeySwitchGraph, ReorderedModUpCollapsesForwardTransforms)
{
    FheParams p = paramsArk();
    const u32 level = p.L;
    const u32 beta = p.betaAt(level);
    auto fwd_ntts = [](const Graph &g) {
        u32 count = 0;
        for (const auto &op : g.ops())
            count += op.kind == OpKind::Ntt;
        return count;
    };
    Graph fused, reord;
    buildKeySwitch(fused, p, level, kNoOp, "k", KsDataflow::Fused);
    buildKeySwitch(reord, p, level, kNoOp, "k", KsDataflow::ReorderedModUp);
    // Fused: one forward NTT per digit (+2 in the ModDowns); reordered:
    // one batched forward NTT for all digits (+2 in the ModDowns).
    EXPECT_EQ(fwd_ntts(fused), beta + 2);
    EXPECT_EQ(fwd_ntts(reord), 3u);

    // The batched node covers the same total limb volume the per-digit
    // transforms did, so no work disappears from the cost model.
    u64 fused_limbs = 0, reord_limbs = 0;
    for (const auto &op : fused.ops())
        if (op.kind == OpKind::Ntt)
            fused_limbs += op.limbsOut;
    for (const auto &op : reord.ops())
        if (op.kind == OpKind::Ntt)
            reord_limbs += op.limbsOut;
    EXPECT_EQ(fused_limbs, reord_limbs);
}

}  // namespace
}  // namespace crophe::graph
