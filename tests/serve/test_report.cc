#include <gtest/gtest.h>

#include <vector>

#include "serve/report.h"

namespace crophe::serve {
namespace {

/** One completed outcome with latency @p ms for tenant @p tenant. */
RequestOutcome
completed(u64 id, u32 tenant, double ms, bool slaMet = true)
{
    RequestOutcome o;
    o.id = id;
    o.tenant = tenant;
    o.disposition = Disposition::Completed;
    o.arrival = 0.0;
    o.finish = ms * 1e-3;
    o.slaMet = slaMet;
    return o;
}

TenantSpec
tenant(const std::string &name)
{
    TenantSpec t;
    t.name = name;
    return t;
}

TEST(Percentile, SingleSampleAnswersEveryQuantile)
{
    const std::vector<double> one = {42.0};
    EXPECT_DOUBLE_EQ(percentile(one, 0.001), 42.0);  // rank clamps to 1
    EXPECT_DOUBLE_EQ(percentile(one, 0.50), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 0.95), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 0.99), 42.0);
    EXPECT_DOUBLE_EQ(percentile(one, 1.0), 42.0);
}

TEST(Percentile, TwoSamplesSplitAtTheMedianBoundary)
{
    const std::vector<double> two = {1.0, 2.0};
    // Nearest rank: ceil(0.5 * 2) = 1 -> the lower sample exactly at
    // the median boundary, the upper one for anything beyond it.
    EXPECT_DOUBLE_EQ(percentile(two, 0.50), 1.0);
    EXPECT_DOUBLE_EQ(percentile(two, 0.51), 2.0);
    EXPECT_DOUBLE_EQ(percentile(two, 0.95), 2.0);
    EXPECT_DOUBLE_EQ(percentile(two, 0.99), 2.0);
}

TEST(Percentile, QuantileBoundariesHitExactRanks)
{
    std::vector<double> xs;
    for (int i = 1; i <= 20; ++i)
        xs.push_back(i);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.50), 10.0);  // ceil(10.0) = 10
    EXPECT_DOUBLE_EQ(percentile(xs, 0.95), 19.0);  // ceil(19.0) = 19
    EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 20.0);  // ceil(19.8) = 20
}

TEST(Percentile, AllEqualValuesAndUnsortedInput)
{
    const std::vector<double> flat = {7.0, 7.0, 7.0, 7.0};
    EXPECT_DOUBLE_EQ(percentile(flat, 0.50), 7.0);
    EXPECT_DOUBLE_EQ(percentile(flat, 0.99), 7.0);
    // percentile() sorts its copy: order of the input is irrelevant.
    EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.50), 5.0);
    EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.99), 9.0);
}

TEST(Report, PercentilesMatchTheReferenceFunctionExactly)
{
    // Pin the one-sort report path to percentile()'s nearest-rank
    // semantics, byte for byte, on an unsorted latency stream.
    ServeResult res;
    res.durationSeconds = 1.0;
    std::vector<double> latMs;  // as the report sees them (ms -> s -> ms)
    for (double ms : {5.0, 1.0, 9.0, 3.0, 2.0, 8.0, 7.0, 4.0, 6.0}) {
        res.outcomes.push_back(
            completed(res.outcomes.size(), 0, ms));
        latMs.push_back(ms * 1e-3 * 1e3);
    }
    auto rep = buildReport(res, {tenant("t0")});
    ASSERT_EQ(rep.tenants.size(), 1u);
    EXPECT_EQ(rep.tenants[0].p50Ms, percentile(latMs, 0.50));
    EXPECT_EQ(rep.tenants[0].p95Ms, percentile(latMs, 0.95));
    EXPECT_EQ(rep.tenants[0].p99Ms, percentile(latMs, 0.99));
    EXPECT_EQ(rep.total.p50Ms, percentile(latMs, 0.50));
    EXPECT_EQ(rep.total.p99Ms, percentile(latMs, 0.99));
    EXPECT_DOUBLE_EQ(rep.tenants[0].maxMs, 9.0);
    EXPECT_DOUBLE_EQ(rep.tenants[0].meanMs, 5.0);
}

TEST(Report, PerTenantPercentilesAreIndependent)
{
    ServeResult res;
    res.durationSeconds = 1.0;
    res.outcomes.push_back(completed(0, 0, 10.0));
    res.outcomes.push_back(completed(1, 1, 20.0));
    res.outcomes.push_back(completed(2, 1, 40.0));
    auto rep = buildReport(res, {tenant("a"), tenant("b")});
    EXPECT_DOUBLE_EQ(rep.tenants[0].p50Ms, 10.0);
    EXPECT_DOUBLE_EQ(rep.tenants[0].p99Ms, 10.0);
    EXPECT_DOUBLE_EQ(rep.tenants[1].p50Ms, 20.0);
    EXPECT_DOUBLE_EQ(rep.tenants[1].p99Ms, 40.0);
    // Total pools all three: ceil(0.5 * 3) = 2 -> 20 ms.
    EXPECT_DOUBLE_EQ(rep.total.p50Ms, 20.0);
    EXPECT_DOUBLE_EQ(rep.total.p99Ms, 40.0);
}

TEST(Report, NoCompletionsLeaveZeroPercentiles)
{
    ServeResult res;
    res.durationSeconds = 1.0;
    RequestOutcome rej;
    rej.tenant = 0;
    rej.disposition = Disposition::RejectedOverload;
    res.outcomes.push_back(rej);
    auto rep = buildReport(res, {tenant("t0")});
    EXPECT_DOUBLE_EQ(rep.tenants[0].p50Ms, 0.0);
    EXPECT_DOUBLE_EQ(rep.tenants[0].p95Ms, 0.0);
    EXPECT_DOUBLE_EQ(rep.tenants[0].p99Ms, 0.0);
    EXPECT_DOUBLE_EQ(rep.tenants[0].meanMs, 0.0);
    EXPECT_EQ(rep.tenants[0].rejectedOverload, 1u);
}

}  // namespace
}  // namespace crophe::serve
